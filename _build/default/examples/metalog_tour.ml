(* A tour of the MetaLog language (Sec. 4) and its MTV compilation:
   node/edge atoms, conditions, aggregation, existential heads, linker
   Skolem functors, and path patterns with inverse, concatenation,
   alternation and Kleene closure — each shown as MetaLog source, then
   as the Vadalog program MTV emits, then executed.

   Run with: dune exec examples/metalog_tour.exe *)

open Kgm_common
module PG = Kgm_graphdb.Pgraph

let show title src g =
  Format.printf "@.===== %s =====@.%s@." title (String.trim src);
  let prog = Kgm_metalog.Mparser.parse_program src in
  let { Kgm_metalog.Mtv.program; _ } = Kgm_metalog.Mtv.translate_with_graph g prog in
  Format.printf "--- MTV output (Vadalog) ---@.%s"
    (Kgm_vadalog.Rule.program_to_string program);
  let nn, ne, stats = Kgm_metalog.Pg_bridge.reason_on_graph prog g in
  Format.printf "--- run: %d new nodes, %d new edges, %d facts, %d rounds ---@."
    nn ne stats.Kgm_vadalog.Engine.new_facts stats.Kgm_vadalog.Engine.rounds

let () =
  (* a small org chart *)
  let g = PG.create () in
  let person name dept =
    PG.add_node g ~labels:[ "Employee" ]
      ~props:[ ("name", Value.string name); ("dept", Value.string dept) ]
  in
  let ada = person "Ada" "research" in
  let grace = person "Grace" "research" in
  let edsger = person "Edsger" "methods" in
  let donald = person "Donald" "methods" in
  let alan = person "Alan" "research" in
  let reports a b = ignore (PG.add_edge g ~label:"REPORTS_TO" ~src:a ~dst:b ~props:[]) in
  let mentors a b =
    ignore (PG.add_edge g ~label:"MENTORS" ~src:a ~dst:b ~props:[ ("years", Value.int 3) ])
  in
  reports grace ada;
  reports alan grace;
  reports donald edsger;
  mentors ada alan;
  mentors edsger donald;

  (* 1: plain pattern matching with a condition *)
  show "pattern matching + condition"
    {|
(x: Employee; dept: D), D == "research"
  => (x)-[t: TAGGED]->(x).
|}
    g;

  (* 2: existential head + restricted-chase idempotence *)
  show "existential quantification (labeled nulls)"
    {|
(x: Employee; dept: D)
  => (d: Dept; name: D), (x)-[m: MEMBER_OF]->(d).
|}
    g;

  (* 3: linker Skolem functors: one Dept node per department name *)
  show "linker Skolem functor (Sec. 4)"
    {|
(x: Employee; dept: D), K = #dept(D)
  => (K: DeptS; name: D), (x)-[m: MEMBER_OF_S]->(K).
|}
    g;

  (* 4: transitive closure through a path pattern (Example 4.3 shape) *)
  show "Kleene closure over REPORTS_TO"
    {|
(x: Employee)-/ [:REPORTS_TO]* /->(y: Employee)
  => (x)-[c: CHAIN_OF_COMMAND]->(y).
|}
    g;

  (* 5: inverse + alternation: anyone connected by mentoring in either
     direction or by a reporting edge *)
  show "alternation and inverse"
    {|
(x: Employee)-/ ([:MENTORS] | [:MENTORS]~ | [:REPORTS_TO]) /->(y: Employee)
  => (x)-[a: ASSOCIATED]->(y).
|}
    g;

  (* 6: aggregation: how many direct reports. The result lands on a NEW
     construct: writing it back onto Employee itself would make the
     aggregate recursive through its own input, which the stratification
     check rejects (try it!). *)
  show "stratified aggregation"
    {|
(m: Employee)<-[: REPORTS_TO]-(e: Employee),
  N = count(e)
  => (m)-[d: DIRECT_REPORTS; n: N]->(m).
|}
    g;

  (* count skolem'd departments *)
  Format.printf "@.DeptS nodes: %d (one per department)@."
    (List.length (PG.nodes_with_label g "DeptS"));
  Format.printf "CHAIN_OF_COMMAND edges: %d@."
    (List.length (PG.edges_with_label g "CHAIN_OF_COMMAND"))
