(* ECB close links (Sec. 2.1, reference [42]): conflict-of-interest
   detection over the shareholding network.

   Computes close links three ways and compares them:
   - the exact native fixpoint over integrated ownership;
   - the bounded-depth MetaLog encoding run through MTV + the chase;
   - the third-party rule specifically, showing a worked case.

   Run with: dune exec examples/close_links.exe [-- n] *)

open Kgm_common
module PG = Kgm_graphdb.Pgraph

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 400 in
  let o = Kgm_finance.Generator.generate ~n ~seed:11 () in

  (* exact: integrated ownership >= 20%, both ownership directions and
     common >= 20% holders *)
  let exact = Kgm_finance.Close_links.compute o in
  Format.printf "exact close links: %d@." (List.length exact);
  let by_reason r =
    List.length
      (List.filter (fun l -> match l.Kgm_finance.Close_links.reason, r with
         | `Owns, `Owns | `Owned, `Owned | `Third_party _, `Third -> true
         | _ -> false) exact)
  in
  Format.printf "  ownership-based: %d, third-party: %d@."
    (by_reason `Owns) (by_reason `Third);

  (* rule-based: materialize OWNS then the close-link rules *)
  let schema = Kgm_finance.Company_schema.load () in
  let dict = Kgmodel.Dictionary.create () in
  let sid = Kgmodel.Dictionary.store dict schema in
  let inst = Kgmodel.Instances.create dict in
  let data = Kgm_finance.Generator.to_company_graph o in
  let sigma =
    Kgm_finance.Intensional.owns ^ "\n" ^ Kgm_finance.Intensional.close_links
  in
  let report =
    Kgmodel.Materialize.materialize ~instances:inst ~schema ~schema_oid:sid
      ~data ~sigma ()
  in
  let rule_links = PG.edges_with_label data "CLOSE_LINK" in
  Format.printf "rule-based close links (depth <= 3): %d (reasoning %.3fs)@."
    (List.length rule_links) report.Kgmodel.Materialize.reason_s;

  (* agreement: every rule-derived link must be an exact link (the
     bounded unfolding is sound, possibly incomplete on deep chains) *)
  let code node = Option.get (PG.node_prop data node "fiscalCode") in
  let vertex_of_code = Hashtbl.create 256 in
  for v = 0 to Kgm_algo.Digraph.n o.Kgm_finance.Generator.graph - 1 do
    Hashtbl.add vertex_of_code
      (Value.to_string (Kgm_finance.Generator.vertex_fiscal_code v)) v
  done;
  let exact_pairs = Hashtbl.create 256 in
  List.iter
    (fun l ->
      Hashtbl.replace exact_pairs
        (l.Kgm_finance.Close_links.a, l.Kgm_finance.Close_links.b) ();
      Hashtbl.replace exact_pairs
        (l.Kgm_finance.Close_links.b, l.Kgm_finance.Close_links.a) ())
    exact;
  let sound = ref 0 and unsound = ref 0 in
  List.iter
    (fun e ->
      let s, d = PG.edge_ends data e in
      match
        Hashtbl.find_opt vertex_of_code (Value.to_string (code s)),
        Hashtbl.find_opt vertex_of_code (Value.to_string (code d))
      with
      | Some a, Some b ->
          if Hashtbl.mem exact_pairs (a, b) then incr sound else incr unsound
      | _ -> ())
    rule_links;
  Format.printf "soundness: %d/%d rule-derived links confirmed exact@." !sound
    (!sound + !unsound);

  (* a worked third-party case, if one exists *)
  (match
     List.find_opt
       (fun l ->
         match l.Kgm_finance.Close_links.reason with
         | `Third_party _ -> true
         | _ -> false)
       exact
   with
  | Some { Kgm_finance.Close_links.a; b; reason = `Third_party h } ->
      Format.printf
        "example: entities %d and %d are closely linked through common \
         holder %d (io(h, %d) = %.3f, io(h, %d) = %.3f)@."
        a b h a
        (Kgm_finance.Ownership.between o h a)
        b
        (Kgm_finance.Ownership.between o h b)
  | _ -> Format.printf "no third-party case in this network@.")
