(* Quickstart: the KGModel loop in 80 lines.

   1. Design a super-schema in GSL (the textual Graph Schema Language).
   2. Validate it and render the design diagram.
   3. Translate it to a relational target with SSST and print the DDL.
   4. Attach a data instance and materialize an intensional component.

   Run with: dune exec examples/quickstart.exe *)

open Kgm_common
module PG = Kgm_graphdb.Pgraph

let design =
  {|
schema library {
  node Author {
    authorId: string @id;
    name: string;
  }
  node Book {
    isbn: string @id @unique;
    title: string;
    year: int;
  }
  node Classic {
    reason: string @opt;
  }
  generalization BookKind of Book = Classic @disjoint;
  edge WROTE from Author to Book [0..N -> 1..N];
  intensional edge COAUTHOR from Author to Author [0..N -> 0..N];
}
|}

let () =
  (* 1-2: parse, validate, render *)
  let schema = Kgmodel.Gsl.parse_validated design in
  print_string (Kgmodel.Render.to_ascii schema);
  print_newline ();

  (* 3: SSST translation to the relational model (Algorithm 1) *)
  let dict = Kgmodel.Dictionary.create () in
  let sid = Kgmodel.Dictionary.store dict schema in
  let outcome =
    Kgmodel.Ssst.translate dict (Kgm_targets.Relational_model.mapping ()) sid
  in
  let rel = Kgm_targets.Relational_model.decode dict outcome.Kgmodel.Ssst.target_oid in
  print_endline "-- relational DDL (SSST output) --";
  print_endline (Kgm_targets.Relational_model.ddl rel);

  (* 4: a data instance + an intensional component (Algorithm 2) *)
  let data = PG.create () in
  let author id name =
    PG.add_node data ~labels:[ "Author" ]
      ~props:[ ("authorId", Value.string id); ("name", Value.string name) ]
  in
  let book isbn title year =
    PG.add_node data ~labels:[ "Book" ]
      ~props:
        [ ("isbn", Value.string isbn); ("title", Value.string title);
          ("year", Value.int year) ]
  in
  let wrote a b = ignore (PG.add_edge data ~label:"WROTE" ~src:a ~dst:b ~props:[]) in
  let alice = author "a1" "Alice" and bob = author "a2" "Bob" in
  let carol = author "a3" "Carol" in
  let b1 = book "978-1" "Foundations" 1995 in
  let b2 = book "978-2" "Further Foundations" 2001 in
  wrote alice b1;
  wrote bob b1;
  wrote bob b2;
  wrote carol b2;
  let sigma =
    {|
(a: Author)-[: WROTE]->(b: Book)<-[: WROTE]-(c: Author), a != c
  => (a)-[e: COAUTHOR]->(c).
|}
  in
  let inst = Kgmodel.Instances.create dict in
  let report =
    Kgmodel.Materialize.materialize ~instances:inst ~schema ~schema_oid:sid
      ~data ~sigma ()
  in
  Printf.printf "-- materialized %d COAUTHOR edges --\n"
    report.Kgmodel.Materialize.derived_edges;
  List.iter
    (fun e ->
      let s, d = PG.edge_ends data e in
      Printf.printf "%s coauthored with %s\n"
        (Value.to_string (Option.get (PG.node_prop data s "name")))
        (Value.to_string (Option.get (PG.node_prop data d "name"))))
    (PG.edges_with_label data "COAUTHOR")
