(* A supervisory-analysis scenario (the paper's application domain:
   economics and supervision at a central bank).

   The workflow an analyst runs against the Company KG:
   1. conformance-check the freshly loaded register extract;
   2. materialize the intensional components (OWNS, CONTROLS);
   3. explain a specific control edge with a derivation tree
      (the reasoner's audit trail);
   4. as-of analysis: how the number of holdings evolves over the
      validity timeline (entities are time-dependent, Sec. 2.1);
   5. evolve the schema and check what the change would break.

   Run with: dune exec examples/supervision.exe [-- n] *)

open Kgm_common
module PG = Kgm_graphdb.Pgraph

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 300 in
  let schema = Kgm_finance.Company_schema.load () in
  let o = Kgm_finance.Generator.generate ~n ~seed:31 () in
  let data = Kgm_finance.Generator.to_company_graph ~temporal:true o in

  (* 1. ground-data conformance *)
  (match Kgmodel.Conformance.check ~reject_intensional:true schema data with
   | [] ->
       Format.printf "1. register extract conforms: %d nodes, %d edges@."
         (PG.node_count data) (PG.edge_count data)
   | vs ->
       Format.printf "1. conformance violations:@.";
       List.iter (Format.printf "   %a@." Kgmodel.Conformance.pp_violation) vs);

  (* 2. materialize OWNS + CONTROLS *)
  let dict = Kgmodel.Dictionary.create () in
  let sid = Kgmodel.Dictionary.store dict schema in
  let inst = Kgmodel.Instances.create dict in
  let report =
    Kgmodel.Materialize.materialize ~instances:inst ~schema ~schema_oid:sid
      ~data
      ~sigma:(Kgm_finance.Intensional.owns ^ "\n" ^ Kgm_finance.Intensional.control)
      ()
  in
  Format.printf "2. materialized %d derived edges (reasoning %.3fs)@."
    report.Kgmodel.Materialize.derived_edges report.Kgmodel.Materialize.reason_s;
  (* derived knowledge is still conformant *)
  Format.printf "   instance conformant after materialization: %b@."
    (Kgmodel.Conformance.is_conformant schema data);

  (* 3. audit trail: explain one control relationship on the Example 4.2
     relational encoding with provenance enabled *)
  let prov = Kgm_vadalog.Engine.create_provenance () in
  let db = Kgm_vadalog.Database.create () in
  let module DG = Kgm_algo.Digraph in
  for v = o.Kgm_finance.Generator.n_persons to DG.n o.Kgm_finance.Generator.graph - 1 do
    ignore (Kgm_vadalog.Database.add db "company" [| Value.Int v |])
  done;
  for x = 0 to DG.n o.Kgm_finance.Generator.graph - 1 do
    ignore
      (Kgm_finance.Generator.fold_owned o x
         (fun () y w ->
           ignore
             (Kgm_vadalog.Database.add db "own"
                [| Value.Int x; Value.Int y; Value.Float w |]))
         ())
  done;
  let program =
    Kgm_vadalog.Parser.parse_program Kgm_finance.Control.vadalog_program
  in
  ignore (Kgm_vadalog.Engine.run ~provenance:prov program db);
  let indirect =
    List.find_opt
      (fun f ->
        match f with
        | [| Value.Int x; Value.Int y |] when x <> y -> (
            match Kgm_vadalog.Engine.explain prov "controls" f with
            | Some d -> List.exists (fun (p, _) -> p = "controls") d.Kgm_vadalog.Engine.parents
            | None -> false)
        | _ -> false)
      (Kgm_vadalog.Engine.query db "controls")
  in
  (match indirect with
   | Some f ->
       Format.printf "3. audit trail for controls(%s):@.%a@."
         (String.concat ", " (Array.to_list (Array.map Value.to_string f)))
         (Kgm_vadalog.Engine.pp_derivation_tree prov)
         ("controls", f)
   | None -> Format.printf "3. no indirect control in this network@.");

  (* 4. as-of analysis over the validity timeline *)
  let timeline =
    Kgm_finance.Temporal.timeline data (fun slice ->
        List.length (PG.edges_with_label slice "HOLDS"))
  in
  let shown = ref 0 in
  Format.printf "4. holdings in force, by validity boundary:@.";
  List.iter
    (fun (d, count) ->
      if !shown mod (max 1 (List.length timeline / 6)) = 0 then
        Format.printf "   as of %s: %d holdings@." (Value.to_string d) count;
      incr shown)
    timeline;

  (* 5. schema evolution: enrich Place with GPS coordinates (the exact
     future change the Sec. 3.3 narrative anticipates) and make website
     mandatory (breaking) *)
  let replace ~sub ~by s =
    let n = String.length s and m = String.length sub in
    let buf = Buffer.create n in
    let i = ref 0 in
    while !i < n do
      if !i + m <= n && String.sub s !i m = sub then begin
        Buffer.add_string buf by;
        i := !i + m
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  in
  let evolved =
    Kgmodel.Gsl.parse
      (Kgmodel.Gsl.print schema
       |> replace ~sub:"postalCode: string @opt;"
            ~by:
              "postalCode: string @opt;\n    gpsLat: float @opt;\n    gpsLon: float @opt;"
       |> replace ~sub:"website: string @opt;" ~by:"website: string;")
  in
  let d = Kgmodel.Schema_diff.diff schema evolved in
  Format.printf "5. schema evolution:@.%a" Kgmodel.Schema_diff.pp d;
  List.iter (Format.printf "   hint: %s@.") (Kgmodel.Schema_diff.migration_hints d)
