(* The Bank of Italy Company KG end to end (Secs. 2-6 of the paper).

   - loads the Fig. 4 design (GSL), prints its construct census;
   - translates it to the PG model (Fig. 6) and the relational model
     (Fig. 8) through SSST, printing both artifacts;
   - generates a synthetic shareholding network, expands it to a
     Company-KG property graph, and materializes the full intensional
     component (OWNS, CONTROLS, numberOfStakeholders) via Algorithm 2;
   - prints the timing split the paper reports in Sec. 6.

   Run with: dune exec examples/company_kg.exe [-- n] *)

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 600 in
  let schema = Kgm_finance.Company_schema.load () in
  Format.printf "== The Company KG super-schema (Fig. 4) ==@.";
  List.iter
    (fun (k, v) -> Format.printf "  %-28s %d@." k v)
    (Kgmodel.Supermodel.stats schema);

  (* SSST to the PG model: the Fig. 6 artifact *)
  let dict = Kgmodel.Dictionary.create () in
  let sid = Kgmodel.Dictionary.store dict schema in
  let pg_out = Kgmodel.Ssst.translate dict (Kgm_targets.Pg_model.mapping ()) sid in
  let pg = Kgm_targets.Pg_model.decode dict pg_out.Kgmodel.Ssst.target_oid in
  Format.printf "@.== PG-model schema (Fig. 6), %d node kinds, %d relationship kinds ==@."
    (List.length pg.Kgm_targets.Pg_model.node_kinds)
    (List.length pg.Kgm_targets.Pg_model.rel_kinds);
  Format.printf "%a@." Kgm_targets.Pg_model.pp pg;

  (* SSST to the relational model: the Fig. 8 artifact *)
  let rel_out =
    Kgmodel.Ssst.translate dict (Kgm_targets.Relational_model.mapping ()) sid
  in
  let rel = Kgm_targets.Relational_model.decode dict rel_out.Kgmodel.Ssst.target_oid in
  Format.printf "== Relational schema (Fig. 8) ==@.%a@." Kgm_relational.Rschema.pp rel;

  (* data + intensional component *)
  let o = Kgm_finance.Generator.generate ~n () in
  let data = Kgm_finance.Generator.to_company_graph o in
  Format.printf "== Synthetic instance ==@.%a@." Kgm_graphdb.Pgraph.pp_summary data;
  let inst = Kgmodel.Instances.create dict in
  let report =
    Kgmodel.Materialize.materialize ~instances:inst ~schema ~schema_oid:sid
      ~data ~sigma:Kgm_finance.Intensional.full ()
  in
  Format.printf
    "@.== Algorithm 2 (Sec. 6 split: load | reason | flush) ==@.\
     load %.3fs | reason %.3fs | flush %.3fs@.\
     derived: %d edges, %d attribute values@."
    report.Kgmodel.Materialize.load_s report.Kgmodel.Materialize.reason_s
    report.Kgmodel.Materialize.flush_s report.Kgmodel.Materialize.derived_edges
    report.Kgmodel.Materialize.derived_attrs;
  Format.printf "after materialization: %a@." Kgm_graphdb.Pgraph.pp_summary data;

  (* cross-check the materialized control edges against the native
     baseline and the Example 4.2 Vadalog program *)
  let module PG = Kgm_graphdb.Pgraph in
  let materialized =
    List.length (PG.edges_with_label data "CONTROLS")
    - List.length (PG.nodes_with_label data "Business") (* minus reflexive *)
  in
  let native = List.length (Kgm_finance.Control.all_pairs o) in
  let vadalog = List.length (Kgm_finance.Control.via_vadalog o) in
  Format.printf
    "@.control-pairs agreement: materialized %d | native %d | vadalog %d@."
    materialized native vadalog
