(* A deep dive into SSST (Sec. 5): the same super-schema pushed through
   every target model and both PG strategies, with the intermediate
   super-schema S⁻ inspected along the way.

   Run with: dune exec examples/schema_translation.exe *)

let () =
  let schema = Kgm_finance.Company_schema.load () in
  let dict = Kgmodel.Dictionary.create () in
  let sid = Kgmodel.Dictionary.store dict schema in
  Format.printf "super-schema stored: schemaOID %d, %d dictionary elements@." sid
    (Kgmodel.Dictionary.element_count dict sid);

  (* --- PG model, multi-label strategy (the paper's Sec. 5.2) --- *)
  let out_ml =
    Kgmodel.Ssst.translate dict (Kgm_targets.Pg_model.mapping ~strategy:"multi-label" ()) sid
  in
  Format.printf
    "@.[pg/multi-label] Eliminate: %d facts in %d rounds; Copy: %d facts in %d rounds@."
    out_ml.Kgmodel.Ssst.eliminate_stats.Kgm_vadalog.Engine.new_facts
    out_ml.Kgmodel.Ssst.eliminate_stats.Kgm_vadalog.Engine.rounds
    out_ml.Kgmodel.Ssst.copy_stats.Kgm_vadalog.Engine.new_facts
    out_ml.Kgmodel.Ssst.copy_stats.Kgm_vadalog.Engine.rounds;
  Format.printf "S- has %d elements; S' has %d elements@."
    (Kgmodel.Dictionary.element_count dict out_ml.Kgmodel.Ssst.intermediate_oid)
    (Kgmodel.Dictionary.element_count dict out_ml.Kgmodel.Ssst.target_oid);
  let pg_ml = Kgm_targets.Pg_model.decode dict out_ml.Kgmodel.Ssst.target_oid in
  (* the Example 5.1 effect: LegalPerson accumulates the Person label *)
  List.iter
    (fun nk ->
      match nk.Kgm_targets.Pg_model.nk_labels with
      | "LegalPerson" :: rest ->
          Format.printf "LegalPerson multi-labels: %s@." (String.concat ", " rest)
      | "PublicListedCompany" :: rest ->
          Format.printf "PublicListedCompany multi-labels: %s@."
            (String.concat ", " rest)
      | _ -> ())
    pg_ml.Kgm_targets.Pg_model.node_kinds;
  (* the Example 5.2 effect: HOLDS duplicated onto descendants *)
  let holds =
    List.filter
      (fun rk -> rk.Kgm_targets.Pg_model.rk_name = "HOLDS")
      pg_ml.Kgm_targets.Pg_model.rel_kinds
  in
  Format.printf "HOLDS relationship kinds after inheritance: %d@."
    (List.length holds);
  List.iter
    (fun rk ->
      Format.printf "  (%s)-[HOLDS]->(%s)@." rk.Kgm_targets.Pg_model.rk_from
        rk.Kgm_targets.Pg_model.rk_to)
    holds;

  (* --- PG model, parent-edge strategy --- *)
  let out_pe =
    Kgmodel.Ssst.translate dict
      (Kgm_targets.Pg_model.mapping ~strategy:"parent-edge" ())
      sid
  in
  let pg_pe = Kgm_targets.Pg_model.decode dict out_pe.Kgmodel.Ssst.target_oid in
  let is_a =
    List.filter
      (fun rk -> rk.Kgm_targets.Pg_model.rk_name = "IS_A")
      pg_pe.Kgm_targets.Pg_model.rel_kinds
  in
  Format.printf "@.[pg/parent-edge] IS_A relationships: %d@." (List.length is_a);
  List.iter
    (fun rk ->
      Format.printf "  (%s)-[IS_A]->(%s)@." rk.Kgm_targets.Pg_model.rk_from
        rk.Kgm_targets.Pg_model.rk_to)
    is_a;

  (* --- relational model: Fig. 8 + DDL --- *)
  let out_rel =
    Kgmodel.Ssst.translate dict (Kgm_targets.Relational_model.mapping ()) sid
  in
  let rel = Kgm_targets.Relational_model.decode dict out_rel.Kgmodel.Ssst.target_oid in
  Format.printf "@.[relational] %d relations, %d foreign keys@."
    (List.length rel.Kgm_relational.Rschema.relations)
    (List.length rel.Kgm_relational.Rschema.foreign_keys);
  print_endline (Kgm_targets.Relational_model.ddl rel);

  (* --- RDF-S and CSV --- *)
  let rdfs = Kgm_targets.Triple_model.translate_native schema in
  Format.printf "@.[rdfs] %d classes, %d properties@."
    (List.length rdfs.Kgm_targets.Triple_model.classes)
    (List.length rdfs.Kgm_targets.Triple_model.properties);
  let csv = Kgm_targets.Csv_model.translate_native schema in
  Format.printf "[csv] %d files@." (List.length csv.Kgm_targets.Csv_model.files);
  print_string csv.Kgm_targets.Csv_model.manifest
