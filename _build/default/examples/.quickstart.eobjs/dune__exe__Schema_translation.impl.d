examples/schema_translation.ml: Format Kgm_finance Kgm_relational Kgm_targets Kgm_vadalog Kgmodel List String
