examples/company_kg.ml: Array Format Kgm_finance Kgm_graphdb Kgm_relational Kgm_targets Kgmodel List Sys
