examples/metalog_tour.ml: Format Kgm_common Kgm_graphdb Kgm_metalog Kgm_vadalog List String Value
