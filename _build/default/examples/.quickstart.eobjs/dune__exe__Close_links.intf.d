examples/close_links.mli:
