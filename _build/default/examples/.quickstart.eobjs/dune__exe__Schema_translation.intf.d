examples/schema_translation.mli:
