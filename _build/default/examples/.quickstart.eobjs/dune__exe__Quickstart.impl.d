examples/quickstart.ml: Kgm_common Kgm_graphdb Kgm_targets Kgmodel List Option Printf Value
