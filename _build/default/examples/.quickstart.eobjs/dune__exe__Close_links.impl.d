examples/close_links.ml: Array Format Hashtbl Kgm_algo Kgm_common Kgm_finance Kgm_graphdb Kgmodel List Option Sys Value
