examples/supervision.mli:
