examples/company_kg.mli:
