examples/quickstart.mli:
