examples/metalog_tour.mli:
