examples/supervision.ml: Array Buffer Format Kgm_algo Kgm_common Kgm_finance Kgm_graphdb Kgm_vadalog Kgmodel List String Sys Value
