(** Relational instances: mutable tuple stores conforming to a
    {!Rschema.t}. Inserts enforce arity, domains and primary-key
    uniqueness eagerly; foreign keys and UNIQUE modifiers are checked by
    {!validate} (the usual deferred-constraint discipline, so SSST can
    load mutually referencing relations in any order). *)

open Kgm_common

type t

val create : Rschema.t -> t
val schema : t -> Rschema.t

val insert : t -> string -> Value.t array -> unit
(** [insert db rel tuple]: fields in declaration order. Raises
    [Kgm_error.Error] on unknown relation, arity mismatch, domain
    violation, null in a non-nullable field, or duplicate key. *)

val insert_named : t -> string -> (string * Value.t) list -> unit
(** Missing nullable fields default to a fresh labeled null marker
    [Value.Null]; missing non-nullable fields are an error. *)

val tuples : t -> string -> Value.t array list
val cardinality : t -> string -> int
val total_tuples : t -> int

val lookup_key : t -> string -> Value.t list -> Value.t array option
(** Fetch by primary-key values (in key-field declaration order). *)

val validate : t -> (unit, string list) result
(** Foreign keys and single-field UNIQUE constraints. *)

val fold : t -> string -> ('a -> Value.t array -> 'a) -> 'a -> 'a
val iter : t -> string -> (Value.t array -> unit) -> unit

val column_index : t -> string -> string -> int
(** Position of a field inside the relation's tuples. *)
