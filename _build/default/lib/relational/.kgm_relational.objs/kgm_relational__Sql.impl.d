lib/relational/sql.ml: Array Buffer Instance Kgm_common List Oid Printf Rschema String Value
