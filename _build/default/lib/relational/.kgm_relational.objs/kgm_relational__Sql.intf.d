lib/relational/sql.mli: Instance Kgm_common Rschema Value
