lib/relational/rschema.mli: Format Kgm_common Value
