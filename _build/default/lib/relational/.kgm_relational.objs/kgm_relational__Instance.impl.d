lib/relational/instance.ml: Array Format Hashtbl Kgm_common Kgm_error List Rschema String Value
