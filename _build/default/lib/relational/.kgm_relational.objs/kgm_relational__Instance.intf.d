lib/relational/instance.mli: Kgm_common Rschema Value
