lib/relational/algebra.mli: Format Instance Kgm_common Value
