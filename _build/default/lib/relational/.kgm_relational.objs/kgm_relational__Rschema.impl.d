lib/relational/rschema.ml: Format Hashtbl Kgm_common Kgm_error List Names String Value
