lib/relational/algebra.ml: Array Format Hashtbl Instance Int Kgm_common Kgm_error List Rschema String Value
