(** A small relational algebra over named-column row sets.

    SSST's relational enforcement tests and the CSV target use this to
    inspect translated instances without SQL. Rows are positional; the
    header names the columns. *)

open Kgm_common

type rel = {
  header : string list;
  rows : Value.t array list;
}

val of_instance : Instance.t -> string -> rel

val select : (Value.t array -> bool) -> rel -> rel
val select_eq : string -> Value.t -> rel -> rel

val project : string list -> rel -> rel
(** Duplicate rows are kept (bag semantics). Raises on unknown column. *)

val project_distinct : string list -> rel -> rel

val rename : (string * string) list -> rel -> rel

val natural_join : rel -> rel -> rel
(** Join on all shared column names; right copy of shared columns is
    dropped. A cartesian product when no columns are shared. *)

val equi_join : left:string -> right:string -> rel -> rel -> rel
(** Join on [left = right]; all columns kept, right join column renamed
    with a ["_r"] suffix if it collides. *)

val union : rel -> rel -> rel
val difference : rel -> rel -> rel

val cardinality : rel -> int
val column : rel -> string -> Value.t list

val sort_rows : rel -> rel
(** Canonical row order, for deterministic comparisons in tests. *)

val pp : Format.formatter -> rel -> unit
