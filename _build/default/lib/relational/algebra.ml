open Kgm_common

type rel = {
  header : string list;
  rows : Value.t array list;
}

let of_instance db name =
  let schema = Instance.schema db in
  match Rschema.find_relation schema name with
  | None -> Kgm_error.storage_error "unknown relation %s" name
  | Some r ->
      { header = List.map (fun (f : Rschema.field) -> f.f_name) r.r_fields;
        rows = Instance.tuples db name }

let col_idx rel name =
  let rec idx i = function
    | [] -> Kgm_error.storage_error "algebra: unknown column %s" name
    | c :: rest -> if c = name then i else idx (i + 1) rest
  in
  idx 0 rel.header

let select p rel = { rel with rows = List.filter p rel.rows }

let select_eq name v rel =
  let i = col_idx rel name in
  select (fun row -> Value.equal row.(i) v) rel

let project cols rel =
  let idxs = List.map (col_idx rel) cols in
  { header = cols;
    rows = List.map (fun row -> Array.of_list (List.map (fun i -> row.(i)) idxs)) rel.rows }

let row_compare a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la || i >= lb then Int.compare la lb
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let dedup_rows rows =
  let sorted = List.sort row_compare rows in
  let rec go = function
    | a :: b :: rest when row_compare a b = 0 -> go (b :: rest)
    | a :: rest -> a :: go rest
    | [] -> []
  in
  go sorted

let project_distinct cols rel =
  let r = project cols rel in
  { r with rows = dedup_rows r.rows }

let rename mapping rel =
  { rel with
    header =
      List.map
        (fun c -> match List.assoc_opt c mapping with Some c' -> c' | None -> c)
        rel.header }

let natural_join a b =
  let shared = List.filter (fun c -> List.mem c b.header) a.header in
  let a_idx = List.map (col_idx a) shared in
  let b_idx = List.map (col_idx b) shared in
  let b_keep =
    List.filteri (fun i _ -> not (List.mem i b_idx))
      (List.mapi (fun i c -> (i, c)) b.header)
  in
  let header = a.header @ List.map snd b_keep in
  (* hash join on the shared key *)
  let tbl = Hashtbl.create (List.length b.rows) in
  List.iter
    (fun row ->
      let k = List.map (fun i -> row.(i)) b_idx in
      Hashtbl.add tbl k row)
    b.rows;
  let rows =
    List.concat_map
      (fun ra ->
        let k = List.map (fun i -> ra.(i)) a_idx in
        List.map
          (fun rb ->
            Array.append ra (Array.of_list (List.map (fun (i, _) -> rb.(i)) b_keep)))
          (Hashtbl.find_all tbl k))
      a.rows
  in
  { header; rows }

let equi_join ~left ~right a b =
  let li = col_idx a left and ri = col_idx b right in
  let b_header =
    List.map (fun c -> if List.mem c a.header then c ^ "_r" else c) b.header
  in
  let tbl = Hashtbl.create (List.length b.rows) in
  List.iter (fun row -> Hashtbl.add tbl row.(ri) row) b.rows;
  { header = a.header @ b_header;
    rows =
      List.concat_map
        (fun ra ->
          List.map (fun rb -> Array.append ra rb) (Hashtbl.find_all tbl ra.(li)))
        a.rows }

let same_header a b =
  if a.header <> b.header then
    Kgm_error.storage_error "algebra: header mismatch (%s vs %s)"
      (String.concat "," a.header) (String.concat "," b.header)

let union a b =
  same_header a b;
  { a with rows = dedup_rows (a.rows @ b.rows) }

let difference a b =
  same_header a b;
  let tbl = Hashtbl.create (List.length b.rows) in
  List.iter (fun r -> Hashtbl.replace tbl (Array.to_list r) ()) b.rows;
  { a with rows = List.filter (fun r -> not (Hashtbl.mem tbl (Array.to_list r))) a.rows }

let cardinality rel = List.length rel.rows

let column rel name =
  let i = col_idx rel name in
  List.map (fun row -> row.(i)) rel.rows

let sort_rows rel = { rel with rows = List.sort row_compare rel.rows }

let pp ppf rel =
  Format.fprintf ppf "| %s |@." (String.concat " | " rel.header);
  List.iter
    (fun row ->
      Format.fprintf ppf "| %s |@."
        (String.concat " | " (Array.to_list (Array.map Value.to_string row))))
    rel.rows
