open Kgm_common

type table = {
  rel : Rschema.relation;
  mutable rows : Value.t array list; (* reverse insertion order *)
  mutable count : int;
  key_positions : int list;
  keys : (Value.t list, Value.t array) Hashtbl.t;
}

type t = {
  sch : Rschema.t;
  tables : (string, table) Hashtbl.t;
  null_gen : int ref;
}

let create sch =
  let tables = Hashtbl.create 16 in
  List.iter
    (fun (rel : Rschema.relation) ->
      let key_positions =
        List.filteri (fun _ (f : Rschema.field) -> f.f_key) rel.r_fields
        |> List.map (fun (f : Rschema.field) ->
               let rec idx i = function
                 | [] -> assert false
                 | (g : Rschema.field) :: rest ->
                     if g.f_name = f.f_name then i else idx (i + 1) rest
               in
               idx 0 rel.r_fields)
      in
      Hashtbl.add tables rel.r_name
        { rel; rows = []; count = 0; key_positions; keys = Hashtbl.create 64 })
    sch.Rschema.relations;
  { sch; tables; null_gen = ref 0 }

let schema t = t.sch

let table t name =
  match Hashtbl.find_opt t.tables name with
  | Some tbl -> tbl
  | None -> Kgm_error.storage_error "unknown relation %s" name

let key_of tbl tuple = List.map (fun i -> tuple.(i)) tbl.key_positions

let insert t name tuple =
  let tbl = table t name in
  let fields = tbl.rel.r_fields in
  if Array.length tuple <> List.length fields then
    Kgm_error.storage_error "%s: arity %d, got %d" name (List.length fields)
      (Array.length tuple);
  List.iteri
    (fun i (f : Rschema.field) ->
      let v = tuple.(i) in
      if Value.is_null v && not f.f_nullable then
        Kgm_error.storage_error "%s.%s: null in non-nullable field" name f.f_name;
      if not (Value.conforms f.f_ty v) then
        Kgm_error.storage_error "%s.%s: %s does not conform to %s" name f.f_name
          (Value.to_string v) (Value.ty_to_string f.f_ty);
      if f.f_enum <> [] then
        match Value.as_string v with
        | Some s when not (List.mem s f.f_enum) ->
            Kgm_error.storage_error "%s.%s: %S not in enum" name f.f_name s
        | _ -> ())
    fields;
  let k = key_of tbl tuple in
  if Hashtbl.mem tbl.keys k then
    Kgm_error.storage_error "%s: duplicate key (%s)" name
      (String.concat "," (List.map Value.to_string k));
  Hashtbl.add tbl.keys k tuple;
  tbl.rows <- tuple :: tbl.rows;
  tbl.count <- tbl.count + 1

let insert_named t name bindings =
  let tbl = table t name in
  let tuple =
    Array.of_list
      (List.map
         (fun (f : Rschema.field) ->
           match List.assoc_opt f.f_name bindings with
           | Some v -> v
           | None ->
               if f.f_nullable then begin
                 incr t.null_gen;
                 Value.Null !(t.null_gen)
               end
               else
                 Kgm_error.storage_error "%s: missing field %s" name f.f_name)
         tbl.rel.r_fields)
  in
  List.iter
    (fun (fname, _) ->
      if Rschema.find_field tbl.rel fname = None then
        Kgm_error.storage_error "%s: no field %s" name fname)
    bindings;
  insert t name tuple

let tuples t name = List.rev (table t name).rows
let cardinality t name = (table t name).count

let total_tuples t =
  Hashtbl.fold (fun _ tbl acc -> acc + tbl.count) t.tables 0

let lookup_key t name key = Hashtbl.find_opt (table t name).keys key

let column_index t name field =
  let tbl = table t name in
  let rec idx i = function
    | [] -> Kgm_error.storage_error "%s: no field %s" name field
    | (f : Rschema.field) :: rest -> if f.f_name = field then i else idx (i + 1) rest
  in
  idx 0 tbl.rel.r_fields

let fold t name f init = List.fold_left f init (tuples t name)
let iter t name f = List.iter f (tuples t name)

let validate t =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun m -> errs := m :: !errs) fmt in
  (* UNIQUE single-field constraints *)
  Hashtbl.iter
    (fun name tbl ->
      List.iteri
        (fun i (f : Rschema.field) ->
          if f.f_unique then begin
            let seen = Hashtbl.create tbl.count in
            List.iter
              (fun row ->
                let v = row.(i) in
                if not (Value.is_null v) then
                  if Hashtbl.mem seen v then
                    err "%s.%s: duplicate unique value %s" name f.f_name
                      (Value.to_string v)
                  else Hashtbl.add seen v ())
              tbl.rows
          end)
        tbl.rel.r_fields)
    t.tables;
  (* foreign keys *)
  List.iter
    (fun (fk : Rschema.foreign_key) ->
      match Hashtbl.find_opt t.tables fk.fk_source, Hashtbl.find_opt t.tables fk.fk_target with
      | Some src, Some tgt ->
          let positions =
            List.map
              (fun f ->
                let rec idx i = function
                  | [] -> -1
                  | (g : Rschema.field) :: rest ->
                      if g.f_name = f then i else idx (i + 1) rest
                in
                idx 0 src.rel.r_fields)
              fk.fk_fields
          in
          if List.for_all (fun p -> p >= 0) positions then
            List.iter
              (fun row ->
                let key = List.map (fun p -> row.(p)) positions in
                if not (List.exists Value.is_null key)
                   && not (Hashtbl.mem tgt.keys key)
                then
                  err "fk %s: dangling reference (%s) from %s" fk.fk_name
                    (String.concat "," (List.map Value.to_string key))
                    fk.fk_source)
              src.rows
      | _ -> err "fk %s: missing relation" fk.fk_name)
    t.sch.foreign_keys;
  match !errs with [] -> Ok () | es -> Error (List.rev es)
