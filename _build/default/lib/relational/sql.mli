(** SQL rendering of relational schemas and instances.

    For relational targets the paper enforces translated schemas "as DDL
    statements, which include the respective constraints such as keys,
    foreign keys, domain constraints" (Sec. 2.2); this module emits that
    artifact in a generic SQL:1999 dialect. *)

open Kgm_common

val ddl : Rschema.t -> string
(** CREATE TABLE statements with PRIMARY KEY, NOT NULL, UNIQUE, CHECK
    (enum) constraints, followed by ALTER TABLE ... FOREIGN KEY, in
    schema declaration order (topologically safe because FKs are emitted
    after all tables). *)

val sql_type : Value.ty -> string
val sql_literal : Value.t -> string

val inserts : Instance.t -> string
(** One INSERT statement per tuple, relations in schema order. *)

val create_table : Rschema.relation -> string
