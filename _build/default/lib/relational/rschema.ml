open Kgm_common

type field = {
  f_name : string;
  f_ty : Value.ty;
  f_nullable : bool;
  f_key : bool;
  f_unique : bool;
  f_enum : string list;
  f_default : Value.t option;
  f_range : float option * float option;
}

type relation = {
  r_name : string;
  r_fields : field list;
}

type foreign_key = {
  fk_name : string;
  fk_source : string;
  fk_fields : string list;
  fk_target : string;
  fk_target_fields : string list;
}

type t = {
  relations : relation list;
  foreign_keys : foreign_key list;
}

let empty = { relations = []; foreign_keys = [] }

let field ?(nullable = false) ?(key = false) ?(unique = false) ?(enum = [])
    ?default ?(range = (None, None)) name ty =
  { f_name = name; f_ty = ty; f_nullable = nullable; f_key = key;
    f_unique = unique; f_enum = enum; f_default = default; f_range = range }

let relation name fields = { r_name = name; r_fields = fields }

let find_relation t name =
  List.find_opt (fun r -> r.r_name = name) t.relations

let find_field r name = List.find_opt (fun f -> f.f_name = name) r.r_fields

let key_fields r = List.filter (fun f -> f.f_key) r.r_fields

let add_relation t r =
  if find_relation t r.r_name <> None then
    Kgm_error.storage_error "duplicate relation %s" r.r_name;
  { t with relations = t.relations @ [ r ] }

let add_foreign_key t fk = { t with foreign_keys = t.foreign_keys @ [ fk ] }

let dup_names names =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun n ->
      if Hashtbl.mem seen n then true
      else begin
        Hashtbl.add seen n ();
        false
      end)
    names

let validate t =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun m -> errs := m :: !errs) fmt in
  let rel_names = List.map (fun r -> r.r_name) t.relations in
  List.iter (fun n -> err "duplicate relation name %s" n) (dup_names rel_names);
  List.iter
    (fun r ->
      if r.r_fields = [] then err "relation %s has no fields" r.r_name;
      if key_fields r = [] then err "relation %s has no key" r.r_name;
      List.iter
        (fun n -> err "relation %s: duplicate field %s" r.r_name n)
        (dup_names (List.map (fun f -> f.f_name) r.r_fields));
      List.iter
        (fun f ->
          if f.f_key && f.f_nullable then
            err "relation %s: key field %s is nullable" r.r_name f.f_name;
          if Names.sanitize_identifier f.f_name <> f.f_name then
            err "relation %s: invalid field identifier %s" r.r_name f.f_name)
        r.r_fields;
      if Names.sanitize_identifier r.r_name <> r.r_name then
        err "invalid relation identifier %s" r.r_name)
    t.relations;
  List.iter
    (fun fk ->
      match find_relation t fk.fk_source, find_relation t fk.fk_target with
      | None, _ -> err "fk %s: missing source relation %s" fk.fk_name fk.fk_source
      | _, None -> err "fk %s: missing target relation %s" fk.fk_name fk.fk_target
      | Some src, Some tgt ->
          List.iter
            (fun f ->
              if find_field src f = None then
                err "fk %s: field %s not in %s" fk.fk_name f fk.fk_source)
            fk.fk_fields;
          let tgt_fields =
            if fk.fk_target_fields = [] then
              List.map (fun f -> f.f_name) (key_fields tgt)
            else fk.fk_target_fields
          in
          List.iter
            (fun f ->
              if find_field tgt f = None then
                err "fk %s: field %s not in %s" fk.fk_name f fk.fk_target)
            tgt_fields;
          if List.length fk.fk_fields <> List.length tgt_fields then
            err "fk %s: arity mismatch (%d vs %d)" fk.fk_name
              (List.length fk.fk_fields) (List.length tgt_fields))
    t.foreign_keys;
  match !errs with [] -> Ok () | es -> Error (List.rev es)

let pp_field ppf f =
  Format.fprintf ppf "%s:%a%s%s%s" f.f_name Value.pp_ty f.f_ty
    (if f.f_key then "!" else "")
    (if f.f_nullable then "?" else "")
    (if f.f_unique then " unique" else "")

let pp ppf t =
  List.iter
    (fun r ->
      Format.fprintf ppf "@[<hov 2>%s(%a)@]@." r.r_name
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
           pp_field)
        r.r_fields)
    t.relations;
  List.iter
    (fun fk ->
      Format.fprintf ppf "fk %s: %s(%s) -> %s(%s)@." fk.fk_name fk.fk_source
        (String.concat "," fk.fk_fields)
        fk.fk_target
        (String.concat "," fk.fk_target_fields))
    t.foreign_keys
