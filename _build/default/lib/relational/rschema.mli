(** Relational schemas: the deployment form produced by SSST for
    relational targets (Sec. 5.3 / Fig. 8). Relations carry fields with
    domains, key markers and nullability; foreign keys reference the key
    of the target relation. *)

open Kgm_common

type field = {
  f_name : string;
  f_ty : Value.ty;
  f_nullable : bool;
  f_key : bool;          (** part of the primary key *)
  f_unique : bool;       (** single-field UNIQUE constraint *)
  f_enum : string list;  (** allowed values when non-empty (CHECK) *)
  f_default : Value.t option;              (** DEFAULT clause *)
  f_range : float option * float option;   (** numeric CHECK bounds *)
}

type relation = {
  r_name : string;
  r_fields : field list;
}

type foreign_key = {
  fk_name : string;
  fk_source : string;              (** source relation name *)
  fk_fields : string list;         (** source field names *)
  fk_target : string;              (** target relation name *)
  fk_target_fields : string list;  (** referenced (key) field names *)
}

type t = {
  relations : relation list;
  foreign_keys : foreign_key list;
}

val empty : t

val field :
  ?nullable:bool -> ?key:bool -> ?unique:bool -> ?enum:string list ->
  ?default:Value.t -> ?range:float option * float option ->
  string -> Value.ty -> field

val relation : string -> field list -> relation

val add_relation : t -> relation -> t
(** Raises [Kgm_error.Error] on duplicate relation name. *)

val add_foreign_key : t -> foreign_key -> t

val find_relation : t -> string -> relation option
val find_field : relation -> string -> field option
val key_fields : relation -> field list

val validate : t -> (unit, string list) result
(** Structural soundness: non-empty keys, FK endpoints exist, FK field
    lists align in arity with the target key, field names unique within
    a relation, names are valid identifiers. *)

val pp : Format.formatter -> t -> unit
(** Compact human-readable rendering, one relation per line (the textual
    analogue of Fig. 8). *)
