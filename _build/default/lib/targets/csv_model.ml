(** The plain-CSV serialization target (paper, Sec. 2.2: "non-graph-like
    models that are frequently used to serialize graphs, such as ...
    plain CSV files").

    The CSV model is the relational model stripped of constraints: one
    file per relation, columns in field order, a header line, foreign
    keys documented in a sidecar manifest. Built on top of the
    relational translation, so the relation-per-member strategy applies
    unchanged. *)

module Rschema = Kgm_relational.Rschema

type file_spec = {
  filename : string;
  columns : string list;
}

type bundle = {
  files : file_spec list;
  manifest : string; (** human-readable description incl. FK links *)
}

let of_relational (sch : Rschema.t) =
  let files =
    List.map
      (fun (r : Rschema.relation) ->
        { filename = Kgm_common.Names.to_snake_case r.Rschema.r_name ^ ".csv";
          columns =
            List.map (fun (f : Rschema.field) -> f.Rschema.f_name) r.Rschema.r_fields })
      sch.Rschema.relations
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# CSV bundle manifest\n";
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "file %s: %s\n" f.filename (String.concat "," f.columns)))
    files;
  List.iter
    (fun (fk : Rschema.foreign_key) ->
      Buffer.add_string buf
        (Printf.sprintf "link %s.%s -> %s.%s\n"
           (Kgm_common.Names.to_snake_case fk.Rschema.fk_source)
           (String.concat "+" fk.Rschema.fk_fields)
           (Kgm_common.Names.to_snake_case fk.Rschema.fk_target)
           (String.concat "+" fk.Rschema.fk_target_fields)))
    sch.Rschema.foreign_keys;
  { files; manifest = Buffer.contents buf }

let translate_native (s : Kgmodel.Supermodel.t) =
  of_relational (Relational_model.translate_native s)

(** Serialize a relational instance into CSV documents, one per file. *)
let render_instance (db : Kgm_relational.Instance.t) =
  let sch = Kgm_relational.Instance.schema db in
  List.map
    (fun (r : Rschema.relation) ->
      let buf = Buffer.create 1024 in
      Buffer.add_string buf
        (String.concat ","
           (List.map (fun (f : Rschema.field) -> f.Rschema.f_name) r.Rschema.r_fields));
      Buffer.add_char buf '\n';
      Kgm_relational.Instance.iter db r.Rschema.r_name (fun row ->
          let cells =
            Array.to_list
              (Array.map
                 (fun v ->
                   match v with
                   | Kgm_common.Value.Null _ -> ""
                   | v ->
                       let s = Kgm_common.Value.to_string v in
                       if String.contains s ',' || String.contains s '"' then
                         "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
                       else s)
                 row)
          in
          Buffer.add_string buf (String.concat "," cells);
          Buffer.add_char buf '\n');
      (Kgm_common.Names.to_snake_case r.Rschema.r_name ^ ".csv", Buffer.contents buf))
    sch.Rschema.relations
