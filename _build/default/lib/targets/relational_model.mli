(** The relational target model (paper, Sec. 5.3 / Figs. 7-8).

    Constructs: [Relation] (: SM_Type), [Field] (: SM_Attribute),
    [Predicate] (: SM_Node) connecting a Relation to its Fields,
    [ForeignKey] (: SM_Edge) constraining source fields to the key of
    the target relation.

    The Eliminate phase normalizes the super-schema so only
    FK-convertible edges survive: one-to-many edges are re-pointed from
    the many side to the one side and their attributes move to the many
    side; many-to-many edges become bridge Predicates with two outgoing
    FKs; generalizations become one relation per member, each child
    carrying a copy of the inherited identifying attributes and an IS_A
    foreign key to its parent (the strategy the paper adopts).

    The decoded schema is a {!Kgm_relational.Rschema.t}, so the
    enforcement artifact is plain SQL DDL via {!Kgm_relational.Sql}. *)

val mapping : ?strategy:string -> unit -> Kgmodel.Ssst.mapping
(** Only the paper's ["relation-per-member"] strategy is rule-encoded. *)

val strategies : string list

val translate_native : Kgmodel.Supermodel.t -> Kgm_relational.Rschema.t
(** Direct OCaml implementation: the differential oracle. *)

val decode : Kgmodel.Dictionary.t -> int -> Kgm_relational.Rschema.t

val ddl : Kgm_relational.Rschema.t -> string
(** The Fig. 8 artifact rendered as SQL DDL. *)

val equal_schema :
  Kgm_relational.Rschema.t -> Kgm_relational.Rschema.t -> bool
(** Order-insensitive comparison (relations, fields, FKs sorted;
    FK names ignored up to source/target equality). *)
