lib/targets/pg_model.mli: Format Kgm_common Kgmodel Value
