lib/targets/relational_model.mli: Kgm_relational Kgmodel
