lib/targets/pg_model.ml: Buffer Format Hashtbl Kgm_common Kgm_error Kgm_graphdb Kgmodel List Printf String Value
