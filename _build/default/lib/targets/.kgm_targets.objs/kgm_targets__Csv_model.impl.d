lib/targets/csv_model.ml: Array Buffer Kgm_common Kgm_relational Kgmodel List Printf Relational_model String
