lib/targets/relational_model.ml: Buffer Hashtbl Kgm_common Kgm_error Kgm_graphdb Kgm_relational Kgmodel List Names Option Printf String Value
