lib/targets/triple_model.ml: Buffer Kgm_common Kgmodel List Printf Value
