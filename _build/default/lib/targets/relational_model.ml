open Kgm_common
module Supermodel = Kgmodel.Supermodel
module Rschema = Kgm_relational.Rschema

let strategies = [ "relation-per-member" ]

(* Substitute $S and $D, as in Pg_model. *)
let subst ~src ~dst template =
  let s = string_of_int src and d = string_of_int dst in
  let buf = Buffer.create (String.length template) in
  String.iteri
    (fun i c ->
      match c with
      | '$' -> ()
      | 'S' when i > 0 && template.[i - 1] = '$' -> Buffer.add_string buf s
      | 'D' when i > 0 && template.[i - 1] = '$' -> Buffer.add_string buf d
      | c -> Buffer.add_char buf c)
    template;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Eliminate (Sec. 5.3)                                                 *)

let eliminate_program ~src ~dst =
  subst ~src ~dst
    {|
%% Eliminate.CopyNodes
(n: SM_Node; schemaOID: $S, isIntensional: B), X = #rn$D(n)
  => (X: SM_Node; schemaOID: $D, isIntensional: B).

%% Eliminate.CopyTypes
(n: SM_Node; schemaOID: $S)-[: SM_HAS_NODE_TYPE; schemaOID: $S]->(t: SM_Type; schemaOID: $S, name: W),
  X = #rn$D(n), L = #rt$D(t), H = #rhnt$D(n, t)
  => (X)-[H: SM_HAS_NODE_TYPE; schemaOID: $D]->(L: SM_Type; schemaOID: $D, name: W).

%% Eliminate.CopyNodeAttributes
(n: SM_Node; schemaOID: $S)-[: SM_HAS_NODE_PROPERTY; schemaOID: $S]->(a: SM_Attribute; schemaOID: $S, name: W, type: T, isOpt: O, isId: I, isIntensional: B),
  X = #rn$D(n), A = #ran$D(n, a), H = #rhnp$D(n, a)
  => (X)-[H: SM_HAS_NODE_PROPERTY; schemaOID: $D]->(A: SM_Attribute; schemaOID: $D, name: W, type: T, isOpt: O, isId: I, isIntensional: B).

%% modifiers travel with node attributes
(n: SM_Node; schemaOID: $S)-[: SM_HAS_NODE_PROPERTY; schemaOID: $S]->(a: SM_Attribute; schemaOID: $S)-[: SM_HAS_MODIFIER; schemaOID: $S]->(m: SM_AttributeModifier; schemaOID: $S, kind: K, values: VS, value: DV, lo: LO, hi: HI),
  A = #ran$D(n, a), M = #rmn$D(n, a, m), H = #rhm$D(n, a, m)
  => (A)-[H: SM_HAS_MODIFIER; schemaOID: $D]->(M: SM_AttributeModifier; schemaOID: $D, kind: K, values: VS, value: DV, lo: LO, hi: HI).

%% Eliminate.CopyOneToManyEdges, case isFun1 (FROM side holds the FK):
%% direction preserved, attributes relocate to the FROM node copy
(e: SM_Edge; schemaOID: $S, isFun1: true, isIntensional: B, isOpt1: O1)-[: SM_HAS_EDGE_TYPE; schemaOID: $S]->(t: SM_Type; schemaOID: $S, name: W),
(e)-[: SM_FROM; schemaOID: $S]->(n: SM_Node; schemaOID: $S),
(e)-[: SM_TO; schemaOID: $S]->(m: SM_Node; schemaOID: $S),
  F = #re$D(e), X = #rn$D(n), Z = #rn$D(m),
  L = #rt$D(t), H = #rhet$D(e), U = #rfr$D(e), V = #rto$D(e)
  => (F: SM_Edge; schemaOID: $D, isIntensional: B, isOpt1: O1, isFun1: true, isOpt2: true, isFun2: false),
     (F)-[H: SM_HAS_EDGE_TYPE; schemaOID: $D]->(L: SM_Type; schemaOID: $D, name: W),
     (F)-[U: SM_FROM; schemaOID: $D]->(X),
     (F)-[V: SM_TO; schemaOID: $D]->(Z).

(e: SM_Edge; schemaOID: $S, isFun1: true, isOpt1: O1)-[: SM_FROM; schemaOID: $S]->(n: SM_Node; schemaOID: $S),
(e)-[: SM_HAS_EDGE_PROPERTY; schemaOID: $S]->(a: SM_Attribute; schemaOID: $S, name: W, type: T, isOpt: O, isId: I, isIntensional: B),
  X = #rn$D(n), A = #rae$D(e, a), H = #rhnp2$D(e, a), O2 = O or O1
  => (X)-[H: SM_HAS_NODE_PROPERTY; schemaOID: $D]->(A: SM_Attribute; schemaOID: $D, name: W, type: T, isOpt: O2, isId: I, isIntensional: B).

%% Eliminate.CopyOneToManyEdges, symmetric case isFun2 (TO side holds the FK):
%% direction reversed, attributes relocate to the TO node copy
(e: SM_Edge; schemaOID: $S, isFun1: false, isFun2: true, isIntensional: B, isOpt2: O2)-[: SM_HAS_EDGE_TYPE; schemaOID: $S]->(t: SM_Type; schemaOID: $S, name: W),
(e)-[: SM_FROM; schemaOID: $S]->(n: SM_Node; schemaOID: $S),
(e)-[: SM_TO; schemaOID: $S]->(m: SM_Node; schemaOID: $S),
  F = #re$D(e), X = #rn$D(n), Z = #rn$D(m),
  L = #rt$D(t), H = #rhet$D(e), U = #rfr$D(e), V = #rto$D(e)
  => (F: SM_Edge; schemaOID: $D, isIntensional: B, isOpt1: O2, isFun1: true, isOpt2: true, isFun2: false),
     (F)-[H: SM_HAS_EDGE_TYPE; schemaOID: $D]->(L: SM_Type; schemaOID: $D, name: W),
     (F)-[U: SM_FROM; schemaOID: $D]->(Z),
     (F)-[V: SM_TO; schemaOID: $D]->(X).

(e: SM_Edge; schemaOID: $S, isFun1: false, isFun2: true, isOpt2: O2)-[: SM_TO; schemaOID: $S]->(m: SM_Node; schemaOID: $S),
(e)-[: SM_HAS_EDGE_PROPERTY; schemaOID: $S]->(a: SM_Attribute; schemaOID: $S, name: W, type: T, isOpt: O, isId: I, isIntensional: B),
  Z = #rn$D(m), A = #rae$D(e, a), H = #rhnp2$D(e, a), OO = O or O2
  => (Z)-[H: SM_HAS_NODE_PROPERTY; schemaOID: $D]->(A: SM_Attribute; schemaOID: $D, name: W, type: T, isOpt: OO, isId: I, isIntensional: B).

%% Eliminate.DeleteManyToManyEdges(1): the bridge Predicate carries the
%% edge type and its attributes
(e: SM_Edge; schemaOID: $S, isFun1: false, isFun2: false, isIntensional: B)-[: SM_HAS_EDGE_TYPE; schemaOID: $S]->(t: SM_Type; schemaOID: $S, name: W),
  P = #rbg$D(e), L = #rt$D(t), H = #rhnt2$D(e)
  => (P: SM_Node; schemaOID: $D, isIntensional: B),
     (P)-[H: SM_HAS_NODE_TYPE; schemaOID: $D]->(L: SM_Type; schemaOID: $D, name: W).

(e: SM_Edge; schemaOID: $S, isFun1: false, isFun2: false)-[: SM_HAS_EDGE_PROPERTY; schemaOID: $S]->(a: SM_Attribute; schemaOID: $S, name: W, type: T, isOpt: O, isId: I, isIntensional: B),
  P = #rbg$D(e), A = #rae$D(e, a), H = #rhnp3$D(e, a)
  => (P)-[H: SM_HAS_NODE_PROPERTY; schemaOID: $D]->(A: SM_Attribute; schemaOID: $D, name: W, type: T, isOpt: O, isId: I, isIntensional: B).

%% Eliminate.DeleteManyToManyEdges(2): FK bridge -> TO endpoint
(e: SM_Edge; schemaOID: $S, isFun1: false, isFun2: false, isOpt1: OP1)-[: SM_HAS_EDGE_TYPE; schemaOID: $S]->(t: SM_Type; schemaOID: $S, name: W),
(e)-[: SM_TO; schemaOID: $S]->(m: SM_Node; schemaOID: $S),
  P = #rbg$D(e), Z = #rn$D(m), F = #rfkm$D(e),
  W2 = W ++ "_dst", L = #rtd$D(t), H = #rhet2$D(e), U = #rfr2$D(e), V = #rto2$D(e)
  => (F: SM_Edge; schemaOID: $D, isIntensional: false, isOpt1: OP1, isFun1: true, isOpt2: true, isFun2: false),
     (F)-[H: SM_HAS_EDGE_TYPE; schemaOID: $D]->(L: SM_Type; schemaOID: $D, name: W2),
     (F)-[U: SM_FROM; schemaOID: $D]->(P),
     (F)-[V: SM_TO; schemaOID: $D]->(Z).

%% Eliminate.DeleteManyToManyEdges(3): FK bridge -> FROM endpoint
(e: SM_Edge; schemaOID: $S, isFun1: false, isFun2: false, isOpt2: OP2)-[: SM_HAS_EDGE_TYPE; schemaOID: $S]->(t: SM_Type; schemaOID: $S, name: W),
(e)-[: SM_FROM; schemaOID: $S]->(n: SM_Node; schemaOID: $S),
  P = #rbg$D(e), X = #rn$D(n), F = #rfkn$D(e),
  W2 = W ++ "_src", L = #rts$D(t), H = #rhet3$D(e), U = #rfr3$D(e), V = #rto3$D(e)
  => (F: SM_Edge; schemaOID: $D, isIntensional: false, isOpt1: OP2, isFun1: true, isOpt2: true, isFun2: false),
     (F)-[H: SM_HAS_EDGE_TYPE; schemaOID: $D]->(L: SM_Type; schemaOID: $D, name: W2),
     (F)-[U: SM_FROM; schemaOID: $D]->(P),
     (F)-[V: SM_TO; schemaOID: $D]->(X).

%% modifiers travel with relocated edge attributes (all three cases
%% share the #rae skolem)
(e: SM_Edge; schemaOID: $S)-[: SM_HAS_EDGE_PROPERTY; schemaOID: $S]->(a: SM_Attribute; schemaOID: $S)-[: SM_HAS_MODIFIER; schemaOID: $S]->(m: SM_AttributeModifier; schemaOID: $S, kind: K, values: VS, value: DV, lo: LO, hi: HI),
  A = #rae$D(e, a), M = #rme$D(e, a, m), H = #rhme$D(e, a, m)
  => (A)-[H: SM_HAS_MODIFIER; schemaOID: $D]->(M: SM_AttributeModifier; schemaOID: $D, kind: K, values: VS, value: DV, lo: LO, hi: HI).

%% Eliminate.DeleteGeneralizations: inherited identifying attributes
(c: SM_Node; schemaOID: $S)-/ ([:SM_CHILD; schemaOID: $S]~ [:SM_PARENT; schemaOID: $S])* /->(n: SM_Node; schemaOID: $S),
(n)-[: SM_HAS_NODE_PROPERTY; schemaOID: $S]->(a: SM_Attribute; schemaOID: $S, name: W, type: T, isId: true),
  X = #rn$D(c), A = #rani$D(c, a), H = #rhnpi$D(c, a)
  => (X)-[H: SM_HAS_NODE_PROPERTY; schemaOID: $D]->(A: SM_Attribute; schemaOID: $D, name: W, type: T, isOpt: false, isId: true, isIntensional: false).

%% ... and an IS_A foreign key from each child to its direct parent
(g: SM_Generalization; schemaOID: $S)-[: SM_CHILD; schemaOID: $S]->(c: SM_Node; schemaOID: $S),
(g)-[: SM_PARENT; schemaOID: $S]->(p: SM_Node; schemaOID: $S),
(p)-[: SM_HAS_NODE_TYPE; schemaOID: $S]->(t: SM_Type; schemaOID: $S, name: W),
  F = #risa$D(g, c), X = #rn$D(c), Z = #rn$D(p),
  W2 = "IS_A_" ++ W, L = #rtisa$D(g, c), H = #rhet4$D(g, c), U = #rfr4$D(g, c), V = #rto4$D(g, c)
  => (F: SM_Edge; schemaOID: $D, isIntensional: false, isOpt1: false, isFun1: true, isOpt2: true, isFun2: false),
     (F)-[H: SM_HAS_EDGE_TYPE; schemaOID: $D]->(L: SM_Type; schemaOID: $D, name: W2),
     (F)-[U: SM_FROM; schemaOID: $D]->(X),
     (F)-[V: SM_TO; schemaOID: $D]->(Z).
|}

(* ------------------------------------------------------------------ *)
(* Copy: downcast into Predicate / Relation / Field / ForeignKey        *)

let copy_program ~src ~dst =
  subst ~src ~dst
    {|
%% Copy.StorePredicatesAndRelations
(n: SM_Node; schemaOID: $S)-[: SM_HAS_NODE_TYPE; schemaOID: $S]->(t: SM_Type; schemaOID: $S, name: W),
  X = #cp$D(n), L = #cr$D(t), H = #crel$D(n)
  => (X: Predicate; schemaOID: $D),
     (X)-[H: REL_OF; schemaOID: $D]->(L: Relation; schemaOID: $D, name: W).

%% Copy.StoreNodeAttributes
(n: SM_Node; schemaOID: $S)-[: SM_HAS_NODE_PROPERTY; schemaOID: $S]->(a: SM_Attribute; schemaOID: $S, name: W, type: T, isOpt: O, isId: I),
  X = #cp$D(n), A = #cf$D(a), H = #chf$D(n, a)
  => (X)-[H: HAS_FIELD; schemaOID: $D]->(A: Field; schemaOID: $D, name: W, type: T, isOpt: O, isId: I).

%% field modifiers (unique / enum / default / range)
(n: SM_Node; schemaOID: $S)-[: SM_HAS_NODE_PROPERTY; schemaOID: $S]->(a: SM_Attribute; schemaOID: $S)-[: SM_HAS_MODIFIER; schemaOID: $S]->(m: SM_AttributeModifier; schemaOID: $S, kind: K, values: VS, value: DV, lo: LO, hi: HI),
  A = #cf$D(a), M = #cfm$D(m, a), H = #chfm$D(m, a)
  => (A)-[H: HAS_MODIFIER; schemaOID: $D]->(M: FieldModifier; schemaOID: $D, kind: K, values: VS, value: DV, lo: LO, hi: HI).

%% Copy.StoreOneToManyEdges: surviving edges become ForeignKeys
(e: SM_Edge; schemaOID: $S, isOpt1: O1)-[: SM_HAS_EDGE_TYPE; schemaOID: $S]->(t: SM_Type; schemaOID: $S, name: W),
(e)-[: SM_FROM; schemaOID: $S]->(n: SM_Node; schemaOID: $S),
(e)-[: SM_TO; schemaOID: $S]->(m: SM_Node; schemaOID: $S),
  F = #cfk$D(e), X = #cp$D(n), Z = #cp$D(m), U = #cfkf$D(e), V = #cfkt$D(e)
  => (F: ForeignKey; schemaOID: $D, name: W, isOpt: O1),
     (F)-[U: FK_FROM; schemaOID: $D]->(X),
     (F)-[V: FK_TO; schemaOID: $D]->(Z).
|}

let mapping ?(strategy = "relation-per-member") () =
  if strategy <> "relation-per-member" then
    Kgm_error.translate_error "relational_model: unknown strategy %s" strategy;
  { Kgmodel.Ssst.model_name = "relational";
    strategy;
    eliminate = (fun ~src ~dst -> eliminate_program ~src ~dst);
    copy = (fun ~src ~dst -> copy_program ~src ~dst) }

(* ------------------------------------------------------------------ *)
(* Shared schema assembly: both the decoder and the native baseline
   produce an intermediate list of (relation, fields, fks) and feed it
   through [assemble], which resolves FK source fields and keys. *)

type proto_field = {
  pf_name : string;
  pf_ty : Value.ty;
  pf_nullable : bool;
  pf_id : bool;
  pf_unique : bool;
  pf_enum : string list;
  pf_default : Value.t option;
  pf_range : float option * float option;
}

type proto_fk = {
  pfk_name : string;
  pfk_source : string;  (* relation name *)
  pfk_target : string;
  pfk_nullable : bool;
}

let assemble (protos : (string * proto_field list) list) (fks : proto_fk list) =
  (* FK source fields: reuse an identically-named id field when present
     (the IS_A case), otherwise add <target>_<field> columns. Input
     order is normalized so the decoder and the native baseline assign
     identical column names. *)
  let fks = List.sort compare fks in
  let protos = ref protos in
  let find_rel name = List.assoc_opt name !protos in
  let set_rel name fields =
    protos := List.map (fun (n, f) -> if n = name then (n, fields) else (n, f)) !protos
  in
  let schema_fks = ref [] in
  let fk_names = Hashtbl.create 16 in
  let unique_fk_name base =
    let n = Option.value ~default:0 (Hashtbl.find_opt fk_names base) in
    Hashtbl.replace fk_names base (n + 1);
    if n = 0 then "fk_" ^ base else Printf.sprintf "fk_%s_%d" base n
  in
  List.iter
    (fun fk ->
      match find_rel fk.pfk_source, find_rel fk.pfk_target with
      | Some src_fields, Some tgt_fields ->
          let tgt_ids = List.filter (fun f -> f.pf_id) tgt_fields in
          let source_names =
            List.map
              (fun (idf : proto_field) ->
                let reuse =
                  List.exists
                    (fun f -> f.pf_name = idf.pf_name && f.pf_id)
                    src_fields
                in
                if reuse then idf.pf_name
                else begin
                  let base =
                    Names.to_snake_case fk.pfk_target ^ "_" ^ idf.pf_name
                  in
                  let cur = Option.value ~default:[] (find_rel fk.pfk_source) in
                  (* a second FK to the same target (self-referencing
                     bridge) needs a fresh column *)
                  let rec fresh i =
                    let cand = if i = 0 then base else Printf.sprintf "%s_%d" base i in
                    if List.exists (fun f -> f.pf_name = cand) cur then fresh (i + 1)
                    else cand
                  in
                  let col = fresh 0 in
                  set_rel fk.pfk_source
                    (cur
                     @ [ { idf with
                           pf_name = col;
                           pf_id = false;
                           pf_unique = false;
                           pf_enum = [];
                           pf_default = None;
                           pf_range = (None, None);
                           pf_nullable = fk.pfk_nullable } ]);
                  col
                end)
              tgt_ids
          in
          schema_fks :=
            { Rschema.fk_name = unique_fk_name fk.pfk_name;
              fk_source = fk.pfk_source;
              fk_fields = source_names;
              fk_target = fk.pfk_target;
              fk_target_fields = List.map (fun f -> f.pf_name) tgt_ids }
            :: !schema_fks
      | _ -> ())
    fks;
  (* keys: id fields; bridges fall back to their FK source fields *)
  let relations =
    List.map
      (fun (name, fields) ->
        let has_id = List.exists (fun f -> f.pf_id) fields in
        let fk_cols =
          List.concat_map
            (fun fk ->
              if fk.Rschema.fk_source = name then fk.Rschema.fk_fields else [])
            !schema_fks
        in
        let key_of f =
          if has_id then f.pf_id
          else if fk_cols <> [] then List.mem f.pf_name fk_cols
          else true
        in
        { Rschema.r_name = name;
          r_fields =
            List.map
              (fun f ->
                { Rschema.f_name = f.pf_name;
                  f_ty = f.pf_ty;
                  f_nullable = f.pf_nullable && not (key_of f);
                  f_key = key_of f;
                  f_unique = f.pf_unique && not (key_of f);
                  f_enum = f.pf_enum;
                  f_default = f.pf_default;
                  f_range = f.pf_range })
              fields })
      !protos
  in
  { Rschema.relations; foreign_keys = List.rev !schema_fks }

(* ------------------------------------------------------------------ *)
(* Native baseline                                                      *)

let proto_of_attr (a : Supermodel.attribute) ~force_opt =
  { pf_name = a.Supermodel.at_name;
    pf_ty = a.Supermodel.at_ty;
    pf_nullable = a.Supermodel.at_opt || force_opt;
    pf_id = a.Supermodel.at_id;
    pf_unique =
      List.exists (function Supermodel.Unique -> true | _ -> false)
        a.Supermodel.at_modifiers;
    pf_enum =
      List.concat_map
        (function Supermodel.Enum vs -> vs | _ -> [])
        a.Supermodel.at_modifiers;
    pf_default =
      List.find_map
        (function Supermodel.Default v -> Some v | _ -> None)
        a.Supermodel.at_modifiers;
    pf_range =
      (match
         List.find_map
           (function Supermodel.Range (lo, hi) -> Some (lo, hi) | _ -> None)
           a.Supermodel.at_modifiers
       with
       | Some r -> r
       | None -> (None, None)) }

let translate_native (s : Supermodel.t) =
  let protos = ref [] in
  let fks = ref [] in
  let add_rel name fields = protos := !protos @ [ (name, fields) ] in
  let append_fields name extra =
    protos :=
      List.map
        (fun (n, f) -> if n = name then (n, f @ extra) else (n, f))
        !protos
  in
  (* relations per node: own attributes + inherited identifying ones *)
  List.iter
    (fun (n : Supermodel.node) ->
      let inherited_ids =
        List.concat_map
          (fun anc ->
            match Supermodel.find_node s anc with
            | Some a ->
                List.filter (fun at -> at.Supermodel.at_id) a.Supermodel.n_attrs
            | None -> [])
          (Supermodel.ancestors s n.Supermodel.n_name)
      in
      add_rel n.Supermodel.n_name
        (List.map (proto_of_attr ~force_opt:false) n.Supermodel.n_attrs
         @ List.map
             (fun a ->
               { (proto_of_attr ~force_opt:false a) with
                 pf_unique = false;
                 pf_enum = [];
                 pf_default = None;
                 pf_range = (None, None) })
             inherited_ids))
    s.Supermodel.nodes;
  (* IS_A fks child -> parent *)
  List.iter
    (fun (g : Supermodel.generalization) ->
      List.iter
        (fun c ->
          fks :=
            { pfk_name = "IS_A_" ^ g.Supermodel.g_parent ^ "_" ^ c;
              pfk_source = c;
              pfk_target = g.Supermodel.g_parent;
              pfk_nullable = false }
            :: !fks)
        g.Supermodel.g_children)
    s.Supermodel.generalizations;
  (* edges *)
  List.iter
    (fun (e : Supermodel.edge) ->
      if e.Supermodel.e_fun1 then begin
        append_fields e.Supermodel.e_from
          (List.map (proto_of_attr ~force_opt:e.Supermodel.e_opt1)
             e.Supermodel.e_attrs);
        fks :=
          { pfk_name = e.Supermodel.e_name;
            pfk_source = e.Supermodel.e_from;
            pfk_target = e.Supermodel.e_to;
            pfk_nullable = e.Supermodel.e_opt1 }
          :: !fks
      end
      else if e.Supermodel.e_fun2 then begin
        append_fields e.Supermodel.e_to
          (List.map (proto_of_attr ~force_opt:e.Supermodel.e_opt2)
             e.Supermodel.e_attrs);
        fks :=
          { pfk_name = e.Supermodel.e_name;
            pfk_source = e.Supermodel.e_to;
            pfk_target = e.Supermodel.e_from;
            pfk_nullable = e.Supermodel.e_opt2 }
          :: !fks
      end
      else begin
        (* bridge relation *)
        add_rel e.Supermodel.e_name
          (List.map (proto_of_attr ~force_opt:false) e.Supermodel.e_attrs);
        fks :=
          { pfk_name = e.Supermodel.e_name ^ "_dst";
            pfk_source = e.Supermodel.e_name;
            pfk_target = e.Supermodel.e_to;
            pfk_nullable = e.Supermodel.e_opt1 }
          :: { pfk_name = e.Supermodel.e_name ^ "_src";
               pfk_source = e.Supermodel.e_name;
               pfk_target = e.Supermodel.e_from;
               pfk_nullable = e.Supermodel.e_opt2 }
          :: !fks
      end)
    s.Supermodel.edges;
  assemble !protos (List.rev !fks)

(* ------------------------------------------------------------------ *)
(* Decoder                                                              *)

let decode dict sid =
  let g = Kgmodel.Dictionary.graph dict in
  let module PG = Kgm_graphdb.Pgraph in
  let in_schema id = PG.node_prop g id "schemaOID" = Some (Value.Int sid) in
  let prop_string id k =
    match PG.node_prop g id k with
    | Some (Value.String s) -> s
    | _ -> Kgm_error.storage_error "relational decode: missing %s" k
  in
  let prop_bool ?(default = false) id k =
    match PG.node_prop g id k with Some (Value.Bool b) -> b | _ -> default
  in
  let preds = List.filter in_schema (PG.nodes_with_label g "Predicate") in
  let rel_name = Hashtbl.create 16 in
  let protos =
    List.map
      (fun id ->
        let name =
          match PG.neighbors_out ~label:"REL_OF" g id with
          | r :: _ -> prop_string r "name"
          | [] -> Kgm_error.storage_error "predicate without relation"
        in
        Hashtbl.add rel_name id name;
        let fields =
          PG.neighbors_out ~label:"HAS_FIELD" g id
          |> List.map (fun f ->
                 let unique = ref false and enum = ref [] in
                 let default = ref None and range = ref (None, None) in
                 List.iter
                   (fun m ->
                     match PG.node_prop g m "kind" with
                     | Some (Value.String "unique") -> unique := true
                     | Some (Value.String "enum") ->
                         (match PG.node_prop g m "values" with
                          | Some (Value.List vs) ->
                              enum :=
                                List.filter_map
                                  (function Value.String s -> Some s | _ -> None)
                                  vs
                          | _ -> ())
                     | Some (Value.String "default") ->
                         default := PG.node_prop g m "value"
                     | Some (Value.String "range") ->
                         let bound k =
                           match PG.node_prop g m k with
                           | Some (Value.Float x) -> Some x
                           | Some (Value.Int x) -> Some (float_of_int x)
                           | _ -> None
                         in
                         range := (bound "lo", bound "hi")
                     | _ -> ())
                   (PG.neighbors_out ~label:"HAS_MODIFIER" g f);
                 { pf_name = prop_string f "name";
                   pf_ty =
                     Option.value ~default:Value.TAny
                       (Value.ty_of_string (prop_string f "type"));
                   pf_nullable = prop_bool f "isOpt";
                   pf_id = prop_bool f "isId";
                   pf_unique = !unique;
                   pf_enum = !enum;
                   pf_default = !default;
                   pf_range = !range })
          |> List.sort compare
        in
        (name, fields))
      preds
    |> List.sort compare
  in
  let fks =
    List.filter in_schema (PG.nodes_with_label g "ForeignKey")
    |> List.map (fun id ->
           let endp label =
             match PG.neighbors_out ~label g id with
             | p :: _ -> Hashtbl.find rel_name p
             | [] -> Kgm_error.storage_error "fk without %s" label
           in
           { pfk_name = prop_string id "name";
             pfk_source = endp "FK_FROM";
             pfk_target = endp "FK_TO";
             pfk_nullable = prop_bool id "isOpt" })
    |> List.sort compare
  in
  assemble protos fks

(* ------------------------------------------------------------------ *)

let ddl = Kgm_relational.Sql.ddl

let normalize (s : Rschema.t) =
  let rels =
    List.sort compare
      (List.map
         (fun (r : Rschema.relation) ->
           { r with Rschema.r_fields = List.sort compare r.Rschema.r_fields })
         s.Rschema.relations)
  in
  let fks =
    List.sort compare
      (List.map
         (fun (fk : Rschema.foreign_key) ->
           (* names are synthetic: compare up to endpoints and fields *)
           { fk with Rschema.fk_name = "" })
         s.Rschema.foreign_keys)
  in
  (rels, fks)

let equal_schema a b = normalize a = normalize b
