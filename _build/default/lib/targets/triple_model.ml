(** The triple-store target model (RDF-S; paper Sec. 2.2: "for RDF
    stores, schemas can be rendered as RDF-S documents, to be validated
    by dedicated tools").

    Unlike the PG and relational targets, RDF-S natively supports
    generalizations (rdfs:subClassOf), so the Eliminate phase is the
    identity: every super-construct maps one-to-one —
    SM_Node -> rdfs:Class, SM_Attribute -> DatatypeProperty with
    rdfs:domain, SM_Edge -> ObjectProperty with rdfs:domain/rdfs:range,
    SM_Generalization -> rdfs:subClassOf. Because the mapping is a pure
    renaming, it is implemented natively; the MetaLog machinery would
    be a trivial copy. *)

open Kgm_common
module Supermodel = Kgmodel.Supermodel

type class_def = {
  c_name : string;
  c_super : string option;
  c_intensional : bool;
}

type property_def = {
  pr_name : string;
  pr_kind : [ `Datatype of Value.ty | `Object of string (* range class *) ];
  pr_domain : string;
  pr_functional : bool;
  pr_intensional : bool;
}

type schema = {
  classes : class_def list;
  properties : property_def list;
}

let translate_native (s : Supermodel.t) =
  let classes =
    List.map
      (fun (n : Supermodel.node) ->
        { c_name = n.Supermodel.n_name;
          c_super = Supermodel.parent_of s n.Supermodel.n_name;
          c_intensional = n.Supermodel.n_intensional })
      s.Supermodel.nodes
  in
  let data_props =
    List.concat_map
      (fun (n : Supermodel.node) ->
        List.map
          (fun (a : Supermodel.attribute) ->
            { pr_name = n.Supermodel.n_name ^ "_" ^ a.Supermodel.at_name;
              pr_kind = `Datatype a.Supermodel.at_ty;
              pr_domain = n.Supermodel.n_name;
              pr_functional = true;
              pr_intensional = a.Supermodel.at_intensional })
          n.Supermodel.n_attrs)
      s.Supermodel.nodes
  in
  let object_props =
    List.map
      (fun (e : Supermodel.edge) ->
        { pr_name = e.Supermodel.e_name;
          pr_kind = `Object e.Supermodel.e_to;
          pr_domain = e.Supermodel.e_from;
          pr_functional = e.Supermodel.e_fun1;
          pr_intensional = e.Supermodel.e_intensional })
      s.Supermodel.edges
  in
  (* edge attributes require reification in plain RDF-S; they become
     datatype properties of the reified statement class *)
  let reified =
    List.concat_map
      (fun (e : Supermodel.edge) ->
        if e.Supermodel.e_attrs = [] then []
        else
          List.map
            (fun (a : Supermodel.attribute) ->
              { pr_name = e.Supermodel.e_name ^ "_" ^ a.Supermodel.at_name;
                pr_kind = `Datatype a.Supermodel.at_ty;
                pr_domain = e.Supermodel.e_name ^ "Statement";
                pr_functional = true;
                pr_intensional = a.Supermodel.at_intensional })
            e.Supermodel.e_attrs)
      s.Supermodel.edges
  in
  let reified_classes =
    List.filter_map
      (fun (e : Supermodel.edge) ->
        if e.Supermodel.e_attrs = [] then None
        else
          Some
            { c_name = e.Supermodel.e_name ^ "Statement";
              c_super = None;
              c_intensional = e.Supermodel.e_intensional })
      s.Supermodel.edges
  in
  { classes = classes @ reified_classes;
    properties = data_props @ object_props @ reified }

let xsd_type = function
  | Value.TInt -> "xsd:integer"
  | Value.TFloat -> "xsd:double"
  | Value.TString -> "xsd:string"
  | Value.TBool -> "xsd:boolean"
  | Value.TDate -> "xsd:date"
  | Value.TId -> "xsd:anyURI"
  | Value.TAny -> "rdfs:Literal"

(** The RDF-S enforcement artifact, in Turtle syntax. *)
let to_rdfs ?(prefix = "http://kgmodel.example.org/schema#") s =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "@prefix : <%s> .\n@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
        @prefix owl: <http://www.w3.org/2002/07/owl#> .\n\
        @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n\n"
       prefix);
  List.iter
    (fun c ->
      Buffer.add_string buf (Printf.sprintf ":%s a rdfs:Class" c.c_name);
      (match c.c_super with
       | Some p -> Buffer.add_string buf (Printf.sprintf " ;\n    rdfs:subClassOf :%s" p)
       | None -> ());
      if c.c_intensional then
        Buffer.add_string buf " ;\n    rdfs:comment \"intensional\"";
      Buffer.add_string buf " .\n")
    s.classes;
  Buffer.add_char buf '\n';
  List.iter
    (fun p ->
      (match p.pr_kind with
       | `Datatype ty ->
           Buffer.add_string buf
             (Printf.sprintf
                ":%s a owl:DatatypeProperty ;\n    rdfs:domain :%s ;\n    rdfs:range %s"
                p.pr_name p.pr_domain (xsd_type ty))
       | `Object range ->
           Buffer.add_string buf
             (Printf.sprintf
                ":%s a owl:ObjectProperty ;\n    rdfs:domain :%s ;\n    rdfs:range :%s"
                p.pr_name p.pr_domain range));
      if p.pr_functional then
        Buffer.add_string buf " ;\n    a owl:FunctionalProperty";
      if p.pr_intensional then
        Buffer.add_string buf " ;\n    rdfs:comment \"intensional\"";
      Buffer.add_string buf " .\n")
    s.properties;
  Buffer.contents buf
