open Kgm_common
module Supermodel = Kgmodel.Supermodel

type property = {
  p_name : string;
  p_ty : Value.ty;
  p_mandatory : bool;
  p_unique : bool;
}

type node_kind = {
  nk_labels : string list;
  nk_props : property list;
  nk_intensional : bool;
}

type rel_kind = {
  rk_name : string;
  rk_from : string;
  rk_to : string;
  rk_props : property list;
  rk_intensional : bool;
}

type schema = {
  node_kinds : node_kind list;
  rel_kinds : rel_kind list;
}

let strategies = [ "multi-label"; "parent-edge" ]

(* ------------------------------------------------------------------ *)
(* The M(PG) mapping: Eliminate (Sec. 5.2, Examples 5.1/5.2)            *)

(* Substitute $S (source schemaOID) and $D (destination schemaOID) in a
   mapping template. Skolem functor names embed $D so repeated
   translations of the same source never collide. As in Example 5.1,
   every body PG node and edge atom carries the schemaOID attribute. *)
let subst ~src ~dst template =
  let s = string_of_int src and d = string_of_int dst in
  let buf = Buffer.create (String.length template) in
  String.iteri
    (fun i c ->
      match c with
      | '$' -> ()
      | 'S' when i > 0 && template.[i - 1] = '$' -> Buffer.add_string buf s
      | 'D' when i > 0 && template.[i - 1] = '$' -> Buffer.add_string buf d
      | c -> Buffer.add_char buf c)
    template;
  Buffer.contents buf

let eliminate_copy_rules ~src ~dst =
  subst ~src ~dst
    {|
%% Eliminate.CopyNodes
(n: SM_Node; schemaOID: $S, isIntensional: B), X = #n$D(n)
  => (X: SM_Node; schemaOID: $D, isIntensional: B).

%% Eliminate.CopyNodeTypes (own type, marked primary)
(n: SM_Node; schemaOID: $S)-[: SM_HAS_NODE_TYPE; schemaOID: $S]->(t: SM_Type; schemaOID: $S, name: W),
  X = #n$D(n), L = #t$D(t), H = #hnt$D(n, t)
  => (X)-[H: SM_HAS_NODE_TYPE; schemaOID: $D, isPrimary: true]->(L: SM_Type; schemaOID: $D, name: W).

%% Eliminate.CopyAttributes (node attributes)
(n: SM_Node; schemaOID: $S)-[: SM_HAS_NODE_PROPERTY; schemaOID: $S]->(a: SM_Attribute; schemaOID: $S, name: W, type: T, isOpt: O, isId: I, isIntensional: B),
  X = #n$D(n), A = #an$D(n, a), H = #hnp$D(n, a)
  => (X)-[H: SM_HAS_NODE_PROPERTY; schemaOID: $D]->(A: SM_Attribute; schemaOID: $D, name: W, type: T, isOpt: O, isId: I, isIntensional: B).

%% Eliminate.CopyUniqueAttributeModifier (all modifiers, in fact)
(n: SM_Node; schemaOID: $S)-[: SM_HAS_NODE_PROPERTY; schemaOID: $S]->(a: SM_Attribute; schemaOID: $S)-[: SM_HAS_MODIFIER; schemaOID: $S]->(m: SM_AttributeModifier; schemaOID: $S, kind: K),
  A = #an$D(n, a), M = #mn$D(n, a, m), H = #hm$D(n, a, m)
  => (A)-[H: SM_HAS_MODIFIER; schemaOID: $D]->(M: SM_AttributeModifier; schemaOID: $D, kind: K).

%% Eliminate.CopyEdges (edge construct with flags, type, endpoints)
(e: SM_Edge; schemaOID: $S, isIntensional: B, isOpt1: O1, isFun1: F1, isOpt2: O2, isFun2: F2)-[: SM_HAS_EDGE_TYPE; schemaOID: $S]->(t: SM_Type; schemaOID: $S, name: W),
(e)-[: SM_FROM; schemaOID: $S]->(n: SM_Node; schemaOID: $S),
(e)-[: SM_TO; schemaOID: $S]->(m: SM_Node; schemaOID: $S),
  F = #ed$D(e), X = #n$D(n), Z = #n$D(m),
  L = #t$D(t), H = #het$D(e), U = #fr$D(e), V = #to$D(e)
  => (F: SM_Edge; schemaOID: $D, isIntensional: B, isOpt1: O1, isFun1: F1, isOpt2: O2, isFun2: F2),
     (F)-[H: SM_HAS_EDGE_TYPE; schemaOID: $D]->(L: SM_Type; schemaOID: $D, name: W),
     (F)-[U: SM_FROM; schemaOID: $D]->(X),
     (F)-[V: SM_TO; schemaOID: $D]->(Z).

%% Eliminate.CopyAttributes (edge attributes)
(e: SM_Edge; schemaOID: $S)-[: SM_HAS_EDGE_PROPERTY; schemaOID: $S]->(a: SM_Attribute; schemaOID: $S, name: W, type: T, isOpt: O, isId: I, isIntensional: B),
  F = #ed$D(e), A = #ae$D(e, a), H = #hep$D(e, a)
  => (F)-[H: SM_HAS_EDGE_PROPERTY; schemaOID: $D]->(A: SM_Attribute; schemaOID: $D, name: W, type: T, isOpt: O, isId: I, isIntensional: B).
|}

(* DeleteGeneralizations(1)-(4) for the multi-label strategy *)
let eliminate_generalizations ~src ~dst =
  subst ~src ~dst
    {|
%% Eliminate.DeleteGeneralizations(1): ancestor types accumulate (Ex. 5.1)
(n: SM_Node; schemaOID: $S)-/ ([:SM_CHILD; schemaOID: $S]~ [:SM_PARENT; schemaOID: $S])* /->(a: SM_Node; schemaOID: $S),
(a)-[: SM_HAS_NODE_TYPE; schemaOID: $S]->(t: SM_Type; schemaOID: $S, name: W),
  X = #n$D(n), L = #t$D(t), H = #hnt$D(n, t)
  => (X)-[H: SM_HAS_NODE_TYPE; schemaOID: $D, isPrimary: false]->(L: SM_Type; schemaOID: $D, name: W).

%% Eliminate.DeleteGeneralizations(2): ancestor attributes inherited
(c: SM_Node; schemaOID: $S)-/ ([:SM_CHILD; schemaOID: $S]~ [:SM_PARENT; schemaOID: $S])* /->(n: SM_Node; schemaOID: $S),
(n)-[: SM_HAS_NODE_PROPERTY; schemaOID: $S]->(a: SM_Attribute; schemaOID: $S, name: W, type: T, isOpt: O, isId: I, isIntensional: B),
  X = #n$D(c), A = #an$D(c, a), H = #hnp$D(c, a)
  => (X)-[H: SM_HAS_NODE_PROPERTY; schemaOID: $D]->(A: SM_Attribute; schemaOID: $D, name: W, type: T, isOpt: O, isId: I, isIntensional: B).

%% inherited attribute modifiers
(c: SM_Node; schemaOID: $S)-/ ([:SM_CHILD; schemaOID: $S]~ [:SM_PARENT; schemaOID: $S])* /->(n: SM_Node; schemaOID: $S),
(n)-[: SM_HAS_NODE_PROPERTY; schemaOID: $S]->(a: SM_Attribute; schemaOID: $S)-[: SM_HAS_MODIFIER; schemaOID: $S]->(m: SM_AttributeModifier; schemaOID: $S, kind: K),
  A = #an$D(c, a), M = #mn$D(c, a, m), H = #hm$D(c, a, m)
  => (A)-[H: SM_HAS_MODIFIER; schemaOID: $D]->(M: SM_AttributeModifier; schemaOID: $D, kind: K).

%% Eliminate.DeleteGeneralizations(3), outgoing edges (Ex. 5.2)
(c: SM_Node; schemaOID: $S)-/ ([:SM_CHILD; schemaOID: $S]~ [:SM_PARENT; schemaOID: $S])* /->(n: SM_Node; schemaOID: $S),
(e: SM_Edge; schemaOID: $S, isIntensional: B, isOpt1: O1, isFun1: F1, isOpt2: O2, isFun2: F2)-[: SM_FROM; schemaOID: $S]->(n),
(e)-[: SM_TO; schemaOID: $S]->(m: SM_Node; schemaOID: $S),
(e)-[: SM_HAS_EDGE_TYPE; schemaOID: $S]->(t: SM_Type; schemaOID: $S, name: W),
  F = #eo$D(e, c), X = #n$D(c), Z = #n$D(m),
  L = #t$D(t), H = #heto$D(e, c), U = #fro$D(e, c), V = #too$D(e, c)
  => (F: SM_Edge; schemaOID: $D, isIntensional: B, isOpt1: O1, isFun1: F1, isOpt2: O2, isFun2: F2),
     (F)-[H: SM_HAS_EDGE_TYPE; schemaOID: $D]->(L: SM_Type; schemaOID: $D, name: W),
     (F)-[U: SM_FROM; schemaOID: $D]->(X),
     (F)-[V: SM_TO; schemaOID: $D]->(Z).

%% Eliminate.DeleteGeneralizations(4), outgoing edge attributes
(c: SM_Node; schemaOID: $S)-/ ([:SM_CHILD; schemaOID: $S]~ [:SM_PARENT; schemaOID: $S])* /->(n: SM_Node; schemaOID: $S),
(e: SM_Edge; schemaOID: $S)-[: SM_FROM; schemaOID: $S]->(n),
(e)-[: SM_HAS_EDGE_PROPERTY; schemaOID: $S]->(a: SM_Attribute; schemaOID: $S, name: W, type: T, isOpt: O, isId: I, isIntensional: B),
  F = #eo$D(e, c), A = #aeo$D(e, c, a), H = #hepo$D(e, c, a)
  => (F)-[H: SM_HAS_EDGE_PROPERTY; schemaOID: $D]->(A: SM_Attribute; schemaOID: $D, name: W, type: T, isOpt: O, isId: I, isIntensional: B).

%% Eliminate.DeleteGeneralizations(3), incoming edges
(c: SM_Node; schemaOID: $S)-/ ([:SM_CHILD; schemaOID: $S]~ [:SM_PARENT; schemaOID: $S])* /->(m: SM_Node; schemaOID: $S),
(e: SM_Edge; schemaOID: $S, isIntensional: B, isOpt1: O1, isFun1: F1, isOpt2: O2, isFun2: F2)-[: SM_TO; schemaOID: $S]->(m),
(e)-[: SM_FROM; schemaOID: $S]->(n: SM_Node; schemaOID: $S),
(e)-[: SM_HAS_EDGE_TYPE; schemaOID: $S]->(t: SM_Type; schemaOID: $S, name: W),
  F = #ei$D(e, c), X = #n$D(n), Z = #n$D(c),
  L = #t$D(t), H = #heti$D(e, c), U = #fri$D(e, c), V = #toi$D(e, c)
  => (F: SM_Edge; schemaOID: $D, isIntensional: B, isOpt1: O1, isFun1: F1, isOpt2: O2, isFun2: F2),
     (F)-[H: SM_HAS_EDGE_TYPE; schemaOID: $D]->(L: SM_Type; schemaOID: $D, name: W),
     (F)-[U: SM_FROM; schemaOID: $D]->(X),
     (F)-[V: SM_TO; schemaOID: $D]->(Z).

%% Eliminate.DeleteGeneralizations(4), incoming edge attributes
(c: SM_Node; schemaOID: $S)-/ ([:SM_CHILD; schemaOID: $S]~ [:SM_PARENT; schemaOID: $S])* /->(m: SM_Node; schemaOID: $S),
(e: SM_Edge; schemaOID: $S)-[: SM_TO; schemaOID: $S]->(m),
(e)-[: SM_HAS_EDGE_PROPERTY; schemaOID: $S]->(a: SM_Attribute; schemaOID: $S, name: W, type: T, isOpt: O, isId: I, isIntensional: B),
  F = #ei$D(e, c), A = #aei$D(e, c, a), H = #hepi$D(e, c, a)
  => (F)-[H: SM_HAS_EDGE_PROPERTY; schemaOID: $D]->(A: SM_Attribute; schemaOID: $D, name: W, type: T, isOpt: O, isId: I, isIntensional: B).
|}

(* parent-edge alternative: keep single labels, reify generalizations
   as IS_A relationships child -> parent *)
let eliminate_parent_edge ~src ~dst =
  subst ~src ~dst
    {|
%% parent-edge strategy: generalizations become IS_A relationships
(g: SM_Generalization; schemaOID: $S)-[: SM_CHILD; schemaOID: $S]->(c: SM_Node; schemaOID: $S),
(g)-[: SM_PARENT; schemaOID: $S]->(p: SM_Node; schemaOID: $S),
  E = #isa$D(g, c), X = #n$D(c), Z = #n$D(p),
  L = #isat$D(), H = #isah$D(g, c), U = #isaf$D(g, c), V = #isato$D(g, c)
  => (E: SM_Edge; schemaOID: $D, isIntensional: false, isOpt1: false, isFun1: true, isOpt2: true, isFun2: false),
     (E)-[H: SM_HAS_EDGE_TYPE; schemaOID: $D]->(L: SM_Type; schemaOID: $D, name: "IS_A"),
     (E)-[U: SM_FROM; schemaOID: $D]->(X),
     (E)-[V: SM_TO; schemaOID: $D]->(Z).
|}

(* ------------------------------------------------------------------ *)
(* Copy phase: downcast SM_* into PG-model constructs (Fig. 5)          *)

let copy_program ~src ~dst =
  subst ~src ~dst
    {|
%% Copy.StoreNodes
(n: SM_Node; schemaOID: $S, isIntensional: B), X = #pn$D(n)
  => (X: Node; schemaOID: $D, isIntensional: B).

%% Copy.StoreLabels (SM_Type specialized by Label via HAS_LABEL)
(n: SM_Node; schemaOID: $S)-[: SM_HAS_NODE_TYPE; schemaOID: $S, isPrimary: P]->(t: SM_Type; schemaOID: $S, name: W),
  X = #pn$D(n), L = #pl$D(t), H = #phl$D(n, t)
  => (X)-[H: HAS_LABEL; schemaOID: $D, isPrimary: P]->(L: Label; schemaOID: $D, name: W).

%% Copy.StoreRelationships
(e: SM_Edge; schemaOID: $S, isIntensional: B)-[: SM_HAS_EDGE_TYPE; schemaOID: $S]->(t: SM_Type; schemaOID: $S, name: W),
(e)-[: SM_FROM; schemaOID: $S]->(n: SM_Node; schemaOID: $S),
(e)-[: SM_TO; schemaOID: $S]->(m: SM_Node; schemaOID: $S),
  F = #pr$D(e), X = #pn$D(n), Z = #pn$D(m),
  L = #pl$D(t), H = #prt$D(e), U = #pfr$D(e), V = #pto$D(e)
  => (F: Relationship; schemaOID: $D, isIntensional: B),
     (F)-[H: REL_TYPE; schemaOID: $D]->(L: Label; schemaOID: $D, name: W),
     (F)-[U: PG_FROM; schemaOID: $D]->(X),
     (F)-[V: PG_TO; schemaOID: $D]->(Z).

%% Copy.StoreProperties (node-owned)
(n: SM_Node; schemaOID: $S)-[: SM_HAS_NODE_PROPERTY; schemaOID: $S]->(a: SM_Attribute; schemaOID: $S, name: W, type: T, isOpt: O, isId: I),
  X = #pn$D(n), A = #pp$D(a), H = #php$D(n, a)
  => (X)-[H: HAS_PROPERTY; schemaOID: $D]->(A: Property; schemaOID: $D, name: W, type: T, isOpt: O, isId: I).

%% Copy.StoreProperties (relationship-owned)
(e: SM_Edge; schemaOID: $S)-[: SM_HAS_EDGE_PROPERTY; schemaOID: $S]->(a: SM_Attribute; schemaOID: $S, name: W, type: T, isOpt: O, isId: I),
  F = #pr$D(e), A = #pp$D(a), H = #php2$D(e, a)
  => (F)-[H: HAS_PROPERTY; schemaOID: $D]->(A: Property; schemaOID: $D, name: W, type: T, isOpt: O, isId: I).

%% Copy.StoreUniquePropertyModifiers
(n: SM_Node; schemaOID: $S)-[: SM_HAS_NODE_PROPERTY; schemaOID: $S]->(a: SM_Attribute; schemaOID: $S)-[: SM_HAS_MODIFIER; schemaOID: $S]->(m: SM_AttributeModifier; schemaOID: $S, kind: K),
  K == "unique",
  A = #pp$D(a), M = #pum$D(m, a), H = #pumh$D(m, a)
  => (A)-[H: HAS_MODIFIER; schemaOID: $D]->(M: UniquePropertyModifier; schemaOID: $D).
|}

let mapping ?(strategy = "multi-label") () =
  let eliminate ~src ~dst =
    match strategy with
    | "multi-label" ->
        eliminate_copy_rules ~src ~dst ^ eliminate_generalizations ~src ~dst
    | "parent-edge" ->
        eliminate_copy_rules ~src ~dst ^ eliminate_parent_edge ~src ~dst
    | s -> Kgm_error.translate_error "pg_model: unknown strategy %s" s
  in
  { Kgmodel.Ssst.model_name = "property-graph";
    strategy;
    eliminate;
    copy = (fun ~src ~dst -> copy_program ~src ~dst) }

(* ------------------------------------------------------------------ *)
(* Native baseline (differential oracle for the MetaLog mapping)        *)

let prop_of_attr (a : Supermodel.attribute) =
  { p_name = a.Supermodel.at_name;
    p_ty = a.Supermodel.at_ty;
    p_mandatory = not a.Supermodel.at_opt;
    p_unique =
      a.Supermodel.at_id
      || List.exists
           (function Supermodel.Unique -> true | _ -> false)
           a.Supermodel.at_modifiers }

let dedup_props props =
  List.sort_uniq compare props

let translate_native ?(strategy = "multi-label") (s : Supermodel.t) =
  match strategy with
  | "multi-label" ->
      let node_kinds =
        List.map
          (fun (n : Supermodel.node) ->
            { nk_labels =
                n.Supermodel.n_name :: Supermodel.ancestors s n.Supermodel.n_name;
              nk_props =
                dedup_props
                  (List.map prop_of_attr
                     (Supermodel.all_attributes s n.Supermodel.n_name));
              nk_intensional = n.Supermodel.n_intensional })
          s.Supermodel.nodes
      in
      let rel_kinds =
        List.concat_map
          (fun (e : Supermodel.edge) ->
            let props = dedup_props (List.map prop_of_attr e.Supermodel.e_attrs) in
            let mk from to_ =
              { rk_name = e.Supermodel.e_name; rk_from = from; rk_to = to_;
                rk_props = props; rk_intensional = e.Supermodel.e_intensional }
            in
            mk e.Supermodel.e_from e.Supermodel.e_to
            :: List.map
                 (fun c -> mk c e.Supermodel.e_to)
                 (Supermodel.descendants s e.Supermodel.e_from)
            @ List.map
                (fun c -> mk e.Supermodel.e_from c)
                (Supermodel.descendants s e.Supermodel.e_to))
          s.Supermodel.edges
      in
      { node_kinds; rel_kinds = List.sort_uniq compare rel_kinds }
  | "parent-edge" ->
      let node_kinds =
        List.map
          (fun (n : Supermodel.node) ->
            { nk_labels = [ n.Supermodel.n_name ];
              nk_props = dedup_props (List.map prop_of_attr n.Supermodel.n_attrs);
              nk_intensional = n.Supermodel.n_intensional })
          s.Supermodel.nodes
      in
      let direct =
        List.map
          (fun (e : Supermodel.edge) ->
            { rk_name = e.Supermodel.e_name;
              rk_from = e.Supermodel.e_from;
              rk_to = e.Supermodel.e_to;
              rk_props = dedup_props (List.map prop_of_attr e.Supermodel.e_attrs);
              rk_intensional = e.Supermodel.e_intensional })
          s.Supermodel.edges
      in
      let is_a =
        List.concat_map
          (fun (g : Supermodel.generalization) ->
            List.map
              (fun c ->
                { rk_name = "IS_A"; rk_from = c; rk_to = g.Supermodel.g_parent;
                  rk_props = []; rk_intensional = false })
              g.Supermodel.g_children)
          s.Supermodel.generalizations
      in
      { node_kinds; rel_kinds = List.sort_uniq compare (direct @ is_a) }
  | s -> Kgm_error.translate_error "pg_model: unknown strategy %s" s

(* ------------------------------------------------------------------ *)
(* Decoding S' out of the dictionary                                    *)

let decode dict sid =
  let g = Kgmodel.Dictionary.graph dict in
  let module PG = Kgm_graphdb.Pgraph in
  let in_schema id = PG.node_prop g id "schemaOID" = Some (Value.Int sid) in
  let prop_string id k =
    match PG.node_prop g id k with
    | Some (Value.String s) -> s
    | _ -> Kgm_error.storage_error "pg decode: missing %s" k
  in
  let prop_bool ?(default = false) id k =
    match PG.node_prop g id k with Some (Value.Bool b) -> b | _ -> default
  in
  let decode_property id =
    let ty =
      match Value.ty_of_string (prop_string id "type") with
      | Some ty -> ty
      | None -> Value.TAny
    in
    let unique_mod =
      PG.neighbors_out ~label:"HAS_MODIFIER" g id
      |> List.exists (fun m -> List.mem "UniquePropertyModifier" (PG.node_labels g m))
    in
    { p_name = prop_string id "name";
      p_ty = ty;
      p_mandatory = not (prop_bool id "isOpt");
      p_unique = prop_bool id "isId" || unique_mod }
  in
  let label_of id = prop_string id "name" in
  let node_elems = List.filter in_schema (PG.nodes_with_label g "Node") in
  let primary_label id =
    let labelled =
      List.filter_map
        (fun e ->
          let _, dst = PG.edge_ends g e in
          if List.mem "Label" (PG.node_labels g dst) then
            Some (PG.edge_prop g e "isPrimary" = Some (Value.Bool true), label_of dst)
          else None)
        (PG.out_edges ~label:"HAS_LABEL" g id)
    in
    match List.find_opt fst labelled with
    | Some (_, l) -> l
    | None -> (
        match labelled with
        | (_, l) :: _ -> l
        | [] -> Kgm_error.storage_error "pg decode: node without label")
  in
  let node_of_elem = Hashtbl.create 16 in
  let node_kinds =
    List.map
      (fun id ->
        let primary = primary_label id in
        Hashtbl.add node_of_elem id primary;
        let labels =
          primary
          :: (PG.neighbors_out ~label:"HAS_LABEL" g id
              |> List.map label_of
              |> List.filter (fun l -> l <> primary)
              |> List.sort String.compare)
        in
        let props =
          PG.neighbors_out ~label:"HAS_PROPERTY" g id
          |> List.map decode_property
          |> List.sort_uniq compare
        in
        { nk_labels = labels; nk_props = props;
          nk_intensional = prop_bool id "isIntensional" })
      node_elems
  in
  let rel_elems = List.filter in_schema (PG.nodes_with_label g "Relationship") in
  let rel_kinds =
    List.map
      (fun id ->
        let name =
          match PG.neighbors_out ~label:"REL_TYPE" g id with
          | t :: _ -> label_of t
          | [] -> Kgm_error.storage_error "pg decode: relationship without type"
        in
        let endpoint label =
          match PG.neighbors_out ~label g id with
          | n :: _ -> Hashtbl.find node_of_elem n
          | [] -> Kgm_error.storage_error "pg decode: relationship without %s" label
        in
        { rk_name = name;
          rk_from = endpoint "PG_FROM";
          rk_to = endpoint "PG_TO";
          rk_props =
            PG.neighbors_out ~label:"HAS_PROPERTY" g id
            |> List.map decode_property
            |> List.sort_uniq compare;
          rk_intensional = prop_bool id "isIntensional" })
      rel_elems
  in
  { node_kinds = List.sort compare node_kinds;
    rel_kinds = List.sort_uniq compare rel_kinds }

(* ------------------------------------------------------------------ *)

let normalize s =
  { node_kinds =
      List.sort compare
        (List.map
           (fun nk ->
             { nk with
               nk_labels =
                 (match nk.nk_labels with
                  | primary :: rest -> primary :: List.sort compare rest
                  | [] -> []);
               nk_props = List.sort_uniq compare nk.nk_props })
           s.node_kinds);
    rel_kinds =
      List.sort_uniq compare
        (List.map
           (fun rk -> { rk with rk_props = List.sort_uniq compare rk.rk_props })
           s.rel_kinds) }

let equal_schema a b = normalize a = normalize b

let pp_property ppf p =
  Format.fprintf ppf "%s: %a%s%s" p.p_name Value.pp_ty p.p_ty
    (if p.p_mandatory then "" else "?")
    (if p.p_unique then " unique" else "")

let pp ppf s =
  List.iter
    (fun nk ->
      Format.fprintf ppf "(%s)%s {%a}@."
        (String.concat ":" nk.nk_labels)
        (if nk.nk_intensional then " ~" else "")
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           pp_property)
        nk.nk_props)
    s.node_kinds;
  List.iter
    (fun rk ->
      Format.fprintf ppf "(%s)-[%s%s {%a}]->(%s)@." rk.rk_from rk.rk_name
        (if rk.rk_intensional then " ~" else "")
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           pp_property)
        rk.rk_props rk.rk_to)
    s.rel_kinds

(* ------------------------------------------------------------------ *)

let enforcement_script s =
  let buf = Buffer.create 2048 in
  List.iter
    (fun nk ->
      match nk.nk_labels with
      | [] -> ()
      | primary :: _ ->
          List.iter
            (fun p ->
              if p.p_unique then
                Buffer.add_string buf
                  (Printf.sprintf
                     "CREATE CONSTRAINT %s_%s_unique IF NOT EXISTS FOR (n:%s) \
                      REQUIRE n.%s IS UNIQUE;\n"
                     (String.lowercase_ascii primary) p.p_name primary p.p_name);
              if p.p_mandatory then
                Buffer.add_string buf
                  (Printf.sprintf
                     "CREATE CONSTRAINT %s_%s_exists IF NOT EXISTS FOR (n:%s) \
                      REQUIRE n.%s IS NOT NULL;\n"
                     (String.lowercase_ascii primary) p.p_name primary p.p_name))
            nk.nk_props)
    s.node_kinds;
  List.iter
    (fun rk ->
      List.iter
        (fun p ->
          if p.p_mandatory then
            Buffer.add_string buf
              (Printf.sprintf
                 "CREATE CONSTRAINT rel_%s_%s_exists IF NOT EXISTS FOR \
                  ()-[r:%s]-() REQUIRE r.%s IS NOT NULL;\n"
                 (String.lowercase_ascii rk.rk_name) p.p_name rk.rk_name p.p_name))
        rk.rk_props)
    s.rel_kinds;
  Buffer.contents buf
