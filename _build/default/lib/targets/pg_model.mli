(** The Property-Graph target model (paper, Sec. 5.2 / Fig. 5).

    Constructs: [Node] (: SM_Node), [Relationship] (: SM_Edge), [Label]
    (: SM_Type), [Property] (: SM_Attribute), [UniquePropertyModifier];
    nodes may carry multiple labels, there is no generalization support,
    uniqueness constraints on properties are available.

    Two implementation strategies for generalizations (Algorithm 1,
    line 2):
    - ["multi-label"] (default, the paper's Sec. 5.2 mapping): children
      accumulate every ancestor label, inherit ancestor attributes, and
      ancestor edges are duplicated onto descendants
      (Eliminate.DeleteGeneralizations 1-4, Examples 5.1/5.2);
    - ["parent-edge"]: children keep a single label and an [IS_A]
      relationship to the parent (the node-tagging alternative the paper
      mentions for systems without multi-tagging). *)

open Kgm_common

type property = {
  p_name : string;
  p_ty : Value.ty;
  p_mandatory : bool;
  p_unique : bool;
}

type node_kind = {
  nk_labels : string list;  (** primary label first, then inherited *)
  nk_props : property list;
  nk_intensional : bool;
}

type rel_kind = {
  rk_name : string;
  rk_from : string;  (** primary label of the source node kind *)
  rk_to : string;
  rk_props : property list;
  rk_intensional : bool;
}

type schema = {
  node_kinds : node_kind list;
  rel_kinds : rel_kind list;
}

val mapping : ?strategy:string -> unit -> Kgmodel.Ssst.mapping
(** The M(PG) MetaLog mapping. Raises on unknown strategy. *)

val strategies : string list

val translate_native : ?strategy:string -> Kgmodel.Supermodel.t -> schema
(** Direct OCaml implementation of the Sec. 5.2 mapping: the baseline
    the MetaLog-driven translation is differentially tested against. *)

val decode : Kgmodel.Dictionary.t -> int -> schema
(** Read the translated schema S' out of the dictionary. *)

val enforcement_script : schema -> string
(** Cypher-style constraint script (ad-hoc schema enforcement for
    schema-less systems, Sec. 2.2): uniqueness and existence
    constraints per label/property. *)

val equal_schema : schema -> schema -> bool
(** Order-insensitive comparison used by differential tests. *)

val pp : Format.formatter -> schema -> unit
