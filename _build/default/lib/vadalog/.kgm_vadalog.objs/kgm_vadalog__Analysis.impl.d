lib/vadalog/analysis.ml: Array Kgm_common Kgm_error List Map Printf Queue Rule Set String Term
