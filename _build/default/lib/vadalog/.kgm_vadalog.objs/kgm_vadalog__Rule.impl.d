lib/vadalog/rule.ml: Expr Format Hashtbl Kgm_common List Printf String Term Value
