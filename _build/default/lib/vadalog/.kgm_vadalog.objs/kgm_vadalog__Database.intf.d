lib/vadalog/database.mli: Format Kgm_common Value
