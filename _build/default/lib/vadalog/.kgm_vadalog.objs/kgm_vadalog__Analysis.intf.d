lib/vadalog/analysis.mli: Map Rule Set
