lib/vadalog/parser.mli: Rule
