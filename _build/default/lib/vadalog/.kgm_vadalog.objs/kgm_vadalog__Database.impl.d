lib/vadalog/database.ml: Array Format Hashtbl Kgm_common List String Value
