lib/vadalog/engine.mli: Database Format Kgm_common Rule
