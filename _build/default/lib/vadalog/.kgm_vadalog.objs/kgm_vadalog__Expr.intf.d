lib/vadalog/expr.mli: Format Hashtbl Kgm_common Value
