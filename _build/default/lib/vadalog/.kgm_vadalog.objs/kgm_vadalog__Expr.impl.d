lib/vadalog/expr.ml: Float Format Hashtbl Kgm_common List Oid String Value
