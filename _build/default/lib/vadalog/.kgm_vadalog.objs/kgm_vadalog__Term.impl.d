lib/vadalog/term.ml: Format Kgm_common List String Value
