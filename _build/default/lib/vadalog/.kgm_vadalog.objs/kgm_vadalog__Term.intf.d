lib/vadalog/term.mli: Format Kgm_common Value
