lib/vadalog/rule.mli: Expr Format Kgm_common Term Value
