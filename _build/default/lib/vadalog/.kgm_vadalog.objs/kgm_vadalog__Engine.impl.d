lib/vadalog/engine.ml: Analysis Array Database Expr Format Hashtbl Kgm_common Kgm_error List Option Rule String Term Unix Value
