lib/vadalog/parser.ml: Expr Format Kgm_common Kgm_error Lexer List Option Printf Rule String Term Value
