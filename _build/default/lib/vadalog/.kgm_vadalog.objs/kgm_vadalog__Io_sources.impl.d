lib/vadalog/io_sources.ml: Array Database Kgm_common Kgm_error List Rule String Value
