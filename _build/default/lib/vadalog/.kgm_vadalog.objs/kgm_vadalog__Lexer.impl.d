lib/vadalog/lexer.ml: Buffer Kgm_common Kgm_error List Printf String
