(** Tokenizer shared by the Vadalog parser (and reused, with a few extra
    tokens, by the MetaLog parser in [kgm_metalog]). Comments run from
    ['%'] to end of line. *)

open Kgm_common

type token =
  | IDENT of string     (* identifier; case decides var vs symbol in term position *)
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN | RPAREN
  | LBRACKET | RBRACKET
  | LBRACE | RBRACE
  | COMMA | DOT | COLON | SEMI
  | IMPLIED_BY          (* :- *)
  | ARROW               (* => *)
  | EQ                  (* = *)
  | EQEQ | NEQ | LT | LE | GT | GE
  | PLUS | MINUS | STAR | SLASH | CONCAT (* ++ *)
  | AT | HASH | PIPE | TILDE | QUESTION
  | EOF

type t = {
  tok : token;
  line : int;
  col : int;
}

let token_name = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT i -> Printf.sprintf "integer %d" i
  | FLOAT f -> Printf.sprintf "float %g" f
  | STRING s -> Printf.sprintf "string %S" s
  | LPAREN -> "'('" | RPAREN -> "')'"
  | LBRACKET -> "'['" | RBRACKET -> "']'"
  | LBRACE -> "'{'" | RBRACE -> "'}'"
  | COMMA -> "','" | DOT -> "'.'" | COLON -> "':'" | SEMI -> "';'"
  | IMPLIED_BY -> "':-'" | ARROW -> "'=>'"
  | EQ -> "'='" | EQEQ -> "'=='" | NEQ -> "'!='"
  | LT -> "'<'" | LE -> "'<='" | GT -> "'>'" | GE -> "'>='"
  | PLUS -> "'+'" | MINUS -> "'-'" | STAR -> "'*'" | SLASH -> "'/'"
  | CONCAT -> "'++'"
  | AT -> "'@'" | HASH -> "'#'" | PIPE -> "'|'" | TILDE -> "'~'"
  | QUESTION -> "'?'"
  | EOF -> "end of input"

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let emit tok = toks := { tok; line = !line; col = !col } :: !toks in
  let advance () =
    (if !i < n && src.[!i] = '\n' then begin
       incr line;
       col := 0
     end);
    incr i;
    incr col
  in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '%' then
      while !i < n && src.[!i] <> '\n' do
        advance ()
      done
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        advance ()
      done;
      emit (IDENT (String.sub src start (!i - start)))
    end
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do
        advance ()
      done;
      let is_float =
        !i + 1 < n && src.[!i] = '.' && src.[!i + 1] >= '0' && src.[!i + 1] <= '9'
      in
      if is_float then begin
        advance ();
        while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do
          advance ()
        done;
        emit (FLOAT (float_of_string (String.sub src start (!i - start))))
      end
      else emit (INT (int_of_string (String.sub src start (!i - start))))
    end
    else if c = '"' then begin
      advance ();
      let buf = Buffer.create 16 in
      let closed = ref false in
      while not !closed do
        if !i >= n then Kgm_error.parse_error "line %d: unterminated string" !line;
        let c = src.[!i] in
        if c = '"' then begin
          advance ();
          closed := true
        end
        else if c = '\\' && !i + 1 < n then begin
          advance ();
          let e = src.[!i] in
          Buffer.add_char buf
            (match e with 'n' -> '\n' | 't' -> '\t' | c -> c);
          advance ()
        end
        else begin
          Buffer.add_char buf c;
          advance ()
        end
      done;
      emit (STRING (Buffer.contents buf))
    end
    else begin
      let two a b tok = peek 0 = Some a && peek 1 = Some b && (emit tok; advance (); advance (); true) in
      let one tok = emit tok; advance () in
      if two ':' '-' IMPLIED_BY then ()
      else if two '=' '>' ARROW then ()
      else if two '=' '=' EQEQ then ()
      else if two '!' '=' NEQ then ()
      else if two '<' '=' LE then ()
      else if two '>' '=' GE then ()
      else if two '+' '+' CONCAT then ()
      else
        match c with
        | '(' -> one LPAREN | ')' -> one RPAREN
        | '[' -> one LBRACKET | ']' -> one RBRACKET
        | '{' -> one LBRACE | '}' -> one RBRACE
        | ',' -> one COMMA | '.' -> one DOT | ':' -> one COLON | ';' -> one SEMI
        | '=' -> one EQ | '<' -> one LT | '>' -> one GT
        | '+' -> one PLUS | '-' -> one MINUS | '*' -> one STAR | '/' -> one SLASH
        | '@' -> one AT | '#' -> one HASH | '|' -> one PIPE | '~' -> one TILDE
        | '?' -> one QUESTION
        | c -> Kgm_error.parse_error "line %d: unexpected character %C" !line c
    end
  done;
  emit EOF;
  List.rev !toks
