(** Recursive-descent parser for the Vadalog concrete syntax.

    Conventions (Prolog-like, adapted for dictionary predicates):
    - a clause is [head :- body.] or a ground fact [p(c1, ..., cn).];
    - in term/expression position, identifiers starting with an
      uppercase letter or ['_'] are variables (['_'] alone is a fresh
      anonymous variable); lowercase identifiers are symbol constants
      (strings);
    - predicates may have any identifier shape ([SM_Node(...)]) because
      atom position is unambiguous;
    - assignments are [X = expr]; comparisons use [==, !=, <, <=, >, >=];
    - aggregations: [V = sum(W, <Z>)] is monotonic (usable in recursion,
      per Sec. 4), [V = sum(W)] stratified group-by, [V = dsum(W, <Z>)]
      stratified with distinct-contributor dedup; same for
      count/min/max/prod; [pack] builds attribute packs (Ex. 6.2);
    - Skolem functors are [#name(args)]; annotations [@name("a", ...).];
    - comments run from ['%'] to end of line.

    One syntactic pitfall: a body literal beginning with a lowercase
    identifier applied to arguments is an {e atom}, so a condition may
    not start with a builtin call — bind it first
    ([F = to_float(X), F > 2.0], not [to_float(X) > 2.0]). *)

val agg_op_of_string : string -> (Rule.agg_op * Rule.agg_mode option) option
(** Aggregation spelling table, shared with the MetaLog parser; the
    mode is [None] when it depends on the presence of contributors. *)

val parse_program : string -> Rule.program
(** Raises [Kgm_error.Error] ([Parse]) with a line number on syntax
    errors. *)

val parse_rule : string -> Rule.rule
(** Expects exactly one rule. *)
