(** Fact store of the Vadalog engine: per-predicate sets of tuples with
    lazily built hash indexes on bound-position patterns. Duplicate
    facts are silently ignored (set semantics). *)

open Kgm_common

type fact = Value.t array

type t

val create : unit -> t

val add : t -> string -> fact -> bool
(** [add db pred fact] inserts and returns [true] when the fact is new.
    Existing indexes on the predicate are maintained incrementally. *)

val mem : t -> string -> fact -> bool

val facts : t -> string -> fact list
(** Facts of a predicate in insertion order; [[]] for unknown
    predicates. *)

val count : t -> string -> int
val total : t -> int

val predicates : t -> string list
(** Every predicate with at least one fact, sorted. *)

val lookup : t -> string -> int list -> Value.t list -> fact list
(** [lookup db pred positions key]: the facts whose values at
    [positions] (ascending) equal [key] pointwise. Builds a hash index
    for the position pattern on first use; the empty pattern is a full
    scan. *)

val copy : t -> t
(** Deep copy (facts are copied; indexes are rebuilt lazily). *)

val pp : Format.formatter -> t -> unit
(** Every fact as [pred(v1, ..., vn).] lines, predicates sorted. *)
