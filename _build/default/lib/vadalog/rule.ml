(** Rules and programs of the Vadalog engine.

    A rule is φ(x,y) → ∃z ψ(x,z): [body] is a list of literals evaluated
    left to right; [head] is a conjunction of atoms. Head variables that
    are neither bound in the body nor assigned are the existentially
    quantified z and receive fresh labeled nulls (or linker-Skolem ids
    when an explicit [@sk] assignment produced them). *)

open Kgm_common

type atom = {
  pred : string;
  args : Term.t list;
}

type agg_op = Sum | Count | Min | Max | Prod | Pack

(** [Monotonic]: contributor-keyed aggregation usable inside recursion
    (the paper's [sum(w, ⟨z⟩)]); [Stratified]: classical group-by
    aggregation, evaluated after the body stratum saturates. *)
type agg_mode = Monotonic | Stratified

type aggregate = {
  result : string;              (** variable receiving the running value *)
  op : agg_op;
  weight : Expr.t;              (** aggregated expression *)
  contributors : string list;   (** ⟨z⟩ — dedup key inside a group *)
  mode : agg_mode;
}

type literal =
  | Pos of atom
  | Neg of atom                  (** stratified negation *)
  | Cond of Expr.t               (** boolean filter *)
  | Assign of string * Expr.t    (** x = expr *)
  | Agg of aggregate

type rule = {
  head : atom list;
  body : literal list;
  name : string;                 (** diagnostic label; "" when anonymous *)
}

type annotation = {
  a_name : string;               (** e.g. "input", "output", "bind" *)
  a_args : string list;
}

type program = {
  rules : rule list;
  facts : (string * Value.t list) list;
  annotations : annotation list;
}

let atom pred args = { pred; args }

let empty_program = { rules = []; facts = []; annotations = [] }

(* ------------------------------------------------------------------ *)
(* Variable accounting                                                  *)

let atom_vars a = Term.vars a.args

let literal_body_bound = function
  | Pos a -> atom_vars a
  | Assign (x, _) -> [ x ]
  | Agg g -> [ g.result ]
  | Neg _ | Cond _ -> []

let body_vars body =
  List.sort_uniq String.compare (List.concat_map literal_body_bound body)

let head_vars head = List.sort_uniq String.compare (List.concat_map atom_vars head)

let existential_vars r =
  let bound = body_vars r.body in
  List.filter (fun v -> not (List.mem v bound)) (head_vars r.head)

let is_fact r = r.body = [] && List.for_all (fun a -> Term.vars a.args = []) r.head

(* ------------------------------------------------------------------ *)
(* Well-formedness (range restriction)                                  *)

(** Every variable used by a condition, assignment rhs, aggregate or
    negated atom must be bound by a preceding positive literal; returns
    the list of violations. *)
let check_safety r =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun m -> errs := m :: !errs) fmt in
  let bound = Hashtbl.create 16 in
  let is_bound v = Hashtbl.mem bound v in
  let bind v = Hashtbl.replace bound v () in
  List.iter
    (fun lit ->
      (match lit with
       | Pos _ -> ()
       | Neg a ->
           List.iter
             (fun v -> if not (is_bound v) then err "%s: unbound %s in negation" r.name v)
             (atom_vars a)
       | Cond e ->
           List.iter
             (fun v -> if not (is_bound v) then err "%s: unbound %s in condition" r.name v)
             (Expr.vars e)
       | Assign (x, e) ->
           List.iter
             (fun v ->
               if v <> x && not (is_bound v) then
                 err "%s: unbound %s in assignment" r.name v)
             (Expr.vars e)
       | Agg g ->
           List.iter
             (fun v -> if not (is_bound v) then err "%s: unbound %s in aggregate" r.name v)
             (Expr.vars g.weight @ g.contributors));
      List.iter bind (literal_body_bound lit))
    r.body;
  List.rev !errs

(* ------------------------------------------------------------------ *)
(* Pretty-printing (round-trips through the parser)                     *)

let pp_atom ppf a =
  Format.fprintf ppf "%s(%a)" a.pred
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Term.pp)
    a.args

let pp_agg_op ppf op =
  Format.pp_print_string ppf
    (match op with
     | Sum -> "sum" | Count -> "count" | Min -> "min"
     | Max -> "max" | Prod -> "prod" | Pack -> "pack")

let pp_literal ppf = function
  | Pos a -> pp_atom ppf a
  | Neg a -> Format.fprintf ppf "not %a" pp_atom a
  | Cond e -> Expr.pp ppf e
  | Assign (x, e) -> Format.fprintf ppf "%s = %a" x Expr.pp e
  | Agg g ->
      let mode_mark = match g.mode with Monotonic -> "m" | Stratified -> "" in
      if g.contributors = [] then
        Format.fprintf ppf "%s = %s%a(%a)" g.result mode_mark pp_agg_op g.op
          Expr.pp g.weight
      else
        Format.fprintf ppf "%s = %s%a(%a, <%s>)" g.result mode_mark pp_agg_op
          g.op Expr.pp g.weight
          (String.concat ", " g.contributors)

let pp_rule ppf r =
  if r.body = [] then
    Format.fprintf ppf "%a."
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_atom)
      r.head
  else
    Format.fprintf ppf "@[<hov 2>%a :-@ %a.@]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_atom)
      r.head
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp_literal)
      r.body

let pp_program ppf p =
  List.iter
    (fun a ->
      Format.fprintf ppf "@%s(%s).@."
        a.a_name
        (String.concat ", " (List.map (Printf.sprintf "%S") a.a_args)))
    p.annotations;
  List.iter
    (fun (pred, args) ->
      Format.fprintf ppf "%s(%s).@." pred
        (String.concat ", " (List.map Value.to_string args)))
    p.facts;
  List.iter (fun r -> Format.fprintf ppf "%a@." pp_rule r) p.rules

let program_to_string p = Format.asprintf "%a" pp_program p
