(** Resolution of [@input] annotations (paper, Sec. 4: "the atoms ...
    are populated from the input sources via automatically generated
    annotations of the form [@input(atom, query)]").

    Two source forms are resolved here; graph-store extraction (the
    Cypher-style queries MTV generates) is performed in-process by
    {!Kgm_metalog.Pg_bridge}, so those annotations are documentation of
    what a remote deployment would run.

    - ["csv:<path>"]: a headerless CSV file, one fact per row; each cell
      is parsed as int, float, boolean or string (in that order);
    - ["inline:<r1>;<r2>;..."]: the same format inline, rows separated
      by [';'] — convenient for tests and small fixtures. *)

open Kgm_common

let parse_cell cell =
  match Value.parse Value.TAny (String.trim cell) with
  | Some v -> v
  | None -> Value.String cell

let parse_row row = Array.of_list (List.map parse_cell (String.split_on_char ',' row))

let load_rows db pred rows =
  let n = ref 0 in
  List.iter
    (fun row ->
      if String.trim row <> "" then
        if Database.add db pred (parse_row row) then incr n)
    rows;
  !n

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let strip_prefix ~prefix s =
  let lp = String.length prefix in
  if String.length s >= lp && String.sub s 0 lp = prefix then
    Some (String.sub s lp (String.length s - lp))
  else None

(** Load every resolvable [@input] source into the database; returns
    [(predicate, facts loaded)] for each resolved annotation.
    Unresolvable sources (e.g. the Cypher extraction queries) are
    skipped. Raises [Kgm_error.Error] when a csv file is unreadable. *)
let load_inputs (program : Rule.program) db =
  List.filter_map
    (fun (a : Rule.annotation) ->
      match a.Rule.a_name, a.Rule.a_args with
      | "input", [ pred; source ] -> (
          match strip_prefix ~prefix:"csv:" source with
          | Some path ->
              let doc =
                try read_file path
                with Sys_error m -> Kgm_error.storage_error "@input %s: %s" pred m
              in
              Some (pred, load_rows db pred (String.split_on_char '\n' doc))
          | None -> (
              match strip_prefix ~prefix:"inline:" source with
              | Some rows ->
                  Some (pred, load_rows db pred (String.split_on_char ';' rows))
              | None -> None))
      | _ -> None)
    program.Rule.annotations
