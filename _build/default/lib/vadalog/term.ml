(** Terms of Vadalog rules: constants from C ∪ I, variables from V.
    Labeled nulls from N appear only in facts ([Value.Null]), never in
    rule text. *)

open Kgm_common

type t =
  | Const of Value.t
  | Var of string

let compare a b =
  match a, b with
  | Const x, Const y -> Value.compare x y
  | Var x, Var y -> String.compare x y
  | Const _, Var _ -> -1
  | Var _, Const _ -> 1

let equal a b = compare a b = 0

let pp ppf = function
  | Const v -> Value.pp ppf v
  | Var x -> Format.pp_print_string ppf x

let to_string t = Format.asprintf "%a" pp t

let is_var = function Var _ -> true | Const _ -> false

let vars terms =
  List.filter_map (function Var x -> Some x | Const _ -> None) terms
