(** Recursive-descent parser for the Vadalog concrete syntax.

    Conventions (Prolog-like, adapted for dictionary predicates):
    - a clause is [head :- body.] or a ground fact [p(c1, ..., cn).];
    - in term/expression position, identifiers starting with an
      uppercase letter or ['_'] are variables (['_'] alone is a fresh
      anonymous variable); lowercase identifiers are symbol constants
      (strings) unless applied like a builtin function;
    - predicates may have any identifier shape, e.g. [SM_Node(...)],
      because atom position is unambiguous;
    - assignments are [X = expr]; comparisons use [==, !=, <, <=, >, >=];
    - aggregations: [V = sum(W, <Z1, Z2>)] (monotonic with contributor
      key, usable in recursion, per Sec. 4), [V = sum(W)] (stratified
      group-by); same for count/min/max/prod/pack; [msum] is an explicit
      alias of contributor-style sum;
    - Skolem functors are [#name(args)];
    - annotations are [@name("a", "b").]. *)

open Kgm_common

type state = {
  mutable toks : Lexer.t list;
  mutable fresh : int;
}

let peek st = match st.toks with t :: _ -> t | [] -> assert false

let next st =
  match st.toks with
  | t :: rest ->
      st.toks <- rest;
      t
  | [] -> assert false

let error st fmt =
  let t = peek st in
  Format.kasprintf
    (fun m ->
      Kgm_error.parse_error "line %d: %s (found %s)" t.Lexer.line m
        (Lexer.token_name t.Lexer.tok))
    fmt

let expect st tok =
  let t = next st in
  if t.Lexer.tok <> tok then
    Kgm_error.parse_error "line %d: expected %s, found %s" t.Lexer.line
      (Lexer.token_name tok)
      (Lexer.token_name t.Lexer.tok)

let accept st tok =
  match st.toks with
  | t :: rest when t.Lexer.tok = tok ->
      st.toks <- rest;
      true
  | _ -> false

let is_var_name s = s <> "" && ((s.[0] >= 'A' && s.[0] <= 'Z') || s.[0] = '_')

let fresh_var st =
  st.fresh <- st.fresh + 1;
  Printf.sprintf "_Anon%d" st.fresh

let ident st =
  match (next st).Lexer.tok with
  | Lexer.IDENT s -> s
  | tok -> Kgm_error.parse_error "expected identifier, found %s" (Lexer.token_name tok)

(* ------------------------------------------------------------------ *)
(* Expressions                                                          *)

let agg_op_of_string = function
  | "sum" -> Some (Rule.Sum, None)
  | "msum" -> Some (Rule.Sum, Some Rule.Monotonic)
  | "dsum" -> Some (Rule.Sum, Some Rule.Stratified)
  | "count" -> Some (Rule.Count, None)
  | "mcount" -> Some (Rule.Count, Some Rule.Monotonic)
  | "dcount" -> Some (Rule.Count, Some Rule.Stratified)
  | "min" -> Some (Rule.Min, None)
  | "dmin" -> Some (Rule.Min, Some Rule.Stratified)
  | "max" -> Some (Rule.Max, None)
  | "dmax" -> Some (Rule.Max, Some Rule.Stratified)
  | "prod" -> Some (Rule.Prod, None)
  | "mprod" -> Some (Rule.Prod, Some Rule.Monotonic)
  | "dprod" -> Some (Rule.Prod, Some Rule.Stratified)
  | "pack" -> Some (Rule.Pack, None)
  | _ -> None

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if accept st (Lexer.IDENT "or") then Expr.Or (lhs, parse_or st) else lhs

and parse_and st =
  let lhs = parse_not st in
  match (peek st).Lexer.tok with
  | Lexer.IDENT "and" ->
      ignore (next st);
      Expr.And (lhs, parse_and st)
  | _ -> lhs

and parse_not st =
  match (peek st).Lexer.tok with
  | Lexer.IDENT "not" ->
      ignore (next st);
      Expr.Not (parse_not st)
  | _ -> parse_cmp st

and parse_cmp st =
  let lhs = parse_additive st in
  let cmp c =
    ignore (next st);
    Expr.Cmp (c, lhs, parse_additive st)
  in
  match (peek st).Lexer.tok with
  | Lexer.EQEQ -> cmp Expr.Eq
  | Lexer.NEQ -> cmp Expr.Neq
  | Lexer.LT -> cmp Expr.Lt
  | Lexer.LE -> cmp Expr.Le
  | Lexer.GT -> cmp Expr.Gt
  | Lexer.GE -> cmp Expr.Ge
  | _ -> lhs

and parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let continue = ref true in
  while !continue do
    match (peek st).Lexer.tok with
    | Lexer.PLUS ->
        ignore (next st);
        lhs := Expr.Binop (Expr.Add, !lhs, parse_multiplicative st)
    | Lexer.MINUS ->
        ignore (next st);
        lhs := Expr.Binop (Expr.Sub, !lhs, parse_multiplicative st)
    | Lexer.CONCAT ->
        ignore (next st);
        lhs := Expr.Binop (Expr.Concat, !lhs, parse_multiplicative st)
    | _ -> continue := false
  done;
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match (peek st).Lexer.tok with
    | Lexer.STAR ->
        ignore (next st);
        lhs := Expr.Binop (Expr.Mul, !lhs, parse_unary st)
    | Lexer.SLASH ->
        ignore (next st);
        lhs := Expr.Binop (Expr.Div, !lhs, parse_unary st)
    | _ -> continue := false
  done;
  !lhs

and parse_unary st =
  if accept st Lexer.MINUS then
    Expr.Binop (Expr.Sub, Expr.Const (Value.Int 0), parse_primary st)
  else parse_primary st

and parse_args st =
  expect st Lexer.LPAREN;
  if accept st Lexer.RPAREN then []
  else begin
    let rec loop acc =
      let e = parse_expr st in
      if accept st Lexer.COMMA then loop (e :: acc)
      else begin
        expect st Lexer.RPAREN;
        List.rev (e :: acc)
      end
    in
    loop []
  end

and parse_primary st =
  let t = next st in
  match t.Lexer.tok with
  | Lexer.INT i -> Expr.Const (Value.Int i)
  | Lexer.FLOAT f -> Expr.Const (Value.Float f)
  | Lexer.STRING s -> Expr.Const (Value.String s)
  | Lexer.LPAREN ->
      let e = parse_expr st in
      expect st Lexer.RPAREN;
      e
  | Lexer.HASH ->
      let name = ident st in
      Expr.Skolem (name, parse_args st)
  | Lexer.IDENT "true" -> Expr.Const (Value.Bool true)
  | Lexer.IDENT "false" -> Expr.Const (Value.Bool false)
  | Lexer.IDENT s when (peek st).Lexer.tok = Lexer.LPAREN ->
      Expr.Fun (s, parse_args st)
  | Lexer.IDENT s when is_var_name s ->
      if s = "_" then Expr.Var (fresh_var st) else Expr.Var s
  | Lexer.IDENT s -> Expr.Const (Value.String s)
  | tok ->
      Kgm_error.parse_error "line %d: unexpected %s in expression" t.Lexer.line
        (Lexer.token_name tok)

(* ------------------------------------------------------------------ *)
(* Atoms, literals, clauses                                             *)

let parse_term st =
  let t = next st in
  match t.Lexer.tok with
  | Lexer.INT i -> Term.Const (Value.Int i)
  | Lexer.FLOAT f -> Term.Const (Value.Float f)
  | Lexer.STRING s -> Term.Const (Value.String s)
  | Lexer.MINUS ->
      (match (next st).Lexer.tok with
       | Lexer.INT i -> Term.Const (Value.Int (-i))
       | Lexer.FLOAT f -> Term.Const (Value.Float (-.f))
       | tok -> Kgm_error.parse_error "expected number after '-', found %s" (Lexer.token_name tok))
  | Lexer.IDENT "true" -> Term.Const (Value.Bool true)
  | Lexer.IDENT "false" -> Term.Const (Value.Bool false)
  | Lexer.IDENT s when is_var_name s ->
      if s = "_" then Term.Var (fresh_var st) else Term.Var s
  | Lexer.IDENT s -> Term.Const (Value.String s)
  | tok ->
      Kgm_error.parse_error "line %d: unexpected %s in term" t.Lexer.line
        (Lexer.token_name tok)

let parse_atom st name =
  expect st Lexer.LPAREN;
  if accept st Lexer.RPAREN then Rule.atom name []
  else begin
    let rec loop acc =
      let t = parse_term st in
      if accept st Lexer.COMMA then loop (t :: acc)
      else begin
        expect st Lexer.RPAREN;
        Rule.atom name (List.rev (t :: acc))
      end
    in
    loop []
  end

(* [V = op(expr, <Z1,...>)] or [V = expr]; caller has consumed V and '='. *)
let parse_assignment_rhs st result =
  match (peek st).Lexer.tok with
  | Lexer.IDENT name when agg_op_of_string name <> None
                          && (match st.toks with
                              | _ :: { Lexer.tok = Lexer.LPAREN; _ } :: _ -> true
                              | _ -> false) ->
      let op, forced_mode = Option.get (agg_op_of_string name) in
      ignore (next st);
      expect st Lexer.LPAREN;
      let weight = parse_expr st in
      let contributors =
        if accept st Lexer.COMMA then begin
          expect st Lexer.LT;
          let rec loop acc =
            let v = ident st in
            if accept st Lexer.COMMA then loop (v :: acc) else List.rev (v :: acc)
          in
          let vs = loop [] in
          expect st Lexer.GT;
          vs
        end
        else []
      in
      expect st Lexer.RPAREN;
      let mode =
        match forced_mode with
        | Some m -> m
        | None -> if contributors = [] then Rule.Stratified else Rule.Monotonic
      in
      Rule.Agg { result; op; weight; contributors; mode }
  | _ -> Rule.Assign (result, parse_expr st)

let parse_literal st =
  match (peek st).Lexer.tok with
  | Lexer.IDENT "not" ->
      ignore (next st);
      let name = ident st in
      Rule.Neg (parse_atom st name)
  | Lexer.IDENT s
    when (match st.toks with
          | _ :: { Lexer.tok = Lexer.LPAREN; _ } :: _ -> not (is_var_name s)
          | _ -> false) ->
      ignore (next st);
      Rule.Pos (parse_atom st s)
  | Lexer.IDENT s
    when is_var_name s
         && (match st.toks with
             | _ :: { Lexer.tok = Lexer.EQ; _ } :: _ -> true
             | _ -> false) ->
      ignore (next st);
      expect st Lexer.EQ;
      parse_assignment_rhs st s
  | Lexer.IDENT s
    when (match st.toks with
          | _ :: { Lexer.tok = Lexer.LPAREN; _ } :: _ -> true
          | _ -> false)
         && is_var_name s
         && String.length s > 1 ->
      (* uppercase identifier applied to arguments: dictionary predicates
         like SM_Node(...) are atoms, not expressions *)
      ignore (next st);
      Rule.Pos (parse_atom st s)
  | _ -> Rule.Cond (parse_expr st)

let parse_head_atom st =
  let name = ident st in
  parse_atom st name

let parse_clause st =
  let rec heads acc =
    let a = parse_head_atom st in
    if accept st Lexer.COMMA then heads (a :: acc) else List.rev (a :: acc)
  in
  let head = heads [] in
  let body =
    if accept st Lexer.IMPLIED_BY then begin
      let rec lits acc =
        let l = parse_literal st in
        if accept st Lexer.COMMA then lits (l :: acc) else List.rev (l :: acc)
      in
      lits []
    end
    else []
  in
  expect st Lexer.DOT;
  { Rule.head; body; name = "" }

let parse_annotation st =
  expect st Lexer.AT;
  let name = ident st in
  expect st Lexer.LPAREN;
  let rec loop acc =
    match (next st).Lexer.tok with
    | Lexer.STRING s | Lexer.IDENT s ->
        if accept st Lexer.COMMA then loop (s :: acc)
        else begin
          expect st Lexer.RPAREN;
          List.rev (s :: acc)
        end
    | tok ->
        Kgm_error.parse_error "annotation: expected string, found %s"
          (Lexer.token_name tok)
  in
  let args = if accept st Lexer.RPAREN then [] else loop [] in
  expect st Lexer.DOT;
  { Rule.a_name = name; a_args = args }

let parse_program src =
  let st = { toks = Lexer.tokenize src; fresh = 0 } in
  let rules = ref [] and facts = ref [] and annotations = ref [] in
  let rec loop () =
    match (peek st).Lexer.tok with
    | Lexer.EOF -> ()
    | Lexer.AT ->
        annotations := parse_annotation st :: !annotations;
        loop ()
    | Lexer.IDENT _ ->
        let clause = parse_clause st in
        (if Rule.is_fact clause then
           List.iter
             (fun (a : Rule.atom) ->
               let args =
                 List.map
                   (function Term.Const v -> v | Term.Var _ -> assert false)
                   a.Rule.args
               in
               facts := (a.Rule.pred, args) :: !facts)
             clause.Rule.head
         else rules := clause :: !rules);
        loop ()
    | _ -> error st "expected clause or annotation"
  in
  loop ();
  { Rule.rules = List.rev !rules;
    facts = List.rev !facts;
    annotations = List.rev !annotations }

let parse_rule src =
  match (parse_program src).Rule.rules with
  | [ r ] -> r
  | rs -> Kgm_error.parse_error "expected exactly one rule, got %d" (List.length rs)
