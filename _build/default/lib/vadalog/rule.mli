(** Rules and programs of the Vadalog engine (paper, Sec. 4).

    A rule is φ(x,y) → ∃z ψ(x,z): the [body] is a list of literals
    evaluated left to right; the [head] is a conjunction of atoms. Head
    variables that are neither bound in the body nor assigned are the
    existentially quantified z: the chase gives them fresh labeled
    nulls, or linker-Skolem identifiers when bound with [#sk(...)]. *)

open Kgm_common

type atom = {
  pred : string;
  args : Term.t list;
}

type agg_op = Sum | Count | Min | Max | Prod | Pack

(** [Monotonic]: contributor-keyed streaming aggregation, usable inside
    recursion (the paper's [sum(w, ⟨z⟩)]); [Stratified]: classical
    group-by aggregation evaluated once its stratum's inputs are
    saturated. *)
type agg_mode = Monotonic | Stratified

type aggregate = {
  result : string;             (** variable receiving the value *)
  op : agg_op;
  weight : Expr.t;             (** aggregated expression *)
  contributors : string list;  (** ⟨z⟩ — dedup key inside a group *)
  mode : agg_mode;
}

type literal =
  | Pos of atom
  | Neg of atom                (** stratified negation *)
  | Cond of Expr.t             (** boolean filter *)
  | Assign of string * Expr.t  (** [x = expr]; equality check when bound *)
  | Agg of aggregate

type rule = {
  head : atom list;
  body : literal list;
  name : string;               (** diagnostic label; "" when anonymous *)
}

type annotation = {
  a_name : string;             (** e.g. "input", "output" (Ex. 4.4) *)
  a_args : string list;
}

type program = {
  rules : rule list;
  facts : (string * Value.t list) list;
  annotations : annotation list;
}

val atom : string -> Term.t list -> atom
val empty_program : program

(** {1 Variable accounting} *)

val atom_vars : atom -> string list

val literal_body_bound : literal -> string list
(** Variables a literal binds when evaluated (positive atoms,
    assignments, aggregate results). *)

val body_vars : literal list -> string list
(** Variables bound by the body (positive atoms, assignments,
    aggregates), sorted and deduplicated. *)

val head_vars : atom list -> string list

val existential_vars : rule -> string list
(** Head variables not bound by the body — the ∃z of the rule. *)

val is_fact : rule -> bool

val check_safety : rule -> string list
(** Range-restriction violations in evaluation order; empty = safe. *)

(** {1 Pretty-printing (round-trips through {!Parser})} *)

val pp_atom : Format.formatter -> atom -> unit
val pp_literal : Format.formatter -> literal -> unit
val pp_rule : Format.formatter -> rule -> unit
val pp_program : Format.formatter -> program -> unit
val program_to_string : program -> string
