(** Terms of Vadalog rules: constants from C ∪ I, variables from V
    (paper, Sec. 4). Labeled nulls from N appear only inside facts
    ([Kgm_common.Value.Null]), never in rule text. *)

open Kgm_common

type t =
  | Const of Value.t
  | Var of string

val compare : t -> t -> int
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val is_var : t -> bool

val vars : t list -> string list
(** The variable names among the given terms, in order, duplicates
    preserved. *)
