(** Fact store of the Vadalog engine: per-predicate sets of tuples with
    lazily built hash indexes on bound-position patterns. *)

open Kgm_common

type fact = Value.t array

let fact_key (f : fact) = Array.to_list f

type pred_store = {
  mutable facts : fact list;                     (* reverse insertion order *)
  mutable count : int;
  set : (Value.t list, unit) Hashtbl.t;
  indexes : (int list, (Value.t list, fact list ref) Hashtbl.t) Hashtbl.t;
}

type t = { preds : (string, pred_store) Hashtbl.t; mutable total : int }

let create () = { preds = Hashtbl.create 64; total = 0 }

let store t pred =
  match Hashtbl.find_opt t.preds pred with
  | Some s -> s
  | None ->
      let s =
        { facts = []; count = 0; set = Hashtbl.create 256; indexes = Hashtbl.create 4 }
      in
      Hashtbl.add t.preds pred s;
      s

let index_key positions fact = List.map (fun i -> fact.(i)) positions

let index_insert idx positions fact =
  let k = index_key positions fact in
  match Hashtbl.find_opt idx k with
  | Some l -> l := fact :: !l
  | None -> Hashtbl.add idx k (ref [ fact ])

(** [add t pred fact] returns [true] when the fact is new. *)
let add t pred fact =
  let s = store t pred in
  let k = fact_key fact in
  if Hashtbl.mem s.set k then false
  else begin
    Hashtbl.add s.set k ();
    s.facts <- fact :: s.facts;
    s.count <- s.count + 1;
    t.total <- t.total + 1;
    Hashtbl.iter (fun positions idx -> index_insert idx positions fact) s.indexes;
    true
  end

let mem t pred fact =
  match Hashtbl.find_opt t.preds pred with
  | Some s -> Hashtbl.mem s.set (fact_key fact)
  | None -> false

let facts t pred =
  match Hashtbl.find_opt t.preds pred with
  | Some s -> List.rev s.facts
  | None -> []

let count t pred =
  match Hashtbl.find_opt t.preds pred with Some s -> s.count | None -> 0

let total t = t.total

let predicates t =
  Hashtbl.fold (fun p _ acc -> p :: acc) t.preds [] |> List.sort String.compare

(** Facts whose values at [positions] equal [key]. Builds (and then
    maintains) a hash index for the position pattern on first use; an
    empty pattern is a full scan. *)
let lookup t pred positions key =
  match Hashtbl.find_opt t.preds pred with
  | None -> []
  | Some s ->
      if positions = [] then List.rev s.facts
      else begin
        let idx =
          match Hashtbl.find_opt s.indexes positions with
          | Some idx -> idx
          | None ->
              let idx = Hashtbl.create (max 64 s.count) in
              List.iter (fun f -> index_insert idx positions f) s.facts;
              Hashtbl.add s.indexes positions idx;
              idx
        in
        match Hashtbl.find_opt idx key with
        | Some l -> List.rev !l
        | None -> []
      end

let copy t =
  let t' = create () in
  Hashtbl.iter
    (fun pred s ->
      List.iter (fun f -> ignore (add t' pred (Array.copy f))) (List.rev s.facts))
    t.preds;
  t'

let pp ppf t =
  List.iter
    (fun pred ->
      List.iter
        (fun f ->
          Format.fprintf ppf "%s(%s).@." pred
            (String.concat ", " (List.map Value.to_string (Array.to_list f))))
        (facts t pred))
    (predicates t)
