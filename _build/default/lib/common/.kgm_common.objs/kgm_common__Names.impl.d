lib/common/names.ml: Buffer Char List String
