lib/common/oid.ml: Format Hashtbl Int List String
