lib/common/names.mli:
