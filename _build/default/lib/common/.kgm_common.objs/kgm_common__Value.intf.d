lib/common/value.mli: Format Oid
