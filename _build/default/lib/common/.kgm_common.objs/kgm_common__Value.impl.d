lib/common/value.ml: Bool Float Format Hashtbl Int List Oid Option String
