lib/common/kgm_error.ml: Format Result
