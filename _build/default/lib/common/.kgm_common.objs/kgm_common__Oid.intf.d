lib/common/oid.mli: Format
