let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_digit c = c >= '0' && c <= '9'
let is_word c = is_alpha c || is_digit c || c = '_'

let all_chars p s =
  let ok = ref true in
  String.iter (fun c -> if not (p c) then ok := false) s;
  !ok

let is_pascal_case s =
  String.length s > 0
  && s.[0] >= 'A' && s.[0] <= 'Z'
  && all_chars (fun c -> is_alpha c || is_digit c) s

let is_upper_case s =
  String.length s > 0
  && s.[0] >= 'A' && s.[0] <= 'Z'
  && all_chars (fun c -> (c >= 'A' && c <= 'Z') || is_digit c || c = '_') s

let is_camel_case s =
  String.length s > 0
  && s.[0] >= 'a' && s.[0] <= 'z'
  && all_chars (fun c -> is_alpha c || is_digit c) s

let to_snake_case s =
  let buf = Buffer.create (String.length s + 4) in
  String.iteri
    (fun i c ->
      if c >= 'A' && c <= 'Z' then begin
        (* word boundary only after a lowercase letter or digit, so
           acronym runs like HOLDS or HAS_ROLE stay intact *)
        let boundary =
          i > 0
          &&
          let p = s.[i - 1] in
          (p >= 'a' && p <= 'z') || is_digit p
        in
        if boundary then Buffer.add_char buf '_';
        Buffer.add_char buf (Char.lowercase_ascii c)
      end
      else Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_pascal_case s =
  let parts = String.split_on_char '_' s in
  let capitalize p =
    if p = "" then "" else String.capitalize_ascii p
  in
  String.concat "" (List.map capitalize parts)

let sanitize_identifier s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c -> Buffer.add_char buf (if is_word c then c else '_'))
    s;
  let r = Buffer.contents buf in
  if r = "" then "x"
  else if is_alpha r.[0] then r
  else "x" ^ r
