(** Object identifiers.

    Every construct instance at every level of the KGModel stack is
    identified by a unique internal OID. Besides freshly generated OIDs,
    the paper's {e linker Skolem functors} (Sec. 4) deterministically mint
    identifiers from a functor name and a tuple of argument values; the
    images of distinct functors are disjoint and disjoint from the fresh
    space, which we obtain by tagging. *)

type t

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

type gen
(** A generator of fresh OIDs. Generators are independent: OIDs from two
    generators may collide, so use one generator per dictionary/universe. *)

val make_gen : unit -> gen
val fresh : gen -> t
val fresh_named : gen -> string -> t
(** [fresh_named g hint] is fresh but keeps [hint] in the printed form,
    easing debugging of translated schemas. *)

val skolem : string -> string list -> t
(** [skolem functor_name args] is the deterministic linker-Skolem
    identifier sk_functor(args). Injective per functor, range-disjoint
    across functors and from [fresh] OIDs. *)

val is_skolem : t -> bool
val counter_value : gen -> int

val of_string : string -> t option
(** Parse the {!to_string} form back ("#12", "#12:hint",
    "sk_f(a,b)"); [None] on anything else. Round-trips identity:
    [of_string (to_string o) = Some o']' with [equal o o']. *)
