(** Naming conventions of the KGModel stack (paper, footnote 1):
    PascalCase for entity names, UPPER_CASE for links, camelCase for
    properties. The validators are used by the GSL parser and the
    dictionary loader to reject ill-formed designs early. *)

val is_pascal_case : string -> bool
val is_upper_case : string -> bool
val is_camel_case : string -> bool

val to_snake_case : string -> string
(** [to_snake_case "PublicListedCompany"] is ["public_listed_company"];
    used when rendering relational field/table names. *)

val to_pascal_case : string -> string
(** Inverse-ish of {!to_snake_case}: ["public_listed_company"] becomes
    ["PublicListedCompany"]. *)

val sanitize_identifier : string -> string
(** Replace characters outside [A-Za-z0-9_] by ['_'] and prefix with
    ['x'] when the result would not start with a letter. Total: never
    returns the empty string. *)
