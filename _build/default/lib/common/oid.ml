type t =
  | Fresh of int * string          (* counter, optional hint (hint not part of identity) *)
  | Skolem of string * string list (* functor name, arguments *)

(* Identity of a Fresh oid is its counter only; the hint is cosmetic and
   must not influence comparisons, or renamed copies would stop being
   equal to themselves across pretty-printing round-trips. *)
let compare a b =
  match a, b with
  | Fresh (i, _), Fresh (j, _) -> Int.compare i j
  | Skolem (f, xs), Skolem (g, ys) ->
      let c = String.compare f g in
      if c <> 0 then c else List.compare String.compare xs ys
  | Fresh _, Skolem _ -> -1
  | Skolem _, Fresh _ -> 1

let equal a b = compare a b = 0

let hash = function
  | Fresh (i, _) -> Hashtbl.hash (0, i)
  | Skolem (f, xs) -> Hashtbl.hash (1, f, xs)

let pp ppf = function
  | Fresh (i, "") -> Format.fprintf ppf "#%d" i
  | Fresh (i, hint) -> Format.fprintf ppf "#%d:%s" i hint
  | Skolem (f, xs) ->
      Format.fprintf ppf "sk_%s(%s)" f (String.concat "," xs)

let to_string o = Format.asprintf "%a" pp o

type gen = { mutable next : int }

let make_gen () = { next = 0 }

let fresh g =
  let i = g.next in
  g.next <- i + 1;
  Fresh (i, "")

let fresh_named g hint =
  let i = g.next in
  g.next <- i + 1;
  Fresh (i, hint)

let skolem f args = Skolem (f, args)

let is_skolem = function Skolem _ -> true | Fresh _ -> false
let counter_value g = g.next

let of_string s =
  let n = String.length s in
  if n >= 2 && s.[0] = '#' then begin
    let body = String.sub s 1 (n - 1) in
    match String.index_opt body ':' with
    | Some i ->
        (match int_of_string_opt (String.sub body 0 i) with
         | Some c ->
             Some (Fresh (c, String.sub body (i + 1) (String.length body - i - 1)))
         | None -> None)
    | None ->
        (match int_of_string_opt body with
         | Some c -> Some (Fresh (c, ""))
         | None -> None)
  end
  else if n >= 5 && String.sub s 0 3 = "sk_" && s.[n - 1] = ')' then
    match String.index_opt s '(' with
    | Some i ->
        let f = String.sub s 3 (i - 3) in
        let args_str = String.sub s (i + 1) (n - i - 2) in
        let args =
          if args_str = "" then [] else String.split_on_char ',' args_str
        in
        Some (Skolem (f, args))
    | None -> None
  else None
