(** Uniform error reporting across KGModel tools. Each subsystem raises
    [Error] with a structured payload; CLI and tests format it with
    {!pp}. *)

type stage =
  | Parse        (** GSL / MetaLog / Vadalog text parsing *)
  | Validate     (** schema or program static checks *)
  | Translate    (** SSST / MTV translation *)
  | Reason       (** chase execution *)
  | Storage      (** dictionary / database access *)

type t = { stage : stage; message : string }

exception Error of t

let stage_name = function
  | Parse -> "parse"
  | Validate -> "validate"
  | Translate -> "translate"
  | Reason -> "reason"
  | Storage -> "storage"

let pp ppf e = Format.fprintf ppf "[%s] %s" (stage_name e.stage) e.message

let to_string e = Format.asprintf "%a" pp e

let raise_error stage fmt =
  Format.kasprintf (fun message -> raise (Error { stage; message })) fmt

let parse_error fmt = raise_error Parse fmt
let validate_error fmt = raise_error Validate fmt
let translate_error fmt = raise_error Translate fmt
let reason_error fmt = raise_error Reason fmt
let storage_error fmt = raise_error Storage fmt

let guard f = try Ok (f ()) with Error e -> Result.Error e
