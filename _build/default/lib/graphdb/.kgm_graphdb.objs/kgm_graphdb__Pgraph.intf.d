lib/graphdb/pgraph.mli: Format Kgm_algo Kgm_common Oid Value
