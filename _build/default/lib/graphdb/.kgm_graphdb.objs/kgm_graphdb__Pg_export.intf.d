lib/graphdb/pg_export.mli: Pgraph
