lib/graphdb/pgraph.ml: Array Format Hashtbl Kgm_algo Kgm_common Kgm_error List Oid Value
