lib/graphdb/pg_export.ml: Buffer Hashtbl Kgm_common List Oid Option Pgraph Printf Set String Value
