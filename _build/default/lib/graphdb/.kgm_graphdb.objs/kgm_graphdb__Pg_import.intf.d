lib/graphdb/pg_import.mli: Pgraph
