lib/graphdb/pg_import.ml: Buffer Kgm_common Kgm_error List Oid Pgraph String Value
