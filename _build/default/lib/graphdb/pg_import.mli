(** Deserialization of property graphs from the CSV bundle produced by
    {!Pg_export.to_csv_bundle} — the "plain CSV files" serialization the
    paper lists among the non-graph-like target models (Sec. 2.2).
    [of_csv_bundle (Pg_export.to_csv_bundle g)] reconstructs [g],
    element ids included, up to property value types inferable from
    text. *)

val parse_csv : string -> string list list
(** RFC-4180-ish parsing: quoted cells, escaped quotes, embedded commas
    and newlines. First row is the header. *)

val of_csv_bundle : (string * string) list -> Pgraph.t
(** [(filename, document)] pairs following the export convention:
    [nodes_<label>.csv] with an [_oid] column, [edges_<label>.csv] with
    [_oid;_src;_dst]. Raises [Kgm_error.Error] on malformed bundles
    (missing mandatory columns, dangling endpoints, unparseable
    oids). *)
