(** The meta-model (paper, Sec. 3.1 / Fig. 2): the foundational
    meta-constructs every super-construct specializes — MM_Entity,
    MM_Link, MM_Property — together with the instance rendering function
    Γ_MM that visualizes instances of the meta-model (the super-model
    dictionary of Fig. 3 is itself such an instance).

    The meta-model is fixed, so this module is mostly static data plus
    the specialization table tying each super-construct to its
    meta-construct. *)

type meta_construct = MM_Entity | MM_Link | MM_Property

let meta_construct_name = function
  | MM_Entity -> "MM_Entity"
  | MM_Link -> "MM_Link"
  | MM_Property -> "MM_Property"

(** The super-constructs of Fig. 3 with the meta-construct each
    specializes. This is the super-model dictionary at type level. *)
let super_constructs : (string * meta_construct) list =
  [ ("SM_Node", MM_Entity);
    ("SM_Edge", MM_Entity);
    ("SM_Type", MM_Entity);
    ("SM_Attribute", MM_Entity);
    ("SM_AttributeModifier", MM_Entity);
    ("SM_UniqueAttributeModifier", MM_Entity);
    ("SM_EnumAttributeModifier", MM_Entity);
    ("SM_Generalization", MM_Entity);
    ("SM_HAS_NODE_TYPE", MM_Link);
    ("SM_HAS_EDGE_TYPE", MM_Link);
    ("SM_HAS_NODE_PROPERTY", MM_Link);
    ("SM_HAS_EDGE_PROPERTY", MM_Link);
    ("SM_HAS_MODIFIER", MM_Link);
    ("SM_FROM", MM_Link);
    ("SM_TO", MM_Link);
    ("SM_PARENT", MM_Link);
    ("SM_CHILD", MM_Link);
    ("isIntensional", MM_Property);
    ("isOpt", MM_Property);
    ("isId", MM_Property);
    ("isOpt1", MM_Property);
    ("isFun1", MM_Property);
    ("isOpt2", MM_Property);
    ("isFun2", MM_Property);
    ("isTotal", MM_Property);
    ("isDisjoint", MM_Property);
    ("name", MM_Property) ]

let meta_construct_of name = List.assoc_opt name super_constructs

let is_super_construct name = List.mem_assoc name super_constructs

let entity_constructs =
  List.filter_map
    (fun (n, m) -> if m = MM_Entity then Some n else None)
    super_constructs

let link_constructs =
  List.filter_map
    (fun (n, m) -> if m = MM_Link then Some n else None)
    super_constructs

(** The links of the meta-model itself (Fig. 2), with UML-style
    cardinalities: each MM_Link connects two MM_Entities; entities and
    links carry MM_Properties. *)
let meta_links =
  [ ("MM_Link", "MM_Entity", "1..1 from");
    ("MM_Link", "MM_Entity", "1..1 to");
    ("MM_Entity", "MM_Property", "0..N has");
    ("MM_Link", "MM_Property", "0..N has") ]

(** Γ_MM rendered as Graphviz DOT: the visualization of Fig. 2. *)
let render_gamma_mm () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph meta_model {\n  rankdir=LR;\n";
  Buffer.add_string buf
    "  node [shape=circle, fontsize=11, width=1.1, fixedsize=true];\n";
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "  %s [label=\"%s\"];\n" (meta_construct_name c)
           (meta_construct_name c)))
    [ MM_Entity; MM_Link; MM_Property ];
  List.iter
    (fun (src, dst, lbl) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s -> %s [label=\"%s\"];\n" src dst lbl))
    meta_links;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(** The super-model dictionary (Fig. 3) rendered by Γ_MM: one node per
    super-construct, grouped by meta-construct. *)
let render_super_model_dictionary () =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "digraph super_model {\n  rankdir=TB;\n";
  Buffer.add_string buf "  subgraph cluster_entities {\n    label=\"MM_Entity instances\";\n";
  List.iter
    (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "    \"%s\" [shape=box];\n" n))
    entity_constructs;
  Buffer.add_string buf "  }\n  subgraph cluster_links {\n    label=\"MM_Link instances\";\n";
  List.iter
    (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "    \"%s\" [shape=ellipse, style=dashed];\n" n))
    link_constructs;
  Buffer.add_string buf "  }\n}\n";
  Buffer.contents buf
