(** Instance conformance checking (paper, "Model awareness": the
    extensional component should conform to a graph schema; Sec. 2.2
    lists schema enforcement per target — this module is the native,
    model-independent checker run directly against the super-schema,
    the "ad-hoc methodology" for schema-less systems [21]).

    Checks performed on a property-graph instance:
    - every node carries exactly one label naming a schema SM_Node;
    - node properties name (possibly inherited) schema attributes,
      values conform to the declared domains;
    - mandatory extensional attributes are present, identifying
      attributes are present and unique within their type;
    - [Unique] modifiers hold within the type; [Enum] and [Range]
      modifier domains hold;
    - every edge's label names a schema SM_Edge whose endpoints (or
      ancestors thereof) match the incident node labels;
    - edge cardinalities hold: isFun bounds (at most one partner) and
      isOpt bounds (at least one partner) on both sides;
    - intensional constructs are permitted in the instance (they may
      have been materialized) but are reported when [reject_intensional]
      is set (useful for validating freshly loaded ground data). *)

type violation = {
  subject : Kgm_common.Oid.t option;  (** offending element, if any *)
  rule : string;                      (** short machine-ish rule id *)
  message : string;
}

val check :
  ?reject_intensional:bool ->
  Supermodel.t -> Kgm_graphdb.Pgraph.t -> violation list
(** Empty list = the instance conforms. *)

val pp_violation : Format.formatter -> violation -> unit

val is_conformant :
  ?reject_intensional:bool -> Supermodel.t -> Kgm_graphdb.Pgraph.t -> bool
