module Ast = Kgm_metalog.Ast

type analysis = {
  body_node_labels : string list;
  body_edge_labels : string list;
  head_node_labels : string list;
  head_edge_labels : string list;
  head_attrs : (string * string list) list;
}

let dedup l = List.sort_uniq String.compare l

let rec path_edge_atoms = function
  | Ast.PEdge a -> [ a ]
  | Ast.PInv p | Ast.PStar p -> path_edge_atoms p
  | Ast.PSeq ps | Ast.PAlt ps -> List.concat_map path_edge_atoms ps

let chain_atoms (c : Ast.chain) =
  let nodes =
    c.Ast.start :: List.map snd c.Ast.steps
  in
  let edges = List.concat_map (fun (p, _) -> path_edge_atoms p) c.Ast.steps in
  (nodes, edges)

let labels_of atoms =
  List.filter_map (fun (a : Ast.pg_atom) -> a.Ast.label) atoms

let analyze (p : Ast.program) =
  let bn = ref [] and be = ref [] and hn = ref [] and he = ref [] in
  let head_attrs : (string, string list ref) Hashtbl.t = Hashtbl.create 16 in
  let record_attrs (a : Ast.pg_atom) =
    match a.Ast.label with
    | Some l ->
        let cur =
          match Hashtbl.find_opt head_attrs l with
          | Some r -> r
          | None ->
              let r = ref [] in
              Hashtbl.add head_attrs l r;
              r
        in
        cur := List.map fst a.Ast.attrs @ !cur
    | None -> ()
  in
  List.iter
    (fun (r : Ast.rule) ->
      List.iter
        (function
          | Ast.BChain c | Ast.BNeg c ->
              let nodes, edges = chain_atoms c in
              bn := labels_of nodes @ !bn;
              be := labels_of edges @ !be
          | _ -> ())
        r.Ast.body;
      List.iter
        (fun c ->
          let nodes, edges = chain_atoms c in
          hn := labels_of nodes @ !hn;
          he := labels_of edges @ !he;
          List.iter record_attrs nodes;
          List.iter record_attrs edges)
        r.Ast.head)
    p.Ast.rules;
  { body_node_labels = dedup !bn;
    body_edge_labels = dedup !be;
    head_node_labels = dedup !hn;
    head_edge_labels = dedup !he;
    head_attrs =
      Hashtbl.fold (fun l r acc -> (l, dedup !r) :: acc) head_attrs [] }

(* ------------------------------------------------------------------ *)

let extensional_node_attrs (s : Supermodel.t) label =
  List.filter
    (fun (a : Supermodel.attribute) -> not a.Supermodel.at_intensional)
    (Supermodel.all_attributes s label)

let extensional_edge_attrs (s : Supermodel.t) label =
  match Supermodel.find_edge s label with
  | Some e ->
      List.filter
        (fun (a : Supermodel.attribute) -> not a.Supermodel.at_intensional)
        e.Supermodel.e_attrs
  | None -> []

(** One V_I rule mapping instances of [concrete] (a descendant or the
    label itself) into facts of [label] (cf. Example 6.2). *)
let input_node_view ~schema_oid ~instance_oid ~has_attrs ~concrete label =
  if has_attrs then
    Printf.sprintf
      {|(i: I_SM_Node; instanceOID: %d)-[: SM_REFERENCES]->(n: SM_Node; schemaOID: %d),
(n)-[: SM_HAS_NODE_TYPE; schemaOID: %d]->(t: SM_Type; schemaOID: %d, name: %S),
(i)-[: I_SM_HAS_NODE_ATTR]->(ia: I_SM_Attribute; instanceOID: %d, value: V)-[: SM_REFERENCES]->(na: SM_Attribute; name: N),
  P = pack(pair(N, V))
  => (i: %s; *P).
|}
      instance_oid schema_oid schema_oid schema_oid concrete instance_oid label
  else
    Printf.sprintf
      {|(i: I_SM_Node; instanceOID: %d)-[: SM_REFERENCES]->(n: SM_Node; schemaOID: %d),
(n)-[: SM_HAS_NODE_TYPE; schemaOID: %d]->(t: SM_Type; schemaOID: %d, name: %S)
  => (i: %s).
|}
      instance_oid schema_oid schema_oid schema_oid concrete label

let input_edge_view ~schema_oid ~instance_oid ~has_attrs label =
  if has_attrs then
    Printf.sprintf
      {|(ie: I_SM_Edge; instanceOID: %d)-[: SM_REFERENCES]->(e: SM_Edge; schemaOID: %d),
(e)-[: SM_HAS_EDGE_TYPE; schemaOID: %d]->(t: SM_Type; schemaOID: %d, name: %S),
(ie)-[: I_SM_FROM]->(x: I_SM_Node; instanceOID: %d),
(ie)-[: I_SM_TO]->(y: I_SM_Node; instanceOID: %d),
(ie)-[: I_SM_HAS_EDGE_ATTR]->(ia: I_SM_Attribute; instanceOID: %d, value: V)-[: SM_REFERENCES]->(na: SM_Attribute; name: N),
  P = pack(pair(N, V))
  => (x)-[ie: %s; *P]->(y).
|}
      instance_oid schema_oid schema_oid schema_oid label instance_oid
      instance_oid instance_oid label
  else
    Printf.sprintf
      {|(ie: I_SM_Edge; instanceOID: %d)-[: SM_REFERENCES]->(e: SM_Edge; schemaOID: %d),
(e)-[: SM_HAS_EDGE_TYPE; schemaOID: %d]->(t: SM_Type; schemaOID: %d, name: %S),
(ie)-[: I_SM_FROM]->(x: I_SM_Node; instanceOID: %d),
(ie)-[: I_SM_TO]->(y: I_SM_Node; instanceOID: %d)
  => (x)-[ie: %s]->(y).
|}
      instance_oid schema_oid schema_oid schema_oid label instance_oid
      instance_oid label

let input_views ~schema ~schema_oid ~instance_oid (p : Ast.program) =
  let a = analyze p in
  let buf = Buffer.create 2048 in
  List.iter
    (fun label ->
      if Supermodel.find_node schema label <> None then begin
        let has_attrs = extensional_node_attrs schema label <> [] in
        List.iter
          (fun concrete ->
            (* instances of descendants are instances of the label *)
            let has_attrs =
              has_attrs || extensional_node_attrs schema concrete <> []
            in
            Buffer.add_string buf
              (input_node_view ~schema_oid ~instance_oid ~has_attrs ~concrete
                 label))
          (label :: Supermodel.descendants schema label)
      end)
    a.body_node_labels;
  List.iter
    (fun label ->
      if Supermodel.find_edge schema label <> None then
        Buffer.add_string buf
          (input_edge_view ~schema_oid ~instance_oid
             ~has_attrs:(extensional_edge_attrs schema label <> [])
             label))
    a.body_edge_labels;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)

let output_node_view ~schema_oid ~instance_oid label =
  Printf.sprintf
    {|(x: %s),
(n: SM_Node; schemaOID: %d)-[: SM_HAS_NODE_TYPE; schemaOID: %d]->(t: SM_Type; schemaOID: %d, name: %S)
  => (x: I_SM_Node; instanceOID: %d)-[r: SM_REFERENCES; instanceOID: %d]->(n).
|}
    label schema_oid schema_oid schema_oid label instance_oid instance_oid

(* Monotonic aggregates in Σ stream increasing partial values into the
   derived facts; the output view selects the final (maximal) value per
   element with a stratified dmax, so exactly one I_SM_Attribute is
   materialized per derived attribute. *)
let output_node_attr_view ~schema_oid ~instance_oid label attr =
  Printf.sprintf
    {|(x: %s; %s: V0), is_null(V0) == false,
(n: SM_Node; schemaOID: %d)-[: SM_HAS_NODE_TYPE; schemaOID: %d]->(t: SM_Type; schemaOID: %d, name: %S),
(n)-[: SM_HAS_NODE_PROPERTY; schemaOID: %d]->(na: SM_Attribute; schemaOID: %d, name: %S),
  V = dmax(V0, <V0>)
  => (x)-[h: I_SM_HAS_NODE_ATTR; instanceOID: %d]->(A: I_SM_Attribute; instanceOID: %d, value: V)-[r: SM_REFERENCES; instanceOID: %d]->(na).
|}
    label attr schema_oid schema_oid schema_oid label schema_oid schema_oid
    attr instance_oid instance_oid instance_oid

let output_edge_view ~schema_oid ~instance_oid label =
  Printf.sprintf
    {|(x: I_SM_Node; instanceOID: %d)-[c: %s]->(y: I_SM_Node; instanceOID: %d),
(e: SM_Edge; schemaOID: %d)-[: SM_HAS_EDGE_TYPE; schemaOID: %d]->(t: SM_Type; schemaOID: %d, name: %S)
  => (c: I_SM_Edge; instanceOID: %d)-[r: SM_REFERENCES; instanceOID: %d]->(e),
     (c)-[f: I_SM_FROM; instanceOID: %d]->(x),
     (c)-[g: I_SM_TO; instanceOID: %d]->(y).
|}
    instance_oid label instance_oid schema_oid schema_oid schema_oid label
    instance_oid instance_oid instance_oid instance_oid

(* The I_SM_FROM / I_SM_TO atoms in the head anchor the (possibly
   null-identified) edge to its endpoints, so the homomorphism check
   cannot collapse two same-valued attributes of different edges. *)
let output_edge_attr_view ~schema_oid ~instance_oid label attr =
  Printf.sprintf
    {|(x: I_SM_Node; instanceOID: %d)-[c: %s; %s: V0]->(y: I_SM_Node; instanceOID: %d), is_null(V0) == false,
(e: SM_Edge; schemaOID: %d)-[: SM_HAS_EDGE_TYPE; schemaOID: %d]->(t: SM_Type; schemaOID: %d, name: %S),
(e)-[: SM_HAS_EDGE_PROPERTY; schemaOID: %d]->(na: SM_Attribute; schemaOID: %d, name: %S),
  V = dmax(V0, <V0>)
  => (c)-[f2: I_SM_FROM; instanceOID: %d]->(x),
     (c)-[g2: I_SM_TO; instanceOID: %d]->(y),
     (c)-[h: I_SM_HAS_EDGE_ATTR; instanceOID: %d]->(A: I_SM_Attribute; instanceOID: %d, value: V)-[r: SM_REFERENCES; instanceOID: %d]->(na).
|}
    instance_oid label attr instance_oid schema_oid schema_oid schema_oid
    label schema_oid schema_oid attr instance_oid instance_oid instance_oid
    instance_oid instance_oid

let output_views ~schema ~schema_oid ~instance_oid (p : Ast.program) =
  let a = analyze p in
  let buf = Buffer.create 2048 in
  let attrs_for label =
    let mentioned =
      Option.value ~default:[] (List.assoc_opt label a.head_attrs)
    in
    let intensional =
      match Supermodel.find_node schema label with
      | Some _ ->
          List.filter_map
            (fun (at : Supermodel.attribute) ->
              if at.Supermodel.at_intensional then Some at.Supermodel.at_name
              else None)
            (Supermodel.all_attributes schema label)
      | None -> (
          match Supermodel.find_edge schema label with
          | Some e ->
              List.filter_map
                (fun (at : Supermodel.attribute) ->
                  if at.Supermodel.at_intensional then
                    Some at.Supermodel.at_name
                  else None)
                e.Supermodel.e_attrs
          | None -> [])
    in
    dedup (mentioned @ intensional)
  in
  List.iter
    (fun label ->
      if Supermodel.find_node schema label <> None then begin
        Buffer.add_string buf (output_node_view ~schema_oid ~instance_oid label);
        List.iter
          (fun attr ->
            Buffer.add_string buf
              (output_node_attr_view ~schema_oid ~instance_oid label attr))
          (attrs_for label)
      end)
    a.head_node_labels;
  List.iter
    (fun label ->
      if Supermodel.find_edge schema label <> None then begin
        Buffer.add_string buf (output_edge_view ~schema_oid ~instance_oid label);
        List.iter
          (fun attr ->
            Buffer.add_string buf
              (output_edge_attr_view ~schema_oid ~instance_oid label attr))
          (attrs_for label)
      end)
    a.head_edge_labels;
  Buffer.contents buf
