open Kgm_common
module L = Kgm_vadalog.Lexer

type state = { mutable toks : L.t list }

let peek st = match st.toks with t :: _ -> t.L.tok | [] -> L.EOF
let line st = match st.toks with t :: _ -> t.L.line | [] -> 0

let next st =
  match st.toks with
  | t :: rest ->
      st.toks <- rest;
      t.L.tok
  | [] -> L.EOF

let expect st tok =
  let found = next st in
  if found <> tok then
    Kgm_error.parse_error "gsl line %d: expected %s, found %s" (line st)
      (L.token_name tok) (L.token_name found)

let accept st tok =
  if peek st = tok then begin
    ignore (next st);
    true
  end
  else false

let ident st =
  match next st with
  | L.IDENT s -> s
  | tok ->
      Kgm_error.parse_error "gsl line %d: expected identifier, found %s"
        (line st) (L.token_name tok)

let keyword st kw =
  match next st with
  | L.IDENT s when s = kw -> ()
  | tok ->
      Kgm_error.parse_error "gsl line %d: expected %S, found %s" (line st) kw
        (L.token_name tok)

(* ------------------------------------------------------------------ *)

let parse_literal st =
  match next st with
  | L.INT i -> Value.Int i
  | L.FLOAT f -> Value.Float f
  | L.STRING s -> Value.String s
  | L.IDENT "true" -> Value.Bool true
  | L.IDENT "false" -> Value.Bool false
  | L.MINUS ->
      (match next st with
       | L.INT i -> Value.Int (-i)
       | L.FLOAT f -> Value.Float (-.f)
       | tok -> Kgm_error.parse_error "gsl: bad literal %s" (L.token_name tok))
  | tok -> Kgm_error.parse_error "gsl: bad literal %s" (L.token_name tok)

let parse_number_opt st =
  match peek st with
  | L.INT i ->
      ignore (next st);
      Some (float_of_int i)
  | L.FLOAT f ->
      ignore (next st);
      Some f
  | L.IDENT "none" ->
      ignore (next st);
      None
  | tok -> Kgm_error.parse_error "gsl: bad range bound %s" (L.token_name tok)

(* markers after "name: type" *)
let parse_attr_markers st =
  let opt = ref false and id = ref false and intensional = ref false in
  let modifiers = ref [] in
  let continue = ref true in
  while !continue do
    if accept st L.AT then begin
      match ident st with
      | "id" -> id := true
      | "opt" -> opt := true
      | "intensional" -> intensional := true
      | "unique" -> modifiers := Supermodel.Unique :: !modifiers
      | "enum" ->
          expect st L.LPAREN;
          let rec loop acc =
            match next st with
            | L.STRING s | L.IDENT s ->
                if accept st L.COMMA then loop (s :: acc)
                else begin
                  expect st L.RPAREN;
                  List.rev (s :: acc)
                end
            | tok ->
                Kgm_error.parse_error "gsl: bad enum value %s" (L.token_name tok)
          in
          modifiers := Supermodel.Enum (loop []) :: !modifiers
      | "default" ->
          expect st L.LPAREN;
          let v = parse_literal st in
          expect st L.RPAREN;
          modifiers := Supermodel.Default v :: !modifiers
      | "range" ->
          expect st L.LPAREN;
          let lo = parse_number_opt st in
          expect st L.COMMA;
          let hi = parse_number_opt st in
          expect st L.RPAREN;
          modifiers := Supermodel.Range (lo, hi) :: !modifiers
      | m -> Kgm_error.parse_error "gsl line %d: unknown marker @%s" (line st) m
    end
    else continue := false
  done;
  (!opt, !id, !intensional, List.rev !modifiers)

let parse_attr st =
  let name = ident st in
  expect st L.COLON;
  let ty_name = ident st in
  let ty =
    match Value.ty_of_string ty_name with
    | Some ty -> ty
    | None -> Kgm_error.parse_error "gsl line %d: unknown type %s" (line st) ty_name
  in
  let opt, id, intensional, modifiers = parse_attr_markers st in
  expect st L.SEMI;
  Supermodel.attribute ~opt ~id ~intensional ~modifiers name ty

let parse_attr_block st =
  if accept st L.LBRACE then begin
    let rec loop acc =
      if accept st L.RBRACE then List.rev acc else loop (parse_attr st :: acc)
    in
    loop []
  end
  else []

(* [a..b -> c..d]; omitted block means unconstrained 0..N -> 0..N *)
let parse_cardinality st =
  if accept st L.LBRACKET then begin
    let bound () =
      match next st with
      | L.INT 0 -> `Zero
      | L.INT 1 -> `One
      | L.IDENT ("N" | "n") -> `Many
      | tok ->
          Kgm_error.parse_error "gsl line %d: bad cardinality bound %s" (line st)
            (L.token_name tok)
    in
    let range () =
      let lo = bound () in
      expect st L.DOT;
      expect st L.DOT;
      let hi = bound () in
      (match lo, hi with
       | `Many, _ -> Kgm_error.parse_error "gsl: N cannot be a lower bound"
       | _, `Zero -> Kgm_error.parse_error "gsl: 0 cannot be an upper bound"
       | _ -> ());
      (lo = `Zero, hi = `One) (* (isOpt, isFun) *)
    in
    let opt1, fun1 = range () in
    expect st L.MINUS;
    expect st L.GT;
    let opt2, fun2 = range () in
    expect st L.RBRACKET;
    (opt1, fun1, opt2, fun2)
  end
  else (true, false, true, false)

let parse_generalization_markers st =
  let total = ref false and disjoint = ref false in
  while peek st = L.AT do
    ignore (next st);
    match ident st with
    | "total" -> total := true
    | "disjoint" -> disjoint := true
    | m -> Kgm_error.parse_error "gsl: unknown generalization marker @%s" m
  done;
  (!total, !disjoint)

let parse_schema st =
  keyword st "schema";
  let name = ident st in
  expect st L.LBRACE;
  let schema = ref (Supermodel.empty name) in
  let rec loop () =
    if accept st L.RBRACE then ()
    else begin
      let intensional = accept st (L.IDENT "intensional") in
      (match ident st with
       | "node" ->
           let n_name = ident st in
           let attrs = parse_attr_block st in
           schema := Supermodel.add_node !schema (Supermodel.node ~intensional n_name attrs)
       | "edge" ->
           let e_name = ident st in
           keyword st "from";
           let from = ident st in
           keyword st "to";
           let to_ = ident st in
           let opt1, fun1, opt2, fun2 = parse_cardinality st in
           let attrs = parse_attr_block st in
           if peek st = L.SEMI then ignore (next st);
           schema :=
             Supermodel.add_edge !schema
               (Supermodel.edge ~intensional ~attrs ~opt1 ~fun1 ~opt2 ~fun2 e_name
                  ~from ~to_)
       | "generalization" ->
           if intensional then
             Kgm_error.parse_error "gsl: generalizations cannot be intensional";
           let g_name = ident st in
           keyword st "of";
           let parent = ident st in
           expect st L.EQ;
           let rec children acc =
             let c = ident st in
             if accept st L.PIPE then children (c :: acc) else List.rev (c :: acc)
           in
           let children = children [] in
           let total, disjoint = parse_generalization_markers st in
           expect st L.SEMI;
           schema :=
             Supermodel.add_generalization !schema
               (Supermodel.generalization ~total ~disjoint g_name ~parent ~children)
       | kw -> Kgm_error.parse_error "gsl line %d: unknown declaration %S" (line st) kw);
      loop ()
    end
  in
  loop ();
  !schema

let parse src =
  let st = { toks = L.tokenize src } in
  let schema = parse_schema st in
  (match peek st with
   | L.EOF -> ()
   | tok ->
       Kgm_error.parse_error "gsl: trailing input (%s)" (L.token_name tok));
  schema

let parse_validated src =
  let s = parse src in
  match Supermodel.validate s with
  | Ok () -> s
  | Error errs ->
      Kgm_error.validate_error "invalid GSL schema:@ %s" (String.concat "; " errs)

(* ------------------------------------------------------------------ *)

let print_modifier buf = function
  | Supermodel.Unique -> Buffer.add_string buf " @unique"
  | Supermodel.Enum vs ->
      Buffer.add_string buf
        (Printf.sprintf " @enum(%s)"
           (String.concat ", " (List.map (Printf.sprintf "%S") vs)))
  | Supermodel.Default v ->
      Buffer.add_string buf (Printf.sprintf " @default(%s)" (Value.to_string v))
  | Supermodel.Range (lo, hi) ->
      let b = function Some f -> Printf.sprintf "%g" f | None -> "none" in
      Buffer.add_string buf (Printf.sprintf " @range(%s, %s)" (b lo) (b hi))

let print_attr buf (a : Supermodel.attribute) =
  Buffer.add_string buf
    (Printf.sprintf "    %s: %s" a.Supermodel.at_name
       (Value.ty_to_string a.Supermodel.at_ty));
  if a.Supermodel.at_id then Buffer.add_string buf " @id";
  if a.Supermodel.at_opt then Buffer.add_string buf " @opt";
  if a.Supermodel.at_intensional then Buffer.add_string buf " @intensional";
  List.iter (print_modifier buf) a.Supermodel.at_modifiers;
  Buffer.add_string buf ";\n"

let card_str opt fn =
  Printf.sprintf "%s..%s" (if opt then "0" else "1") (if fn then "1" else "N")

let print (s : Supermodel.t) =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Printf.sprintf "schema %s {\n" s.Supermodel.s_name);
  List.iter
    (fun (n : Supermodel.node) ->
      Buffer.add_string buf
        (Printf.sprintf "  %snode %s"
           (if n.Supermodel.n_intensional then "intensional " else "")
           n.Supermodel.n_name);
      if n.Supermodel.n_attrs = [] then Buffer.add_string buf " {}\n"
      else begin
        Buffer.add_string buf " {\n";
        List.iter (print_attr buf) n.Supermodel.n_attrs;
        Buffer.add_string buf "  }\n"
      end)
    s.Supermodel.nodes;
  List.iter
    (fun (e : Supermodel.edge) ->
      Buffer.add_string buf
        (Printf.sprintf "  %sedge %s from %s to %s [%s -> %s]"
           (if e.Supermodel.e_intensional then "intensional " else "")
           e.Supermodel.e_name e.Supermodel.e_from e.Supermodel.e_to
           (card_str e.Supermodel.e_opt1 e.Supermodel.e_fun1)
           (card_str e.Supermodel.e_opt2 e.Supermodel.e_fun2));
      if e.Supermodel.e_attrs = [] then Buffer.add_string buf ";\n"
      else begin
        Buffer.add_string buf " {\n";
        List.iter (print_attr buf) e.Supermodel.e_attrs;
        Buffer.add_string buf "  }\n"
      end)
    s.Supermodel.edges;
  List.iter
    (fun (g : Supermodel.generalization) ->
      Buffer.add_string buf
        (Printf.sprintf "  generalization %s of %s = %s%s%s;\n"
           g.Supermodel.g_name g.Supermodel.g_parent
           (String.concat " | " g.Supermodel.g_children)
           (if g.Supermodel.g_total then " @total" else "")
           (if g.Supermodel.g_disjoint then " @disjoint" else "")))
    s.Supermodel.generalizations;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
