lib/core/supermodel.ml: Format Hashtbl Kgm_common List Names String Value
