lib/core/conformance.ml: Format Hashtbl Kgm_common Kgm_graphdb List Oid Option Supermodel Value
