lib/core/instances.ml: Dictionary Hashtbl Kgm_common Kgm_error Kgm_graphdb List Oid Value
