lib/core/instances.mli: Dictionary Kgm_common Kgm_graphdb Oid
