lib/core/gsl.ml: Buffer Kgm_common Kgm_error Kgm_vadalog List Printf String Supermodel Value
