lib/core/schema_diff.mli: Format Supermodel
