lib/core/gsl.mli: Supermodel
