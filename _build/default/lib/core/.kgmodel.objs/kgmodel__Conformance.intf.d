lib/core/conformance.mli: Format Kgm_common Kgm_graphdb Supermodel
