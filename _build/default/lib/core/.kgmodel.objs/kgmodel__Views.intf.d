lib/core/views.mli: Kgm_metalog Supermodel
