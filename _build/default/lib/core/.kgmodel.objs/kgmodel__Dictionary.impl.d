lib/core/dictionary.ml: Hashtbl Kgm_common Kgm_error Kgm_graphdb List Supermodel Value
