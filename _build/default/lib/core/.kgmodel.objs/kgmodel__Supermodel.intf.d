lib/core/supermodel.mli: Format Kgm_common Value
