lib/core/views.ml: Buffer Hashtbl Kgm_metalog List Option Printf String Supermodel
