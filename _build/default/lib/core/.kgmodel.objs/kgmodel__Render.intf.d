lib/core/render.mli: Supermodel
