lib/core/dictionary.mli: Kgm_graphdb Supermodel
