lib/core/schema_diff.ml: Format List Printf Supermodel
