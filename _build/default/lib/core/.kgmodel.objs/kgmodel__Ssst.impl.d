lib/core/ssst.ml: Dictionary Kgm_common Kgm_metalog Kgm_vadalog List Printf
