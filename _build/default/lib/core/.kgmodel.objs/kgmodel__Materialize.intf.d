lib/core/materialize.mli: Instances Kgm_graphdb Kgm_metalog Kgm_vadalog Supermodel
