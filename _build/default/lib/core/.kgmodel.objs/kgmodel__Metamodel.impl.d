lib/core/metamodel.ml: Buffer List Printf
