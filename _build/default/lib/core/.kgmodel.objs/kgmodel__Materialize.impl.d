lib/core/materialize.ml: Dictionary Hashtbl Instances Kgm_common Kgm_graphdb Kgm_metalog Kgm_vadalog List Supermodel Unix Value Views
