lib/core/ssst.mli: Dictionary Kgm_vadalog
