lib/core/render.ml: Buffer Kgm_common List Names Printf String Supermodel Value
