open Kgm_common

type modifier =
  | Unique
  | Enum of string list
  | Default of Value.t
  | Range of float option * float option

type attribute = {
  at_name : string;
  at_ty : Value.ty;
  at_opt : bool;
  at_id : bool;
  at_intensional : bool;
  at_modifiers : modifier list;
}

type node = {
  n_name : string;
  n_attrs : attribute list;
  n_intensional : bool;
}

type edge = {
  e_name : string;
  e_from : string;
  e_to : string;
  e_attrs : attribute list;
  e_intensional : bool;
  e_opt1 : bool;
  e_fun1 : bool;
  e_opt2 : bool;
  e_fun2 : bool;
}

type generalization = {
  g_name : string;
  g_parent : string;
  g_children : string list;
  g_total : bool;
  g_disjoint : bool;
}

type t = {
  s_name : string;
  nodes : node list;
  edges : edge list;
  generalizations : generalization list;
}

let attribute ?(opt = false) ?(id = false) ?(intensional = false)
    ?(modifiers = []) name ty =
  { at_name = name; at_ty = ty; at_opt = opt; at_id = id;
    at_intensional = intensional; at_modifiers = modifiers }

let node ?(intensional = false) name attrs =
  { n_name = name; n_attrs = attrs; n_intensional = intensional }

let edge ?(intensional = false) ?(attrs = []) ?(opt1 = true) ?(fun1 = false)
    ?(opt2 = true) ?(fun2 = false) name ~from ~to_ =
  { e_name = name; e_from = from; e_to = to_; e_attrs = attrs;
    e_intensional = intensional; e_opt1 = opt1; e_fun1 = fun1;
    e_opt2 = opt2; e_fun2 = fun2 }

let generalization ?(total = false) ?(disjoint = false) name ~parent ~children =
  { g_name = name; g_parent = parent; g_children = children;
    g_total = total; g_disjoint = disjoint }

let empty name = { s_name = name; nodes = []; edges = []; generalizations = [] }

let add_node t n = { t with nodes = t.nodes @ [ n ] }
let add_edge t e = { t with edges = t.edges @ [ e ] }
let add_generalization t g = { t with generalizations = t.generalizations @ [ g ] }

let find_node t name = List.find_opt (fun n -> n.n_name = name) t.nodes
let find_edge t name = List.find_opt (fun e -> e.e_name = name) t.edges

let find_generalization t name =
  List.find_opt (fun g -> g.g_name = name) t.generalizations

let parent_of t name =
  List.find_map
    (fun g -> if List.mem name g.g_children then Some g.g_parent else None)
    t.generalizations

let rec ancestors t name =
  match parent_of t name with
  | Some p -> p :: ancestors t p
  | None -> []

let children_of t name =
  List.concat_map
    (fun g -> if g.g_parent = name then g.g_children else [])
    t.generalizations

let rec descendants t name =
  List.concat_map (fun c -> c :: descendants t c) (children_of t name)

let roots t =
  List.filter (fun n -> parent_of t n.n_name = None) t.nodes

let all_attributes t name =
  let chain = List.rev (name :: ancestors t name) in
  List.concat_map
    (fun n -> match find_node t n with Some n -> n.n_attrs | None -> [])
    chain

let identifier_of t name =
  List.filter (fun a -> a.at_id) (all_attributes t name)

(* ------------------------------------------------------------------ *)

let dup names =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun n ->
      if Hashtbl.mem seen n then true
      else begin
        Hashtbl.add seen n ();
        false
      end)
    names

let modifier_ok ty = function
  | Unique -> true
  | Enum _ -> ty = Value.TString
  | Default v -> Value.conforms ty v
  | Range _ -> ty = Value.TInt || ty = Value.TFloat

let validate t =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun m -> errs := m :: !errs) fmt in
  (* naming conventions (paper footnote 1) *)
  List.iter
    (fun n ->
      if not (Names.is_pascal_case n.n_name) then
        err "node %s: entity names are PascalCase" n.n_name;
      List.iter
        (fun a ->
          if not (Names.is_camel_case a.at_name) then
            err "node %s: property %s is not camelCase" n.n_name a.at_name;
          if not (List.for_all (modifier_ok a.at_ty) a.at_modifiers) then
            err "node %s: modifier incompatible with type of %s" n.n_name a.at_name)
        n.n_attrs)
    t.nodes;
  List.iter
    (fun e ->
      if not (Names.is_upper_case e.e_name) then
        err "edge %s: link names are UPPER_CASE" e.e_name;
      List.iter
        (fun a ->
          if not (Names.is_camel_case a.at_name) then
            err "edge %s: property %s is not camelCase" e.e_name a.at_name;
          if a.at_id then err "edge %s: edge attributes cannot be identifying" e.e_name)
        e.e_attrs)
    t.edges;
  (* uniqueness: super-schemas are simple graphs by construction *)
  List.iter (err "duplicate node name %s") (dup (List.map (fun n -> n.n_name) t.nodes));
  List.iter (err "duplicate edge name %s") (dup (List.map (fun e -> e.e_name) t.edges));
  List.iter
    (err "duplicate generalization name %s")
    (dup (List.map (fun g -> g.g_name) t.generalizations));
  List.iter
    (fun n ->
      List.iter (err "node %s: duplicate attribute %s" n.n_name)
        (dup (List.map (fun a -> a.at_name) n.n_attrs)))
    t.nodes;
  (* endpoints *)
  List.iter
    (fun e ->
      if find_node t e.e_from = None then err "edge %s: missing node %s" e.e_name e.e_from;
      if find_node t e.e_to = None then err "edge %s: missing node %s" e.e_name e.e_to)
    t.edges;
  (* generalizations: members exist, single parent, acyclic *)
  List.iter
    (fun g ->
      if find_node t g.g_parent = None then
        err "generalization %s: missing parent %s" g.g_name g.g_parent;
      if g.g_children = [] then err "generalization %s: no children" g.g_name;
      List.iter
        (fun c ->
          if find_node t c = None then
            err "generalization %s: missing child %s" g.g_name c;
          if c = g.g_parent then
            err "generalization %s: %s is its own parent" g.g_name c)
        g.g_children)
    t.generalizations;
  let child_names =
    List.concat_map (fun g -> g.g_children) t.generalizations
  in
  List.iter (err "node %s has two generalization parents") (dup child_names);
  (* cycle check via ancestor walk with visited bound *)
  List.iter
    (fun n ->
      let rec walk seen cur =
        match parent_of t cur with
        | Some p when List.mem p seen -> err "generalization cycle through %s" p
        | Some p -> walk (p :: seen) p
        | None -> ()
      in
      walk [ n.n_name ] n.n_name)
    t.nodes;
  (* identifiers: every root extensional node needs one *)
  List.iter
    (fun n ->
      if parent_of t n.n_name = None && not n.n_intensional then
        if identifier_of t n.n_name = [] then
          err "node %s has no identifying attribute" n.n_name)
    t.nodes;
  (* identifying attributes cannot be optional or intensional *)
  List.iter
    (fun n ->
      List.iter
        (fun a ->
          if a.at_id && a.at_opt then
            err "node %s: identifying attribute %s cannot be optional" n.n_name a.at_name;
          if a.at_id && a.at_intensional then
            err "node %s: identifying attribute %s cannot be intensional" n.n_name
              a.at_name)
        n.n_attrs)
    t.nodes;
  (* an extensional edge cannot hang off intensional nodes *)
  List.iter
    (fun e ->
      if not e.e_intensional then
        List.iter
          (fun endp ->
            match find_node t endp with
            | Some n when n.n_intensional ->
                err "extensional edge %s touches intensional node %s" e.e_name endp
            | _ -> ())
          [ e.e_from; e.e_to ])
    t.edges;
  match !errs with [] -> Ok () | es -> Error (List.rev es)

(* ------------------------------------------------------------------ *)

let pp_card ppf (opt, fn) =
  Format.fprintf ppf "%s..%s" (if opt then "0" else "1") (if fn then "1" else "N")

let pp_attribute ppf a =
  Format.fprintf ppf "%s%s: %a%s%s" a.at_name
    (if a.at_intensional then "~" else "")
    Value.pp_ty a.at_ty
    (if a.at_id then " @id" else "")
    (if a.at_opt then " @opt" else "")

let pp ppf t =
  Format.fprintf ppf "super-schema %s@." t.s_name;
  List.iter
    (fun n ->
      Format.fprintf ppf "  %snode %s@."
        (if n.n_intensional then "intensional " else "")
        n.n_name;
      List.iter (fun a -> Format.fprintf ppf "    %a@." pp_attribute a) n.n_attrs)
    t.nodes;
  List.iter
    (fun e ->
      Format.fprintf ppf "  %sedge %s: %s -> %s [%a -> %a]@."
        (if e.e_intensional then "intensional " else "")
        e.e_name e.e_from e.e_to pp_card (e.e_opt1, e.e_fun1) pp_card
        (e.e_opt2, e.e_fun2);
      List.iter (fun a -> Format.fprintf ppf "    %a@." pp_attribute a) e.e_attrs)
    t.edges;
  List.iter
    (fun g ->
      Format.fprintf ppf "  generalization %s: %s = %s%s%s@." g.g_name g.g_parent
        (String.concat " | " g.g_children)
        (if g.g_total then " @total" else "")
        (if g.g_disjoint then " @disjoint" else ""))
    t.generalizations

let stats t =
  let count p l = List.length (List.filter p l) in
  let node_attrs = List.concat_map (fun n -> n.n_attrs) t.nodes in
  let edge_attrs = List.concat_map (fun e -> e.e_attrs) t.edges in
  [ ("SM_Node", List.length t.nodes);
    ("SM_Node (intensional)", count (fun n -> n.n_intensional) t.nodes);
    ("SM_Edge", List.length t.edges);
    ("SM_Edge (intensional)", count (fun e -> e.e_intensional) t.edges);
    ("SM_Attribute", List.length node_attrs + List.length edge_attrs);
    ("SM_Attribute (identifying)",
     count (fun a -> a.at_id) (node_attrs @ edge_attrs));
    ("SM_Generalization", List.length t.generalizations);
    ("SM_AttributeModifier",
     List.fold_left
       (fun acc a -> acc + List.length a.at_modifiers)
       0 (node_attrs @ edge_attrs)) ]
