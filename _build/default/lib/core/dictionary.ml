open Kgm_common
module PG = Kgm_graphdb.Pgraph

type t = {
  g : PG.t;
  mutable registry : (int * string) list; (* (schemaOID, name), oldest first *)
  mutable next : int;
}

let create () = { g = PG.create (); registry = []; next = 1 }

let graph t = t.g

let schemas t = t.registry

let find_schema t name =
  List.find_map (fun (oid, n) -> if n = name then Some oid else None) t.registry

let next_schema_oid t = t.next

let reserve_oid t ~name =
  let oid = t.next in
  t.next <- oid + 1;
  t.registry <- t.registry @ [ (oid, name) ];
  ignore
    (PG.add_node t.g ~labels:[ "SM_Schema" ]
       ~props:[ ("schemaOID", Value.Int oid); ("name", Value.String name) ]);
  oid

(* ------------------------------------------------------------------ *)
(* Encoding                                                             *)

let modifier_props = function
  | Supermodel.Unique -> [ ("kind", Value.String "unique") ]
  | Supermodel.Enum vs ->
      [ ("kind", Value.String "enum");
        ("values", Value.List (List.map (fun v -> Value.String v) vs)) ]
  | Supermodel.Default v -> [ ("kind", Value.String "default"); ("value", v) ]
  | Supermodel.Range (lo, hi) ->
      [ ("kind", Value.String "range") ]
      @ (match lo with Some f -> [ ("lo", Value.Float f) ] | None -> [])
      @ (match hi with Some f -> [ ("hi", Value.Float f) ] | None -> [])

let store_attribute t sid owner link_label (a : Supermodel.attribute) =
  let attr =
    PG.add_node t.g ~labels:[ "SM_Attribute" ]
      ~props:
        [ ("schemaOID", Value.Int sid);
          ("name", Value.String a.Supermodel.at_name);
          ("type", Value.String (Value.ty_to_string a.Supermodel.at_ty));
          ("isOpt", Value.Bool a.Supermodel.at_opt);
          ("isId", Value.Bool a.Supermodel.at_id);
          ("isIntensional", Value.Bool a.Supermodel.at_intensional) ]
  in
  ignore
    (PG.add_edge t.g ~label:link_label ~src:owner ~dst:attr
       ~props:[ ("schemaOID", Value.Int sid) ]);
  List.iter
    (fun m ->
      let mnode =
        PG.add_node t.g ~labels:[ "SM_AttributeModifier" ]
          ~props:(("schemaOID", Value.Int sid) :: modifier_props m)
      in
      ignore
        (PG.add_edge t.g ~label:"SM_HAS_MODIFIER" ~src:attr ~dst:mnode
           ~props:[ ("schemaOID", Value.Int sid) ]))
    a.Supermodel.at_modifiers

let store_type t sid owner link_label name =
  let ty =
    PG.add_node t.g ~labels:[ "SM_Type" ]
      ~props:[ ("schemaOID", Value.Int sid); ("name", Value.String name) ]
  in
  ignore
    (PG.add_edge t.g ~label:link_label ~src:owner ~dst:ty
       ~props:[ ("schemaOID", Value.Int sid) ])

let store t (s : Supermodel.t) =
  let sid = reserve_oid t ~name:s.Supermodel.s_name in
  let node_ids = Hashtbl.create 16 in
  List.iter
    (fun (n : Supermodel.node) ->
      let id =
        PG.add_node t.g ~labels:[ "SM_Node" ]
          ~props:
            [ ("schemaOID", Value.Int sid);
              ("isIntensional", Value.Bool n.Supermodel.n_intensional) ]
      in
      Hashtbl.add node_ids n.Supermodel.n_name id;
      store_type t sid id "SM_HAS_NODE_TYPE" n.Supermodel.n_name;
      List.iter (store_attribute t sid id "SM_HAS_NODE_PROPERTY") n.Supermodel.n_attrs)
    s.Supermodel.nodes;
  List.iter
    (fun (e : Supermodel.edge) ->
      let id =
        PG.add_node t.g ~labels:[ "SM_Edge" ]
          ~props:
            [ ("schemaOID", Value.Int sid);
              ("isIntensional", Value.Bool e.Supermodel.e_intensional);
              ("isOpt1", Value.Bool e.Supermodel.e_opt1);
              ("isFun1", Value.Bool e.Supermodel.e_fun1);
              ("isOpt2", Value.Bool e.Supermodel.e_opt2);
              ("isFun2", Value.Bool e.Supermodel.e_fun2) ]
      in
      store_type t sid id "SM_HAS_EDGE_TYPE" e.Supermodel.e_name;
      let from_id = Hashtbl.find node_ids e.Supermodel.e_from in
      let to_id = Hashtbl.find node_ids e.Supermodel.e_to in
      ignore
        (PG.add_edge t.g ~label:"SM_FROM" ~src:id ~dst:from_id
           ~props:[ ("schemaOID", Value.Int sid) ]);
      ignore
        (PG.add_edge t.g ~label:"SM_TO" ~src:id ~dst:to_id
           ~props:[ ("schemaOID", Value.Int sid) ]);
      List.iter (store_attribute t sid id "SM_HAS_EDGE_PROPERTY") e.Supermodel.e_attrs)
    s.Supermodel.edges;
  List.iter
    (fun (g : Supermodel.generalization) ->
      let id =
        PG.add_node t.g ~labels:[ "SM_Generalization" ]
          ~props:
            [ ("schemaOID", Value.Int sid);
              ("name", Value.String g.Supermodel.g_name);
              ("isTotal", Value.Bool g.Supermodel.g_total);
              ("isDisjoint", Value.Bool g.Supermodel.g_disjoint) ]
      in
      ignore
        (PG.add_edge t.g ~label:"SM_PARENT" ~src:id
           ~dst:(Hashtbl.find node_ids g.Supermodel.g_parent)
           ~props:[ ("schemaOID", Value.Int sid) ]);
      List.iter
        (fun c ->
          ignore
            (PG.add_edge t.g ~label:"SM_CHILD" ~src:id
               ~dst:(Hashtbl.find node_ids c)
               ~props:[ ("schemaOID", Value.Int sid) ]))
        g.Supermodel.g_children)
    s.Supermodel.generalizations;
  sid

(* ------------------------------------------------------------------ *)
(* Decoding                                                             *)

let prop_string t id k =
  match PG.node_prop t.g id k with
  | Some (Value.String s) -> s
  | _ -> Kgm_error.storage_error "dictionary: missing string prop %s" k

let prop_bool ?(default = false) t id k =
  match PG.node_prop t.g id k with
  | Some (Value.Bool b) -> b
  | _ -> default

let in_schema t sid id =
  PG.node_prop t.g id "schemaOID" = Some (Value.Int sid)

let elements t sid label =
  List.filter (in_schema t sid) (PG.nodes_with_label t.g label)

let single_out t id label what =
  match PG.neighbors_out ~label t.g id with
  | [ x ] -> x
  | l ->
      Kgm_error.storage_error "dictionary: %s has %d %s links, expected 1" what
        (List.length l) label

let type_name t id link what =
  let ty = single_out t id link what in
  prop_string t ty "name"

let decode_modifier t id =
  match prop_string t id "kind" with
  | "unique" -> Supermodel.Unique
  | "enum" ->
      (match PG.node_prop t.g id "values" with
       | Some (Value.List vs) ->
           Supermodel.Enum
             (List.map
                (function Value.String s -> s | v -> Value.to_string v)
                vs)
       | _ -> Kgm_error.storage_error "dictionary: enum modifier without values")
  | "default" ->
      (match PG.node_prop t.g id "value" with
       | Some v -> Supermodel.Default v
       | None -> Kgm_error.storage_error "dictionary: default modifier without value")
  | "range" ->
      let f k =
        match PG.node_prop t.g id k with
        | Some (Value.Float x) -> Some x
        | Some (Value.Int x) -> Some (float_of_int x)
        | _ -> None
      in
      Supermodel.Range (f "lo", f "hi")
  | k -> Kgm_error.storage_error "dictionary: unknown modifier kind %s" k

let decode_attribute t id =
  let ty_str = prop_string t id "type" in
  let ty =
    match Value.ty_of_string ty_str with
    | Some ty -> ty
    | None -> Kgm_error.storage_error "dictionary: bad attribute type %s" ty_str
  in
  { Supermodel.at_name = prop_string t id "name";
    at_ty = ty;
    at_opt = prop_bool t id "isOpt";
    at_id = prop_bool t id "isId";
    at_intensional = prop_bool t id "isIntensional";
    at_modifiers =
      List.map (decode_modifier t) (PG.neighbors_out ~label:"SM_HAS_MODIFIER" t.g id) }

let load t sid =
  let name =
    match List.assoc_opt sid t.registry with
    | Some n -> n
    | None -> Kgm_error.storage_error "dictionary: unknown schemaOID %d" sid
  in
  let node_name = Hashtbl.create 16 in
  let nodes =
    List.map
      (fun id ->
        let n_name = type_name t id "SM_HAS_NODE_TYPE" "SM_Node" in
        Hashtbl.add node_name id n_name;
        { Supermodel.n_name;
          n_intensional = prop_bool t id "isIntensional";
          n_attrs =
            List.map (decode_attribute t)
              (PG.neighbors_out ~label:"SM_HAS_NODE_PROPERTY" t.g id) })
      (elements t sid "SM_Node")
  in
  let edges =
    List.map
      (fun id ->
        let e_name = type_name t id "SM_HAS_EDGE_TYPE" "SM_Edge" in
        let from_id = single_out t id "SM_FROM" "SM_Edge" in
        let to_id = single_out t id "SM_TO" "SM_Edge" in
        { Supermodel.e_name;
          e_from = Hashtbl.find node_name from_id;
          e_to = Hashtbl.find node_name to_id;
          e_intensional = prop_bool t id "isIntensional";
          e_opt1 = prop_bool t id "isOpt1";
          e_fun1 = prop_bool t id "isFun1";
          e_opt2 = prop_bool t id "isOpt2";
          e_fun2 = prop_bool t id "isFun2";
          e_attrs =
            List.map (decode_attribute t)
              (PG.neighbors_out ~label:"SM_HAS_EDGE_PROPERTY" t.g id) })
      (elements t sid "SM_Edge")
  in
  let generalizations =
    List.map
      (fun id ->
        let parent = single_out t id "SM_PARENT" "SM_Generalization" in
        { Supermodel.g_name = prop_string t id "name";
          g_parent = Hashtbl.find node_name parent;
          g_children =
            List.map
              (fun c -> Hashtbl.find node_name c)
              (PG.neighbors_out ~label:"SM_CHILD" t.g id);
          g_total = prop_bool t id "isTotal";
          g_disjoint = prop_bool t id "isDisjoint" })
      (elements t sid "SM_Generalization")
  in
  { Supermodel.s_name = name; nodes; edges; generalizations }

let element_count t sid =
  let n = ref 0 in
  PG.iter_nodes t.g (fun id -> if in_schema t sid id then incr n);
  PG.iter_edges t.g (fun id ->
      if PG.edge_prop t.g id "schemaOID" = Some (Value.Int sid) then incr n);
  !n
