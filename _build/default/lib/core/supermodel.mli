(** The KGModel super-model (paper, Sec. 3.2 / Fig. 3): the
    model-independent super-constructs a data engineer instantiates when
    designing a super-schema — SM_Node, SM_Edge, SM_Attribute with its
    modifiers, SM_Type, SM_Generalization, and the linking
    super-constructs. A value of type {!t} is one super-schema. *)

open Kgm_common

(** Attribute modifiers (SM_AttributeModifier specializations). *)
type modifier =
  | Unique                               (** SM_UniqueAttributeModifier *)
  | Enum of string list                  (** SM_EnumAttributeModifier *)
  | Default of Value.t
  | Range of float option * float option (** numeric domain bounds *)

type attribute = {
  at_name : string;       (** camelCase *)
  at_ty : Value.ty;
  at_opt : bool;          (** isOpt *)
  at_id : bool;           (** isId: part of the node identifier *)
  at_intensional : bool;  (** derived by reasoning *)
  at_modifiers : modifier list;
}

type node = {
  n_name : string;        (** the SM_Type name, PascalCase *)
  n_attrs : attribute list;
  n_intensional : bool;
}

(** Cardinalities are encoded by isOpt/isFun exactly as in the paper:
    [e_fun1] true when each FROM instance reaches at most one TO
    instance; [e_opt1] true when it may reach none; [e_fun2]/[e_opt2]
    symmetrically constrain the TO side. *)
type edge = {
  e_name : string;        (** UPPER_CASE; unique: super-schemas are simple graphs *)
  e_from : string;        (** FROM node name *)
  e_to : string;          (** TO node name *)
  e_attrs : attribute list;
  e_intensional : bool;
  e_opt1 : bool;
  e_fun1 : bool;
  e_opt2 : bool;
  e_fun2 : bool;
}

type generalization = {
  g_name : string;
  g_parent : string;
  g_children : string list;
  g_total : bool;
  g_disjoint : bool;
}

type t = {
  s_name : string;
  nodes : node list;
  edges : edge list;
  generalizations : generalization list;
}

(** {1 Builders} *)

val attribute :
  ?opt:bool -> ?id:bool -> ?intensional:bool -> ?modifiers:modifier list ->
  string -> Value.ty -> attribute

val node : ?intensional:bool -> string -> attribute list -> node

val edge :
  ?intensional:bool -> ?attrs:attribute list ->
  ?opt1:bool -> ?fun1:bool -> ?opt2:bool -> ?fun2:bool ->
  string -> from:string -> to_:string -> edge

val generalization :
  ?total:bool -> ?disjoint:bool -> string -> parent:string ->
  children:string list -> generalization

val empty : string -> t
val add_node : t -> node -> t
val add_edge : t -> edge -> t
val add_generalization : t -> generalization -> t

(** {1 Accessors} *)

val find_node : t -> string -> node option
val find_edge : t -> string -> edge option
val find_generalization : t -> string -> generalization option

val parent_of : t -> string -> string option
(** Direct generalization parent of a node, if any. *)

val ancestors : t -> string -> string list
(** Proper ancestors bottom-up (parent first). *)

val descendants : t -> string -> string list
(** Proper descendants, preorder. *)

val children_of : t -> string -> string list

val roots : t -> node list
(** Nodes that are not a child in any generalization. *)

val all_attributes : t -> string -> attribute list
(** Own attributes plus inherited ones (ancestor attributes first). *)

val identifier_of : t -> string -> attribute list
(** The identifying attributes of a node, inherited if needed. *)

(** {1 Validation} *)

val validate : t -> (unit, string list) result
(** Checks (paper Sec. 3.2): naming conventions per level; unique
    node/edge/generalization names (simple graph); edge endpoints exist;
    generalization members exist, no node has two parents, no cycles;
    every root node has an identifier; enum/range modifiers consistent
    with attribute types; intensional edges may connect extensional
    nodes but not vice versa for identifying attributes. *)

val pp : Format.formatter -> t -> unit

val stats : t -> (string * int) list
(** Construct census: counts of SM_Node, SM_Edge, SM_Attribute,
    SM_Generalization instances, split extensional/intensional. *)
