open Kgm_common

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* attribute line in the node label: the textual form of the lollipop
   grapheme — ● mandatory, ○ optional, 🔑-style marker for identifying *)
let attr_mark (a : Supermodel.attribute) =
  if a.Supermodel.at_id then "[*]"
  else if a.Supermodel.at_opt then "( )"
  else "(*)"

let attr_line a =
  Printf.sprintf "%s %s: %s%s" (attr_mark a) a.Supermodel.at_name
    (Value.ty_to_string a.Supermodel.at_ty)
    (if a.Supermodel.at_intensional then " ~" else "")

let card_label opt fn =
  Printf.sprintf "%s..%s" (if opt then "0" else "1") (if fn then "1" else "N")

let to_dot (s : Supermodel.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "digraph %s {\n  rankdir=TB;\n  node [shape=plain];\n"
       (Names.sanitize_identifier s.Supermodel.s_name));
  List.iter
    (fun (n : Supermodel.node) ->
      let border = if n.Supermodel.n_intensional then "dashed" else "solid" in
      Buffer.add_string buf
        (Printf.sprintf
           "  \"%s\" [label=<<table border=\"1\" style=\"%s\" \
            cellborder=\"0\" cellspacing=\"0\"><tr><td><b>%s</b></td></tr>"
           n.Supermodel.n_name border (html_escape n.Supermodel.n_name));
      List.iter
        (fun a ->
          Buffer.add_string buf
            (Printf.sprintf "<tr><td align=\"left\">%s</td></tr>"
               (html_escape (attr_line a))))
        n.Supermodel.n_attrs;
      Buffer.add_string buf "</table>>];\n")
    s.Supermodel.nodes;
  List.iter
    (fun (e : Supermodel.edge) ->
      let style = if e.Supermodel.e_intensional then "dashed" else "solid" in
      let attrs =
        if e.Supermodel.e_attrs = [] then ""
        else
          "\\n"
          ^ String.concat "\\n"
              (List.map
                 (fun a -> html_escape (attr_line a))
                 e.Supermodel.e_attrs)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "  \"%s\" -> \"%s\" [label=\"%s%s\", style=%s, taillabel=\"%s\", \
            headlabel=\"%s\"];\n"
           e.Supermodel.e_from e.Supermodel.e_to e.Supermodel.e_name attrs style
           (card_label e.Supermodel.e_opt1 e.Supermodel.e_fun1)
           (card_label e.Supermodel.e_opt2 e.Supermodel.e_fun2)))
    s.Supermodel.edges;
  (* generalization graphemes: arrowhead empty (UML-style), solid = total,
     single head = disjoint, double head (diamond tail) = overlapping *)
  List.iter
    (fun (g : Supermodel.generalization) ->
      let style = if g.Supermodel.g_total then "solid" else "dotted" in
      let arrowhead = if g.Supermodel.g_disjoint then "onormal" else "odiamond" in
      List.iter
        (fun child ->
          Buffer.add_string buf
            (Printf.sprintf
               "  \"%s\" -> \"%s\" [style=%s, arrowhead=%s, penwidth=2, \
                label=\"%s\"];\n"
               child g.Supermodel.g_parent style arrowhead g.Supermodel.g_name))
        g.Supermodel.g_children)
    s.Supermodel.generalizations;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_ascii (s : Supermodel.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "=== %s ===\n" s.Supermodel.s_name);
  List.iter
    (fun (n : Supermodel.node) ->
      Buffer.add_string buf
        (Printf.sprintf "%s%s\n"
           (if n.Supermodel.n_intensional then "~" else "")
           n.Supermodel.n_name);
      List.iter
        (fun a -> Buffer.add_string buf (Printf.sprintf "  o-- %s\n" (attr_line a)))
        n.Supermodel.n_attrs)
    s.Supermodel.nodes;
  List.iter
    (fun (e : Supermodel.edge) ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s--[%s]--%s> %s  (%s -> %s)\n" e.Supermodel.e_from
           (if e.Supermodel.e_intensional then "-" else "=")
           e.Supermodel.e_name
           (if e.Supermodel.e_intensional then "-" else "=")
           e.Supermodel.e_to
           (card_label e.Supermodel.e_opt1 e.Supermodel.e_fun1)
           (card_label e.Supermodel.e_opt2 e.Supermodel.e_fun2));
      List.iter
        (fun a -> Buffer.add_string buf (Printf.sprintf "  o-- %s\n" (attr_line a)))
        e.Supermodel.e_attrs)
    s.Supermodel.edges;
  List.iter
    (fun (g : Supermodel.generalization) ->
      Buffer.add_string buf
        (Printf.sprintf "%s <|-- %s  [%s%s]\n" g.Supermodel.g_parent
           (String.concat ", " g.Supermodel.g_children)
           (if g.Supermodel.g_total then "total" else "partial")
           (if g.Supermodel.g_disjoint then ", disjoint" else ", overlapping")))
    s.Supermodel.generalizations;
  Buffer.contents buf

let grapheme_legend () =
  String.concat "\n"
    [ "SM_Node (extensional)          solid-border box, name from SM_Type";
      "SM_Node (intensional)          dashed-border box";
      "SM_Edge (extensional)          solid labeled arrow, UML cardinalities";
      "SM_Edge (intensional)          dashed labeled arrow";
      "SM_Attribute (mandatory)       filled lollipop (*)";
      "SM_Attribute (optional)        empty lollipop ( )";
      "SM_Attribute (identifying)     key-marked lollipop [*]";
      "SM_Generalization total+disj   solid thick arrow, single empty head";
      "SM_Generalization partial+disj dotted thick arrow, single empty head";
      "SM_Generalization total        solid thick arrow, diamond head";
      "SM_Generalization partial      dotted thick arrow, diamond head";
      "SM_Type / SM_FROM / SM_TO / SM_PARENT / SM_CHILD / SM_HAS_*  implicit";
      "" ]
