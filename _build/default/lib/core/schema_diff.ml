module SM = Supermodel

type change =
  | Added_node of string
  | Removed_node of string
  | Added_edge of string
  | Removed_edge of string
  | Added_attribute of string * string
  | Removed_attribute of string * string
  | Changed_attribute of string * string * string
  | Changed_edge of string * string
  | Added_generalization of string
  | Removed_generalization of string
  | Changed_generalization of string * string

type verdict = Compatible | Needs_migration

type t = {
  changes : change list;
  verdict : verdict;
}

(* A change is breaking when an instance of the old schema can violate
   the new one. Additions of optional/intensional things are safe;
   removals, tightenings and mandatory additions are not. *)
let breaking = function
  | Added_node _ -> false
  | Removed_node _ -> true
  | Added_edge _ -> false
  | Removed_edge _ -> true
  | Added_attribute (_, _) -> false (* flagged Changed_attribute if mandatory *)
  | Removed_attribute _ -> true
  | Changed_attribute _ -> true
  | Changed_edge _ -> true
  | Added_generalization _ -> false
  | Removed_generalization _ -> true
  | Changed_generalization _ -> true

let diff_attrs owner old_attrs new_attrs changes =
  let find name l =
    List.find_opt (fun (a : SM.attribute) -> a.SM.at_name = name) l
  in
  List.iter
    (fun (a : SM.attribute) ->
      match find a.SM.at_name new_attrs with
      | None -> changes := Removed_attribute (owner, a.SM.at_name) :: !changes
      | Some b ->
          if a.SM.at_ty <> b.SM.at_ty then
            changes :=
              Changed_attribute (owner, a.SM.at_name, "type changed") :: !changes;
          if a.SM.at_opt && not b.SM.at_opt then
            changes :=
              Changed_attribute (owner, a.SM.at_name, "became mandatory")
              :: !changes;
          if (not a.SM.at_id) && b.SM.at_id then
            changes :=
              Changed_attribute (owner, a.SM.at_name, "became identifying")
              :: !changes;
          if a.SM.at_id && not b.SM.at_id then
            changes :=
              Changed_attribute (owner, a.SM.at_name, "no longer identifying")
              :: !changes;
          if
            List.sort compare a.SM.at_modifiers
            <> List.sort compare b.SM.at_modifiers
          then
            changes :=
              Changed_attribute (owner, a.SM.at_name, "modifiers changed")
              :: !changes)
    old_attrs;
  List.iter
    (fun (b : SM.attribute) ->
      match find b.SM.at_name old_attrs with
      | None ->
          changes := Added_attribute (owner, b.SM.at_name) :: !changes;
          if (not b.SM.at_opt) && not b.SM.at_intensional then
            changes :=
              Changed_attribute
                (owner, b.SM.at_name, "added as mandatory: backfill required")
              :: !changes
      | Some _ -> ())
    new_attrs

let diff (old_s : SM.t) (new_s : SM.t) =
  let changes = ref [] in
  (* nodes *)
  List.iter
    (fun (n : SM.node) ->
      match SM.find_node new_s n.SM.n_name with
      | None -> changes := Removed_node n.SM.n_name :: !changes
      | Some m -> diff_attrs n.SM.n_name n.SM.n_attrs m.SM.n_attrs changes)
    old_s.SM.nodes;
  List.iter
    (fun (m : SM.node) ->
      if SM.find_node old_s m.SM.n_name = None then
        changes := Added_node m.SM.n_name :: !changes)
    new_s.SM.nodes;
  (* edges *)
  List.iter
    (fun (e : SM.edge) ->
      match SM.find_edge new_s e.SM.e_name with
      | None -> changes := Removed_edge e.SM.e_name :: !changes
      | Some f ->
          if e.SM.e_from <> f.SM.e_from || e.SM.e_to <> f.SM.e_to then
            changes := Changed_edge (e.SM.e_name, "endpoints changed") :: !changes;
          (* tightened cardinalities are breaking; loosened are fine *)
          if ((not e.SM.e_fun1) && f.SM.e_fun1)
             || ((not e.SM.e_fun2) && f.SM.e_fun2)
          then
            changes :=
              Changed_edge (e.SM.e_name, "maximum cardinality tightened")
              :: !changes;
          if (e.SM.e_opt1 && not f.SM.e_opt1) || (e.SM.e_opt2 && not f.SM.e_opt2)
          then
            changes :=
              Changed_edge (e.SM.e_name, "participation became mandatory")
              :: !changes;
          diff_attrs e.SM.e_name e.SM.e_attrs f.SM.e_attrs changes)
    old_s.SM.edges;
  List.iter
    (fun (f : SM.edge) ->
      if SM.find_edge old_s f.SM.e_name = None then
        changes := Added_edge f.SM.e_name :: !changes)
    new_s.SM.edges;
  (* generalizations *)
  List.iter
    (fun (g : SM.generalization) ->
      match SM.find_generalization new_s g.SM.g_name with
      | None -> changes := Removed_generalization g.SM.g_name :: !changes
      | Some h ->
          if g.SM.g_parent <> h.SM.g_parent then
            changes :=
              Changed_generalization (g.SM.g_name, "parent changed") :: !changes;
          if List.sort compare g.SM.g_children <> List.sort compare h.SM.g_children
          then
            changes :=
              Changed_generalization (g.SM.g_name, "children changed") :: !changes;
          if (not g.SM.g_total) && h.SM.g_total then
            changes :=
              Changed_generalization (g.SM.g_name, "became total") :: !changes;
          if (not g.SM.g_disjoint) && h.SM.g_disjoint then
            changes :=
              Changed_generalization (g.SM.g_name, "became disjoint") :: !changes)
    old_s.SM.generalizations;
  List.iter
    (fun (h : SM.generalization) ->
      if SM.find_generalization old_s h.SM.g_name = None then
        changes := Added_generalization h.SM.g_name :: !changes)
    new_s.SM.generalizations;
  let changes = List.rev !changes in
  { changes;
    verdict =
      (if List.exists breaking changes then Needs_migration else Compatible) }

let pp_change ppf = function
  | Added_node n -> Format.fprintf ppf "+ node %s" n
  | Removed_node n -> Format.fprintf ppf "- node %s" n
  | Added_edge e -> Format.fprintf ppf "+ edge %s" e
  | Removed_edge e -> Format.fprintf ppf "- edge %s" e
  | Added_attribute (o, a) -> Format.fprintf ppf "+ attribute %s.%s" o a
  | Removed_attribute (o, a) -> Format.fprintf ppf "- attribute %s.%s" o a
  | Changed_attribute (o, a, w) -> Format.fprintf ppf "~ attribute %s.%s: %s" o a w
  | Changed_edge (e, w) -> Format.fprintf ppf "~ edge %s: %s" e w
  | Added_generalization g -> Format.fprintf ppf "+ generalization %s" g
  | Removed_generalization g -> Format.fprintf ppf "- generalization %s" g
  | Changed_generalization (g, w) ->
      Format.fprintf ppf "~ generalization %s: %s" g w

let pp ppf t =
  List.iter (fun c -> Format.fprintf ppf "%a@." pp_change c) t.changes;
  Format.fprintf ppf "verdict: %s@."
    (match t.verdict with
     | Compatible -> "compatible (additive)"
     | Needs_migration -> "needs migration")

let migration_hints t =
  List.filter_map
    (fun c ->
      if not (breaking c) then None
      else
        Some
          (match c with
           | Removed_node n ->
               Printf.sprintf
                 "node %s removed: archive its instances (relational: DROP \
                  TABLE after export; PG: detach-delete by label)"
                 n
           | Removed_edge e ->
               Printf.sprintf
                 "edge %s removed: drop the relationship type / bridge table \
                  and its foreign keys"
                 e
           | Removed_attribute (o, a) ->
               Printf.sprintf "attribute %s.%s removed: drop the column/property" o a
           | Changed_attribute (o, a, w) ->
               Printf.sprintf
                 "attribute %s.%s (%s): validate and convert existing values \
                  before enforcing"
                 o a w
           | Changed_edge (e, w) ->
               Printf.sprintf
                 "edge %s (%s): existing instances may violate the new \
                  cardinalities; deduplicate or backfill first"
                 e w
           | Removed_generalization g | Changed_generalization (g, _) ->
               Printf.sprintf
                 "generalization %s changed: re-run the SSST translation and \
                  reconcile inherited labels/columns"
                 g
           | Added_node _ | Added_edge _ | Added_attribute _
           | Added_generalization _ ->
               assert false))
    t.changes
