(** Graph dictionaries (paper, Sec. 2.2): property-graph databases that
    store super-schemas (and, via {!Instances}, super-components) as
    instances of the super-model. Each construct instance becomes a
    dictionary node labeled with its super-construct (SM_Node, SM_Edge,
    SM_Type, SM_Attribute, SM_Generalization, SM_AttributeModifier) and
    the linking super-constructs become dictionary edges
    (SM_HAS_NODE_TYPE, SM_HAS_EDGE_TYPE, SM_HAS_NODE_PROPERTY,
    SM_HAS_EDGE_PROPERTY, SM_HAS_MODIFIER, SM_FROM, SM_TO, SM_PARENT,
    SM_CHILD). Every element carries a [schemaOID] property selecting
    the super-schema it belongs to, as in Example 5.1.

    SSST mappings are MetaLog programs run directly against this
    graph. *)

type t

val create : unit -> t

val graph : t -> Kgm_graphdb.Pgraph.t
(** The underlying property graph (shared, mutable). *)

val store : t -> Supermodel.t -> int
(** Serialize a super-schema into the dictionary; returns its fresh
    schemaOID. The schema should be validated first. *)

val load : t -> int -> Supermodel.t
(** Decode the super-schema with the given schemaOID. Inverse of
    {!store} up to list ordering. Raises on unknown OID or on dictionary
    content that does not satisfy super-schema invariants (e.g. a node
    with two SM_Types — legal in a translated PG-model schema but not in
    a super-schema). *)

val schemas : t -> (int * string) list
(** Registered [(schemaOID, name)] pairs, oldest first. *)

val find_schema : t -> string -> int option

val next_schema_oid : t -> int
(** The OID the next {!store} (or derived translation) may use;
    translations reserve ids with {!reserve_oid}. *)

val reserve_oid : t -> name:string -> int
(** Register a schema id without content (SSST writes the content by
    reasoning). *)

val element_count : t -> int -> int
(** Number of dictionary elements (nodes and edges) carrying the given
    schemaOID. *)
