(** Automatic construction of the input and output views of Algorithm 2
    (lines 5-6), from a static analysis of the intensional component Σ.

    Σ is written against schema constructs ("speaks the business
    language": Business, OWNS, CONTROLS, ...). The views bridge it to
    the instance-level super-constructs:

    - V_I: for each node/edge label in a body of Σ, a rule reading
      I_SM_Node / I_SM_Edge elements referencing that construct (or a
      descendant of it, enumerated from the generalization hierarchy)
      and packing their I_SM_Attributes into facts of the label — the
      pack/unpack discipline of Example 6.2. The produced fact reuses
      the I_SM element id, which is what makes the output direction
      trivially linkable.
    - V_O: for each node/edge label in a head of Σ, rules denormalizing
      the derived facts back into I_SM_Node / I_SM_Edge /
      I_SM_Attribute elements with SM_REFERENCES to the schema
      constructs. Existential head elements rely on the restricted
      chase for idempotence, so repeated materializations do not
      duplicate derived knowledge. *)

type analysis = {
  body_node_labels : string list;
  body_edge_labels : string list;
  head_node_labels : string list;
  head_edge_labels : string list;
  (** attribute names mentioned in Σ heads, per label *)
  head_attrs : (string * string list) list;
}

val analyze : Kgm_metalog.Ast.program -> analysis

val input_views :
  schema:Supermodel.t -> schema_oid:int -> instance_oid:int ->
  Kgm_metalog.Ast.program -> string
(** MetaLog source of V_I(Σ). *)

val output_views :
  schema:Supermodel.t -> schema_oid:int -> instance_oid:int ->
  Kgm_metalog.Ast.program -> string
(** MetaLog source of V_O(Σ). *)
