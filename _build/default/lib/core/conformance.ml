open Kgm_common
module PG = Kgm_graphdb.Pgraph

type violation = {
  subject : Oid.t option;
  rule : string;
  message : string;
}

let pp_violation ppf v =
  Format.fprintf ppf "[%s]%s %s" v.rule
    (match v.subject with
     | Some id -> " " ^ Oid.to_string id
     | None -> "")
    v.message

let check ?(reject_intensional = false) (s : Supermodel.t) g =
  let violations = ref [] in
  let report ?subject rule fmt =
    Format.kasprintf
      (fun message -> violations := { subject; rule; message } :: !violations)
      fmt
  in
  (* ---- nodes ---- *)
  let node_label = Hashtbl.create 256 in
  (* per (type-in-hierarchy, identifying-attr-name) -> value -> node *)
  let id_values : (string * string, (Value.t, Oid.t) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 64
  in
  let unique_values = Hashtbl.create 64 in
  PG.iter_nodes g (fun id ->
      match PG.node_labels g id with
      | [ label ] -> (
          match Supermodel.find_node s label with
          | None -> report ~subject:id "unknown-label" "node label %s not in schema" label
          | Some n ->
              Hashtbl.add node_label id label;
              if reject_intensional && n.Supermodel.n_intensional then
                report ~subject:id "intensional-node"
                  "%s is intensional: not ground data" label;
              let attrs = Supermodel.all_attributes s label in
              let props = PG.node_props g id in
              (* unknown properties *)
              List.iter
                (fun (k, _) ->
                  if
                    not
                      (List.exists
                         (fun (a : Supermodel.attribute) -> a.Supermodel.at_name = k)
                         attrs)
                  then
                    report ~subject:id "unknown-property"
                      "property %s not declared for %s" k label)
                props;
              List.iter
                (fun (a : Supermodel.attribute) ->
                  let v = List.assoc_opt a.Supermodel.at_name props in
                  (match v with
                   | None ->
                       if
                         (not a.Supermodel.at_opt)
                         && not a.Supermodel.at_intensional
                       then
                         report ~subject:id "missing-attribute"
                           "mandatory attribute %s missing on %s"
                           a.Supermodel.at_name label
                   | Some v ->
                       if not (Value.conforms a.Supermodel.at_ty v) then
                         report ~subject:id "domain"
                           "%s.%s: %s does not conform to %s" label
                           a.Supermodel.at_name (Value.to_string v)
                           (Value.ty_to_string a.Supermodel.at_ty);
                       if
                         reject_intensional && a.Supermodel.at_intensional
                       then
                         report ~subject:id "intensional-attribute"
                           "%s.%s is intensional: not ground data" label
                           a.Supermodel.at_name;
                       (* modifiers *)
                       List.iter
                         (function
                           | Supermodel.Enum allowed ->
                               (match Value.as_string v with
                                | Some str when not (List.mem str allowed) ->
                                    report ~subject:id "enum"
                                      "%s.%s: %S not in enum" label
                                      a.Supermodel.at_name str
                                | _ -> ())
                           | Supermodel.Range (lo, hi) ->
                               (match Value.as_float v with
                                | Some f ->
                                    let lo_ok =
                                      match lo with Some l -> f >= l | None -> true
                                    in
                                    let hi_ok =
                                      match hi with Some h -> f <= h | None -> true
                                    in
                                    if not (lo_ok && hi_ok) then
                                      report ~subject:id "range"
                                        "%s.%s: %g out of range" label
                                        a.Supermodel.at_name f
                                | None -> ())
                           | Supermodel.Unique ->
                               (* checked below via the value table *)
                               ()
                           | Supermodel.Default _ -> ())
                         a.Supermodel.at_modifiers;
                       (* identity / uniqueness accounting: keyed by the
                          topmost ancestor owning the attribute so the
                          check spans the generalization hierarchy *)
                       let owner =
                         let rec find_owner labels =
                           match labels with
                           | [] -> label
                           | l :: rest ->
                               (match Supermodel.find_node s l with
                                | Some n
                                  when List.exists
                                         (fun (b : Supermodel.attribute) ->
                                           b.Supermodel.at_name
                                           = a.Supermodel.at_name)
                                         n.Supermodel.n_attrs ->
                                    l
                                | _ -> find_owner rest)
                         in
                         find_owner
                           (List.rev (label :: Supermodel.ancestors s label))
                       in
                       let track table rule =
                         let key = (owner, a.Supermodel.at_name) in
                         let tbl =
                           match Hashtbl.find_opt table key with
                           | Some t -> t
                           | None ->
                               let t = Hashtbl.create 64 in
                               Hashtbl.add table key t;
                               t
                         in
                         match Hashtbl.find_opt tbl v with
                         | Some other when not (Oid.equal other id) ->
                             report ~subject:id rule
                               "%s.%s: duplicate value %s (also on %s)" owner
                               a.Supermodel.at_name (Value.to_string v)
                               (Oid.to_string other)
                         | _ -> Hashtbl.replace tbl v id
                       in
                       if a.Supermodel.at_id then track id_values "identity";
                       if
                         List.exists
                           (function Supermodel.Unique -> true | _ -> false)
                           a.Supermodel.at_modifiers
                       then track unique_values "unique");
                  ())
                attrs)
      | labels ->
          report ~subject:id "label-count" "node carries %d labels, expected 1"
            (List.length labels))
  ;
  (* ---- edges ---- *)
  (* cardinality accounting: (edge-name, endpoint, side) -> count *)
  let partner_count = Hashtbl.create 256 in
  let bump key =
    Hashtbl.replace partner_count key
      (1 + Option.value ~default:0 (Hashtbl.find_opt partner_count key))
  in
  let label_matches declared actual =
    declared = actual || List.mem declared (Supermodel.ancestors s actual)
  in
  PG.iter_edges g (fun id ->
      let label = PG.edge_label g id in
      match Supermodel.find_edge s label with
      | None -> report ~subject:id "unknown-edge" "edge label %s not in schema" label
      | Some e ->
          if reject_intensional && e.Supermodel.e_intensional then
            report ~subject:id "intensional-edge"
              "%s is intensional: not ground data" label;
          let src, dst = PG.edge_ends g id in
          (match Hashtbl.find_opt node_label src with
           | Some l when not (label_matches e.Supermodel.e_from l) ->
               report ~subject:id "endpoint" "%s source is %s, expected %s" label
                 l e.Supermodel.e_from
           | _ -> ());
          (match Hashtbl.find_opt node_label dst with
           | Some l when not (label_matches e.Supermodel.e_to l) ->
               report ~subject:id "endpoint" "%s target is %s, expected %s" label
                 l e.Supermodel.e_to
           | _ -> ());
          bump (label, src, `From);
          bump (label, dst, `To);
          (* edge attributes *)
          let props = PG.edge_props g id in
          List.iter
            (fun (k, _) ->
              if
                not
                  (List.exists
                     (fun (a : Supermodel.attribute) -> a.Supermodel.at_name = k)
                     e.Supermodel.e_attrs)
              then
                report ~subject:id "unknown-property"
                  "edge property %s not declared for %s" k label)
            props;
          List.iter
            (fun (a : Supermodel.attribute) ->
              match List.assoc_opt a.Supermodel.at_name props with
              | None ->
                  if (not a.Supermodel.at_opt) && not a.Supermodel.at_intensional
                  then
                    report ~subject:id "missing-attribute"
                      "mandatory attribute %s missing on %s" a.Supermodel.at_name
                      label
              | Some v ->
                  if not (Value.conforms a.Supermodel.at_ty v) then
                    report ~subject:id "domain" "%s.%s: %s does not conform to %s"
                      label a.Supermodel.at_name (Value.to_string v)
                      (Value.ty_to_string a.Supermodel.at_ty))
            e.Supermodel.e_attrs);
  (* isFun upper bounds: at most one partner *)
  Hashtbl.iter
    (fun (label, node, side) count ->
      match Supermodel.find_edge s label with
      | Some e ->
          let fn = match side with `From -> e.Supermodel.e_fun1 | `To -> e.Supermodel.e_fun2 in
          if fn && count > 1 then
            report ~subject:node "cardinality-max"
              "%s: %d %s-partners, at most 1 allowed" label count
              (match side with `From -> "outgoing" | `To -> "incoming")
      | None -> ())
    partner_count;
  (* isOpt lower bounds: mandatory participation *)
  List.iter
    (fun (e : Supermodel.edge) ->
      if not e.Supermodel.e_intensional then begin
        let require side declared opt =
          if not opt then
            List.iter
              (fun nl ->
                List.iter
                  (fun id ->
                    if not (Hashtbl.mem partner_count (e.Supermodel.e_name, id, side))
                    then
                      report ~subject:id "cardinality-min"
                        "%s (%s) must participate in %s" nl
                        (match side with `From -> "source" | `To -> "target")
                        e.Supermodel.e_name)
                  (PG.nodes_with_label g nl))
              (declared :: Supermodel.descendants s declared)
        in
        require `From e.Supermodel.e_from e.Supermodel.e_opt1;
        require `To e.Supermodel.e_to e.Supermodel.e_opt2
      end)
    s.Supermodel.edges;
  List.rev !violations

let is_conformant ?reject_intensional s g =
  check ?reject_intensional s g = []
