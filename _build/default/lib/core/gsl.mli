(** GSL — the Graph Schema Language (paper, Sec. 2.2/3.2).

    In the paper GSL is the visual language produced by the rendering
    function Γ_SM; KGSE serializes diagrams into the super-model
    dictionary. This module implements the serialized, textual form of
    GSL plus its parser, so designs are reproducible files:

    {v
    schema company_kg {
      node Person {
        fiscalCode: string @id @unique;
        name: string;
      }
      node PhysicalPerson {
        gender: string;
        birthDate: date @opt;
      }
      generalization PersonKind of Person =
        PhysicalPerson | LegalPerson @total @disjoint;
      edge HOLDS from Person to Share [0..N -> 1..N] {
        right: string @enum("ownership", "bareOwnership", "usufruct");
        percentage: float;
      }
      intensional edge CONTROLS from Person to Business;
    }
    v}

    Cardinality [\[a..b -> c..d\]] reads: each FROM instance reaches
    between [a] and [b] TO instances; each TO instance is reached by
    between [c] and [d] FROM instances ([b]/[d] are [1] or [N]).
    Attribute markers: [@id], [@opt], [@unique], [@intensional],
    [@enum("v1", ...)], [@default(lit)], [@range(lo, hi)]. Node/edge
    prefix [intensional] marks derived constructs (dashed graphemes in
    Fig. 3). *)

val parse : string -> Supermodel.t
(** Raises [Kgm_common.Kgm_error.Error] on syntax errors; the result is
    NOT yet validated — run {!Supermodel.validate}. *)

val parse_validated : string -> Supermodel.t
(** Parse then validate; raises on either failure. *)

val print : Supermodel.t -> string
(** Render back to GSL text; [parse (print s)] is [s] up to formatting. *)
