open Kgm_common
module PG = Kgm_graphdb.Pgraph

type t = {
  dict : Dictionary.t;
  mutable registry : (int * int) list; (* instanceOID -> schemaOID *)
  mutable next : int;
  null_gen : int ref;
}

let create dict = { dict; registry = []; next = 1; null_gen = ref 2_000_000_000 }

let dictionary t = t.dict

let instances t = t.registry

let fresh_null t =
  incr t.null_gen;
  Value.Null !(t.null_gen)

(* dictionary lookup helpers *)

let g t = Dictionary.graph t.dict

let construct_with_type t sid construct_label type_link name =
  PG.nodes_with_label (g t) construct_label
  |> List.find_opt (fun id ->
         PG.node_prop (g t) id "schemaOID" = Some (Value.Int sid)
         && List.exists
              (fun ty -> PG.node_prop (g t) ty "name" = Some (Value.String name))
              (PG.neighbors_out ~label:type_link (g t) id))

let node_construct t sid name =
  construct_with_type t sid "SM_Node" "SM_HAS_NODE_TYPE" name

let edge_construct t sid name =
  construct_with_type t sid "SM_Edge" "SM_HAS_EDGE_TYPE" name

let attrs_of_construct t id link =
  List.map
    (fun a ->
      let name =
        match PG.node_prop (g t) a "name" with
        | Some (Value.String s) -> s
        | _ -> Kgm_error.storage_error "attribute without name"
      in
      let intensional =
        PG.node_prop (g t) a "isIntensional" = Some (Value.Bool true)
      in
      (name, a, intensional))
    (PG.neighbors_out ~label:link (g t) id)

(* ------------------------------------------------------------------ *)

let store t ~schema_oid data =
  let iid = t.next in
  t.next <- iid + 1;
  t.registry <- t.registry @ [ (iid, schema_oid) ];
  let gd = g t in
  let add_attr owner owner_link construct_attr value =
    let ia =
      PG.add_node gd ~labels:[ "I_SM_Attribute" ]
        ~props:[ ("instanceOID", Value.Int iid); ("value", value) ]
    in
    ignore
      (PG.add_edge gd ~label:owner_link ~src:owner ~dst:ia
         ~props:[ ("instanceOID", Value.Int iid) ]);
    ignore
      (PG.add_edge gd ~label:"SM_REFERENCES" ~src:ia ~dst:construct_attr
         ~props:[ ("instanceOID", Value.Int iid) ])
  in
  let inode_of = Hashtbl.create 256 in
  PG.iter_nodes data (fun id ->
      let label =
        match PG.node_labels data id with
        | [ l ] -> l
        | ls ->
            Kgm_error.storage_error "data node %s must carry one label (has %d)"
              (Oid.to_string id) (List.length ls)
      in
      let construct =
        match node_construct t schema_oid label with
        | Some c -> c
        | None ->
            Kgm_error.storage_error "no SM_Node construct for label %s" label
      in
      let inode =
        PG.add_node gd ~labels:[ "I_SM_Node" ]
          ~props:
            [ ("instanceOID", Value.Int iid); ("dataOID", Value.Id id) ]
      in
      Hashtbl.add inode_of id inode;
      ignore
        (PG.add_edge gd ~label:"SM_REFERENCES" ~src:inode ~dst:construct
           ~props:[ ("instanceOID", Value.Int iid) ]);
      let props = PG.node_props data id in
      (* every extensional attribute along the generalization chain *)
      let rec constructs_up c acc =
        let acc = c :: acc in
        match
          List.find_opt
            (fun p -> List.mem "SM_Generalization" (PG.node_labels gd p))
            (PG.neighbors_in ~label:"SM_CHILD" gd c)
        with
        | Some gen ->
            (match PG.neighbors_out ~label:"SM_PARENT" gd gen with
             | p :: _ -> constructs_up p acc
             | [] -> acc)
        | None -> acc
      in
      let attr_specs =
        List.concat_map
          (fun c -> attrs_of_construct t c "SM_HAS_NODE_PROPERTY")
          (constructs_up construct [])
      in
      List.iter
        (fun (aname, aconstruct, intensional) ->
          if not intensional then
            let value =
              match List.assoc_opt aname props with
              | Some v -> v
              | None -> fresh_null t
            in
            add_attr inode "I_SM_HAS_NODE_ATTR" aconstruct value)
        attr_specs;
      (* unknown properties are conformance errors *)
      List.iter
        (fun (k, _) ->
          if not (List.exists (fun (a, _, _) -> a = k) attr_specs) then
            Kgm_error.storage_error "data node property %s not in schema (%s)" k
              label)
        props);
  PG.iter_edges data (fun id ->
      let label = PG.edge_label data id in
      let construct =
        match edge_construct t schema_oid label with
        | Some c -> c
        | None ->
            Kgm_error.storage_error "no SM_Edge construct for label %s" label
      in
      let src, dst = PG.edge_ends data id in
      let iedge =
        PG.add_node gd ~labels:[ "I_SM_Edge" ]
          ~props:[ ("instanceOID", Value.Int iid); ("dataOID", Value.Id id) ]
      in
      ignore
        (PG.add_edge gd ~label:"SM_REFERENCES" ~src:iedge ~dst:construct
           ~props:[ ("instanceOID", Value.Int iid) ]);
      ignore
        (PG.add_edge gd ~label:"I_SM_FROM" ~src:iedge
           ~dst:(Hashtbl.find inode_of src)
           ~props:[ ("instanceOID", Value.Int iid) ]);
      ignore
        (PG.add_edge gd ~label:"I_SM_TO" ~src:iedge
           ~dst:(Hashtbl.find inode_of dst)
           ~props:[ ("instanceOID", Value.Int iid) ]);
      let props = PG.edge_props data id in
      let attr_specs = attrs_of_construct t construct "SM_HAS_EDGE_PROPERTY" in
      List.iter
        (fun (aname, aconstruct, intensional) ->
          if not intensional then
            let value =
              match List.assoc_opt aname props with
              | Some v -> v
              | None -> fresh_null t
            in
            add_attr iedge "I_SM_HAS_EDGE_ATTR" aconstruct value)
        attr_specs);
  iid

(* ------------------------------------------------------------------ *)

let in_instance t iid id =
  PG.node_prop (g t) id "instanceOID" = Some (Value.Int iid)

let data_oid t id =
  match PG.node_prop (g t) id "dataOID" with
  | Some (Value.Id o) -> Some o
  | _ -> None

let construct_type_name t id link =
  match PG.neighbors_out ~label:"SM_REFERENCES" (g t) id with
  | c :: _ ->
      (match PG.neighbors_out ~label:link (g t) c with
       | ty :: _ ->
           (match PG.node_prop (g t) ty "name" with
            | Some (Value.String s) -> Some s
            | _ -> None)
       | [] -> None)
  | [] -> None

let attr_values t owner link =
  List.filter_map
    (fun ia ->
      let value = PG.node_prop (g t) ia "value" in
      let name =
        match PG.neighbors_out ~label:"SM_REFERENCES" (g t) ia with
        | a :: _ ->
            (match PG.node_prop (g t) a "name" with
             | Some (Value.String s) -> Some s
             | _ -> None)
        | [] -> None
      in
      match name, value with
      | Some n, Some v when not (Value.is_null v) -> Some (n, v)
      | _ -> None)
    (PG.neighbors_out ~label:link (g t) owner)

let load t iid =
  let gd = g t in
  let out = PG.create () in
  let data_of = Hashtbl.create 256 in
  List.iter
    (fun inode ->
      if in_instance t iid inode then begin
        let label =
          match construct_type_name t inode "SM_HAS_NODE_TYPE" with
          | Some l -> l
          | None -> Kgm_error.storage_error "I_SM_Node without construct type"
        in
        let id =
          match data_oid t inode with Some o -> o | None -> inode
        in
        Hashtbl.add data_of inode id;
        ignore
          (PG.add_node ~id out ~labels:[ label ]
             ~props:(attr_values t inode "I_SM_HAS_NODE_ATTR"))
      end)
    (PG.nodes_with_label gd "I_SM_Node");
  List.iter
    (fun iedge ->
      if in_instance t iid iedge then begin
        let label =
          match construct_type_name t iedge "SM_HAS_EDGE_TYPE" with
          | Some l -> l
          | None -> Kgm_error.storage_error "I_SM_Edge without construct type"
        in
        let endpoint link =
          match PG.neighbors_out ~label:link gd iedge with
          | n :: _ -> Hashtbl.find data_of n
          | [] -> Kgm_error.storage_error "I_SM_Edge without %s" link
        in
        let id = match data_oid t iedge with Some o -> o | None -> iedge in
        ignore
          (PG.add_edge ~id out ~label ~src:(endpoint "I_SM_FROM")
             ~dst:(endpoint "I_SM_TO")
             ~props:(attr_values t iedge "I_SM_HAS_EDGE_ATTR"))
      end)
    (PG.nodes_with_label gd "I_SM_Edge");
  out

let element_counts t iid =
  let count label =
    List.length
      (List.filter (in_instance t iid) (PG.nodes_with_label (g t) label))
  in
  (count "I_SM_Node", count "I_SM_Edge", count "I_SM_Attribute")
