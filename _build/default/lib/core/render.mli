(** The rendering function Γ_SM (paper, Sec. 3.1–3.2 / Fig. 3): maps
    super-construct instances to graphemes. Emitted as Graphviz DOT with
    the figure's conventions — solid boxes for extensional SM_Nodes,
    dashed for intensional ones, solid/dashed labeled arrows for
    SM_Edges with UML-style cardinalities, lollipop-style attribute
    lists (filled = mandatory, empty = optional, key-marked =
    identifying), and generalization arrows whose head/solidity encode
    total/disjoint. An ASCII renderer covers terminals. *)

val to_dot : Supermodel.t -> string
(** Deterministic DOT document for the whole design diagram (the shape
    of Fig. 4). *)

val to_ascii : Supermodel.t -> string
(** Plain-text rendering: one block per node with its attribute
    lollipops, then edges and generalizations. *)

val grapheme_legend : unit -> string
(** The Fig. 3 table: one line per super-construct with the textual
    description of its grapheme. *)
