type mapping = {
  model_name : string;
  strategy : string;
  eliminate : src:int -> dst:int -> string;
  copy : src:int -> dst:int -> string;
}

type outcome = {
  intermediate_oid : int;
  target_oid : int;
  eliminate_stats : Kgm_vadalog.Engine.stats;
  copy_stats : Kgm_vadalog.Engine.stats;
}

let run_metalog ?options dict src =
  let prog = Kgm_metalog.Mparser.parse_program src in
  let _, _, stats =
    Kgm_metalog.Pg_bridge.reason_on_graph ?options prog (Dictionary.graph dict)
  in
  stats

let translate dict mapping sid =
  let schema_name =
    match List.assoc_opt sid (Dictionary.schemas dict) with
    | Some n -> n
    | None ->
        Kgm_common.Kgm_error.translate_error "ssst: unknown schemaOID %d" sid
  in
  let intermediate_oid =
    Dictionary.reserve_oid dict
      ~name:(Printf.sprintf "%s@%s-" schema_name mapping.model_name)
  in
  let target_oid =
    Dictionary.reserve_oid dict
      ~name:(Printf.sprintf "%s@%s" schema_name mapping.model_name)
  in
  let eliminate_stats =
    run_metalog dict (mapping.eliminate ~src:sid ~dst:intermediate_oid)
  in
  let copy_stats =
    run_metalog dict (mapping.copy ~src:intermediate_oid ~dst:target_oid)
  in
  { intermediate_oid; target_oid; eliminate_stats; copy_stats }
