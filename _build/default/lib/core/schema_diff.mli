(** Super-schema evolution (paper, Sec. 3.3: "the address ... is likely
    to change in the future and be enriched"; Sec. 7: design,
    implementation and {e verification} across KG projects).

    Structural diff of two super-schemas at the super-model level —
    model-independent, so one diff serves every deployment target — with
    a compatibility verdict and per-target migration hints. *)

type change =
  | Added_node of string
  | Removed_node of string
  | Added_edge of string
  | Removed_edge of string
  | Added_attribute of string * string            (** owner, attribute *)
  | Removed_attribute of string * string
  | Changed_attribute of string * string * string (** owner, attr, what *)
  | Changed_edge of string * string               (** edge, what *)
  | Added_generalization of string
  | Removed_generalization of string
  | Changed_generalization of string * string

type verdict =
  | Compatible          (** purely additive: old instances still conform *)
  | Needs_migration     (** old instances may violate the new schema *)

type t = {
  changes : change list;
  verdict : verdict;
}

val diff : Supermodel.t -> Supermodel.t -> t
(** [diff old_schema new_schema]. *)

val pp_change : Format.formatter -> change -> unit
val pp : Format.formatter -> t -> unit

val migration_hints : t -> string list
(** One human-readable hint per breaking change: what a relational or PG
    deployment must do before enforcing the new schema. *)
