(** Instance-level constructs (paper, Sec. 6 / Fig. 9): the dictionary
    is extended with an I_C counterpart for each super-construct C, so
    super-components — instances of super-schemas — can be stored next
    to the super-schemas themselves. Every instance element carries an
    [instanceOID] and an [SM_REFERENCES] edge to the construct it
    instantiates; data values live in [I_SM_Attribute.value].

    [store] implements the instance-loading direction of Algorithm 2
    (lines 1-4): the source property-graph instance D is loaded into the
    instance super-constructs via the quasi-inverse of the copy phase —
    labels resolve to SM_Node constructs, properties to SM_Attributes
    (every extensional schema attribute materializes, absent optional
    values become fresh labeled nulls so unknowns never join).
    [load] is the inverse; [load (store d)] reproduces d up to the
    labeled nulls introduced for missing optional attributes. *)

open Kgm_common

type t

val create : Dictionary.t -> t

val dictionary : t -> Dictionary.t

val store :
  t -> schema_oid:int -> Kgm_graphdb.Pgraph.t -> int
(** Load a data graph conforming to the super-schema; returns the fresh
    instanceOID. Data nodes must carry exactly one label naming a
    schema SM_Node; properties must name schema attributes. Raises
    [Kgm_error.Error] on conformance violations. *)

val load : t -> int -> Kgm_graphdb.Pgraph.t
(** Decode the super-component back into a property graph; derived
    (intensional) elements materialized by Algorithm 2 are included. *)

val instances : t -> (int * int) list
(** Registered [(instanceOID, schemaOID)] pairs. *)

val element_counts : t -> int -> int * int * int
(** (I_SM_Node, I_SM_Edge, I_SM_Attribute) counts for an instance. *)

val data_oid : t -> Oid.t -> Oid.t option
(** The original data-graph OID recorded on an I_SM_Node/I_SM_Edge. *)
