type partition = {
  count : int;
  component : int array;
  sizes : int array;
}

(* Iterative Tarjan. The explicit stack holds (vertex, next-successor
   index) frames; lowlink/index arrays double as the visited marks. *)
let scc g =
  let nv = Digraph.n g in
  let index = Array.make nv (-1) in
  let lowlink = Array.make nv 0 in
  let on_stack = Array.make nv false in
  let comp = Array.make nv (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  let sizes = ref [] in
  (* succ arrays materialized once per vertex for indexed resumption *)
  let succs = Array.init nv (fun v -> Array.of_list (Digraph.succ_list g v)) in
  let visit root =
    if index.(root) < 0 then begin
      let frames = ref [ (root, ref 0) ] in
      index.(root) <- !next_index;
      lowlink.(root) <- !next_index;
      incr next_index;
      stack := root :: !stack;
      on_stack.(root) <- true;
      while !frames <> [] do
        match !frames with
        | [] -> ()
        | (v, i) :: rest ->
            let sv = succs.(v) in
            if !i < Array.length sv then begin
              let w = sv.(!i) in
              incr i;
              if index.(w) < 0 then begin
                index.(w) <- !next_index;
                lowlink.(w) <- !next_index;
                incr next_index;
                stack := w :: !stack;
                on_stack.(w) <- true;
                frames := (w, ref 0) :: !frames
              end
              else if on_stack.(w) then
                lowlink.(v) <- min lowlink.(v) index.(w)
            end
            else begin
              (* v is done: close its SCC if it is a root *)
              if lowlink.(v) = index.(v) then begin
                let size = ref 0 in
                let continue = ref true in
                while !continue do
                  match !stack with
                  | [] -> continue := false
                  | w :: tl ->
                      stack := tl;
                      on_stack.(w) <- false;
                      comp.(w) <- !next_comp;
                      incr size;
                      if w = v then continue := false
                done;
                sizes := !size :: !sizes;
                incr next_comp
              end;
              frames := rest;
              (match rest with
               | (p, _) :: _ -> lowlink.(p) <- min lowlink.(p) lowlink.(v)
               | [] -> ())
            end
      done
    end
  in
  for v = 0 to nv - 1 do
    visit v
  done;
  let sizes = Array.of_list (List.rev !sizes) in
  { count = !next_comp; component = comp; sizes }

let wcc g =
  let nv = Digraph.n g in
  let uf = Union_find.create nv in
  Digraph.iter_edges g (fun u v -> Union_find.union uf u v);
  let comp = Array.make nv (-1) in
  let id_of_rep = Hashtbl.create 64 in
  let next = ref 0 in
  for v = 0 to nv - 1 do
    let r = Union_find.find uf v in
    let id =
      match Hashtbl.find_opt id_of_rep r with
      | Some id -> id
      | None ->
          let id = !next in
          incr next;
          Hashtbl.add id_of_rep r id;
          id
    in
    comp.(v) <- id
  done;
  let sizes = Array.make !next 0 in
  Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) comp;
  { count = !next; component = comp; sizes }

let largest_size p = Array.fold_left max 0 p.sizes

let condensation g p =
  let dag = Digraph.create p.count in
  let seen = Hashtbl.create 256 in
  Digraph.iter_edges g (fun u v ->
      let cu = p.component.(u) and cv = p.component.(v) in
      if cu <> cv && not (Hashtbl.mem seen (cu, cv)) then begin
        Hashtbl.add seen (cu, cv) ();
        Digraph.add_edge dag cu cv
      end);
  dag

let topological_order g =
  let nv = Digraph.n g in
  let indeg = Array.init nv (Digraph.in_degree g) in
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indeg;
  let order = ref [] in
  let visited = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr visited;
    order := v :: !order;
    Digraph.iter_succ g v (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
  done;
  if !visited = nv then Some (List.rev !order) else None
