type degree_summary = {
  avg_in : float;
  avg_out : float;
  max_in : int;
  max_out : int;
}

let degree_summary g =
  let nv = Digraph.n g in
  if nv = 0 then { avg_in = 0.; avg_out = 0.; max_in = 0; max_out = 0 }
  else begin
    let sum_in = ref 0 and sum_out = ref 0 in
    let max_in = ref 0 and max_out = ref 0 in
    for v = 0 to nv - 1 do
      let di = Digraph.in_degree g v and d_out = Digraph.out_degree g v in
      sum_in := !sum_in + di;
      sum_out := !sum_out + d_out;
      if di > !max_in then max_in := di;
      if d_out > !max_out then max_out := d_out
    done;
    let f = float_of_int in
    { avg_in = f !sum_in /. f nv;
      avg_out = f !sum_out /. f nv;
      max_in = !max_in;
      max_out = !max_out }
  end

(* Local clustering of v: 2 * |edges among neighbours| / (d * (d-1)) on
   the undirected simple projection. Neighbour sets are materialized as
   hash sets; the quadratic neighbour scan is bounded by the degree. *)
let clustering_coefficient g =
  let nv = Digraph.n g in
  if nv = 0 then 0.
  else begin
    let neigh = Array.init nv (fun v -> Digraph.undirected_neighbors g v) in
    let neigh_set =
      Array.map
        (fun l ->
          let h = Hashtbl.create (List.length l) in
          List.iter (fun w -> Hashtbl.replace h w ()) l;
          h)
        neigh
    in
    let total = ref 0. in
    for v = 0 to nv - 1 do
      let ns = neigh.(v) in
      let d = List.length ns in
      if d >= 2 then begin
        let links = ref 0 in
        let rec pairs = function
          | [] -> ()
          | a :: rest ->
              List.iter (fun b -> if Hashtbl.mem neigh_set.(a) b then incr links) rest;
              pairs rest
        in
        pairs ns;
        total := !total +. (2. *. float_of_int !links /. float_of_int (d * (d - 1)))
      end
    done;
    !total /. float_of_int nv
  end

let degree_histogram g kind =
  let nv = Digraph.n g in
  let deg v =
    match kind with
    | `In -> Digraph.in_degree g v
    | `Out -> Digraph.out_degree g v
    | `Total -> Digraph.in_degree g v + Digraph.out_degree g v
  in
  let h = Hashtbl.create 64 in
  for v = 0 to nv - 1 do
    let d = deg v in
    Hashtbl.replace h d (1 + Option.value ~default:0 (Hashtbl.find_opt h d))
  done;
  List.sort
    (fun (a, _) (b, _) -> Int.compare a b)
    (Hashtbl.fold (fun d c acc -> (d, c) :: acc) h [])

let power_law_alpha ?(k_min = 1) hist =
  let obs =
    List.concat_map
      (fun (d, c) -> if d >= k_min then [ (float_of_int d, c) ] else [])
      hist
  in
  let n = List.fold_left (fun acc (_, c) -> acc + c) 0 obs in
  if n < 2 then None
  else begin
    let xm = float_of_int k_min -. 0.5 in
    let log_sum =
      List.fold_left (fun acc (d, c) -> acc +. (float_of_int c *. log (d /. xm))) 0. obs
    in
    if log_sum <= 0. then None else Some (1. +. (float_of_int n /. log_sum))
  end

let gini xs =
  let n = Array.length xs in
  if n = 0 then 0.
  else begin
    let sorted = Array.copy xs in
    Array.sort Float.compare sorted;
    let total = Array.fold_left ( +. ) 0. sorted in
    if total <= 0. then 0.
    else begin
      let weighted = ref 0. in
      Array.iteri (fun i x -> weighted := !weighted +. (float_of_int (i + 1) *. x)) sorted;
      let nf = float_of_int n in
      ((2. *. !weighted) /. (nf *. total)) -. ((nf +. 1.) /. nf)
    end
  end
