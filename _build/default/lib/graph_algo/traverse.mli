(** Reachability and shortest-path primitives used by the intensional
    baselines (integrated ownership walks the whole reachable set). *)

val bfs : Digraph.t -> int -> int array
(** [bfs g src] is the array of hop distances from [src]; unreachable
    vertices carry [-1]. *)

val reachable : Digraph.t -> int -> bool array

val reachable_set : Digraph.t -> int list -> bool array
(** Union of forward reachability from several sources. *)

val dfs_postorder : Digraph.t -> int list
(** Vertices in DFS finishing order over the whole graph. *)
