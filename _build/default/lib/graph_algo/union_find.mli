(** Disjoint-set forest with union by rank and path compression. *)

type t

val create : int -> t
val find : t -> int -> int
val union : t -> int -> int -> unit

val same : t -> int -> int -> bool
val count : t -> int
(** Number of disjoint sets currently represented. *)

val component_sizes : t -> (int * int) list
(** [(representative, size)] for every set, unordered. *)
