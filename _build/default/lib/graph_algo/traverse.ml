let bfs g src =
  let nv = Digraph.n g in
  let dist = Array.make nv (-1) in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Digraph.iter_succ g v (fun w ->
        if dist.(w) < 0 then begin
          dist.(w) <- dist.(v) + 1;
          Queue.add w q
        end)
  done;
  dist

let reachable_set g sources =
  let nv = Digraph.n g in
  let seen = Array.make nv false in
  let q = Queue.create () in
  List.iter
    (fun s ->
      if not seen.(s) then begin
        seen.(s) <- true;
        Queue.add s q
      end)
    sources;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Digraph.iter_succ g v (fun w ->
        if not seen.(w) then begin
          seen.(w) <- true;
          Queue.add w q
        end)
  done;
  seen

let reachable g src = reachable_set g [ src ]

let dfs_postorder g =
  let nv = Digraph.n g in
  let seen = Array.make nv false in
  let order = ref [] in
  let succs = Array.init nv (fun v -> Array.of_list (Digraph.succ_list g v)) in
  for root = 0 to nv - 1 do
    if not seen.(root) then begin
      seen.(root) <- true;
      let frames = ref [ (root, ref 0) ] in
      while !frames <> [] do
        match !frames with
        | [] -> ()
        | (v, i) :: rest ->
            let sv = succs.(v) in
            if !i < Array.length sv then begin
              let w = sv.(!i) in
              incr i;
              if not seen.(w) then begin
                seen.(w) <- true;
                frames := (w, ref 0) :: !frames
              end
            end
            else begin
              order := v :: !order;
              frames := rest
            end
      done
    end
  done;
  List.rev !order
