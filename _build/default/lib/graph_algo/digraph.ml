(* Adjacency lists as growable int arrays, one pair (succ, pred) per
   vertex. Growable arrays avoid the boxing of int list cells on graphs
   with millions of edges. *)

type vec = { mutable data : int array; mutable len : int }

let vec_create () = { data = [||]; len = 0 }

let vec_push v x =
  if v.len = Array.length v.data then begin
    let cap = max 4 (2 * Array.length v.data) in
    let data = Array.make cap 0 in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let vec_iter v f =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

type t = { succ : vec array; pred : vec array; mutable edges : int }

let create ?m_hint:_ n =
  { succ = Array.init n (fun _ -> vec_create ());
    pred = Array.init n (fun _ -> vec_create ());
    edges = 0 }

let n g = Array.length g.succ
let m g = g.edges

let check g v =
  if v < 0 || v >= n g then invalid_arg "Digraph: vertex out of range"

let add_edge g u v =
  check g u;
  check g v;
  vec_push g.succ.(u) v;
  vec_push g.pred.(v) u;
  g.edges <- g.edges + 1

let of_edges nv edges =
  let g = create nv in
  List.iter (fun (u, v) -> add_edge g u v) edges;
  g

let out_degree g v = check g v; g.succ.(v).len
let in_degree g v = check g v; g.pred.(v).len

let iter_succ g v f = check g v; vec_iter g.succ.(v) f
let iter_pred g v f = check g v; vec_iter g.pred.(v) f

let fold_succ g v f init =
  let acc = ref init in
  iter_succ g v (fun w -> acc := f !acc w);
  !acc

let succ_list g v = List.rev (fold_succ g v (fun acc w -> w :: acc) [])

let pred_list g v =
  let acc = ref [] in
  iter_pred g v (fun w -> acc := w :: !acc);
  List.rev !acc

let iter_edges g f =
  for u = 0 to n g - 1 do
    vec_iter g.succ.(u) (fun v -> f u v)
  done

let transpose g =
  let t = create (n g) in
  iter_edges g (fun u v -> add_edge t v u);
  t

let undirected_neighbors g v =
  check g v;
  let module IS = Set.Make (Int) in
  let s = ref IS.empty in
  iter_succ g v (fun w -> if w <> v then s := IS.add w !s);
  iter_pred g v (fun w -> if w <> v then s := IS.add w !s);
  IS.elements !s
