(** Compact mutable directed multigraph over integer vertices [0..n-1].

    This is the algorithmic substrate for the topology statistics of
    Sec. 2.1 and for the native intensional-component baselines; the
    property-graph store projects onto it for analytics. *)

type t

val create : ?m_hint:int -> int -> t
(** [create n] is an empty digraph over vertices [0..n-1]. *)

val of_edges : int -> (int * int) list -> t

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of edges (parallel edges counted). *)

val add_edge : t -> int -> int -> unit
(** Appends an edge; O(1) amortized. Raises [Invalid_argument] when an
    endpoint is out of range. *)

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val iter_succ : t -> int -> (int -> unit) -> unit
val iter_pred : t -> int -> (int -> unit) -> unit
val fold_succ : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

val succ_list : t -> int -> int list
val pred_list : t -> int -> int list

val iter_edges : t -> (int -> int -> unit) -> unit

val transpose : t -> t

val undirected_neighbors : t -> int -> int list
(** Successors and predecessors merged, self-loops and duplicates
    removed; used by clustering-coefficient and WCC computations. *)
