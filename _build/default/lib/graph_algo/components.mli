(** Strongly and weakly connected components.

    The paper characterizes the Bank of Italy shareholding graph by its
    SCC/WCC structure (Sec. 2.1); these are the algorithms behind the
    EXP-1 statistics. *)

type partition = {
  count : int;             (** number of components *)
  component : int array;   (** vertex -> component id, ids in [0..count-1] *)
  sizes : int array;       (** component id -> size *)
}

val scc : Digraph.t -> partition
(** Tarjan's algorithm, iterative (no stack overflow on long chains).
    Component ids are in reverse topological order of the condensation. *)

val wcc : Digraph.t -> partition
(** Weakly connected components via union-find over undirected edges. *)

val largest_size : partition -> int
(** 0 for the empty graph. *)

val condensation : Digraph.t -> partition -> Digraph.t
(** The DAG of SCCs: one vertex per component, one edge per cross-component
    edge of the original graph (deduplicated). *)

val topological_order : Digraph.t -> int list option
(** [None] when the graph has a cycle; otherwise vertices in topological
    order (sources first). *)
