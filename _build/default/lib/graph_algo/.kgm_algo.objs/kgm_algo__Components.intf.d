lib/graph_algo/components.mli: Digraph
