lib/graph_algo/stats.mli: Digraph
