lib/graph_algo/digraph.mli:
