lib/graph_algo/union_find.mli:
