lib/graph_algo/digraph.ml: Array Int List Set
