lib/graph_algo/traverse.ml: Array Digraph List Queue
