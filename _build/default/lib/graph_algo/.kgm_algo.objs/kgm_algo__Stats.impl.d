lib/graph_algo/stats.ml: Array Digraph Float Hashtbl Int List Option
