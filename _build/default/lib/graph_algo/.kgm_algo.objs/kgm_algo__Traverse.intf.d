lib/graph_algo/traverse.mli: Digraph
