lib/graph_algo/union_find.ml: Array Hashtbl Option
