lib/graph_algo/components.ml: Array Digraph Hashtbl List Queue Union_find
