(** Topology statistics of Sec. 2.1: degree moments, clustering
    coefficient, degree distribution and power-law fit. *)

type degree_summary = {
  avg_in : float;
  avg_out : float;
  max_in : int;
  max_out : int;
}

val degree_summary : Digraph.t -> degree_summary

val clustering_coefficient : Digraph.t -> float
(** Average local clustering coefficient of the undirected simple
    projection; vertices with fewer than two neighbours contribute 0,
    as in the usual network-science convention. *)

val degree_histogram : Digraph.t -> [ `In | `Out | `Total ] -> (int * int) list
(** [(degree, #vertices)] pairs sorted by degree, zero-degree included. *)

val power_law_alpha : ?k_min:int -> (int * int) list -> float option
(** Clauset–Shalizi–Newman MLE exponent fitted on a degree histogram,
    restricted to degrees >= [k_min] (default 1). [None] when fewer than
    two observations qualify. *)

val gini : float array -> float
(** Gini concentration index, used to quantify ownership-hub dominance. *)
