(** Abstract syntax of MetaLog (paper, Sec. 4).

    A MetaLog rule is φ(x,y) → ∃z ψ(x,z) where φ is a conjunction of PG
    node atoms, path patterns, conditions and expressions, and ψ is a
    conjunction of PG node atoms and (simple) path patterns.

    Concrete syntax implemented by {!Mparser}:
    {v
    (x: Business)-[: CONTROLS]->(z: Business)
                 -[: OWNS; percentage: W]->(y: Business),
      V = sum(W, <z>), V > 0.5
      => (x)-[c: CONTROLS]->(y).
    v}
    Path patterns use a regular-expression island between [-/ ... /->]:
    {v
    (x: SM_Node)-/ ([:SM_CHILD]~ [:SM_PARENT])* /->(y: SM_Node)
      => (x)-[w: DESCFROM]->(y).
    v}
    where [~] is the inverse operator ρ⁻, juxtaposition is concatenation
    (the paper's ·), [|] alternation and [*] the Kleene closure
    (translated to the β-rules of Sec. 4, i.e. one-or-more applications,
    exactly as in the paper's resolution of path patterns). In MetaLog
    every bare identifier in value position is a variable; constants are
    numeric/string/boolean literals. *)

open Kgm_common

(** [(x: L; a1: t1, ...)] — [binder] is the atom identifier, [label]
    the type, [attrs] the named terms K. An omitted binder is an
    anonymous binding; [spread] carries a packed-attribute variable
    ([*p], Example 6.2). *)
type pg_atom = {
  binder : string option;
  label : string option;
  attrs : (string * attr_value) list;
  spread : string option;
}

and attr_value =
  | AVar of string
  | AConst of Value.t

(** Regular path expressions over the alphabet of PG edge atoms. *)
type path =
  | PEdge of pg_atom              (** [ [e: R; K] ] *)
  | PInv of path                  (** ρ⁻ *)
  | PSeq of path list             (** concatenation · *)
  | PAlt of path list             (** | *)
  | PStar of path                 (** Kleene closure (β-rules, ≥ 1) *)

(** One navigation chain: a node atom followed by (path, node atom)
    steps. [(x:A)-[e:R]->(y:B)-[f:S]->(z:C)] has two steps. *)
type chain = {
  start : pg_atom;
  steps : (path * pg_atom) list;
}

type expr = Kgm_vadalog.Expr.t

type body_item =
  | BChain of chain
  | BNeg of chain                 (** [not (...)], stratified negation over
                                      a pattern: the desiderata's "mild form
                                      of negation" *)
  | BCond of expr
  | BAssign of string * expr      (** includes Skolem functors [#sk(...)] *)
  | BAgg of Kgm_vadalog.Rule.aggregate

type rule = {
  body : body_item list;
  head : chain list;              (** simple paths only (single edges) *)
}

type program = {
  rules : rule list;
  annotations : Kgm_vadalog.Rule.annotation list;
}

let anon_atom = { binder = None; label = None; attrs = []; spread = None }

(* ------------------------------------------------------------------ *)
(* Variable accounting                                                  *)

let atom_vars a =
  Option.to_list a.binder
  @ List.filter_map (function _, AVar v -> Some v | _, AConst _ -> None) a.attrs
  @ Option.to_list a.spread

let rec path_vars = function
  | PEdge a -> atom_vars a
  | PInv p | PStar p -> path_vars p
  | PSeq ps | PAlt ps -> List.concat_map path_vars ps

let chain_vars c =
  atom_vars c.start
  @ List.concat_map (fun (p, a) -> path_vars p @ atom_vars a) c.steps

let body_item_vars = function
  | BChain c | BNeg c -> chain_vars c
  | BCond e -> Kgm_vadalog.Expr.vars e
  | BAssign (x, e) -> x :: Kgm_vadalog.Expr.vars e
  | BAgg g ->
      (g.Kgm_vadalog.Rule.result :: g.Kgm_vadalog.Rule.contributors)
      @ Kgm_vadalog.Expr.vars g.Kgm_vadalog.Rule.weight

let body_vars body =
  List.sort_uniq String.compare (List.concat_map body_item_vars body)

let head_vars head =
  List.sort_uniq String.compare (List.concat_map chain_vars head)

(** Labels used in body chains (node and edge labels), for the
    MetaLog-level recursion check. *)
let rec path_edge_labels = function
  | PEdge a -> Option.to_list a.label
  | PInv p | PStar p -> path_edge_labels p
  | PSeq ps | PAlt ps -> List.concat_map path_edge_labels ps

let rec path_has_star = function
  | PEdge _ -> false
  | PInv p -> path_has_star p
  | PStar _ -> true
  | PSeq ps | PAlt ps -> List.exists path_has_star ps

let chain_labels c =
  Option.to_list c.start.label
  @ List.concat_map
      (fun (p, a) -> path_edge_labels p @ Option.to_list a.label)
      c.steps

let rule_body_labels r =
  List.concat_map
    (function BChain c | BNeg c -> chain_labels c | _ -> [])
    r.body

let rule_head_labels r = List.concat_map chain_labels r.head

(** Labels keyed by the constant schemaOID selector when the atom has
    one — the SSST mapping rules of Sec. 5 read and write the same
    super-construct labels but in different schemas, which must not be
    mistaken for recursion by the star-restriction check. *)
let atom_schema_key (a : pg_atom) =
  match List.assoc_opt "schemaOID" a.attrs with
  | Some (AConst (Value.Int i)) -> Some i
  | _ -> None

let rec path_edge_labels_keyed = function
  | PEdge a ->
      (match a.label with
       | Some l -> [ (l, atom_schema_key a) ]
       | None -> [])
  | PInv p | PStar p -> path_edge_labels_keyed p
  | PSeq ps | PAlt ps -> List.concat_map path_edge_labels_keyed ps

let chain_labels_keyed c =
  let node (a : pg_atom) =
    match a.label with Some l -> [ (l, atom_schema_key a) ] | None -> []
  in
  node c.start
  @ List.concat_map
      (fun (p, a) -> path_edge_labels_keyed p @ node a)
      c.steps

let rule_body_labels_keyed r =
  List.concat_map
    (function BChain c | BNeg c -> chain_labels_keyed c | _ -> [])
    r.body

let rule_head_labels_keyed r = List.concat_map chain_labels_keyed r.head

let rule_has_star r =
  List.exists
    (function
      | BChain c | BNeg c -> List.exists (fun (p, _) -> path_has_star p) c.steps
      | _ -> false)
    r.body

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                      *)

let pp_attr_value ppf = function
  | AVar v -> Format.pp_print_string ppf v
  | AConst c -> Value.pp ppf c

let pp_atom_guts ppf a =
  (match a.binder with Some b -> Format.pp_print_string ppf b | None -> ());
  (match a.label with Some l -> Format.fprintf ppf ": %s" l | None -> ());
  if a.attrs <> [] || a.spread <> None then begin
    Format.pp_print_string ppf "; ";
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
      (fun ppf (k, v) -> Format.fprintf ppf "%s: %a" k pp_attr_value v)
      ppf a.attrs;
    match a.spread with
    | Some s ->
        if a.attrs <> [] then Format.pp_print_string ppf ", ";
        Format.fprintf ppf "*%s" s
    | None -> ()
  end

let pp_node ppf a = Format.fprintf ppf "(%a)" pp_atom_guts a
let pp_edge ppf a = Format.fprintf ppf "[%a]" pp_atom_guts a

let rec pp_path ppf = function
  | PEdge a -> pp_edge ppf a
  | PInv p -> Format.fprintf ppf "%a~" pp_path p
  | PSeq ps ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " ") pp_path)
        ps
  | PAlt ps ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " | ") pp_path)
        ps
  | PStar p -> Format.fprintf ppf "%a*" pp_path p

let pp_chain ppf c =
  pp_node ppf c.start;
  List.iter
    (fun (p, a) ->
      (match p with
       | PEdge e -> Format.fprintf ppf "-%a->" pp_edge e
       | PInv (PEdge e) -> Format.fprintf ppf "<-%a-" pp_edge e
       | p -> Format.fprintf ppf "-/ %a /->" pp_path p);
      pp_node ppf a)
    c.steps

let pp_body_item ppf = function
  | BChain c -> pp_chain ppf c
  | BNeg c -> Format.fprintf ppf "not (%a)" pp_chain c
  | BCond e -> Kgm_vadalog.Expr.pp ppf e
  | BAssign (x, e) -> Format.fprintf ppf "%s = %a" x Kgm_vadalog.Expr.pp e
  | BAgg g -> Kgm_vadalog.Rule.pp_literal ppf (Kgm_vadalog.Rule.Agg g)

let pp_rule ppf r =
  Format.fprintf ppf "@[<hov 2>%a@ => %a.@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp_body_item)
    r.body
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp_chain)
    r.head

let pp_program ppf p =
  List.iter (fun r -> Format.fprintf ppf "%a@." pp_rule r) p.rules
