(** Parser for the MetaLog concrete syntax (see {!Ast} for the grammar
    summary). Tokens come from the Vadalog lexer; the difference from
    Vadalog expression parsing is the variable convention: in MetaLog
    every bare identifier in value position is a variable. *)

open Kgm_common
module L = Kgm_vadalog.Lexer
module E = Kgm_vadalog.Expr
module R = Kgm_vadalog.Rule

type state = {
  mutable toks : L.t list;
  mutable fresh : int;
}

let peek st = match st.toks with t :: _ -> t.L.tok | [] -> L.EOF
let peek2 st = match st.toks with _ :: t :: _ -> t.L.tok | _ -> L.EOF

let line st = match st.toks with t :: _ -> t.L.line | [] -> 0

let next st =
  match st.toks with
  | t :: rest ->
      st.toks <- rest;
      t.L.tok
  | [] -> L.EOF

let expect st tok =
  let found = next st in
  if found <> tok then
    Kgm_error.parse_error "metalog line %d: expected %s, found %s" (line st)
      (L.token_name tok) (L.token_name found)

let accept st tok =
  if peek st = tok then begin
    ignore (next st);
    true
  end
  else false

let ident st =
  match next st with
  | L.IDENT s -> s
  | tok ->
      Kgm_error.parse_error "metalog line %d: expected identifier, found %s"
        (line st) (L.token_name tok)

(* ------------------------------------------------------------------ *)
(* Expressions: bare identifiers are variables                          *)

let agg_op_of_string = Kgm_vadalog.Parser.agg_op_of_string

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if accept st (L.IDENT "or") then E.Or (lhs, parse_or st) else lhs

and parse_and st =
  let lhs = parse_not st in
  if accept st (L.IDENT "and") then E.And (lhs, parse_and st) else lhs

and parse_not st =
  if accept st (L.IDENT "not") then E.Not (parse_not st) else parse_cmp st

and parse_cmp st =
  let lhs = parse_additive st in
  let cmp c =
    ignore (next st);
    E.Cmp (c, lhs, parse_additive st)
  in
  match peek st with
  | L.EQEQ -> cmp E.Eq
  | L.EQ -> cmp E.Eq    (* conditions may use a single '=' as in the paper *)
  | L.NEQ -> cmp E.Neq
  | L.LT -> cmp E.Lt
  | L.LE -> cmp E.Le
  | L.GT -> cmp E.Gt
  | L.GE -> cmp E.Ge
  | _ -> lhs

and parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | L.PLUS ->
        ignore (next st);
        lhs := E.Binop (E.Add, !lhs, parse_multiplicative st)
    | L.MINUS ->
        ignore (next st);
        lhs := E.Binop (E.Sub, !lhs, parse_multiplicative st)
    | L.CONCAT ->
        ignore (next st);
        lhs := E.Binop (E.Concat, !lhs, parse_multiplicative st)
    | _ -> continue := false
  done;
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | L.STAR ->
        ignore (next st);
        lhs := E.Binop (E.Mul, !lhs, parse_unary st)
    | L.SLASH ->
        ignore (next st);
        lhs := E.Binop (E.Div, !lhs, parse_unary st)
    | _ -> continue := false
  done;
  !lhs

and parse_unary st =
  if accept st L.MINUS then E.Binop (E.Sub, E.Const (Value.Int 0), parse_primary st)
  else parse_primary st

and parse_fun_args st =
  expect st L.LPAREN;
  if accept st L.RPAREN then []
  else begin
    let rec loop acc =
      let e = parse_expr st in
      if accept st L.COMMA then loop (e :: acc)
      else begin
        expect st L.RPAREN;
        List.rev (e :: acc)
      end
    in
    loop []
  end

and parse_primary st =
  match next st with
  | L.INT i -> E.Const (Value.Int i)
  | L.FLOAT f -> E.Const (Value.Float f)
  | L.STRING s -> E.Const (Value.String s)
  | L.LPAREN ->
      let e = parse_expr st in
      expect st L.RPAREN;
      e
  | L.HASH ->
      let name = ident st in
      E.Skolem (name, parse_fun_args st)
  | L.IDENT "true" -> E.Const (Value.Bool true)
  | L.IDENT "false" -> E.Const (Value.Bool false)
  | L.IDENT s when peek st = L.LPAREN -> E.Fun (s, parse_fun_args st)
  | L.IDENT s -> E.Var s
  | tok ->
      Kgm_error.parse_error "metalog line %d: unexpected %s in expression"
        (line st) (L.token_name tok)

(* ------------------------------------------------------------------ *)
(* PG atoms                                                             *)

let parse_attr_value st =
  match next st with
  | L.INT i -> Ast.AConst (Value.Int i)
  | L.FLOAT f -> Ast.AConst (Value.Float f)
  | L.STRING s -> Ast.AConst (Value.String s)
  | L.MINUS ->
      (match next st with
       | L.INT i -> Ast.AConst (Value.Int (-i))
       | L.FLOAT f -> Ast.AConst (Value.Float (-.f))
       | tok -> Kgm_error.parse_error "expected number, found %s" (L.token_name tok))
  | L.IDENT "true" -> Ast.AConst (Value.Bool true)
  | L.IDENT "false" -> Ast.AConst (Value.Bool false)
  | L.IDENT s -> Ast.AVar s
  | tok ->
      Kgm_error.parse_error "metalog line %d: bad attribute value %s" (line st)
        (L.token_name tok)

(* guts of a node/edge atom, between the brackets *)
let parse_atom_guts st closing =
  let binder =
    match peek st, peek2 st with
    | L.IDENT s, (L.COLON | L.SEMI) when s <> "" ->
        ignore (next st);
        Some s
    | L.IDENT s, tok when tok = closing ->
        ignore (next st);
        Some s
    | _ -> None
  in
  let label =
    if accept st L.COLON then Some (ident st) else None
  in
  let attrs = ref [] and spread = ref None in
  if accept st L.SEMI then begin
    let rec loop () =
      (if accept st L.STAR then spread := Some (ident st)
       else begin
         let k = ident st in
         expect st L.COLON;
         attrs := (k, parse_attr_value st) :: !attrs
       end);
      if accept st L.COMMA then loop ()
    in
    loop ()
  end;
  expect st closing;
  { Ast.binder; label; attrs = List.rev !attrs; spread = !spread }

let parse_node st =
  expect st L.LPAREN;
  parse_atom_guts st L.RPAREN

let parse_edge st =
  expect st L.LBRACKET;
  parse_atom_guts st L.RBRACKET

(* ------------------------------------------------------------------ *)
(* Path regular expressions (inside -/ ... /->)                         *)

let rec parse_path st = parse_alt st

and parse_alt st =
  let first = parse_seq st in
  let rec loop acc =
    if accept st L.PIPE then loop (parse_seq st :: acc) else List.rev acc
  in
  match loop [ first ] with
  | [ p ] -> p
  | ps -> Ast.PAlt ps

and parse_seq st =
  let rec loop acc =
    match peek st with
    | L.LBRACKET | L.LPAREN -> loop (parse_postfix st :: acc)
    | _ -> List.rev acc
  in
  match loop [] with
  | [] -> Kgm_error.parse_error "metalog line %d: empty path" (line st)
  | [ p ] -> p
  | ps -> Ast.PSeq ps

and parse_postfix st =
  let base =
    match peek st with
    | L.LBRACKET -> Ast.PEdge (parse_edge st)
    | L.LPAREN ->
        ignore (next st);
        let p = parse_path st in
        expect st L.RPAREN;
        p
    | tok ->
        Kgm_error.parse_error "metalog line %d: bad path element %s" (line st)
          (L.token_name tok)
  in
  let rec suffixes p =
    match peek st with
    | L.TILDE ->
        ignore (next st);
        suffixes (Ast.PInv p)
    | L.STAR ->
        ignore (next st);
        suffixes (Ast.PStar p)
    | L.PLUS ->
        ignore (next st);
        suffixes (Ast.PStar p)  (* + and * coincide under the paper's β-rules *)
    | _ -> p
  in
  suffixes base

(* ------------------------------------------------------------------ *)
(* Chains                                                               *)

(* after a node atom: -[e]->  |  <-[e]-  |  -/ path /->  *)
let parse_step st =
  match peek st, peek2 st with
  | L.MINUS, L.LBRACKET ->
      ignore (next st);
      let e = parse_edge st in
      expect st L.MINUS;
      expect st L.GT;
      let n = parse_node st in
      Some (Ast.PEdge e, n)
  | L.MINUS, L.SLASH ->
      ignore (next st);
      ignore (next st);
      let p = parse_path st in
      expect st L.SLASH;
      expect st L.MINUS;
      expect st L.GT;
      let n = parse_node st in
      Some (p, n)
  | L.LT, L.MINUS ->
      ignore (next st);
      ignore (next st);
      let e = parse_edge st in
      expect st L.MINUS;
      let n = parse_node st in
      Some (Ast.PInv (Ast.PEdge e), n)
  | _ -> None

let parse_chain st =
  let start = parse_node st in
  let rec steps acc =
    match parse_step st with
    | Some s -> steps (s :: acc)
    | None -> List.rev acc
  in
  { Ast.start; steps = steps [] }

(* ------------------------------------------------------------------ *)
(* Items, rules, programs                                               *)

let parse_assignment_rhs st result =
  match peek st, peek2 st with
  | L.IDENT name, L.LPAREN when agg_op_of_string name <> None ->
      let op, forced_mode = Option.get (agg_op_of_string name) in
      ignore (next st);
      expect st L.LPAREN;
      let weight = parse_expr st in
      let contributors =
        if accept st L.COMMA then begin
          expect st L.LT;
          let rec loop acc =
            let v = ident st in
            if accept st L.COMMA then loop (v :: acc) else List.rev (v :: acc)
          in
          let vs = loop [] in
          expect st L.GT;
          vs
        end
        else []
      in
      expect st L.RPAREN;
      let mode =
        match forced_mode with
        | Some m -> m
        | None -> if contributors = [] then R.Stratified else R.Monotonic
      in
      Ast.BAgg { R.result; op; weight; contributors; mode }
  | _ -> Ast.BAssign (result, parse_expr st)

let parse_body_item st =
  match peek st, peek2 st with
  | L.IDENT "not", L.LPAREN ->
      (* negated pattern: not ( <chain> ) *)
      ignore (next st);
      ignore (next st);
      let c = parse_chain st in
      expect st L.RPAREN;
      Ast.BNeg c
  | L.LPAREN, _ -> Ast.BChain (parse_chain st)
  | L.IDENT s, L.EQ ->
      ignore (next st);
      ignore (next st);
      parse_assignment_rhs st s
  | _ -> Ast.BCond (parse_expr st)

let parse_rule st =
  let rec body acc =
    let item = parse_body_item st in
    if accept st L.COMMA then body (item :: acc) else List.rev (item :: acc)
  in
  let body = body [] in
  expect st L.ARROW;
  let rec head acc =
    let c = parse_chain st in
    if accept st L.COMMA then head (c :: acc) else List.rev (c :: acc)
  in
  let head = head [] in
  expect st L.DOT;
  { Ast.body; head }

let parse_annotation st =
  expect st L.AT;
  let name = ident st in
  expect st L.LPAREN;
  let rec loop acc =
    match next st with
    | L.STRING s | L.IDENT s ->
        if accept st L.COMMA then loop (s :: acc)
        else begin
          expect st L.RPAREN;
          List.rev (s :: acc)
        end
    | tok ->
        Kgm_error.parse_error "annotation: expected string, found %s"
          (L.token_name tok)
  in
  let args = if accept st L.RPAREN then [] else loop [] in
  expect st L.DOT;
  { R.a_name = name; a_args = args }

let parse_program src =
  let st = { toks = L.tokenize src; fresh = 0 } in
  ignore st.fresh;
  let rules = ref [] and annotations = ref [] in
  let rec loop () =
    match peek st with
    | L.EOF -> ()
    | L.AT ->
        annotations := parse_annotation st :: !annotations;
        loop ()
    | _ ->
        rules := parse_rule st :: !rules;
        loop ()
  in
  loop ();
  { Ast.rules = List.rev !rules; annotations = List.rev !annotations }

let parse_rule_string src =
  match (parse_program src).Ast.rules with
  | [ r ] -> r
  | rs -> Kgm_error.parse_error "expected one metalog rule, got %d" (List.length rs)
