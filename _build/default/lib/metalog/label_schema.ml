(** Property layouts per label.

    The paper's PG-to-relational mapping (Sec. 4, step 1) gives every
    L-labeled node a fact L(oid, f1, ..., fn) over the property set of
    L, and every L-labeled edge a fact L(oid, src, dst, f1, ..., fm).
    This module computes and stores that per-label property ordering:
    the union of the properties observed in the input graph and those
    mentioned by the MetaLog program, sorted for determinism. *)

open Kgm_common

module SMap = Map.Make (String)
module SSet = Set.Make (String)

type t = {
  mutable node_props : SSet.t SMap.t;  (** node label -> property names *)
  mutable edge_props : SSet.t SMap.t;  (** edge label -> property names *)
}

let create () = { node_props = SMap.empty; edge_props = SMap.empty }

let add_node_prop t label prop =
  let cur = Option.value ~default:SSet.empty (SMap.find_opt label t.node_props) in
  t.node_props <- SMap.add label (SSet.add prop cur) t.node_props

let add_edge_prop t label prop =
  let cur = Option.value ~default:SSet.empty (SMap.find_opt label t.edge_props) in
  t.edge_props <- SMap.add label (SSet.add prop cur) t.edge_props

let declare_node_label t label =
  if not (SMap.mem label t.node_props) then
    t.node_props <- SMap.add label SSet.empty t.node_props

let declare_edge_label t label =
  if not (SMap.mem label t.edge_props) then
    t.edge_props <- SMap.add label SSet.empty t.edge_props

let node_labels t = List.map fst (SMap.bindings t.node_props)
let edge_labels t = List.map fst (SMap.bindings t.edge_props)

let is_node_label t l = SMap.mem l t.node_props
let is_edge_label t l = SMap.mem l t.edge_props

(** Ordered property list of a node label ([] when unknown). *)
let node_schema t label =
  match SMap.find_opt label t.node_props with
  | Some s -> SSet.elements s
  | None -> []

let edge_schema t label =
  match SMap.find_opt label t.edge_props with
  | Some s -> SSet.elements s
  | None -> []

(** Scan a property graph, recording every label and property key. *)
let observe_graph t g =
  Kgm_graphdb.Pgraph.iter_nodes g (fun id ->
      let labels = Kgm_graphdb.Pgraph.node_labels g id in
      List.iter
        (fun l ->
          declare_node_label t l;
          List.iter
            (fun (k, _) -> add_node_prop t l k)
            (Kgm_graphdb.Pgraph.node_props g id))
        labels);
  Kgm_graphdb.Pgraph.iter_edges g (fun id ->
      let l = Kgm_graphdb.Pgraph.edge_label g id in
      declare_edge_label t l;
      List.iter
        (fun (k, _) -> add_edge_prop t l k)
        (Kgm_graphdb.Pgraph.edge_props g id))

(** Record the labels/properties a MetaLog program mentions. Node vs
    edge position is syntactically unambiguous in MetaLog. *)
let observe_program t (p : Ast.program) =
  let atom_node (a : Ast.pg_atom) =
    match a.Ast.label with
    | Some l ->
        declare_node_label t l;
        List.iter (fun (k, _) -> add_node_prop t l k) a.Ast.attrs
    | None -> ()
  in
  let atom_edge (a : Ast.pg_atom) =
    match a.Ast.label with
    | Some l ->
        declare_edge_label t l;
        List.iter (fun (k, _) -> add_edge_prop t l k) a.Ast.attrs
    | None -> ()
  in
  let rec path = function
    | Ast.PEdge a -> atom_edge a
    | Ast.PInv p | Ast.PStar p -> path p
    | Ast.PSeq ps | Ast.PAlt ps -> List.iter path ps
  in
  let chain (c : Ast.chain) =
    atom_node c.Ast.start;
    List.iter
      (fun (p, n) ->
        path p;
        atom_node n)
      c.Ast.steps
  in
  List.iter
    (fun (r : Ast.rule) ->
      List.iter (function Ast.BChain c -> chain c | _ -> ()) r.Ast.body;
      List.iter chain r.Ast.head)
    p.Ast.rules

let infer ?graph (p : Ast.program) =
  let t = create () in
  (match graph with Some g -> observe_graph t g | None -> ());
  observe_program t p;
  (* a label must not be both a node and an edge label: predicates share
     one namespace in the Vadalog translation (paper, Example 4.4) *)
  List.iter
    (fun l ->
      if is_edge_label t l then
        Kgm_error.validate_error "label %s used for both nodes and edges" l)
    (node_labels t);
  t
