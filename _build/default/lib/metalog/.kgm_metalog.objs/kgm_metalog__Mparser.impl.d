lib/metalog/mparser.ml: Ast Kgm_common Kgm_error Kgm_vadalog List Option Value
