lib/metalog/pg_bridge.mli: Ast Kgm_common Kgm_graphdb Kgm_vadalog Label_schema Value
