lib/metalog/label_schema.ml: Ast Kgm_common Kgm_error Kgm_graphdb List Map Option Set String
