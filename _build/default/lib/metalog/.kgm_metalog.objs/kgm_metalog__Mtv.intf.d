lib/metalog/mtv.mli: Ast Kgm_graphdb Kgm_vadalog Label_schema
