lib/metalog/ast.ml: Format Kgm_common Kgm_vadalog List Option String Value
