lib/metalog/mtv.ml: Ast Kgm_common Kgm_error Kgm_vadalog Label_schema List Printf Set String Value
