lib/metalog/pg_bridge.ml: Array Ast Hashtbl Kgm_common Kgm_graphdb Kgm_vadalog Label_schema List Mtv Oid String Value
