(** The intensional component Σ of the Company KG, as MetaLog programs
    over the Fig. 4 constructs (Sec. 2.1, 3.3, Example 4.1). Programs
    compose: [owns] must run before [control] / [close_links] /
    [family], either in one Σ or in successive materializations. *)

(** OWNS compacts ownership rights through Share nodes (Sec. 3.3). *)
let owns =
  {|
(p: Person)-[h: HOLDS; right: "ownership"]->(s: Share; percentage: W)-[: BELONGS_TO]->(x: Business),
  V = sum(W)
  => (p)-[o: OWNS; percentage: V]->(x).
|}

(** Company control, Example 4.1. *)
let control = Control.metalog_sigma

(** numberOfStakeholders intensional attribute (Sec. 3.3). *)
let stakeholders =
  {|
(p: Person)-[: HOLDS]->(s: Share)-[: BELONGS_TO]->(x: Business),
  N = count(p, <p>)
  => (x: Business; numberOfStakeholders: N).
|}

(** ECB close links via bounded integrated ownership. *)
let close_links = Close_links.metalog_sigma

(** Families and family ownership. *)
let family = Groups.metalog_sigma

(** The full Σ used by the quickstart and the EXP-2 pipeline. *)
let full = String.concat "\n" [ owns; control; stakeholders ]

let all_named =
  [ ("owns", owns);
    ("control", control);
    ("stakeholders", stakeholders);
    ("close_links", close_links);
    ("family", family) ]
