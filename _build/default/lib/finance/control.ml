(** Company control (paper, Example 4.1/4.2 and [32]): x controls y when
    x directly owns > 50% of y, or the companies x (jointly with the
    companies it already controls) own > 50% of y.

    This native fixpoint is the differential baseline for the MetaLog /
    Vadalog encodings (EXP-5) and the workhorse for EXP-2's scaled
    measurements. Worklist algorithm, O(reachable edges) amortized per
    source. *)

module DG = Kgm_algo.Digraph

(** Companies controlled by [x] (strictly: excluding [x] itself unless
    reachable by the >50% rule; the reflexive base case of the paper's
    rule (1) is an encoding device, not reported). *)
let controlled_by (o : Generator.ownership) x =
  let n = DG.n o.Generator.graph in
  let acc = Hashtbl.create 32 in
  let controlled = Hashtbl.create 16 in
  let queue = Queue.create () in
  Queue.add x queue;
  let in_controlled = Hashtbl.create 16 in
  Hashtbl.add in_controlled x ();
  while not (Queue.is_empty queue) do
    let z = Queue.pop queue in
    ignore
      (Generator.fold_owned o z
         (fun () y w ->
           if y >= 0 && y < n then begin
             let cur = Option.value ~default:0. (Hashtbl.find_opt acc y) in
             let nw = cur +. w in
             Hashtbl.replace acc y nw;
             if nw > 0.5 && not (Hashtbl.mem in_controlled y) then begin
               Hashtbl.add in_controlled y ();
               Hashtbl.replace controlled y ();
               Queue.add y queue
             end
           end)
         ())
  done;
  List.sort Int.compare (Hashtbl.fold (fun y () l -> y :: l) controlled [])

(** All control pairs (x, y): per Example 4.1, control is a relation
    between businesses, so x ranges over companies with holdings.
    Quadratic in the worst case; fine at benchmark scales. *)
let all_pairs o =
  let n = DG.n o.Generator.graph in
  let pairs = ref [] in
  for x = o.Generator.n_persons to n - 1 do
    if DG.out_degree o.Generator.graph x > 0 then
      List.iter (fun y -> pairs := (x, y) :: !pairs) (controlled_by o x)
  done;
  List.rev !pairs

(** Control pairs rooted at every shareholder, individuals included —
    the "ultimate controller" variant used by {!Groups}. *)
let all_pairs_any_source o =
  let n = DG.n o.Generator.graph in
  let pairs = ref [] in
  for x = 0 to n - 1 do
    if DG.out_degree o.Generator.graph x > 0 then
      List.iter (fun y -> pairs := (x, y) :: !pairs) (controlled_by o x)
  done;
  List.rev !pairs

(** Control pairs restricted to sources in [sources]. *)
let pairs_from o sources =
  List.concat_map (fun x -> List.map (fun y -> (x, y)) (controlled_by o x)) sources

(** The MetaLog encoding of Example 4.1, phrased against the Company-KG
    constructs (OWNS must have been derived or supplied). *)
let metalog_sigma =
  {|
(x: Business) => (x)-[c: CONTROLS]->(x).
(x: Business)-[: CONTROLS]->(z: Business)-[: OWNS; percentage: W]->(y: Business),
  V = sum(W, <z>), V > 0.5
  => (x)-[c: CONTROLS]->(y).
|}

(** The Vadalog encoding of Example 4.2 over plain relations
    company/1 and own/3. *)
let vadalog_program =
  {|
controls(X, X) :- company(X).
controls(X, Y) :- controls(X, Z), own(Z, Y, W), V = sum(W, <Z>), V > 0.5.
|}

(** Run the Example 4.2 Vadalog program on the ownership network and
    return the non-reflexive control pairs. *)
let via_vadalog ?options (o : Generator.ownership) =
  let module V = Kgm_vadalog in
  let db = V.Database.create () in
  let n = DG.n o.Generator.graph in
  for v = o.Generator.n_persons to n - 1 do
    ignore (V.Database.add db "company" [| Kgm_common.Value.Int v |])
  done;
  for x = 0 to n - 1 do
    ignore
      (Generator.fold_owned o x
         (fun () y w ->
           ignore
             (V.Database.add db "own"
                [| Kgm_common.Value.Int x; Kgm_common.Value.Int y;
                   Kgm_common.Value.Float w |]))
         ())
  done;
  let program = V.Parser.parse_program vadalog_program in
  ignore (V.Engine.run ?options program db);
  List.filter_map
    (fun fact ->
      match fact with
      | [| Kgm_common.Value.Int x; Kgm_common.Value.Int y |] when x <> y ->
          Some (x, y)
      | _ -> None)
    (V.Database.facts db "controls")
  |> List.sort compare
