(** The graph-statistics table of Sec. 2.1: the quantities the paper
    publishes for the Bank of Italy shareholding graph, computed on a
    synthetic network (EXP-1). Paper reference values are embedded so
    the bench can print paper-vs-measured rows. *)

module DG = Kgm_algo.Digraph

type t = {
  nodes : int;
  edges : int;
  scc_count : int;
  avg_scc_size : float;
  largest_scc : int;
  wcc_count : int;
  avg_wcc_size : float;
  largest_wcc : int;
  avg_in_degree : float;   (** over vertices with in-degree > 0 *)
  avg_out_degree : float;  (** over vertices with out-degree > 0 *)
  max_in_degree : int;
  max_out_degree : int;
  clustering : float;
  power_law_alpha : float option;
}

(* The paper's averages (~3.12 in, ~1.78 out) exceed edges/nodes (~1.18),
   so they are averages over the vertices that actually have incident
   edges of the given direction; we compute them the same way. *)
let nonzero_avg g degree =
  let sum = ref 0 and cnt = ref 0 in
  for v = 0 to DG.n g - 1 do
    let d = degree v in
    if d > 0 then begin
      sum := !sum + d;
      incr cnt
    end
  done;
  if !cnt = 0 then 0. else float_of_int !sum /. float_of_int !cnt

let compute g =
  let scc = Kgm_algo.Components.scc g in
  let wcc = Kgm_algo.Components.wcc g in
  let deg = Kgm_algo.Stats.degree_summary g in
  let hist = Kgm_algo.Stats.degree_histogram g `Total in
  { nodes = DG.n g;
    edges = DG.m g;
    scc_count = scc.Kgm_algo.Components.count;
    avg_scc_size =
      (if scc.Kgm_algo.Components.count = 0 then 0.
       else float_of_int (DG.n g) /. float_of_int scc.Kgm_algo.Components.count);
    largest_scc = Kgm_algo.Components.largest_size scc;
    wcc_count = wcc.Kgm_algo.Components.count;
    avg_wcc_size =
      (if wcc.Kgm_algo.Components.count = 0 then 0.
       else float_of_int (DG.n g) /. float_of_int wcc.Kgm_algo.Components.count);
    largest_wcc = Kgm_algo.Components.largest_size wcc;
    avg_in_degree = nonzero_avg g (DG.in_degree g);
    avg_out_degree = nonzero_avg g (DG.out_degree g);
    max_in_degree = deg.Kgm_algo.Stats.max_in;
    max_out_degree = deg.Kgm_algo.Stats.max_out;
    clustering = Kgm_algo.Stats.clustering_coefficient g;
    power_law_alpha = Kgm_algo.Stats.power_law_alpha ~k_min:2 hist }

(** Sec. 2.1 reference values for the production graph (11.97M nodes). *)
type paper_row = {
  metric : string;
  paper : string;
  measured : t -> string;
}

let f2 x = Printf.sprintf "%.2f" x
let f4 x = Printf.sprintf "%.4f" x

let paper_rows : paper_row list =
  [ { metric = "nodes"; paper = "11.97M";
      measured = (fun s -> string_of_int s.nodes) };
    { metric = "edges"; paper = "14.18M";
      measured = (fun s -> string_of_int s.edges) };
    { metric = "edges per node"; paper = "1.18";
      measured = (fun s -> f2 (float_of_int s.edges /. float_of_int s.nodes)) };
    { metric = "#SCC"; paper = "11.96M (avg size ~1)";
      measured =
        (fun s -> Printf.sprintf "%d (avg size %s)" s.scc_count (f2 s.avg_scc_size)) };
    { metric = "largest SCC"; paper = "1.9k";
      measured = (fun s -> string_of_int s.largest_scc) };
    { metric = "#WCC"; paper = "1.3M (avg size 9)";
      measured =
        (fun s -> Printf.sprintf "%d (avg size %s)" s.wcc_count (f2 s.avg_wcc_size)) };
    { metric = "largest WCC"; paper = ">6M (~50% of nodes)";
      measured =
        (fun s ->
          Printf.sprintf "%d (%.0f%% of nodes)" s.largest_wcc
            (100. *. float_of_int s.largest_wcc /. float_of_int s.nodes)) };
    { metric = "avg in-degree"; paper = "3.12";
      measured = (fun s -> f2 s.avg_in_degree) };
    { metric = "avg out-degree"; paper = "1.78";
      measured = (fun s -> f2 s.avg_out_degree) };
    { metric = "max in-degree"; paper = "16.9k";
      measured = (fun s -> string_of_int s.max_in_degree) };
    { metric = "max out-degree"; paper = "5.1k";
      measured = (fun s -> string_of_int s.max_out_degree) };
    { metric = "clustering coefficient"; paper = "0.0086";
      measured = (fun s -> f4 s.clustering) };
    { metric = "degree distribution"; paper = "power law (scale-free)";
      measured =
        (fun s ->
          match s.power_law_alpha with
          | Some a -> Printf.sprintf "power law, alpha=%.2f" a
          | None -> "n/a") } ]

let pp ppf s =
  Format.fprintf ppf "%-24s | %-22s | %s@." "metric" "paper (11.97M nodes)"
    "measured";
  Format.fprintf ppf "%s@." (String.make 78 '-');
  List.iter
    (fun r -> Format.fprintf ppf "%-24s | %-22s | %s@." r.metric r.paper (r.measured s))
    paper_rows
