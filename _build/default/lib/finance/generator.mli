(** Synthetic shareholding graphs calibrated to the topology the paper
    reports for the Bank of Italy company KG (Sec. 2.1): scale-free
    degree distribution with hub shareholders, a giant weakly connected
    component, almost only trivial strongly connected components, low
    clustering. This is the substitute for the proprietary Chambers of
    Commerce register (see DESIGN.md). All generation is deterministic
    in the seed. *)

open Kgm_common

type ownership = {
  graph : Kgm_algo.Digraph.t;  (** edge x -> y: x owns shares of y *)
  weights : float array array; (** weights.(v) aligned with succ list of v *)
  n_persons : int;             (** vertices [0, n_persons) are individuals *)
  n_companies : int;           (** vertices [n_persons, n) are companies *)
}

val ownership_weight : ownership -> int -> int -> float
(** Total share of [y] held by [x] (0. when no edge). *)

val fold_owners : ownership -> int -> ('a -> int -> float -> 'a) -> 'a -> 'a
(** Fold over (owner, weight) pairs of a company. *)

val fold_owned : ownership -> int -> ('a -> int -> float -> 'a) -> 'a -> 'a
(** Fold over (owned company, weight) pairs of a shareholder. *)

val generate :
  ?seed:int -> ?person_share:float -> ?owners_per_company:float ->
  ?hub_bias:float -> ?locality:float -> ?triangle_links:float ->
  ?cross_links:float -> n:int -> unit -> ownership
(** [generate ~n ()] builds an [n]-vertex shareholding network.

    - [person_share] (default 0.55): fraction of vertices that are
      individuals (sources only, like the register's physical persons);
    - [owners_per_company] (default 1.55): mean number of shareholders
      per company (power-law distributed around it);
    - [hub_bias] (default 0.22): probability mass assigned to choosing
      owners by current out-degree (preferential attachment, hubs);
    - [locality] (default 0.58): probability mass assigned to choosing
      owners in a small index window, which keeps most weakly connected
      components small while one giant component still emerges;
    - [triangle_links] (default 0.012): fraction of companies whose
      second owner takes a stake in the first, creating the co-ownership
      triangles behind the clustering coefficient;
    - [cross_links] (default 0.004): fraction of companies given a
      back-edge into an owner, producing the few non-trivial SCCs the
      paper observes.

    Share weights are normalized so each company's incoming shares sum
    to at most 1. *)

val to_company_graph : ?temporal:bool -> ownership -> Kgm_graphdb.Pgraph.t
(** Expand the compact network into a Company-KG property graph
    conforming to {!Company_schema}: PhysicalPerson/Business nodes,
    Share nodes, HOLDS and BELONGS_TO edges (the decoupled ownership
    of Sec. 3.3). Node ids are stable across calls. With [~temporal]
    (default false) HOLDS edges carry validFrom/validTo intervals, the
    time dependence of Sec. 2.1; see {!Temporal}. *)

val vertex_fiscal_code : int -> Value.t
(** The fiscalCode assigned to vertex [i] by {!to_company_graph}. *)
