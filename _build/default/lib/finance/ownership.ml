(** Integrated ownership (paper, Sec. 2.1 and [43]): the total share of
    a company owned by a shareholder directly and indirectly throughout
    the whole graph — io(x, y) = a(x, y) + Σ_z io(x, z) · a(z, y),
    i.e. IO = A (I − A)⁻¹ row by row, computed as a sparse fixpoint with
    outstanding-delta bookkeeping (cross-shareholdings keep row sums
    ≤ 1 with leakage, so deltas decay geometrically; propagation stops
    below [epsilon]). *)

module DG = Kgm_algo.Digraph

type options = {
  epsilon : float;    (** deltas below this stop propagating *)
  max_steps : int;    (** hard cap on worklist pops, per source *)
}

let default_options = { epsilon = 1e-9; max_steps = 2_000_000 }

(** Integrated ownership vector of source [x]: association list
    (company, io) for every company reached with io >= [min_share],
    sorted by company. *)
let from_source ?(options = default_options) ?(min_share = 1e-6)
    (o : Generator.ownership) x =
  let io = Hashtbl.create 64 in
  let outstanding = Hashtbl.create 64 in
  let pending = Hashtbl.create 64 in
  let dirty = Queue.create () in
  let push y delta =
    let cur = Option.value ~default:0. (Hashtbl.find_opt outstanding y) in
    Hashtbl.replace outstanding y (cur +. delta);
    if not (Hashtbl.mem pending y) then begin
      Hashtbl.add pending y ();
      Queue.add y dirty
    end
  in
  ignore (Generator.fold_owned o x (fun () y w -> push y w) ());
  let steps = ref 0 in
  while (not (Queue.is_empty dirty)) && !steps < options.max_steps do
    incr steps;
    let z = Queue.pop dirty in
    Hashtbl.remove pending z;
    let delta = Option.value ~default:0. (Hashtbl.find_opt outstanding z) in
    Hashtbl.remove outstanding z;
    if delta > 0. then begin
      let cur = Option.value ~default:0. (Hashtbl.find_opt io z) in
      Hashtbl.replace io z (cur +. delta);
      (* propagate only meaningful deltas: geometric decay ensures
         termination in cyclic ownership structures *)
      if delta > options.epsilon then
        ignore (Generator.fold_owned o z (fun () y w -> push y (delta *. w)) ())
    end
  done;
  Hashtbl.fold
    (fun y v acc -> if v >= min_share then (y, v) :: acc else acc)
    io []
  |> List.sort compare

(** io(x, y); 0. when y is unreachable from x. *)
let between ?options (o : Generator.ownership) x y =
  match List.assoc_opt y (from_source ?options ~min_share:0. o x) with
  | Some v -> v
  | None -> 0.

(** Every (source, company, io) with io >= [threshold]; sources are the
    vertices with at least one holding. *)
let all_above ?options ~threshold (o : Generator.ownership) =
  let pairs = ref [] in
  for x = 0 to DG.n o.Generator.graph - 1 do
    if DG.out_degree o.Generator.graph x > 0 then
      List.iter
        (fun (y, v) -> if v >= threshold then pairs := (x, y, v) :: !pairs)
        (from_source ?options ~min_share:threshold o x)
  done;
  List.rev !pairs
