(** ECB close links (paper, Sec. 2.1 and reference [42], Guideline (EU)
    2018/876): two entities are closely linked when one owns — directly
    or indirectly — at least 20% of the other, or a third party owns at
    least 20% of both. Indirect ownership is integrated ownership
    ({!Ownership}). *)

val threshold : float
(** 0.2, per the guideline. *)

type link = {
  a : int;
  b : int;
  reason : [ `Owns | `Owned | `Third_party of int ];
}

val compute :
  ?options:Ownership.options -> Generator.ownership -> link list
(** The exact close-link set (the EXP-9 reference): ownership links in
    their direction, third-party links normalized a < b, deduplicated
    and sorted. *)

val count : ?options:Ownership.options -> Generator.ownership -> int

val metalog_sigma : string
(** The bounded-depth (≤ 3) MetaLog encoding over the Company-KG
    constructs: integrated ownership unfolded per depth with stratified
    sums into INTEGRATED_OWNS edges, thresholded into OWNS_20, and the
    two ECB cases into CLOSE_LINK. Sound w.r.t. {!compute}; exact when
    ownership chains do not exceed the bound. Requires OWNS first. *)
