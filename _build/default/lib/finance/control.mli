(** Company control (paper, Example 4.1/4.2 and reference [32]):
    x controls y when x directly owns more than 50% of y, or the
    companies x jointly controls (possibly together with x) own more
    than 50% of y.

    Three interchangeable encodings, cross-checked by EXP-5:
    the native worklist fixpoint here, the Vadalog program of
    Example 4.2 ({!vadalog_program} / {!via_vadalog}), and the MetaLog Σ
    of Example 4.1 ({!metalog_sigma}) run through Algorithm 2. *)

val controlled_by : Generator.ownership -> int -> int list
(** Companies controlled by the given vertex (itself excluded unless it
    is reached by the >50% rule), sorted. O(reachable edges) amortized
    worklist. *)

val all_pairs : Generator.ownership -> (int * int) list
(** All (controller, controlled) pairs with controllers ranging over
    companies, per Example 4.1 ("a business x controls a business y"). *)

val all_pairs_any_source : Generator.ownership -> (int * int) list
(** Control pairs rooted at every shareholder, individuals included —
    the ultimate-controller variant used by {!Groups}. *)

val pairs_from : Generator.ownership -> int list -> (int * int) list

val metalog_sigma : string
(** The MetaLog encoding of Example 4.1 over the Company-KG constructs
    (requires OWNS to be materialized first — see
    {!Intensional.owns}). *)

val vadalog_program : string
(** The Vadalog encoding of Example 4.2 over company/1 and own/3. *)

val via_vadalog :
  ?options:Kgm_vadalog.Engine.options -> Generator.ownership ->
  (int * int) list
(** Run {!vadalog_program} on the network; non-reflexive control pairs,
    sorted. *)
