(** Company groups, partnerships and families (paper, Sec. 2.1): the
    intensional components capturing "relevant phenomena for analysis
    purposes" — virtual concepts shared among firms and shareholders. *)

type group = {
  head : int;          (** ultimate controller *)
  members : int list;  (** controlled companies, sorted *)
}

val company_groups : Generator.ownership -> group list
(** One group per {e ultimate} controller: a vertex controlling at least
    one company while controlled by nobody. *)

val partnerships :
  ?min_share:float -> Generator.ownership -> (int * int) list
(** Unordered pairs of shareholders jointly holding at least [min_share]
    (default 0.1) of the same company each. *)

type family = {
  family_id : int;     (** union-find representative *)
  persons : int list;  (** ≥ 2 members, sorted *)
}

val families : Generator.ownership -> family list
(** Individuals related by joint holdings, grouped as connected
    components (the exact reference for the overlapping-cluster MetaLog
    approximation in {!metalog_sigma}). *)

val family_holdings : Generator.ownership -> family -> (int * float) list
(** Total direct family ownership per company, sorted. *)

val metalog_sigma : string
(** IS_RELATED_TO / BELONGS_TO_FAMILY / FAMILY_OWNS rules (Sec. 3.3),
    family nodes minted with a linker Skolem functor. Requires OWNS. *)
