(** Integrated ownership (paper, Sec. 2.1 and reference [43]): the total
    share of a company owned by a shareholder directly and indirectly
    throughout the whole graph — io(x, y) = a(x, y) + Σ_z io(x, z) ·
    a(z, y), i.e. IO = A(I − A)⁻¹ row by row, computed as a sparse
    fixpoint with outstanding-delta bookkeeping. Cross-shareholdings
    keep company row sums ≤ 1 (with leakage), so deltas decay
    geometrically and propagation stops below [epsilon]. *)

type options = {
  epsilon : float;   (** deltas below this stop propagating *)
  max_steps : int;   (** hard cap on worklist pops, per source *)
}

val default_options : options

val from_source :
  ?options:options -> ?min_share:float -> Generator.ownership -> int ->
  (int * float) list
(** Integrated-ownership vector of a source: (company, io) pairs with
    io >= [min_share] (default 1e-6), sorted by company. *)

val between : ?options:options -> Generator.ownership -> int -> int -> float
(** io(x, y); 0. when unreachable. *)

val all_above :
  ?options:options -> threshold:float -> Generator.ownership ->
  (int * int * float) list
(** Every (source, company, io) with io >= threshold, sources being the
    vertices with at least one holding. *)
