(** The Company KG of the Bank of Italy (paper, Sec. 3.3 / Fig. 4),
    written in GSL exactly as the design narrative builds it: persons
    specialize into physical and legal persons; legal persons into
    businesses and non-businesses; businesses may be publicly listed;
    share holding is decoupled through Share nodes; OWNS, CONTROLS,
    IS_RELATED_TO, BELONGS_TO_FAMILY, FAMILY_OWNS and
    numberOfStakeholders are intensional. *)

let gsl_source =
  {|
schema company_kg {
  node Person {
    fiscalCode: string @id @unique;
  }
  node PhysicalPerson {
    name: string;
    gender: string @enum("male", "female", "other");
    birthDate: date @opt;
  }
  node LegalPerson {
    businessName: string;
    legalNature: string;
    website: string @opt;
  }
  node Business {
    shareholdingCapital: float;
    numberOfStakeholders: int @intensional;
  }
  node NonBusiness {
    isGovernmental: bool;
  }
  node PublicListedCompany {
    stockExchange: string;
    tickerSymbol: string @unique;
  }
  node Share {
    shareId: string @id;
    percentage: float @range(0.0, 1.0);
  }
  node StockShare {
    numberOfStocks: int;
  }
  node Place {
    addressId: string @id;
    street: string;
    streetNumber: string @opt;
    city: string;
    postalCode: string @opt;
  }
  intensional node Family {
    familyId: string @id;
  }
  node BusinessEvent {
    eventId: string @id;
    eventType: string @enum("merger", "acquisition", "split");
    eventDate: date;
  }

  generalization PersonKind of Person = PhysicalPerson | LegalPerson @total @disjoint;
  generalization LegalPersonKind of LegalPerson = Business | NonBusiness @total @disjoint;
  generalization BusinessListing of Business = PublicListedCompany @disjoint;
  generalization ShareKind of Share = StockShare @disjoint;

  edge HOLDS from Person to Share [0..N -> 1..N] {
    right: string @enum("ownership", "bareOwnership", "usufruct");
    validFrom: date @opt;
    validTo: date @opt;
  }
  edge BELONGS_TO from Share to Business [1..1 -> 0..N];
  edge HAS_ROLE from Person to LegalPerson [0..N -> 0..N] {
    role: string;
    since: date @opt;
  }
  edge RESIDES from Person to Place [0..1 -> 0..N];
  edge REPRESENTS from PhysicalPerson to LegalPerson [0..N -> 0..N];
  edge PARTICIPATES from Business to BusinessEvent [0..N -> 1..N] {
    eventRole: string;
  }
  intensional edge OWNS from Person to Business [0..N -> 0..N] {
    percentage: float;
  }
  intensional edge CONTROLS from Person to Business [0..N -> 0..N];
  intensional edge INTEGRATED_OWNS from Person to Business [0..N -> 0..N] {
    percentage: float;
  }
  intensional edge OWNS_20 from Person to Business [0..N -> 0..N];
  intensional edge CLOSE_LINK from Person to Person [0..N -> 0..N];
  intensional edge IS_RELATED_TO from PhysicalPerson to PhysicalPerson [0..N -> 0..N];
  intensional edge BELONGS_TO_FAMILY from PhysicalPerson to Family [0..1 -> 1..N];
  intensional edge FAMILY_OWNS from Family to Business [0..N -> 0..N];
}
|}

let schema = lazy (Kgmodel.Gsl.parse_validated gsl_source)

let load () = Lazy.force schema
