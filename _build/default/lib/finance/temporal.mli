(** Time dependence (paper, Sec. 2.1: "All our entities and their
    associations are time dependent"): elements may carry
    [validFrom]/[validTo] date properties; a missing bound leaves that
    side open. As-of queries run the intensional components on a
    {!slice}. *)

open Kgm_common

val valid_at : at:Value.t -> (string * Value.t) list -> bool
(** Is an element with these properties valid at the given date? *)

val slice : at:Value.t -> Kgm_graphdb.Pgraph.t -> Kgm_graphdb.Pgraph.t
(** The sub-graph valid at the date: out-of-validity nodes are dropped
    with their incident edges. Element ids are preserved, so slices are
    comparable across dates. *)

val boundaries : Kgm_graphdb.Pgraph.t -> Value.t list
(** All distinct validity bounds, sorted — the instants at which the
    as-of view can change. *)

val timeline :
  Kgm_graphdb.Pgraph.t -> (Kgm_graphdb.Pgraph.t -> 'a) ->
  (Value.t * 'a) list
(** A metric evaluated on the slice at every boundary. *)
