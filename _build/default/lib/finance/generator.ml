open Kgm_common
module DG = Kgm_algo.Digraph

type ownership = {
  graph : DG.t;
  weights : float array array;
  n_persons : int;
  n_companies : int;
}

let ownership_weight o x y =
  let total = ref 0. in
  let succs = DG.succ_list o.graph x in
  List.iteri
    (fun i s -> if s = y then total := !total +. o.weights.(x).(i))
    succs;
  !total

let fold_owned o x f init =
  let acc = ref init in
  List.iteri
    (fun i y -> acc := f !acc y o.weights.(x).(i))
    (DG.succ_list o.graph x);
  !acc

let fold_owners o y f init =
  let acc = ref init in
  List.iter
    (fun x ->
      let w = ownership_weight o x y in
      if w > 0. then acc := f !acc x w)
    (List.sort_uniq Int.compare (DG.pred_list o.graph y));
  !acc

(* power-law-ish integer: 1 + floor(u^{-1/(alpha-1)}) capped *)
let powerlaw_int rng ~mean ~cap =
  let alpha = 2.2 in
  let u = max 1e-9 (Random.State.float rng 1.0) in
  let raw = u ** (-1. /. (alpha -. 1.)) in
  let scaled = raw *. mean /. 2.0 in
  max 1 (min cap (int_of_float scaled))

let generate ?(seed = 42) ?(person_share = 0.55) ?(owners_per_company = 1.55)
    ?(hub_bias = 0.22) ?(locality = 0.58) ?(triangle_links = 0.012)
    ?(cross_links = 0.004) ~n () =
  if n < 4 then invalid_arg "Generator.generate: n >= 4 required";
  let rng = Random.State.make [| seed |] in
  let n_persons = int_of_float (float_of_int n *. person_share) in
  let n_companies = n - n_persons in
  (* per-owner edge accumulators; arrays are built once at the end to
     avoid quadratic Array.append on hub owners *)
  let out_edges : (int * float) list array = Array.make n [] in
  (* hub machinery: repeated-owner urn implements preferential
     attachment; every vertex appears once, successful owners re-enter *)
  let urn = ref [] in
  let urn_size = ref 0 in
  let push_urn v =
    urn := v :: !urn;
    incr urn_size
  in
  for v = 0 to n - 1 do
    push_urn v
  done;
  let urn_array = ref (Array.of_list !urn) in
  let urn_dirty = ref false in
  let pick_owner company =
    let pick () =
      let r = Random.State.float rng 1.0 in
      if r < hub_bias then begin
        (* preferential attachment: hubs *)
        if !urn_dirty then begin
          urn_array := Array.of_list !urn;
          urn_dirty := false
        end;
        let a = !urn_array in
        a.(Random.State.int rng (Array.length a))
      end
      else if r < hub_bias +. locality then begin
        (* local owner: keeps most weakly connected components small *)
        let window = 12 in
        let base = max 0 (min (n - 2 * window - 1) (company - window)) in
        base + Random.State.int rng (2 * window)
      end
      else Random.State.int rng n
    in
    (* owners are persons, or lower-index companies: ownership among
       companies is kept hierarchical (a DAG), so non-trivial SCCs come
       only from the explicit cross_links back-edges, as in the register *)
    let acceptable v = v < n_persons || (v >= n_persons && v < company) in
    let rec retry k =
      let v = pick () in
      if v <> company && acceptable v then v
      else if k > 20 then Random.State.int rng n_persons
      else retry (k + 1)
    in
    retry 0
  in
  let owners_index : (int, int list) Hashtbl.t = Hashtbl.create (max 16 n_companies) in
  (* unallocated capital per company: extra stakes (triangles, cross
     links) must never oversubscribe the 100% total *)
  let remaining = Array.make n 1.0 in
  let take c w = if remaining.(c) >= w then (remaining.(c) <- remaining.(c) -. w; true) else false in
  let out_edges_owners_of c =
    Option.value ~default:[] (Hashtbl.find_opt owners_index c)
  in
  (* companies are [n_persons, n); persons only ever appear as owners *)
  for c = n_persons to n - 1 do
    let k = powerlaw_int rng ~mean:owners_per_company ~cap:(max 64 (n / 700)) in
    let owners = ref [] in
    for _ = 1 to k do
      let o = pick_owner c in
      if o <> c && not (List.mem o !owners) then owners := o :: !owners
    done;
    (* split the capital: random positive weights, normalized to a total
       in (0.3, 1.0] — some capital may be unlisted, as in the register *)
    let owners = !owners in
    if owners <> [] then begin
      let raws = List.map (fun _ -> 0.05 +. Random.State.float rng 1.0) owners in
      let total = List.fold_left ( +. ) 0. raws in
      let coverage = 0.3 +. Random.State.float rng 0.6 in
      remaining.(c) <- 1.0 -. coverage;
      List.iter2
        (fun o raw ->
          let w = raw /. total *. coverage in
          out_edges.(o) <- (c, w) :: out_edges.(o);
          Hashtbl.replace owners_index c
            (o :: Option.value ~default:[] (Hashtbl.find_opt owners_index c));
          (* successful owners re-enter the urn: rich get richer *)
          push_urn o;
          urn_dirty := true)
        owners raws
    end
  done;
  (* co-ownership triangles: a second owner takes a stake in the first
     owner (when it is a company), raising the clustering coefficient *)
  let n_tri = int_of_float (float_of_int n_companies *. triangle_links) in
  for _ = 1 to n_tri do
    let c = n_persons + Random.State.int rng n_companies in
    let owners = out_edges_owners_of c in
    (* a person co-owner takes a stake in a company co-owner: a triangle
       that cannot close a directed cycle (persons are never owned) *)
    let person = List.find_opt (fun o -> o < n_persons) owners in
    let company = List.find_opt (fun o -> o >= n_persons) owners in
    match person, company with
    | Some p, Some oc ->
        let w = 0.02 +. Random.State.float rng 0.05 in
        if take oc w then out_edges.(p) <- (oc, w) :: out_edges.(p)
    | _ -> ()
  done;
  (* a few company->company back-edges create small non-trivial SCCs *)
  let owner_of = Array.make n (-1) in
  Array.iteri
    (fun o edges ->
      List.iter (fun (c, _) -> if owner_of.(c) < 0 then owner_of.(c) <- o) edges)
    out_edges;
  let n_cross = int_of_float (float_of_int n_companies *. cross_links) in
  for _ = 1 to n_cross do
    let c = n_persons + Random.State.int rng n_companies in
    let owner = owner_of.(c) in
    if owner >= n_persons && take owner 0.05 then
      (* minority stake back into the owning company *)
      out_edges.(c) <- (owner, 0.05) :: out_edges.(c)
  done;
  let g = DG.create n in
  let weights = Array.make n [||] in
  Array.iteri
    (fun o edges ->
      let edges = List.rev edges in
      List.iter (fun (c, _) -> DG.add_edge g o c) edges;
      weights.(o) <- Array.of_list (List.map snd edges))
    out_edges;
  { graph = g; weights; n_persons; n_companies }

(* ------------------------------------------------------------------ *)

let vertex_fiscal_code i = Value.String (Printf.sprintf "FC%08d" i)

let to_company_graph ?(temporal = false) o =
  let module PG = Kgm_graphdb.Pgraph in
  let trng = Random.State.make [| 97 |] in
  let pg = PG.create () in
  let node_of = Array.make (DG.n o.graph) None in
  let person_id i =
    match node_of.(i) with
    | Some id -> id
    | None ->
        let id =
          if i < o.n_persons then
            PG.add_node pg ~labels:[ "PhysicalPerson" ]
              ~props:
                [ ("fiscalCode", vertex_fiscal_code i);
                  ("name", Value.String (Printf.sprintf "Person %d" i));
                  ("gender", Value.String (if i mod 2 = 0 then "male" else "female")) ]
          else
            PG.add_node pg ~labels:[ "Business" ]
              ~props:
                [ ("fiscalCode", vertex_fiscal_code i);
                  ("businessName", Value.String (Printf.sprintf "Company %d" i));
                  ("legalNature", Value.String "srl");
                  ("shareholdingCapital",
                   Value.Float (10_000. +. float_of_int (i * 13 mod 90_000))) ]
        in
        node_of.(i) <- Some id;
        id
  in
  for i = 0 to DG.n o.graph - 1 do
    ignore (person_id i)
  done;
  let share_counter = ref 0 in
  for x = 0 to DG.n o.graph - 1 do
    List.iteri
      (fun j y ->
        let w = o.weights.(x).(j) in
        incr share_counter;
        let share =
          PG.add_node pg ~labels:[ "Share" ]
            ~props:
              [ ("shareId", Value.String (Printf.sprintf "SH%08d" !share_counter));
                ("percentage", Value.Float w) ]
        in
        let temporal_props =
          if temporal then begin
            (* holdings open in a random year; a third of them close *)
            let y0 = 1990 + Random.State.int trng 30 in
            let base = [ ("validFrom", Value.Date (y0, 1, 1)) ] in
            if Random.State.int trng 3 = 0 then
              ("validTo", Value.Date (y0 + 1 + Random.State.int trng 10, 12, 31))
              :: base
            else base
          end
          else []
        in
        ignore
          (PG.add_edge pg ~label:"HOLDS" ~src:(person_id x) ~dst:share
             ~props:(("right", Value.String "ownership") :: temporal_props));
        ignore
          (PG.add_edge pg ~label:"BELONGS_TO" ~src:share ~dst:(person_id y)
             ~props:[]))
      (DG.succ_list o.graph x)
  done;
  pg
