(** Time dependence (paper, Sec. 2.1: "All our entities and their
    associations are time dependent").

    The register convention: elements may carry [validFrom] / [validTo]
    date properties; a missing bound leaves that side open. [slice]
    projects the KG onto the sub-graph valid at a reference date, which
    is how the Bank's analysts pose as-of queries; the intensional
    components then run on the slice. *)

open Kgm_common
module PG = Kgm_graphdb.Pgraph

let date_leq a b = Value.compare a b <= 0

(** Is an element with the given properties valid at [at]? *)
let valid_at ~at props =
  let from_ok =
    match List.assoc_opt "validFrom" props with
    | Some (Value.Date _ as d) -> date_leq d at
    | _ -> true
  in
  let to_ok =
    match List.assoc_opt "validTo" props with
    | Some (Value.Date _ as d) -> date_leq at d
    | _ -> true
  in
  from_ok && to_ok

(** The sub-graph valid at [at]: nodes outside their validity are
    dropped with their incident edges; edges outside theirs are dropped.
    Ids are preserved, so slices of the same graph are comparable. *)
let slice ~at g =
  let out = PG.create () in
  PG.iter_nodes g (fun id ->
      if valid_at ~at (PG.node_props g id) then
        ignore
          (PG.add_node ~id out ~labels:(PG.node_labels g id)
             ~props:(PG.node_props g id)));
  List.iter
    (fun id ->
      let src, dst = PG.edge_ends g id in
      if
        valid_at ~at (PG.edge_props g id)
        && PG.node_exists out src && PG.node_exists out dst
      then
        ignore
          (PG.add_edge ~id out ~label:(PG.edge_label g id) ~src ~dst
             ~props:(PG.edge_props g id)))
    (PG.edge_ids g);
  out

(** All distinct validity boundaries in the graph, sorted: the instants
    at which the as-of view can change. *)
let boundaries g =
  let dates = ref [] in
  let scan props =
    List.iter
      (fun (k, v) ->
        match v with
        | Value.Date _ when k = "validFrom" || k = "validTo" ->
            dates := v :: !dates
        | _ -> ())
      props
  in
  PG.iter_nodes g (fun id -> scan (PG.node_props g id));
  PG.iter_edges g (fun id -> scan (PG.edge_props g id));
  List.sort_uniq Value.compare !dates

(** Evolution of a metric across all validity boundaries:
    [(date, metric (slice ~at:date g))] pairs. *)
let timeline g metric =
  List.map (fun d -> (d, metric (slice ~at:d g))) (boundaries g)
