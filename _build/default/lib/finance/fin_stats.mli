(** The graph-statistics table of Sec. 2.1, computed on a synthetic
    network (EXP-1), with the paper's reference values embedded so the
    bench prints paper-vs-measured rows. *)

type t = {
  nodes : int;
  edges : int;
  scc_count : int;
  avg_scc_size : float;
  largest_scc : int;
  wcc_count : int;
  avg_wcc_size : float;
  largest_wcc : int;
  avg_in_degree : float;   (** over vertices with in-degree > 0 *)
  avg_out_degree : float;  (** over vertices with out-degree > 0 *)
  max_in_degree : int;
  max_out_degree : int;
  clustering : float;
  power_law_alpha : float option;
}

val compute : Kgm_algo.Digraph.t -> t

type paper_row = {
  metric : string;
  paper : string;           (** the Sec. 2.1 value, 11.97M-node register *)
  measured : t -> string;
}

val paper_rows : paper_row list

val pp : Format.formatter -> t -> unit
(** The EXP-1 table: metric | paper | measured. *)
