(** Company groups, families and partnerships (paper, Sec. 2.1): the
    intensional components capturing "relevant phenomena for analysis
    purposes" — a company group is the set of businesses under a common
    ultimate controller; partnerships are shareholders sharing the
    assets of some firm; families link related individuals and
    aggregate family ownership. *)

module DG = Kgm_algo.Digraph

type group = {
  head : int;            (** ultimate controller *)
  members : int list;    (** controlled companies, sorted *)
}

(** Company groups: for every {e ultimate} controller (a vertex that
    controls at least one company and is itself controlled by nobody),
    the set of companies it controls. *)
let company_groups (o : Generator.ownership) =
  let n = DG.n o.Generator.graph in
  let controlled = Array.make n [] in
  let is_controlled = Array.make n false in
  for x = 0 to n - 1 do
    if DG.out_degree o.Generator.graph x > 0 then begin
      let c = Control.controlled_by o x in
      controlled.(x) <- c;
      List.iter (fun y -> is_controlled.(y) <- true) c
    end
  done;
  let groups = ref [] in
  for x = 0 to n - 1 do
    if controlled.(x) <> [] && not is_controlled.(x) then
      groups := { head = x; members = controlled.(x) } :: !groups
  done;
  List.rev !groups

(** Partnerships: unordered pairs of shareholders jointly holding shares
    of the same company, each with at least [min_share] of it. *)
let partnerships ?(min_share = 0.1) (o : Generator.ownership) =
  let pairs = Hashtbl.create 256 in
  for y = 0 to DG.n o.Generator.graph - 1 do
    let owners =
      Generator.fold_owners o y
        (fun acc x w -> if w >= min_share then x :: acc else acc)
        []
      |> List.sort_uniq Int.compare
    in
    let rec all_pairs = function
      | [] -> ()
      | a :: rest ->
          List.iter (fun b -> Hashtbl.replace pairs (a, b) ()) rest;
          all_pairs rest
    in
    all_pairs owners
  done;
  List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) pairs [])

(** Families: individuals are related when they jointly hold the same
    company (a simple proxy for the register's family relationships);
    families are the connected components of that relation; family
    ownership aggregates the members' integrated ownership. *)
type family = {
  family_id : int;
  persons : int list;
}

let families (o : Generator.ownership) =
  let uf = Kgm_algo.Union_find.create o.Generator.n_persons in
  for y = 0 to DG.n o.Generator.graph - 1 do
    let holders =
      Generator.fold_owners o y
        (fun acc x _ -> if x < o.Generator.n_persons then x :: acc else acc)
        []
    in
    match List.sort_uniq Int.compare holders with
    | first :: rest -> List.iter (fun p -> Kgm_algo.Union_find.union uf first p) rest
    | [] -> ()
  done;
  let members = Hashtbl.create 64 in
  for p = 0 to o.Generator.n_persons - 1 do
    if DG.out_degree o.Generator.graph p > 0 then begin
      let r = Kgm_algo.Union_find.find uf p in
      let cur = Option.value ~default:[] (Hashtbl.find_opt members r) in
      Hashtbl.replace members r (p :: cur)
    end
  done;
  Hashtbl.fold
    (fun r ps acc ->
      match ps with
      | [ _ ] | [] -> acc (* singletons are not families *)
      | ps -> { family_id = r; persons = List.sort Int.compare ps } :: acc)
    members []
  |> List.sort compare

(** Total direct ownership of a family in each company. *)
let family_holdings (o : Generator.ownership) (f : family) =
  let totals = Hashtbl.create 32 in
  List.iter
    (fun p ->
      ignore
        (Generator.fold_owned o p
           (fun () y w ->
             let cur = Option.value ~default:0. (Hashtbl.find_opt totals y) in
             Hashtbl.replace totals y (cur +. w))
           ()))
    f.persons;
  List.sort compare (Hashtbl.fold (fun y w acc -> (y, w) :: acc) totals [])

(** MetaLog rules for IS_RELATED_TO / BELONGS_TO_FAMILY / FAMILY_OWNS
    (Sec. 3.3): relatedness via joint holdings, family nodes invented
    with a linker Skolem functor keyed by the representative pair. *)
let metalog_sigma =
  {|
% individuals jointly holding the same business are related
(p: PhysicalPerson)-[: HOLDS]->(s1: Share)-[: BELONGS_TO]->(x: Business),
(q: PhysicalPerson)-[: HOLDS]->(s2: Share)-[: BELONGS_TO]->(x),
  p != q
  => (p)-[r: IS_RELATED_TO]->(q).

% related individuals share a family node, minted with a linker Skolem
% functor anchored at one endpoint (an overlapping-cluster
% approximation of the native connected-component families)
(p: PhysicalPerson)-[: IS_RELATED_TO]->(q: PhysicalPerson),
  F = #family(q)
  => (p)-[m: BELONGS_TO_FAMILY]->(F: Family),
     (q)-[m2: BELONGS_TO_FAMILY]->(F).

% family ownership: a family owns what a member owns
(p: PhysicalPerson)-[: BELONGS_TO_FAMILY]->(f: Family),
(p)-[: OWNS; percentage: W]->(x: Business)
  => (f)-[o: FAMILY_OWNS]->(x).
|}
