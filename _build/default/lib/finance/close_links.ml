(** ECB close links (paper, Sec. 2.1 and [42], Guideline (EU) 2018/876):
    two entities x and y are closely linked when
    - x owns, directly or indirectly, at least 20% of the capital of y;
    - or y owns, directly or indirectly, at least 20% of x;
    - or a third party owns, directly or indirectly, at least 20% of
      both x and y.
    Indirect ownership is integrated ownership ({!Ownership}). *)

module DG = Kgm_algo.Digraph

let threshold = 0.2

type link = {
  a : int;
  b : int;
  reason : [ `Owns | `Owned | `Third_party of int ];
}

(** All close links of the network. Pairs are normalized a < b for the
    symmetric third-party case; ownership cases keep their direction in
    [reason]. *)
let compute ?options (o : Generator.ownership) =
  let above = Ownership.all_above ?options ~threshold o in
  let direct = Hashtbl.create 256 in
  List.iter (fun (x, y, _) -> Hashtbl.replace direct (x, y) ()) above;
  let links = ref [] in
  Hashtbl.iter
    (fun (x, y) () ->
      links := { a = x; b = y; reason = `Owns } :: !links)
    direct;
  (* third parties: for every holder h, every pair among the entities it
     holds >= 20% of is closely linked *)
  let held_by = Hashtbl.create 256 in
  List.iter
    (fun (h, y, _) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt held_by h) in
      Hashtbl.replace held_by h (y :: cur))
    above;
  Hashtbl.iter
    (fun h ys ->
      let ys = List.sort_uniq Int.compare ys in
      let rec pairs = function
        | [] -> ()
        | a :: rest ->
            List.iter
              (fun b ->
                if
                  (not (Hashtbl.mem direct (a, b)))
                  && not (Hashtbl.mem direct (b, a))
                then links := { a; b; reason = `Third_party h } :: !links)
              rest;
            pairs rest
      in
      pairs ys)
    held_by;
  List.sort_uniq compare !links

let count ?options o = List.length (compute ?options o)

(** Bounded-depth MetaLog encoding over the Company-KG constructs: the
    regulatory practice of unfolding indirect ownership to a fixed depth
    (3 here). Exact on networks whose ownership chains do not exceed the
    bound; the native {!compute} is the exact reference (EXP-9 compares
    them). Requires OWNS to be materialized first. *)
let metalog_sigma =
  {|
% integrated ownership, unfolded to depth 3 (stratified sums)
(x: Person)-[: OWNS; percentage: W]->(y: Business),
  V = sum(W)
  => (x)-[c: INTEGRATED_OWNS; percentage: V]->(y).
(x: Person)-[: OWNS; percentage: W1]->(z: Business)-[: OWNS; percentage: W2]->(y: Business),
  V = sum(W1 * W2)
  => (x)-[c: INTEGRATED_OWNS; percentage: V]->(y).
(x: Person)-[: OWNS; percentage: W1]->(z: Business)-[: OWNS; percentage: W2]->(u: Business)-[: OWNS; percentage: W3]->(y: Business),
  V = sum(W1 * W2 * W3)
  => (x)-[c: INTEGRATED_OWNS; percentage: V]->(y).

% >= 20%% integrated ownership, summed across depths
(x: Person)-[e: INTEGRATED_OWNS; percentage: W]->(y: Business),
  T = sum(W), T >= 0.2
  => (x)-[c: OWNS_20]->(y).

% ECB close links: ownership in either role, or a common >= 20%% holder
(x: Person)-[: OWNS_20]->(y: Business)
  => (x)-[c: CLOSE_LINK]->(y).
(h: Person)-[: OWNS_20]->(x: Business),
(h)-[: OWNS_20]->(y: Business), x != y
  => (x)-[c: CLOSE_LINK]->(y).
|}
