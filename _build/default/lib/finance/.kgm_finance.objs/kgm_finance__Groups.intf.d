lib/finance/groups.mli: Generator
