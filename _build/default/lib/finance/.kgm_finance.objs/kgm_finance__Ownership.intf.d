lib/finance/ownership.mli: Generator
