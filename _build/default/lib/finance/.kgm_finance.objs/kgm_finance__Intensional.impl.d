lib/finance/intensional.ml: Close_links Control Groups String
