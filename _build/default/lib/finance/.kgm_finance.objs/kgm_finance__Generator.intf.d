lib/finance/generator.mli: Kgm_algo Kgm_common Kgm_graphdb Value
