lib/finance/ownership.ml: Generator Hashtbl Kgm_algo List Option Queue
