lib/finance/fin_stats.mli: Format Kgm_algo
