lib/finance/close_links.ml: Generator Hashtbl Int Kgm_algo List Option Ownership
