lib/finance/company_schema.ml: Kgmodel Lazy
