lib/finance/close_links.mli: Generator Ownership
