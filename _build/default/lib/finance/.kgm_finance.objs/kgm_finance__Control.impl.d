lib/finance/control.ml: Generator Hashtbl Int Kgm_algo Kgm_common Kgm_vadalog List Option Queue
