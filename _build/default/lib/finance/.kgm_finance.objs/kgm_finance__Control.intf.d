lib/finance/control.mli: Generator Kgm_vadalog
