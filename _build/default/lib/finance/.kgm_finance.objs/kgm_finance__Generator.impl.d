lib/finance/generator.ml: Array Hashtbl Int Kgm_algo Kgm_common Kgm_graphdb List Option Printf Random Value
