lib/finance/temporal.mli: Kgm_common Kgm_graphdb Value
