lib/finance/fin_stats.ml: Format Kgm_algo List Printf String
