lib/finance/temporal.ml: Kgm_common Kgm_graphdb List Value
