lib/finance/groups.ml: Array Control Generator Hashtbl Int Kgm_algo List Option
