(* Tests for the MetaLog language and the MTV compiler: parsing, the
   inductive path-pattern resolution, Kleene-star decidability check,
   label schemas and the PG bridge. *)

open Kgm_common
module M = Kgm_metalog
module PG = Kgm_graphdb.Pgraph

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let parse = M.Mparser.parse_program

(* ------------------------------------------------------------------ *)
(* Parsing *)

let test_parse_control_example () =
  let p = parse
      {| (x: Business) => (x)-[c: CONTROLS]->(x).
         (x: Business)-[: CONTROLS]->(z: Business)-[: OWNS; percentage: W]->(y: Business),
           V = sum(W, <z>), V > 0.5
           => (x)-[c: CONTROLS]->(y). |}
  in
  check Alcotest.int "two rules" 2 (List.length p.M.Ast.rules);
  let r2 = List.nth p.M.Ast.rules 1 in
  check Alcotest.int "body items" 3 (List.length r2.M.Ast.body);
  (match r2.M.Ast.body with
   | [ M.Ast.BChain c; M.Ast.BAgg g; M.Ast.BCond _ ] ->
       check Alcotest.int "two steps" 2 (List.length c.M.Ast.steps);
       check Alcotest.bool "monotonic" true
         (g.Kgm_vadalog.Rule.mode = Kgm_vadalog.Rule.Monotonic);
       check (Alcotest.list Alcotest.string) "contributors" [ "z" ]
         g.Kgm_vadalog.Rule.contributors
   | _ -> Alcotest.fail "unexpected body shape")

let test_parse_inverse_edge () =
  let p = parse "(x: A)<-[e: R]-(y: B) => (x)-[c: S]->(y)." in
  match (List.hd p.M.Ast.rules).M.Ast.body with
  | [ M.Ast.BChain { M.Ast.steps = [ (M.Ast.PInv (M.Ast.PEdge _), _) ]; _ } ] -> ()
  | _ -> Alcotest.fail "expected inverse edge step"

let test_parse_path_regex () =
  let p = parse "(x: A)-/ ([:C]~ [:P])* | [:Q] /->(y: A) => (x)-[d: D]->(y)." in
  match (List.hd p.M.Ast.rules).M.Ast.body with
  | [ M.Ast.BChain { M.Ast.steps = [ (M.Ast.PAlt [ M.Ast.PStar _; M.Ast.PEdge _ ], _) ]; _ } ] ->
      ()
  | _ -> Alcotest.fail "expected alternation of star and edge"

let test_parse_attr_values () =
  let p = parse {| (x: P; name: "ada", age: 36, ok: true, score: -1.5) => (x)-[t: T]->(x). |} in
  match (List.hd p.M.Ast.rules).M.Ast.body with
  | [ M.Ast.BChain { M.Ast.start = { M.Ast.attrs; _ }; _ } ] ->
      check Alcotest.int "four attrs" 4 (List.length attrs);
      check Alcotest.bool "string const" true
        (List.assoc "name" attrs = M.Ast.AConst (Value.string "ada"));
      check Alcotest.bool "neg float" true
        (List.assoc "score" attrs = M.Ast.AConst (Value.float (-1.5)))
  | _ -> Alcotest.fail "bad parse"

let test_parse_spread () =
  let p = parse "(x: P; *Q) => (x)-[t: T]->(x)." in
  match (List.hd p.M.Ast.rules).M.Ast.body with
  | [ M.Ast.BChain { M.Ast.start = { M.Ast.spread = Some "Q"; _ }; _ } ] -> ()
  | _ -> Alcotest.fail "expected spread"

let test_pp_roundtrip () =
  let src =
    {| (x: Business)-[: CONTROLS]->(z: Business), V = sum(W, <z>), W = 1
       => (x)-[c: CONTROLS]->(z). |}
  in
  let p1 = parse src in
  let printed = Format.asprintf "%a" M.Ast.pp_program p1 in
  let p2 = parse printed in
  check Alcotest.int "rules preserved" (List.length p1.M.Ast.rules)
    (List.length p2.M.Ast.rules)

(* ------------------------------------------------------------------ *)
(* Label schemas *)

let tiny_graph () =
  let g = PG.create () in
  let a = PG.add_node g ~labels:[ "A" ] ~props:[ ("p", Value.int 1) ] in
  let b = PG.add_node g ~labels:[ "B" ] ~props:[ ("q", Value.int 2) ] in
  ignore (PG.add_edge g ~label:"R" ~src:a ~dst:b ~props:[ ("w", Value.float 0.5) ]);
  g

let test_label_schema_inference () =
  let g = tiny_graph () in
  let prog = parse "(x: A; p: P)-[: R; w: W]->(y: B) => (x)-[s: S; total: W]->(y)." in
  let schema = M.Label_schema.create () in
  M.Label_schema.observe_graph schema g;
  M.Label_schema.observe_program schema prog;
  check (Alcotest.list Alcotest.string) "A props" [ "p" ]
    (M.Label_schema.node_schema schema "A");
  check (Alcotest.list Alcotest.string) "R props" [ "w" ]
    (M.Label_schema.edge_schema schema "R");
  check (Alcotest.list Alcotest.string) "S props from program" [ "total" ]
    (M.Label_schema.edge_schema schema "S")

let test_label_namespace_collision () =
  let prog = parse "(x: R) => (x)-[e: R]->(x)." in
  match Kgm_error.guard (fun () -> M.Label_schema.infer prog) with
  | Error { Kgm_error.stage = Kgm_error.Validate; _ } -> ()
  | _ -> Alcotest.fail "expected node/edge label collision error"

(* ------------------------------------------------------------------ *)
(* MTV translation *)

let test_mtv_control_shape () =
  let prog = parse
      {| (x: Business)-[: CONTROLS]->(z: Business)-[: OWNS; percentage: W]->(y: Business),
           V = sum(W, <z>), V > 0.5
           => (x)-[c: CONTROLS]->(y). |}
  in
  let { M.Mtv.program; _ } = M.Mtv.translate prog in
  check Alcotest.int "single rule, no aux" 1 (List.length program.Kgm_vadalog.Rule.rules);
  let r = List.hd program.Kgm_vadalog.Rule.rules in
  (* head: CONTROLS(C, X, Y); existential edge id *)
  (match r.Kgm_vadalog.Rule.head with
   | [ { Kgm_vadalog.Rule.pred = "CONTROLS"; args } ] ->
       check Alcotest.int "edge arity 3 (id, src, dst)" 3 (List.length args)
   | _ -> Alcotest.fail "bad head");
  check Alcotest.bool "existential binder" true
    (Kgm_vadalog.Rule.existential_vars r = [ "V_c" ])

let test_mtv_star_generates_beta () =
  let prog = parse "(x: N)-/ [:E]* /->(y: N) => (x)-[d: D]->(y)." in
  let { M.Mtv.program; _ } = M.Mtv.translate prog in
  (* one main rule + base and step β rules *)
  check Alcotest.int "three rules" 3 (List.length program.Kgm_vadalog.Rule.rules);
  let preds =
    List.concat_map
      (fun (r : Kgm_vadalog.Rule.rule) ->
        List.map (fun (a : Kgm_vadalog.Rule.atom) -> a.Kgm_vadalog.Rule.pred) r.Kgm_vadalog.Rule.head)
      program.Kgm_vadalog.Rule.rules
  in
  check Alcotest.bool "beta predicate" true
    (List.exists (fun p -> String.length p > 4 && String.sub p 0 4 = "mtv_") preds)

let test_mtv_alternation_generates_alpha () =
  let prog = parse "(x: N)-/ [:E] | [:F]~ /->(y: N) => (x)-[d: D]->(y)." in
  let { M.Mtv.program; _ } = M.Mtv.translate prog in
  check Alcotest.int "main + 2 branch rules" 3
    (List.length program.Kgm_vadalog.Rule.rules)

let test_mtv_input_annotations () =
  let prog = parse "(x: A)-[: R]->(y: B) => (x)-[s: S]->(y)." in
  let { M.Mtv.program; _ } = M.Mtv.translate prog in
  let inputs =
    List.filter (fun a -> a.Kgm_vadalog.Rule.a_name = "input")
      program.Kgm_vadalog.Rule.annotations
  in
  check Alcotest.int "A, B, R inputs" 3 (List.length inputs);
  check Alcotest.bool "cypher query text" true
    (List.exists
       (fun a ->
         match a.Kgm_vadalog.Rule.a_args with
         | [ "R"; q ] -> q = "MATCH (a)-[e:R]->(b) RETURN e, a, b"
         | _ -> false)
       inputs)

let test_star_restriction () =
  (* star + recursion on the same label-key must be rejected *)
  let prog = parse
      {| (x: N)-/ [:E]* /->(y: N) => (x)-[e2: E]->(y). |}
  in
  (match Kgm_error.guard (fun () -> M.Mtv.translate prog) with
   | Error { Kgm_error.stage = Kgm_error.Validate; _ } -> ()
   | _ -> Alcotest.fail "expected star restriction error");
  (* but different schemaOID selectors are not recursion (SSST mappings) *)
  let ok = parse
      {| (x: SM_Node; schemaOID: 1)-/ ([:SM_CHILD; schemaOID: 1]~ [:SM_PARENT; schemaOID: 1])* /->(y: SM_Node; schemaOID: 1),
           K = #c(x)
           => (K: SM_Node; schemaOID: 2). |}
  in
  match Kgm_error.guard (fun () -> M.Mtv.translate ok) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Kgm_error.to_string e)

let test_spread_only_in_heads () =
  let prog = parse "(x: A; *P) => (x)-[t: T]->(x)." in
  match Kgm_error.guard (fun () -> M.Mtv.translate prog) with
  | Error { Kgm_error.stage = Kgm_error.Translate; _ } -> ()
  | _ -> Alcotest.fail "expected spread-in-body rejection"

(* ------------------------------------------------------------------ *)
(* End-to-end reasoning on graphs *)

let chain_graph n =
  let g = PG.create () in
  let nodes =
    Array.init n (fun i ->
        PG.add_node g ~labels:[ "N" ] ~props:[ ("idx", Value.int i) ])
  in
  for i = 0 to n - 2 do
    ignore (PG.add_edge g ~label:"E" ~src:nodes.(i) ~dst:nodes.(i + 1) ~props:[])
  done;
  (g, nodes)

let test_star_reachability () =
  let g, _ = chain_graph 6 in
  let prog = parse "(x: N)-/ [:E]* /->(y: N) => (x)-[d: D]->(y)." in
  let _, ne, _ = M.Pg_bridge.reason_on_graph prog g in
  (* one-or-more closure on a 6-chain: 5+4+3+2+1 = 15 pairs *)
  check Alcotest.int "closure pairs" 15 ne

let test_inverse_concat () =
  (* siblings: children of the same parent, via child~ . parent *)
  let g = PG.create () in
  let p = PG.add_node g ~labels:[ "N" ] ~props:[] in
  let a = PG.add_node g ~labels:[ "N" ] ~props:[] in
  let b = PG.add_node g ~labels:[ "N" ] ~props:[] in
  ignore (PG.add_edge g ~label:"PARENT" ~src:a ~dst:p ~props:[]);
  ignore (PG.add_edge g ~label:"PARENT" ~src:b ~dst:p ~props:[]);
  let prog = parse
      "(x: N)-/ [:PARENT] [:PARENT]~ /->(y: N) => (x)-[s: SIB]->(y)." in
  let _, ne, _ = M.Pg_bridge.reason_on_graph prog g in
  (* pairs: (a,a), (a,b), (b,a), (b,b) *)
  check Alcotest.int "sibling pairs incl. reflexive" 4 ne

let test_edge_attributes_roundtrip () =
  let g = tiny_graph () in
  let prog = parse
      "(x: A)-[: R; w: W]->(y: B), V = W * 2 => (x)-[s: S; total: V]->(y)." in
  let _, ne, _ = M.Pg_bridge.reason_on_graph prog g in
  check Alcotest.int "one derived edge" 1 ne;
  let s = List.hd (PG.edges_with_label g "S") in
  check Alcotest.bool "attribute computed" true
    (PG.edge_prop g s "total" = Some (Value.float 1.0))

let test_derived_node_with_skolem () =
  let g = tiny_graph () in
  let prog = parse
      {| (x: A; p: P), K = #grp(P) => (K: Group; size: P), (x)-[m: IN]->(K). |}
  in
  let nn, ne, _ = M.Pg_bridge.reason_on_graph prog g in
  check Alcotest.int "one group node" 1 nn;
  check Alcotest.int "one membership" 1 ne;
  let k = List.hd (PG.nodes_with_label g "Group") in
  check Alcotest.bool "skolem id" true (Oid.is_skolem k)

let test_negated_pattern () =
  (* employees with no direct report are leaves of the org chart *)
  let g = PG.create () in
  let emp name =
    PG.add_node g ~labels:[ "Employee" ] ~props:[ ("name", Value.string name) ]
  in
  let a = emp "ada" and b = emp "bob" and c = emp "cas" in
  ignore (PG.add_edge g ~label:"REPORTS_TO" ~src:b ~dst:a ~props:[]);
  ignore (PG.add_edge g ~label:"REPORTS_TO" ~src:c ~dst:a ~props:[]);
  let prog = parse
      {| (x: Employee), not ((y: Employee)-[: REPORTS_TO]->(x))
           => (x)-[t: LEAF]->(x). |}
  in
  let _, ne, _ = M.Pg_bridge.reason_on_graph prog g in
  check Alcotest.int "two leaves" 2 ne;
  let leaves =
    List.map
      (fun e ->
        let s, _ = PG.edge_ends g e in
        Value.to_string (Option.get (PG.node_prop g s "name")))
      (PG.edges_with_label g "LEAF")
    |> List.sort compare
  in
  check (Alcotest.list Alcotest.string) "bob and cas" [ "\"bob\""; "\"cas\"" ] leaves

let test_negation_with_attributes () =
  (* negation may constrain attributes inside the pattern *)
  let g = tiny_graph () in
  let prog = parse
      {| (x: A), not ((x)-[: R; w: 0.9]->(y: B)) => (x)-[t: NOHEAVY]->(x). |}
  in
  let _, ne, _ = M.Pg_bridge.reason_on_graph prog g in
  (* the single R edge has w = 0.5, so the negation succeeds *)
  check Alcotest.int "derived" 1 ne;
  let g2 = tiny_graph () in
  let prog2 = parse
      {| (x: A), not ((x)-[: R; w: 0.5]->(y: B)) => (x)-[t: NOHEAVY]->(x). |}
  in
  let _, ne2, _ = M.Pg_bridge.reason_on_graph prog2 g2 in
  check Alcotest.int "blocked" 0 ne2

let test_negation_roundtrip () =
  let src = "(x: A), not ((x)-[: R]->(y: B)) => (x)-[t: T]->(x)." in
  let p1 = parse src in
  let printed = Format.asprintf "%a" M.Ast.pp_program p1 in
  let p2 = parse printed in
  check Alcotest.int "negation survives pp" (List.length p1.M.Ast.rules)
    (List.length p2.M.Ast.rules)

let prop_star_equals_reachability =
  QCheck.Test.make ~name:"MetaLog [:E]* = digraph reachability" ~count:40
    QCheck.(pair (int_range 2 7) (small_list (pair (int_bound 6) (int_bound 6))))
    (fun (n, edges) ->
      let edges = List.filter (fun (a, b) -> a < n && b < n) edges in
      let g = PG.create () in
      let nodes = Array.init n (fun i ->
          PG.add_node g ~labels:[ "N" ] ~props:[ ("idx", Value.int i) ]) in
      List.iter
        (fun (a, b) ->
          ignore (PG.add_edge g ~label:"E" ~src:nodes.(a) ~dst:nodes.(b) ~props:[]))
        edges;
      let prog = parse "(x: N)-/ [:E]* /->(y: N) => (x)-[d: D]->(y)." in
      let _, ne, _ = M.Pg_bridge.reason_on_graph prog g in
      (* oracle: pairs (x,y) connected by >= 1 edges *)
      let dg = Kgm_algo.Digraph.of_edges n edges in
      let count = ref 0 in
      for v = 0 to n - 1 do
        let seen = Array.make n false in
        Kgm_algo.Digraph.iter_succ dg v (fun w ->
            let r = Kgm_algo.Traverse.reachable dg w in
            Array.iteri (fun u b -> if b then seen.(u) <- true) r);
        Array.iter (fun b -> if b then incr count) seen
      done;
      ne = !count)

let suite =
  [ ("parse Example 4.1", `Quick, test_parse_control_example);
    ("parse inverse edges", `Quick, test_parse_inverse_edge);
    ("parse path regex", `Quick, test_parse_path_regex);
    ("parse attribute literals", `Quick, test_parse_attr_values);
    ("parse spread", `Quick, test_parse_spread);
    ("pp roundtrip", `Quick, test_pp_roundtrip);
    ("label schema inference", `Quick, test_label_schema_inference);
    ("label namespace collision", `Quick, test_label_namespace_collision);
    ("MTV: control rule shape", `Quick, test_mtv_control_shape);
    ("MTV: star -> beta rules", `Quick, test_mtv_star_generates_beta);
    ("MTV: alternation -> alpha rules", `Quick, test_mtv_alternation_generates_alpha);
    ("MTV: @input annotations (Ex. 4.4)", `Quick, test_mtv_input_annotations);
    ("star restriction (Sec. 4)", `Quick, test_star_restriction);
    ("spread only in heads", `Quick, test_spread_only_in_heads);
    ("star closure on a chain", `Quick, test_star_reachability);
    ("inverse + concatenation", `Quick, test_inverse_concat);
    ("edge attributes through rules", `Quick, test_edge_attributes_roundtrip);
    ("derived skolem nodes", `Quick, test_derived_node_with_skolem);
    ("negated patterns", `Quick, test_negated_pattern);
    ("negation with attributes", `Quick, test_negation_with_attributes);
    ("negation pp roundtrip", `Quick, test_negation_roundtrip);
    qtest prop_star_equals_reachability ]
