test/test_vadalog.ml: Alcotest Array Buffer Filename Format Kgm_algo Kgm_common Kgm_error Kgm_vadalog List Printf QCheck QCheck_alcotest String Sys Unix Value
