test/gen_schema.ml: Char Hashtbl Kgm_common Kgmodel List Printf QCheck Random String Value
