test/test_algo.ml: Alcotest Array Kgm_algo List Printf QCheck QCheck_alcotest String
