test/test_common.ml: Alcotest Kgm_common Kgm_error List Names Oid QCheck QCheck_alcotest String Value
