test/test_ssst.ml: Alcotest Gen_schema Kgm_common Kgm_error Kgm_finance Kgm_relational Kgm_targets Kgm_vadalog Kgmodel List QCheck QCheck_alcotest String Value
