test/test_materialize.ml: Alcotest Kgm_common Kgm_error Kgm_finance Kgm_graphdb Kgm_metalog Kgm_vadalog Kgmodel List Option String Value
