test/test_schema_diff.ml: Alcotest Kgmodel List
