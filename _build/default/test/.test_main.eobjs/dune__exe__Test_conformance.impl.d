test/test_conformance.ml: Alcotest Kgm_common Kgm_finance Kgm_graphdb Kgmodel Lazy List Value
