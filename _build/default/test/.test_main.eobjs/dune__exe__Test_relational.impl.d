test/test_relational.ml: Alcotest Array Fun Kgm_common Kgm_error Kgm_relational List QCheck QCheck_alcotest String Value
