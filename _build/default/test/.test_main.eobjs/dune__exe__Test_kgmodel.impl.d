test/test_kgmodel.ml: Alcotest Fun Gen_schema Kgm_common Kgm_error Kgm_finance Kgmodel List Printf QCheck QCheck_alcotest String Value
