test/test_graphdb.ml: Alcotest Array Kgm_algo Kgm_common Kgm_error Kgm_graphdb List Oid QCheck QCheck_alcotest String Value
