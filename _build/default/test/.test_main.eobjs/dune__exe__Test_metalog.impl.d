test/test_metalog.ml: Alcotest Array Format Kgm_algo Kgm_common Kgm_error Kgm_graphdb Kgm_metalog Kgm_vadalog List Oid Option QCheck QCheck_alcotest String Value
