test/test_finance.ml: Alcotest Array Hashtbl Kgm_algo Kgm_common Kgm_finance Kgm_graphdb Kgmodel Lazy List Printf QCheck QCheck_alcotest Value
