(* Tests for the graph-algorithm substrate: digraph, union-find,
   SCC/WCC, statistics, traversal — including qcheck properties checking
   Tarjan against brute-force mutual reachability. *)

module DG = Kgm_algo.Digraph
module C = Kgm_algo.Components

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* random digraph generator: (n, edge list) *)
let graph_gen =
  QCheck.Gen.(
    let* n = int_range 1 14 in
    let* m = int_range 0 (n * 3) in
    let* edges = list_size (return m) (pair (int_bound (n - 1)) (int_bound (n - 1))) in
    return (n, edges))

let graph_arb =
  QCheck.make
    ~print:(fun (n, es) ->
      Printf.sprintf "n=%d %s" n
        (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) es)))
    graph_gen

(* ------------------------------------------------------------------ *)

let test_digraph_basics () =
  let g = DG.of_edges 4 [ (0, 1); (1, 2); (1, 2); (2, 0); (3, 3) ] in
  check Alcotest.int "n" 4 (DG.n g);
  check Alcotest.int "m (multi)" 5 (DG.m g);
  check Alcotest.int "out 1" 2 (DG.out_degree g 1);
  check Alcotest.int "in 2" 2 (DG.in_degree g 2);
  check (Alcotest.list Alcotest.int) "succ order" [ 2; 2 ] (DG.succ_list g 1);
  check (Alcotest.list Alcotest.int) "pred" [ 2 ] (DG.pred_list g 0);
  check (Alcotest.list Alcotest.int) "undirected neighbors no self"
    [] (DG.undirected_neighbors g 3);
  Alcotest.check_raises "range check" (Invalid_argument "Digraph: vertex out of range")
    (fun () -> DG.add_edge g 0 9)

let test_transpose () =
  let g = DG.of_edges 3 [ (0, 1); (1, 2) ] in
  let t = DG.transpose g in
  check (Alcotest.list Alcotest.int) "transposed succ" [ 0 ] (DG.succ_list t 1);
  check Alcotest.int "m preserved" (DG.m g) (DG.m t)

let test_union_find () =
  let uf = Kgm_algo.Union_find.create 6 in
  check Alcotest.int "init count" 6 (Kgm_algo.Union_find.count uf);
  Kgm_algo.Union_find.union uf 0 1;
  Kgm_algo.Union_find.union uf 1 2;
  Kgm_algo.Union_find.union uf 4 5;
  check Alcotest.int "count" 3 (Kgm_algo.Union_find.count uf);
  check Alcotest.bool "same" true (Kgm_algo.Union_find.same uf 0 2);
  check Alcotest.bool "not same" false (Kgm_algo.Union_find.same uf 0 3);
  let sizes = List.sort compare (List.map snd (Kgm_algo.Union_find.component_sizes uf)) in
  check (Alcotest.list Alcotest.int) "sizes" [ 1; 2; 3 ] sizes

let test_scc_known () =
  (* two 2-cycles and a bridge: 0<->1 -> 2<->3, plus isolated 4 *)
  let g = DG.of_edges 5 [ (0, 1); (1, 0); (1, 2); (2, 3); (3, 2) ] in
  let p = C.scc g in
  check Alcotest.int "count" 3 p.C.count;
  check Alcotest.int "largest" 2 (C.largest_size p);
  check Alcotest.bool "0,1 same" true (p.C.component.(0) = p.C.component.(1));
  check Alcotest.bool "2,3 same" true (p.C.component.(2) = p.C.component.(3));
  check Alcotest.bool "0,2 differ" false (p.C.component.(0) = p.C.component.(2))

let test_scc_long_chain_no_overflow () =
  (* iterative Tarjan must survive a 200k chain *)
  let n = 200_000 in
  let g = DG.create n in
  for i = 0 to n - 2 do
    DG.add_edge g i (i + 1)
  done;
  let p = C.scc g in
  check Alcotest.int "all singleton" n p.C.count

let test_wcc_known () =
  let g = DG.of_edges 6 [ (0, 1); (2, 1); (3, 4) ] in
  let p = C.wcc g in
  check Alcotest.int "count" 3 p.C.count;
  check Alcotest.int "largest" 3 (C.largest_size p)

let test_condensation () =
  let g = DG.of_edges 4 [ (0, 1); (1, 0); (1, 2); (2, 3); (3, 2) ] in
  let p = C.scc g in
  let dag = C.condensation g p in
  check Alcotest.int "dag vertices" 2 (DG.n dag);
  check Alcotest.int "dag edges dedup" 1 (DG.m dag);
  check Alcotest.bool "acyclic" true (C.topological_order dag <> None)

let test_topological () =
  let g = DG.of_edges 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  (match C.topological_order g with
   | Some order ->
       let pos = Array.make 4 0 in
       List.iteri (fun i v -> pos.(v) <- i) order;
       check Alcotest.bool "0 before 3" true (pos.(0) < pos.(3));
       check Alcotest.bool "1 before 3" true (pos.(1) < pos.(3))
   | None -> Alcotest.fail "expected DAG");
  let cyc = DG.of_edges 2 [ (0, 1); (1, 0) ] in
  check Alcotest.bool "cycle detected" true (C.topological_order cyc = None)

(* brute-force mutual reachability for qcheck oracle *)
let reach_matrix g =
  let n = DG.n g in
  let r = Array.make_matrix n n false in
  for v = 0 to n - 1 do
    let seen = Kgm_algo.Traverse.reachable g v in
    Array.iteri (fun w b -> r.(v).(w) <- b) seen
  done;
  r

let prop_scc_vs_bruteforce =
  QCheck.Test.make ~name:"SCC = mutual reachability" ~count:200 graph_arb
    (fun (n, edges) ->
      let g = DG.of_edges n edges in
      let p = C.scc g in
      let r = reach_matrix g in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          let same = p.C.component.(a) = p.C.component.(b) in
          let mutual = r.(a).(b) && r.(b).(a) in
          if same <> mutual then ok := false
        done
      done;
      !ok)

let prop_scc_sizes_sum =
  QCheck.Test.make ~name:"SCC sizes partition vertices" ~count:200 graph_arb
    (fun (n, edges) ->
      let p = C.scc (DG.of_edges n edges) in
      Array.fold_left ( + ) 0 p.C.sizes = n)

let prop_wcc_undirected_connectivity =
  QCheck.Test.make ~name:"WCC = undirected components" ~count:200 graph_arb
    (fun (n, edges) ->
      let g = DG.of_edges n edges in
      let p = C.wcc g in
      (* two endpoints of every edge share a component *)
      List.for_all (fun (a, b) -> p.C.component.(a) = p.C.component.(b)) edges)

let prop_condensation_acyclic =
  QCheck.Test.make ~name:"condensation is a DAG" ~count:200 graph_arb
    (fun (n, edges) ->
      let g = DG.of_edges n edges in
      let p = C.scc g in
      C.topological_order (C.condensation g p) <> None)

(* ------------------------------------------------------------------ *)

let test_degree_summary () =
  let g = DG.of_edges 4 [ (0, 1); (0, 2); (0, 3); (1, 2) ] in
  let s = Kgm_algo.Stats.degree_summary g in
  check Alcotest.int "max out" 3 s.Kgm_algo.Stats.max_out;
  check Alcotest.int "max in" 2 s.Kgm_algo.Stats.max_in;
  check (Alcotest.float 1e-9) "avg out" 1.0 s.Kgm_algo.Stats.avg_out

let test_clustering_triangle () =
  (* complete triangle has clustering 1 *)
  let g = DG.of_edges 3 [ (0, 1); (1, 2); (2, 0) ] in
  check (Alcotest.float 1e-9) "triangle" 1.0
    (Kgm_algo.Stats.clustering_coefficient g);
  (* a path has clustering 0 *)
  let p = DG.of_edges 3 [ (0, 1); (1, 2) ] in
  check (Alcotest.float 1e-9) "path" 0.0 (Kgm_algo.Stats.clustering_coefficient p)

let test_histogram () =
  let g = DG.of_edges 3 [ (0, 1); (0, 2) ] in
  let h = Kgm_algo.Stats.degree_histogram g `Out in
  check Alcotest.bool "0 deg out twice" true (List.assoc 0 h = 2);
  check Alcotest.bool "2 deg once" true (List.assoc 2 h = 1)

let test_power_law () =
  (* synthetic power-law histogram alpha ~ 2.5 *)
  let hist = List.init 50 (fun i ->
      let k = i + 2 in
      (k, max 1 (int_of_float (10000. *. (float_of_int k ** -2.5))))) in
  (match Kgm_algo.Stats.power_law_alpha ~k_min:2 hist with
   | Some a -> check Alcotest.bool "alpha near 2.5" true (a > 2.0 && a < 3.0)
   | None -> Alcotest.fail "expected alpha");
  check Alcotest.bool "too few" true (Kgm_algo.Stats.power_law_alpha [ (1, 1) ] = None)

let test_gini () =
  check (Alcotest.float 1e-9) "equal -> 0" 0. (Kgm_algo.Stats.gini [| 1.; 1.; 1. |]);
  check Alcotest.bool "concentrated > 0.5" true
    (Kgm_algo.Stats.gini [| 0.; 0.; 0.; 10. |] > 0.5)

let test_bfs () =
  let g = DG.of_edges 5 [ (0, 1); (1, 2); (0, 3) ] in
  let d = Kgm_algo.Traverse.bfs g 0 in
  check (Alcotest.array Alcotest.int) "dists" [| 0; 1; 2; 1; -1 |] d

let test_reachable_set () =
  let g = DG.of_edges 5 [ (0, 1); (2, 3) ] in
  let seen = Kgm_algo.Traverse.reachable_set g [ 0; 2 ] in
  check (Alcotest.array Alcotest.bool) "union" [| true; true; true; true; false |] seen

let test_dfs_postorder () =
  let g = DG.of_edges 3 [ (0, 1); (1, 2) ] in
  check (Alcotest.list Alcotest.int) "postorder" [ 2; 1; 0 ]
    (Kgm_algo.Traverse.dfs_postorder g)

let suite =
  [ ("digraph basics", `Quick, test_digraph_basics);
    ("digraph transpose", `Quick, test_transpose);
    ("union-find", `Quick, test_union_find);
    ("scc known graph", `Quick, test_scc_known);
    ("scc 200k chain (iterative)", `Slow, test_scc_long_chain_no_overflow);
    ("wcc known graph", `Quick, test_wcc_known);
    ("condensation", `Quick, test_condensation);
    ("topological order", `Quick, test_topological);
    qtest prop_scc_vs_bruteforce;
    qtest prop_scc_sizes_sum;
    qtest prop_wcc_undirected_connectivity;
    qtest prop_condensation_acyclic;
    ("degree summary", `Quick, test_degree_summary);
    ("clustering coefficient", `Quick, test_clustering_triangle);
    ("degree histogram", `Quick, test_histogram);
    ("power-law MLE", `Quick, test_power_law);
    ("gini", `Quick, test_gini);
    ("bfs distances", `Quick, test_bfs);
    ("multi-source reachability", `Quick, test_reachable_set);
    ("dfs postorder", `Quick, test_dfs_postorder) ]
