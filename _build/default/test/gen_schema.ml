(* A QCheck generator of small valid super-schemas, used for the GSL
   round-trip, dictionary round-trip and SSST differential properties. *)

open Kgm_common
module SM = Kgmodel.Supermodel

let ty_gen =
  QCheck.Gen.oneofl
    [ Value.TInt; Value.TFloat; Value.TString; Value.TBool; Value.TDate ]

let attr_gen ~id_name =
  QCheck.Gen.(
    let* n = int_range 0 3 in
    let* attrs =
      list_size (return n)
        (let* i = int_range 0 999 in
         let* ty = ty_gen in
         let* opt = bool in
         let* uniq = bool in
         return
           (SM.attribute ~opt
              ~modifiers:(if uniq && ty = Value.TString then [ SM.Unique ] else [])
              (Printf.sprintf "attr%d" i) ty))
    in
    (* dedup attr names *)
    let seen = Hashtbl.create 8 in
    let attrs =
      List.filter
        (fun (a : SM.attribute) ->
          if Hashtbl.mem seen a.SM.at_name then false
          else begin
            Hashtbl.add seen a.SM.at_name ();
            true
          end)
        attrs
    in
    match id_name with
    | Some name ->
        return (SM.attribute ~id:true name Value.TString :: attrs)
    | None -> return attrs)

(* a schema: a forest of up to [max_nodes] nodes with generalizations,
   plus random edges with random cardinalities *)
let schema_gen =
  QCheck.Gen.(
    let* n_roots = int_range 1 3 in
    let* n_children = int_range 0 4 in
    let* n_edges = int_range 0 5 in
    let* seed = int_range 0 10_000 in
    return (n_roots, n_children, n_edges, seed))

let build (n_roots, n_children, n_edges, seed) =
  let rng = Random.State.make [| seed |] in
  let rand_int n = Random.State.int rng n in
  let rand_bool () = Random.State.bool rng in
  let schema = ref (SM.empty "random_schema") in
  let names = ref [] in
  let add_node ?(root = false) i =
    let name = Printf.sprintf "%s%d" (if root then "Root" else "Child") i in
    let attrs =
      List.init (rand_int 3) (fun j ->
          let ty =
            List.nth
              [ Value.TInt; Value.TFloat; Value.TString; Value.TBool ]
              (rand_int 4)
          in
          let modifiers =
            match rand_int 6, ty with
            | 0, Value.TString -> [ SM.Unique ]
            | 1, Value.TString -> [ SM.Enum [ "alpha"; "beta" ] ]
            | 2, Value.TFloat -> [ SM.Range (Some 0., Some 1.) ]
            | 3, Value.TInt -> [ SM.Default (Value.Int 0) ]
            | _ -> []
          in
          SM.attribute ~opt:(rand_bool ()) ~modifiers
            (Printf.sprintf "a%d%s" j (String.make 1 (Char.chr (97 + (i mod 26)))))
            ty)
    in
    let attrs =
      if root then SM.attribute ~id:true "oid" Value.TString :: attrs else attrs
    in
    schema := SM.add_node !schema (SM.node name attrs);
    names := name :: !names;
    name
  in
  let roots = List.init n_roots (fun i -> add_node ~root:true i) in
  (* children attach to random existing nodes, single parent each *)
  let gen_counter = ref 0 in
  for i = 0 to n_children - 1 do
    let child = add_node (100 + i) in
    let parent = List.nth !names (1 + rand_int (List.length !names - 1)) in
    if parent <> child then begin
      incr gen_counter;
      schema :=
        SM.add_generalization !schema
          (SM.generalization
             ~total:(rand_bool ()) ~disjoint:(rand_bool ())
             (Printf.sprintf "Gen%d" !gen_counter)
             ~parent ~children:[ child ])
    end
  done;
  ignore roots;
  let all = !names in
  for i = 0 to n_edges - 1 do
    let from = List.nth all (rand_int (List.length all)) in
    let to_ = List.nth all (rand_int (List.length all)) in
    let attrs =
      if rand_bool () then
        [ SM.attribute (Printf.sprintf "w%d" i) Value.TFloat ]
      else []
    in
    schema :=
      SM.add_edge !schema
        (SM.edge
           ~opt1:(rand_bool ()) ~fun1:(rand_bool ())
           ~opt2:(rand_bool ()) ~fun2:(rand_bool ())
           ~attrs
           (Printf.sprintf "EDGE_%d" i) ~from ~to_)
  done;
  !schema

(* only keep instances that validate: the generator can produce schemas
   where a child has no identifier path etc. *)
let valid_schema_gen =
  QCheck.Gen.map
    (fun params ->
      let s = build params in
      match SM.validate s with Ok () -> Some s | Error _ -> None)
    schema_gen

let arb =
  QCheck.make
    ~print:(fun s ->
      match s with
      | Some s -> Kgmodel.Gsl.print s
      | None -> "<invalid>")
    valid_schema_gen
