(* Tests for the finance domain: the synthetic-register generator, the
   topology statistics of Sec. 2.1, and the intensional components
   (control, integrated ownership, close links, groups, families). *)

module G = Kgm_finance.Generator
module DG = Kgm_algo.Digraph

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let net = lazy (G.generate ~n:800 ~seed:9 ())

(* ------------------------------------------------------------------ *)
(* Generator invariants *)

let test_deterministic () =
  let a = G.generate ~n:300 ~seed:5 () in
  let b = G.generate ~n:300 ~seed:5 () in
  check Alcotest.int "same edges" (DG.m a.G.graph) (DG.m b.G.graph);
  let ea = ref [] and eb = ref [] in
  DG.iter_edges a.G.graph (fun u v -> ea := (u, v) :: !ea);
  DG.iter_edges b.G.graph (fun u v -> eb := (u, v) :: !eb);
  check Alcotest.bool "identical edge lists" true (!ea = !eb);
  let c = G.generate ~n:300 ~seed:6 () in
  check Alcotest.bool "different seed differs" true
    (DG.m a.G.graph <> DG.m c.G.graph
     ||
     let ec = ref [] in
     DG.iter_edges c.G.graph (fun u v -> ec := (u, v) :: !ec);
     !ea <> !ec)

let test_partition () =
  let o = Lazy.force net in
  check Alcotest.int "persons + companies" (DG.n o.G.graph)
    (o.G.n_persons + o.G.n_companies);
  (* persons are never owned *)
  for p = 0 to o.G.n_persons - 1 do
    if DG.in_degree o.G.graph p > 0 then
      Alcotest.failf "person %d is owned" p
  done

let test_weights_normalized () =
  let o = Lazy.force net in
  for c = o.G.n_persons to DG.n o.G.graph - 1 do
    let total = G.fold_owners o c (fun acc _ w -> acc +. w) 0. in
    if total > 1.0 +. 1e-9 then
      Alcotest.failf "company %d capital oversubscribed: %f" c total
  done

let test_weights_aligned () =
  let o = Lazy.force net in
  for v = 0 to DG.n o.G.graph - 1 do
    check Alcotest.int
      (Printf.sprintf "weights of %d" v)
      (DG.out_degree o.G.graph v)
      (Array.length o.G.weights.(v))
  done

let prop_generator_invariants =
  QCheck.Test.make ~name:"generator invariants across sizes/seeds" ~count:15
    QCheck.(pair (int_range 20 400) (int_range 0 1000))
    (fun (n, seed) ->
      let o = G.generate ~n ~seed () in
      let ok = ref true in
      for c = o.G.n_persons to DG.n o.G.graph - 1 do
        let total = G.fold_owners o c (fun acc _ w -> acc +. w) 0. in
        if total > 1.0 +. 1e-9 then ok := false
      done;
      for p = 0 to o.G.n_persons - 1 do
        if DG.in_degree o.G.graph p > 0 then ok := false
      done;
      !ok)

let test_company_graph_expansion () =
  let o = G.generate ~n:100 ~seed:2 () in
  let pg = G.to_company_graph o in
  let module PG = Kgm_graphdb.Pgraph in
  check Alcotest.int "persons" o.G.n_persons
    (List.length (PG.nodes_with_label pg "PhysicalPerson"));
  check Alcotest.int "businesses" o.G.n_companies
    (List.length (PG.nodes_with_label pg "Business"));
  check Alcotest.int "one share per holding" (DG.m o.G.graph)
    (List.length (PG.nodes_with_label pg "Share"));
  check Alcotest.int "holds per share" (DG.m o.G.graph)
    (List.length (PG.edges_with_label pg "HOLDS"));
  (* the expansion conforms to the Company KG schema *)
  let schema = Kgm_finance.Company_schema.load () in
  let dict = Kgmodel.Dictionary.create () in
  let sid = Kgmodel.Dictionary.store dict schema in
  let inst = Kgmodel.Instances.create dict in
  ignore (Kgmodel.Instances.store inst ~schema_oid:sid pg)

(* ------------------------------------------------------------------ *)
(* Topology statistics (EXP-1) *)

let test_stats_shape () =
  let o = G.generate ~n:20_000 () in
  let s = Kgm_finance.Fin_stats.compute o.G.graph in
  (* shape assertions against the Sec. 2.1 qualitative profile *)
  let epn = float_of_int s.Kgm_finance.Fin_stats.edges
            /. float_of_int s.Kgm_finance.Fin_stats.nodes in
  check Alcotest.bool "edges/node ~1.2" true (epn > 0.9 && epn < 1.5);
  check Alcotest.bool "SCCs almost all trivial" true
    (s.Kgm_finance.Fin_stats.avg_scc_size < 1.1);
  check Alcotest.bool "small largest SCC" true
    (s.Kgm_finance.Fin_stats.largest_scc < 100);
  check Alcotest.bool "giant WCC exists" true
    (s.Kgm_finance.Fin_stats.largest_wcc
     > s.Kgm_finance.Fin_stats.nodes / 4);
  check Alcotest.bool "many WCCs" true (s.Kgm_finance.Fin_stats.wcc_count > 1000);
  check Alcotest.bool "in-degree exceeds out-degree" true
    (s.Kgm_finance.Fin_stats.avg_in_degree > s.Kgm_finance.Fin_stats.avg_out_degree);
  check Alcotest.bool "low clustering" true (s.Kgm_finance.Fin_stats.clustering < 0.1);
  (match s.Kgm_finance.Fin_stats.power_law_alpha with
   | Some a -> check Alcotest.bool "plausible alpha" true (a > 1.5 && a < 3.5)
   | None -> Alcotest.fail "no power-law fit");
  check Alcotest.int "paper rows cover the table" 13
    (List.length Kgm_finance.Fin_stats.paper_rows)

(* ------------------------------------------------------------------ *)
(* Control (EXP-5) *)

let test_control_simple_majority () =
  (* direct majority: 2 companies, A owns 60% of B *)
  let o = G.generate ~n:20 ~seed:1 () in
  ignore o;
  (* hand-crafted network via the public API is not possible; test the
     algebraic property on the generated network instead: every directly
     majority-owned company is controlled *)
  let o = Lazy.force net in
  for x = o.G.n_persons to DG.n o.G.graph - 1 do
    let controlled = Kgm_finance.Control.controlled_by o x in
    ignore
      (G.fold_owned o x
         (fun () y w ->
           if w > 0.5 && not (List.mem y controlled) then
             Alcotest.failf "%d majority-owns %d but does not control it" x y)
         ())
  done

let test_control_closure () =
  (* control is transitively closed: if x controls y and y directly
     majority-owns z, then x controls z *)
  let o = Lazy.force net in
  for x = o.G.n_persons to min (DG.n o.G.graph - 1) (o.G.n_persons + 200) do
    let cx = Kgm_finance.Control.controlled_by o x in
    List.iter
      (fun y ->
        ignore
          (G.fold_owned o y
             (fun () z w ->
               if w > 0.5 && z <> x && not (List.mem z cx) then
                 Alcotest.failf "closure violated: %d controls %d, %d owns %d" x y y z)
             ()))
      cx
  done

let test_control_vadalog_agreement () =
  let o = G.generate ~n:400 ~seed:13 () in
  let native = List.sort compare (Kgm_finance.Control.all_pairs o) in
  let vada = Kgm_finance.Control.via_vadalog o in
  check Alcotest.bool "EXP-5 agreement" true (native = vada)

let prop_control_agreement =
  QCheck.Test.make ~name:"control: native = vadalog on random networks" ~count:8
    QCheck.(pair (int_range 30 150) (int_range 0 500))
    (fun (n, seed) ->
      let o = G.generate ~n ~seed () in
      List.sort compare (Kgm_finance.Control.all_pairs o)
      = Kgm_finance.Control.via_vadalog o)

(* ------------------------------------------------------------------ *)
(* Integrated ownership and close links (EXP-9) *)

let test_ownership_bounds () =
  let o = Lazy.force net in
  List.iter
    (fun (_, _, v) ->
      if v < 0.2 -. 1e-9 || v > 1.0 +. 1e-6 then
        Alcotest.failf "io out of range: %f" v)
    (Kgm_finance.Ownership.all_above ~threshold:0.2 o)

let test_ownership_dominates_direct () =
  (* io(x, y) >= direct ownership a(x, y) *)
  let o = Lazy.force net in
  for x = 0 to min 300 (DG.n o.G.graph - 1) do
    let io = Kgm_finance.Ownership.from_source ~min_share:0. o x in
    ignore
      (G.fold_owned o x
         (fun () y w ->
           match List.assoc_opt y io with
           | Some v when v +. 1e-9 >= w -> ()
           | Some v -> Alcotest.failf "io %f < direct %f" v w
           | None -> Alcotest.failf "direct holding missing from io")
         ())
  done

let test_ownership_path_product () =
  (* on a pure chain x -> y -> z, io(x, z) = a(x,y) * a(y,z): verified on
     chain-like fragments of the generated network *)
  let o = Lazy.force net in
  let checked = ref 0 in
  for x = 0 to DG.n o.G.graph - 1 do
    if DG.out_degree o.G.graph x = 1 then
      ignore
        (G.fold_owned o x
           (fun () y wxy ->
             if DG.out_degree o.G.graph y = 1 && DG.in_degree o.G.graph y = 1 then
               ignore
                 (G.fold_owned o y
                    (fun () z wyz ->
                      if DG.in_degree o.G.graph z = 1 && z <> x then begin
                        let io = Kgm_finance.Ownership.between o x z in
                        if abs_float (io -. (wxy *. wyz)) > 1e-6 then
                          Alcotest.failf "chain io %f <> %f" io (wxy *. wyz);
                        incr checked
                      end)
                    ()))
           ())
  done;
  check Alcotest.bool "checked at least one chain" true (!checked > 0)

let test_close_links_structure () =
  let o = Lazy.force net in
  let links = Kgm_finance.Close_links.compute o in
  check Alcotest.bool "nonempty" true (links <> []);
  (* every ownership link really is >= 20% integrated ownership *)
  List.iter
    (fun l ->
      match l.Kgm_finance.Close_links.reason with
      | `Owns ->
          let io =
            Kgm_finance.Ownership.between o l.Kgm_finance.Close_links.a
              l.Kgm_finance.Close_links.b
          in
          if io < Kgm_finance.Close_links.threshold -. 1e-9 then
            Alcotest.failf "owns link below threshold: %f" io
      | `Third_party h ->
          let ia =
            Kgm_finance.Ownership.between o h l.Kgm_finance.Close_links.a
          in
          let ib =
            Kgm_finance.Ownership.between o h l.Kgm_finance.Close_links.b
          in
          if ia < 0.2 -. 1e-9 || ib < 0.2 -. 1e-9 then
            Alcotest.failf "third party below threshold: %f %f" ia ib
      | `Owned -> ())
    links

(* ------------------------------------------------------------------ *)
(* Groups, partnerships, families *)

let test_company_groups () =
  let o = Lazy.force net in
  let groups = Kgm_finance.Groups.company_groups o in
  check Alcotest.bool "groups exist" true (groups <> []);
  (* heads are ultimate: no head is a member of another group *)
  let members = Hashtbl.create 64 in
  List.iter
    (fun g ->
      List.iter (fun m -> Hashtbl.replace members m ()) g.Kgm_finance.Groups.members)
    groups;
  List.iter
    (fun g ->
      if Hashtbl.mem members g.Kgm_finance.Groups.head then
        Alcotest.failf "head %d is controlled" g.Kgm_finance.Groups.head)
    groups

let test_partnerships_symmetric_distinct () =
  let o = Lazy.force net in
  let ps = Kgm_finance.Groups.partnerships ~min_share:0.2 o in
  List.iter
    (fun (a, b) ->
      if a = b then Alcotest.fail "self partnership";
      if List.mem (b, a) ps then Alcotest.fail "duplicate unordered pair")
    ps

let test_families () =
  let o = Lazy.force net in
  let fams = Kgm_finance.Groups.families o in
  List.iter
    (fun f ->
      check Alcotest.bool "at least two members" true
        (List.length f.Kgm_finance.Groups.persons >= 2);
      List.iter
        (fun p ->
          check Alcotest.bool "members are persons" true (p < o.G.n_persons))
        f.Kgm_finance.Groups.persons)
    fams;
  (* family holdings aggregate members' direct holdings *)
  match fams with
  | f :: _ ->
      let holdings = Kgm_finance.Groups.family_holdings o f in
      check Alcotest.bool "nonempty holdings" true (holdings <> [])
  | [] -> ()

let suite =
  [ ("generator deterministic", `Quick, test_deterministic);
    ("generator person/company partition", `Quick, test_partition);
    ("capital never oversubscribed", `Quick, test_weights_normalized);
    ("weights aligned with edges", `Quick, test_weights_aligned);
    qtest prop_generator_invariants;
    ("company graph expansion", `Quick, test_company_graph_expansion);
    ("EXP-1 topology shape", `Slow, test_stats_shape);
    ("control: direct majority", `Quick, test_control_simple_majority);
    ("control: transitive closure property", `Quick, test_control_closure);
    ("control: vadalog agreement", `Quick, test_control_vadalog_agreement);
    qtest prop_control_agreement;
    ("integrated ownership bounds", `Quick, test_ownership_bounds);
    ("io dominates direct ownership", `Quick, test_ownership_dominates_direct);
    ("io chain product", `Quick, test_ownership_path_product);
    ("close links thresholds", `Quick, test_close_links_structure);
    ("company groups ultimate heads", `Quick, test_company_groups);
    ("partnerships unordered distinct", `Quick, test_partnerships_symmetric_distinct);
    ("families", `Quick, test_families) ]

(* ------------------------------------------------------------------ *)
(* Temporal slicing (Sec. 2.1: time-dependent entities/associations) *)

open Kgm_common

let test_temporal_slice () =
  let module PG = Kgm_graphdb.Pgraph in
  let g = PG.create () in
  let a = PG.add_node g ~labels:[ "N" ] ~props:[] in
  let b =
    PG.add_node g ~labels:[ "N" ]
      ~props:[ ("validFrom", Value.date 2010 1 1); ("validTo", Value.date 2015 12 31) ]
  in
  let _e1 =
    PG.add_edge g ~label:"E" ~src:a ~dst:b
      ~props:[ ("validFrom", Value.date 2012 1 1) ]
  in
  (* before b exists *)
  let s2005 = Kgm_finance.Temporal.slice ~at:(Value.date 2005 6 1) g in
  Alcotest.(check int) "2005 nodes" 1 (PG.node_count s2005);
  Alcotest.(check int) "2005 edges" 0 (PG.edge_count s2005);
  (* b alive, edge not yet *)
  let s2011 = Kgm_finance.Temporal.slice ~at:(Value.date 2011 6 1) g in
  Alcotest.(check int) "2011 nodes" 2 (PG.node_count s2011);
  Alcotest.(check int) "2011 edges" 0 (PG.edge_count s2011);
  (* everything alive *)
  let s2013 = Kgm_finance.Temporal.slice ~at:(Value.date 2013 6 1) g in
  Alcotest.(check int) "2013 nodes" 2 (PG.node_count s2013);
  Alcotest.(check int) "2013 edges" 1 (PG.edge_count s2013);
  (* b expired: its incident edge must go too *)
  let s2020 = Kgm_finance.Temporal.slice ~at:(Value.date 2020 6 1) g in
  Alcotest.(check int) "2020 nodes" 1 (PG.node_count s2020);
  Alcotest.(check int) "2020 edges" 0 (PG.edge_count s2020)

let test_temporal_generator () =
  let module PG = Kgm_graphdb.Pgraph in
  let o = G.generate ~n:120 ~seed:4 () in
  let g = G.to_company_graph ~temporal:true o in
  let holds = PG.edges_with_label g "HOLDS" in
  Alcotest.(check bool) "every HOLDS dated" true
    (List.for_all (fun e -> PG.edge_prop g e "validFrom" <> None) holds);
  (* the as-of timeline is monotone in nodes (nodes are undated) and the
     boundary list is sorted *)
  let bs = Kgm_finance.Temporal.boundaries g in
  Alcotest.(check bool) "boundaries sorted" true
    (List.sort Value.compare bs = bs);
  Alcotest.(check bool) "some closures" true (List.length bs > 5);
  (* a slice before every validFrom has no HOLDS at all *)
  let early = Kgm_finance.Temporal.slice ~at:(Value.date 1980 1 1) g in
  Alcotest.(check int) "no early holdings" 0
    (List.length (PG.edges_with_label early "HOLDS"));
  (* a temporal instance still conforms to the schema *)
  let schema = Kgm_finance.Company_schema.load () in
  let dict = Kgmodel.Dictionary.create () in
  let sid = Kgmodel.Dictionary.store dict schema in
  let inst = Kgmodel.Instances.create dict in
  ignore (Kgmodel.Instances.store inst ~schema_oid:sid g)

let test_temporal_timeline_control () =
  (* the control relation as of successive years: computed on slices *)
  let module PG = Kgm_graphdb.Pgraph in
  let o = G.generate ~n:150 ~seed:21 () in
  let g = G.to_company_graph ~temporal:true o in
  let tl =
    Kgm_finance.Temporal.timeline g (fun slice ->
        List.length (PG.edges_with_label slice "HOLDS"))
  in
  Alcotest.(check bool) "timeline nonempty" true (tl <> []);
  (* sanity: the full (untimed) graph has at least as many holdings as
     any slice *)
  let full = List.length (PG.edges_with_label g "HOLDS") in
  List.iter
    (fun (_, n) ->
      if n > full then Alcotest.fail "slice larger than full graph")
    tl

let suite =
  suite
  @ [ ("temporal slice", `Quick, test_temporal_slice);
      ("temporal generator conformance", `Quick, test_temporal_generator);
      ("temporal control timeline", `Quick, test_temporal_timeline_control) ]
