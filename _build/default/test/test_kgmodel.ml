(* Tests for the kgmodel core: super-model validation, GSL parsing and
   round-trips, graph dictionaries, rendering, meta-model. *)

open Kgm_common
module SM = Kgmodel.Supermodel

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let company = Kgm_finance.Company_schema.load

(* ------------------------------------------------------------------ *)
(* Super-model *)

let base =
  SM.empty "t"
  |> Fun.flip SM.add_node
       (SM.node "Person" [ SM.attribute ~id:true "code" Value.TString ])
  |> Fun.flip SM.add_node (SM.node "Worker" [ SM.attribute "job" Value.TString ])
  |> Fun.flip SM.add_generalization
       (SM.generalization ~total:false ~disjoint:true "G" ~parent:"Person"
          ~children:[ "Worker" ])

let test_validate_company () =
  match SM.validate (company ()) with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es)

let expect_invalid s msg_part =
  match SM.validate s with
  | Error es ->
      check Alcotest.bool
        (Printf.sprintf "mentions %S" msg_part)
        true
        (List.exists (fun e -> contains e msg_part) es)
  | Ok () -> Alcotest.fail ("expected invalid: " ^ msg_part)

let test_validate_naming () =
  expect_invalid
    (SM.add_node (SM.empty "t") (SM.node "badName" []))
    "PascalCase";
  expect_invalid
    (SM.add_node (SM.empty "t")
       (SM.node "Ok" [ SM.attribute ~id:true "BadAttr" Value.TString ]))
    "camelCase";
  expect_invalid
    (SM.add_edge
       (SM.add_node
          (SM.add_node (SM.empty "t")
             (SM.node "A" [ SM.attribute ~id:true "x" Value.TString ]))
          (SM.node "B" [ SM.attribute ~id:true "y" Value.TString ]))
       (SM.edge "badEdge" ~from:"A" ~to_:"B"))
    "UPPER_CASE"

let test_validate_structure () =
  expect_invalid
    (SM.add_edge base (SM.edge "R" ~from:"Person" ~to_:"Ghost"))
    "missing node";
  expect_invalid
    (SM.add_node base (SM.node "Person" []))
    "duplicate node";
  expect_invalid
    (SM.add_node (SM.empty "t") (SM.node "Orphan" []))
    "no identifying attribute";
  (* two parents *)
  expect_invalid
    (SM.add_generalization
       (SM.add_node base (SM.node "Other" [ SM.attribute ~id:true "o" Value.TString ]))
       (SM.generalization "G2" ~parent:"Other" ~children:[ "Worker" ]))
    "two generalization parents";
  (* identifying optional *)
  expect_invalid
    (SM.add_node (SM.empty "t")
       (SM.node "A" [ SM.attribute ~id:true ~opt:true "x" Value.TString ]))
    "cannot be optional";
  (* generalization cycle *)
  let cyc =
    SM.empty "t"
    |> Fun.flip SM.add_node (SM.node "A" [ SM.attribute ~id:true "x" Value.TString ])
    |> Fun.flip SM.add_node (SM.node "B" [])
    |> Fun.flip SM.add_generalization
         (SM.generalization "G1" ~parent:"A" ~children:[ "B" ])
    |> Fun.flip SM.add_generalization
         (SM.generalization "G2" ~parent:"B" ~children:[ "A" ])
  in
  expect_invalid cyc "cycle"

let test_hierarchy_queries () =
  let s = company () in
  check (Alcotest.list Alcotest.string) "ancestors of PLC"
    [ "Business"; "LegalPerson"; "Person" ]
    (SM.ancestors s "PublicListedCompany");
  check Alcotest.bool "descendants of Person" true
    (List.mem "PublicListedCompany" (SM.descendants s "Person"));
  check Alcotest.int "roots" 5 (List.length (SM.roots s));
  let plc_attrs = SM.all_attributes s "PublicListedCompany" in
  check Alcotest.bool "inherits fiscalCode" true
    (List.exists (fun (a : SM.attribute) -> a.SM.at_name = "fiscalCode") plc_attrs);
  check Alcotest.int "identifier" 1
    (List.length (SM.identifier_of s "PublicListedCompany"))

let test_stats () =
  let stats = SM.stats (company ()) in
  check Alcotest.int "nodes" 11 (List.assoc "SM_Node" stats);
  check Alcotest.int "edges" 14 (List.assoc "SM_Edge" stats);
  check Alcotest.int "generalizations" 4 (List.assoc "SM_Generalization" stats);
  check Alcotest.int "intensional edges" 8
    (List.assoc "SM_Edge (intensional)" stats)

(* ------------------------------------------------------------------ *)
(* GSL *)

let test_gsl_parse_company () =
  let s = company () in
  check Alcotest.string "name" "company_kg" s.SM.s_name;
  match SM.find_edge s "HOLDS" with
  | Some e ->
      check Alcotest.bool "cardinalities" true
        (e.SM.e_opt1 && (not e.SM.e_fun1) && (not e.SM.e_opt2) && not e.SM.e_fun2)
  | None -> Alcotest.fail "HOLDS missing"

let test_gsl_roundtrip_company () =
  let s = company () in
  let s2 = Kgmodel.Gsl.parse (Kgmodel.Gsl.print s) in
  check Alcotest.bool "identical" true (s = s2)

let test_gsl_errors () =
  let expect_parse_error src =
    match Kgm_error.guard (fun () -> Kgmodel.Gsl.parse src) with
    | Error { Kgm_error.stage = Kgm_error.Parse; _ } -> ()
    | _ -> Alcotest.fail ("expected parse error: " ^ src)
  in
  expect_parse_error "schema x { node A { a: unknown_type; } }";
  expect_parse_error "schema x { node A { a: int @ghost; } }";
  expect_parse_error "schema x { edge R from A to B [N..1 -> 1..1]; }";
  expect_parse_error "schema x { blurb A; }";
  match
    Kgm_error.guard (fun () ->
        Kgmodel.Gsl.parse_validated "schema x { node lower { a: int @id; } }")
  with
  | Error { Kgm_error.stage = Kgm_error.Validate; _ } -> ()
  | _ -> Alcotest.fail "expected validation error"

let prop_gsl_roundtrip =
  QCheck.Test.make ~name:"GSL print/parse round-trip" ~count:60 Gen_schema.arb
    (function
      | None -> true (* generator produced an invalid draft; skip *)
      | Some s ->
          let s2 = Kgmodel.Gsl.parse (Kgmodel.Gsl.print s) in
          s = s2)

(* ------------------------------------------------------------------ *)
(* Dictionary *)

let norm (x : SM.t) =
  { x with
    SM.nodes = List.sort compare x.SM.nodes;
    edges = List.sort compare x.SM.edges;
    generalizations = List.sort compare x.SM.generalizations }

let test_dictionary_roundtrip () =
  let dict = Kgmodel.Dictionary.create () in
  let s = company () in
  let sid = Kgmodel.Dictionary.store dict s in
  check Alcotest.bool "registered" true
    (Kgmodel.Dictionary.schemas dict = [ (sid, "company_kg") ]);
  check Alcotest.bool "find by name" true
    (Kgmodel.Dictionary.find_schema dict "company_kg" = Some sid);
  let s2 = Kgmodel.Dictionary.load dict sid in
  check Alcotest.bool "roundtrip" true (norm s = norm s2)

let test_dictionary_two_schemas_isolated () =
  let dict = Kgmodel.Dictionary.create () in
  let s1 = company () in
  let s2 = Kgmodel.Gsl.parse "schema other { node A { x: int @id; } }" in
  let id1 = Kgmodel.Dictionary.store dict s1 in
  let id2 = Kgmodel.Dictionary.store dict s2 in
  check Alcotest.bool "s1 intact" true (norm (Kgmodel.Dictionary.load dict id1) = norm s1);
  check Alcotest.bool "s2 intact" true (norm (Kgmodel.Dictionary.load dict id2) = norm s2);
  check Alcotest.bool "element counts differ" true
    (Kgmodel.Dictionary.element_count dict id1
     > Kgmodel.Dictionary.element_count dict id2)

let prop_dictionary_roundtrip =
  QCheck.Test.make ~name:"dictionary store/load round-trip" ~count:40
    Gen_schema.arb
    (function
      | None -> true
      | Some s ->
          let dict = Kgmodel.Dictionary.create () in
          let sid = Kgmodel.Dictionary.store dict s in
          norm (Kgmodel.Dictionary.load dict sid) = norm s)

(* ------------------------------------------------------------------ *)
(* Rendering and meta-model *)

let test_render_dot () =
  let dot = Kgmodel.Render.to_dot (company ()) in
  check Alcotest.bool "digraph" true (contains dot "digraph company_kg");
  check Alcotest.bool "intensional dashed" true (contains dot "style=dashed");
  check Alcotest.bool "generalization arrow" true (contains dot "arrowhead=onormal");
  check Alcotest.bool "cardinality labels" true (contains dot "taillabel=\"0..N\"")

let test_render_ascii () =
  let txt = Kgmodel.Render.to_ascii (company ()) in
  check Alcotest.bool "node block" true (contains txt "PhysicalPerson");
  check Alcotest.bool "identifying lollipop" true (contains txt "[*] fiscalCode");
  check Alcotest.bool "generalization" true (contains txt "<|--")

let test_grapheme_legend () =
  let l = Kgmodel.Render.grapheme_legend () in
  List.iter
    (fun c -> check Alcotest.bool c true (contains l c))
    [ "SM_Node"; "SM_Edge"; "SM_Attribute"; "SM_Generalization" ]

let test_metamodel () =
  check Alcotest.bool "SM_Node is an entity" true
    (Kgmodel.Metamodel.meta_construct_of "SM_Node"
     = Some Kgmodel.Metamodel.MM_Entity);
  check Alcotest.bool "SM_FROM is a link" true
    (Kgmodel.Metamodel.meta_construct_of "SM_FROM"
     = Some Kgmodel.Metamodel.MM_Link);
  check Alcotest.bool "isOpt is a property" true
    (Kgmodel.Metamodel.meta_construct_of "isOpt"
     = Some Kgmodel.Metamodel.MM_Property);
  check Alcotest.bool "unknown" true
    (Kgmodel.Metamodel.meta_construct_of "Nope" = None);
  let dot = Kgmodel.Metamodel.render_gamma_mm () in
  check Alcotest.bool "meta-model figure" true (contains dot "MM_Entity");
  let smd = Kgmodel.Metamodel.render_super_model_dictionary () in
  check Alcotest.bool "super-model figure" true (contains smd "SM_Generalization")

let suite =
  [ ("validate company schema", `Quick, test_validate_company);
    ("validate naming conventions", `Quick, test_validate_naming);
    ("validate structural rules", `Quick, test_validate_structure);
    ("hierarchy queries", `Quick, test_hierarchy_queries);
    ("construct census", `Quick, test_stats);
    ("gsl parse company", `Quick, test_gsl_parse_company);
    ("gsl roundtrip company", `Quick, test_gsl_roundtrip_company);
    ("gsl error reporting", `Quick, test_gsl_errors);
    qtest prop_gsl_roundtrip;
    ("dictionary roundtrip", `Quick, test_dictionary_roundtrip);
    ("dictionary isolation", `Quick, test_dictionary_two_schemas_isolated);
    qtest prop_dictionary_roundtrip;
    ("render dot", `Quick, test_render_dot);
    ("render ascii", `Quick, test_render_ascii);
    ("grapheme legend", `Quick, test_grapheme_legend);
    ("meta-model", `Quick, test_metamodel) ]

(* ------------------------------------------------------------------ *)
(* GSL parser edge cases *)

let test_gsl_comments_and_whitespace () =
  let s =
    Kgmodel.Gsl.parse
      {|
% the design, annotated
schema c {   % inline comment
  node A {
    x: int @id;   % identifying
  }
}
|}
  in
  check Alcotest.string "name" "c" s.SM.s_name;
  check Alcotest.int "one node" 1 (List.length s.SM.nodes)

let test_gsl_empty_bodies () =
  let s =
    Kgmodel.Gsl.parse
      "schema c { node A { x: int @id; } node B {} edge R from A to B; }"
  in
  check Alcotest.int "two nodes" 2 (List.length s.SM.nodes);
  (match SM.find_edge s "R" with
   | Some e ->
       check Alcotest.bool "default cardinalities 0..N -> 0..N" true
         (e.SM.e_opt1 && (not e.SM.e_fun1) && e.SM.e_opt2 && not e.SM.e_fun2)
   | None -> Alcotest.fail "edge missing")

let test_gsl_all_modifiers_roundtrip () =
  let src =
    {|schema m {
  node A {
    k: string @id @unique;
    e: string @enum("x", "y z");
    d: int @default(7);
    r: float @opt @range(0.5, none);
    i: int @intensional;
  }
}
|}
  in
  let s = Kgmodel.Gsl.parse src in
  let s2 = Kgmodel.Gsl.parse (Kgmodel.Gsl.print s) in
  check Alcotest.bool "modifiers roundtrip" true (s = s2);
  match SM.find_node s "A" with
  | Some n ->
      let attr name =
        List.find (fun (a : SM.attribute) -> a.SM.at_name = name) n.SM.n_attrs
      in
      check Alcotest.bool "enum with space" true
        ((attr "e").SM.at_modifiers = [ SM.Enum [ "x"; "y z" ] ]);
      check Alcotest.bool "default" true
        ((attr "d").SM.at_modifiers = [ SM.Default (Value.int 7) ]);
      check Alcotest.bool "half-open range" true
        ((attr "r").SM.at_modifiers = [ SM.Range (Some 0.5, None) ]);
      check Alcotest.bool "intensional" true (attr "i").SM.at_intensional
  | None -> Alcotest.fail "A missing"

let test_render_deterministic () =
  let s = company () in
  check Alcotest.bool "dot deterministic" true
    (Kgmodel.Render.to_dot s = Kgmodel.Render.to_dot s);
  check Alcotest.bool "ascii deterministic" true
    (Kgmodel.Render.to_ascii s = Kgmodel.Render.to_ascii s)

let suite =
  suite
  @ [ ("gsl comments/whitespace", `Quick, test_gsl_comments_and_whitespace);
      ("gsl empty bodies and defaults", `Quick, test_gsl_empty_bodies);
      ("gsl all modifiers roundtrip", `Quick, test_gsl_all_modifiers_roundtrip);
      ("render deterministic", `Quick, test_render_deterministic) ]
