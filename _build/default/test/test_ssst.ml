(* Tests for SSST (Algorithm 1) and the target models: the MetaLog
   mapping programs of Secs. 5.2/5.3 are differentially tested against
   the native OCaml baselines, on the Company KG and on random
   super-schemas. *)

open Kgm_common
module SM = Kgmodel.Supermodel

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let company = Kgm_finance.Company_schema.load

let translate_pg ?strategy s =
  let dict = Kgmodel.Dictionary.create () in
  let sid = Kgmodel.Dictionary.store dict s in
  let outcome =
    Kgmodel.Ssst.translate dict (Kgm_targets.Pg_model.mapping ?strategy ()) sid
  in
  Kgm_targets.Pg_model.decode dict outcome.Kgmodel.Ssst.target_oid

let translate_rel s =
  let dict = Kgmodel.Dictionary.create () in
  let sid = Kgmodel.Dictionary.store dict s in
  let outcome =
    Kgmodel.Ssst.translate dict (Kgm_targets.Relational_model.mapping ()) sid
  in
  Kgm_targets.Relational_model.decode dict outcome.Kgmodel.Ssst.target_oid

(* ------------------------------------------------------------------ *)
(* PG model (Sec. 5.2 / Fig. 6) *)

let test_pg_differential_company () =
  let s = company () in
  let derived = translate_pg s in
  let native = Kgm_targets.Pg_model.translate_native s in
  check Alcotest.bool "metalog = native" true
    (Kgm_targets.Pg_model.equal_schema derived native)

let test_pg_multilabel_accumulation () =
  (* Example 5.1: descendants accumulate every ancestor label *)
  let s = translate_pg (company ()) in
  let labels_of primary =
    List.find_map
      (fun nk ->
        match nk.Kgm_targets.Pg_model.nk_labels with
        | p :: rest when p = primary -> Some rest
        | _ -> None)
      s.Kgm_targets.Pg_model.node_kinds
  in
  check (Alcotest.option (Alcotest.list Alcotest.string)) "PLC labels"
    (Some [ "Business"; "LegalPerson"; "Person" ])
    (labels_of "PublicListedCompany");
  check (Alcotest.option (Alcotest.list Alcotest.string)) "Person alone"
    (Some []) (labels_of "Person")

let test_pg_attribute_inheritance () =
  (* Example 5.1/DG2: children inherit ancestor attributes *)
  let s = translate_pg (company ()) in
  let props_of primary =
    List.find_map
      (fun nk ->
        match nk.Kgm_targets.Pg_model.nk_labels with
        | p :: _ when p = primary ->
            Some (List.map (fun pr -> pr.Kgm_targets.Pg_model.p_name)
                    nk.Kgm_targets.Pg_model.nk_props)
        | _ -> None)
      s.Kgm_targets.Pg_model.node_kinds
  in
  match props_of "StockShare" with
  | Some props ->
      check Alcotest.bool "own prop" true (List.mem "numberOfStocks" props);
      check Alcotest.bool "inherited percentage" true (List.mem "percentage" props);
      check Alcotest.bool "inherited id" true (List.mem "shareId" props)
  | None -> Alcotest.fail "StockShare missing"

let test_pg_edge_inheritance () =
  (* Example 5.2/DG3: HOLDS duplicated onto descendants of both ends *)
  let s = translate_pg (company ()) in
  let holds =
    List.filter
      (fun rk -> rk.Kgm_targets.Pg_model.rk_name = "HOLDS")
      s.Kgm_targets.Pg_model.rel_kinds
  in
  let pairs =
    List.map
      (fun rk -> (rk.Kgm_targets.Pg_model.rk_from, rk.Kgm_targets.Pg_model.rk_to))
      holds
  in
  check Alcotest.bool "direct" true (List.mem ("Person", "Share") pairs);
  check Alcotest.bool "from descendant" true
    (List.mem ("PublicListedCompany", "Share") pairs);
  check Alcotest.bool "to descendant" true (List.mem ("Person", "StockShare") pairs);
  (* the paper's rules do not compose both inheritances in one edge *)
  check Alcotest.bool "no double descent" false
    (List.mem ("PublicListedCompany", "StockShare") pairs)

let test_pg_parent_edge_strategy () =
  let s = translate_pg ~strategy:"parent-edge" (company ()) in
  let native = Kgm_targets.Pg_model.translate_native ~strategy:"parent-edge" (company ()) in
  check Alcotest.bool "differential" true
    (Kgm_targets.Pg_model.equal_schema s native);
  let is_a =
    List.filter
      (fun rk -> rk.Kgm_targets.Pg_model.rk_name = "IS_A")
      s.Kgm_targets.Pg_model.rel_kinds
  in
  check Alcotest.int "six IS_A links" 6 (List.length is_a);
  (* single labels in this strategy *)
  List.iter
    (fun nk ->
      check Alcotest.int "one label" 1
        (List.length nk.Kgm_targets.Pg_model.nk_labels))
    s.Kgm_targets.Pg_model.node_kinds

let test_pg_unknown_strategy () =
  match
    Kgm_error.guard (fun () -> Kgm_targets.Pg_model.mapping ~strategy:"bogus" ())
  with
  | Error _ -> ()
  | Ok m -> (
      (* mapping is lazy; building the program must fail *)
      match Kgm_error.guard (fun () -> m.Kgmodel.Ssst.eliminate ~src:1 ~dst:2) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "expected strategy error")

let test_pg_enforcement_script () =
  let s = translate_pg (company ()) in
  let script = Kgm_targets.Pg_model.enforcement_script s in
  check Alcotest.bool "unique fiscalCode" true
    (contains script
       "CREATE CONSTRAINT person_fiscalCode_unique IF NOT EXISTS FOR (n:Person) REQUIRE n.fiscalCode IS UNIQUE;");
  check Alcotest.bool "mandatory right on HOLDS" true
    (contains script "()-[r:HOLDS]-() REQUIRE r.right IS NOT NULL")

let test_pg_intensional_flag_carried () =
  let s = translate_pg (company ()) in
  let controls =
    List.find
      (fun rk -> rk.Kgm_targets.Pg_model.rk_name = "CONTROLS")
      s.Kgm_targets.Pg_model.rel_kinds
  in
  check Alcotest.bool "intensional" true controls.Kgm_targets.Pg_model.rk_intensional;
  let family =
    List.find
      (fun nk -> List.hd nk.Kgm_targets.Pg_model.nk_labels = "Family")
      s.Kgm_targets.Pg_model.node_kinds
  in
  check Alcotest.bool "family intensional" true
    family.Kgm_targets.Pg_model.nk_intensional

let prop_pg_differential =
  QCheck.Test.make ~name:"SSST PG mapping = native (random schemas)" ~count:25
    Gen_schema.arb
    (function
      | None -> true
      | Some s ->
          Kgm_targets.Pg_model.equal_schema (translate_pg s)
            (Kgm_targets.Pg_model.translate_native s))

(* ------------------------------------------------------------------ *)
(* Relational model (Sec. 5.3 / Fig. 8) *)

let test_rel_differential_company () =
  let s = company () in
  check Alcotest.bool "metalog = native" true
    (Kgm_targets.Relational_model.equal_schema (translate_rel s)
       (Kgm_targets.Relational_model.translate_native s))

let test_rel_schema_valid () =
  let sch = translate_rel (company ()) in
  match Kgm_relational.Rschema.validate sch with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es)

let find_rel sch name =
  match Kgm_relational.Rschema.find_relation sch name with
  | Some r -> r
  | None -> Alcotest.fail ("missing relation " ^ name)

let test_rel_many_to_many_bridge () =
  let sch = translate_rel (company ()) in
  (* HAS_ROLE is many-to-many: a bridge relation with two FKs *)
  let bridge = find_rel sch "HAS_ROLE" in
  let cols =
    List.map (fun (f : Kgm_relational.Rschema.field) -> f.Kgm_relational.Rschema.f_name)
      bridge.Kgm_relational.Rschema.r_fields
  in
  check Alcotest.bool "role attr on bridge" true (List.mem "role" cols);
  check Alcotest.bool "person fk col" true (List.mem "person_fiscalCode" cols);
  let fks =
    List.filter
      (fun (fk : Kgm_relational.Rschema.foreign_key) ->
        fk.Kgm_relational.Rschema.fk_source = "HAS_ROLE")
      sch.Kgm_relational.Rschema.foreign_keys
  in
  check Alcotest.int "two fks" 2 (List.length fks)

let test_rel_one_to_many_fk () =
  let sch = translate_rel (company ()) in
  (* RESIDES is [0..1 -> 0..N]: FK on Person, nullable *)
  let person = find_rel sch "Person" in
  (match Kgm_relational.Rschema.find_field person "place_addressId" with
   | Some f -> check Alcotest.bool "nullable fk col" true f.Kgm_relational.Rschema.f_nullable
   | None -> Alcotest.fail "place fk column missing");
  (* BELONGS_TO is [1..1 -> 0..N]: FK on Share, non-nullable *)
  let share = find_rel sch "Share" in
  match Kgm_relational.Rschema.find_field share "business_fiscalCode" with
  | Some f -> check Alcotest.bool "mandatory fk col" false f.Kgm_relational.Rschema.f_nullable
  | None -> Alcotest.fail "share fk column missing"

let test_rel_generalization_fks () =
  let sch = translate_rel (company ()) in
  let is_a =
    List.filter
      (fun (fk : Kgm_relational.Rschema.foreign_key) ->
        contains fk.Kgm_relational.Rschema.fk_name "IS_A")
      sch.Kgm_relational.Rschema.foreign_keys
  in
  check Alcotest.int "one fk per child" 6 (List.length is_a);
  (* child PK = inherited parent key *)
  let plc = find_rel sch "PublicListedCompany" in
  let keys = Kgm_relational.Rschema.key_fields plc in
  check (Alcotest.list Alcotest.string) "PLC key" [ "fiscalCode" ]
    (List.map (fun (f : Kgm_relational.Rschema.field) -> f.Kgm_relational.Rschema.f_name) keys)

let test_rel_self_edge_bridge () =
  let sch = translate_rel (company ()) in
  let rel = find_rel sch "IS_RELATED_TO" in
  let cols =
    List.map (fun (f : Kgm_relational.Rschema.field) -> f.Kgm_relational.Rschema.f_name)
      rel.Kgm_relational.Rschema.r_fields
  in
  check Alcotest.bool "two distinct columns" true
    (List.mem "physical_person_fiscalCode" cols
     && List.mem "physical_person_fiscalCode_1" cols)

let test_rel_enum_modifier_travels () =
  let sch = translate_rel (company ()) in
  let holds = find_rel sch "HOLDS" in
  match Kgm_relational.Rschema.find_field holds "right" with
  | Some f ->
      check (Alcotest.list Alcotest.string) "enum preserved"
        [ "ownership"; "bareOwnership"; "usufruct" ] f.Kgm_relational.Rschema.f_enum
  | None -> Alcotest.fail "right column missing"

let test_rel_ddl () =
  let sch = translate_rel (company ()) in
  let ddl = Kgm_targets.Relational_model.ddl sch in
  check Alcotest.bool "tables" true (contains ddl "CREATE TABLE Person");
  check Alcotest.bool "fks" true (contains ddl "FOREIGN KEY");
  check Alcotest.bool "enum check" true (contains ddl "CHECK (right IN (")

let prop_rel_differential =
  QCheck.Test.make ~name:"SSST relational mapping = native (random schemas)"
    ~count:25 Gen_schema.arb
    (function
      | None -> true
      | Some s ->
          Kgm_targets.Relational_model.equal_schema (translate_rel s)
            (Kgm_targets.Relational_model.translate_native s))

let prop_rel_valid =
  QCheck.Test.make ~name:"translated relational schemas validate" ~count:25
    Gen_schema.arb
    (function
      | None -> true
      | Some s ->
          (match Kgm_relational.Rschema.validate (translate_rel s) with
           | Ok () -> true
           | Error _ -> false))

(* ------------------------------------------------------------------ *)
(* Triple and CSV targets *)

let test_rdfs () =
  let schema = Kgm_targets.Triple_model.translate_native (company ()) in
  let rdfs = Kgm_targets.Triple_model.to_rdfs schema in
  check Alcotest.bool "subclass preserved" true
    (contains rdfs ":PublicListedCompany a rdfs:Class ;\n    rdfs:subClassOf :Business");
  check Alcotest.bool "object property" true
    (contains rdfs ":HOLDS a owl:ObjectProperty");
  check Alcotest.bool "datatype property" true
    (contains rdfs ":Person_fiscalCode a owl:DatatypeProperty");
  check Alcotest.bool "reified statement class" true
    (contains rdfs ":HOLDSStatement a rdfs:Class");
  check Alcotest.bool "intensional comment" true
    (contains rdfs "rdfs:comment \"intensional\"")

let test_csv () =
  let bundle = Kgm_targets.Csv_model.translate_native (company ()) in
  let names = List.map (fun f -> f.Kgm_targets.Csv_model.filename)
      bundle.Kgm_targets.Csv_model.files in
  check Alcotest.bool "person file" true (List.mem "person.csv" names);
  check Alcotest.bool "bridge file" true (List.mem "has_role.csv" names);
  check Alcotest.bool "manifest links" true
    (contains bundle.Kgm_targets.Csv_model.manifest "link ")

let test_csv_instance_render () =
  let sch =
    Kgm_relational.Rschema.add_relation Kgm_relational.Rschema.empty
      (Kgm_relational.Rschema.relation "t"
         [ Kgm_relational.Rschema.field ~key:true "id" Value.TInt;
           Kgm_relational.Rschema.field ~nullable:true "txt" Value.TString ])
  in
  let db = Kgm_relational.Instance.create sch in
  Kgm_relational.Instance.insert db "t" [| Value.int 1; Value.string "a,b" |];
  Kgm_relational.Instance.insert db "t" [| Value.int 2; Value.Null 1 |];
  match Kgm_targets.Csv_model.render_instance db with
  | [ ("t.csv", doc) ] ->
      check Alcotest.bool "quoted comma" true (contains doc "\"\"\"a,b\"\"\"");
      check Alcotest.bool "null empty" true (contains doc "2,\n")
  | _ -> Alcotest.fail "unexpected bundle"

(* intermediate schema S- inspection: Algorithm 1 really is two phases *)
let test_intermediate_schema () =
  let dict = Kgmodel.Dictionary.create () in
  let sid = Kgmodel.Dictionary.store dict (company ()) in
  let outcome = Kgmodel.Ssst.translate dict (Kgm_targets.Pg_model.mapping ()) sid in
  let inter = Kgmodel.Dictionary.element_count dict outcome.Kgmodel.Ssst.intermediate_oid in
  let target = Kgmodel.Dictionary.element_count dict outcome.Kgmodel.Ssst.target_oid in
  let source = Kgmodel.Dictionary.element_count dict sid in
  check Alcotest.bool "S- grows (inheritance)" true (inter > source);
  check Alcotest.bool "S' nonempty" true (target > 0);
  check Alcotest.bool "phases ran" true
    (outcome.Kgmodel.Ssst.eliminate_stats.Kgm_vadalog.Engine.new_facts > 0
     && outcome.Kgmodel.Ssst.copy_stats.Kgm_vadalog.Engine.new_facts > 0)

let suite =
  [ ("PG differential: company (Fig. 6)", `Quick, test_pg_differential_company);
    ("PG multi-label accumulation (Ex. 5.1)", `Quick, test_pg_multilabel_accumulation);
    ("PG attribute inheritance", `Quick, test_pg_attribute_inheritance);
    ("PG edge inheritance (Ex. 5.2)", `Quick, test_pg_edge_inheritance);
    ("PG parent-edge strategy", `Quick, test_pg_parent_edge_strategy);
    ("PG unknown strategy rejected", `Quick, test_pg_unknown_strategy);
    ("PG enforcement script", `Quick, test_pg_enforcement_script);
    ("PG intensional flags carried", `Quick, test_pg_intensional_flag_carried);
    qtest prop_pg_differential;
    ("relational differential: company (Fig. 8)", `Quick, test_rel_differential_company);
    ("relational schema validates", `Quick, test_rel_schema_valid);
    ("many-to-many bridging", `Quick, test_rel_many_to_many_bridge);
    ("one-to-many FK direction", `Quick, test_rel_one_to_many_fk);
    ("generalization FKs", `Quick, test_rel_generalization_fks);
    ("self-edge bridge columns", `Quick, test_rel_self_edge_bridge);
    ("enum modifier travels", `Quick, test_rel_enum_modifier_travels);
    ("relational DDL", `Quick, test_rel_ddl);
    qtest prop_rel_differential;
    qtest prop_rel_valid;
    ("RDF-S target", `Quick, test_rdfs);
    ("CSV target", `Quick, test_csv);
    ("CSV instance rendering", `Quick, test_csv_instance_render);
    ("intermediate schema S-", `Quick, test_intermediate_schema) ]

(* ------------------------------------------------------------------ *)
(* Default / Range modifiers travel into the DDL *)

let test_default_range_modifiers () =
  let s =
    Kgmodel.Gsl.parse_validated
      {|
schema m {
  node Account {
    accId: string @id;
    balance: float @range(0.0, 1000000.0) @default(0.0);
    status: string @default("open") @enum("open", "closed");
  }
}
|}
  in
  let derived = translate_rel s in
  let native = Kgm_targets.Relational_model.translate_native s in
  check Alcotest.bool "differential with modifiers" true
    (Kgm_targets.Relational_model.equal_schema derived native);
  let account =
    match Kgm_relational.Rschema.find_relation derived "Account" with
    | Some r -> r
    | None -> Alcotest.fail "Account missing"
  in
  (match Kgm_relational.Rschema.find_field account "balance" with
   | Some f ->
       check Alcotest.bool "range carried" true
         (f.Kgm_relational.Rschema.f_range = (Some 0., Some 1_000_000.));
       check Alcotest.bool "default carried" true
         (f.Kgm_relational.Rschema.f_default = Some (Value.float 0.))
   | None -> Alcotest.fail "balance missing");
  let ddl = Kgm_targets.Relational_model.ddl derived in
  check Alcotest.bool "DEFAULT clause" true (contains ddl "DEFAULT 0");
  check Alcotest.bool "range CHECK" true
    (contains ddl "CHECK (balance >= 0 AND balance <= 1000000)");
  check Alcotest.bool "string default" true (contains ddl "DEFAULT 'open'")

let suite =
  suite @ [ ("default/range modifiers in DDL", `Quick, test_default_range_modifiers) ]
