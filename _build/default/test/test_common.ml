(* Unit and property tests for Kgm_common: values, OIDs, naming. *)

open Kgm_common

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Value *)

let value_gen : Value.t QCheck.Gen.t =
  QCheck.Gen.(
    sized (fun _ ->
        oneof
          [ map Value.int int;
            map Value.float (float_bound_inclusive 1e6);
            map Value.string string_printable;
            map Value.bool bool;
            (let* y = int_range 1900 2100 in
             let* m = int_range 1 12 in
             let* d = int_range 1 28 in
             return (Value.date y m d));
            map (fun i -> Value.Null i) small_nat ]))

let value_arb = QCheck.make ~print:Value.to_string value_gen

let test_value_compare_refl () =
  List.iter
    (fun v -> check Alcotest.int "refl" 0 (Value.compare v v))
    [ Value.int 3; Value.float 2.5; Value.string "x"; Value.bool true;
      Value.date 2022 3 29; Value.Null 7;
      Value.List [ Value.int 1; Value.string "a" ] ]

let test_value_order_across_kinds () =
  (* distinct constructors are totally ordered, deterministically *)
  let vs =
    [ Value.int 1; Value.float 1.; Value.string "1"; Value.bool true;
      Value.date 2000 1 1; Value.Null 1 ]
  in
  let sorted = List.sort Value.compare vs in
  check Alcotest.int "same length" (List.length vs) (List.length sorted);
  check Alcotest.bool "stable" true
    (List.sort Value.compare sorted = sorted)

let test_float_coercion () =
  check (Alcotest.option (Alcotest.float 1e-9)) "int as float" (Some 3.)
    (Value.as_float (Value.int 3));
  check (Alcotest.option (Alcotest.float 1e-9)) "float" (Some 2.5)
    (Value.as_float (Value.float 2.5));
  check (Alcotest.option (Alcotest.float 1e-9)) "string" None
    (Value.as_float (Value.string "x"))

let test_conforms () =
  check Alcotest.bool "int ok" true (Value.conforms Value.TInt (Value.int 1));
  check Alcotest.bool "int as float ok" true
    (Value.conforms Value.TFloat (Value.int 1));
  check Alcotest.bool "string not int" false
    (Value.conforms Value.TInt (Value.string "a"));
  check Alcotest.bool "null conforms anywhere" true
    (Value.conforms Value.TDate (Value.Null 3));
  check Alcotest.bool "any accepts" true
    (Value.conforms Value.TAny (Value.bool false))

let test_parse () =
  check Alcotest.bool "int" true (Value.parse Value.TInt "42" = Some (Value.int 42));
  check Alcotest.bool "float" true
    (Value.parse Value.TFloat "1.5" = Some (Value.float 1.5));
  check Alcotest.bool "date" true
    (Value.parse Value.TDate "2022-03-29" = Some (Value.date 2022 3 29));
  check Alcotest.bool "bad date" true (Value.parse Value.TDate "2022-13-01" = None);
  check Alcotest.bool "bool" true (Value.parse Value.TBool "true" = Some (Value.bool true));
  check Alcotest.bool "any int" true (Value.parse Value.TAny "7" = Some (Value.int 7));
  check Alcotest.bool "any string" true
    (Value.parse Value.TAny "x y" = Some (Value.string "x y"))

let test_ty_roundtrip () =
  List.iter
    (fun ty ->
      check Alcotest.bool "ty roundtrip" true
        (Value.ty_of_string (Value.ty_to_string ty) = Some ty))
    [ Value.TInt; Value.TFloat; Value.TString; Value.TBool; Value.TDate;
      Value.TId; Value.TAny ]

let prop_compare_antisym =
  QCheck.Test.make ~name:"Value.compare antisymmetric" ~count:300
    (QCheck.pair value_arb value_arb)
    (fun (a, b) ->
      let c1 = Value.compare a b and c2 = Value.compare b a in
      (c1 = 0 && c2 = 0) || (c1 > 0 && c2 < 0) || (c1 < 0 && c2 > 0))

let prop_compare_trans =
  QCheck.Test.make ~name:"Value.compare transitive" ~count:300
    (QCheck.triple value_arb value_arb value_arb)
    (fun (a, b, c) ->
      let sorted = List.sort Value.compare [ a; b; c ] in
      match sorted with
      | [ x; y; z ] -> Value.compare x y <= 0 && Value.compare y z <= 0
      | _ -> false)

let prop_equal_hash =
  QCheck.Test.make ~name:"Value equal implies same hash" ~count:300
    (QCheck.pair value_arb value_arb)
    (fun (a, b) -> (not (Value.equal a b)) || Value.hash a = Value.hash b)

(* ------------------------------------------------------------------ *)
(* Oid *)

let test_oid_fresh_distinct () =
  let g = Oid.make_gen () in
  let a = Oid.fresh g and b = Oid.fresh g in
  check Alcotest.bool "distinct" false (Oid.equal a b);
  check Alcotest.int "counter" 2 (Oid.counter_value g)

let test_oid_named_hint_cosmetic () =
  let g = Oid.make_gen () in
  let a = Oid.fresh_named g "hint" in
  let b = Oid.fresh g in
  check Alcotest.bool "hint does not equal later oid" false (Oid.equal a b);
  check Alcotest.bool "printed hint" true
    (String.length (Oid.to_string a) > String.length "#0")

let test_skolem_deterministic () =
  let a = Oid.skolem "f" [ "x"; "y" ] in
  let b = Oid.skolem "f" [ "x"; "y" ] in
  check Alcotest.bool "same" true (Oid.equal a b);
  check Alcotest.bool "hash same" true (Oid.hash a = Oid.hash b)

let test_skolem_injective () =
  check Alcotest.bool "args differ" false
    (Oid.equal (Oid.skolem "f" [ "x" ]) (Oid.skolem "f" [ "y" ]));
  check Alcotest.bool "functors range-disjoint" false
    (Oid.equal (Oid.skolem "f" [ "x" ]) (Oid.skolem "g" [ "x" ]));
  check Alcotest.bool "fresh vs skolem disjoint" false
    (Oid.equal (Oid.fresh (Oid.make_gen ())) (Oid.skolem "f" []))

let test_skolem_is_skolem () =
  check Alcotest.bool "skolem" true (Oid.is_skolem (Oid.skolem "f" []));
  check Alcotest.bool "fresh" false (Oid.is_skolem (Oid.fresh (Oid.make_gen ())))

(* ------------------------------------------------------------------ *)
(* Names *)

let test_pascal () =
  check Alcotest.bool "ok" true (Names.is_pascal_case "PublicListedCompany");
  check Alcotest.bool "lower start" false (Names.is_pascal_case "person");
  check Alcotest.bool "underscore" false (Names.is_pascal_case "Public_Listed");
  check Alcotest.bool "empty" false (Names.is_pascal_case "")

let test_upper () =
  check Alcotest.bool "ok" true (Names.is_upper_case "BELONGS_TO_FAMILY");
  check Alcotest.bool "digits ok" true (Names.is_upper_case "OWNS_20");
  check Alcotest.bool "lower" false (Names.is_upper_case "belongs_to");
  check Alcotest.bool "mixed" false (Names.is_upper_case "BelongsTo")

let test_camel () =
  check Alcotest.bool "ok" true (Names.is_camel_case "numberOfStakeholders");
  check Alcotest.bool "upper start" false (Names.is_camel_case "Number");
  check Alcotest.bool "underscore" false (Names.is_camel_case "number_of")

let test_snake () =
  check Alcotest.string "snake" "public_listed_company"
    (Names.to_snake_case "PublicListedCompany");
  check Alcotest.string "pascal" "PublicListedCompany"
    (Names.to_pascal_case "public_listed_company");
  check Alcotest.string "single" "person" (Names.to_snake_case "Person")

let test_sanitize () =
  check Alcotest.string "spaces" "a_b" (Names.sanitize_identifier "a b");
  check Alcotest.string "leading digit" "x1a" (Names.sanitize_identifier "1a");
  check Alcotest.string "empty" "x" (Names.sanitize_identifier "");
  check Alcotest.string "clean" "ok_name" (Names.sanitize_identifier "ok_name")

(* ------------------------------------------------------------------ *)
(* Kgm_error *)

let test_error_pp () =
  (try Kgm_error.parse_error "bad %d" 42
   with Kgm_error.Error e ->
     check Alcotest.string "pp" "[parse] bad 42" (Kgm_error.to_string e));
  (match Kgm_error.guard (fun () -> Kgm_error.reason_error "boom") with
   | Error e -> check Alcotest.string "guard" "[reason] boom" (Kgm_error.to_string e)
   | Ok _ -> Alcotest.fail "expected error")

let suite =
  [ ("value compare reflexive", `Quick, test_value_compare_refl);
    ("value order across kinds", `Quick, test_value_order_across_kinds);
    ("value float coercion", `Quick, test_float_coercion);
    ("value conforms", `Quick, test_conforms);
    ("value parse", `Quick, test_parse);
    ("value ty roundtrip", `Quick, test_ty_roundtrip);
    qtest prop_compare_antisym;
    qtest prop_compare_trans;
    qtest prop_equal_hash;
    ("oid fresh distinct", `Quick, test_oid_fresh_distinct);
    ("oid hint cosmetic", `Quick, test_oid_named_hint_cosmetic);
    ("skolem deterministic", `Quick, test_skolem_deterministic);
    ("skolem injective and disjoint", `Quick, test_skolem_injective);
    ("skolem detection", `Quick, test_skolem_is_skolem);
    ("names pascal", `Quick, test_pascal);
    ("names upper", `Quick, test_upper);
    ("names camel", `Quick, test_camel);
    ("names snake/pascal", `Quick, test_snake);
    ("names sanitize", `Quick, test_sanitize);
    ("error formatting", `Quick, test_error_pp) ]
