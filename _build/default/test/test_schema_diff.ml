(* Tests for super-schema evolution. *)

module SD = Kgmodel.Schema_diff

let check = Alcotest.check

let v1 =
  Kgmodel.Gsl.parse_validated
    {|
schema s {
  node Person { pid: string @id; name: string @opt; }
  node Place { addr: string @id; }
  edge RESIDES from Person to Place [0..1 -> 0..N];
}
|}

let test_no_changes () =
  let d = SD.diff v1 v1 in
  check Alcotest.int "empty" 0 (List.length d.SD.changes);
  check Alcotest.bool "compatible" true (d.SD.verdict = SD.Compatible)

let test_additive () =
  let v2 =
    Kgmodel.Gsl.parse_validated
      {|
schema s {
  node Person { pid: string @id; name: string @opt; nickname: string @opt; }
  node Place { addr: string @id; }
  node Family { fid: string @id; }
  edge RESIDES from Person to Place [0..1 -> 0..N];
  intensional edge IN_FAMILY from Person to Family [0..N -> 0..N];
}
|}
  in
  let d = SD.diff v1 v2 in
  check Alcotest.bool "compatible" true (d.SD.verdict = SD.Compatible);
  check Alcotest.bool "added node" true
    (List.mem (SD.Added_node "Family") d.SD.changes);
  check Alcotest.bool "added edge" true
    (List.mem (SD.Added_edge "IN_FAMILY") d.SD.changes);
  check Alcotest.bool "added attr" true
    (List.mem (SD.Added_attribute ("Person", "nickname")) d.SD.changes);
  check Alcotest.int "no hints" 0 (List.length (SD.migration_hints d))

let test_breaking () =
  let v2 =
    Kgmodel.Gsl.parse_validated
      {|
schema s {
  node Person { pid: string @id; name: string; }
  edge RESIDES from Person to Person [1..1 -> 0..N];
}
|}
  in
  let d = SD.diff v1 v2 in
  check Alcotest.bool "needs migration" true (d.SD.verdict = SD.Needs_migration);
  check Alcotest.bool "removed node" true
    (List.mem (SD.Removed_node "Place") d.SD.changes);
  check Alcotest.bool "name became mandatory" true
    (List.mem (SD.Changed_attribute ("Person", "name", "became mandatory"))
       d.SD.changes);
  check Alcotest.bool "edge retargeted" true
    (List.mem (SD.Changed_edge ("RESIDES", "endpoints changed")) d.SD.changes);
  check Alcotest.bool "participation tightened" true
    (List.mem (SD.Changed_edge ("RESIDES", "participation became mandatory"))
       d.SD.changes);
  check Alcotest.bool "hints produced" true (SD.migration_hints d <> [])

let test_mandatory_addition_is_breaking () =
  let v2 =
    Kgmodel.Gsl.parse_validated
      {|
schema s {
  node Person { pid: string @id; name: string @opt; taxCode: string; }
  node Place { addr: string @id; }
  edge RESIDES from Person to Place [0..1 -> 0..N];
}
|}
  in
  let d = SD.diff v1 v2 in
  check Alcotest.bool "needs migration" true (d.SD.verdict = SD.Needs_migration);
  check Alcotest.bool "backfill flagged" true
    (List.exists
       (function
         | SD.Changed_attribute ("Person", "taxCode", w) ->
             w = "added as mandatory: backfill required"
         | _ -> false)
       d.SD.changes)

let test_generalization_changes () =
  let a =
    Kgmodel.Gsl.parse_validated
      {|
schema s {
  node A { x: string @id; }
  node B {}
  generalization G of A = B;
}
|}
  in
  let b =
    Kgmodel.Gsl.parse_validated
      {|
schema s {
  node A { x: string @id; }
  node B {}
  generalization G of A = B @total @disjoint;
}
|}
  in
  let d = SD.diff a b in
  check Alcotest.bool "tightened generalization is breaking" true
    (d.SD.verdict = SD.Needs_migration);
  check Alcotest.bool "became total" true
    (List.mem (SD.Changed_generalization ("G", "became total")) d.SD.changes)

let suite =
  [ ("identical schemas", `Quick, test_no_changes);
    ("additive evolution is compatible", `Quick, test_additive);
    ("breaking changes detected", `Quick, test_breaking);
    ("mandatory addition needs backfill", `Quick, test_mandatory_addition_is_breaking);
    ("generalization tightening", `Quick, test_generalization_changes) ]
