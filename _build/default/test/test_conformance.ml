(* Tests for the model-independent instance conformance checker. *)

open Kgm_common
module PG = Kgm_graphdb.Pgraph
module C = Kgmodel.Conformance

let check = Alcotest.check

let schema =
  lazy
    (Kgmodel.Gsl.parse_validated
       {|
schema shop {
  node Customer {
    cid: string @id @unique;
    tier: string @enum("gold", "silver");
    age: int @opt @range(0, 150);
  }
  node Vip {
    perk: string @opt;
  }
  generalization Kind of Customer = Vip @disjoint;
  node Order {
    oid: string @id;
    total: float;
  }
  edge PLACED from Customer to Order [0..N -> 1..1];
  intensional edge FREQUENT from Customer to Customer [0..N -> 0..N];
}
|})

let customer ?(tier = "gold") g cid =
  PG.add_node g ~labels:[ "Customer" ]
    ~props:[ ("cid", Value.string cid); ("tier", Value.string tier) ]

let order g oid total =
  PG.add_node g ~labels:[ "Order" ]
    ~props:[ ("oid", Value.string oid); ("total", Value.float total) ]

let placed g c o = ignore (PG.add_edge g ~label:"PLACED" ~src:c ~dst:o ~props:[])

let conforming () =
  let g = PG.create () in
  let c1 = customer g "c1" in
  let o1 = order g "o1" 10. in
  placed g c1 o1;
  g

let rules vs = List.sort_uniq compare (List.map (fun v -> v.C.rule) vs)

let test_conformant () =
  let s = Lazy.force schema in
  check Alcotest.bool "ok" true (C.is_conformant s (conforming ()));
  (* inherited attributes on a Vip *)
  let g = conforming () in
  let v =
    PG.add_node g ~labels:[ "Vip" ]
      ~props:
        [ ("cid", Value.string "c9"); ("tier", Value.string "silver");
          ("perk", Value.string "lounge") ]
  in
  let o = order g "o9" 5. in
  placed g v o;
  check Alcotest.bool "vip conforms via inheritance" true (C.is_conformant s g)

let test_unknown_label_and_property () =
  let s = Lazy.force schema in
  let g = conforming () in
  ignore (PG.add_node g ~labels:[ "Alien" ] ~props:[]);
  let c = customer g "c2" in
  let o = order g "o2" 1. in
  placed g c o;
  PG.set_node_prop g c "ghost" (Value.int 1);
  let vs = C.check s g in
  check Alcotest.bool "unknown label" true (List.mem "unknown-label" (rules vs));
  check Alcotest.bool "unknown property" true
    (List.mem "unknown-property" (rules vs))

let test_missing_and_domain () =
  let s = Lazy.force schema in
  let g = PG.create () in
  (* missing mandatory tier; bad type for total *)
  let c =
    PG.add_node g ~labels:[ "Customer" ] ~props:[ ("cid", Value.string "c1") ]
  in
  let o =
    PG.add_node g ~labels:[ "Order" ]
      ~props:[ ("oid", Value.string "o1"); ("total", Value.string "ten") ]
  in
  placed g c o;
  let vs = C.check s g in
  check Alcotest.bool "missing attribute" true
    (List.mem "missing-attribute" (rules vs));
  check Alcotest.bool "domain" true (List.mem "domain" (rules vs))

let test_modifiers () =
  let s = Lazy.force schema in
  let g = PG.create () in
  let c1 = customer ~tier:"bronze" g "dup" in
  let c2 = customer g "dup" in
  PG.set_node_prop g c1 "age" (Value.int 200);
  let o1 = order g "o1" 1. and o2 = order g "o2" 2. in
  placed g c1 o1;
  placed g c2 o2;
  let vs = C.check s g in
  check Alcotest.bool "enum" true (List.mem "enum" (rules vs));
  check Alcotest.bool "range" true (List.mem "range" (rules vs));
  check Alcotest.bool "identity/unique duplicate" true
    (List.mem "identity" (rules vs) || List.mem "unique" (rules vs))

let test_identity_across_hierarchy () =
  (* a Vip and a Customer sharing a cid is a duplicate identity *)
  let s = Lazy.force schema in
  let g = PG.create () in
  let c = customer g "same" in
  let v =
    PG.add_node g ~labels:[ "Vip" ]
      ~props:[ ("cid", Value.string "same"); ("tier", Value.string "gold") ]
  in
  let o1 = order g "o1" 1. and o2 = order g "o2" 2. in
  placed g c o1;
  placed g v o2;
  let vs = C.check s g in
  check Alcotest.bool "cross-hierarchy identity" true
    (List.mem "identity" (rules vs))

let test_endpoints () =
  let s = Lazy.force schema in
  let g = conforming () in
  let o2 = order g "o2" 2. in
  let o3 = order g "o3" 3. in
  (* Order placed an Order: wrong source *)
  ignore (PG.add_edge g ~label:"PLACED" ~src:o2 ~dst:o3 ~props:[]);
  let vs = C.check s g in
  check Alcotest.bool "endpoint" true (List.mem "endpoint" (rules vs))

let test_cardinalities () =
  let s = Lazy.force schema in
  (* an order placed by two customers violates isFun on the To side *)
  let g = PG.create () in
  let c1 = customer g "c1" and c2 = customer g "c2" in
  let o = order g "o1" 1. in
  placed g c1 o;
  placed g c2 o;
  let vs = C.check s g in
  check Alcotest.bool "max cardinality" true
    (List.mem "cardinality-max" (rules vs));
  (* an order with no customer violates the mandatory participation *)
  let g2 = PG.create () in
  ignore (order g2 "orphan" 1.);
  let vs2 = C.check s g2 in
  check Alcotest.bool "min cardinality" true
    (List.mem "cardinality-min" (rules vs2))

let test_reject_intensional () =
  let s = Lazy.force schema in
  let g = conforming () in
  let c1 = List.hd (PG.nodes_with_label g "Customer") in
  ignore (PG.add_edge g ~label:"FREQUENT" ~src:c1 ~dst:c1 ~props:[]);
  (* allowed by default (materialized knowledge) *)
  check Alcotest.bool "intensional tolerated" true (C.is_conformant s g);
  let vs = C.check ~reject_intensional:true s g in
  check Alcotest.bool "rejected as ground data" true
    (List.mem "intensional-edge" (rules vs))

let test_company_instance_conforms () =
  let s = Kgm_finance.Company_schema.load () in
  let o = Kgm_finance.Generator.generate ~n:150 ~seed:3 () in
  let g = Kgm_finance.Generator.to_company_graph o in
  let vs = C.check ~reject_intensional:true s g in
  (match vs with
   | [] -> ()
   | v :: _ -> Alcotest.failf "unexpected violation: %s" v.C.message);
  (* after materialization the instance still conforms (intensional
     knowledge allowed) *)
  let dict = Kgmodel.Dictionary.create () in
  let sid = Kgmodel.Dictionary.store dict s in
  let inst = Kgmodel.Instances.create dict in
  ignore
    (Kgmodel.Materialize.materialize ~instances:inst ~schema:s ~schema_oid:sid
       ~data:g ~sigma:Kgm_finance.Intensional.full ());
  check Alcotest.bool "conforms after materialization" true
    (C.is_conformant s g)

let suite =
  [ ("conformant instances", `Quick, test_conformant);
    ("unknown labels and properties", `Quick, test_unknown_label_and_property);
    ("missing attributes and domains", `Quick, test_missing_and_domain);
    ("enum/range/unique modifiers", `Quick, test_modifiers);
    ("identity across hierarchy", `Quick, test_identity_across_hierarchy);
    ("edge endpoints", `Quick, test_endpoints);
    ("cardinalities", `Quick, test_cardinalities);
    ("reject intensional ground data", `Quick, test_reject_intensional);
    ("company instance conforms", `Quick, test_company_instance_conforms) ]
