(** kgmodel — the KGModel command-line front end.

    Subcommands mirror the framework's software modules (Sec. 2.2):
    - [validate]  : parse and validate a GSL design file (KGSE);
    - [render]    : Γ_SM rendering to DOT or ASCII;
    - [translate] : SSST translation to a target model, printing the
                    schema and its enforcement artifact;
    - [compile]   : MTV compilation of a MetaLog file to Vadalog;
    - [reason]    : run a Vadalog program from a file;
    - [stats]     : EXP-1 synthetic-topology table;
    - [demo]      : end-to-end Algorithm 2 on a synthetic Company KG;
    - [diff]      : model-independent schema evolution diff;
    - [check]     : instance conformance checking;
    - [figures]   : regenerate the paper's figure artifacts;
    - [journal]   : summarize/filter a chase flight recording. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let handle f =
  try f () with
  | Kgm_common.Kgm_error.Error e ->
      Format.eprintf "@[<v>error: %a%a@]@." Kgm_common.Kgm_error.pp e
        Kgm_common.Kgm_error.pp_context e;
      exit 1
  | Kgm_resilience.Fault site ->
      (* an injected, un-absorbed fault (KGM_FAULTS): distinct exit code
         so the fault-injection harness can tell it from real errors *)
      Format.eprintf "error: injected fault at site %S@." site;
      exit 3

(* ------------------------------------------------------------------ *)
(* Observability flags, shared by reason / demo / figures: --metrics
   prints the telemetry summary (and per-rule chase tables where a
   reasoning run is involved); --trace FILE writes Chrome trace-event
   JSON loadable in chrome://tracing or Perfetto. *)

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace-event JSON (chrome://tracing, \
                 Perfetto) of the run to $(docv).")

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Print per-rule chase metrics and the telemetry summary \
                 after the run.")

let journal_arg =
  Arg.(value & opt (some string) None
       & info [ "journal" ] ~docv:"FILE"
           ~doc:"Record the chase flight recorder to $(docv) as JSONL \
                 (one event per line: rounds, rule batches, plans, \
                 worker chunks, checkpoints, limits). Summarize later \
                 with $(b,kgmodel journal).")

let metrics_out_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Write a Prometheus text-format snapshot of the \
                 telemetry counters and histograms to $(docv): \
                 refreshed at every round boundary during the run \
                 (atomic rename), final state on exit.")

let progress_arg =
  Arg.(value & flag
       & info [ "progress" ]
           ~doc:"Live progress line on stderr: round, delta size, \
                 facts/sec, elapsed time against the deadline.")

let jobs_arg =
  Arg.(value & opt int Kgm_vadalog.Engine.default_jobs
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Worker domains for the reasoner's semi-naive rounds \
                 (default: \\$(b,KGM_JOBS) or 1). Results are identical \
                 for every $(docv).")

let options_for_jobs jobs =
  { Kgm_vadalog.Engine.default_options with Kgm_vadalog.Engine.jobs }

(* ------------------------------------------------------------------ *)
(* Resilience flags, shared by reason / demo: wall-clock deadlines,
   checkpoint/resume, and the on-limit policy. The engine always runs
   under the `Partial policy here so a stopped run can still print its
   partial per-rule table; --on-limit raise (the default) then exits
   non-zero after printing. *)

let deadline_arg =
  Arg.(value & opt (some float) None
       & info [ "deadline" ] ~docv:"SECONDS"
           ~doc:"Wall-clock budget for the reasoning run; on expiry the \
                 run stops at the next round boundary.")

let checkpoint_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "checkpoint-dir" ] ~docv:"DIR"
           ~doc:"Write periodic snapshots of the chase state to $(docv) \
                 (created if missing).")

let checkpoint_every_arg =
  Arg.(value & opt int Kgm_vadalog.Engine.default_checkpoint_every
       & info [ "checkpoint-every" ] ~docv:"N"
           ~doc:"Snapshot every $(docv) completed rounds.")

let checkpoint_keep_arg =
  Arg.(value & opt int 0
       & info [ "checkpoint-keep" ] ~docv:"K"
           ~doc:"Retain only the newest $(docv) snapshot generations in \
                 --checkpoint-dir, deleting older ones after each \
                 successful write (0 keeps everything). The newest \
                 retained generation is always a complete, digest-valid \
                 snapshot, so --resume never loses its restart point.")

let resume_arg =
  Arg.(value & flag
       & info [ "resume" ]
           ~doc:"Resume from the latest snapshot in --checkpoint-dir; \
                 the result is bit-for-bit the uninterrupted run's.")

let on_limit_arg =
  Arg.(value & opt (enum [ ("raise", `Raise); ("partial", `Partial) ]) `Raise
       & info [ "on-limit" ] ~docv:"POLICY"
           ~doc:"raise: exit non-zero when a budget or deadline stops the \
                 run (after printing partial results); partial: exit 0 \
                 with the partial result tagged INCOMPLETE.")

(* First Ctrl-C cancels cooperatively (the engine stops at a round
   boundary, writing a final checkpoint when enabled); the second kills
   the process. *)
let install_sigint () =
  let tok = Kgm_resilience.Token.create () in
  (try
     Sys.set_signal Sys.sigint
       (Sys.Signal_handle
          (fun _ ->
            if Kgm_resilience.Token.cancelled tok then exit 130
            else begin
              prerr_endline
                "kgmodel: interrupt - stopping at the next round boundary \
                 (Ctrl-C again to kill)";
              Kgm_resilience.Token.cancel tok
            end))
   with Invalid_argument _ -> () (* no signal support on this platform *));
  tok

(* Partial-result epilogue: print the per-rule table (unless --metrics
   already did) and apply the --on-limit exit policy. *)
let report_stopped ~on_limit ~metrics (stats : Kgm_vadalog.Engine.stats) =
  match stats.Kgm_vadalog.Engine.stopped with
  | None -> ()
  | Some l ->
      if not metrics then
        Format.printf "%a" Kgm_vadalog.Engine.pp_rule_table stats;
      Format.printf "%% INCOMPLETE: limited by %s@."
        (Kgm_vadalog.Engine.limit_name l);
      if on_limit = `Raise then begin
        Format.eprintf "error: run stopped on %s (partial results above)@."
          (Kgm_vadalog.Engine.limit_name l);
        exit 2
      end

(* Run [f] with a collector (enabled only when a flag asks for it), then
   emit the requested artifacts. *)
let with_telemetry ~trace ~metrics f =
  let tele =
    if trace <> None || metrics then Kgm_telemetry.create ()
    else Kgm_telemetry.null
  in
  let r = f tele in
  if metrics then print_string (Kgm_telemetry.summary tele);
  (match trace with
   | Some file ->
       (try Kgm_telemetry.write_chrome_trace file tele
        with Sys_error msg ->
          Kgm_common.Kgm_error.raise_error_ctx Kgm_common.Kgm_error.Storage
            [ ("file", file) ]
            "cannot write trace: %s" msg);
       Format.printf "trace written to %s@." file
   | None -> ());
  r

(* The full observability harness for reasoning commands: the telemetry
   collector plus the flight recorder, with the derived consumers —
   live progress line and periodic Prometheus snapshots — attached as
   journal taps. [f] gets the collector and the journal; each is a
   no-op unless some flag asked for it (--progress and --metrics-out
   imply an in-memory journal even without --journal). *)
let with_observability ~trace ~metrics ~journal ~metrics_out ~progress
    ~deadline f =
  let module Journal = Kgm_telemetry.Journal in
  let tele =
    if trace <> None || metrics || metrics_out <> None then
      Kgm_telemetry.create ()
    else Kgm_telemetry.null
  in
  let jr =
    if journal <> None || progress || metrics_out <> None then
      Journal.create ?path:journal ()
    else Journal.null
  in
  if progress then begin
    let t0 = Unix.gettimeofday () in
    let derived = ref 0 in
    Journal.tap jr (fun ev ->
        match ev.Journal.ev_type with
        | "round.end" ->
            let fld k =
              Option.value ~default:0 (Journal.int_field ev k)
            in
            derived := !derived + fld "delta";
            let el = Unix.gettimeofday () -. t0 in
            let rate =
              if el > 0. then float_of_int !derived /. el else 0.
            in
            let budget =
              match deadline with
              | Some d -> Printf.sprintf "%.1fs/%.0fs" el d
              | None -> Printf.sprintf "%.1fs" el
            in
            Printf.eprintf
              "\r\027[Kround %d: delta %d, %d facts, %.0f facts/s, %s%!"
              (fld "round") (fld "delta") (fld "facts") rate budget
        | "run.end" | "maintain.end" -> prerr_newline ()
        | _ -> ())
  end;
  (match metrics_out with
   | Some file ->
       Journal.tap jr (fun ev ->
           if ev.Journal.ev_type = "round.end" then
             try Kgm_telemetry.write_prometheus file tele
             with Sys_error _ -> () (* retried at the final snapshot *))
   | None -> ());
  let r = f tele jr in
  Journal.close jr;
  (match journal with
   | Some file -> Format.printf "%% journal written to %s@." file
   | None -> ());
  (match metrics_out with
   | Some file ->
       (try Kgm_telemetry.write_prometheus file tele
        with Sys_error msg ->
          Kgm_common.Kgm_error.raise_error_ctx Kgm_common.Kgm_error.Storage
            [ ("file", file) ]
            "cannot write metrics: %s" msg);
       Format.printf "%% metrics written to %s@." file
   | None -> ());
  if metrics then print_string (Kgm_telemetry.summary tele);
  (match trace with
   | Some file ->
       (try Kgm_telemetry.write_chrome_trace file tele
        with Sys_error msg ->
          Kgm_common.Kgm_error.raise_error_ctx Kgm_common.Kgm_error.Storage
            [ ("file", file) ]
            "cannot write trace: %s" msg);
       Format.printf "trace written to %s@." file
   | None -> ());
  r

(* ------------------------------------------------------------------ *)

let gsl_file =
  let doc = "GSL design file (textual Graph Schema Language)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let validate_cmd =
  let run file =
    handle (fun () ->
        let s = Kgmodel.Gsl.parse (read_file file) in
        match Kgmodel.Supermodel.validate s with
        | Ok () ->
            Format.printf "%s: valid super-schema@." s.Kgmodel.Supermodel.s_name;
            List.iter
              (fun (k, v) -> Format.printf "  %-28s %d@." k v)
              (Kgmodel.Supermodel.stats s)
        | Error errs ->
            List.iter (Format.printf "invalid: %s@.") errs;
            exit 1)
  in
  Cmd.v (Cmd.info "validate" ~doc:"Parse and validate a GSL design file.")
    Term.(const run $ gsl_file)

let render_cmd =
  let format =
    Arg.(value & opt (enum [ ("dot", `Dot); ("ascii", `Ascii); ("legend", `Legend) ])
           `Dot
         & info [ "format"; "f" ] ~doc:"Output format: dot, ascii or legend.")
  in
  let run file fmt =
    handle (fun () ->
        match fmt with
        | `Legend -> print_string (Kgmodel.Render.grapheme_legend ())
        | `Dot ->
            let s = Kgmodel.Gsl.parse_validated (read_file file) in
            print_string (Kgmodel.Render.to_dot s)
        | `Ascii ->
            let s = Kgmodel.Gsl.parse_validated (read_file file) in
            print_string (Kgmodel.Render.to_ascii s))
  in
  Cmd.v
    (Cmd.info "render" ~doc:"Render a GSL diagram with the Γ_SM graphemes.")
    Term.(const run $ gsl_file $ format)

let translate_cmd =
  let target =
    Arg.(value
         & opt (enum [ ("pg", `Pg); ("relational", `Rel); ("rdfs", `Rdfs); ("csv", `Csv) ])
             `Pg
         & info [ "target"; "t" ] ~doc:"Target model: pg, relational, rdfs, csv.")
  in
  let strategy =
    Arg.(value & opt (some string) None
         & info [ "strategy"; "s" ] ~doc:"Implementation strategy (Algorithm 1, line 2).")
  in
  let run file target strategy =
    handle (fun () ->
        let s = Kgmodel.Gsl.parse_validated (read_file file) in
        match target with
        | `Pg ->
            let dict = Kgmodel.Dictionary.create () in
            let sid = Kgmodel.Dictionary.store dict s in
            let mapping = Kgm_targets.Pg_model.mapping ?strategy () in
            let outcome = Kgmodel.Ssst.translate dict mapping sid in
            let schema =
              Kgm_targets.Pg_model.decode dict outcome.Kgmodel.Ssst.target_oid
            in
            Format.printf "%a@." Kgm_targets.Pg_model.pp schema;
            print_string "-- enforcement script --\n";
            print_string (Kgm_targets.Pg_model.enforcement_script schema)
        | `Rel ->
            let dict = Kgmodel.Dictionary.create () in
            let sid = Kgmodel.Dictionary.store dict s in
            let mapping = Kgm_targets.Relational_model.mapping ?strategy () in
            let outcome = Kgmodel.Ssst.translate dict mapping sid in
            let schema =
              Kgm_targets.Relational_model.decode dict outcome.Kgmodel.Ssst.target_oid
            in
            print_string (Kgm_targets.Relational_model.ddl schema)
        | `Rdfs ->
            let schema = Kgm_targets.Triple_model.translate_native s in
            print_string (Kgm_targets.Triple_model.to_rdfs schema)
        | `Csv ->
            let bundle = Kgm_targets.Csv_model.translate_native s in
            print_string bundle.Kgm_targets.Csv_model.manifest)
  in
  Cmd.v
    (Cmd.info "translate"
       ~doc:"SSST: translate a super-schema into a target model (Algorithm 1).")
    Term.(const run $ gsl_file $ target $ strategy)

let compile_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"MetaLog source file.")
  in
  let run file =
    handle (fun () ->
        let prog = Kgm_metalog.Mparser.parse_program (read_file file) in
        let { Kgm_metalog.Mtv.program; _ } = Kgm_metalog.Mtv.translate prog in
        print_string (Kgm_vadalog.Rule.program_to_string program))
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"MTV: compile MetaLog to Vadalog (Sec. 4).")
    Term.(const run $ file)

let reason_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"Vadalog program file (facts inline).")
  in
  let query =
    Arg.(value & opt (some string) None
         & info [ "query"; "q" ] ~doc:"Predicate whose facts to print.")
  in
  let lenient =
    Arg.(value & flag
         & info [ "lenient" ]
             ~doc:"Skip malformed @input rows (wrong arity, unparsable \
                   value) with a warning instead of failing.")
  in
  let explain_plan =
    Arg.(value & flag
         & info [ "explain-plan" ]
             ~doc:"Print the chase plan (strata in execution order, join \
                   order per recursive rule and delta literal) computed \
                   over the loaded input facts, then exit without \
                   running the chase.")
  in
  let explain_fact =
    Arg.(value & opt (some string) None
         & info [ "explain" ] ~docv:"FACT"
             ~doc:"After the chase, print the derivation tree of $(docv) \
                   (e.g. 'control(a,b)'): the firing rule, the \
                   head-variable substitution, invented nulls and the \
                   premises, recursively down to ground facts. Implies \
                   provenance recording; deterministic across --jobs, \
                   the planner and checkpoint/resume.")
  in
  let explain_depth =
    Arg.(value & opt int Kgm_vadalog.Engine.default_explain_depth
         & info [ "explain-depth" ] ~docv:"N"
             ~doc:"Depth bound for --explain derivation trees (cyclic \
                   ownership graphs are cut here and at back-edges).")
  in
  let no_planner =
    Arg.(value & flag
         & info [ "no-planner" ]
             ~doc:"Disable cost-aware chase planning (stratum-round \
                   skipping, selectivity-ordered joins, delta-side \
                   indexes). Output facts are identical either way; only \
                   probe counts and wall time change.")
  in
  let update =
    Arg.(value & opt_all string []
         & info [ "update" ] ~docv:"FILE"
             ~doc:"After the chase, apply an extensional update batch \
                   and repair the materialization incrementally \
                   (delete-and-rederive). Each non-empty line of FILE \
                   is a fact, optionally prefixed with + (insert, the \
                   default) or - (retract); lines starting with % are \
                   comments. Repeatable: batches are applied in order \
                   through one maintained session; $(docv) - reads a \
                   batch from stdin. Incompatible with checkpointing.")
  in
  let run file query trace metrics jobs deadline ck_dir ck_every ck_keep
      resume on_limit lenient explain_plan no_planner update journal
      metrics_out progress explain_fact explain_depth =
    handle (fun () ->
        with_observability ~trace ~metrics ~journal ~metrics_out ~progress
          ~deadline
        @@ fun tele jr ->
        let cancel = install_sigint () in
        let program = Kgm_vadalog.Parser.parse_program (read_file file) in
        let db = Kgm_vadalog.Database.create () in
        List.iter
          (fun (r : Kgm_vadalog.Io_sources.source_report) ->
            Format.printf "%% @input %s: %d facts%s@."
              r.Kgm_vadalog.Io_sources.sr_pred r.Kgm_vadalog.Io_sources.sr_loaded
              (if r.Kgm_vadalog.Io_sources.sr_skipped > 0 then
                 Printf.sprintf " (%d malformed rows skipped)"
                   r.Kgm_vadalog.Io_sources.sr_skipped
               else "");
            List.iter
              (fun (w : Kgm_vadalog.Io_sources.warning) ->
                Format.eprintf "%% warning: %s line %d: %s@."
                  r.Kgm_vadalog.Io_sources.sr_source
                  w.Kgm_vadalog.Io_sources.w_line
                  w.Kgm_vadalog.Io_sources.w_reason)
              r.Kgm_vadalog.Io_sources.sr_warnings)
          (Kgm_vadalog.Io_sources.load_inputs_report ~lenient program db);
        let options =
          { (options_for_jobs jobs) with
            Kgm_vadalog.Engine.deadline_s = deadline;
            on_limit = `Partial;
            planner = not no_planner;
            provenance = explain_fact <> None }
        in
        if explain_plan then begin
          (* the engine loads inline facts itself; mirror that here so
             the report sees the same cardinalities a run would start
             from *)
          List.iter
            (fun (pred, args) ->
              ignore (Kgm_vadalog.Database.add db pred (Array.of_list args)))
            program.Kgm_vadalog.Rule.facts;
          Kgm_vadalog.Engine.pp_plan_report ~options Format.std_formatter
            program db;
          exit 0
        end;
        let finish db stats =
          Format.printf "%% %d new facts in %d rounds (%.3fs)@."
            stats.Kgm_vadalog.Engine.new_facts stats.Kgm_vadalog.Engine.rounds
            stats.Kgm_vadalog.Engine.elapsed_s;
          if metrics then
            Format.printf "%a" Kgm_vadalog.Engine.pp_rule_table stats;
          (match query with
           | Some pred ->
               List.iter
                 (fun fact ->
                   Format.printf "%s(%s).@." pred
                     (String.concat ", "
                        (Array.to_list
                           (Array.map Kgm_common.Value.to_string fact))))
                 (Kgm_vadalog.Engine.query db pred)
           | None ->
               List.iter
                 (fun pred -> Format.printf "%s: %d facts@." pred
                     (List.length (Kgm_vadalog.Database.facts db pred)))
                 (Kgm_vadalog.Database.predicates db));
          (match explain_fact with
           | None -> ()
           | Some s ->
               let pred, fact =
                 let s' = String.trim s in
                 let s' =
                   if s' <> "" && s'.[String.length s' - 1] = '.' then s'
                   else s' ^ "."
                 in
                 let p = Kgm_vadalog.Parser.parse_program s' in
                 match p.Kgm_vadalog.Rule.facts with
                 | [ (pred, args) ] -> (pred, Array.of_list args)
                 | _ ->
                     Kgm_common.Kgm_error.raise_error_ctx
                       Kgm_common.Kgm_error.Validate
                       [ ("fact", s) ]
                       "--explain expects a single ground fact, e.g. \
                        'control(a,b)'"
               in
               let sup =
                 match stats.Kgm_vadalog.Engine.support with
                 | Some sup -> sup
                 | None -> Kgm_vadalog.Engine.create_support ()
               in
               if not (Kgm_vadalog.Database.mem db pred fact) then
                 Format.printf "%% not in the database: %s@." (String.trim s);
               print_string
                 (Kgm_vadalog.Engine.explain_tree_to_string
                    (Kgm_vadalog.Engine.explain_tree ~max_depth:explain_depth
                       sup program pred fact)));
          report_stopped ~on_limit ~metrics stats
        in
        match update with
        | [] ->
            let checkpoint =
              Option.map
                (fun dir ->
                  Kgm_vadalog.Engine.checkpoint ~every:ck_every ~keep:ck_keep
                    dir)
                ck_dir
            in
            let resume_from =
              match ck_dir with
              | Some dir when resume ->
                  Kgm_vadalog.Engine.latest_checkpoint dir
              | _ -> None
            in
            (match resume_from with
             | Some p -> Format.printf "%% resuming from %s@." p
             | None -> ());
            let stats =
              Kgm_vadalog.Engine.run ~options ~telemetry:tele ~journal:jr
                ~cancel ?checkpoint ?resume_from program db
            in
            finish db stats
        | ufiles ->
            (* chase with derivation support recorded, then repair —
               every batch flows through the one maintained session,
               parsed by the server's shared batch reader *)
            let read_batch path =
              if path = "-" then In_channel.input_all stdin
              else read_file path
            in
            let st, stats =
              Kgm_vadalog.Incremental.chase ~options ~telemetry:tele
                ~journal:jr ~db program
            in
            Format.printf "%% chase: %d new facts in %d rounds (%.3fs)@."
              stats.Kgm_vadalog.Engine.new_facts
              stats.Kgm_vadalog.Engine.rounds
              stats.Kgm_vadalog.Engine.elapsed_s;
            List.iter
              (fun ufile ->
                let batch = Kgm_server.Batch.parse (read_batch ufile) in
                let inserts, retracts = Kgm_server.Batch.split batch in
                let u =
                  Kgm_vadalog.Incremental.maintain ~telemetry:tele
                    ~journal:jr st ~inserts ~retracts
                in
                Format.printf
                  "%% update %s: +%d -%d; cone %d, deleted %d, rederived \
                   %d, refired %d, derived %d in %d rounds (%.3fs)%s%s%s@."
                  (if ufile = "-" then "<stdin>" else ufile)
                  u.Kgm_vadalog.Incremental.u_inserted
                  u.Kgm_vadalog.Incremental.u_retracted
                  u.Kgm_vadalog.Incremental.u_cone
                  u.Kgm_vadalog.Incremental.u_deleted
                  u.Kgm_vadalog.Incremental.u_rederived
                  u.Kgm_vadalog.Incremental.u_refired
                  u.Kgm_vadalog.Incremental.u_derived
                  u.Kgm_vadalog.Incremental.u_rounds
                  u.Kgm_vadalog.Incremental.u_elapsed_s
                  (if u.Kgm_vadalog.Incremental.u_strata > 0 then
                     Printf.sprintf ", %d strata rederived"
                       u.Kgm_vadalog.Incremental.u_strata
                   else "")
                  (if u.Kgm_vadalog.Incremental.u_agg_groups > 0 then
                     Printf.sprintf ", %d aggregate groups maintained"
                       u.Kgm_vadalog.Incremental.u_agg_groups
                   else "")
                  (if u.Kgm_vadalog.Incremental.u_fallback then
                     " [fallback: full re-chase]"
                   else ""))
              ufiles;
            finish (Kgm_vadalog.Incremental.db st) stats)
  in
  Cmd.v (Cmd.info "reason" ~doc:"Run a Vadalog program.")
    Term.(const run $ file $ query $ trace_arg $ metrics_arg $ jobs_arg
          $ deadline_arg $ checkpoint_dir_arg $ checkpoint_every_arg
          $ checkpoint_keep_arg $ resume_arg $ on_limit_arg $ lenient
          $ explain_plan $ no_planner
          $ update $ journal_arg $ metrics_out_arg $ progress_arg
          $ explain_fact $ explain_depth)

(* ------------------------------------------------------------------ *)
(* serve: the long-lived reasoning daemon. Chase (or recover) once,
   then answer point/pattern/explain queries against immutable frozen
   epochs while update batches repair the master incrementally. *)

let serve_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"Vadalog program to serve.")
  in
  let sock =
    Arg.(value & opt string "/tmp/kgmodel.sock"
         & info [ "sock" ] ~docv:"PATH"
             ~doc:"Unix-domain socket to listen on (also reachable with \
                   $(b,curl --unix-socket)).")
  in
  let state_dir =
    Arg.(value & opt (some string) None
         & info [ "state-dir" ] ~docv:"DIR"
             ~doc:"Persist session snapshots to $(docv): one is written \
                   at startup, after update batches and at drain, and \
                   the newest valid one is recovered from on restart \
                   (corrupt or foreign generations are skipped).")
  in
  let workers =
    Arg.(value & opt int 4
         & info [ "workers" ] ~docv:"N" ~doc:"Request worker threads.")
  in
  let queue =
    Arg.(value & opt int 64
         & info [ "queue" ] ~docv:"N"
             ~doc:"Admission queue bound; beyond it requests are shed \
                   immediately with 503 overloaded.")
  in
  let keep =
    Arg.(value & opt int 3
         & info [ "keep" ] ~docv:"K"
             ~doc:"Session snapshot generations retained in --state-dir.")
  in
  let snapshot_every =
    Arg.(value & opt int 1
         & info [ "snapshot-every" ] ~docv:"N"
             ~doc:"Write a session snapshot every $(docv) applied update \
                   batches (always at drain).")
  in
  let request_deadline =
    Arg.(value & opt (some float) None
         & info [ "request-deadline" ] ~docv:"SECONDS"
             ~doc:"Default per-request deadline; a client overrides it \
                   with the x-kgm-deadline header. Requests past it \
                   answer 504.")
  in
  let idle_timeout =
    Arg.(value & opt float 5.
         & info [ "idle-timeout" ] ~docv:"SECONDS"
             ~doc:"Close a keep-alive connection after $(docv) with no \
                   request in flight.")
  in
  let max_requests =
    Arg.(value & opt int 10_000
         & info [ "max-requests" ] ~docv:"N"
             ~doc:"Requests served on one connection before the server \
                   answers connection: close.")
  in
  let debug_endpoints =
    Arg.(value & flag
         & info [ "debug-endpoints" ]
             ~doc:"Expose POST /slow (a cancellable sleep) — for drain \
                   and overload testing only.")
  in
  let run file sock state_dir workers queue keep snapshot_every
      request_deadline idle_timeout max_requests debug_endpoints jobs trace
      metrics journal metrics_out =
    handle (fun () ->
        with_observability ~trace ~metrics ~journal ~metrics_out
          ~progress:false ~deadline:None
        @@ fun tele jr ->
        let program = Kgm_vadalog.Parser.parse_program (read_file file) in
        let options =
          { (options_for_jobs jobs) with Kgm_vadalog.Engine.provenance = true }
        in
        let session, epoch =
          match
            Option.bind state_dir (fun dir ->
                Kgm_server.recover ~options ~telemetry:tele ~journal:jr ~dir
                  [ program ])
          with
          | Some (st, ep, path) ->
              Format.printf "%% recovered epoch %d from %s (%d facts)@." ep
                path
                (Kgm_vadalog.Database.total (Kgm_vadalog.Incremental.db st));
              (st, ep)
          | None ->
              let db = Kgm_vadalog.Database.create () in
              ignore (Kgm_vadalog.Io_sources.load_inputs program db);
              let st, stats =
                Kgm_vadalog.Incremental.chase ~options ~telemetry:tele
                  ~journal:jr ~db program
              in
              Format.printf "%% chase: %d new facts in %d rounds (%.3fs)@."
                stats.Kgm_vadalog.Engine.new_facts
                stats.Kgm_vadalog.Engine.rounds
                stats.Kgm_vadalog.Engine.elapsed_s;
              (* an immediate generation 0, so a crash before the first
                 update can still recover *)
              (match state_dir with
               | Some dir ->
                   ignore (Kgm_server.save_session ~dir ~keep ~epoch:0 st)
               | None -> ());
              (st, 0)
        in
        let cfg =
          { Kgm_server.sock; workers; queue_capacity = queue;
            default_deadline_s = request_deadline; io_timeout_s = 10.;
            idle_timeout_s = idle_timeout;
            max_requests_per_conn = max_requests;
            state_dir; keep; snapshot_every; debug_endpoints }
        in
        let srv =
          Kgm_server.create ~telemetry:tele ~journal:jr ~epoch cfg ~session
        in
        List.iter
          (fun s ->
            try
              Sys.set_signal s
                (Sys.Signal_handle (fun _ -> Kgm_server.drain srv))
            with Invalid_argument _ -> ())
          [ Sys.sigint; Sys.sigterm ];
        Kgm_server.start srv;
        Format.printf "%% serving on %s (workers %d, queue %d, epoch %d)@."
          sock workers queue epoch;
        Format.print_flush ();
        let s = Kgm_server.run_until_drained srv in
        Format.printf
          "%% drained: %d requests (%d shed, %d errors), %d updates, \
           epoch %d, %d faults absorbed@."
          s.Kgm_server.st_requests s.Kgm_server.st_shed s.Kgm_server.st_errors
          s.Kgm_server.st_updates s.Kgm_server.st_epoch
          s.Kgm_server.st_faults)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve a materialized Vadalog program over a Unix socket: \
             concurrent queries against frozen epochs, incremental \
             update batches, graceful drain on SIGINT/SIGTERM, crash \
             recovery from --state-dir.")
    Term.(const run $ file $ sock $ state_dir $ workers $ queue $ keep
          $ snapshot_every $ request_deadline $ idle_timeout $ max_requests
          $ debug_endpoints $ jobs_arg $ trace_arg $ metrics_arg
          $ journal_arg $ metrics_out_arg)

let call_cmd =
  let sock =
    Arg.(value & opt string "/tmp/kgmodel.sock"
         & info [ "sock" ] ~docv:"PATH" ~doc:"Server socket.")
  in
  let meth =
    Arg.(value & opt (some string) None
         & info [ "method"; "X" ] ~docv:"METHOD"
             ~doc:"HTTP method (default: GET, or POST when a body is \
                   given).")
  in
  let deadline =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"SECONDS"
             ~doc:"Request deadline, sent as x-kgm-deadline and bounding \
                   the socket IO.")
  in
  let path =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"PATH"
             ~doc:"Endpoint: /health /ready /status /metrics /epoch \
                   /query /explain /update.")
  in
  let body =
    Arg.(value & pos 1 (some string) None
         & info [] ~docv:"BODY"
             ~doc:"Request body (a query pattern, a fact, or an update \
                   batch); - reads stdin.")
  in
  let repeat =
    Arg.(value & opt int 1
         & info [ "repeat" ] ~docv:"N"
             ~doc:"Send the request $(docv) times per client (over one \
                   kept-alive connection unless --close-per-request) and \
                   report req/s and p50/p99 latency on stderr.")
  in
  let concurrency =
    Arg.(value & opt int 1
         & info [ "concurrency" ] ~docv:"C"
             ~doc:"Closed-loop client threads, each with its own \
                   connection, each sending --repeat requests.")
  in
  let close_per_request =
    Arg.(value & flag
         & info [ "close-per-request" ]
             ~doc:"Open a fresh connection per request (the PR-8 \
                   protocol) — the keep-alive speedup baseline.")
  in
  let run sock meth deadline path body repeat concurrency close_per_request =
    handle (fun () ->
        let body =
          match body with
          | Some "-" -> Some (In_channel.input_all stdin)
          | b -> b
        in
        let meth =
          match meth with
          | Some m -> String.uppercase_ascii m
          | None -> if body = None then "GET" else "POST"
        in
        if repeat <= 1 && concurrency <= 1 && not close_per_request then
          match
            Kgm_server.Client.request ?deadline_s:deadline ?body ~sock ~meth
              ~path ()
          with
          | code, b ->
              print_string b;
              if code >= 400 then begin
                Format.eprintf "error: HTTP %d@." code;
                exit 1
              end
          | exception Unix.Unix_error (e, _, _) ->
              Format.eprintf "error: %s: %s@." sock (Unix.error_message e);
              exit 1
        else begin
          (* closed-loop load: C client threads, R requests each. Every
             answer must be identical — the epochs-are-immutable
             consistency check rides along with the throughput number. *)
          let repeat = max 1 repeat and concurrency = max 1 concurrency in
          Kgm_server.tune_runtime_for_serving ();
          let errors = Atomic.make 0 in
          let results = Array.make concurrency (None, [||]) in
          let one_client i () =
            try
              let lats = Array.make repeat 0. in
              let first = ref None in
              let note code b =
                if code >= 400 then Atomic.incr errors
                else
                  match !first with
                  | None -> first := Some b
                  | Some f -> if not (String.equal f b) then Atomic.incr errors
              in
              if close_per_request then
                for k = 0 to repeat - 1 do
                  let t0 = Unix.gettimeofday () in
                  (match
                     Kgm_server.Client.request ?deadline_s:deadline ?body ~sock
                       ~meth ~path ()
                   with
                  | code, b -> note code b
                  | exception (Unix.Unix_error _ | Failure _) ->
                      Atomic.incr errors);
                  lats.(k) <- Unix.gettimeofday () -. t0
                done
              else begin
                let conn = ref (Kgm_server.Client.connect sock) in
                for k = 0 to repeat - 1 do
                  let t0 = Unix.gettimeofday () in
                  (match
                     Kgm_server.Client.request_on ?deadline_s:deadline ?body
                       !conn ~meth ~path ()
                   with
                  | code, b -> note code b
                  | exception (Unix.Unix_error _ | Failure _) -> (
                      (* the server may close on its request cap or an
                         idle gap — reconnect once before counting an
                         error *)
                      Kgm_server.Client.close !conn;
                      match
                        conn := Kgm_server.Client.connect sock;
                        Kgm_server.Client.request_on ?deadline_s:deadline ?body
                          !conn ~meth ~path ()
                      with
                      | code, b -> note code b
                      | exception (Unix.Unix_error _ | Failure _) ->
                          Atomic.incr errors));
                  lats.(k) <- Unix.gettimeofday () -. t0
                done;
                Kgm_server.Client.close !conn
              end;
              results.(i) <- (!first, lats)
            with Unix.Unix_error _ | Failure _ ->
              (* a client that cannot even connect must fail the run,
                 not vanish leaving rosy stats behind *)
              Atomic.incr errors
          in
          let t0 = Unix.gettimeofday () in
          let threads =
            List.init concurrency (fun i -> Thread.create (one_client i) ())
          in
          List.iter Thread.join threads;
          let wall = Unix.gettimeofday () -. t0 in
          let bodies = Array.to_list results |> List.filter_map fst in
          (match bodies with
          | b0 :: rest ->
              print_string b0;
              if not (List.for_all (String.equal b0) rest) then begin
                Format.eprintf "error: clients observed different answers@.";
                Atomic.incr errors
              end
          | [] -> ());
          let lats =
            Array.concat (Array.to_list (Array.map snd results))
          in
          Array.sort Float.compare lats;
          let pct p =
            let n = Array.length lats in
            if n = 0 then 0.
            else
              lats.(max 0 (min (n - 1)
                             (int_of_float
                                (Float.round (p /. 100. *. float (n - 1))))))
          in
          let total = repeat * concurrency in
          Format.eprintf
            "%% %d requests, %d clients%s: %.1f req/s, p50 %.3f ms, p99 \
             %.3f ms, %d errors@."
            total concurrency
            (if close_per_request then ", close-per-request" else ", keep-alive")
            (float total /. Float.max 1e-9 wall)
            (pct 50. *. 1e3) (pct 99. *. 1e3) (Atomic.get errors);
          if Atomic.get errors > 0 then exit 1
        end)
  in
  Cmd.v
    (Cmd.info "call"
       ~doc:"Send one request to a running $(b,kgmodel serve) and print \
             the response body (exit 1 on an HTTP error). With \
             $(b,--repeat)/$(b,--concurrency) it becomes a closed-loop \
             load generator: identical-answer checking, req/s and \
             p50/p99 on stderr.")
    Term.(const run $ sock $ meth $ deadline $ path $ body $ repeat
          $ concurrency $ close_per_request)

let stats_cmd =
  let n =
    Arg.(value & opt int 20_000 & info [ "n" ] ~doc:"Network size (vertices).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Generator seed.") in
  let run n seed =
    handle (fun () ->
        let o = Kgm_finance.Generator.generate ~seed ~n () in
        let s = Kgm_finance.Fin_stats.compute o.Kgm_finance.Generator.graph in
        Format.printf "%a" Kgm_finance.Fin_stats.pp s)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Topology statistics of a synthetic shareholding graph (Sec. 2.1).")
    Term.(const run $ n $ seed)

let demo_cmd =
  let n =
    Arg.(value & opt int 400 & info [ "n" ] ~doc:"Synthetic network size.")
  in
  let run n trace metrics jobs deadline ck_dir ck_every resume on_limit
      journal metrics_out progress =
    handle (fun () ->
        with_observability ~trace ~metrics ~journal ~metrics_out ~progress
          ~deadline
        @@ fun tele jr ->
        let cancel = install_sigint () in
        let schema = Kgm_finance.Company_schema.load () in
        let dict = Kgmodel.Dictionary.create () in
        let sid = Kgmodel.Dictionary.store dict schema in
        let inst = Kgmodel.Instances.create dict in
        let o = Kgm_finance.Generator.generate ~n () in
        let data = Kgm_finance.Generator.to_company_graph o in
        Format.printf "data: %a@." Kgm_graphdb.Pgraph.pp_summary data;
        let options =
          { (options_for_jobs jobs) with
            Kgm_vadalog.Engine.deadline_s = deadline;
            on_limit = `Partial }
        in
        let report =
          Kgmodel.Materialize.materialize ~options ~telemetry:tele
            ~journal:jr ~cancel ?checkpoint_dir:ck_dir
            ~checkpoint_every:ck_every ~resume ~instances:inst ~schema
            ~schema_oid:sid ~data ~sigma:Kgm_finance.Intensional.full ()
        in
        Format.printf
          "materialized%s: load %.3fs, reason %.3fs, flush %.3fs@."
          (if report.Kgmodel.Materialize.incomplete then " (INCOMPLETE)"
           else "")
          report.Kgmodel.Materialize.load_s report.Kgmodel.Materialize.reason_s
          report.Kgmodel.Materialize.flush_s;
        Format.printf "derived: %d nodes, %d edges, %d attribute values@."
          report.Kgmodel.Materialize.derived_nodes
          report.Kgmodel.Materialize.derived_edges
          report.Kgmodel.Materialize.derived_attrs;
        Format.printf "after: %a@." Kgm_graphdb.Pgraph.pp_summary data;
        if metrics then
          Format.printf "%a" Kgm_vadalog.Engine.pp_rule_table
            report.Kgmodel.Materialize.engine_stats;
        report_stopped ~on_limit ~metrics
          report.Kgmodel.Materialize.engine_stats)
  in
  Cmd.v
    (Cmd.info "demo"
       ~doc:"End-to-end Algorithm 2 on a synthetic Company KG.")
    Term.(const run $ n $ trace_arg $ metrics_arg $ jobs_arg $ deadline_arg
          $ checkpoint_dir_arg $ checkpoint_every_arg $ resume_arg
          $ on_limit_arg $ journal_arg $ metrics_out_arg $ progress_arg)

let diff_cmd =
  let old_file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"OLD" ~doc:"Previous GSL design.")
  in
  let new_file =
    Arg.(required & pos 1 (some file) None
         & info [] ~docv:"NEW" ~doc:"Evolved GSL design.")
  in
  let run old_file new_file =
    handle (fun () ->
        let a = Kgmodel.Gsl.parse_validated (read_file old_file) in
        let b = Kgmodel.Gsl.parse_validated (read_file new_file) in
        let d = Kgmodel.Schema_diff.diff a b in
        Format.printf "%a" Kgmodel.Schema_diff.pp d;
        match Kgmodel.Schema_diff.migration_hints d with
        | [] -> ()
        | hints ->
            Format.printf "@.migration hints:@.";
            List.iter (Format.printf "  - %s@.") hints)
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Model-independent diff of two super-schemas, with migration hints.")
    Term.(const run $ old_file $ new_file)

let check_cmd =
  let schema_file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"SCHEMA" ~doc:"GSL design file.")
  in
  let n =
    Arg.(value & opt int 300
         & info [ "n" ] ~doc:"Size of the synthetic Company-KG instance to check \
                              (demo mode; the API checks arbitrary graphs).")
  in
  let run schema_file n =
    handle (fun () ->
        let schema = Kgmodel.Gsl.parse_validated (read_file schema_file) in
        (* demo: conformance-check a synthetic instance of the company KG
           when the design is compatible, otherwise just report the
           checker on an empty instance *)
        let g =
          if schema.Kgmodel.Supermodel.s_name = "company_kg" then
            Kgm_finance.Generator.to_company_graph
              (Kgm_finance.Generator.generate ~n ())
          else Kgm_graphdb.Pgraph.create ()
        in
        match Kgmodel.Conformance.check ~reject_intensional:true schema g with
        | [] ->
            Format.printf "instance conforms (%d nodes, %d edges)@."
              (Kgm_graphdb.Pgraph.node_count g)
              (Kgm_graphdb.Pgraph.edge_count g)
        | vs ->
            List.iter (Format.printf "%a@." Kgmodel.Conformance.pp_violation) vs;
            exit 1)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Conformance-check an instance against a super-schema.")
    Term.(const run $ schema_file $ n)

let figures_cmd =
  let out_dir =
    Arg.(value & opt string "figures"
         & info [ "out"; "o" ] ~doc:"Output directory for the figure artifacts.")
  in
  let run out_dir trace metrics jobs =
    handle (fun () ->
        with_telemetry ~trace ~metrics @@ fun tele ->
        let options = options_for_jobs jobs in
        if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
        let write name content =
          Kgm_telemetry.with_span tele ~cat:"figure" ("figure:" ^ name)
          @@ fun () ->
          let oc = open_out (Filename.concat out_dir name) in
          output_string oc content;
          close_out oc;
          Format.printf "wrote %s@." (Filename.concat out_dir name)
        in
        (* Fig. 2: the meta-model *)
        write "fig2_meta_model.dot" (Kgmodel.Metamodel.render_gamma_mm ());
        (* Fig. 3: the super-model dictionary + grapheme legend *)
        write "fig3_super_model.dot"
          (Kgmodel.Metamodel.render_super_model_dictionary ());
        write "fig3_grapheme_legend.txt" (Kgmodel.Render.grapheme_legend ());
        (* Fig. 4: the Company KG design diagram *)
        let schema = Kgm_finance.Company_schema.load () in
        write "fig4_company_kg.dot" (Kgmodel.Render.to_dot schema);
        write "fig4_company_kg.txt" (Kgmodel.Render.to_ascii schema);
        (* Figs. 6 and 8: the SSST translations *)
        let dict = Kgmodel.Dictionary.create () in
        let sid = Kgmodel.Dictionary.store dict schema in
        let pg_out =
          Kgmodel.Ssst.translate ~options ~telemetry:tele dict
            (Kgm_targets.Pg_model.mapping ()) sid
        in
        let pg = Kgm_targets.Pg_model.decode dict pg_out.Kgmodel.Ssst.target_oid in
        write "fig6_pg_schema.txt" (Format.asprintf "%a" Kgm_targets.Pg_model.pp pg);
        write "fig6_pg_constraints.cypher"
          (Kgm_targets.Pg_model.enforcement_script pg);
        let rel_out =
          Kgmodel.Ssst.translate ~options ~telemetry:tele dict
            (Kgm_targets.Relational_model.mapping ()) sid
        in
        let rel =
          Kgm_targets.Relational_model.decode dict rel_out.Kgmodel.Ssst.target_oid
        in
        write "fig8_relational_schema.txt"
          (Format.asprintf "%a" Kgm_relational.Rschema.pp rel);
        write "fig8_relational_schema.sql" (Kgm_targets.Relational_model.ddl rel);
        (* bonus targets: RDF-S and the CSV manifest *)
        write "company_kg.rdfs.ttl"
          (Kgm_targets.Triple_model.to_rdfs
             (Kgm_targets.Triple_model.translate_native schema));
        write "company_kg_csv_manifest.txt"
          (Kgm_targets.Csv_model.translate_native schema).Kgm_targets.Csv_model.manifest)
  in
  Cmd.v
    (Cmd.info "figures"
       ~doc:"Regenerate every figure artifact of the paper (Figs. 2, 3, 4, 6, 8).")
    Term.(const run $ out_dir $ trace_arg $ metrics_arg $ jobs_arg)

let journal_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE"
             ~doc:"A JSONL flight recording written by --journal.")
  in
  let ev_type =
    Arg.(value & opt (some string) None
         & info [ "type"; "t" ] ~docv:"TYPE"
             ~doc:"Only consider events of $(docv) (e.g. round.end, \
                   rule.batch, plan, chunk, checkpoint.write).")
  in
  let since =
    Arg.(value & opt (some float) None
         & info [ "since" ] ~docv:"SECONDS"
             ~doc:"Drop events before $(docv), in seconds since the \
                   journal was opened.")
  in
  let until =
    Arg.(value & opt (some float) None
         & info [ "until" ] ~docv:"SECONDS"
             ~doc:"Drop events after $(docv).")
  in
  let events =
    Arg.(value & flag
         & info [ "events" ]
             ~doc:"Print the (filtered) events back as JSONL instead of \
                   the summary.")
  in
  let run file ev_type since until events =
    handle (fun () ->
        let module Journal = Kgm_telemetry.Journal in
        match Journal.read_file file with
        | Error msg ->
            Kgm_common.Kgm_error.raise_error_ctx Kgm_common.Kgm_error.Storage
              [ ("file", file) ]
              "invalid journal: %s" msg
        | Ok evs ->
            let evs = Journal.filter ?ev_type ?since ?until evs in
            if events then
              List.iter
                (fun ev ->
                  print_endline
                    (Kgm_telemetry.Json.to_string (Journal.json_of_event ev)))
                evs
            else print_string (Journal.summarize evs))
  in
  Cmd.v
    (Cmd.info "journal"
       ~doc:"Summarize or filter a chase flight recording (--journal).")
    Term.(const run $ file $ ev_type $ since $ until $ events)

let () =
  (* KGM_FAULTS=site:rate[,...][,seed=N] arms the deterministic fault-
     injection harness for the whole process *)
  ignore (Kgm_resilience.Faults.configure_from_env ());
  let info =
    Cmd.info "kgmodel" ~version:"1.0.0"
      ~doc:"Model-independent design of Knowledge Graphs (EDBT 2022 reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ validate_cmd; render_cmd; translate_cmd; compile_cmd; reason_cmd;
            serve_cmd; call_cmd; stats_cmd; demo_cmd; diff_cmd; check_cmd;
            figures_cmd; journal_cmd ]))
