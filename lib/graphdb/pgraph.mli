(** In-memory property-graph store.

    Implements the paper's PG definition G = (N, E, μ, λ, σ) (Sec. 4)
    with the practical extensions every PG system has: multi-labels on
    nodes, label indexes, and property lookups. This store backs both
    enterprise data (the extensional component) and the KGModel
    {e graph dictionaries} that hold super-schemas, schemas and
    instance-level constructs. *)

open Kgm_common

type t

type id = Oid.t

val create : unit -> t

(** {1 Nodes} *)

val add_node : ?id:id -> t -> labels:string list -> props:(string * Value.t) list -> id
(** Raises [Kgm_error.Error] when [id] is already bound. *)

val node_exists : t -> id -> bool
val node_labels : t -> id -> string list
val node_prop : t -> id -> string -> Value.t option
val node_props : t -> id -> (string * Value.t) list
val set_node_prop : t -> id -> string -> Value.t -> unit
val remove_node_prop : t -> id -> string -> unit
(** Delete a property; a no-op when it is absent. *)

val add_node_label : t -> id -> string -> unit
val remove_node : t -> id -> unit
(** Also removes incident edges. *)

(** {1 Edges} *)

val add_edge :
  ?id:id -> t -> label:string -> src:id -> dst:id ->
  props:(string * Value.t) list -> id
(** Raises when an endpoint is missing or [id] is already bound. *)

val edge_exists : t -> id -> bool
val edge_label : t -> id -> string
val edge_ends : t -> id -> id * id
val edge_prop : t -> id -> string -> Value.t option
val edge_props : t -> id -> (string * Value.t) list
val set_edge_prop : t -> id -> string -> Value.t -> unit
val remove_edge_prop : t -> id -> string -> unit
(** Delete a property; a no-op when it is absent. *)

val remove_edge : t -> id -> unit

(** {1 Iteration and lookup} *)

val node_count : t -> int
val edge_count : t -> int

val iter_nodes : t -> (id -> unit) -> unit
val iter_edges : t -> (id -> unit) -> unit
val node_ids : t -> id list
val edge_ids : t -> id list

val nodes_with_label : t -> string -> id list
(** Indexed: O(size of answer). *)

val find_nodes : t -> ?label:string -> (string * Value.t) list -> id list
(** Nodes carrying all the given property values (and the label when
    given). *)

val out_edges : ?label:string -> t -> id -> id list
val in_edges : ?label:string -> t -> id -> id list
val neighbors_out : ?label:string -> t -> id -> id list
val neighbors_in : ?label:string -> t -> id -> id list

val edges_with_label : t -> string -> id list

val fresh_id : t -> id
(** Mint an id from the store's own generator (used for derived
    elements when no Skolem discipline applies). *)

(** {1 Analytics projection} *)

val to_digraph :
  ?node_filter:(id -> bool) -> ?edge_label:string -> t ->
  Kgm_algo.Digraph.t * id array
(** Project onto a compact digraph for the algorithm substrate; the
    returned array maps compact vertex indices back to node ids. *)

(** {1 Whole-graph utilities} *)

val copy : t -> t

val equal_graphs : t -> t -> bool
(** Structural equality by node/edge identity, labels and properties
    (order-insensitive). Used by round-trip tests. *)

val pp_summary : Format.formatter -> t -> unit
