open Kgm_common

type id = Oid.t

module IdMap = Hashtbl.Make (struct
  type t = Oid.t

  let equal = Oid.equal
  let hash = Oid.hash
end)

type node = {
  mutable labels : string list;
  n_props : (string, Value.t) Hashtbl.t;
  mutable outgoing : id list; (* edge ids, reverse insertion order *)
  mutable incoming : id list;
}

type edge = {
  e_label : string;
  src : id;
  dst : id;
  e_props : (string, Value.t) Hashtbl.t;
}

type t = {
  nodes : node IdMap.t;
  edges : edge IdMap.t;
  label_index : (string, id list ref) Hashtbl.t;
  edge_label_index : (string, id list ref) Hashtbl.t;
  gen : Oid.gen;
}

let create () =
  { nodes = IdMap.create 256;
    edges = IdMap.create 256;
    label_index = Hashtbl.create 32;
    edge_label_index = Hashtbl.create 32;
    gen = Oid.make_gen () }

let fresh_id t = Oid.fresh t.gen

let index_add index key id =
  match Hashtbl.find_opt index key with
  | Some l -> l := id :: !l
  | None -> Hashtbl.add index key (ref [ id ])

let index_remove index key id =
  match Hashtbl.find_opt index key with
  | Some l -> l := List.filter (fun x -> not (Oid.equal x id)) !l
  | None -> ()

let get_node t id =
  match IdMap.find_opt t.nodes id with
  | Some n -> n
  | None -> Kgm_error.storage_error "no node %s" (Oid.to_string id)

let get_edge t id =
  match IdMap.find_opt t.edges id with
  | Some e -> e
  | None -> Kgm_error.storage_error "no edge %s" (Oid.to_string id)

let add_node ?id t ~labels ~props =
  let id = match id with Some i -> i | None -> fresh_id t in
  if IdMap.mem t.nodes id || IdMap.mem t.edges id then
    Kgm_error.storage_error "id %s already bound" (Oid.to_string id);
  let n_props = Hashtbl.create (List.length props) in
  List.iter (fun (k, v) -> Hashtbl.replace n_props k v) props;
  IdMap.add t.nodes id { labels; n_props; outgoing = []; incoming = [] };
  List.iter (fun l -> index_add t.label_index l id) labels;
  id

let node_exists t id = IdMap.mem t.nodes id
let node_labels t id = (get_node t id).labels
let node_prop t id k = Hashtbl.find_opt (get_node t id).n_props k

let node_props t id =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) (get_node t id).n_props []
  |> List.sort compare

let set_node_prop t id k v = Hashtbl.replace (get_node t id).n_props k v

let remove_node_prop t id k = Hashtbl.remove (get_node t id).n_props k

let add_node_label t id l =
  let n = get_node t id in
  if not (List.mem l n.labels) then begin
    n.labels <- n.labels @ [ l ];
    index_add t.label_index l id
  end

let add_edge ?id t ~label ~src ~dst ~props =
  let id = match id with Some i -> i | None -> fresh_id t in
  if IdMap.mem t.edges id || IdMap.mem t.nodes id then
    Kgm_error.storage_error "id %s already bound" (Oid.to_string id);
  let src_node = get_node t src in
  let dst_node = get_node t dst in
  let e_props = Hashtbl.create (List.length props) in
  List.iter (fun (k, v) -> Hashtbl.replace e_props k v) props;
  IdMap.add t.edges id { e_label = label; src; dst; e_props };
  src_node.outgoing <- id :: src_node.outgoing;
  dst_node.incoming <- id :: dst_node.incoming;
  index_add t.edge_label_index label id;
  id

let edge_exists t id = IdMap.mem t.edges id
let edge_label t id = (get_edge t id).e_label
let edge_ends t id = let e = get_edge t id in (e.src, e.dst)
let edge_prop t id k = Hashtbl.find_opt (get_edge t id).e_props k

let edge_props t id =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) (get_edge t id).e_props []
  |> List.sort compare

let set_edge_prop t id k v = Hashtbl.replace (get_edge t id).e_props k v

let remove_edge_prop t id k = Hashtbl.remove (get_edge t id).e_props k

let remove_edge t id =
  let e = get_edge t id in
  (match IdMap.find_opt t.nodes e.src with
   | Some n -> n.outgoing <- List.filter (fun x -> not (Oid.equal x id)) n.outgoing
   | None -> ());
  (match IdMap.find_opt t.nodes e.dst with
   | Some n -> n.incoming <- List.filter (fun x -> not (Oid.equal x id)) n.incoming
   | None -> ());
  index_remove t.edge_label_index e.e_label id;
  IdMap.remove t.edges id

let remove_node t id =
  let n = get_node t id in
  List.iter (remove_edge t) n.outgoing;
  List.iter (remove_edge t) n.incoming;
  List.iter (fun l -> index_remove t.label_index l id) n.labels;
  IdMap.remove t.nodes id

let node_count t = IdMap.length t.nodes
let edge_count t = IdMap.length t.edges

let iter_nodes t f = IdMap.iter (fun id _ -> f id) t.nodes
let iter_edges t f = IdMap.iter (fun id _ -> f id) t.edges

let node_ids t =
  IdMap.fold (fun id _ acc -> id :: acc) t.nodes [] |> List.sort Oid.compare

let edge_ids t =
  IdMap.fold (fun id _ acc -> id :: acc) t.edges [] |> List.sort Oid.compare

let nodes_with_label t l =
  match Hashtbl.find_opt t.label_index l with
  | Some ids -> List.sort Oid.compare !ids
  | None -> []

let edges_with_label t l =
  match Hashtbl.find_opt t.edge_label_index l with
  | Some ids -> List.sort Oid.compare !ids
  | None -> []

let find_nodes t ?label props =
  let candidates =
    match label with Some l -> nodes_with_label t l | None -> node_ids t
  in
  List.filter
    (fun id ->
      let n = get_node t id in
      List.for_all
        (fun (k, v) ->
          match Hashtbl.find_opt n.n_props k with
          | Some v' -> Value.equal v v'
          | None -> false)
        props)
    candidates

let filter_edges t ?label ids =
  match label with
  | None -> ids
  | Some l -> List.filter (fun e -> (get_edge t e).e_label = l) ids

let out_edges ?label t id =
  filter_edges t ?label (List.rev (get_node t id).outgoing)

let in_edges ?label t id =
  filter_edges t ?label (List.rev (get_node t id).incoming)

let neighbors_out ?label t id =
  List.map (fun e -> (get_edge t e).dst) (out_edges ?label t id)

let neighbors_in ?label t id =
  List.map (fun e -> (get_edge t e).src) (in_edges ?label t id)

let to_digraph ?node_filter ?edge_label t =
  let keep = match node_filter with Some f -> f | None -> fun _ -> true in
  let ids = List.filter keep (node_ids t) in
  let back = Array.of_list ids in
  let index = IdMap.create (Array.length back) in
  Array.iteri (fun i id -> IdMap.add index id i) back;
  let g = Kgm_algo.Digraph.create (Array.length back) in
  IdMap.iter
    (fun _ e ->
      let ok = match edge_label with Some l -> e.e_label = l | None -> true in
      if ok then
        match IdMap.find_opt index e.src, IdMap.find_opt index e.dst with
        | Some u, Some v -> Kgm_algo.Digraph.add_edge g u v
        | _ -> ())
    t.edges;
  (g, back)

let copy t =
  let t' = create () in
  IdMap.iter
    (fun id n ->
      ignore
        (add_node ~id t' ~labels:n.labels
           ~props:(Hashtbl.fold (fun k v acc -> (k, v) :: acc) n.n_props [])))
    t.nodes;
  (* preserve edge insertion order per node by re-adding in order *)
  List.iter
    (fun id ->
      let e = get_edge t id in
      ignore
        (add_edge ~id t' ~label:e.e_label ~src:e.src ~dst:e.dst
           ~props:(Hashtbl.fold (fun k v acc -> (k, v) :: acc) e.e_props [])))
    (edge_ids t);
  t'

let equal_graphs a b =
  node_count a = node_count b
  && edge_count a = edge_count b
  && List.for_all
       (fun id ->
         node_exists b id
         && List.sort compare (node_labels a id) = List.sort compare (node_labels b id)
         && node_props a id = node_props b id)
       (node_ids a)
  && List.for_all
       (fun id ->
         edge_exists b id
         && edge_label a id = edge_label b id
         && edge_ends a id = edge_ends b id
         && edge_props a id = edge_props b id)
       (edge_ids a)

let pp_summary ppf t =
  Format.fprintf ppf "graph: %d nodes, %d edges" (node_count t) (edge_count t);
  let labels =
    Hashtbl.fold (fun l ids acc -> (l, List.length !ids) :: acc) t.label_index []
    |> List.sort compare
  in
  List.iter (fun (l, c) -> Format.fprintf ppf "@.  :%s %d" l c) labels
