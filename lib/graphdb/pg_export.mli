(** Serialization of property graphs to deployment artifacts: a Cypher
    CREATE script (the form a Neo4J-like target consumes), GraphML, and
    a CSV bundle (the "non-graph-like models frequently used to
    serialize graphs" of Sec. 2.2). *)

val to_cypher : Pgraph.t -> string
(** CREATE statements, nodes first (with a [_oid] property carrying the
    internal identifier), then MATCH+CREATE per edge. Deterministic
    order. *)

val to_graphml : Pgraph.t -> string

val xml_escape : string -> string
(** XML attribute/content escaping used by {!to_graphml} ([<], [>],
    [&] and the double quote); injective, so unescaping entities is its
    exact inverse. Exposed for the round-trip property tests. *)

val csv_escape : string -> string
(** RFC-4180 field quoting used by {!to_csv_bundle}: fields containing
    a comma, a double quote, or either line-ending character ([\n] or
    [\r]) are wrapped in quotes with embedded quotes doubled —
    {!Pg_import.parse_csv} is its exact inverse. Exposed for the
    round-trip property tests. *)

val to_csv_bundle : Pgraph.t -> (string * string) list
(** One CSV document per node label and per edge label:
    [("nodes_<label>.csv", data); ("edges_<label>.csv", data); ...].
    Node files carry [_oid] plus the union of property names among that
    label; edge files carry [_oid;_src;_dst] plus properties. *)
