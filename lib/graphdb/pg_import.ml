open Kgm_common

(* RFC-4180-ish CSV: quoted cells may contain commas, newlines and
   escaped double quotes. *)
let parse_csv doc =
  let rows = ref [] in
  let row = ref [] in
  let cell = Buffer.create 32 in
  let n = String.length doc in
  let flush_cell () =
    row := Buffer.contents cell :: !row;
    Buffer.clear cell
  in
  let flush_row () =
    flush_cell ();
    rows := List.rev !row :: !rows;
    row := []
  in
  let i = ref 0 in
  let in_quotes = ref false in
  while !i < n do
    let c = doc.[!i] in
    if !in_quotes then begin
      if c = '"' then
        if !i + 1 < n && doc.[!i + 1] = '"' then begin
          Buffer.add_char cell '"';
          incr i
        end
        else in_quotes := false
      else Buffer.add_char cell c
    end
    else begin
      match c with
      | '"' -> in_quotes := true
      | ',' -> flush_cell ()
      | '\n' -> flush_row ()
      | '\r' -> ()
      | c -> Buffer.add_char cell c
    end;
    incr i
  done;
  if Buffer.length cell > 0 || !row <> [] then flush_row ();
  List.rev !rows

let strip_prefix ~prefix s =
  let lp = String.length prefix in
  if String.length s > lp && String.sub s 0 lp = prefix then
    Some (String.sub s lp (String.length s - lp))
  else None

let strip_suffix ~suffix s =
  let ls = String.length suffix and n = String.length s in
  if n > ls && String.sub s (n - ls) ls = suffix then
    Some (String.sub s 0 (n - ls))
  else None

let oid_of_cell cell =
  match Oid.of_string cell with
  | Some o -> o
  | None -> Kgm_error.storage_error "csv import: bad oid %S" cell

(* Exported values are printed with Value.pp; recover the common cases
   (quoted strings, numbers, booleans, dates, oids); anything else stays
   a string. Strings are printed in OCaml %S notation, so they must be
   read back with the matching Scanf directive — stripping the outer
   quotes alone would keep the backslash escapes (newline, quote,
   backslash, decimal) literal and break the export/import round
   trip. *)
let value_of_cell cell =
  let n = String.length cell in
  if n >= 2 && cell.[0] = '"' && cell.[n - 1] = '"' then
    match Scanf.sscanf_opt cell "%S%!" (fun s -> s) with
    | Some s -> Value.String s
    | None ->
        (* not valid %S (e.g. hand-written CSV): keep the old permissive
           reading of everything between the outer quotes *)
        Value.String (String.sub cell 1 (n - 2))
  else
    match Oid.of_string cell with
    | Some o -> Value.Id o
    | None -> (
        match Value.parse Value.TDate cell with
        | Some d -> d
        | None -> (
            match Value.parse Value.TAny cell with
            | Some v -> v
            | None -> Value.String cell))

let of_csv_bundle files =
  let g = Pgraph.create () in
  let props_of header cells =
    List.concat
      (List.map2
         (fun k v ->
           if String.length k > 0 && k.[0] = '_' then []
           else if v = "" then []
           else [ (k, value_of_cell v) ])
         header cells)
  in
  let col header name =
    let rec idx i = function
      | [] -> Kgm_error.storage_error "csv import: missing column %s" name
      | c :: rest -> if c = name then i else idx (i + 1) rest
    in
    idx 0 header
  in
  (* nodes first, then edges *)
  List.iter
    (fun (filename, doc) ->
      match strip_prefix ~prefix:"nodes_" filename with
      | Some rest -> (
          match strip_suffix ~suffix:".csv" rest with
          | Some label -> (
              match parse_csv doc with
              | header :: rows ->
                  let oid_i = col header "_oid" in
                  List.iter
                    (fun cells ->
                      if List.length cells = List.length header then begin
                        let id = oid_of_cell (List.nth cells oid_i) in
                        ignore
                          (Pgraph.add_node ~id g ~labels:[ label ]
                             ~props:(props_of header cells))
                      end)
                    rows
              | [] -> ())
          | None -> ())
      | None -> ())
    files;
  List.iter
    (fun (filename, doc) ->
      match strip_prefix ~prefix:"edges_" filename with
      | Some rest -> (
          match strip_suffix ~suffix:".csv" rest with
          | Some label -> (
              match parse_csv doc with
              | header :: rows ->
                  let oid_i = col header "_oid" in
                  let src_i = col header "_src" in
                  let dst_i = col header "_dst" in
                  List.iter
                    (fun cells ->
                      if List.length cells = List.length header then begin
                        let id = oid_of_cell (List.nth cells oid_i) in
                        let src = oid_of_cell (List.nth cells src_i) in
                        let dst = oid_of_cell (List.nth cells dst_i) in
                        ignore
                          (Pgraph.add_edge ~id g ~label ~src ~dst
                             ~props:(props_of header cells))
                      end)
                    rows
              | [] -> ())
          | None -> ())
      | None -> ())
    files;
  g
