open Kgm_common

let rec cypher_value = function
  | Value.Int i -> string_of_int i
  | Value.Float f -> Printf.sprintf "%.12g" f
  | Value.String s -> Printf.sprintf "%S" s
  | Value.Bool b -> if b then "true" else "false"
  | Value.Date (y, m, d) -> Printf.sprintf "date(\"%04d-%02d-%02d\")" y m d
  | Value.Id o -> Printf.sprintf "%S" (Oid.to_string o)
  | Value.Null _ -> "null"
  | Value.List l ->
      "[" ^ String.concat ", " (List.map cypher_value l) ^ "]"

let cypher_props ?(extra = []) props =
  let all = extra @ props in
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> Printf.sprintf "%s: %s" k (cypher_value v)) all)
  ^ "}"

let to_cypher g =
  let buf = Buffer.create 4096 in
  List.iter
    (fun id ->
      let labels = Pgraph.node_labels g id in
      let label_str = String.concat "" (List.map (fun l -> ":" ^ l) labels) in
      Buffer.add_string buf
        (Printf.sprintf "CREATE (%s %s);\n" label_str
           (cypher_props
              ~extra:[ ("_oid", Value.String (Oid.to_string id)) ]
              (Pgraph.node_props g id))))
    (Pgraph.node_ids g);
  List.iter
    (fun id ->
      let src, dst = Pgraph.edge_ends g id in
      Buffer.add_string buf
        (Printf.sprintf
           "MATCH (a {_oid: %S}), (b {_oid: %S}) CREATE (a)-[:%s %s]->(b);\n"
           (Oid.to_string src) (Oid.to_string dst) (Pgraph.edge_label g id)
           (cypher_props
              ~extra:[ ("_oid", Value.String (Oid.to_string id)) ]
              (Pgraph.edge_props g id))))
    (Pgraph.edge_ids g);
  Buffer.contents buf

let xml_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_graphml g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  Buffer.add_string buf
    "<graphml xmlns=\"http://graphml.graphdrawing.org/xmlns\">\n<graph edgedefault=\"directed\">\n";
  List.iter
    (fun id ->
      Buffer.add_string buf
        (Printf.sprintf "  <node id=\"%s\">\n" (xml_escape (Oid.to_string id)));
      Buffer.add_string buf
        (Printf.sprintf "    <data key=\"labels\">%s</data>\n"
           (xml_escape (String.concat ";" (Pgraph.node_labels g id))));
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf
            (Printf.sprintf "    <data key=\"%s\">%s</data>\n" (xml_escape k)
               (xml_escape (Value.to_string v))))
        (Pgraph.node_props g id);
      Buffer.add_string buf "  </node>\n")
    (Pgraph.node_ids g);
  List.iter
    (fun id ->
      let src, dst = Pgraph.edge_ends g id in
      Buffer.add_string buf
        (Printf.sprintf "  <edge id=\"%s\" source=\"%s\" target=\"%s\" label=\"%s\">\n"
           (xml_escape (Oid.to_string id))
           (xml_escape (Oid.to_string src))
           (xml_escape (Oid.to_string dst))
           (xml_escape (Pgraph.edge_label g id)));
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf
            (Printf.sprintf "    <data key=\"%s\">%s</data>\n" (xml_escape k)
               (xml_escape (Value.to_string v))))
        (Pgraph.edge_props g id);
      Buffer.add_string buf "  </edge>\n")
    (Pgraph.edge_ids g);
  Buffer.add_string buf "</graph>\n</graphml>\n";
  Buffer.contents buf

(* RFC 4180: a field containing a separator, a quote, or either line
   ending character must be quoted. '\r' matters as much as '\n' — an
   unquoted CR is dropped by the importer's line handling, so CR/CRLF
   payloads would silently corrupt the bundle. *)
let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let csv_value = function
  | Value.Null _ -> ""
  | v -> csv_escape (Value.to_string v)

module SS = Set.Make (String)

let to_csv_bundle g =
  (* group nodes by primary (first) label, edges by label *)
  let node_groups = Hashtbl.create 16 in
  List.iter
    (fun id ->
      let label =
        match Pgraph.node_labels g id with l :: _ -> l | [] -> "_unlabeled"
      in
      let prev = Option.value ~default:[] (Hashtbl.find_opt node_groups label) in
      Hashtbl.replace node_groups label (id :: prev))
    (List.rev (Pgraph.node_ids g));
  let edge_groups = Hashtbl.create 16 in
  List.iter
    (fun id ->
      let label = Pgraph.edge_label g id in
      let prev = Option.value ~default:[] (Hashtbl.find_opt edge_groups label) in
      Hashtbl.replace edge_groups label (id :: prev))
    (List.rev (Pgraph.edge_ids g));
  let render_group header_extra props_of ids =
    let keys =
      List.fold_left
        (fun acc id ->
          List.fold_left (fun acc (k, _) -> SS.add k acc) acc (props_of id))
        SS.empty ids
      |> SS.elements
    in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf (String.concat "," (List.map fst header_extra @ keys));
    Buffer.add_char buf '\n';
    List.iter
      (fun id ->
        let props = props_of id in
        let cells =
          List.map (fun (_, f) -> f id) header_extra
          @ List.map
              (fun k ->
                match List.assoc_opt k props with
                | Some v -> csv_value v
                | None -> "")
              keys
        in
        Buffer.add_string buf (String.concat "," cells);
        Buffer.add_char buf '\n')
      ids;
    Buffer.contents buf
  in
  let node_files =
    Hashtbl.fold
      (fun label ids acc ->
        let doc =
          render_group
            [ ("_oid", fun id -> csv_escape (Oid.to_string id)) ]
            (Pgraph.node_props g) (List.rev ids)
        in
        (Printf.sprintf "nodes_%s.csv" label, doc) :: acc)
      node_groups []
  in
  let edge_files =
    Hashtbl.fold
      (fun label ids acc ->
        let doc =
          render_group
            [ ("_oid", fun id -> csv_escape (Oid.to_string id));
              ("_src", fun id -> csv_escape (Oid.to_string (fst (Pgraph.edge_ends g id))));
              ("_dst", fun id -> csv_escape (Oid.to_string (snd (Pgraph.edge_ends g id)))) ]
            (Pgraph.edge_props g) (List.rev ids)
        in
        (Printf.sprintf "edges_%s.csv" label, doc) :: acc)
      edge_groups []
  in
  List.sort compare (node_files @ edge_files)
