(** A fixed-size pool of OCaml 5 domains with deterministic, ordered
    results.

    Built only on the stdlib multicore primitives ([Domain], [Mutex],
    [Condition], [Atomic]); no external dependencies. The pool owns
    [size - 1] worker domains — the caller's domain is the remaining
    worker: {!run} drains the queue from the submitting domain too, so a
    pool of size 1 spawns no domains and degenerates to strictly inline,
    in-order execution. This makes [size = 1] a zero-overhead identity
    and guarantees that results never depend on the pool size: tasks may
    complete in any order, but {!run} returns them in submission order.

    Tasks must not themselves call {!run} on the same pool (no nested
    submission); the Vadalog engine uses one flat fan-out per fixpoint
    round. *)

type pool = {
  size : int;
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;  (** signalled when tasks arrive or at stop *)
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue && not pool.stop do
    Condition.wait pool.nonempty pool.mutex
  done;
  if Queue.is_empty pool.queue then Mutex.unlock pool.mutex (* stop *)
  else begin
    let task = Queue.pop pool.queue in
    Mutex.unlock pool.mutex;
    task ();
    worker_loop pool
  end

let create size =
  let size = max 1 size in
  let pool =
    { size; queue = Queue.create (); mutex = Mutex.create ();
      nonempty = Condition.create (); stop = false; domains = [] }
  in
  pool.domains <-
    List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size pool = pool.size

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.domains;
  pool.domains <- []

let with_pool size f =
  let pool = create size in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* The caller's domain helps drain the queue, then blocks until every
   task of this batch (including ones stolen by workers) has finished. *)
let run (type a) pool (thunks : (unit -> a) array) : a list =
  let n = Array.length thunks in
  if n = 0 then []
  else if pool.domains = [] then
    (* inline fast path: no synchronization, strict submission order *)
    Array.to_list (Array.map (fun f -> f ()) thunks)
  else begin
    let results : a option array = Array.make n None in
    let error : exn option Atomic.t = Atomic.make None in
    let remaining = Atomic.make n in
    let finished = Condition.create () in
    let task i () =
      (try results.(i) <- Some (thunks.(i) ())
       with e -> ignore (Atomic.compare_and_set error None (Some e)));
      Mutex.lock pool.mutex;
      if Atomic.fetch_and_add remaining (-1) = 1 then
        Condition.broadcast finished;
      Mutex.unlock pool.mutex
    in
    Mutex.lock pool.mutex;
    for i = 0 to n - 1 do
      Queue.add (task i) pool.queue
    done;
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.mutex;
    let rec help () =
      Mutex.lock pool.mutex;
      match Queue.take_opt pool.queue with
      | Some t ->
          Mutex.unlock pool.mutex;
          t ();
          help ()
      | None -> Mutex.unlock pool.mutex
    in
    help ();
    Mutex.lock pool.mutex;
    while Atomic.get remaining > 0 do
      Condition.wait finished pool.mutex
    done;
    Mutex.unlock pool.mutex;
    (match Atomic.get error with Some e -> raise e | None -> ());
    Array.to_list
      (Array.map (function Some r -> r | None -> assert false) results)
  end

let parallel_chunks pool items ~chunk_size f =
  let chunk_size = max 1 chunk_size in
  let n = Array.length items in
  let n_chunks = (n + chunk_size - 1) / chunk_size in
  run pool
    (Array.init n_chunks (fun c ->
         let lo = c * chunk_size in
         let chunk = Array.sub items lo (min chunk_size (n - lo)) in
         fun () -> f chunk))

let chunk_size_for pool ~len =
  (* about four chunks per worker: enough slack for load balancing,
     few enough that per-chunk overhead stays negligible *)
  max 1 ((len + (4 * pool.size) - 1) / (4 * pool.size))
