(** A fixed-size pool of OCaml 5 domains with deterministic, ordered
    results.

    Built only on the stdlib multicore primitives ([Domain], [Mutex],
    [Condition], [Atomic]); no external dependencies. The pool owns
    [size - 1] worker domains — the caller's domain is the remaining
    worker: {!run} drains the queue from the submitting domain too, so a
    pool of size 1 spawns no domains and degenerates to strictly inline,
    in-order execution. This makes [size = 1] a zero-overhead identity
    and guarantees that results never depend on the pool size: tasks may
    complete in any order, but {!run} returns them in submission order.

    Tasks must not themselves call {!run} on the same pool (no nested
    submission); the Vadalog engine uses one flat fan-out per fixpoint
    round.

    A task that raises fails the whole batch: the batch still runs to
    completion, then the error of the {e lowest submission index} is
    re-raised — deterministically, regardless of completion schedule —
    wrapped in [Kgm_error] with the worker domain and chunk index in the
    context and the original backtrace preserved. *)

open Kgm_common

type pool = {
  size : int;
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;  (** signalled when tasks arrive or at stop *)
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue && not pool.stop do
    Condition.wait pool.nonempty pool.mutex
  done;
  if Queue.is_empty pool.queue then Mutex.unlock pool.mutex (* stop *)
  else begin
    let task = Queue.pop pool.queue in
    Mutex.unlock pool.mutex;
    task ();
    worker_loop pool
  end

let create size =
  let size = max 1 size in
  let pool =
    { size; queue = Queue.create (); mutex = Mutex.create ();
      nonempty = Condition.create (); stop = false; domains = [] }
  in
  pool.domains <-
    List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size pool = pool.size

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.domains;
  pool.domains <- []

let with_pool size f =
  let pool = create size in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* A failing worker task is re-raised on the caller's domain as a
   [Kgm_error] locating the failure: the worker domain that ran it and
   the chunk (submission index) it was working on. [Kgm_error]s keep
   their stage and message and gain the context; anything else is
   wrapped as a [Reason] error. The original backtrace is re-attached
   either way, so the failing frame is not lost at the domain hop. *)
let reraise_wrapped ~chunk ~of_ ~worker_id (e, bt) =
  let context =
    [ ("worker", string_of_int worker_id);
      ("chunk", Printf.sprintf "%d/%d" chunk of_) ]
  in
  let wrapped =
    match e with
    | Kgm_error.Error err -> Kgm_error.Error (Kgm_error.with_context context err)
    | e ->
        Kgm_error.Error
          { Kgm_error.stage = Kgm_error.Reason;
            message = "worker exception: " ^ Printexc.to_string e;
            context }
  in
  Printexc.raise_with_backtrace wrapped bt

(* The caller's domain helps drain the queue, then blocks until every
   task of this batch (including ones stolen by workers) has finished.
   [enqueue] lists the submission indices in the order they enter the
   shared queue — the scheduling knob. Results (and the error contract)
   stay in submission order whatever [enqueue] says. *)
let run_scheduled (type a) pool ~enqueue (thunks : (unit -> a) array) : a list =
  let n = Array.length thunks in
  if n = 0 then []
  else if pool.domains = [] then
    (* inline fast path: no synchronization, strict submission order —
       but the same error contract as the parallel path *)
    Array.to_list
      (Array.mapi
         (fun i f ->
           try f ()
           with e ->
             reraise_wrapped ~chunk:i ~of_:n
               ~worker_id:(Domain.self () :> int)
               (e, Printexc.get_raw_backtrace ()))
         thunks)
  else begin
    let results : a option array = Array.make n None in
    (* per-task error slots: the batch always runs to completion and the
       lowest-index error wins, so which worker failed first (a race)
       never changes what the caller observes *)
    let errors : ((exn * Printexc.raw_backtrace) * int) option array =
      Array.make n None
    in
    let remaining = Atomic.make n in
    let finished = Condition.create () in
    let task i () =
      (try results.(i) <- Some (thunks.(i) ())
       with e ->
         errors.(i) <-
           Some
             ( (e, Printexc.get_raw_backtrace ()),
               (Domain.self () :> int) ));
      Mutex.lock pool.mutex;
      if Atomic.fetch_and_add remaining (-1) = 1 then
        Condition.broadcast finished;
      Mutex.unlock pool.mutex
    in
    Mutex.lock pool.mutex;
    Array.iter (fun i -> Queue.add (task i) pool.queue) enqueue;
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.mutex;
    let rec help () =
      Mutex.lock pool.mutex;
      match Queue.take_opt pool.queue with
      | Some t ->
          Mutex.unlock pool.mutex;
          t ();
          help ()
      | None -> Mutex.unlock pool.mutex
    in
    help ();
    Mutex.lock pool.mutex;
    while Atomic.get remaining > 0 do
      Condition.wait finished pool.mutex
    done;
    Mutex.unlock pool.mutex;
    Array.iteri
      (fun i slot ->
        match slot with
        | Some (err, worker_id) -> reraise_wrapped ~chunk:i ~of_:n ~worker_id err
        | None -> ())
      errors;
    Array.to_list
      (Array.map (function Some r -> r | None -> assert false) results)
  end

let run pool thunks =
  run_scheduled pool ~enqueue:(Array.init (Array.length thunks) Fun.id) thunks

(* Longest-processing-time-first: starting the heavy tasks early shrinks
   the tail where one straggler runs alone while the other workers idle.
   Pure scheduling — the result list (and the error choice) is the same
   as [run]'s for independent tasks. *)
let run_weighted pool ~weights thunks =
  let n = Array.length thunks in
  if Array.length weights <> n then
    invalid_arg "Kgm_pool.run_weighted: weights/thunks length mismatch";
  let enqueue = Array.init n Fun.id in
  Array.sort
    (fun i j ->
      let c = Int.compare weights.(j) weights.(i) in
      if c <> 0 then c else Int.compare i j)
    enqueue;
  run_scheduled pool ~enqueue thunks

let parallel_chunks pool items ~chunk_size f =
  let chunk_size = max 1 chunk_size in
  let n = Array.length items in
  let n_chunks = (n + chunk_size - 1) / chunk_size in
  run pool
    (Array.init n_chunks (fun c ->
         let lo = c * chunk_size in
         let chunk = Array.sub items lo (min chunk_size (n - lo)) in
         fun () -> f chunk))

let chunk_size_for pool ~len =
  (* about four chunks per worker: enough slack for load balancing,
     few enough that per-chunk overhead stays negligible *)
  max 1 ((len + (4 * pool.size) - 1) / (4 * pool.size))

(* ------------------------------------------------------------------ *)

(* A service pool is the long-running sibling of {!run}: instead of a
   batch with ordered results, items stream in through {!Service.submit}
   and are consumed by dedicated worker domains for their side effects
   (the reasoning server feeds accepted connections through one). No
   ordering or result contract — a service is a sink. A handler that
   raises does not kill its domain: the exception goes to [on_error]
   (default: swallowed) and the worker moves on. *)
module Service = struct
  type 'a t = {
    queue : 'a Queue.t;
    mutex : Mutex.t;
    nonempty : Condition.t;
    mutable stop : bool;
    mutable domains : unit Domain.t list;
    on_error : exn -> unit;
    handler : 'a -> unit;
  }

  let rec worker svc =
    Mutex.lock svc.mutex;
    while Queue.is_empty svc.queue && not svc.stop do
      Condition.wait svc.nonempty svc.mutex
    done;
    if Queue.is_empty svc.queue then Mutex.unlock svc.mutex (* stopping *)
    else begin
      let item = Queue.pop svc.queue in
      Mutex.unlock svc.mutex;
      (try svc.handler item with e -> (try svc.on_error e with _ -> ()));
      worker svc
    end

  let create ~domains ?(on_error = fun _ -> ()) handler =
    let svc =
      { queue = Queue.create (); mutex = Mutex.create ();
        nonempty = Condition.create (); stop = false; domains = [];
        on_error; handler }
    in
    svc.domains <-
      List.init (max 1 domains) (fun _ -> Domain.spawn (fun () -> worker svc));
    svc

  let submit svc item =
    Mutex.lock svc.mutex;
    let admitted = not svc.stop in
    if admitted then begin
      Queue.push item svc.queue;
      Condition.signal svc.nonempty
    end;
    Mutex.unlock svc.mutex;
    admitted

  let pending svc =
    Mutex.lock svc.mutex;
    let n = Queue.length svc.queue in
    Mutex.unlock svc.mutex;
    n

  (* stop admission, reclaim whatever was still queued, and join the
     workers (each finishes the item it is processing first) *)
  let shutdown svc =
    Mutex.lock svc.mutex;
    svc.stop <- true;
    let leftover = List.of_seq (Queue.to_seq svc.queue) in
    Queue.clear svc.queue;
    Condition.broadcast svc.nonempty;
    Mutex.unlock svc.mutex;
    List.iter Domain.join svc.domains;
    svc.domains <- [];
    leftover
end
