(** Fixed-size domain pool with deterministic, ordered results.

    Stdlib-only ([Domain] / [Mutex] / [Condition] / [Atomic]). A pool of
    size [n] uses the caller's domain plus [n - 1] spawned worker
    domains; [n = 1] spawns nothing and runs every task inline, so
    results are {e identical} for every pool size — tasks may finish in
    any order but are always returned in submission order.

    Tasks must be independent (no nested {!run} on the same pool). If a
    task raises, the batch still runs to completion and the exception of
    the {e lowest submission index} is re-raised from {!run} on the
    caller's domain — deterministically, whatever the completion
    schedule — as a [Kgm_common.Kgm_error.Error] carrying the worker
    domain id and the failing chunk in its context ([Kgm_error]s keep
    their stage and message and gain the context; other exceptions are
    wrapped as [Reason] errors). The original backtrace is preserved
    across the domain hop. The inline [size = 1] path follows the same
    error contract. *)

type pool

val create : int -> pool
(** [create n] spawns [max 1 n - 1] worker domains. *)

val size : pool -> int

val shutdown : pool -> unit
(** Stops and joins the workers. The pool must be idle. Idempotent. *)

val with_pool : int -> (pool -> 'a) -> 'a
(** [with_pool n f] runs [f] over a fresh pool and always shuts it
    down, even when [f] raises. *)

val run : pool -> (unit -> 'a) array -> 'a list
(** Execute every thunk (concurrently when the pool has workers) and
    return the results in submission order. *)

val run_weighted : pool -> weights:int array -> (unit -> 'a) array -> 'a list
(** Like {!run}, but tasks enter the shared queue heaviest-first
    ([weights.(i)] descending, submission index breaking ties), so
    long-running tasks start early instead of serializing the batch
    tail. Pure scheduling: for independent tasks the results (and the
    error contract) are exactly {!run}'s. The inline [size = 1] path
    ignores the weights and runs in submission order. Raises
    [Invalid_argument] when the arrays' lengths differ. *)

val parallel_chunks : pool -> 'a array -> chunk_size:int -> ('a array -> 'b) -> 'b list
(** [parallel_chunks pool items ~chunk_size f] splits [items] into
    consecutive chunks of [chunk_size] (the last may be shorter), maps
    [f] over the chunks on the pool, and returns the results in chunk
    order — so [List.concat] of the results is independent of both the
    chunk size and the pool size when [f] is pointwise. *)

val chunk_size_for : pool -> len:int -> int
(** A reasonable chunk size for [len] work items on this pool (about
    four chunks per worker). *)

(** A fixed-size pool of {e dedicated} worker domains consuming a
    stream of items for their side effects — the long-running sibling
    of {!run}. Where {!run} is a batch with submission-ordered results,
    a service is a sink: items enter through {!Service.submit} in any
    order, are handled concurrently, and produce no result. The
    reasoning server layers its request readers on one (each request
    answers against an immutable epoch snapshot, so the handlers need
    no shared locks).

    A handler that raises does not kill its domain: the exception is
    passed to [on_error] (swallowed by default) and the worker moves
    on. Every domain is spawned at {!Service.create} and joined at
    {!Service.shutdown}; unlike {!run} the caller's domain never helps,
    so a service of [n] domains really owns [n]. *)
module Service : sig
  type 'a t

  val create :
    domains:int -> ?on_error:(exn -> unit) -> ('a -> unit) -> 'a t
  (** [create ~domains handler] spawns [max 1 domains] worker domains,
      each looping [handler] over submitted items. *)

  val submit : 'a t -> 'a -> bool
  (** Enqueue an item; [false] after {!shutdown} began (the item was
      {e not} enqueued — the caller still owns it). The queue is
      unbounded: admission control is the caller's policy, via
      {!pending}. *)

  val pending : 'a t -> int
  (** Items queued and not yet picked up by a worker (excludes items
      currently being handled). *)

  val shutdown : 'a t -> 'a list
  (** Stop admission, join every worker (each finishes the item it is
      handling), and return the items never picked up — the caller
      decides their fate (the server sheds them with [503]). *)
end
