open Kgm_common

let sql_type = function
  | Value.TInt -> "INTEGER"
  | Value.TFloat -> "DOUBLE PRECISION"
  | Value.TString -> "VARCHAR(255)"
  | Value.TBool -> "BOOLEAN"
  | Value.TDate -> "DATE"
  | Value.TId -> "VARCHAR(64)"
  | Value.TAny -> "VARCHAR(255)"

(* SQL-standard string literals: quotes are doubled, every other byte —
   backslashes included — is literal. The emitted DDL/DML therefore
   assumes a standard-conforming-strings dialect (SQL:1999; PostgreSQL
   with [standard_conforming_strings = on], its default since 9.1) and
   never uses the E'' extension: under that dialect '\' IS a lone
   backslash and doubling it would change the value. Engines that still
   treat backslash as an escape inside plain '' literals (e.g. MySQL
   without NO_BACKSLASH_ESCAPES) are out of scope. *)
let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c -> if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* List values are stored as one varchar: elements rendered with
   [sql_literal] and joined on ';', with '\' and ';' inside an element
   escaped as "\\" and "\;" so the join is reversible — ["a;b"] and
   ["a"; "b"] must not collide. [decode_list] is the exact inverse on
   the pre-[escape_string] payload. *)
let encode_elem s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if c = '\\' || c = ';' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let decode_list s =
  let out = ref [] in
  let buf = Buffer.create 16 in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
     | '\\' when !i + 1 < n ->
         incr i;
         Buffer.add_char buf s.[!i]
     | ';' ->
         out := Buffer.contents buf :: !out;
         Buffer.clear buf
     | c -> Buffer.add_char buf c);
    incr i
  done;
  if n > 0 then out := Buffer.contents buf :: !out;
  List.rev !out

let rec sql_literal = function
  | Value.Int i -> string_of_int i
  | Value.Float f -> Printf.sprintf "%.12g" f
  | Value.String s -> Printf.sprintf "'%s'" (escape_string s)
  | Value.Bool b -> if b then "TRUE" else "FALSE"
  | Value.Date (y, m, d) -> Printf.sprintf "DATE '%04d-%02d-%02d'" y m d
  | Value.Id o -> Printf.sprintf "'%s'" (escape_string (Oid.to_string o))
  | Value.Null _ -> "NULL"
  | Value.List l ->
      Printf.sprintf "'%s'" (escape_string (encode_list l))

and encode_list l = String.concat ";" (List.map (fun v -> encode_elem (sql_literal v)) l)

let field_def (f : Rschema.field) =
  let range_checks =
    match f.f_range with
    | None, None -> []
    | lo, hi ->
        let parts =
          (match lo with
           | Some l -> [ Printf.sprintf "%s >= %.12g" f.f_name l ]
           | None -> [])
          @
          (match hi with
           | Some h -> [ Printf.sprintf "%s <= %.12g" f.f_name h ]
           | None -> [])
        in
        [ Printf.sprintf "CHECK (%s)" (String.concat " AND " parts) ]
  in
  let parts =
    [ f.f_name; sql_type f.f_ty ]
    @ (if f.f_nullable then [] else [ "NOT NULL" ])
    @ (match f.f_default with
       | Some v -> [ "DEFAULT " ^ sql_literal v ]
       | None -> [])
    @ (if f.f_unique then [ "UNIQUE" ] else [])
    @ (if f.f_enum = [] then []
       else
         [ Printf.sprintf "CHECK (%s IN (%s))" f.f_name
             (String.concat ", "
                (List.map (fun v -> "'" ^ escape_string v ^ "'") f.f_enum)) ])
    @ range_checks
  in
  String.concat " " parts

let create_table (r : Rschema.relation) =
  let keys = List.filter (fun (f : Rschema.field) -> f.f_key) r.r_fields in
  let pk =
    Printf.sprintf "  PRIMARY KEY (%s)"
      (String.concat ", " (List.map (fun (f : Rschema.field) -> f.f_name) keys))
  in
  let fields = List.map (fun f -> "  " ^ field_def f) r.r_fields in
  Printf.sprintf "CREATE TABLE %s (\n%s\n);" r.r_name
    (String.concat ",\n" (fields @ [ pk ]))

let foreign_key_ddl (fk : Rschema.foreign_key) =
  Printf.sprintf
    "ALTER TABLE %s ADD CONSTRAINT %s FOREIGN KEY (%s) REFERENCES %s (%s);"
    fk.fk_source fk.fk_name
    (String.concat ", " fk.fk_fields)
    fk.fk_target
    (String.concat ", " fk.fk_target_fields)

let ddl (sch : Rschema.t) =
  String.concat "\n\n"
    (List.map create_table sch.relations
     @ List.map foreign_key_ddl sch.foreign_keys)

let inserts db =
  let sch = Instance.schema db in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (r : Rschema.relation) ->
      Instance.iter db r.r_name (fun row ->
          Buffer.add_string buf
            (Printf.sprintf "INSERT INTO %s VALUES (%s);\n" r.r_name
               (String.concat ", "
                  (Array.to_list (Array.map sql_literal row))))))
    sch.relations;
  Buffer.contents buf
