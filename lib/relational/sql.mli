(** SQL rendering of relational schemas and instances.

    For relational targets the paper enforces translated schemas "as DDL
    statements, which include the respective constraints such as keys,
    foreign keys, domain constraints" (Sec. 2.2); this module emits that
    artifact in a generic SQL:1999 dialect.

    {b Dialect assumption}: string literals are SQL-standard — quotes
    doubled, backslashes (and every other byte) literal, no [E'']
    prefix anywhere. That is SQL:1999 and PostgreSQL with
    [standard_conforming_strings = on]; engines where backslash escapes
    inside plain [''] literals are live (MySQL's default) will mis-read
    payloads containing backslashes. *)

open Kgm_common

val ddl : Rschema.t -> string
(** CREATE TABLE statements with PRIMARY KEY, NOT NULL, UNIQUE, CHECK
    (enum) constraints, followed by ALTER TABLE ... FOREIGN KEY, in
    schema declaration order (topologically safe because FKs are emitted
    after all tables). *)

val sql_type : Value.ty -> string
val sql_literal : Value.t -> string

val encode_list : Value.t list -> string
(** The varchar payload of a [Value.List]: elements rendered with
    {!sql_literal} and joined on [';'], with ['\'] and [';'] inside an
    element escaped (["\\"], ["\;"]) so distinct lists never collide
    (["a;b"] vs ["a"; "b"]). This is the string {!sql_literal} quotes
    for a list value. *)

val decode_list : string -> string list
(** Exact inverse of {!encode_list} on its output: the rendered
    elements, separators and escapes undone —
    [decode_list (encode_list l) = List.map sql_literal l]. *)

val inserts : Instance.t -> string
(** One INSERT statement per tuple, relations in schema order. *)

val create_table : Rschema.relation -> string
