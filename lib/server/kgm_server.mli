(** Kgm_server — the long-lived reasoning daemon behind
    [kgmodel serve].

    The paper's production deployments keep a materialized KG resident
    and query it while extensional updates stream in (Sec. 6); this
    module is that serving layer. A server owns one
    {!Kgm_vadalog.Incremental.state} (the {e master} materialization)
    and publishes read-only {e epochs} of it: after every applied
    update batch the repaired database is copied, frozen and swapped
    into an [Atomic.t]. Readers grab the current epoch with one atomic
    load — they never block on a writer, never observe a half-applied
    batch, and each request is answered against exactly one epoch
    (stamped into the [x-kgm-epoch] response header).

    The wire protocol is minimal HTTP/1.1 over a Unix-domain socket
    with {e persistent connections}: responses default to
    [connection: keep-alive], clients may pipeline (bytes past one
    request's [content-length] are carried into the next read), and a
    connection is closed only on client demand ([connection: close]),
    idle timeout, per-connection request cap, or drain. Enough for
    [curl --unix-socket], the bundled {!Client}, and the CI chaos
    harness, with no external dependency.

    Requests are served by a pool of {e reader domains}
    ({!Kgm_pool.Service}) rather than systhreads: every request
    answers against one immutable frozen epoch (plus a per-epoch
    side-car index cache for query patterns first seen after publish),
    so readers share no locks and scale across cores. Writer paths
    ([/update]) still serialize on the master session's mutex.

    {2 Failure model}

    - {e Admission control}: accepted connections enter a bounded
      queue; when it is full the server answers [503 overloaded]
      immediately instead of queueing unboundedly — load is shed at
      the door, latency stays bounded, and a client can tell
      "busy" from "broken".
    - {e Deadlines}: each request runs under a
      {!Kgm_resilience.Token} (from the [x-kgm-deadline] header or
      the configured default); long scans poll it and answer
      [504 deadline] when it trips.
    - {e Graceful drain}: {!drain} (wired to SIGINT/SIGTERM by the
      CLI, safe to call from a signal handler) stops admission,
      cancels or finishes in-flight work, sheds the queue with
      [503 draining], writes a final session snapshot and lets
      {!run_until_drained} return — exit 0, state on disk.
    - {e Crash recovery}: {!recover} restarts from the newest session
      snapshot whose digest and program fingerprint check out,
      falling back generation by generation past corrupt or foreign
      files; {!save_session} rotates generations with
      {!Kgm_resilience.Snapshot.gc} so the directory stays bounded
      without ever deleting the generation recovery needs.
    - {e Fault injection}: the ["accept"], ["request"], ["swap"] and
      ["drain"] {!Kgm_resilience.Faults} sites let a seeded chaos run
      prove each path: dropped connections, failing requests
      ([500 fault injected]), epoch swaps that need their retry loop,
      and faults during drain that are absorbed (drain {e always}
      completes).

    An epoch swap that exhausts its retries leaves the master updated
    but the previous epoch visible; readers simply keep answering
    against the older consistent snapshot until the next successful
    swap publishes everything since. *)

(** Update batches — the shared text format of [kgmodel serve]'s
    [POST /update] and [kgmodel reason --update]. One fact per line;
    [+fact.] inserts, [-fact.] retracts, a bare [fact.] inserts;
    blank lines and [%] comments are skipped. *)
module Batch : sig
  type sign = [ `Ins | `Ret ]

  val parse :
    string -> (sign * (string * Kgm_vadalog.Database.fact)) list
  (** Parse a whole batch, in line order. Raises [Kgm_error.Error]
      ([Validate], with the 1-based line in context) on a line that is
      not a ground fact. *)

  val split :
    (sign * (string * Kgm_vadalog.Database.fact)) list ->
    (string * Kgm_vadalog.Database.fact) list
    * (string * Kgm_vadalog.Database.fact) list
  (** [(inserts, retracts)], each in batch order. *)
end

(** {1 Configuration} *)

type config = {
  sock : string;          (** Unix-domain socket path (unlinked on bind
                              and again on drain) *)
  workers : int;          (** reader domains (clamped >= 1) *)
  queue_capacity : int;   (** admission queue bound; beyond it requests
                              are shed with [503 overloaded] *)
  default_deadline_s : float option;
                          (** per-request deadline when the client sends
                              no [x-kgm-deadline] header *)
  io_timeout_s : float;   (** socket read/write timeout — bounds a
                              stalled client's hold on a worker
                              {e mid-request} (slowloris) *)
  idle_timeout_s : float; (** keep-alive idle bound: a connection with
                              no request in flight is closed after this
                              long without bytes *)
  max_requests_per_conn : int;
                          (** requests served on one connection before
                              the server answers [connection: close]
                              (clamped >= 1) — bounds per-connection
                              state and re-balances long-lived clients
                              across readers *)
  state_dir : string option;
                          (** session snapshot directory; [None]
                              disables persistence *)
  keep : int;             (** snapshot generations retained (>= 1
                              effective); see
                              {!Kgm_resilience.Snapshot.gc} *)
  snapshot_every : int;   (** write a session snapshot every N applied
                              update batches (and always at drain) *)
  debug_endpoints : bool; (** expose [POST /slow] (a cancellable sleep)
                              — for drain/overload tests only *)
}

val default_config : sock:string -> config
(** 4 workers, queue 64, no default deadline, 10 s IO timeout, 5 s
    idle timeout, 10000 requests per connection, no persistence,
    keep 3, snapshot every batch, debug off. *)

(** {1 Server lifecycle} *)

type t

type stats = {
  st_epoch : int;        (** id of the currently published epoch *)
  st_requests : int;     (** requests served (including failed ones) —
                             on keep-alive connections many per
                             connection *)
  st_conns : int;        (** connections picked up by a reader *)
  st_shed : int;         (** connections answered [503] at admission
                             (overloaded or draining) *)
  st_errors : int;       (** requests that answered 4xx/5xx *)
  st_updates : int;      (** update batches applied *)
  st_queue_depth : int;  (** connections queued right now *)
  st_inflight : int;     (** requests being served right now *)
  st_faults : int;       (** injected faults absorbed by the server *)
}

val create :
  ?telemetry:Kgm_telemetry.t ->
  ?journal:Kgm_telemetry.Journal.t ->
  ?epoch:int ->
  config -> session:Kgm_vadalog.Incremental.state -> t
(** Wrap a chased (or recovered) session. [epoch] seeds the epoch
    counter — pass the recovered epoch so ids keep ascending across
    restarts. Registers [server.*] gauges on [telemetry] (sampled at
    [/metrics] export). Does not touch the network. *)

val tune_runtime_for_serving : unit -> unit
(** Raise the minor-heap size to a serving-friendly arena (4M words;
    never shrinks a larger setting). On OCaml 5 every minor collection
    is a stop-the-world rendezvous of all domains, so an
    allocation-heavy request loop on a small minor heap turns into
    multi-millisecond tail latency; a large arena amortizes the
    synchronizations away. {!start} calls this before spawning the
    reader domains; a load-generating client process should call it
    too. *)

val start : t -> unit
(** Bind the socket and spawn the acceptor thread, the shed thread
    (which answers [503] off the accept path so a slow doomed client
    never stalls accepts) and the reader domain pool. Tunes the
    runtime via {!tune_runtime_for_serving}. Raises
    [Unix.Unix_error] if the socket cannot be bound; raises
    [Invalid_argument] if already started. *)

val drain : t -> unit
(** Request a graceful drain (idempotent, async-signal-safe: it only
    flips an atomic flag). The drain itself is performed by
    {!run_until_drained}. *)

val draining : t -> bool

val run_until_drained : t -> stats
(** Block until {!drain} is requested, then: stop admission, unlink
    the socket, cancel in-flight work past the grace of one request,
    shed the queue with [503 draining], join every thread, write the
    final session snapshot (when [state_dir] is set), and return the
    final statistics. ["drain"]-site faults along the way are absorbed
    and counted — drain always completes. *)

val stats : t -> stats

(** {1 Session persistence} *)

val fingerprint : Kgm_vadalog.Rule.program list -> string
(** Digest identifying the {e rules} of a phase pipeline (inline facts
    are ignored: they are EDB, carried by the snapshot itself). A
    snapshot only restores against the pipeline that produced it. *)

val save_session :
  dir:string -> keep:int -> epoch:int ->
  Kgm_vadalog.Incremental.state -> string
(** Snapshot the session's extensional facts (kind ["session"],
    version 3, sequence = [epoch]) with atomic-rename and digest
    protection, then rotate old generations ({!Kgm_resilience.Snapshot.gc}
    with [keep]); returns the path written. The derived facts are not
    stored — recovery re-chases, which is what makes the snapshot
    small and the restore verifiable. *)

val recover :
  ?options:Kgm_vadalog.Engine.options ->
  ?telemetry:Kgm_telemetry.t ->
  ?journal:Kgm_telemetry.Journal.t ->
  dir:string -> Kgm_vadalog.Rule.program list ->
  (Kgm_vadalog.Incremental.state * int * string) option
(** Walk the ["session"] snapshots in [dir] newest-first; for the
    first one that loads (magic, kind, version and payload digest all
    valid) {e and} matches {!fingerprint} of the given phases, rebuild
    the EDB and re-chase the facts-stripped phases, returning
    [(session, epoch, path)]. Rejected generations are journaled
    ([server.recover.reject]) and skipped; [None] when no generation
    survives. The restored materialization equals the lost one up to
    the canonical renaming of labeled nulls
    ({!Kgm_vadalog.Incremental.canonical_facts}); null-free
    workloads restore bit-identically. *)

(** {1 Client} *)

(** A blocking HTTP/1.1-over-Unix-socket client for the CLI
    ([kgmodel call]), the tests and the chaos harness. Supports both
    persistent (keep-alive) connections and the classic one-shot
    request. *)
module Client : sig
  type conn
  (** A persistent connection: many requests over one socket
      ({!request_on}). Not thread-safe — one [conn] per client
      thread. *)

  val connect : ?io_timeout_s:float -> string -> conn
  (** Connect to the server socket (default 30 s IO timeout). Raises
      [Unix.Unix_error] when the server is unreachable. *)

  val close : conn -> unit

  val request_on :
    ?deadline_s:float -> ?body:string -> ?close_conn:bool ->
    conn -> meth:string -> path:string -> unit -> int * string
  (** One request/response on a persistent connection. Responses are
      read by their [content-length] frame; bytes past it are carried
      into the next call. [close_conn] sends [connection: close]
      (the connection is unusable afterwards); the server closing
      (drain, request cap) is detected from the response header and
      marks the connection dead. Returns [(status, body)]; raises
      [Failure] on a dead/garbled connection, [Unix.Unix_error] on IO
      errors. *)

  val pipeline :
    ?deadline_s:float -> conn -> meth:string -> path:string ->
    string list -> (int * string) list
  (** HTTP/1.1 pipelining: send one request per body in a single
      write, then read the responses in order. One syscall round per
      batch instead of one per request — the cheapest way to drive the
      server at full throughput from one client. Same failure contract
      as {!request_on}. *)

  val request :
    ?deadline_s:float -> ?body:string -> sock:string ->
    meth:string -> path:string -> unit -> int * string
  (** One request, one connection ([connection: close]) — {!connect} +
      {!request_on} + {!close}. [deadline_s] both bounds the socket
      IO and is forwarded as the [x-kgm-deadline] header. Returns
      [(status, body)]. Raises [Unix.Unix_error] when the server is
      unreachable or the IO times out. *)

  val wait_ready : ?attempts:int -> ?delay_s:float -> string -> bool
  (** Poll [GET /ready] on the socket until it answers 200 (true) or
      the attempts run out (false) — the test/CI startup barrier. *)
end
