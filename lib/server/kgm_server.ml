(* Kgm_server — the long-lived reasoning daemon behind `kgmodel serve`.

   One Incremental.state (the master materialization, mutated only
   under [writer_mu]) feeds an Atomic.t of frozen database epochs.
   Readers load the current epoch with one atomic read and answer
   against it — no reader ever blocks on a writer, and every response
   is stamped with the epoch id it was computed from. The wire
   protocol is a hand-rolled HTTP/1.1 subset over a Unix-domain
   socket — persistent connections with pipelining (bytes read past
   one request's content-length carry over into the next), a
   per-connection idle timeout and request cap, `connection: close`
   only on demand, cap, or drain — enough for curl, the bundled
   Client and the chaos harness, with no external dependency.

   Threading: one acceptor thread (select with a short timeout so it
   notices the drain flag) feeding a pool of N reader *domains*
   (Kgm_pool.Service) behind a bounded admission gate — readers answer
   against immutable frozen epochs, so they parallelize without locks
   (systhreads would serialize on the runtime lock). A small shed
   thread owns every 503-at-the-door write so a slow or dead client
   can never stall the acceptor. The caller's thread parks in
   run_until_drained as the drain coordinator. The telemetry collector
   is not thread-safe, so every collector mutation and export happens
   under [writer_mu]; per-domain statistics live in Atomics sampled by
   registered gauges at export time. *)

module R = Kgm_vadalog.Rule
module DB = Kgm_vadalog.Database
module Inc = Kgm_vadalog.Incremental
module E = Kgm_vadalog.Engine
module Err = Kgm_common.Kgm_error
module Token = Kgm_resilience.Token
module Faults = Kgm_resilience.Faults
module Retry = Kgm_resilience.Retry
module Snapshot = Kgm_resilience.Snapshot
module Journal = Kgm_telemetry.Journal
module J = Kgm_telemetry.Json

let with_lock mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* ------------------------------------------------------------------ *)
(* Update batches                                                      *)

module Batch = struct
  type sign = [ `Ins | `Ret ]

  let parse_line lineno line =
    let line = String.trim line in
    if line = "" || line.[0] = '%' then []
    else begin
      let sign, rest =
        match line.[0] with
        | '+' -> (`Ins, String.sub line 1 (String.length line - 1))
        | '-' -> (`Ret, String.sub line 1 (String.length line - 1))
        | _ -> (`Ins, line)
      in
      let rest = String.trim rest in
      let rest =
        if rest <> "" && rest.[String.length rest - 1] = '.' then rest
        else rest ^ "."
      in
      let reject msg =
        Err.raise_error_ctx Err.Validate
          [ ("line", string_of_int lineno); ("text", line) ]
          "%s" msg
      in
      let p =
        try Kgm_vadalog.Parser.parse_program rest
        with Err.Error e -> reject ("batch: " ^ e.Err.message)
      in
      if p.R.rules <> [] then
        reject "a batch line must be a ground fact, not a rule";
      if p.R.facts = [] then reject "batch: no fact on this line";
      List.map
        (fun (pred, args) -> (sign, (pred, Array.of_list args)))
        p.R.facts
    end

  let parse text =
    String.split_on_char '\n' text
    |> List.mapi (fun i line -> parse_line (i + 1) line)
    |> List.concat

  let split batch =
    let pick s =
      List.filter_map (fun (s', pf) -> if s' = s then Some pf else None) batch
    in
    (pick `Ins, pick `Ret)
end

(* ------------------------------------------------------------------ *)
(* Session persistence                                                 *)

let session_kind = "session"
let session_version = 3

(* derived facts are deliberately absent: recovery re-chases, which
   keeps snapshots small and makes a restore verifiable against the
   program instead of trusting a marshaled closure *)
type session_blob = {
  sb_fingerprint : string;
  sb_epoch : int;
  sb_edb : (string * Kgm_common.Value.t array) list;
}

let strip ph = { ph with R.facts = [] }

let fingerprint phases =
  Digest.to_hex
    (Digest.string
       (String.concat "\n%%phase%%\n"
          (List.map (fun ph -> R.program_to_string (strip ph)) phases)))

let save_session ~dir ~keep ~epoch st =
  let blob =
    { sb_fingerprint = fingerprint (Inc.phases st);
      sb_epoch = epoch;
      sb_edb = Inc.edb_facts st }
  in
  let path = Snapshot.path ~dir ~kind:session_kind ~seq:epoch in
  Snapshot.save ~kind:session_kind ~version:session_version ~path blob;
  ignore (Snapshot.gc ~dir ~kind:session_kind ~keep);
  path

let recover ?options ?telemetry ?journal ~dir phases =
  if phases = [] then invalid_arg "Kgm_server.recover: empty pipeline";
  let jr = Option.value journal ~default:Journal.null in
  let expected = fingerprint phases in
  let gens = List.rev (Snapshot.list ~dir ~kind:session_kind) in
  let rec try_gens = function
    | [] -> None
    | (_seq, path) :: older -> (
        match
          let blob : session_blob =
            Snapshot.load ~kind:session_kind ~version:session_version ~path
          in
          if blob.sb_fingerprint <> expected then
            Err.raise_error_ctx Err.Storage
              [ ("path", path) ]
              "session snapshot was written by a different program";
          let db = DB.create () in
          List.iter
            (fun (pred, fact) -> ignore (DB.add db pred fact))
            blob.sb_edb;
          (* facts-stripped phases: the snapshot's EDB already contains
             the program's inline facts, including any later retracted
             by updates — re-adding them from the rule text would
             resurrect retractions *)
          let st, _stats =
            Inc.chase_phases ?options ?telemetry ?journal ~db
              (List.map strip phases)
          in
          (st, blob.sb_epoch)
        with
        | st, epoch ->
            if Journal.enabled jr then
              Journal.emit jr "server.recover"
                [ ("path", J.Str path);
                  ("epoch", J.Int epoch);
                  ("facts", J.Int (DB.total (Inc.db st))) ];
            Some (st, epoch, path)
        | exception Err.Error e ->
            if Journal.enabled jr then
              Journal.emit jr "server.recover.reject"
                [ ("path", J.Str path); ("error", J.Str (Err.to_string e)) ];
            try_gens older)
  in
  try_gens gens

(* ------------------------------------------------------------------ *)
(* HTTP/1.1 subset                                                     *)

type req = {
  meth : string;
  path : string;
  headers : (string * string) list;  (* keys lowercased *)
  body : string;
}

let header req k = List.assoc_opt k req.headers

let find_sub hay needle from =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go from

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      let w = Unix.write_substring fd s off (n - off) in
      go (off + w)
  in
  go 0

let reason_of = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | 504 -> "Gateway Timeout"
  | _ -> "Status"

(* assembled with plain Buffer pushes — this runs once per request,
   and interpreted Printf formats are measurable at six figures of
   requests per second *)
let write_response ?(keep_alive = false) fd status extra body =
  let b = Buffer.create (String.length body + 256) in
  Buffer.add_string b "HTTP/1.1 ";
  Buffer.add_string b (string_of_int status);
  Buffer.add_char b ' ';
  Buffer.add_string b (reason_of status);
  Buffer.add_string b "\r\ncontent-type: text/plain; charset=utf-8\r\n";
  Buffer.add_string b "content-length: ";
  Buffer.add_string b (string_of_int (String.length body));
  Buffer.add_string b
    (if keep_alive then "\r\nconnection: keep-alive\r\n"
     else "\r\nconnection: close\r\n");
  List.iter
    (fun (k, v) ->
      Buffer.add_string b k;
      Buffer.add_string b ": ";
      Buffer.add_string b v;
      Buffer.add_string b "\r\n")
    extra;
  Buffer.add_string b "\r\n";
  Buffer.add_string b body;
  (* a peer that hung up mid-response is its problem, not ours *)
  try write_all fd (Buffer.contents b) with Unix.Unix_error _ -> ()

let max_head = 65536
let max_body = 8_000_000

let parse_head_lines head =
  match String.split_on_char '\r' head |> List.map String.trim with
  | [] -> None
  | first :: rest ->
      let headers =
        List.filter_map
          (fun line ->
            match String.index_opt line ':' with
            | None -> None
            | Some i ->
                Some
                  ( String.lowercase_ascii (String.sub line 0 i),
                    String.trim
                      (String.sub line (i + 1) (String.length line - i - 1))
                  ))
          rest
      in
      Some (first, headers)

(* Per-connection read state: [pending] carries the bytes already read
   past the previous request's content-length — the pipelined
   successor the old one-request reader would have silently eaten —
   and [served] counts requests toward the per-connection cap. *)
type conn = {
  c_fd : Unix.file_descr;
  mutable c_pending : string;
  mutable c_served : int;
  c_chunk : Bytes.t;   (* read scratch, reused across requests *)
  c_buf : Buffer.t;    (* request accumulator, reused across requests *)
}

let make_conn fd =
  {
    c_fd = fd;
    c_pending = "";
    c_served = 0;
    c_chunk = Bytes.create 8192;
    c_buf = Buffer.create 512;
  }

(* Read one request off a persistent connection.

   [`Close] is the clean end of the connection (peer EOF between
   requests, idle timeout, or a drain request while waiting for new
   bytes); [`Err] is a protocol or transport failure worth a [400]
   before closing. Between requests the wait for the first byte is a
   short-tick select bounded by [idle_s], polled against [draining] so
   an idle keep-alive connection never delays a drain; once a request
   has started arriving, reads run under the socket's SO_RCVTIMEO
   ([io_timeout_s]), so a slowloris half-request times out as an
   error rather than holding a reader forever. Bytes past this
   request's content-length stay in [c_pending] for the next call. *)
let read_request ~idle_s ~draining conn =
  let chunk = conn.c_chunk in
  let buf = conn.c_buf in
  Buffer.clear buf;
  Buffer.add_string buf conn.c_pending;
  conn.c_pending <- "";
  let recv () =
    match Unix.read conn.c_fd chunk 0 (Bytes.length chunk) with
    | 0 -> `Eof
    | n -> `Data (Bytes.sub_string chunk 0 n)
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> `Timeout
    | exception Unix.Unix_error (e, _, _) -> `Fail (Unix.error_message e)
  in
  let rec await_first budget =
    if draining () then `Close
    else if budget <= 0. then `Close (* idle timeout *)
    else
      let tick = Float.min 0.05 budget in
      match Unix.select [ conn.c_fd ] [] [] tick with
      | [], _, _ -> await_first (budget -. tick)
      | _ -> `Ready
      | exception Unix.Unix_error (EINTR, _, _) -> await_first budget
  in
  let rec read_head started =
    let all = Buffer.contents buf in
    match find_sub all "\r\n\r\n" 0 with
    | Some head_end -> read_body head_end
    | None ->
        if Buffer.length buf > max_head then `Err "request head too large"
        else if not started then
          match await_first idle_s with
          | `Close -> `Close
          | `Ready -> (
              match recv () with
              | `Eof -> `Close (* clean close between requests *)
              | `Data s ->
                  Buffer.add_string buf s;
                  read_head true
              | `Timeout -> `Close
              | `Fail m -> `Err m)
        else begin
          match recv () with
          | `Eof -> `Err "connection closed mid-request"
          | `Data s ->
              Buffer.add_string buf s;
              read_head true
          | `Timeout -> `Err "read timeout"
          | `Fail m -> `Err m
        end
  and read_body head_end =
    match parse_head_lines (String.sub (Buffer.contents buf) 0 head_end) with
    | None -> `Err "empty request"
    | Some (first, headers) -> (
        let clen =
          match List.assoc_opt "content-length" headers with
          | Some v -> (
              match int_of_string_opt v with Some n -> n | None -> -1)
          | None -> 0
        in
        if clen < 0 || clen > max_body then `Err "bad content-length"
        else
          let total = head_end + 4 + clen in
          let rec fill () =
            if Buffer.length buf >= total then begin
              let all = Buffer.contents buf in
              (* leftover bytes past content-length are the pipelined
                 next request — carry, don't truncate *)
              conn.c_pending <-
                String.sub all total (String.length all - total);
              let body = String.sub all (head_end + 4) clen in
              match String.split_on_char ' ' first with
              | meth :: path :: _ -> `Req { meth; path; headers; body }
              | _ -> `Err "malformed request line"
            end
            else
              match recv () with
              | `Eof -> `Err "connection closed mid-body"
              | `Data s ->
                  Buffer.add_string buf s;
                  fill ()
              | `Timeout -> `Err "read timeout"
              | `Fail m -> `Err m
          in
          fill ())
  in
  read_head (Buffer.length buf > 0)

(* ------------------------------------------------------------------ *)
(* Pattern queries                                                     *)

(* a query body is either a bare predicate name (all its facts) or a
   pattern like [controls(a, X)] — constants bind positions, variables
   project, a repeated variable joins within the fact. Parsed by
   round-tripping [pat :- pat.] through the Vadalog rule parser, so the
   constant syntax (strings, numbers, dates, ...) is exactly the
   language's own. *)
type query =
  | Q_pred of string
  | Q_pattern of R.atom

let parse_query body =
  let s = String.trim body in
  let s =
    if s <> "" && s.[String.length s - 1] = '.' then
      String.trim (String.sub s 0 (String.length s - 1))
    else s
  in
  if s = "" then
    Err.raise_error_ctx Err.Validate [] "query: empty pattern";
  if not (String.contains s '(') then Q_pred s
  else
    let rule =
      try Kgm_vadalog.Parser.parse_rule (s ^ " :- " ^ s ^ ".")
      with Err.Error e ->
        Err.raise_error_ctx Err.Validate
          [ ("pattern", s) ]
          "query: %s" e.Err.message
    in
    match rule.R.head with
    | [ atom ] -> Q_pattern atom
    | _ ->
        Err.raise_error_ctx Err.Validate
          [ ("pattern", s) ]
          "query: expected a single atom"

(* one answer line, pushed straight into the response buffer — this
   is the per-fact inner loop of every query *)
let add_fact_line buf pred fact =
  Buffer.add_string buf pred;
  Buffer.add_char buf '(';
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Kgm_common.Value.to_string v))
    fact;
  Buffer.add_string buf ").\n"

(* poll the deadline/drain tokens every so many facts so a scan over a
   large predicate cannot outlive its budget *)
let poll_every = 2048

let eval_query ~poll ?register ?cache db q buf =
  let n = ref 0 in
  let seen = ref 0 in
  let emit pred fact =
    incr n;
    add_fact_line buf pred fact
  in
  (match q with
  | Q_pred pred ->
      List.iter
        (fun fact ->
          incr seen;
          if !seen land (poll_every - 1) = 0 then poll ();
          emit pred fact)
        (DB.facts db pred)
  | Q_pattern atom ->
      let args = Array.of_list atom.R.args in
      let arity = Array.length args in
      let positions = ref [] and key = ref [] in
      Array.iteri
        (fun i t ->
          match t with
          | Kgm_vadalog.Term.Const v ->
              positions := i :: !positions;
              key := v :: !key
          | Kgm_vadalog.Term.Var _ -> ())
        args;
      let positions = List.rev !positions and key = List.rev !key in
      (* positions of each named variable occurring more than once *)
      let var_groups =
        let tbl = Hashtbl.create 4 in
        Array.iteri
          (fun i t ->
            match t with
            | Kgm_vadalog.Term.Var v when v <> "" && v.[0] <> '_' ->
                Hashtbl.replace tbl v
                  (i :: (try Hashtbl.find tbl v with Not_found -> []))
            | _ -> ())
          args;
        Hashtbl.fold
          (fun _ ps acc -> if List.length ps > 1 then ps :: acc else acc)
          tbl []
      in
      let joins_ok fact =
        List.for_all
          (fun ps ->
            match ps with
            | [] -> true
            | p0 :: rest ->
                List.for_all
                  (fun p -> Kgm_common.Value.equal fact.(p0) fact.(p))
                  rest)
          var_groups
      in
      (* remember the probe pattern so the next epoch publish prepares
         its index up front; within this epoch the side-car cache turns
         the repeated frozen-store linear scan into one build *)
      (match register with
      | Some f when positions <> [] -> f atom.R.pred positions
      | _ -> ());
      let iter =
        match cache with
        | Some c -> DB.iter_matches_cached c db
        | None -> DB.iter_matches db
      in
      ignore
        (iter atom.R.pred positions key (fun _seq fact ->
             incr seen;
             if !seen land (poll_every - 1) = 0 then poll ();
             if Array.length fact = arity && joins_ok fact then
               emit atom.R.pred fact)));
  !n

(* ------------------------------------------------------------------ *)
(* Server                                                              *)

type config = {
  sock : string;
  workers : int;
  queue_capacity : int;
  default_deadline_s : float option;
  io_timeout_s : float;
  idle_timeout_s : float;
  max_requests_per_conn : int;
  state_dir : string option;
  keep : int;
  snapshot_every : int;
  debug_endpoints : bool;
}

let default_config ~sock =
  { sock;
    workers = 4;
    queue_capacity = 64;
    default_deadline_s = None;
    io_timeout_s = 10.;
    idle_timeout_s = 5.;
    max_requests_per_conn = 10_000;
    state_dir = None;
    keep = 3;
    snapshot_every = 1;
    debug_endpoints = false }

(* an epoch pairs the frozen snapshot with its side-car index cache:
   patterns first seen at query time (after the publish-time
   preparation) are built once per epoch instead of linear-scanned per
   request *)
type epoch = { ep_id : int; ep_db : DB.t; ep_cache : DB.index_cache }

type stats = {
  st_epoch : int;
  st_requests : int;
  st_conns : int;
  st_shed : int;
  st_errors : int;
  st_updates : int;
  st_queue_depth : int;
  st_inflight : int;
  st_faults : int;
}

(* bound on the publish-time pattern registry, so an adversarial query
   stream cannot make every epoch copy arbitrarily expensive (patterns
   past the cap still get the per-epoch cache) *)
let max_registered_patterns = 512

type t = {
  cfg : config;
  session : Inc.state;
  tele : Kgm_telemetry.t;
  jr : Journal.t;
  epoch : epoch Atomic.t;
  mutable epoch_ctr : int;  (* under writer_mu *)
  writer_mu : Mutex.t;
  patterns_mu : Mutex.t;
  patterns : (string * int list, unit) Hashtbl.t;  (* query surface *)
  qp_mu : Mutex.t;
  qp_cache : (string, query) Hashtbl.t;  (* query text -> parsed *)
  mutable pool : Unix.file_descr Kgm_pool.Service.t option;
  shed_q : (Unix.file_descr * string) Queue.t;
  shed_mu : Mutex.t;
  shed_cond : Condition.t;
  mutable shed_thread : Thread.t option;
  stop_shed : bool Atomic.t;
  mutable acceptor_thread : Thread.t option;
  mutable listen_fd : Unix.file_descr option;
  started : bool Atomic.t;
  drain_req : bool Atomic.t;
  stop_accept : bool Atomic.t;
  stopped : bool Atomic.t;
  drain_tok : Token.t;
  c_requests : int Atomic.t;
  c_conns : int Atomic.t;
  c_shed : int Atomic.t;
  c_errors : int Atomic.t;
  c_updates : int Atomic.t;
  c_inflight : int Atomic.t;
  c_faults : int Atomic.t;
}

let freeze_copy db =
  let c = DB.copy db in
  if not (DB.is_frozen c) then DB.freeze c;
  c

let create ?(telemetry = Kgm_telemetry.null)
    ?(journal = Journal.null) ?(epoch = 0) cfg ~session =
  let cfg =
    { cfg with
      workers = max 1 cfg.workers;
      queue_capacity = max 1 cfg.queue_capacity;
      max_requests_per_conn = max 1 cfg.max_requests_per_conn;
      snapshot_every = max 1 cfg.snapshot_every }
  in
  let t =
    { cfg;
      session;
      tele = telemetry;
      jr = journal;
      epoch =
        Atomic.make
          { ep_id = epoch;
            ep_db = freeze_copy (Inc.db session);
            ep_cache = DB.cache_create () };
      epoch_ctr = epoch;
      writer_mu = Mutex.create ();
      patterns_mu = Mutex.create ();
      patterns = Hashtbl.create 16;
      qp_mu = Mutex.create ();
      qp_cache = Hashtbl.create 64;
      pool = None;
      shed_q = Queue.create ();
      shed_mu = Mutex.create ();
      shed_cond = Condition.create ();
      shed_thread = None;
      stop_shed = Atomic.make false;
      acceptor_thread = None;
      listen_fd = None;
      started = Atomic.make false;
      drain_req = Atomic.make false;
      stop_accept = Atomic.make false;
      stopped = Atomic.make false;
      drain_tok = Token.create ();
      c_requests = Atomic.make 0;
      c_conns = Atomic.make 0;
      c_shed = Atomic.make 0;
      c_errors = Atomic.make 0;
      c_updates = Atomic.make 0;
      c_inflight = Atomic.make 0;
      c_faults = Atomic.make 0 }
  in
  let queue_depth () =
    match t.pool with Some p -> Kgm_pool.Service.pending p | None -> 0
  in
  Kgm_telemetry.gauge t.tele "server.epoch" (fun () ->
      (Atomic.get t.epoch).ep_id);
  Kgm_telemetry.gauge t.tele "server.requests" (fun () ->
      Atomic.get t.c_requests);
  Kgm_telemetry.gauge t.tele "server.connections" (fun () ->
      Atomic.get t.c_conns);
  Kgm_telemetry.gauge t.tele "server.shed" (fun () -> Atomic.get t.c_shed);
  Kgm_telemetry.gauge t.tele "server.errors" (fun () ->
      Atomic.get t.c_errors);
  Kgm_telemetry.gauge t.tele "server.updates" (fun () ->
      Atomic.get t.c_updates);
  Kgm_telemetry.gauge t.tele "server.inflight" (fun () ->
      Atomic.get t.c_inflight);
  Kgm_telemetry.gauge t.tele "server.queue_depth" queue_depth;
  Kgm_telemetry.gauge t.tele "server.faults_absorbed" (fun () ->
      Atomic.get t.c_faults);
  t

let queue_depth t =
  match t.pool with Some p -> Kgm_pool.Service.pending p | None -> 0

let stats t =
  { st_epoch = (Atomic.get t.epoch).ep_id;
    st_requests = Atomic.get t.c_requests;
    st_conns = Atomic.get t.c_conns;
    st_shed = Atomic.get t.c_shed;
    st_errors = Atomic.get t.c_errors;
    st_updates = Atomic.get t.c_updates;
    st_queue_depth = queue_depth t;
    st_inflight = Atomic.get t.c_inflight;
    st_faults = Atomic.get t.c_faults }

let draining t = Atomic.get t.drain_req
let drain t = Atomic.set t.drain_req true

let register_pattern t pred positions =
  Mutex.lock t.patterns_mu;
  if
    Hashtbl.length t.patterns < max_registered_patterns
    && not (Hashtbl.mem t.patterns (pred, positions))
  then Hashtbl.replace t.patterns (pred, positions) ();
  Mutex.unlock t.patterns_mu

let registered_patterns t =
  Mutex.lock t.patterns_mu;
  let ps = Hashtbl.fold (fun k () acc -> k :: acc) t.patterns [] in
  Mutex.unlock t.patterns_mu;
  ps

(* publish the master as a fresh frozen epoch. Under writer_mu. Every
   probe pattern the query surface has used so far is index-prepared on
   the copy *before* it freezes, so readers of the new epoch never pay
   the frozen-store linear-scan fallback for a known pattern. The
   "swap" fault site is transient: wrapped in the retry loop, bounded
   by the drain token. A publish that exhausts its retries leaves the
   previous epoch visible — readers stay consistent, the next
   successful swap publishes everything since. *)
let publish t =
  let db = DB.copy (Inc.db t.session) in
  if DB.is_frozen db then DB.thaw db;
  List.iter
    (fun (pred, positions) -> DB.prepare_index db pred positions)
    (registered_patterns t);
  DB.freeze db;
  t.epoch_ctr <- t.epoch_ctr + 1;
  let id = t.epoch_ctr in
  Retry.with_backoff ~attempts:4 ~base_s:0.001 ~cancel:t.drain_tok
    ~on_retry:(fun ~attempt:_ _ -> Atomic.incr t.c_faults)
    (fun () ->
      Faults.inject "swap";
      Atomic.set t.epoch { ep_id = id; ep_db = db; ep_cache = DB.cache_create () });
  if Journal.enabled t.jr then
    Journal.emit t.jr "server.swap"
      [ ("epoch", J.Int id); ("facts", J.Int (DB.total db)) ]

(* write a session snapshot; failures are absorbed (journaled and
   counted) — a persistence hiccup must not fail the update that
   triggered it, and drain must complete regardless *)
let try_snapshot t =
  match t.cfg.state_dir with
  | None -> None
  | Some dir -> (
      match
        Retry.with_backoff ~attempts:4 ~base_s:0.002
          ~on_retry:(fun ~attempt:_ _ -> Atomic.incr t.c_faults)
          (fun () ->
            save_session ~dir ~keep:t.cfg.keep ~epoch:t.epoch_ctr t.session)
      with
      | path ->
          if Journal.enabled t.jr then
            Journal.emit t.jr "server.checkpoint"
              [ ("path", J.Str path); ("epoch", J.Int t.epoch_ctr) ];
          Some path
      | exception e ->
          Atomic.incr t.c_faults;
          if Journal.enabled t.jr then
            Journal.emit t.jr "server.checkpoint.fail"
              [ ("error", J.Str (Printexc.to_string e)) ];
          None)

(* ---- request routing (worker threads) ---- *)

let ok body = (200, [], body)

let handle_update t body =
  let batch = Batch.parse body in
  let inserts, retracts = Batch.split batch in
  with_lock t.writer_mu (fun () ->
      let u =
        Inc.maintain ~telemetry:t.tele ~journal:t.jr t.session ~inserts
          ~retracts
      in
      Atomic.incr t.c_updates;
      publish t;
      if Atomic.get t.c_updates mod t.cfg.snapshot_every = 0 then
        ignore (try_snapshot t);
      ok
        (Printf.sprintf
           "ok epoch=%d inserted=%d retracted=%d derived=%d deleted=%d \
            rederived=%d rounds=%d strata=%d agg_groups=%d fallback=%b\n"
           t.epoch_ctr u.Inc.u_inserted u.Inc.u_retracted u.Inc.u_derived
           u.Inc.u_deleted u.Inc.u_rederived u.Inc.u_rounds u.Inc.u_strata
           u.Inc.u_agg_groups u.Inc.u_fallback))

let handle_explain t body =
  let s = String.trim body in
  let s =
    if s <> "" && s.[String.length s - 1] = '.' then s else s ^ "."
  in
  let p = Kgm_vadalog.Parser.parse_program s in
  match p.R.facts with
  | [ (pred, args) ] ->
      let fact = Array.of_list args in
      with_lock t.writer_mu (fun () ->
          let sup = Inc.support t.session in
          let program =
            match Inc.phases t.session with
            | ph :: _ -> ph
            | [] -> R.empty_program
          in
          let buf = Buffer.create 256 in
          if not (DB.mem (Inc.db t.session) pred fact) then
            Buffer.add_string buf
              (Printf.sprintf "%% not in the database: %s\n" (String.trim s));
          Buffer.add_string buf
            (E.explain_tree_to_string (E.explain_tree sup program pred fact));
          ok (Buffer.contents buf))
  | _ ->
      Err.raise_error_ctx Err.Validate
        [ ("fact", body) ]
        "explain expects a single ground fact, e.g. 'control(a, b)'"

let handle_status t =
  let ep = Atomic.get t.epoch in
  let s = stats t in
  ok
    (Printf.sprintf
       "epoch: %d\nfacts: %d\nrequests: %d\nconnections: %d\nshed: %d\n\
        errors: %d\nupdates: %d\nqueue_depth: %d\ninflight: %d\n\
        faults_absorbed: %d\nworkers: %d\nqueue_capacity: %d\ndraining: %b\n"
       ep.ep_id (DB.total ep.ep_db) s.st_requests s.st_conns s.st_shed
       s.st_errors s.st_updates s.st_queue_depth s.st_inflight s.st_faults
       t.cfg.workers t.cfg.queue_capacity (draining t))

let handle_slow t req tok =
  let dur =
    match float_of_string_opt (String.trim req.body) with
    | Some d when d >= 0. -> Float.min d 30.
    | _ -> 0.05
  in
  let t0 = Kgm_telemetry.Clock.now () in
  let rec loop () =
    Token.check tok;
    Token.check t.drain_tok;
    if Kgm_telemetry.Clock.now () -. t0 < dur then begin
      Unix.sleepf 0.005;
      loop ()
    end
  in
  loop ();
  ok "slept\n"

let route t req =
  let deadline_s =
    match header req "x-kgm-deadline" with
    | Some v -> float_of_string_opt v
    | None -> t.cfg.default_deadline_s
  in
  let tok =
    match deadline_s with
    | Some d -> Token.create ~deadline_s:d ()
    | None -> Token.none
  in
  match (req.meth, req.path) with
  | "GET", "/health" -> ok "ok\n"
  | "GET", "/ready" ->
      if draining t then (503, [], "draining\n") else ok "ready\n"
  | "GET", "/epoch" ->
      ok (Printf.sprintf "%d\n" (Atomic.get t.epoch).ep_id)
  | "GET", "/status" -> handle_status t
  | "GET", "/metrics" ->
      with_lock t.writer_mu (fun () ->
          ( 200,
            [ ("content-type", "text/plain; version=0.0.4") ],
            Kgm_telemetry.prometheus t.tele ))
  | "POST", "/query" ->
      (* the query surface of a serving workload is a small set of
         repeated shapes: cache text -> parsed query so the Vadalog
         rule parser runs once per shape, not once per request.
         Parsed queries are immutable, so sharing them across reader
         domains is free; failures are not cached (they answer 400
         anyway). *)
      let q =
        match
          with_lock t.qp_mu (fun () -> Hashtbl.find_opt t.qp_cache req.body)
        with
        | Some q -> q
        | None ->
            let q = parse_query req.body in
            with_lock t.qp_mu (fun () ->
                if Hashtbl.length t.qp_cache < 4096 then
                  Hashtbl.replace t.qp_cache req.body q);
            q
      in
      let ep = Atomic.get t.epoch in
      let buf = Buffer.create 1024 in
      let poll () =
        Token.check tok;
        Token.check t.drain_tok
      in
      let n =
        eval_query ~poll ~register:(register_pattern t) ~cache:ep.ep_cache
          ep.ep_db q buf
      in
      ( 200,
        [ ("x-kgm-epoch", string_of_int ep.ep_id);
          ("x-kgm-count", string_of_int n) ],
        Buffer.contents buf )
  | "POST", "/explain" ->
      if draining t then (503, [], "draining\n") else handle_explain t req.body
  | "POST", "/update" ->
      if draining t then (503, [], "draining\n")
      else handle_update t req.body
  | "POST", "/slow" when t.cfg.debug_endpoints -> handle_slow t req tok
  | _, "/health" | _, "/ready" | _, "/epoch" | _, "/status" | _, "/metrics"
  | _, "/query" | _, "/explain" | _, "/update" ->
      (405, [], "method not allowed\n")
  | _ -> (404, [], "unknown endpoint\n")

(* One persistent connection, start to close. Requests are answered in
   arrival order; bytes past each request's content-length carry over
   to the next iteration (pipelining). The connection closes when the
   client asks ([connection: close]), the per-connection request cap is
   reached, the idle timeout expires, a drain is requested and no
   buffered request remains, or the framing breaks (one [400], then
   close — after a framing error the byte stream cannot be trusted). *)
let serve_conn t fd =
  Atomic.incr t.c_conns;
  let conn = make_conn fd in
  let rec loop () =
    match
      read_request ~idle_s:t.cfg.idle_timeout_s
        ~draining:(fun () -> draining t)
        conn
    with
    | `Close -> ()
    | `Err msg ->
        Atomic.incr t.c_errors;
        write_response ~keep_alive:false fd 400 [] (msg ^ "\n")
    | `Req req ->
        Atomic.incr t.c_requests;
        conn.c_served <- conn.c_served + 1;
        let status, extra, body =
          try
            Faults.inject "request";
            route t req
          with
          | Kgm_resilience.Fault site ->
              Atomic.incr t.c_faults;
              (500, [], Printf.sprintf "fault injected at %s\n" site)
          | Kgm_resilience.Interrupted `Deadline -> (504, [], "deadline\n")
          | Kgm_resilience.Interrupted `Cancelled -> (503, [], "draining\n")
          | Err.Error e -> (400, [], Err.to_string e ^ "\n")
          | e -> (500, [], "internal: " ^ Printexc.to_string e ^ "\n")
        in
        if status >= 400 then Atomic.incr t.c_errors;
        let client_close =
          match header req "connection" with
          | Some v -> String.lowercase_ascii (String.trim v) = "close"
          | None -> false
        in
        let keep_alive =
          (not client_close)
          && conn.c_served < t.cfg.max_requests_per_conn
          (* during a drain, finish what the client already pipelined,
             then close instead of waiting for more *)
          && not (draining t && conn.c_pending = "")
        in
        write_response ~keep_alive fd status extra body;
        if keep_alive then loop ()
  in
  loop ()

(* ---- threads ---- *)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* closing a socket with unread inbound bytes makes the kernel send
   RST, which destroys the response we just queued before the client
   can read it — so a shed answer must linger: stop sending, then
   drain whatever the client wrote until it sees our FIN and closes *)
let lingering_close fd =
  (try Unix.shutdown fd SHUTDOWN_SEND with Unix.Unix_error _ -> ());
  (try
     Unix.setsockopt_float fd SO_RCVTIMEO 1.0;
     let junk = Bytes.create 4096 in
     while Unix.read fd junk 0 (Bytes.length junk) > 0 do
       ()
     done
   with Unix.Unix_error _ -> ());
  close_quietly fd

(* the blocking half of a shed: 503 + lingering close. Runs only on
   the shed thread (or the drain coordinator), never on the acceptor *)
let shed_now t fd why =
  write_response ~keep_alive:false fd 503 [] (why ^ "\n");
  lingering_close fd;
  if Journal.enabled t.jr then
    Journal.emit t.jr "server.overloaded" [ ("why", J.Str why) ]

(* bound on 503s waiting for the shed thread: past it the connection
   is just closed — under that much pressure the polite answer has
   lost its audience, and the acceptor must never block *)
let max_shed_backlog = 256

(* hand the doomed fd to the shed thread. The acceptor's only cost is
   a queue push: a slow or dead shed target stalls the shed thread (up
   to its own IO timeouts), never the accept loop *)
let shed_async t fd why =
  Atomic.incr t.c_shed;
  Mutex.lock t.shed_mu;
  let backlogged = Queue.length t.shed_q >= max_shed_backlog in
  if not backlogged then begin
    Queue.push (fd, why) t.shed_q;
    Condition.signal t.shed_cond
  end;
  Mutex.unlock t.shed_mu;
  if backlogged then close_quietly fd

let shed_loop t =
  let rec loop () =
    Mutex.lock t.shed_mu;
    while Queue.is_empty t.shed_q && not (Atomic.get t.stop_shed) do
      Condition.wait t.shed_cond t.shed_mu
    done;
    if Queue.is_empty t.shed_q then Mutex.unlock t.shed_mu (* stopping *)
    else begin
      let fd, why = Queue.pop t.shed_q in
      Mutex.unlock t.shed_mu;
      shed_now t fd why;
      loop ()
    end
  in
  loop ()

let handle_conn t fd =
  Atomic.incr t.c_inflight;
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr t.c_inflight;
      close_quietly fd)
    (fun () -> serve_conn t fd)

let acceptor_loop t lfd pool =
  while not (Atomic.get t.stop_accept) do
    match Unix.select [ lfd ] [] [] 0.05 with
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept ~cloexec:true lfd with
        | exception Unix.Unix_error _ -> ()
        | fd, _ -> (
            match Faults.inject "accept" with
            | exception Kgm_resilience.Fault _ ->
                (* a dropped connection: the client sees a reset, the
                   failure path curl/retry loops exercise *)
                Atomic.incr t.c_faults;
                close_quietly fd
            | () ->
                (try
                   Unix.setsockopt_float fd SO_RCVTIMEO t.cfg.io_timeout_s;
                   Unix.setsockopt_float fd SO_SNDTIMEO t.cfg.io_timeout_s
                 with Unix.Unix_error _ -> ());
                if draining t then shed_async t fd "draining"
                else if
                  Kgm_pool.Service.pending pool >= t.cfg.queue_capacity
                  || not (Kgm_pool.Service.submit pool fd)
                then shed_async t fd "overloaded"))
  done

(* Serving allocates short-lived strings and buffers on every request;
   with the stock 256k-word minor heap a busy reader domain triggers a
   minor collection every few dozen requests, and on OCaml 5 every
   minor collection is a stop-the-world synchronization of *all*
   domains — the cross-domain rendezvous, not the copying, is what
   shows up as multi-millisecond tail latency. A serving process wants
   a large minor arena: raise it (never shrink a larger setting)
   before the reader domains spawn so they inherit it. *)
let serving_minor_heap = 4 * 1024 * 1024 (* words, per domain *)

let tune_runtime_for_serving () =
  let g = Gc.get () in
  if g.Gc.minor_heap_size < serving_minor_heap then
    Gc.set { g with Gc.minor_heap_size = serving_minor_heap }

let start t =
  if Atomic.exchange t.started true then
    invalid_arg "Kgm_server.start: already started";
  tune_runtime_for_serving ();
  (try Unix.unlink t.cfg.sock with Unix.Unix_error _ -> ());
  let lfd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  (try
     Unix.bind lfd (ADDR_UNIX t.cfg.sock);
     Unix.listen lfd 64
   with e ->
     close_quietly lfd;
     raise e);
  t.listen_fd <- Some lfd;
  (* the reader pool: dedicated domains, because every request answers
     against an immutable epoch snapshot — reads share no locks, so
     domains give true parallelism where systhreads would serialize on
     the runtime lock *)
  let pool =
    Kgm_pool.Service.create ~domains:t.cfg.workers
      ~on_error:(fun _ -> Atomic.incr t.c_errors)
      (fun fd -> handle_conn t fd)
  in
  t.pool <- Some pool;
  t.shed_thread <- Some (Thread.create (fun () -> shed_loop t) ());
  t.acceptor_thread <-
    Some (Thread.create (fun () -> acceptor_loop t lfd pool) ());
  if Journal.enabled t.jr then
    Journal.emit t.jr "server.start"
      [ ("sock", J.Str t.cfg.sock);
        ("workers", J.Int t.cfg.workers);
        ("queue", J.Int t.cfg.queue_capacity);
        ("epoch", J.Int (Atomic.get t.epoch).ep_id) ]

let absorb_drain_fault t =
  try Faults.inject "drain"
  with Kgm_resilience.Fault _ -> Atomic.incr t.c_faults

let run_until_drained t =
  while not (Atomic.get t.drain_req) do
    Thread.delay 0.02
  done;
  if Journal.enabled t.jr then Journal.emit t.jr "server.drain.start" [];
  (* 1. stop admission: the acceptor notices the flag within one select
     tick; then unlink the socket so new clients fail fast *)
  absorb_drain_fault t;
  Atomic.set t.stop_accept true;
  (match t.acceptor_thread with Some th -> Thread.join th | None -> ());
  (match t.listen_fd with Some fd -> close_quietly fd | None -> ());
  (try Unix.unlink t.cfg.sock with Unix.Unix_error _ -> ());
  (* 2. cancel in-flight work (scans and debug sleeps poll the drain
     token; keep-alive loops close once their buffered pipeline is
     answered) and shed every connection never picked up by a reader *)
  absorb_drain_fault t;
  Token.cancel t.drain_tok;
  (match t.pool with
  | Some pool ->
      let doomed = Kgm_pool.Service.shutdown pool in
      List.iter (fun fd -> shed_async t fd "draining") doomed
  | None -> ());
  (* the shed thread flushes its backlog (including the fds above),
     then exits *)
  Atomic.set t.stop_shed true;
  with_lock t.shed_mu (fun () -> Condition.broadcast t.shed_cond);
  (match t.shed_thread with Some th -> Thread.join th | None -> ());
  (* 3. final checkpoint — absorbed on failure: drain always exits *)
  absorb_drain_fault t;
  ignore (try_snapshot t);
  let s = stats t in
  if Journal.enabled t.jr then
    Journal.emit t.jr "server.drain.done"
      [ ("requests", J.Int s.st_requests);
        ("conns", J.Int s.st_conns);
        ("shed", J.Int s.st_shed);
        ("errors", J.Int s.st_errors);
        ("updates", J.Int s.st_updates);
        ("faults_absorbed", J.Int s.st_faults) ];
  Atomic.set t.stopped true;
  s

(* ------------------------------------------------------------------ *)
(* Client                                                              *)

module Client = struct
  type conn = {
    fd : Unix.file_descr;
    mutable leftover : string;  (** response bytes read past the framed end *)
    mutable alive : bool;       (** usable for another request *)
    mutable fd_closed : bool;
    chunk : Bytes.t;            (** read scratch, reused across responses *)
    resp : Buffer.t;            (** response accumulator, reused *)
    send : Buffer.t;            (** request assembly, reused *)
  }

  let connect ?(io_timeout_s = 30.) sock =
    let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
    (try
       Unix.setsockopt_float fd SO_RCVTIMEO io_timeout_s;
       Unix.setsockopt_float fd SO_SNDTIMEO io_timeout_s;
       Unix.connect fd (ADDR_UNIX sock)
     with e ->
       close_quietly fd;
       raise e);
    {
      fd;
      leftover = "";
      alive = true;
      fd_closed = false;
      chunk = Bytes.create 8192;
      resp = Buffer.create 1024;
      send = Buffer.create 512;
    }

  (* idempotent on purpose: a second [close] must never touch the fd
     number again — the kernel may have already handed it to another
     thread's socket, and closing that one destroys an unrelated live
     connection *)
  let close c =
    c.alive <- false;
    if not c.fd_closed then begin
      c.fd_closed <- true;
      close_quietly c.fd
    end

  let add_request buf ?deadline_s ?(body = "") ?(close_conn = false) ~meth
      ~path () =
    Buffer.add_string buf meth;
    Buffer.add_char buf ' ';
    Buffer.add_string buf path;
    Buffer.add_string buf " HTTP/1.1\r\nhost: kgm\r\n";
    if close_conn then Buffer.add_string buf "connection: close\r\n";
    (match deadline_s with
    | Some d ->
        Buffer.add_string buf (Printf.sprintf "x-kgm-deadline: %g\r\n" d)
    | None -> ());
    Buffer.add_string buf "content-length: ";
    Buffer.add_string buf (string_of_int (String.length body));
    Buffer.add_string buf "\r\n\r\n";
    Buffer.add_string buf body

  (* read one content-length framed response (never to EOF — the
     server keeps the socket open); bytes past the frame are stashed
     for the next call. [Failure] when the server closed or sent
     garbage. *)
  let read_response c =
    let resp = c.resp in
    Buffer.clear resp;
    Buffer.add_string resp c.leftover;
    c.leftover <- "";
    let chunk = c.chunk in
    let recv () =
      match Unix.read c.fd chunk 0 (Bytes.length chunk) with
      | 0 ->
          c.alive <- false;
          failwith "Kgm_server.Client: connection closed by server"
      | n -> Buffer.add_subbytes resp chunk 0 n
    in
    let rec read_head () =
      match find_sub (Buffer.contents resp) "\r\n\r\n" 0 with
      | Some i -> i
      | None ->
          recv ();
          read_head ()
    in
    let head_end = read_head () in
    let all = Buffer.contents resp in
    let head = String.sub all 0 head_end in
    let first_line, headers =
      match parse_head_lines head with
      | Some p -> p
      | None -> failwith "Kgm_server.Client: malformed response head"
    in
    let status =
      match String.split_on_char ' ' first_line with
      | _ :: code :: _ -> (
          match int_of_string_opt code with Some c -> c | None -> 0)
      | _ -> 0
    in
    let clen =
      match List.assoc_opt "content-length" headers with
      | Some v -> (
          match int_of_string_opt (String.trim v) with Some n -> n | None -> 0)
      | None -> 0
    in
    let total = head_end + 4 + clen in
    while Buffer.length resp < total do
      recv ()
    done;
    let all = Buffer.contents resp in
    let body = String.sub all (head_end + 4) clen in
    c.leftover <- String.sub all total (String.length all - total);
    (match List.assoc_opt "connection" headers with
    | Some v when String.lowercase_ascii (String.trim v) = "close" -> close c
    | _ -> ());
    (status, body)

  let request_on ?deadline_s ?(body = "") ?(close_conn = false) c ~meth ~path
      () =
    if not c.alive then failwith "Kgm_server.Client: connection closed";
    let b = c.send in
    Buffer.clear b;
    add_request b ?deadline_s ~body ~close_conn ~meth ~path ();
    write_all c.fd (Buffer.contents b);
    read_response c

  (* HTTP/1.1 pipelining: every request in one write, then the
     responses in order — one syscall round per batch instead of one
     per request *)
  let pipeline ?deadline_s c ~meth ~path bodies =
    if not c.alive then failwith "Kgm_server.Client: connection closed";
    let b = c.send in
    Buffer.clear b;
    List.iter
      (fun body -> add_request b ?deadline_s ~body ~meth ~path ())
      bodies;
    write_all c.fd (Buffer.contents b);
    List.map (fun _ -> read_response c) bodies

  let request ?deadline_s ?(body = "") ~sock ~meth ~path () =
    let io = match deadline_s with Some d -> Float.max 0.05 d | None -> 30. in
    let c = connect ~io_timeout_s:io sock in
    Fun.protect
      ~finally:(fun () -> close c)
      (fun () -> request_on ?deadline_s ~body ~close_conn:true c ~meth ~path ())

  let wait_ready ?(attempts = 100) ?(delay_s = 0.05) sock =
    let rec go n =
      if n <= 0 then false
      else
        match request ~deadline_s:1. ~sock ~meth:"GET" ~path:"/ready" () with
        | 200, _ -> true
        | _ ->
            Thread.delay delay_s;
            go (n - 1)
        | exception (Unix.Unix_error _ | Failure _) ->
            Thread.delay delay_s;
            go (n - 1)
    in
    go attempts
end
