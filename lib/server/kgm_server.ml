(* Kgm_server — the long-lived reasoning daemon behind `kgmodel serve`.

   One Incremental.state (the master materialization, mutated only
   under [writer_mu]) feeds an Atomic.t of frozen database epochs.
   Readers load the current epoch with one atomic read and answer
   against it — no reader ever blocks on a writer, and every response
   is stamped with the epoch id it was computed from. The wire
   protocol is a hand-rolled HTTP/1.1 subset over a Unix-domain
   socket: one request per connection, Connection: close — enough for
   curl, the bundled Client and the chaos harness, with no external
   dependency.

   Threading: one acceptor thread (select with a short timeout so it
   notices the drain flag), N worker threads behind a bounded
   admission queue, and the caller's thread parked in
   run_until_drained acting as the drain coordinator. The telemetry
   collector is not thread-safe, so every collector mutation and
   export happens under [writer_mu]; worker-thread statistics live in
   Atomics sampled by registered gauges at export time. *)

module R = Kgm_vadalog.Rule
module DB = Kgm_vadalog.Database
module Inc = Kgm_vadalog.Incremental
module E = Kgm_vadalog.Engine
module Err = Kgm_common.Kgm_error
module Token = Kgm_resilience.Token
module Faults = Kgm_resilience.Faults
module Retry = Kgm_resilience.Retry
module Snapshot = Kgm_resilience.Snapshot
module Journal = Kgm_telemetry.Journal
module J = Kgm_telemetry.Json

let with_lock mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* ------------------------------------------------------------------ *)
(* Update batches                                                      *)

module Batch = struct
  type sign = [ `Ins | `Ret ]

  let parse_line lineno line =
    let line = String.trim line in
    if line = "" || line.[0] = '%' then []
    else begin
      let sign, rest =
        match line.[0] with
        | '+' -> (`Ins, String.sub line 1 (String.length line - 1))
        | '-' -> (`Ret, String.sub line 1 (String.length line - 1))
        | _ -> (`Ins, line)
      in
      let rest = String.trim rest in
      let rest =
        if rest <> "" && rest.[String.length rest - 1] = '.' then rest
        else rest ^ "."
      in
      let reject msg =
        Err.raise_error_ctx Err.Validate
          [ ("line", string_of_int lineno); ("text", line) ]
          "%s" msg
      in
      let p =
        try Kgm_vadalog.Parser.parse_program rest
        with Err.Error e -> reject ("batch: " ^ e.Err.message)
      in
      if p.R.rules <> [] then
        reject "a batch line must be a ground fact, not a rule";
      if p.R.facts = [] then reject "batch: no fact on this line";
      List.map
        (fun (pred, args) -> (sign, (pred, Array.of_list args)))
        p.R.facts
    end

  let parse text =
    String.split_on_char '\n' text
    |> List.mapi (fun i line -> parse_line (i + 1) line)
    |> List.concat

  let split batch =
    let pick s =
      List.filter_map (fun (s', pf) -> if s' = s then Some pf else None) batch
    in
    (pick `Ins, pick `Ret)
end

(* ------------------------------------------------------------------ *)
(* Session persistence                                                 *)

let session_kind = "session"
let session_version = 3

(* derived facts are deliberately absent: recovery re-chases, which
   keeps snapshots small and makes a restore verifiable against the
   program instead of trusting a marshaled closure *)
type session_blob = {
  sb_fingerprint : string;
  sb_epoch : int;
  sb_edb : (string * Kgm_common.Value.t array) list;
}

let strip ph = { ph with R.facts = [] }

let fingerprint phases =
  Digest.to_hex
    (Digest.string
       (String.concat "\n%%phase%%\n"
          (List.map (fun ph -> R.program_to_string (strip ph)) phases)))

let save_session ~dir ~keep ~epoch st =
  let blob =
    { sb_fingerprint = fingerprint (Inc.phases st);
      sb_epoch = epoch;
      sb_edb = Inc.edb_facts st }
  in
  let path = Snapshot.path ~dir ~kind:session_kind ~seq:epoch in
  Snapshot.save ~kind:session_kind ~version:session_version ~path blob;
  ignore (Snapshot.gc ~dir ~kind:session_kind ~keep);
  path

let recover ?options ?telemetry ?journal ~dir phases =
  if phases = [] then invalid_arg "Kgm_server.recover: empty pipeline";
  let jr = Option.value journal ~default:Journal.null in
  let expected = fingerprint phases in
  let gens = List.rev (Snapshot.list ~dir ~kind:session_kind) in
  let rec try_gens = function
    | [] -> None
    | (_seq, path) :: older -> (
        match
          let blob : session_blob =
            Snapshot.load ~kind:session_kind ~version:session_version ~path
          in
          if blob.sb_fingerprint <> expected then
            Err.raise_error_ctx Err.Storage
              [ ("path", path) ]
              "session snapshot was written by a different program";
          let db = DB.create () in
          List.iter
            (fun (pred, fact) -> ignore (DB.add db pred fact))
            blob.sb_edb;
          (* facts-stripped phases: the snapshot's EDB already contains
             the program's inline facts, including any later retracted
             by updates — re-adding them from the rule text would
             resurrect retractions *)
          let st, _stats =
            Inc.chase_phases ?options ?telemetry ?journal ~db
              (List.map strip phases)
          in
          (st, blob.sb_epoch)
        with
        | st, epoch ->
            if Journal.enabled jr then
              Journal.emit jr "server.recover"
                [ ("path", J.Str path);
                  ("epoch", J.Int epoch);
                  ("facts", J.Int (DB.total (Inc.db st))) ];
            Some (st, epoch, path)
        | exception Err.Error e ->
            if Journal.enabled jr then
              Journal.emit jr "server.recover.reject"
                [ ("path", J.Str path); ("error", J.Str (Err.to_string e)) ];
            try_gens older)
  in
  try_gens gens

(* ------------------------------------------------------------------ *)
(* HTTP/1.1 subset                                                     *)

type req = {
  meth : string;
  path : string;
  headers : (string * string) list;  (* keys lowercased *)
  body : string;
}

let header req k = List.assoc_opt k req.headers

let find_sub hay needle from =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go from

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      let w = Unix.write_substring fd s off (n - off) in
      go (off + w)
  in
  go 0

let reason_of = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | 504 -> "Gateway Timeout"
  | _ -> "Status"

let write_response fd status extra body =
  let b = Buffer.create (String.length body + 256) in
  Buffer.add_string b
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (reason_of status));
  Buffer.add_string b "content-type: text/plain; charset=utf-8\r\n";
  Buffer.add_string b
    (Printf.sprintf "content-length: %d\r\n" (String.length body));
  Buffer.add_string b "connection: close\r\n";
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v))
    extra;
  Buffer.add_string b "\r\n";
  Buffer.add_string b body;
  (* a peer that hung up mid-response is its problem, not ours *)
  try write_all fd (Buffer.contents b) with Unix.Unix_error _ -> ()

let max_head = 65536
let max_body = 8_000_000

let read_request fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 4096 in
  let rec fill () =
    match find_sub (Buffer.contents buf) "\r\n\r\n" 0 with
    | Some i -> Ok i
    | None ->
        if Buffer.length buf > max_head then Error "request head too large"
        else begin
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> Error "connection closed mid-request"
          | n ->
              Buffer.add_subbytes buf chunk 0 n;
              fill ()
          | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
              Error "read timeout"
          | exception Unix.Unix_error (e, _, _) ->
              Error (Unix.error_message e)
        end
  in
  match fill () with
  | Error _ as e -> e
  | Ok head_end -> (
      let all = Buffer.contents buf in
      let head = String.sub all 0 head_end in
      match String.split_on_char '\r' head |> List.map String.trim with
      | [] -> Error "empty request"
      | first :: rest -> (
          let headers =
            List.filter_map
              (fun line ->
                match String.index_opt line ':' with
                | None -> None
                | Some i ->
                    Some
                      ( String.lowercase_ascii (String.sub line 0 i),
                        String.trim
                          (String.sub line (i + 1)
                             (String.length line - i - 1)) ))
              rest
          in
          let clen =
            match List.assoc_opt "content-length" headers with
            | Some v -> ( match int_of_string_opt v with Some n -> n | None -> -1)
            | None -> 0
          in
          if clen < 0 || clen > max_body then Error "bad content-length"
          else
            let body = Buffer.create clen in
            Buffer.add_string body
              (String.sub all (head_end + 4)
                 (String.length all - head_end - 4));
            let rec drain_body () =
              if Buffer.length body >= clen then
                Ok (String.sub (Buffer.contents body) 0 clen)
              else
                match Unix.read fd chunk 0 (Bytes.length chunk) with
                | 0 -> Error "connection closed mid-body"
                | n ->
                    Buffer.add_subbytes body chunk 0 n;
                    drain_body ()
                | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
                    Error "read timeout"
                | exception Unix.Unix_error (e, _, _) ->
                    Error (Unix.error_message e)
            in
            match drain_body () with
            | Error _ as e -> e
            | Ok body -> (
                match String.split_on_char ' ' first with
                | meth :: path :: _ ->
                    Ok { meth; path; headers; body }
                | _ -> Error "malformed request line")))

(* ------------------------------------------------------------------ *)
(* Pattern queries                                                     *)

(* a query body is either a bare predicate name (all its facts) or a
   pattern like [controls(a, X)] — constants bind positions, variables
   project, a repeated variable joins within the fact. Parsed by
   round-tripping [pat :- pat.] through the Vadalog rule parser, so the
   constant syntax (strings, numbers, dates, ...) is exactly the
   language's own. *)
type query =
  | Q_pred of string
  | Q_pattern of R.atom

let parse_query body =
  let s = String.trim body in
  let s =
    if s <> "" && s.[String.length s - 1] = '.' then
      String.trim (String.sub s 0 (String.length s - 1))
    else s
  in
  if s = "" then
    Err.raise_error_ctx Err.Validate [] "query: empty pattern";
  if not (String.contains s '(') then Q_pred s
  else
    let rule =
      try Kgm_vadalog.Parser.parse_rule (s ^ " :- " ^ s ^ ".")
      with Err.Error e ->
        Err.raise_error_ctx Err.Validate
          [ ("pattern", s) ]
          "query: %s" e.Err.message
    in
    match rule.R.head with
    | [ atom ] -> Q_pattern atom
    | _ ->
        Err.raise_error_ctx Err.Validate
          [ ("pattern", s) ]
          "query: expected a single atom"

let fact_line pred fact =
  Printf.sprintf "%s(%s)." pred
    (String.concat ", "
       (Array.to_list (Array.map Kgm_common.Value.to_string fact)))

(* poll the deadline/drain tokens every so many facts so a scan over a
   large predicate cannot outlive its budget *)
let poll_every = 2048

let eval_query ~poll db q buf =
  let n = ref 0 in
  let seen = ref 0 in
  let emit pred fact =
    incr n;
    Buffer.add_string buf (fact_line pred fact);
    Buffer.add_char buf '\n'
  in
  (match q with
  | Q_pred pred ->
      List.iter
        (fun fact ->
          incr seen;
          if !seen land (poll_every - 1) = 0 then poll ();
          emit pred fact)
        (DB.facts db pred)
  | Q_pattern atom ->
      let args = Array.of_list atom.R.args in
      let arity = Array.length args in
      let positions = ref [] and key = ref [] in
      Array.iteri
        (fun i t ->
          match t with
          | Kgm_vadalog.Term.Const v ->
              positions := i :: !positions;
              key := v :: !key
          | Kgm_vadalog.Term.Var _ -> ())
        args;
      let positions = List.rev !positions and key = List.rev !key in
      (* positions of each named variable occurring more than once *)
      let var_groups =
        let tbl = Hashtbl.create 4 in
        Array.iteri
          (fun i t ->
            match t with
            | Kgm_vadalog.Term.Var v when v <> "" && v.[0] <> '_' ->
                Hashtbl.replace tbl v
                  (i :: (try Hashtbl.find tbl v with Not_found -> []))
            | _ -> ())
          args;
        Hashtbl.fold
          (fun _ ps acc -> if List.length ps > 1 then ps :: acc else acc)
          tbl []
      in
      let joins_ok fact =
        List.for_all
          (fun ps ->
            match ps with
            | [] -> true
            | p0 :: rest ->
                List.for_all
                  (fun p -> Kgm_common.Value.equal fact.(p0) fact.(p))
                  rest)
          var_groups
      in
      ignore
        (DB.iter_matches db atom.R.pred positions key (fun _seq fact ->
             incr seen;
             if !seen land (poll_every - 1) = 0 then poll ();
             if Array.length fact = arity && joins_ok fact then
               emit atom.R.pred fact)));
  !n

(* ------------------------------------------------------------------ *)
(* Server                                                              *)

type config = {
  sock : string;
  workers : int;
  queue_capacity : int;
  default_deadline_s : float option;
  io_timeout_s : float;
  state_dir : string option;
  keep : int;
  snapshot_every : int;
  debug_endpoints : bool;
}

let default_config ~sock =
  { sock;
    workers = 4;
    queue_capacity = 64;
    default_deadline_s = None;
    io_timeout_s = 10.;
    state_dir = None;
    keep = 3;
    snapshot_every = 1;
    debug_endpoints = false }

type epoch = { ep_id : int; ep_db : DB.t }

type stats = {
  st_epoch : int;
  st_requests : int;
  st_shed : int;
  st_errors : int;
  st_updates : int;
  st_queue_depth : int;
  st_inflight : int;
  st_faults : int;
}

type t = {
  cfg : config;
  session : Inc.state;
  tele : Kgm_telemetry.t;
  jr : Journal.t;
  epoch : epoch Atomic.t;
  mutable epoch_ctr : int;  (* under writer_mu *)
  writer_mu : Mutex.t;
  q : Unix.file_descr Queue.t;
  q_mu : Mutex.t;
  q_cond : Condition.t;
  mutable worker_threads : Thread.t list;
  mutable acceptor_thread : Thread.t option;
  mutable listen_fd : Unix.file_descr option;
  started : bool Atomic.t;
  drain_req : bool Atomic.t;
  stop_accept : bool Atomic.t;
  stop_workers : bool Atomic.t;
  stopped : bool Atomic.t;
  drain_tok : Token.t;
  c_requests : int Atomic.t;
  c_shed : int Atomic.t;
  c_errors : int Atomic.t;
  c_updates : int Atomic.t;
  c_inflight : int Atomic.t;
  c_faults : int Atomic.t;
}

let freeze_copy db =
  let c = DB.copy db in
  if not (DB.is_frozen c) then DB.freeze c;
  c

let create ?(telemetry = Kgm_telemetry.null)
    ?(journal = Journal.null) ?(epoch = 0) cfg ~session =
  let cfg =
    { cfg with
      workers = max 1 cfg.workers;
      queue_capacity = max 1 cfg.queue_capacity;
      snapshot_every = max 1 cfg.snapshot_every }
  in
  let t =
    { cfg;
      session;
      tele = telemetry;
      jr = journal;
      epoch =
        Atomic.make { ep_id = epoch; ep_db = freeze_copy (Inc.db session) };
      epoch_ctr = epoch;
      writer_mu = Mutex.create ();
      q = Queue.create ();
      q_mu = Mutex.create ();
      q_cond = Condition.create ();
      worker_threads = [];
      acceptor_thread = None;
      listen_fd = None;
      started = Atomic.make false;
      drain_req = Atomic.make false;
      stop_accept = Atomic.make false;
      stop_workers = Atomic.make false;
      stopped = Atomic.make false;
      drain_tok = Token.create ();
      c_requests = Atomic.make 0;
      c_shed = Atomic.make 0;
      c_errors = Atomic.make 0;
      c_updates = Atomic.make 0;
      c_inflight = Atomic.make 0;
      c_faults = Atomic.make 0 }
  in
  Kgm_telemetry.gauge t.tele "server.epoch" (fun () ->
      (Atomic.get t.epoch).ep_id);
  Kgm_telemetry.gauge t.tele "server.requests" (fun () ->
      Atomic.get t.c_requests);
  Kgm_telemetry.gauge t.tele "server.shed" (fun () -> Atomic.get t.c_shed);
  Kgm_telemetry.gauge t.tele "server.errors" (fun () ->
      Atomic.get t.c_errors);
  Kgm_telemetry.gauge t.tele "server.updates" (fun () ->
      Atomic.get t.c_updates);
  Kgm_telemetry.gauge t.tele "server.inflight" (fun () ->
      Atomic.get t.c_inflight);
  Kgm_telemetry.gauge t.tele "server.queue_depth" (fun () ->
      Queue.length t.q);
  Kgm_telemetry.gauge t.tele "server.faults_absorbed" (fun () ->
      Atomic.get t.c_faults);
  t

let stats t =
  { st_epoch = (Atomic.get t.epoch).ep_id;
    st_requests = Atomic.get t.c_requests;
    st_shed = Atomic.get t.c_shed;
    st_errors = Atomic.get t.c_errors;
    st_updates = Atomic.get t.c_updates;
    st_queue_depth = Queue.length t.q;
    st_inflight = Atomic.get t.c_inflight;
    st_faults = Atomic.get t.c_faults }

let draining t = Atomic.get t.drain_req
let drain t = Atomic.set t.drain_req true

(* publish the master as a fresh frozen epoch. Under writer_mu. The
   "swap" fault site is transient: wrapped in the retry loop, bounded
   by the drain token. A publish that exhausts its retries leaves the
   previous epoch visible — readers stay consistent, the next
   successful swap publishes everything since. *)
let publish t =
  let db = freeze_copy (Inc.db t.session) in
  t.epoch_ctr <- t.epoch_ctr + 1;
  let id = t.epoch_ctr in
  Retry.with_backoff ~attempts:4 ~base_s:0.001 ~cancel:t.drain_tok
    ~on_retry:(fun ~attempt:_ _ -> Atomic.incr t.c_faults)
    (fun () ->
      Faults.inject "swap";
      Atomic.set t.epoch { ep_id = id; ep_db = db });
  if Journal.enabled t.jr then
    Journal.emit t.jr "server.swap"
      [ ("epoch", J.Int id); ("facts", J.Int (DB.total db)) ]

(* write a session snapshot; failures are absorbed (journaled and
   counted) — a persistence hiccup must not fail the update that
   triggered it, and drain must complete regardless *)
let try_snapshot t =
  match t.cfg.state_dir with
  | None -> None
  | Some dir -> (
      match
        Retry.with_backoff ~attempts:4 ~base_s:0.002
          ~on_retry:(fun ~attempt:_ _ -> Atomic.incr t.c_faults)
          (fun () ->
            save_session ~dir ~keep:t.cfg.keep ~epoch:t.epoch_ctr t.session)
      with
      | path ->
          if Journal.enabled t.jr then
            Journal.emit t.jr "server.checkpoint"
              [ ("path", J.Str path); ("epoch", J.Int t.epoch_ctr) ];
          Some path
      | exception e ->
          Atomic.incr t.c_faults;
          if Journal.enabled t.jr then
            Journal.emit t.jr "server.checkpoint.fail"
              [ ("error", J.Str (Printexc.to_string e)) ];
          None)

(* ---- request routing (worker threads) ---- *)

let ok body = (200, [], body)

let handle_update t body =
  let batch = Batch.parse body in
  let inserts, retracts = Batch.split batch in
  with_lock t.writer_mu (fun () ->
      let u =
        Inc.maintain ~telemetry:t.tele ~journal:t.jr t.session ~inserts
          ~retracts
      in
      Atomic.incr t.c_updates;
      publish t;
      if Atomic.get t.c_updates mod t.cfg.snapshot_every = 0 then
        ignore (try_snapshot t);
      ok
        (Printf.sprintf
           "ok epoch=%d inserted=%d retracted=%d derived=%d deleted=%d \
            rederived=%d rounds=%d fallback=%b\n"
           t.epoch_ctr u.Inc.u_inserted u.Inc.u_retracted u.Inc.u_derived
           u.Inc.u_deleted u.Inc.u_rederived u.Inc.u_rounds u.Inc.u_fallback))

let handle_explain t body =
  let s = String.trim body in
  let s =
    if s <> "" && s.[String.length s - 1] = '.' then s else s ^ "."
  in
  let p = Kgm_vadalog.Parser.parse_program s in
  match p.R.facts with
  | [ (pred, args) ] ->
      let fact = Array.of_list args in
      with_lock t.writer_mu (fun () ->
          let sup = Inc.support t.session in
          let program =
            match Inc.phases t.session with
            | ph :: _ -> ph
            | [] -> R.empty_program
          in
          let buf = Buffer.create 256 in
          if not (DB.mem (Inc.db t.session) pred fact) then
            Buffer.add_string buf
              (Printf.sprintf "%% not in the database: %s\n" (String.trim s));
          Buffer.add_string buf
            (E.explain_tree_to_string (E.explain_tree sup program pred fact));
          ok (Buffer.contents buf))
  | _ ->
      Err.raise_error_ctx Err.Validate
        [ ("fact", body) ]
        "explain expects a single ground fact, e.g. 'control(a, b)'"

let handle_status t =
  let ep = Atomic.get t.epoch in
  let s = stats t in
  ok
    (Printf.sprintf
       "epoch: %d\nfacts: %d\nrequests: %d\nshed: %d\nerrors: %d\n\
        updates: %d\nqueue_depth: %d\ninflight: %d\nfaults_absorbed: %d\n\
        workers: %d\nqueue_capacity: %d\ndraining: %b\n"
       ep.ep_id (DB.total ep.ep_db) s.st_requests s.st_shed s.st_errors
       s.st_updates s.st_queue_depth s.st_inflight s.st_faults t.cfg.workers
       t.cfg.queue_capacity (draining t))

let handle_slow t req tok =
  let dur =
    match float_of_string_opt (String.trim req.body) with
    | Some d when d >= 0. -> Float.min d 30.
    | _ -> 0.05
  in
  let t0 = Kgm_telemetry.Clock.now () in
  let rec loop () =
    Token.check tok;
    Token.check t.drain_tok;
    if Kgm_telemetry.Clock.now () -. t0 < dur then begin
      Thread.delay 0.005;
      loop ()
    end
  in
  loop ();
  ok "slept\n"

let route t req =
  let deadline_s =
    match header req "x-kgm-deadline" with
    | Some v -> float_of_string_opt v
    | None -> t.cfg.default_deadline_s
  in
  let tok =
    match deadline_s with
    | Some d -> Token.create ~deadline_s:d ()
    | None -> Token.none
  in
  match (req.meth, req.path) with
  | "GET", "/health" -> ok "ok\n"
  | "GET", "/ready" ->
      if draining t then (503, [], "draining\n") else ok "ready\n"
  | "GET", "/epoch" ->
      ok (Printf.sprintf "%d\n" (Atomic.get t.epoch).ep_id)
  | "GET", "/status" -> handle_status t
  | "GET", "/metrics" ->
      with_lock t.writer_mu (fun () ->
          ( 200,
            [ ("content-type", "text/plain; version=0.0.4") ],
            Kgm_telemetry.prometheus t.tele ))
  | "POST", "/query" ->
      let q = parse_query req.body in
      let ep = Atomic.get t.epoch in
      let buf = Buffer.create 1024 in
      let poll () =
        Token.check tok;
        Token.check t.drain_tok
      in
      let n = eval_query ~poll ep.ep_db q buf in
      ( 200,
        [ ("x-kgm-epoch", string_of_int ep.ep_id);
          ("x-kgm-count", string_of_int n) ],
        Buffer.contents buf )
  | "POST", "/explain" ->
      if draining t then (503, [], "draining\n") else handle_explain t req.body
  | "POST", "/update" ->
      if draining t then (503, [], "draining\n")
      else handle_update t req.body
  | "POST", "/slow" when t.cfg.debug_endpoints -> handle_slow t req tok
  | _, "/health" | _, "/ready" | _, "/epoch" | _, "/status" | _, "/metrics"
  | _, "/query" | _, "/explain" | _, "/update" ->
      (405, [], "method not allowed\n")
  | _ -> (404, [], "unknown endpoint\n")

let serve_conn t fd =
  Atomic.incr t.c_requests;
  match read_request fd with
  | Error msg ->
      Atomic.incr t.c_errors;
      write_response fd 400 [] (msg ^ "\n")
  | Ok req ->
      let status, extra, body =
        try
          Faults.inject "request";
          route t req
        with
        | Kgm_resilience.Fault site ->
            Atomic.incr t.c_faults;
            (500, [], Printf.sprintf "fault injected at %s\n" site)
        | Kgm_resilience.Interrupted `Deadline -> (504, [], "deadline\n")
        | Kgm_resilience.Interrupted `Cancelled -> (503, [], "draining\n")
        | Err.Error e -> (400, [], Err.to_string e ^ "\n")
        | e -> (500, [], "internal: " ^ Printexc.to_string e ^ "\n")
      in
      if status >= 400 then Atomic.incr t.c_errors;
      write_response fd status extra body

(* ---- threads ---- *)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* closing a socket with unread inbound bytes makes the kernel send
   RST, which destroys the response we just queued before the client
   can read it — so a shed answer must linger: stop sending, then
   drain whatever the client wrote until it sees our FIN and closes *)
let lingering_close fd =
  (try Unix.shutdown fd SHUTDOWN_SEND with Unix.Unix_error _ -> ());
  (try
     Unix.setsockopt_float fd SO_RCVTIMEO 1.0;
     let junk = Bytes.create 4096 in
     while Unix.read fd junk 0 (Bytes.length junk) > 0 do
       ()
     done
   with Unix.Unix_error _ -> ());
  close_quietly fd

let shed t fd why =
  Atomic.incr t.c_shed;
  write_response fd 503 [] (why ^ "\n");
  lingering_close fd;
  if Journal.enabled t.jr then
    Journal.emit t.jr "server.overloaded" [ ("why", J.Str why) ]

let worker_loop t =
  let rec loop () =
    Mutex.lock t.q_mu;
    while Queue.is_empty t.q && not (Atomic.get t.stop_workers) do
      Condition.wait t.q_cond t.q_mu
    done;
    if Queue.is_empty t.q then Mutex.unlock t.q_mu (* stopping *)
    else begin
      let fd = Queue.pop t.q in
      Mutex.unlock t.q_mu;
      Atomic.incr t.c_inflight;
      Fun.protect
        ~finally:(fun () ->
          Atomic.decr t.c_inflight;
          close_quietly fd)
        (fun () -> serve_conn t fd);
      loop ()
    end
  in
  loop ()

let acceptor_loop t lfd =
  while not (Atomic.get t.stop_accept) do
    match Unix.select [ lfd ] [] [] 0.05 with
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept ~cloexec:true lfd with
        | exception Unix.Unix_error _ -> ()
        | fd, _ -> (
            match Faults.inject "accept" with
            | exception Kgm_resilience.Fault _ ->
                (* a dropped connection: the client sees a reset, the
                   failure path curl/retry loops exercise *)
                Atomic.incr t.c_faults;
                close_quietly fd
            | () ->
                (try
                   Unix.setsockopt_float fd SO_RCVTIMEO t.cfg.io_timeout_s;
                   Unix.setsockopt_float fd SO_SNDTIMEO t.cfg.io_timeout_s
                 with Unix.Unix_error _ -> ());
                if draining t then shed t fd "draining"
                else begin
                  let admitted =
                    with_lock t.q_mu (fun () ->
                        if Queue.length t.q < t.cfg.queue_capacity then begin
                          Queue.push fd t.q;
                          Condition.signal t.q_cond;
                          true
                        end
                        else false)
                  in
                  if not admitted then shed t fd "overloaded"
                end))
  done

let start t =
  if Atomic.exchange t.started true then
    invalid_arg "Kgm_server.start: already started";
  (try Unix.unlink t.cfg.sock with Unix.Unix_error _ -> ());
  let lfd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  (try
     Unix.bind lfd (ADDR_UNIX t.cfg.sock);
     Unix.listen lfd 64
   with e ->
     close_quietly lfd;
     raise e);
  t.listen_fd <- Some lfd;
  t.acceptor_thread <- Some (Thread.create (fun () -> acceptor_loop t lfd) ());
  t.worker_threads <-
    List.init t.cfg.workers (fun _ -> Thread.create (fun () -> worker_loop t) ());
  if Journal.enabled t.jr then
    Journal.emit t.jr "server.start"
      [ ("sock", J.Str t.cfg.sock);
        ("workers", J.Int t.cfg.workers);
        ("queue", J.Int t.cfg.queue_capacity);
        ("epoch", J.Int (Atomic.get t.epoch).ep_id) ]

let absorb_drain_fault t =
  try Faults.inject "drain"
  with Kgm_resilience.Fault _ -> Atomic.incr t.c_faults

let run_until_drained t =
  while not (Atomic.get t.drain_req) do
    Thread.delay 0.02
  done;
  if Journal.enabled t.jr then Journal.emit t.jr "server.drain.start" [];
  (* 1. stop admission: the acceptor notices the flag within one select
     tick; then unlink the socket so new clients fail fast *)
  absorb_drain_fault t;
  Atomic.set t.stop_accept true;
  (match t.acceptor_thread with Some th -> Thread.join th | None -> ());
  (match t.listen_fd with Some fd -> close_quietly fd | None -> ());
  (try Unix.unlink t.cfg.sock with Unix.Unix_error _ -> ());
  (* 2. cancel in-flight work (scans and debug sleeps poll the drain
     token) and shed everything still queued *)
  absorb_drain_fault t;
  Token.cancel t.drain_tok;
  let doomed =
    with_lock t.q_mu (fun () ->
        let l = List.of_seq (Queue.to_seq t.q) in
        Queue.clear t.q;
        Atomic.set t.stop_workers true;
        Condition.broadcast t.q_cond;
        l)
  in
  List.iter (fun fd -> shed t fd "draining") doomed;
  List.iter Thread.join t.worker_threads;
  (* 3. final checkpoint — absorbed on failure: drain always exits *)
  absorb_drain_fault t;
  ignore (try_snapshot t);
  let s = stats t in
  if Journal.enabled t.jr then
    Journal.emit t.jr "server.drain.done"
      [ ("requests", J.Int s.st_requests);
        ("shed", J.Int s.st_shed);
        ("errors", J.Int s.st_errors);
        ("updates", J.Int s.st_updates);
        ("faults_absorbed", J.Int s.st_faults) ];
  Atomic.set t.stopped true;
  s

(* ------------------------------------------------------------------ *)
(* Client                                                              *)

module Client = struct
  let request ?deadline_s ?(body = "") ~sock ~meth ~path () =
    let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> close_quietly fd)
      (fun () ->
        let io =
          match deadline_s with Some d -> Float.max 0.05 d | None -> 30.
        in
        (try
           Unix.setsockopt_float fd SO_RCVTIMEO io;
           Unix.setsockopt_float fd SO_SNDTIMEO io
         with Unix.Unix_error _ -> ());
        Unix.connect fd (ADDR_UNIX sock);
        let b = Buffer.create (String.length body + 256) in
        Buffer.add_string b
          (Printf.sprintf "%s %s HTTP/1.1\r\n" meth path);
        Buffer.add_string b "host: kgm\r\nconnection: close\r\n";
        (match deadline_s with
        | Some d ->
            Buffer.add_string b (Printf.sprintf "x-kgm-deadline: %g\r\n" d)
        | None -> ());
        Buffer.add_string b
          (Printf.sprintf "content-length: %d\r\n\r\n" (String.length body));
        Buffer.add_string b body;
        write_all fd (Buffer.contents b);
        let resp = Buffer.create 1024 in
        let chunk = Bytes.create 4096 in
        let rec slurp () =
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes resp chunk 0 n;
              slurp ()
        in
        slurp ();
        let all = Buffer.contents resp in
        let status =
          match String.index_opt all ' ' with
          | Some i -> (
              match
                int_of_string_opt
                  (String.trim
                     (String.sub all (i + 1) (Int.min 4 (String.length all - i - 1))))
              with
              | Some c -> c
              | None -> 0)
          | None -> 0
        in
        let body =
          match find_sub all "\r\n\r\n" 0 with
          | Some i -> String.sub all (i + 4) (String.length all - i - 4)
          | None -> ""
        in
        (status, body))

  let wait_ready ?(attempts = 100) ?(delay_s = 0.05) sock =
    let rec go n =
      if n <= 0 then false
      else
        match request ~deadline_s:1. ~sock ~meth:"GET" ~path:"/ready" () with
        | 200, _ -> true
        | _ ->
            Thread.delay delay_s;
            go (n - 1)
        | exception Unix.Unix_error _ ->
            Thread.delay delay_s;
            go (n - 1)
    in
    go attempts
end
