(** Phase (1) of the MTV pipeline: the PG-to-relational mapping of
    instances (paper, Sec. 4), and its inverse for materializing derived
    facts back into the property graph (Algorithm 2, line 9).

    An L-labeled node n becomes the fact L(oid, f1, ..., fn) over the
    property layout of L; missing properties become distinct labeled
    nulls so that two unknown values never join. An L-labeled edge e
    from a to b becomes L(oid, src, dst, f1, ..., fm). *)

open Kgm_common

type loader
(** Source of the loader's labeled nulls (disjoint from the engine's). *)

val make_loader : unit -> loader

val load :
  ?loader:loader -> Label_schema.t -> Kgm_graphdb.Pgraph.t ->
  Kgm_vadalog.Database.t -> unit
(** Load every node and edge of the graph into the database following
    the label schema. *)

type writeback
(** Memoizes the element identity assigned to each labeled null, so the
    same null maps to the same graph element across facts. *)

val make_writeback : Kgm_graphdb.Pgraph.t -> writeback

val store_nodes :
  writeback -> Label_schema.t -> Kgm_vadalog.Database.t -> string -> int
(** Write the facts of a node predicate back as graph nodes; existing
    nodes only gain the label and any new non-null properties. Returns
    the number of nodes created. *)

val store_edges :
  writeback -> Label_schema.t -> Kgm_vadalog.Database.t -> string -> int
(** Write the facts of an edge predicate back as graph edges; an edge is
    created only when both endpoints exist and its id is unused.
    Returns the number of edges created. *)

val element_id : writeback -> Value.t -> Kgm_common.Oid.t
(** The graph element id for a fact id (OIDs pass through; nulls and
    other values get fresh, memoized ids). *)

val reason_on_graph :
  ?options:Kgm_vadalog.Engine.options ->
  ?telemetry:Kgm_telemetry.t ->
  Ast.program -> Kgm_graphdb.Pgraph.t ->
  int * int * Kgm_vadalog.Engine.stats
(** The full loop: infer the label schema, load, MTV-compile, chase, and
    write the head labels' derived nodes and edges back into the graph
    (nodes before edges). Returns (new nodes, new edges, stats). An
    enabled [telemetry] collector records [metalog.load] /
    [metalog.writeback] stage spans around the translator's and
    engine's own spans. *)
