(** MTV — the MetaLog-to-Vadalog translator (paper, Sec. 4).

    Phase (1), the PG-to-relational mapping of instances, lives in
    {!Pg_bridge}; this module implements phases (2) and (3):

    - PG node atoms [(x: L; K)] become relational atoms
      [L(X, f1, ..., fn)] over the property layout of [L] given by the
      {!Label_schema}; properties not mentioned by the atom get fresh
      anonymous variables (body) or existential variables (head);
    - PG edge atoms [[e: R; K]] linking x to y become
      [R(E, X, Y, f1, ..., fm)];
    - path patterns are resolved inductively (the paper's τ):
      alternation introduces a fresh α predicate with one rule per
      branch; the Kleene closure introduces a fresh β predicate with the
      base and step rules of Example 4.4 (one-or-more applications);
      inversion swaps endpoints and distributes over the other
      operators; concatenation chains fresh midpoints;
    - negated patterns compile to auxiliary predicates over the shared
      variables, negated in the main rule;
    - heads may use the spread [*p] to unpack packed attribute lists
      (Example 6.2);
    - [@input] annotations carrying target-system extraction queries are
      generated for every body label (Example 4.4).

    The translator enforces the decidability condition of Sec. 4: the
    Kleene star is admitted only in non-recursive MetaLog programs,
    where recursion is judged on (label, schemaOID-selector) keys so the
    SSST mappings of Sec. 5 — which copy constructs across schemas —
    are not mistaken for recursion. *)

type result = {
  program : Kgm_vadalog.Rule.program;
  schema : Label_schema.t;
}

val mangle : string -> string
(** MetaLog variable -> Vadalog variable ([x] becomes [V_x]). *)

val translate :
  ?schema:Label_schema.t -> ?telemetry:Kgm_telemetry.t -> Ast.program ->
  result
(** Raises [Kgm_error.Error]: [Validate] on the star restriction,
    [Translate] on unknown labels, body spreads, unlabeled unbound
    atoms, or variable-binding alternation/star sub-patterns.
    An enabled [telemetry] collector records an [mtv.translate] span
    and an [mtv.vadalog_rules] counter. *)

val translate_with_graph : Kgm_graphdb.Pgraph.t -> Ast.program -> result
(** [translate] with the label schema inferred from the graph and the
    program. *)
