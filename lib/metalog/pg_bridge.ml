(** Phase (1) of the MTV pipeline: the PG-to-relational mapping of
    instances, and its inverse for materializing derived facts back into
    the property graph (paper, Sec. 4 and Algorithm 2 line 9).

    An L-labeled node n becomes the fact L(oid, f1, ..., fn) over the
    property layout of L; missing properties become distinct labeled
    nulls (so that two unknown values never join). An L-labeled edge e
    from a to b becomes L(oid, src, dst, f1, ..., fm). *)

open Kgm_common
module DB = Kgm_vadalog.Database
module PG = Kgm_graphdb.Pgraph

(* Loader nulls live far above engine-invented nulls to keep the two
   spaces disjoint within a run. *)
let null_base = 1_000_000_000

type loader = { mutable next_null : int }

let make_loader () = { next_null = null_base }

let fresh_null l =
  l.next_null <- l.next_null + 1;
  Value.Null l.next_null

(** Load every node and edge of [g] into [db] following [schema]. *)
let load ?(loader = make_loader ()) schema g db =
  PG.iter_nodes g (fun id ->
      let props = PG.node_props g id in
      List.iter
        (fun label ->
          let layout = Label_schema.node_schema schema label in
          let args =
            Value.Id id
            :: List.map
                 (fun prop ->
                   match List.assoc_opt prop props with
                   | Some v -> v
                   | None -> fresh_null loader)
                 layout
          in
          ignore (DB.add db label (Array.of_list args)))
        (PG.node_labels g id));
  PG.iter_edges g (fun id ->
      let label = PG.edge_label g id in
      let layout = Label_schema.edge_schema schema label in
      let props = PG.edge_props g id in
      let src, dst = PG.edge_ends g id in
      let args =
        Value.Id id :: Value.Id src :: Value.Id dst
        :: List.map
             (fun prop ->
               match List.assoc_opt prop props with
               | Some v -> v
               | None -> fresh_null loader)
             layout
      in
      ignore (DB.add db label (Array.of_list args)))

(** Id for a derived element: facts may carry OIDs (Skolem ids), labeled
    nulls, or other values; nulls and non-id values are given fresh
    store ids, memoized so the same null maps to the same element. *)
type writeback = {
  graph : PG.t;
  memo : (Value.t, Oid.t) Hashtbl.t;
}

let make_writeback graph = { graph; memo = Hashtbl.create 64 }

let element_id wb v =
  match v with
  | Value.Id oid -> oid
  | other -> (
      match Hashtbl.find_opt wb.memo other with
      | Some oid -> oid
      | None ->
          let oid = PG.fresh_id wb.graph in
          Hashtbl.add wb.memo other oid;
          oid)

let clean_props layout args =
  List.filter_map
    (fun (k, v) -> if Value.is_null v then None else Some (k, v))
    (List.combine layout args)

(** Write the facts of node predicate [label] back as nodes; existing
    nodes (same id) only gain the label and any new properties. Returns
    the number of new nodes. *)
let store_nodes wb schema db label =
  let layout = Label_schema.node_schema schema label in
  let created = ref 0 in
  List.iter
    (fun fact ->
      match Array.to_list fact with
      | [] -> ()
      | idv :: rest ->
          let oid = element_id wb idv in
          if not (PG.node_exists wb.graph oid) then begin
            ignore (PG.add_node ~id:oid wb.graph ~labels:[ label ] ~props:[]);
            incr created
          end
          else if not (List.mem label (PG.node_labels wb.graph oid)) then
            PG.add_node_label wb.graph oid label;
          List.iter
            (fun (k, v) -> PG.set_node_prop wb.graph oid k v)
            (clean_props layout rest))
    (DB.facts db label);
  !created

(** Write the facts of edge predicate [label] back as edges; an edge is
    only created when both endpoints exist and no edge with the same id
    is present. Returns the number of new edges. *)
let store_edges wb schema db label =
  let layout = Label_schema.edge_schema schema label in
  let created = ref 0 in
  List.iter
    (fun fact ->
      match Array.to_list fact with
      | idv :: srcv :: dstv :: rest ->
          let oid = element_id wb idv in
          let src = element_id wb srcv and dst = element_id wb dstv in
          if
            (not (PG.edge_exists wb.graph oid))
            && PG.node_exists wb.graph src
            && PG.node_exists wb.graph dst
          then begin
            ignore
              (PG.add_edge ~id:oid wb.graph ~label ~src ~dst
                 ~props:(clean_props layout rest));
            incr created
          end
      | _ -> ())
    (DB.facts db label);
  !created

(** Run a full MetaLog reasoning pass over a property graph: load,
    translate, chase, and write the derived nodes/edges back. Returns
    (new nodes, new edges, engine stats). *)
let reason_on_graph ?options ?(telemetry = Kgm_telemetry.null)
    (p : Ast.program) g =
  Kgm_telemetry.with_span telemetry ~cat:"stage" "metalog.reason_on_graph"
  @@ fun () ->
  let { Mtv.program; schema } =
    let sch = Label_schema.create () in
    Label_schema.observe_graph sch g;
    Label_schema.observe_program sch p;
    Mtv.translate ~schema:sch ~telemetry p
  in
  let db = DB.create () in
  Kgm_telemetry.with_span telemetry ~cat:"stage" "metalog.load" (fun () ->
      load schema g db);
  let stats = Kgm_vadalog.Engine.run ?options ~telemetry program db in
  Kgm_telemetry.with_span telemetry ~cat:"stage" "metalog.writeback"
  @@ fun () ->
  let wb = make_writeback g in
  let head_labels =
    List.sort_uniq String.compare
      (List.concat_map Ast.rule_head_labels p.Ast.rules)
  in
  let new_nodes = ref 0 and new_edges = ref 0 in
  (* nodes first: edges need both endpoints present *)
  List.iter
    (fun l ->
      if Label_schema.is_node_label schema l then
        new_nodes := !new_nodes + store_nodes wb schema db l)
    head_labels;
  List.iter
    (fun l ->
      if Label_schema.is_edge_label schema l then
        new_edges := !new_edges + store_edges wb schema db l)
    head_labels;
  (!new_nodes, !new_edges, stats)
