(** MTV — the MetaLog-to-Vadalog translator (paper, Sec. 4).

    Phase (1), the PG-to-relational mapping of instances, lives in
    {!Pg_bridge}; this module implements phases (2) and (3):

    - PG node atoms [(x: L; K)] become relational atoms
      [L(X, f1, ..., fn)] over the property layout of [L] given by the
      {!Label_schema}; properties not mentioned by the atom get fresh
      anonymous variables (body) or existential variables (head).
    - PG edge atoms [[e: R; K]] linking [x] to [y] become
      [R(E, X, Y, f1, ..., fm)].
    - Path patterns are resolved inductively: alternation introduces a
      fresh α predicate with one rule per branch; the Kleene closure
      introduces a fresh β predicate with the base and step rules of the
      paper (β is the one-or-more closure, exactly as in the paper's
      resolution rules); inversion swaps endpoints and distributes over
      the other operators; concatenation chains fresh midpoints.
    - MetaLog variables [x] are mangled to Vadalog variables [V_x]
      (Vadalog identifies variables by initial capital).

    The translator enforces the decidability condition of Sec. 4: the
    Kleene star is admitted only in non-recursive MetaLog programs. *)

open Kgm_common
module R = Kgm_vadalog.Rule
module E = Kgm_vadalog.Expr
module T = Kgm_vadalog.Term

type result = {
  program : R.program;
  schema : Label_schema.t;
}

type ctx = {
  schema : Label_schema.t;
  mutable fresh : int;
  mutable aux_rules : R.rule list;
}

let mangle v = "V_" ^ v

let fresh_var ctx prefix =
  ctx.fresh <- ctx.fresh + 1;
  Printf.sprintf "_M%s%d" prefix ctx.fresh

let fresh_pred ctx prefix =
  ctx.fresh <- ctx.fresh + 1;
  Printf.sprintf "mtv_%s_%d" prefix ctx.fresh

let rec mangle_expr = function
  | E.Const v -> E.Const v
  | E.Var x -> E.Var (mangle x)
  | E.Binop (op, a, b) -> E.Binop (op, mangle_expr a, mangle_expr b)
  | E.Cmp (c, a, b) -> E.Cmp (c, mangle_expr a, mangle_expr b)
  | E.And (a, b) -> E.And (mangle_expr a, mangle_expr b)
  | E.Or (a, b) -> E.Or (mangle_expr a, mangle_expr b)
  | E.Not a -> E.Not (mangle_expr a)
  | E.Fun (f, args) -> E.Fun (f, List.map mangle_expr args)
  | E.Skolem (f, args) -> E.Skolem (f, List.map mangle_expr args)

let attr_term = function
  | Ast.AVar v -> T.Var (mangle v)
  | Ast.AConst c -> T.Const c

(* ------------------------------------------------------------------ *)
(* Node and edge atoms                                                  *)

(** Relational atom for a node atom; [slot] decides what fills
    unmentioned property positions. *)
let node_atom_args ctx (a : Ast.pg_atom) label ~binder_term ~slot =
  let props = Label_schema.node_schema ctx.schema label in
  let arg_of prop =
    match List.assoc_opt prop a.Ast.attrs with
    | Some v -> attr_term v
    | None -> slot prop
  in
  binder_term :: List.map arg_of props

let translate_body_node ctx bound (a : Ast.pg_atom) =
  match a.Ast.label with
  | None ->
      (match a.Ast.binder with
       | Some b when List.mem b !bound ->
           if a.Ast.attrs <> [] then
             Kgm_error.translate_error
               "body node reference (%s) cannot carry attributes without a label" b;
           (T.Var (mangle b), [])
       | Some b ->
           Kgm_error.translate_error "unbound unlabeled body node atom (%s)" b
       | None -> Kgm_error.translate_error "anonymous unlabeled body node atom")
  | Some label ->
      if not (Label_schema.is_node_label ctx.schema label) then
        Kgm_error.translate_error "unknown node label %s" label;
      let binder_var =
        match a.Ast.binder with Some b -> mangle b | None -> fresh_var ctx "n"
      in
      (match a.Ast.binder with
       | Some b when not (List.mem b !bound) -> bound := b :: !bound
       | _ -> ());
      if a.Ast.spread <> None then
        Kgm_error.translate_error "spread (*p) is only allowed in rule heads";
      let args =
        node_atom_args ctx a label ~binder_term:(T.Var binder_var)
          ~slot:(fun _ -> T.Var (fresh_var ctx "a"))
      in
      (T.Var binder_var, [ R.Pos (R.atom label args) ])

let edge_atom_literal ?spread_assigns ctx (a : Ast.pg_atom) ~src ~dst ~binder_term =
  match a.Ast.label with
  | None -> Kgm_error.translate_error "edge atoms require a label"
  | Some label ->
      if not (Label_schema.is_edge_label ctx.schema label) then
        Kgm_error.translate_error "unknown edge label %s" label;
      let props = Label_schema.edge_schema ctx.schema label in
      let arg_of prop =
        match List.assoc_opt prop a.Ast.attrs with
        | Some v -> attr_term v
        | None -> (
            match a.Ast.spread, spread_assigns with
            | Some p, Some assigns ->
                let v = fresh_var ctx "u" in
                assigns :=
                  R.Assign
                    ( v,
                      E.Fun
                        ( "unpack_or",
                          [ E.Var (mangle p);
                            E.Const (Value.String prop);
                            E.Fun ("null", []) ] ) )
                  :: !assigns;
                T.Var v
            | Some _, None ->
                Kgm_error.translate_error "spread (*p) is only allowed in rule heads"
            | None, _ -> T.Var (fresh_var ctx "a"))
      in
      R.atom label (binder_term :: src :: dst :: List.map arg_of props)

(* ------------------------------------------------------------------ *)
(* Path patterns (phase 3)                                              *)

(** Distribute inversion down to the edge atoms. *)
let rec push_inverse = function
  | Ast.PEdge _ as p -> p
  | Ast.PInv p -> invert (push_inverse p)
  | Ast.PSeq ps -> Ast.PSeq (List.map push_inverse ps)
  | Ast.PAlt ps -> Ast.PAlt (List.map push_inverse ps)
  | Ast.PStar p -> Ast.PStar (push_inverse p)

and invert = function
  | Ast.PEdge _ as p -> Ast.PInv p           (* kept: resolved at emission *)
  | Ast.PInv p -> push_inverse p
  | Ast.PSeq ps -> Ast.PSeq (List.rev_map invert ps)
  | Ast.PAlt ps -> Ast.PAlt (List.map invert ps)
  | Ast.PStar p -> Ast.PStar (invert p)

let path_exports (p : Ast.path) =
  (* variables a sub-pattern would leak outside α/β auxiliaries *)
  Ast.path_vars p

(** τ(R, x, y): literals linking [src] to [dst], possibly registering
    auxiliary rules in the context. *)
let rec translate_path ctx bound p ~src ~dst =
  match p with
  | Ast.PEdge a ->
      let binder_term =
        match a.Ast.binder with
        | Some b ->
            bound := b :: !bound;
            T.Var (mangle b)
        | None -> T.Var (fresh_var ctx "e")
      in
      [ edge_atom_literal ctx a ~src ~dst ~binder_term |> fun a -> R.Pos a ]
  | Ast.PInv (Ast.PEdge a) ->
      let binder_term =
        match a.Ast.binder with
        | Some b ->
            bound := b :: !bound;
            T.Var (mangle b)
        | None -> T.Var (fresh_var ctx "e")
      in
      [ edge_atom_literal ctx a ~src:dst ~dst:src ~binder_term |> fun a -> R.Pos a ]
  | Ast.PInv p -> translate_path ctx bound (invert (push_inverse p)) ~src ~dst
  | Ast.PSeq [] -> Kgm_error.translate_error "empty concatenation"
  | Ast.PSeq [ p ] -> translate_path ctx bound p ~src ~dst
  | Ast.PSeq (p :: rest) ->
      let mid = T.Var (fresh_var ctx "m") in
      translate_path ctx bound p ~src ~dst:mid
      @ translate_path ctx bound (Ast.PSeq rest) ~src:mid ~dst
  | Ast.PAlt branches ->
      List.iter
        (fun b ->
          if path_exports b <> [] then
            Kgm_error.translate_error
              "alternation branches must not bind variables (%s)"
              (String.concat ", " (path_exports b)))
        branches;
      let alpha = fresh_pred ctx "alt" in
      List.iter
        (fun b ->
          let h = fresh_var ctx "h" and q = fresh_var ctx "q" in
          let body =
            translate_path ctx bound b ~src:(T.Var h) ~dst:(T.Var q)
          in
          ctx.aux_rules <-
            { R.head = [ R.atom alpha [ T.Var h; T.Var q ] ]; body; name = alpha }
            :: ctx.aux_rules)
        branches;
      [ R.Pos (R.atom alpha [ src; dst ]) ]
  | Ast.PStar inner ->
      if path_exports inner <> [] then
        Kgm_error.translate_error
          "starred sub-patterns must not bind variables (%s)"
          (String.concat ", " (path_exports inner));
      let beta = fresh_pred ctx "star" in
      let h = fresh_var ctx "h" and q = fresh_var ctx "q" in
      let step = translate_path ctx bound inner ~src:(T.Var h) ~dst:(T.Var q) in
      (* paper rules: (i) τ(S_hq) -> β(h,q); (ii) β(v,h), τ(S_hq) -> β(v,q) *)
      ctx.aux_rules <-
        { R.head = [ R.atom beta [ T.Var h; T.Var q ] ]; body = step; name = beta }
        :: ctx.aux_rules;
      let v = fresh_var ctx "v" in
      ctx.aux_rules <-
        { R.head = [ R.atom beta [ T.Var v; T.Var q ] ];
          body = R.Pos (R.atom beta [ T.Var v; T.Var h ]) :: step;
          name = beta }
        :: ctx.aux_rules;
      [ R.Pos (R.atom beta [ src; dst ]) ]

(* ------------------------------------------------------------------ *)
(* Chains                                                               *)

let translate_body_chain ctx bound (c : Ast.chain) =
  let src, lits = translate_body_node ctx bound c.Ast.start in
  let rec go src acc = function
    | [] -> acc
    | (p, node) :: rest ->
        let dst, node_lits = translate_body_node ctx bound node in
        let path_lits = translate_path ctx bound (push_inverse p) ~src ~dst in
        go dst (acc @ path_lits @ node_lits) rest
  in
  go src lits c.Ast.steps

(* Heads: node atoms create/reference nodes; steps must be single
   (possibly inverse) edge atoms. *)
let translate_head_node ctx bound extra_assigns (a : Ast.pg_atom) =
  match a.Ast.label with
  | None ->
      (match a.Ast.binder with
       | Some b ->
           if a.Ast.attrs <> [] || a.Ast.spread <> None then
             Kgm_error.translate_error
               "head node reference (%s) cannot carry attributes" b;
           (T.Var (mangle b), [])
       | None -> Kgm_error.translate_error "anonymous unlabeled head node")
  | Some label ->
      if not (Label_schema.is_node_label ctx.schema label) then
        Kgm_error.translate_error "unknown node label %s" label;
      let binder_var =
        match a.Ast.binder with Some b -> mangle b | None -> fresh_var ctx "x"
      in
      ignore bound;
      let slot prop =
        match a.Ast.spread with
        | Some p ->
            (* unpack the packed attribute list: Example 6.2's ∗p;
               attributes absent from the pack become nulls *)
            let v = fresh_var ctx "u" in
            extra_assigns :=
              R.Assign
                ( v,
                  E.Fun
                    ( "unpack_or",
                      [ E.Var (mangle p);
                        E.Const (Value.String prop);
                        E.Fun ("null", []) ] ) )
              :: !extra_assigns;
            T.Var v
        | None -> T.Var (fresh_var ctx "ex")
      in
      let args =
        node_atom_args ctx a label ~binder_term:(T.Var binder_var) ~slot
      in
      (T.Var binder_var, [ R.atom label args ])

let translate_head_chain ctx bound extra_assigns (c : Ast.chain) =
  let src, atoms = translate_head_node ctx bound extra_assigns c.Ast.start in
  let rec go src acc = function
    | [] -> acc
    | (p, node) :: rest ->
        let dst, node_atoms = translate_head_node ctx bound extra_assigns node in
        let edge_atoms =
          match p with
          | Ast.PEdge a ->
              let binder_term =
                match a.Ast.binder with
                | Some b -> T.Var (mangle b)
                | None -> T.Var (fresh_var ctx "ex")
              in
              [ edge_atom_literal ~spread_assigns:extra_assigns ctx a ~src ~dst
                  ~binder_term ]
          | Ast.PInv (Ast.PEdge a) ->
              let binder_term =
                match a.Ast.binder with
                | Some b -> T.Var (mangle b)
                | None -> T.Var (fresh_var ctx "ex")
              in
              [ edge_atom_literal ~spread_assigns:extra_assigns ctx a ~src:dst
                  ~dst:src ~binder_term ]
          | _ ->
              Kgm_error.translate_error
                "rule heads admit only simple (possibly inverse) edges"
        in
        go dst (acc @ edge_atoms @ node_atoms) rest
  in
  go src atoms c.Ast.steps

(* ------------------------------------------------------------------ *)

let translate_rule ctx (r : Ast.rule) =
  let bound = ref [] in
  let body =
    List.concat_map
      (function
        | Ast.BChain c -> translate_body_chain ctx bound c
        | Ast.BNeg c ->
            (* stratified negation of a pattern: the pattern is compiled
               into an auxiliary predicate over the variables shared with
               the outer rule, and the rule negates that predicate —
               unshared variables stay existential inside the negation *)
            let outer_bound = !bound in
            let neg_bound = ref outer_bound in
            let lits = translate_body_chain ctx neg_bound c in
            let shared =
              List.sort_uniq String.compare
                (List.filter
                   (fun v -> List.mem v outer_bound)
                   (Ast.chain_vars c))
            in
            let args = List.map (fun v -> T.Var (mangle v)) shared in
            let aux = fresh_pred ctx "neg" in
            ctx.aux_rules <-
              { R.head = [ R.atom aux args ]; body = lits; name = aux }
              :: ctx.aux_rules;
            [ R.Neg (R.atom aux args) ]
        | Ast.BCond e -> [ R.Cond (mangle_expr e) ]
        | Ast.BAssign (x, e) ->
            bound := x :: !bound;
            [ R.Assign (mangle x, mangle_expr e) ]
        | Ast.BAgg g ->
            bound := g.R.result :: !bound;
            [ R.Agg
                { g with
                  R.result = mangle g.R.result;
                  contributors = List.map mangle g.R.contributors;
                  weight = mangle_expr g.R.weight } ])
      r.Ast.body
  in
  let extra_assigns = ref [] in
  let head =
    List.concat_map (translate_head_chain ctx bound extra_assigns) r.Ast.head
  in
  if head = [] then
    Kgm_error.translate_error "rule head produces no atoms (references only)";
  { R.head; body = body @ List.rev !extra_assigns; name = "" }

(** Generated [@input] annotations, one per body label, carrying the
    target-system extraction query (Cypher-style, as in Example 4.4). *)
let input_annotations schema (p : Ast.program) =
  let module SS = Set.Make (String) in
  let labels = ref SS.empty in
  List.iter
    (fun r ->
      List.iter (fun l -> labels := SS.add l !labels) (Ast.rule_body_labels r))
    p.Ast.rules;
  List.filter_map
    (fun l ->
      if Label_schema.is_node_label schema l then
        Some
          { R.a_name = "input";
            a_args = [ l; Printf.sprintf "MATCH (n:%s) RETURN n" l ] }
      else if Label_schema.is_edge_label schema l then
        Some
          { R.a_name = "input";
            a_args =
              [ l; Printf.sprintf "MATCH (a)-[e:%s]->(b) RETURN e, a, b" l ] }
      else None)
    (SS.elements !labels)

(** The decidability condition of Sec. 4: transitive closure via the
    Kleene star only in non-recursive programs (label-level dependency
    graph of the MetaLog rules). *)
let check_star_restriction (p : Ast.program) =
  let uses_star = List.exists Ast.rule_has_star p.Ast.rules in
  if uses_star then begin
    (* recursion check at the level of (label, schemaOID selector) keys:
       atoms with distinct constant schemaOIDs live in different schemas
       and do not feed each other (cf. the SSST mappings of Sec. 5) *)
    let edges =
      List.concat_map
        (fun r ->
          let bs = Ast.rule_body_labels_keyed r
          and hs = Ast.rule_head_labels_keyed r in
          List.concat_map (fun h -> List.map (fun b -> (b, h)) bs) hs)
        p.Ast.rules
    in
    let feeds (lb, ob) (lh, oh) =
      lb = lh
      && (match ob, oh with Some a, Some b -> a = b | _ -> true)
    in
    let rec reach seen from target =
      List.exists
        (fun (b, h) ->
          feeds from b
          && (feeds h target
              || ((not (List.mem h seen)) && reach (h :: seen) h target)))
        edges
    in
    let heads =
      List.sort_uniq compare
        (List.concat_map Ast.rule_head_labels_keyed p.Ast.rules)
    in
    List.iter
      (fun h ->
        if reach [ h ] h h then
          Kgm_error.validate_error
            "Kleene star in a recursive MetaLog program (label %s) is not \
             admitted (Sec. 4 decidability condition)"
            (fst h))
      heads
  end

let translate ?schema ?(telemetry = Kgm_telemetry.null) (p : Ast.program) =
  Kgm_telemetry.with_span telemetry ~cat:"translate"
    ~args:[ ("metalog_rules", string_of_int (List.length p.Ast.rules)) ]
    "mtv.translate"
  @@ fun () ->
  check_star_restriction p;
  let schema =
    match schema with Some s -> s | None -> Label_schema.infer p
  in
  let ctx = { schema; fresh = 0; aux_rules = [] } in
  let main = List.map (translate_rule ctx) p.Ast.rules in
  let program =
    { R.rules = List.rev ctx.aux_rules @ main;
      facts = [];
      annotations = p.Ast.annotations @ input_annotations schema p }
  in
  Kgm_telemetry.count telemetry ~by:(List.length program.R.rules)
    "mtv.vadalog_rules";
  { program; schema }

let translate_with_graph g (p : Ast.program) =
  let schema = Label_schema.create () in
  Label_schema.observe_graph schema g;
  Label_schema.observe_program schema p;
  translate ~schema p
