(** Kgm_resilience — the failure-handling substrate of KGModel.

    Long chases (the paper reports ~160 minutes of reasoning on the
    production company KG) need the machinery real reasoners ship:
    - {!Token}: cooperative cancellation with optional wall-clock
      deadlines, checked at round boundaries and inside pool workers;
    - {!Faults}: a seeded, deterministic fault-injection harness that
      probabilistically fails at named sites ([KGM_FAULTS]), used by the
      tests to prove the failure paths actually work;
    - {!Retry}: bounded retry with exponential backoff for transient
      faults;
    - {!Snapshot}: versioned, atomically-written, digest-checked
      on-disk blobs — the carrier of the engine's checkpoint/resume
      protocol. *)

open Kgm_common

exception Interrupted of [ `Cancelled | `Deadline ]
exception Fault of string

let () =
  Printexc.register_printer (function
    | Interrupted `Cancelled -> Some "Kgm_resilience.Interrupted(cancelled)"
    | Interrupted `Deadline -> Some "Kgm_resilience.Interrupted(deadline)"
    | Fault site -> Some (Printf.sprintf "Kgm_resilience.Fault(%s)" site)
    | _ -> None)

(* ------------------------------------------------------------------ *)

module Token = struct
  (* The flag is atomic so a signal handler or another domain may trip
     it while pool workers poll it; the deadline is immutable. A
     [deadline_s] is measured from token creation on the monotonic
     clock, so wall-clock adjustments never fire it spuriously. *)
  type t = {
    cancelled : bool Atomic.t;
    deadline : float option;  (* absolute, Clock.now () scale *)
  }

  let create ?deadline_s () =
    { cancelled = Atomic.make false;
      deadline =
        Option.map (fun d -> Kgm_telemetry.Clock.now () +. d) deadline_s }

  let none = { cancelled = Atomic.make false; deadline = None }

  let cancel t = Atomic.set t.cancelled true
  let cancelled t = Atomic.get t.cancelled

  let deadline_exceeded t =
    match t.deadline with
    | None -> false
    | Some d -> Kgm_telemetry.Clock.now () > d

  let remaining_s t =
    match t.deadline with
    | None -> None
    | Some d -> Some (Float.max 0. (d -. Kgm_telemetry.Clock.now ()))

  let status t =
    if Atomic.get t.cancelled then `Cancelled
    else if deadline_exceeded t then `Deadline
    else `Ok

  let check t =
    match status t with
    | `Ok -> ()
    | `Cancelled -> raise (Interrupted `Cancelled)
    | `Deadline -> raise (Interrupted `Deadline)
end

(* ------------------------------------------------------------------ *)

module Faults = struct
  (* One registered rate per site name. Draws are deterministic given
     (seed, site, draw index): the index comes from a per-site atomic
     counter, so the NUMBER of injected faults for a given call count is
     reproducible — under a parallel schedule only WHICH caller observes
     a given draw may vary, which retry/crash-recovery tests absorb by
     construction. *)
  type site = {
    rate : float;
    drawn : int Atomic.t;     (* draws taken at this site *)
    injected : int Atomic.t;  (* draws that failed *)
  }

  let sites_tbl : (string, site) Hashtbl.t = Hashtbl.create 8
  let seed = ref 0
  let active_flag = ref false

  let reset () =
    Hashtbl.reset sites_tbl;
    seed := 0;
    active_flag := false

  let set_rate name rate =
    let rate = Float.max 0. (Float.min 1. rate) in
    Hashtbl.replace sites_tbl name
      { rate; drawn = Atomic.make 0; injected = Atomic.make 0 };
    active_flag := true

  (* Spec grammar: "site:rate[,site:rate...][,seed=N]", e.g.
     "worker:0.05,checkpoint_write:0.2,seed=42". *)
  let configure spec =
    List.iter
      (fun part ->
        let part = String.trim part in
        if part <> "" then
          match String.index_opt part ':' with
          | Some i ->
              let name = String.sub part 0 i in
              let rate =
                String.sub part (i + 1) (String.length part - i - 1)
              in
              (match float_of_string_opt rate with
               | Some r -> set_rate name r
               | None ->
                   Kgm_error.validate_error
                     "KGM_FAULTS: bad rate %S for site %s" rate name)
          | None -> (
              match String.index_opt part '=' with
              | Some i when String.sub part 0 i = "seed" ->
                  (match
                     int_of_string_opt
                       (String.sub part (i + 1) (String.length part - i - 1))
                   with
                   | Some s -> seed := s
                   | None ->
                       Kgm_error.validate_error "KGM_FAULTS: bad seed in %S"
                         part)
              | _ ->
                  Kgm_error.validate_error
                    "KGM_FAULTS: cannot parse %S (want site:rate or seed=N)"
                    part))
      (String.split_on_char ',' spec)

  let configure_from_env () =
    match Sys.getenv_opt "KGM_FAULTS" with
    | Some spec when String.trim spec <> "" ->
        configure spec;
        true
    | _ -> false

  let active () = !active_flag

  (* splitmix64: a high-quality, allocation-free mix of (seed, site,
     draw index) into a uniform 64-bit word. *)
  let splitmix64 x =
    let open Int64 in
    let x = add x 0x9E3779B97F4A7C15L in
    let x = mul (logxor x (shift_right_logical x 30)) 0xBF58476D1CE4E5B9L in
    let x = mul (logxor x (shift_right_logical x 27)) 0x94D049BB133111EBL in
    logxor x (shift_right_logical x 31)

  let draw_fails rate ~site_hash ~n =
    let h =
      splitmix64
        (Int64.add
           (Int64.of_int (!seed * 0x1000003 + site_hash))
           (splitmix64 (Int64.of_int n)))
    in
    (* map to [0,1) using the top 53 bits *)
    let u =
      Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.
    in
    u < rate

  let inject name =
    if !active_flag then
      match Hashtbl.find_opt sites_tbl name with
      | None -> ()
      | Some s ->
          let n = Atomic.fetch_and_add s.drawn 1 in
          if draw_fails s.rate ~site_hash:(Hashtbl.hash name) ~n then begin
            ignore (Atomic.fetch_and_add s.injected 1);
            raise (Fault name)
          end

  let site_count name =
    match Hashtbl.find_opt sites_tbl name with
    | None -> 0
    | Some s -> Atomic.get s.injected

  let total_injected () =
    Hashtbl.fold (fun _ s acc -> acc + Atomic.get s.injected) sites_tbl 0

  let sites () =
    Hashtbl.fold (fun name s acc -> (name, s.rate) :: acc) sites_tbl []
    |> List.sort compare
end

(* ------------------------------------------------------------------ *)

module Retry = struct
  let default_retry_on = function Fault _ -> true | _ -> false

  (* Deterministic draw stream for the jitter: splitmix64 over a
     process-global counter, so sleep schedules are reproducible within
     a process without consuming the global Random state. *)
  let jitter_ctr = Atomic.make 0

  let jitter_draw () =
    let n = Atomic.fetch_and_add jitter_ctr 1 in
    let open Int64 in
    let x = add (of_int n) 0x9E3779B97F4A7C15L in
    let x = mul (logxor x (shift_right_logical x 30)) 0xBF58476D1CE4E5B9L in
    let x = mul (logxor x (shift_right_logical x 27)) 0x94D049BB133111EBL in
    let h = logxor x (shift_right_logical x 31) in
    Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.

  let with_backoff ?(attempts = 3) ?(base_s = 0.001) ?(max_s = 0.5)
      ?(jitter = true) ?(cancel = Token.none) ?(retry_on = default_retry_on)
      ?on_retry f =
    let attempts = max 1 attempts in
    (* decorrelated jitter (the AWS backoff strategy): each sleep is
       uniform in [base, 3 * previous], so concurrent retriers that
       failed together spread out instead of re-colliding in lockstep;
       without jitter, classic exponential base * 2^k. Either way the
       sleep is capped by [max_s] and by whatever monotonic deadline
       the caller's [cancel] token carries — a retry must never outlive
       the request that issued it. *)
    let prev_sleep = ref base_s in
    let rec go n =
      try f ()
      with
      | e when n + 1 < attempts && retry_on e && Token.status cancel = `Ok ->
          (match on_retry with
           | Some k -> k ~attempt:(n + 1) e
           | None -> ());
          let delay =
            if jitter then
              base_s +. (jitter_draw () *. ((!prev_sleep *. 3.) -. base_s))
            else base_s *. Float.of_int (1 lsl n)
          in
          let delay = Float.min delay max_s in
          prev_sleep := Float.max base_s delay;
          let delay =
            match Token.remaining_s cancel with
            | Some r -> Float.min delay r
            | None -> delay
          in
          if delay > 0. then Unix.sleepf delay;
          if Token.status cancel = `Ok then go (n + 1) else raise e
    in
    go 0
end

(* ------------------------------------------------------------------ *)

module Snapshot = struct
  (* On-disk layout: a 4-line ASCII header (magic, kind, version,
     payload digest) followed by the Marshal payload. The digest makes
     a torn or bit-rotted snapshot a clean Storage error instead of a
     segfault inside Marshal; the kind/version pair makes a format
     evolution a clean error instead of silent garbage. Writes go to a
     temp file in the same directory and are renamed into place, so a
     crash mid-write (or an injected "checkpoint_write" fault) never
     clobbers the previous snapshot. *)

  let magic = "KGMSNAP1"

  let path ~dir ~kind ~seq = Filename.concat dir (Printf.sprintf "%s-%06d.snap" kind seq)

  let parse_seq ~kind file =
    let prefix = kind ^ "-" and suffix = ".snap" in
    let lp = String.length prefix and ls = String.length suffix in
    let n = String.length file in
    if
      n > lp + ls
      && String.sub file 0 lp = prefix
      && String.sub file (n - ls) ls = suffix
    then int_of_string_opt (String.sub file lp (n - lp - ls))
    else None

  let list ~dir ~kind =
    if not (Sys.file_exists dir) then []
    else
      Sys.readdir dir |> Array.to_list
      |> List.filter_map (fun f ->
             Option.map
               (fun seq -> (seq, Filename.concat dir f))
               (parse_seq ~kind f))
      |> List.sort compare

  let latest ~dir ~kind =
    match List.rev (list ~dir ~kind) with
    | (_, p) :: _ -> Some p
    | [] -> None

  let save ~kind ~version ~path payload =
    Faults.inject "checkpoint_write";
    let body = Marshal.to_string payload [] in
    let digest = Digest.to_hex (Digest.string body) in
    let dir = Filename.dirname path in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        Printf.fprintf oc "%s\n%s\n%d\n%s\n" magic kind version digest;
        output_string oc body);
    Sys.rename tmp path

  (* header-only read: which version a snapshot claims to be, without
     deserializing the payload. Lets a reader branch on format version
     (e.g. the engine's v2 checkpoint read-compat) while [load] keeps
     enforcing the version it is then asked for. *)
  let peek_version ~kind ~path =
    if not (Sys.file_exists path) then
      Kgm_error.raise_error_ctx Kgm_error.Storage
        [ ("snapshot", path) ]
        "snapshot not found";
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let fail fmt =
          Kgm_error.raise_error_ctx Kgm_error.Storage
            [ ("snapshot", path) ]
            fmt
        in
        let line () = try input_line ic with End_of_file -> fail "truncated snapshot header" in
        if line () <> magic then fail "not a KGModel snapshot (bad magic)";
        let k = line () in
        if k <> kind then fail "snapshot kind mismatch: %s (want %s)" k kind;
        let v = line () in
        match int_of_string_opt v with
        | Some version -> version
        | None -> fail "malformed snapshot version %S" v)

  let load ~kind ~version ~path =
    if not (Sys.file_exists path) then
      Kgm_error.raise_error_ctx Kgm_error.Storage
        [ ("snapshot", path) ]
        "snapshot not found";
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let fail fmt =
          Kgm_error.raise_error_ctx Kgm_error.Storage
            [ ("snapshot", path) ]
            fmt
        in
        let line () = try input_line ic with End_of_file -> fail "truncated snapshot header" in
        if line () <> magic then fail "not a KGModel snapshot (bad magic)";
        let k = line () in
        if k <> kind then fail "snapshot kind mismatch: %s (want %s)" k kind;
        let v = line () in
        if int_of_string_opt v <> Some version then
          fail "snapshot version %s not supported (want %d)" v version;
        let digest = line () in
        let body =
          let buf = Buffer.create 65536 in
          let chunk = Bytes.create 65536 in
          let rec slurp () =
            let n = input ic chunk 0 (Bytes.length chunk) in
            if n > 0 then begin
              Buffer.add_subbytes buf chunk 0 n;
              slurp ()
            end
          in
          slurp ();
          Buffer.contents buf
        in
        if Digest.to_hex (Digest.string body) <> digest then
          fail "snapshot payload corrupt (digest mismatch)";
        Marshal.from_string body 0)

  (* Generation rotation: a long-lived writer (periodic engine
     checkpoints, the server's session snapshots) calls this right
     after a successful [save], so the newest retained generation is
     always one that just passed through the atomic write path. [keep]
     is clamped to >= 1 — the generation a recovery would start from is
     never deleted — and each removal is a single unlink, atomic with
     respect to concurrent readers that already opened the file. *)
  let gc ~dir ~kind ~keep =
    let keep = max 1 keep in
    let files = list ~dir ~kind in
    let n = List.length files in
    if n <= keep then []
    else begin
      let doomed = List.filteri (fun i _ -> i < n - keep) files in
      List.filter_map
        (fun (_, p) ->
          match Sys.remove p with
          | () -> Some p
          | exception Sys_error _ -> None)
        doomed
    end
end
