(** Kgm_resilience — deadlines, cooperative cancellation, fault
    injection, retry, and versioned snapshot IO.

    The paper's production chases run for hours (Sec. 6: ~160 min of
    reasoning on the company KG); this module provides the machinery
    that makes such runs survivable: a cancellation {!Token} the engine
    polls at round boundaries and inside pool workers, a seeded
    {!Faults} harness that proves the failure paths work, bounded
    {!Retry} for transient faults, and the atomic, digest-checked
    {!Snapshot} files that carry the engine's checkpoint/resume
    protocol. *)

exception Interrupted of [ `Cancelled | `Deadline ]
(** Raised by {!Token.check}. Never raised when the token is {!Token.none}. *)

exception Fault of string
(** An injected failure at the named site (see {!Faults}). Transient by
    convention: callers that expect it retry via {!Retry.with_backoff};
    callers that don't treat it as a crash. *)

(** {1 Cancellation and deadlines} *)

module Token : sig
  type t
  (** A cooperative cancellation token, safe to trip from a signal
      handler or another domain and to poll from pool workers. *)

  val create : ?deadline_s:float -> unit -> t
  (** [create ~deadline_s ()] trips [deadline_s] seconds of monotonic
      time after creation (wall-clock adjustments never fire it). *)

  val none : t
  (** A token that never trips — the default for [?cancel] arguments. *)

  val cancel : t -> unit
  (** Trip the token (idempotent). *)

  val cancelled : t -> bool
  (** [true] once {!cancel} was called (deadline expiry not included). *)

  val deadline_exceeded : t -> bool

  val remaining_s : t -> float option
  (** Monotonic seconds until the deadline trips, clamped at 0; [None]
      when the token carries no deadline. Lets derived work (retries,
      sub-requests) bound itself by the budget of the request that
      issued it. *)

  val status : t -> [ `Ok | `Cancelled | `Deadline ]
  (** Cancellation wins over deadline expiry when both hold. *)

  val check : t -> unit
  (** Raise {!Interrupted} unless {!status} is [`Ok]. *)
end

(** {1 Fault injection}

    A process-wide registry of named fault sites, each with an
    injection rate in [0, 1]. The engine and its IO layers call
    {!Faults.inject} at the registered sites:

    - ["worker"]           : pool worker body (engine match phase);
    - ["db_insert"]        : {!Kgm_vadalog.Database.add};
    - ["checkpoint_write"] : {!Snapshot.save};
    - ["source_read"]      : CSV source loading;
    - ["round"]            : chase round boundary (a crash site: the
                             engine does not retry it).

    Draws are deterministic given the seed, the site name and the
    per-site draw index, so a seeded test run injects a reproducible
    number of faults. With no configuration (the default), {!Faults.inject}
    costs one mutable read and never raises. *)

module Faults : sig
  val configure : string -> unit
  (** Parse a spec of the form ["site:rate,site:rate,seed=N"], e.g.
      ["worker:0.05,seed=42"]. Raises [Kgm_error.Error] ([Validate]) on
      a malformed spec. *)

  val configure_from_env : unit -> bool
  (** [configure] from [KGM_FAULTS] when set and non-empty; returns
      whether anything was configured. *)

  val reset : unit -> unit
  (** Drop every site and the seed; {!active} becomes [false]. *)

  val set_rate : string -> float -> unit
  (** Register one site programmatically (rate clamped to [0, 1]). *)

  val active : unit -> bool

  val inject : string -> unit
  (** Draw at the named site; raises {!Fault} when the draw fails.
      No-op for unregistered sites or when nothing is configured. *)

  val site_count : string -> int
  (** Faults injected at the site so far. *)

  val total_injected : unit -> int

  val sites : unit -> (string * float) list
  (** Registered (site, rate) pairs, sorted. *)
end

(** {1 Retry} *)

module Retry : sig
  val with_backoff :
    ?attempts:int ->
    ?base_s:float ->
    ?max_s:float ->
    ?jitter:bool ->
    ?cancel:Token.t ->
    ?retry_on:(exn -> bool) ->
    ?on_retry:(attempt:int -> exn -> unit) ->
    (unit -> 'a) ->
    'a
  (** [with_backoff f] runs [f], retrying up to [attempts] times (total,
      default 3) when it raises an exception accepted by [retry_on]
      (default: {!Fault} only). The last exception propagates unchanged;
      exceptions rejected by [retry_on] propagate immediately.

      Sleeps between attempts use decorrelated jitter (each delay
      uniform in [[base_s, 3 * previous]], drawn from a deterministic
      process-local stream) so retriers that failed together do not
      re-collide in lockstep; [jitter:false] restores classic
      exponential [base_s * 2^k]. Every delay is capped at [max_s]
      (default 0.5 s).

      [cancel] bounds the whole retry loop by the issuing request: a
      token that is already cancelled or past its deadline suppresses
      further retries (the current exception propagates), and each
      sleep is truncated to {!Token.remaining_s} so a retry can never
      outlive the request's budget. *)
end

(** {1 Snapshots} *)

module Snapshot : sig
  (** Versioned on-disk blobs: a 4-line ASCII header (magic, kind,
      version, payload digest) followed by a [Marshal] payload. Writes
      are atomic (temp file + rename), so a crash mid-write never
      clobbers the previous snapshot; loads verify magic, kind, version
      and digest and raise a [Storage] error on any mismatch — a torn
      snapshot is a clean error, not undefined behavior.

      Marshal payloads are not portable across OCaml versions or
      architectures; snapshots are recovery state, not an interchange
      format. *)

  val path : dir:string -> kind:string -> seq:int -> string
  (** [dir/kind-SEQ.snap] (6-digit zero-padded sequence). *)

  val list : dir:string -> kind:string -> (int * string) list
  (** Snapshots of the kind in [dir], sorted by sequence number;
      [[]] when [dir] does not exist. *)

  val latest : dir:string -> kind:string -> string option

  val save : kind:string -> version:int -> path:string -> 'a -> unit
  (** Atomic write; creates [dir] if missing (one level). Calls
      {!Faults.inject}["checkpoint_write"] first, so an injected fault
      leaves the previous snapshot intact. Raises [Sys_error] on IO
      failure. *)

  val peek_version : kind:string -> path:string -> int
  (** The version a snapshot's header claims, after validating magic
      and kind — without touching the payload. Lets a caller branch on
      format version before asking {!load} for a specific one. Raises
      [Kgm_error.Error] ([Storage]) on a missing, foreign or truncated
      file. *)

  val load : kind:string -> version:int -> path:string -> 'a
  (** The caller asserts the payload type, as with [Marshal]; the
      kind/version/digest checks are the guard rails. Raises
      [Kgm_error.Error] ([Storage]) on a missing, foreign, corrupt or
      version-mismatched file. *)

  val gc : dir:string -> kind:string -> keep:int -> string list
  (** Delete all but the newest [keep] generations of the kind in
      [dir] ([keep] clamped to >= 1, so the generation a recovery
      would resume from survives); returns the paths removed. Call
      right after a successful {!save} — rotation then never races the
      write, and the newest retained file is always a complete,
      digest-valid snapshot. Files that cannot be removed are skipped
      silently (a reader may have the directory open). *)
end
