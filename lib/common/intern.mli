(** Append-only dictionary encoding of {!Value.t} into dense int ids,
    so facts can be stored and joined as unboxed [int array]s with O(1)
    equality and cheap hashing (the standard dictionary-encoding move in
    triple stores and KG engines).

    The table is deliberately unsynchronized. The engine guarantees that
    it is mutated only on sequential paths (program load, rule
    preparation, round 0, the merge sweep, resume); while the database
    is frozen for a parallel round, pool workers use only the read-only
    [find]/[resolve]/[is_null]. Values a worker computes that are not in
    the dictionary get worker-local negative ids from {!Scratch} and are
    re-interned sequentially at merge, which keeps id assignment — and
    therefore every downstream artifact — deterministic across
    jobs x planner x chunking. *)

type t

val create : ?size:int -> unit -> t
val length : t -> int
(** Number of interned values; valid ids are [0 .. length - 1]. *)

val intern : t -> Value.t -> int
(** The id of the value, appending it if absent. Must only be called
    from sequential sections (never while the owning database is
    frozen for a parallel round). *)

val find : t -> Value.t -> int option
(** Read-only lookup; safe from pool workers. *)

val resolve : t -> int -> Value.t
(** The value of an id. Raises [Invalid_argument] on an unknown id. *)

val is_null : t -> int -> bool
(** Whether the id denotes a labeled null (O(1) flag lookup). *)

val export : t -> Value.t array
(** Fresh array of all interned values in id order, for snapshots; a
    loader re-interns it to build the id remapping. *)

(** Worker-local ids for values not in the (frozen) dictionary. Ids are
    negative, never collide with dictionary ids, and are meaningless
    outside the worker that created them. *)
module Scratch : sig
  type s

  val create : unit -> s
  val id : s -> Value.t -> int
  val resolve : s -> int -> Value.t
end
