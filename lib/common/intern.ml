(* Append-only dictionary from values to dense int ids.

   Concurrency discipline (enforced by the engine, not by locks): the
   dictionary is mutated only on sequential paths — program load,
   rule preparation, round-0 evaluation, the merge sweep, checkpoint
   resume. While the database is frozen for a parallel round, pool
   workers only call the read-only [find]/[resolve]/[is_null]; the
   pool's own mutex provides the happens-before edge for anything
   interned before the round started. Values computed by workers that
   are not yet in the dictionary go through a worker-local [Scratch]
   table (negative ids) and are re-interned sequentially at merge, so
   id assignment is deterministic across jobs x planner x chunking. *)

module VTbl = Hashtbl.Make (Value.Hashed)

type t = {
  mutable vals : Value.t array; (* id -> value *)
  mutable nulls : Bytes.t; (* id -> 1 iff the value is a labeled null *)
  mutable len : int;
  ids : int VTbl.t; (* value -> id *)
}

let create ?(size = 256) () =
  {
    vals = Array.make (max 1 size) (Value.Int 0);
    nulls = Bytes.make (max 1 size) '\000';
    len = 0;
    ids = VTbl.create (max 1 size);
  }

let length t = t.len

let ensure t n =
  if n > Array.length t.vals then begin
    let cap = max n (2 * Array.length t.vals) in
    let vals = Array.make cap (Value.Int 0) in
    Array.blit t.vals 0 vals 0 t.len;
    t.vals <- vals;
    let nulls = Bytes.make cap '\000' in
    Bytes.blit t.nulls 0 nulls 0 t.len;
    t.nulls <- nulls
  end

let intern t v =
  match VTbl.find_opt t.ids v with
  | Some id -> id
  | None ->
      let id = t.len in
      ensure t (id + 1);
      t.vals.(id) <- v;
      if Value.is_null v then Bytes.set t.nulls id '\001';
      t.len <- id + 1;
      VTbl.add t.ids v id;
      id

let find t v = VTbl.find_opt t.ids v

let resolve t id =
  if id < 0 || id >= t.len then invalid_arg "Intern.resolve: unknown id";
  t.vals.(id)

let is_null t id =
  if id < 0 || id >= t.len then invalid_arg "Intern.is_null: unknown id";
  Bytes.get t.nulls id = '\001'

let export t = Array.sub t.vals 0 t.len

(* Worker-local side table for values first seen on a pool worker (the
   frozen dictionary cannot be appended to). Ids are negative so they
   can never collide with dictionary ids; they are only meaningful to
   the worker that created them and are re-interned at merge. *)
module Scratch = struct
  type s = { mutable sc_vals : Value.t array; mutable sc_len : int; sc_ids : int VTbl.t }

  let create () = { sc_vals = [||]; sc_len = 0; sc_ids = VTbl.create 8 }

  let id s v =
    match VTbl.find_opt s.sc_ids v with
    | Some id -> id
    | None ->
        let k = s.sc_len in
        if k >= Array.length s.sc_vals then begin
          let cap = max 4 (2 * Array.length s.sc_vals) in
          let vals = Array.make cap (Value.Int 0) in
          Array.blit s.sc_vals 0 vals 0 s.sc_len;
          s.sc_vals <- vals
        end;
        s.sc_vals.(k) <- v;
        s.sc_len <- k + 1;
        let id = -k - 1 in
        VTbl.add s.sc_ids v id;
        id

  let resolve s id =
    let k = -id - 1 in
    if k < 0 || k >= s.sc_len then invalid_arg "Intern.Scratch.resolve: unknown id";
    s.sc_vals.(k)
end
