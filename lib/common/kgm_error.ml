(** Uniform error reporting across KGModel tools. Each subsystem raises
    [Error] with a structured payload; CLI and tests format it with
    {!pp}. The optional [context] carries machine-readable key/value
    pairs locating the failure (rule name, chase round, file, ...) —
    the CLI prints them under the message so e.g. a fact-budget
    [Reason] error points at the offending rule. *)

type stage =
  | Parse        (** GSL / MetaLog / Vadalog text parsing *)
  | Validate     (** schema or program static checks *)
  | Translate    (** SSST / MTV translation *)
  | Reason       (** chase execution *)
  | Storage      (** dictionary / database access *)

type t = {
  stage : stage;
  message : string;
  context : (string * string) list;
}

exception Error of t

let stage_name = function
  | Parse -> "parse"
  | Validate -> "validate"
  | Translate -> "translate"
  | Reason -> "reason"
  | Storage -> "storage"

let pp ppf e = Format.fprintf ppf "[%s] %s" (stage_name e.stage) e.message

let pp_context ppf e =
  List.iter (fun (k, v) -> Format.fprintf ppf "@,  %s: %s" k v) e.context

let to_string e = Format.asprintf "%a" pp e

let raise_error_ctx stage context fmt =
  Format.kasprintf (fun message -> raise (Error { stage; message; context })) fmt

let raise_error stage fmt = raise_error_ctx stage [] fmt

let parse_error fmt = raise_error Parse fmt
let validate_error fmt = raise_error Validate fmt
let translate_error fmt = raise_error Translate fmt
let reason_error fmt = raise_error Reason fmt
let storage_error fmt = raise_error Storage fmt

let reason_error_ctx context fmt = raise_error_ctx Reason context fmt
let storage_error_ctx context fmt = raise_error_ctx Storage context fmt

(** Rebuild an error with extra context appended — used by layers that
    catch, locate and re-raise (e.g. the worker pool tagging the
    failing chunk). *)
let with_context extra e = { e with context = e.context @ extra }

let guard f = try Ok (f ()) with Error e -> Result.Error e
