(** Typed constant values used throughout KGModel.

    Values populate attribute/property slots of graph elements, relational
    tuples and Vadalog facts. The [Id] case carries object identifiers from
    the internal OID space and the disjoint Skolem spaces (set {i I} in the
    paper); [Null] carries labeled nulls produced by existential
    quantification during the chase. *)

type t =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool
  | Date of int * int * int  (** year, month, day *)
  | Id of Oid.t              (** internal object identifier *)
  | Null of int              (** labeled null (chase-invented) *)
  | List of t list           (** packed multi-values (the [pack] operator) *)

val compare : t -> t -> int
(** Structural order that delegates to {!Oid.compare} (the cosmetic
    [Fresh] hint is ignored) and [Float.compare] (total on NaN) at
    every nesting depth, including inside [List]s. *)

val equal : t -> t -> bool
val hash : t -> int

(** Key module for [Hashtbl.Make], consistent with {!equal}/{!hash}.
    Use instead of polymorphic hash tables wherever values (or facts
    built from them) are table keys: structural [( = )] never equates
    [Float nan] with itself and distinguishes [Id]s by their cosmetic
    hint. *)
module Hashed : Hashtbl.HashedType with type t = t

module Hashed_array : Hashtbl.HashedType with type t = t array
(** Value tuples as arrays, pointwise {!equal} — probe fact-keyed tables
    with the fact itself instead of allocating a list key. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Coercions} *)

val int : int -> t
val float : float -> t
val string : string -> t
val bool : bool -> t
val date : int -> int -> int -> t
val id : Oid.t -> t

val as_int : t -> int option
val as_float : t -> float option
(** [as_float] coerces [Int] to [float] as well. *)

val as_string : t -> string option
val as_bool : t -> bool option
val as_id : t -> Oid.t option

val is_null : t -> bool

(** {1 Value types (attribute domains)} *)

type ty = TInt | TFloat | TString | TBool | TDate | TId | TAny

val ty_of_string : string -> ty option
val ty_to_string : ty -> string
val pp_ty : Format.formatter -> ty -> unit
val type_of : t -> ty

val conforms : ty -> t -> bool
(** [conforms ty v] holds when [v] inhabits domain [ty]. [TAny] accepts
    everything; [Null]s are accepted by every domain (open-world). *)

val parse : ty -> string -> t option
(** Parse a literal of the given domain from its textual form. *)
