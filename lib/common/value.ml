type t =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool
  | Date of int * int * int
  | Id of Oid.t
  | Null of int
  | List of t list

let tag = function
  | Int _ -> 0 | Float _ -> 1 | String _ -> 2 | Bool _ -> 3
  | Date _ -> 4 | Id _ -> 5 | Null _ -> 6 | List _ -> 7

(* [rec] matters: without it the [List] branch (and any other inner
   occurrence of [compare]) resolves to the polymorphic
   [Stdlib.compare], which bypasses [Oid.compare] (the cosmetic Fresh
   hint would leak into ordering) and [Float.compare] on nested
   values. *)
let rec compare a b =
  match a, b with
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | String x, String y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | Date (y1, m1, d1), Date (y2, m2, d2) ->
      let c = Int.compare y1 y2 in
      if c <> 0 then c
      else
        let c = Int.compare m1 m2 in
        if c <> 0 then c else Int.compare d1 d2
  | Id x, Id y -> Oid.compare x y
  | Null x, Null y -> Int.compare x y
  | List x, List y -> List.compare compare x y
  | _ -> Int.compare (tag a) (tag b)

let equal a b = compare a b = 0

let rec hash = function
  | Id o -> Hashtbl.hash (5, Oid.hash o)
  | List l -> Hashtbl.hash (7, List.map hash l)
  | v -> Hashtbl.hash v

(** Key module for [Hashtbl.Make]: hashing and equality agree with
    {!equal}/{!hash}, unlike the structural [( = )]/[Hashtbl.hash] pair
    (which never equates [Float nan] with itself and distinguishes
    [Id]s by their cosmetic hint). *)
module Hashed = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

(** Same, for value tuples kept as arrays: pointwise {!equal}, a hash
    combined from the element hashes. Lets fact-keyed tables probe with
    the fact itself instead of allocating a list key per probe. *)
module Hashed_array = struct
  type nonrec t = t array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec go i = i < 0 || (equal a.(i) b.(i) && go (i - 1)) in
    go (Array.length a - 1)

  let hash f = Array.fold_left (fun h v -> (h * 31) + hash v) (Array.length f) f
end

let rec pp ppf = function
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | String s -> Format.fprintf ppf "%S" s
  | Bool b -> Format.pp_print_bool ppf b
  | Date (y, m, d) -> Format.fprintf ppf "%04d-%02d-%02d" y m d
  | Id o -> Oid.pp ppf o
  | Null n -> Format.fprintf ppf "_:n%d" n
  | List l ->
      Format.fprintf ppf "[%a]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";") pp)
        l

let to_string v = Format.asprintf "%a" pp v

let int i = Int i
let float f = Float f
let string s = String s
let bool b = Bool b
let date y m d = Date (y, m, d)
let id o = Id o

let as_int = function Int i -> Some i | _ -> None

let as_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let as_string = function String s -> Some s | _ -> None
let as_bool = function Bool b -> Some b | _ -> None
let as_id = function Id o -> Some o | _ -> None

let is_null = function Null _ -> true | _ -> false

type ty = TInt | TFloat | TString | TBool | TDate | TId | TAny

let ty_of_string = function
  | "int" | "integer" -> Some TInt
  | "float" | "double" | "real" -> Some TFloat
  | "string" | "text" -> Some TString
  | "bool" | "boolean" -> Some TBool
  | "date" -> Some TDate
  | "id" | "oid" -> Some TId
  | "any" -> Some TAny
  | _ -> None

let ty_to_string = function
  | TInt -> "int" | TFloat -> "float" | TString -> "string"
  | TBool -> "bool" | TDate -> "date" | TId -> "id" | TAny -> "any"

let pp_ty ppf ty = Format.pp_print_string ppf (ty_to_string ty)

let type_of = function
  | Int _ -> TInt | Float _ -> TFloat | String _ -> TString
  | Bool _ -> TBool | Date _ -> TDate | Id _ -> TId | Null _ -> TAny
  | List _ -> TAny

let conforms ty v =
  match ty, v with
  | TAny, _ | _, Null _ -> true
  | TInt, Int _ | TFloat, Float _ | TFloat, Int _
  | TString, String _ | TBool, Bool _ | TDate, Date _ | TId, Id _ -> true
  | (TInt | TFloat | TString | TBool | TDate | TId), _ -> false

let parse ty s =
  match ty with
  | TInt -> Option.map int (int_of_string_opt s)
  | TFloat -> Option.map float (float_of_string_opt s)
  | TString -> Some (String s)
  | TBool -> Option.map bool (bool_of_string_opt s)
  | TDate ->
      (match String.split_on_char '-' s with
       | [y; m; d] ->
           (match int_of_string_opt y, int_of_string_opt m, int_of_string_opt d with
            | Some y, Some m, Some d when m >= 1 && m <= 12 && d >= 1 && d <= 31 ->
                Some (Date (y, m, d))
            | _ -> None)
       | _ -> None)
  | TId -> None
  | TAny ->
      (match int_of_string_opt s with
       | Some i -> Some (Int i)
       | None ->
           (match float_of_string_opt s with
            | Some f -> Some (Float f)
            | None ->
                (match bool_of_string_opt s with
                 | Some b -> Some (Bool b)
                 | None -> Some (String s))))
