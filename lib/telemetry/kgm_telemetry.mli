(** Kgm_telemetry — the observability substrate of KGModel.

    One collector gathers three kinds of signal:
    - {e spans}: hierarchical, monotonic-clock timed regions
      (load | reason | flush stages, per-rule chase work, figure
      generation, ...);
    - {e counters}: named monotone integers (facts derived, nulls
      invented, chase-check hits, ...);
    - {e histograms}: log-scale latency distributions (per-rule
      evaluation times, ...).

    Every instrumentation point takes a collector explicitly; the
    {!null} collector makes all of them no-ops, so instrumented code
    pays nothing when observability is off. Two exporters are provided:
    a human-readable {!summary} table and {!chrome_trace}, the Chrome
    trace-event JSON format loadable in [chrome://tracing] and
    Perfetto. *)

module Clock : sig
  val now : unit -> float
  (** Monotonic time in seconds, from [clock_gettime(CLOCK_MONOTONIC)].
      Only differences are meaningful; never goes backwards on wall
      clock adjustment (unlike [Unix.gettimeofday]). *)

  val now_ns : unit -> int64
  (** Same instant in integer nanoseconds. *)
end

module Histogram : sig
  type t
  (** A log-2-bucketed latency histogram: bucket [i] counts
      observations in [[2^(i-1), 2^i)] microseconds. Cheap (one array
      index per observation), bounded memory. *)

  val create : unit -> t
  val observe : t -> float -> unit
  (** [observe h seconds] — negative observations clamp to 0. *)

  type snapshot = {
    count : int;
    sum : float;                    (** seconds *)
    min : float;
    max : float;
    buckets : (float * int) list;   (** (upper bound in seconds, count),
                                        non-empty buckets only *)
  }

  val snapshot : t -> snapshot
  val mean : snapshot -> float
  val quantile : snapshot -> float -> float
  (** [quantile s 0.9] — upper bound of the bucket holding the q-th
      observation; 0 on an empty snapshot. *)
end

type span = {
  sp_id : int;
  sp_parent : int option;  (** enclosing span, if any *)
  sp_depth : int;          (** 0 = top-level *)
  sp_name : string;
  sp_cat : string;         (** trace-event category, e.g. "stage", "rule" *)
  sp_start : float;        (** seconds since the collector's epoch *)
  sp_dur : float;
  sp_args : (string * string) list;
}

type t
(** A collector. Not thread-safe (the engine is single-threaded). *)

val create : unit -> t
(** A fresh, enabled collector; its epoch is the creation instant. *)

val null : t
(** The disabled collector: every operation is a no-op. Use it as the
    default for [?telemetry] arguments. *)

val enabled : t -> bool

val global : t
(** A process-global enabled collector, for call sites with no natural
    place to thread one through (epoch = module load time). *)

val reset : t -> unit
(** Drop all recorded spans, counters and histograms (epoch kept). *)

(** {1 Recording} *)

val with_span :
  t -> ?cat:string -> ?args:(string * string) list -> string ->
  (unit -> 'a) -> 'a
(** [with_span t name f] runs [f] inside a span; nesting is tracked, so
    spans opened by [f] become children. Exceptions propagate; the span
    is closed either way. *)

val record_span :
  t -> ?cat:string -> ?args:(string * string) list -> string ->
  start:float -> stop:float -> unit
(** Record an already-timed region ([start]/[stop] from {!Clock.now});
    it is parented under the currently open [with_span], if any. Lets
    hot loops time unconditionally and record only when something
    happened. *)

val count : t -> ?by:int -> string -> unit
(** Bump a named counter (created at 0 on first use). *)

val observe : t -> string -> float -> unit
(** Feed one observation (seconds) into a named histogram. *)

(** {1 Reading} *)

val spans : t -> span list
(** In start order. *)

val counters : t -> (string * int) list
(** Sorted by name. *)

val histograms : t -> (string * Histogram.snapshot) list
(** Sorted by name. *)

(** {1 Exporters} *)

val summary : t -> string
(** Human-readable tables: spans aggregated by name (count, total,
    mean), counters, histogram quantiles. *)

val chrome_trace : ?process_name:string -> t -> string
(** Chrome trace-event JSON: one ["X"] (complete) event per span with
    microsecond [ts]/[dur], plus the counters under ["otherData"].
    Loadable in [chrome://tracing] / Perfetto. *)

val write_chrome_trace : ?process_name:string -> string -> t -> unit
(** [write_chrome_trace file t] writes {!chrome_trace} to [file]. *)
