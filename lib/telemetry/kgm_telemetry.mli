(** Kgm_telemetry — the observability substrate of KGModel.

    One collector gathers three kinds of signal:
    - {e spans}: hierarchical, monotonic-clock timed regions
      (load | reason | flush stages, per-rule chase work, figure
      generation, ...);
    - {e counters}: named monotone integers (facts derived, nulls
      invented, chase-check hits, ...);
    - {e histograms}: log-scale latency distributions (per-rule
      evaluation times, ...).

    Every instrumentation point takes a collector explicitly; the
    {!null} collector makes all of them no-ops, so instrumented code
    pays nothing when observability is off. Two exporters are provided:
    a human-readable {!summary} table and {!chrome_trace}, the Chrome
    trace-event JSON format loadable in [chrome://tracing] and
    Perfetto. *)

module Clock : sig
  val now : unit -> float
  (** Monotonic time in seconds, from [clock_gettime(CLOCK_MONOTONIC)].
      Only differences are meaningful; never goes backwards on wall
      clock adjustment (unlike [Unix.gettimeofday]). *)

  val now_ns : unit -> int64
  (** Same instant in integer nanoseconds. *)
end

module Histogram : sig
  type t
  (** A log-2-bucketed latency histogram: bucket [i] counts
      observations in [[2^(i-1), 2^i)] microseconds. Cheap (one array
      index per observation), bounded memory. *)

  val create : unit -> t
  val observe : t -> float -> unit
  (** [observe h seconds] — negative observations clamp to 0. *)

  type snapshot = {
    count : int;
    sum : float;                    (** seconds *)
    min : float;
    max : float;
    buckets : (float * int) list;   (** (upper bound in seconds, count),
                                        non-empty buckets only *)
  }

  val snapshot : t -> snapshot
  val mean : snapshot -> float
  val quantile : snapshot -> float -> float
  (** [quantile s 0.9] — upper bound of the bucket holding the q-th
      observation; 0 on an empty snapshot. *)
end

type span = {
  sp_id : int;
  sp_parent : int option;  (** enclosing span, if any *)
  sp_depth : int;          (** 0 = top-level *)
  sp_name : string;
  sp_cat : string;         (** trace-event category, e.g. "stage", "rule" *)
  sp_start : float;        (** seconds since the collector's epoch *)
  sp_dur : float;
  sp_args : (string * string) list;
}

type t
(** A collector. Not thread-safe (the engine is single-threaded). *)

val create : unit -> t
(** A fresh, enabled collector; its epoch is the creation instant. *)

val null : t
(** The disabled collector: every operation is a no-op. Use it as the
    default for [?telemetry] arguments. *)

val enabled : t -> bool

val global : t
(** A process-global enabled collector, for call sites with no natural
    place to thread one through (epoch = module load time). *)

val reset : t -> unit
(** Drop all recorded spans, counters and histograms (epoch kept). *)

(** {1 Recording} *)

val with_span :
  t -> ?cat:string -> ?args:(string * string) list -> string ->
  (unit -> 'a) -> 'a
(** [with_span t name f] runs [f] inside a span; nesting is tracked, so
    spans opened by [f] become children. Exceptions propagate; the span
    is closed either way. *)

val record_span :
  t -> ?cat:string -> ?args:(string * string) list -> string ->
  start:float -> stop:float -> unit
(** Record an already-timed region ([start]/[stop] from {!Clock.now});
    it is parented under the currently open [with_span], if any. Lets
    hot loops time unconditionally and record only when something
    happened. *)

val count : t -> ?by:int -> string -> unit
(** Bump a named counter (created at 0 on first use). *)

val observe : t -> string -> float -> unit
(** Feed one observation (seconds) into a named histogram. *)

(** {1 Reading} *)

val spans : t -> span list
(** In start order. *)

val counters : t -> (string * int) list
(** Sorted by name. *)

val histograms : t -> (string * Histogram.snapshot) list
(** Sorted by name. *)

val gauge : t -> string -> (unit -> int) -> unit
(** Register (or replace) a named gauge: a callback sampled at export
    time — the owner keeps the state where it lives (e.g. an
    [Atomic.t] queue depth) instead of pushing every change. No-op on
    the {!null} collector. The callback must be safe to call from the
    exporting thread; one that raises is skipped at sampling. *)

val gauges : t -> (string * int) list
(** Sampled now, sorted by name. *)

(** {1 Exporters} *)

val summary : t -> string
(** Human-readable tables: spans aggregated by name (count, total,
    mean), counters, histogram quantiles. *)

val chrome_trace : ?process_name:string -> t -> string
(** Chrome trace-event JSON: one ["X"] (complete) event per span with
    microsecond [ts]/[dur], plus the counters under ["otherData"].
    Loadable in [chrome://tracing] / Perfetto. *)

val write_chrome_trace : ?process_name:string -> string -> t -> unit
(** [write_chrome_trace file t] writes {!chrome_trace} to [file]. *)

val prometheus : ?namespace:string -> t -> string
(** Prometheus text exposition (version 0.0.4) of the collector:
    counters as [<ns>_<name>_total], registered gauges as
    [<ns>_<name>] (sampled at export), histograms as cumulative
    [<ns>_<name>_seconds] bucket series ([le] upper bounds in seconds,
    from the log-2 buckets) with [_sum]/[_count], and spans aggregated
    by name into [<ns>_span_total{span=...}] /
    [<ns>_span_seconds_total{span=...}] counter pairs. Metric names are
    sanitized to [[a-zA-Z0-9_:]]; [namespace] defaults to ["kgm"]. *)

val write_prometheus : ?namespace:string -> string -> t -> unit
(** [write_prometheus file t] writes {!prometheus} to [file] via a
    rename, so a concurrent reader never observes a torn snapshot.
    Suitable for periodic re-export during a long chase. *)

(** Minimal JSON values — just enough for the journal to write events
    and read them back without an external dependency. Integers and
    floats are distinct constructors so counters round-trip exactly. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact (single-line) rendering. Non-finite floats print as
      [null]; floats otherwise round-trip through {!of_string}. *)

  val of_string : string -> (t, string) result
  (** Parse one JSON document; trailing garbage is an error. Object key
      order is preserved. *)

  val member : string -> t -> t option
  val to_int : t -> int option
  val to_float : t -> float option
  (** Accepts [Int] too (JSON numbers are one type on the wire). *)

  val to_str : t -> string option
end

(** The chase flight recorder: an append-only JSONL journal of
    structured events from the engine, planner, pool, resilience and
    incremental layers. Each line is one object
    [{"seq":int,"t":seconds,"type":string,...payload}]; the first line
    is a [journal.open] header carrying the schema name and version, so
    a reader can reject recordings it does not understand.

    Emission is serialized by a mutex (worker domains report retries
    and faults), and the {!null} journal makes every call a no-op, so
    instrumented code pays one branch when recording is off. *)
module Journal : sig
  val schema : string
  (** ["kgm-chase-journal"]. *)

  val version : int
  (** Current schema version, stamped into the header event. *)

  type event = {
    ev_seq : int;                         (** 0-based emission order *)
    ev_t : float;                         (** seconds since journal open *)
    ev_type : string;                     (** e.g. ["round.end"] *)
    ev_fields : (string * Json.t) list;   (** payload, order preserved *)
  }

  type t

  val null : t
  (** The disabled journal: {!emit} is a no-op. Default for
      [?journal] arguments. *)

  val create : ?path:string -> unit -> t
  (** An enabled journal; with [path], events are appended to that file
      as JSONL (truncating any previous content). The header event is
      emitted immediately. Without [path] the journal only feeds
      {!tap}s — e.g. the CLI progress line. *)

  val enabled : t -> bool
  (** Guard for call sites that would otherwise build a payload just to
      throw it away. *)

  val emit : t -> string -> (string * Json.t) list -> unit
  (** [emit j type fields] appends one event. Safe from any domain. *)

  val tap : t -> (event -> unit) -> unit
  (** Register a callback run (under the journal lock, in order) for
      every subsequent event. A tap must not {!emit}. *)

  val close : t -> unit
  (** Flush and close the backing file, if any. Idempotent. *)

  (** {1 Reading a recording} *)

  val read_file : string -> (event list, string) result
  (** Parse a JSONL recording, validate the [journal.open] header
      (schema and version), and return all events including the header.
      [Error] describes the first malformed line or header mismatch. *)

  val parse_line : string -> (event, string) result

  val json_of_event : event -> Json.t
  (** The exact object {!emit} would have written. *)

  val field : event -> string -> Json.t option
  val int_field : event -> string -> int option
  val str_field : event -> string -> string option

  val filter :
    ?ev_type:string -> ?since:float -> ?until:float ->
    event list -> event list

  val summarize : event list -> string
  (** Human-readable digest: event counts by type, round count with
      delta min/mean/max, top rules by facts derived. *)
end
