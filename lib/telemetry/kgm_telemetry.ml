module Clock = struct
  let now_ns () = Monotonic_clock.now ()
  let now () = Int64.to_float (Monotonic_clock.now ()) /. 1e9
end

module Histogram = struct
  (* bucket i counts observations in [2^(i-1), 2^i) microseconds; bucket
     0 is the underflow (<= 1us), the last bucket the overflow (~ >18min) *)
  let n_buckets = 42

  type t = {
    counts : int array;
    mutable count : int;
    mutable sum : float;
    mutable min_v : float;
    mutable max_v : float;
  }

  let create () =
    { counts = Array.make n_buckets 0;
      count = 0;
      sum = 0.;
      min_v = infinity;
      max_v = neg_infinity }

  let bucket_of seconds =
    let us = seconds *. 1e6 in
    if us <= 1. then 0
    else
      let i = 1 + int_of_float (Float.log2 us) in
      if i >= n_buckets then n_buckets - 1 else i

  (* upper bound of bucket i, in seconds *)
  let bucket_bound i = if i = 0 then 1e-6 else Float.pow 2. (float_of_int i) *. 1e-6

  let observe h seconds =
    let v = if seconds < 0. then 0. else seconds in
    let i = bucket_of v in
    h.counts.(i) <- h.counts.(i) + 1;
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if v < h.min_v then h.min_v <- v;
    if v > h.max_v then h.max_v <- v

  type snapshot = {
    count : int;
    sum : float;
    min : float;
    max : float;
    buckets : (float * int) list;
  }

  let snapshot h =
    let buckets = ref [] in
    for i = n_buckets - 1 downto 0 do
      if h.counts.(i) > 0 then
        buckets := (bucket_bound i, h.counts.(i)) :: !buckets
    done;
    { count = h.count;
      sum = h.sum;
      min = (if h.count = 0 then 0. else h.min_v);
      max = (if h.count = 0 then 0. else h.max_v);
      buckets = !buckets }

  let mean s = if s.count = 0 then 0. else s.sum /. float_of_int s.count

  let quantile s q =
    if s.count = 0 then 0.
    else begin
      let target =
        int_of_float (Float.round (q *. float_of_int s.count)) |> max 1
      in
      let rec go seen = function
        | [] -> s.max
        | (bound, c) :: rest ->
            if seen + c >= target then bound else go (seen + c) rest
      in
      go 0 s.buckets
    end
end

type span = {
  sp_id : int;
  sp_parent : int option;
  sp_depth : int;
  sp_name : string;
  sp_cat : string;
  sp_start : float;
  sp_dur : float;
  sp_args : (string * string) list;
}

type t = {
  on : bool;
  epoch : float;
  mutable next_id : int;
  mutable stack : int list;             (* open span ids, innermost first *)
  mutable closed : span list;           (* reverse completion order *)
  ctrs : (string, int ref) Hashtbl.t;
  hists : (string, Histogram.t) Hashtbl.t;
  gauge_reg : (string, unit -> int) Hashtbl.t;
}

let make on =
  { on;
    epoch = Clock.now ();
    next_id = 0;
    stack = [];
    closed = [];
    ctrs = Hashtbl.create 16;
    hists = Hashtbl.create 16;
    gauge_reg = Hashtbl.create 8 }

let create () = make true
let null = make false
let global = make true
let enabled t = t.on

let reset t =
  t.next_id <- 0;
  t.stack <- [];
  t.closed <- [];
  Hashtbl.reset t.ctrs;
  Hashtbl.reset t.hists;
  Hashtbl.reset t.gauge_reg

let push t =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  let parent = match t.stack with [] -> None | p :: _ -> Some p in
  let depth = List.length t.stack in
  t.stack <- id :: t.stack;
  (id, parent, depth)

let with_span t ?(cat = "span") ?(args = []) name f =
  if not t.on then f ()
  else begin
    let id, parent, depth = push t in
    let t0 = Clock.now () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Clock.now () in
        (match t.stack with
         | x :: rest when x = id -> t.stack <- rest
         | _ -> ());
        t.closed <-
          { sp_id = id; sp_parent = parent; sp_depth = depth;
            sp_name = name; sp_cat = cat;
            sp_start = t0 -. t.epoch; sp_dur = t1 -. t0; sp_args = args }
          :: t.closed)
      f
  end

let record_span t ?(cat = "span") ?(args = []) name ~start ~stop =
  if t.on then begin
    let id = t.next_id in
    t.next_id <- t.next_id + 1;
    let parent = match t.stack with [] -> None | p :: _ -> Some p in
    let depth = List.length t.stack in
    t.closed <-
      { sp_id = id; sp_parent = parent; sp_depth = depth;
        sp_name = name; sp_cat = cat;
        sp_start = start -. t.epoch;
        sp_dur = Float.max 0. (stop -. start);
        sp_args = args }
      :: t.closed
  end

let count t ?(by = 1) name =
  if t.on then
    match Hashtbl.find_opt t.ctrs name with
    | Some r -> r := !r + by
    | None -> Hashtbl.add t.ctrs name (ref by)

let observe t name seconds =
  if t.on then
    let h =
      match Hashtbl.find_opt t.hists name with
      | Some h -> h
      | None ->
          let h = Histogram.create () in
          Hashtbl.add t.hists name h;
          h
    in
    Histogram.observe h seconds

let spans t =
  List.sort
    (fun a b ->
      match compare a.sp_start b.sp_start with
      | 0 -> compare a.sp_id b.sp_id
      | c -> c)
    t.closed

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.ctrs []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let histograms t =
  Hashtbl.fold (fun k h acc -> (k, Histogram.snapshot h) :: acc) t.hists []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Gauges are callback-registered and sampled at export time: the
   owner (e.g. the serving loop's queue depth, current epoch) keeps
   its state where it naturally lives — typically an [Atomic.t] — and
   the exporter reads it instead of the owner pushing every change. *)
let gauge t name sample = if t.on then Hashtbl.replace t.gauge_reg name sample

let gauges t =
  Hashtbl.fold
    (fun k sample acc ->
      match sample () with
      | v -> (k, v) :: acc
      | exception _ -> acc)
    t.gauge_reg []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)

let summary t =
  let buf = Buffer.create 1024 in
  let say fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  say "== telemetry summary ==\n";
  (* spans aggregated by name *)
  let agg : (string, int ref * float ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun s ->
      match Hashtbl.find_opt agg s.sp_name with
      | Some (n, tot) ->
          incr n;
          tot := !tot +. s.sp_dur
      | None ->
          Hashtbl.add agg s.sp_name (ref 1, ref s.sp_dur);
          order := s.sp_name :: !order)
    (spans t);
  if Hashtbl.length agg > 0 then begin
    say "spans (aggregated by name):\n";
    say "  %-40s %8s %12s %12s\n" "name" "count" "total s" "mean s";
    List.iter
      (fun name ->
        let n, tot = Hashtbl.find agg name in
        say "  %-40s %8d %12.6f %12.6f\n" name !n !tot
          (!tot /. float_of_int !n))
      (List.rev !order)
  end;
  (match counters t with
   | [] -> ()
   | cs ->
       say "counters:\n";
       List.iter (fun (k, v) -> say "  %-48s %12d\n" k v) cs);
  (match histograms t with
   | [] -> ()
   | hs ->
       say "histograms (seconds):\n";
       say "  %-36s %8s %10s %10s %10s %10s\n" "name" "count" "mean" "p50"
         "p90" "max";
       List.iter
         (fun (k, s) ->
           say "  %-36s %8d %10.6f %10.6f %10.6f %10.6f\n" k s.Histogram.count
             (Histogram.mean s)
             (Histogram.quantile s 0.5)
             (Histogram.quantile s 0.9)
             s.Histogram.max)
         hs);
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let chrome_trace ?(process_name = "kgmodel") t =
  let buf = Buffer.create 4096 in
  let say fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  say "{\"traceEvents\":[";
  say
    "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"%s\"}}"
    (json_escape process_name);
  List.iter
    (fun s ->
      say
        ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"name\":\"%s\",\"cat\":\"%s\",\"ts\":%.3f,\"dur\":%.3f"
        (json_escape s.sp_name) (json_escape s.sp_cat) (s.sp_start *. 1e6)
        (s.sp_dur *. 1e6);
      (match s.sp_args with
       | [] -> ()
       | args ->
           say ",\"args\":{";
           List.iteri
             (fun i (k, v) ->
               say "%s\"%s\":\"%s\"" (if i = 0 then "" else ",")
                 (json_escape k) (json_escape v))
             args;
           say "}");
      say "}")
    (spans t);
  say "],\n\"otherData\":{";
  List.iteri
    (fun i (k, v) ->
      say "%s\"%s\":%d" (if i = 0 then "" else ",") (json_escape k) v)
    (counters t);
  say "}}\n";
  Buffer.contents buf

let write_chrome_trace ?process_name file t =
  let oc = open_out file in
  output_string oc (chrome_trace ?process_name t);
  close_out oc

let sanitize_metric_name s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    s

let label_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prometheus ?(namespace = "kgm") t =
  let ns = sanitize_metric_name namespace in
  let buf = Buffer.create 4096 in
  let say fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (* counters: monotone since collector creation *)
  List.iter
    (fun (name, v) ->
      let m = Printf.sprintf "%s_%s_total" ns (sanitize_metric_name name) in
      say "# TYPE %s counter\n%s %d\n" m m v)
    (counters t);
  (* gauges: instantaneous values sampled at export *)
  List.iter
    (fun (name, v) ->
      let m = Printf.sprintf "%s_%s" ns (sanitize_metric_name name) in
      say "# TYPE %s gauge\n%s %d\n" m m v)
    (gauges t);
  (* histograms: cumulative le buckets over the non-empty log2 bounds *)
  List.iter
    (fun (name, (s : Histogram.snapshot)) ->
      let m = Printf.sprintf "%s_%s_seconds" ns (sanitize_metric_name name) in
      say "# TYPE %s histogram\n" m;
      let cum = ref 0 in
      List.iter
        (fun (bound, c) ->
          cum := !cum + c;
          say "%s_bucket{le=\"%.9g\"} %d\n" m bound !cum)
        s.Histogram.buckets;
      say "%s_bucket{le=\"+Inf\"} %d\n" m s.Histogram.count;
      say "%s_sum %.9f\n" m s.Histogram.sum;
      say "%s_count %d\n" m s.Histogram.count)
    (histograms t);
  (* spans, aggregated by name: a pair of counters per span name *)
  let agg : (string, int ref * float ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun sp ->
      match Hashtbl.find_opt agg sp.sp_name with
      | Some (n, tot) ->
          incr n;
          tot := !tot +. sp.sp_dur
      | None ->
          Hashtbl.add agg sp.sp_name (ref 1, ref sp.sp_dur);
          order := sp.sp_name :: !order)
    (spans t);
  (match List.rev !order with
   | [] -> ()
   | names ->
       say "# TYPE %s_span_total counter\n" ns;
       List.iter
         (fun name ->
           let n, _ = Hashtbl.find agg name in
           say "%s_span_total{span=\"%s\"} %d\n" ns (label_escape name) !n)
         names;
       say "# TYPE %s_span_seconds_total counter\n" ns;
       List.iter
         (fun name ->
           let _, tot = Hashtbl.find agg name in
           say "%s_span_seconds_total{span=\"%s\"} %.9f\n" ns
             (label_escape name) !tot)
         names);
  Buffer.contents buf

let write_prometheus ?namespace file t =
  (* atomic swap: a scraper (or a crash) never sees a torn snapshot *)
  let tmp = file ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (prometheus ?namespace t);
  close_out oc;
  Sys.rename tmp file

(* ------------------------------------------------------------------ *)
(* Minimal JSON values: what the journal needs to write and read back.
   No external dependency; integers are kept distinct from floats so
   counters round-trip exactly. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let float_repr f =
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.1f" f
    else
      let s = Printf.sprintf "%.12g" f in
      if float_of_string s = f then s else Printf.sprintf "%.17g" f

  let rec print buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        if Float.is_nan f || Float.abs f = Float.infinity then
          Buffer.add_string buf "null"
        else Buffer.add_string buf (float_repr f)
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (json_escape s);
        Buffer.add_char buf '"'
    | Arr l ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char buf ',';
            print buf v)
          l;
        Buffer.add_char buf ']'
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            Buffer.add_string buf (json_escape k);
            Buffer.add_string buf "\":";
            print buf v)
          kvs;
        Buffer.add_char buf '}'

  let to_string v =
    let buf = Buffer.create 256 in
    print buf v;
    Buffer.contents buf

  exception Parse_error of string

  (* recursive-descent parser over a string; positions are byte offsets *)
  type cursor = { s : string; mutable i : int }

  let error c msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg c.i))

  let peek c = if c.i < String.length c.s then Some c.s.[c.i] else None

  let skip_ws c =
    while
      c.i < String.length c.s
      && (match c.s.[c.i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      c.i <- c.i + 1
    done

  let expect c ch =
    match peek c with
    | Some x when x = ch -> c.i <- c.i + 1
    | _ -> error c (Printf.sprintf "expected '%c'" ch)

  let lit c word v =
    if
      c.i + String.length word <= String.length c.s
      && String.sub c.s c.i (String.length word) = word
    then begin
      c.i <- c.i + String.length word;
      v
    end
    else error c (Printf.sprintf "expected %s" word)

  let utf8_of_code buf u =
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else if u < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end

  let parse_hex4 c =
    if c.i + 4 > String.length c.s then error c "truncated \\u escape";
    let h = String.sub c.s c.i 4 in
    c.i <- c.i + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some v -> v
    | None -> error c "bad \\u escape"

  let parse_string c =
    expect c '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if c.i >= String.length c.s then error c "unterminated string";
      let ch = c.s.[c.i] in
      c.i <- c.i + 1;
      if ch = '"' then Buffer.contents buf
      else if ch = '\\' then begin
        (if c.i >= String.length c.s then error c "unterminated escape";
         let e = c.s.[c.i] in
         c.i <- c.i + 1;
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
             let u = parse_hex4 c in
             (* surrogate pair *)
             if u >= 0xD800 && u <= 0xDBFF then begin
               if
                 c.i + 1 < String.length c.s
                 && c.s.[c.i] = '\\'
                 && c.s.[c.i + 1] = 'u'
               then begin
                 c.i <- c.i + 2;
                 let lo = parse_hex4 c in
                 utf8_of_code buf
                   (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00))
               end
               else utf8_of_code buf 0xFFFD
             end
             else utf8_of_code buf u
         | _ -> error c "bad escape");
        go ()
      end
      else begin
        Buffer.add_char buf ch;
        go ()
      end
    in
    go ()

  let parse_number c =
    let start = c.i in
    let is_num ch =
      match ch with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while c.i < String.length c.s && is_num c.s.[c.i] do
      c.i <- c.i + 1
    done;
    let tok = String.sub c.s start (c.i - start) in
    let has ch = String.contains tok ch in
    if (not (has '.')) && (not (has 'e')) && not (has 'E') then
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> error c "bad number")
    else
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> error c "bad number"

  let rec parse_value c =
    skip_ws c;
    match peek c with
    | None -> error c "unexpected end of input"
    | Some '"' -> Str (parse_string c)
    | Some '{' ->
        expect c '{';
        skip_ws c;
        if peek c = Some '}' then begin
          expect c '}';
          Obj []
        end
        else begin
          let kvs = ref [] in
          let rec members () =
            skip_ws c;
            let k = parse_string c in
            skip_ws c;
            expect c ':';
            let v = parse_value c in
            kvs := (k, v) :: !kvs;
            skip_ws c;
            match peek c with
            | Some ',' ->
                expect c ',';
                members ()
            | Some '}' -> expect c '}'
            | _ -> error c "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !kvs)
        end
    | Some '[' ->
        expect c '[';
        skip_ws c;
        if peek c = Some ']' then begin
          expect c ']';
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value c in
            items := v :: !items;
            skip_ws c;
            match peek c with
            | Some ',' ->
                expect c ',';
                elements ()
            | Some ']' -> expect c ']'
            | _ -> error c "expected ',' or ']'"
          in
          elements ();
          Arr (List.rev !items)
        end
    | Some 't' -> lit c "true" (Bool true)
    | Some 'f' -> lit c "false" (Bool false)
    | Some 'n' -> lit c "null" Null
    | Some _ -> parse_number c

  let of_string s =
    let c = { s; i = 0 } in
    match parse_value c with
    | v ->
        skip_ws c;
        if c.i <> String.length s then Error "trailing garbage"
        else Ok v
    | exception Parse_error msg -> Error msg

  let member k = function
    | Obj kvs -> List.assoc_opt k kvs
    | _ -> None

  let to_int = function Int i -> Some i | _ -> None
  let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
  let to_str = function Str s -> Some s | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Flight recorder: a JSONL journal of chase events. Each line is one
   JSON object {"seq":..,"t":..,"type":..,<payload>}; the first line is
   a header event carrying the schema name and version. *)

module Journal = struct
  let schema = "kgm-chase-journal"
  let version = 1

  type event = {
    ev_seq : int;
    ev_t : float;  (* seconds since the journal was opened *)
    ev_type : string;
    ev_fields : (string * Json.t) list;
  }

  type t = {
    on : bool;
    epoch : float;
    lock : Mutex.t;
    mutable seq : int;
    mutable oc : out_channel option;
    mutable taps : (event -> unit) list;
  }

  let null =
    { on = false;
      epoch = 0.;
      lock = Mutex.create ();
      seq = 0;
      oc = None;
      taps = [] }

  let enabled j = j.on

  let json_of_event e =
    Json.Obj
      (("seq", Json.Int e.ev_seq)
      :: ("t", Json.Float e.ev_t)
      :: ("type", Json.Str e.ev_type)
      :: e.ev_fields)

  (* Workers on other domains report retries/faults, so emission is
     serialized. Taps run under the lock to keep their view ordered;
     a tap must not emit. *)
  let emit j ev_type fields =
    if j.on then begin
      Mutex.lock j.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock j.lock)
        (fun () ->
          let e =
            { ev_seq = j.seq;
              ev_t = Clock.now () -. j.epoch;
              ev_type;
              ev_fields = fields }
          in
          j.seq <- j.seq + 1;
          (match j.oc with
           | Some oc ->
               output_string oc (Json.to_string (json_of_event e));
               output_char oc '\n'
           | None -> ());
          List.iter (fun f -> f e) j.taps)
    end

  let create ?path () =
    let oc =
      match path with
      | None -> None
      | Some p -> Some (open_out p)
    in
    let j =
      { on = true;
        epoch = Clock.now ();
        lock = Mutex.create ();
        seq = 0;
        oc;
        taps = [] }
    in
    emit j "journal.open"
      [ ("schema", Json.Str schema); ("version", Json.Int version) ];
    j

  let tap j f = if j.on then j.taps <- j.taps @ [ f ]

  let close j =
    Mutex.lock j.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock j.lock)
      (fun () ->
        match j.oc with
        | Some oc ->
            j.oc <- None;
            close_out oc
        | None -> ())

  (* ---------------- reading a recording back ---------------- *)

  let event_of_json v =
    match v with
    | Json.Obj kvs ->
        let seq =
          Option.bind (List.assoc_opt "seq" kvs) Json.to_int
        and t = Option.bind (List.assoc_opt "t" kvs) Json.to_float
        and ty = Option.bind (List.assoc_opt "type" kvs) Json.to_str in
        (match (seq, t, ty) with
         | Some seq, Some t, Some ty ->
             let fields =
               List.filter
                 (fun (k, _) -> k <> "seq" && k <> "t" && k <> "type")
                 kvs
             in
             Ok { ev_seq = seq; ev_t = t; ev_type = ty; ev_fields = fields }
         | _ -> Error "event missing seq/t/type")
    | _ -> Error "event line is not a JSON object"

  let parse_line line =
    match Json.of_string line with
    | Error e -> Error e
    | Ok v -> event_of_json v

  (* Validates the header line: schema name and a version we know how
     to read. Returns the events including the header event. *)
  let read_file path =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let events = ref [] in
        let lineno = ref 0 in
        let bad = ref None in
        (try
           while !bad = None do
             let line = input_line ic in
             incr lineno;
             if String.trim line <> "" then
               match parse_line line with
               | Ok e -> events := e :: !events
               | Error msg ->
                   bad := Some (Printf.sprintf "%s:%d: %s" path !lineno msg)
           done
         with End_of_file -> ());
        match !bad with
        | Some msg -> Error msg
        | None ->
        match List.rev !events with
        | [] -> Error "empty journal"
        | hd :: _ as all ->
            if hd.ev_type <> "journal.open" then
              Error "missing journal.open header"
            else if
              Option.bind (List.assoc_opt "schema" hd.ev_fields) Json.to_str
              <> Some schema
            then Error "unknown journal schema"
            else
              let v =
                Option.bind
                  (List.assoc_opt "version" hd.ev_fields)
                  Json.to_int
              in
              (match v with
               | Some v when v = version -> Ok all
               | Some v ->
                   Error
                     (Printf.sprintf "unsupported journal version %d (want %d)"
                        v version)
               | None -> Error "header missing version"))

  let field e k = List.assoc_opt k e.ev_fields
  let int_field e k = Option.bind (field e k) Json.to_int
  let str_field e k = Option.bind (field e k) Json.to_str

  let filter ?ev_type ?since ?until events =
    List.filter
      (fun e ->
        (match ev_type with
         | Some ty -> e.ev_type = ty
         | None -> true)
        && (match since with Some s -> e.ev_t >= s | None -> true)
        && match until with Some u -> e.ev_t <= u | None -> true)
      events

  let summarize events =
    let buf = Buffer.create 1024 in
    let say fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    let n = List.length events in
    let duration =
      match (events, List.rev events) with
      | first :: _, last :: _ -> last.ev_t -. first.ev_t
      | _ -> 0.
    in
    say "== journal summary ==\n";
    say "events   %d\n" n;
    say "duration %.3fs\n" duration;
    (* per-type counts, in first-seen order *)
    let counts : (string, int ref) Hashtbl.t = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun e ->
        match Hashtbl.find_opt counts e.ev_type with
        | Some r -> incr r
        | None ->
            Hashtbl.add counts e.ev_type (ref 1);
            order := e.ev_type :: !order)
      events;
    say "by type:\n";
    List.iter
      (fun ty -> say "  %-28s %8d\n" ty !(Hashtbl.find counts ty))
      (List.rev !order);
    (* round deltas *)
    let deltas =
      List.filter_map
        (fun e ->
          if e.ev_type = "round.end" then int_field e "delta" else None)
        events
    in
    (match deltas with
     | [] -> ()
     | ds ->
         let mn = List.fold_left min max_int ds
         and mx = List.fold_left max 0 ds
         and sum = List.fold_left ( + ) 0 ds in
         say "rounds: %d  delta min/mean/max: %d / %.1f / %d\n"
           (List.length ds) mn
           (float_of_int sum /. float_of_int (List.length ds))
           mx);
    (* top rules by facts fired *)
    let fired : (string, int ref) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun e ->
        if e.ev_type = "rule.batch" then
          match (str_field e "rule", int_field e "derived") with
          | Some r, Some d -> (
              match Hashtbl.find_opt fired r with
              | Some acc -> acc := !acc + d
              | None -> Hashtbl.add fired r (ref d))
          | _ -> ())
      events;
    let rules =
      Hashtbl.fold (fun k v acc -> (k, !v) :: acc) fired []
      |> List.sort (fun (a, va) (b, vb) ->
             match compare vb va with 0 -> String.compare a b | c -> c)
    in
    (match rules with
     | [] -> ()
     | rs ->
         say "top rules by facts derived:\n";
         List.iteri
           (fun i (r, d) -> if i < 10 then say "  %-48s %8d\n" r d)
           rs);
    Buffer.contents buf
end
