module Clock = struct
  let now_ns () = Monotonic_clock.now ()
  let now () = Int64.to_float (Monotonic_clock.now ()) /. 1e9
end

module Histogram = struct
  (* bucket i counts observations in [2^(i-1), 2^i) microseconds; bucket
     0 is the underflow (<= 1us), the last bucket the overflow (~ >18min) *)
  let n_buckets = 42

  type t = {
    counts : int array;
    mutable count : int;
    mutable sum : float;
    mutable min_v : float;
    mutable max_v : float;
  }

  let create () =
    { counts = Array.make n_buckets 0;
      count = 0;
      sum = 0.;
      min_v = infinity;
      max_v = neg_infinity }

  let bucket_of seconds =
    let us = seconds *. 1e6 in
    if us <= 1. then 0
    else
      let i = 1 + int_of_float (Float.log2 us) in
      if i >= n_buckets then n_buckets - 1 else i

  (* upper bound of bucket i, in seconds *)
  let bucket_bound i = if i = 0 then 1e-6 else Float.pow 2. (float_of_int i) *. 1e-6

  let observe h seconds =
    let v = if seconds < 0. then 0. else seconds in
    let i = bucket_of v in
    h.counts.(i) <- h.counts.(i) + 1;
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if v < h.min_v then h.min_v <- v;
    if v > h.max_v then h.max_v <- v

  type snapshot = {
    count : int;
    sum : float;
    min : float;
    max : float;
    buckets : (float * int) list;
  }

  let snapshot h =
    let buckets = ref [] in
    for i = n_buckets - 1 downto 0 do
      if h.counts.(i) > 0 then
        buckets := (bucket_bound i, h.counts.(i)) :: !buckets
    done;
    { count = h.count;
      sum = h.sum;
      min = (if h.count = 0 then 0. else h.min_v);
      max = (if h.count = 0 then 0. else h.max_v);
      buckets = !buckets }

  let mean s = if s.count = 0 then 0. else s.sum /. float_of_int s.count

  let quantile s q =
    if s.count = 0 then 0.
    else begin
      let target =
        int_of_float (Float.round (q *. float_of_int s.count)) |> max 1
      in
      let rec go seen = function
        | [] -> s.max
        | (bound, c) :: rest ->
            if seen + c >= target then bound else go (seen + c) rest
      in
      go 0 s.buckets
    end
end

type span = {
  sp_id : int;
  sp_parent : int option;
  sp_depth : int;
  sp_name : string;
  sp_cat : string;
  sp_start : float;
  sp_dur : float;
  sp_args : (string * string) list;
}

type t = {
  on : bool;
  epoch : float;
  mutable next_id : int;
  mutable stack : int list;             (* open span ids, innermost first *)
  mutable closed : span list;           (* reverse completion order *)
  ctrs : (string, int ref) Hashtbl.t;
  hists : (string, Histogram.t) Hashtbl.t;
}

let make on =
  { on;
    epoch = Clock.now ();
    next_id = 0;
    stack = [];
    closed = [];
    ctrs = Hashtbl.create 16;
    hists = Hashtbl.create 16 }

let create () = make true
let null = make false
let global = make true
let enabled t = t.on

let reset t =
  t.next_id <- 0;
  t.stack <- [];
  t.closed <- [];
  Hashtbl.reset t.ctrs;
  Hashtbl.reset t.hists

let push t =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  let parent = match t.stack with [] -> None | p :: _ -> Some p in
  let depth = List.length t.stack in
  t.stack <- id :: t.stack;
  (id, parent, depth)

let with_span t ?(cat = "span") ?(args = []) name f =
  if not t.on then f ()
  else begin
    let id, parent, depth = push t in
    let t0 = Clock.now () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Clock.now () in
        (match t.stack with
         | x :: rest when x = id -> t.stack <- rest
         | _ -> ());
        t.closed <-
          { sp_id = id; sp_parent = parent; sp_depth = depth;
            sp_name = name; sp_cat = cat;
            sp_start = t0 -. t.epoch; sp_dur = t1 -. t0; sp_args = args }
          :: t.closed)
      f
  end

let record_span t ?(cat = "span") ?(args = []) name ~start ~stop =
  if t.on then begin
    let id = t.next_id in
    t.next_id <- t.next_id + 1;
    let parent = match t.stack with [] -> None | p :: _ -> Some p in
    let depth = List.length t.stack in
    t.closed <-
      { sp_id = id; sp_parent = parent; sp_depth = depth;
        sp_name = name; sp_cat = cat;
        sp_start = start -. t.epoch;
        sp_dur = Float.max 0. (stop -. start);
        sp_args = args }
      :: t.closed
  end

let count t ?(by = 1) name =
  if t.on then
    match Hashtbl.find_opt t.ctrs name with
    | Some r -> r := !r + by
    | None -> Hashtbl.add t.ctrs name (ref by)

let observe t name seconds =
  if t.on then
    let h =
      match Hashtbl.find_opt t.hists name with
      | Some h -> h
      | None ->
          let h = Histogram.create () in
          Hashtbl.add t.hists name h;
          h
    in
    Histogram.observe h seconds

let spans t =
  List.sort
    (fun a b ->
      match compare a.sp_start b.sp_start with
      | 0 -> compare a.sp_id b.sp_id
      | c -> c)
    t.closed

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.ctrs []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let histograms t =
  Hashtbl.fold (fun k h acc -> (k, Histogram.snapshot h) :: acc) t.hists []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)

let summary t =
  let buf = Buffer.create 1024 in
  let say fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  say "== telemetry summary ==\n";
  (* spans aggregated by name *)
  let agg : (string, int ref * float ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun s ->
      match Hashtbl.find_opt agg s.sp_name with
      | Some (n, tot) ->
          incr n;
          tot := !tot +. s.sp_dur
      | None ->
          Hashtbl.add agg s.sp_name (ref 1, ref s.sp_dur);
          order := s.sp_name :: !order)
    (spans t);
  if Hashtbl.length agg > 0 then begin
    say "spans (aggregated by name):\n";
    say "  %-40s %8s %12s %12s\n" "name" "count" "total s" "mean s";
    List.iter
      (fun name ->
        let n, tot = Hashtbl.find agg name in
        say "  %-40s %8d %12.6f %12.6f\n" name !n !tot
          (!tot /. float_of_int !n))
      (List.rev !order)
  end;
  (match counters t with
   | [] -> ()
   | cs ->
       say "counters:\n";
       List.iter (fun (k, v) -> say "  %-48s %12d\n" k v) cs);
  (match histograms t with
   | [] -> ()
   | hs ->
       say "histograms (seconds):\n";
       say "  %-36s %8s %10s %10s %10s %10s\n" "name" "count" "mean" "p50"
         "p90" "max";
       List.iter
         (fun (k, s) ->
           say "  %-36s %8d %10.6f %10.6f %10.6f %10.6f\n" k s.Histogram.count
             (Histogram.mean s)
             (Histogram.quantile s 0.5)
             (Histogram.quantile s 0.9)
             s.Histogram.max)
         hs);
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let chrome_trace ?(process_name = "kgmodel") t =
  let buf = Buffer.create 4096 in
  let say fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  say "{\"traceEvents\":[";
  say
    "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"%s\"}}"
    (json_escape process_name);
  List.iter
    (fun s ->
      say
        ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"name\":\"%s\",\"cat\":\"%s\",\"ts\":%.3f,\"dur\":%.3f"
        (json_escape s.sp_name) (json_escape s.sp_cat) (s.sp_start *. 1e6)
        (s.sp_dur *. 1e6);
      (match s.sp_args with
       | [] -> ()
       | args ->
           say ",\"args\":{";
           List.iteri
             (fun i (k, v) ->
               say "%s\"%s\":\"%s\"" (if i = 0 then "" else ",")
                 (json_escape k) (json_escape v))
             args;
           say "}");
      say "}")
    (spans t);
  say "],\n\"otherData\":{";
  List.iteri
    (fun i (k, v) ->
      say "%s\"%s\":%d" (if i = 0 then "" else ",") (json_escape k) v)
    (counters t);
  say "}}\n";
  Buffer.contents buf

let write_chrome_trace ?process_name file t =
  let oc = open_out file in
  output_string oc (chrome_trace ?process_name t);
  close_out oc
