(** Fact store of the Vadalog engine: per-predicate sets of tuples with
    lazily built hash indexes on bound-position patterns. Duplicate
    facts are silently ignored (set semantics); fact equality is
    {!Kgm_common.Value.equal} pointwise (so e.g. a fact containing
    [Float nan] equals itself and re-derivation never duplicates it). *)

open Kgm_common

type fact = Value.t array

module KeyTbl : Hashtbl.S with type key = Value.t list
(** Hash tables keyed by value tuples, consistent with
    {!Value.equal}/{!Value.hash} — use for any fact-keyed state (the
    engine's aggregation groups, provenance, ...). *)

type t

val create : unit -> t

val add : t -> string -> fact -> bool
(** [add db pred fact] inserts and returns [true] when the fact is new.
    Facts are stored in append order and the dedup probe is keyed on the
    fact array itself (no per-probe key allocation). Existing indexes on
    the predicate are maintained incrementally. Registered as the
    ["db_insert"] {!Kgm_resilience.Faults} site: with fault injection
    active it may raise [Kgm_resilience.Fault], which lands mid-round —
    the crash the checkpoint/resume tests provoke. *)

val mem : t -> string -> fact -> bool

val facts : t -> string -> fact list
(** Facts of a predicate in insertion order — the order {!add} first
    accepted them, which every probe and export preserves (the engine's
    determinism invariants depend on it); [[]] for unknown predicates. *)

val count : t -> string -> int
val total : t -> int

val predicates : t -> string list
(** Every predicate with at least one fact, sorted. *)

val lookup : t -> string -> int list -> Value.t list -> fact list
(** [lookup db pred positions key]: the facts whose values at
    [positions] (ascending) equal [key] pointwise, in insertion order.
    Builds a hash index for the position pattern on first use; the empty
    pattern is a full scan. Facts too short for the pattern never match.
    On a {!freeze}-frozen database a missing index is answered by a
    linear scan instead of being built (no mutation). *)

val iter_matches :
  t -> string -> int list -> Value.t list -> (int -> fact -> unit) -> int
(** [iter_matches db pred positions key f] calls [f seq fact] on exactly
    the facts {!lookup} would return, in the same (insertion) order,
    without allocating a result list. [seq] is the fact's per-predicate
    insertion sequence number (dense from 0), strictly ascending over
    the calls — the engine's deterministic join-order sort key.

    Returns the number of facts {e examined} to answer the probe: the
    index-group length when an index serves it (or is built first, on an
    unfrozen store), but the predicate's whole cardinality on the frozen
    missing-index path, where the probe degrades to a linear scan. The
    engine charges this to its [rs_probes] counter, so un-prepared
    probe patterns show up as the full scans they really are. *)

val remove_batch : t -> (string * fact) list -> int
(** [remove_batch t facts] deletes every listed (pred, fact) pair that
    is present; returns how many facts were removed (duplicates counted
    once). Affected predicate stores are rebuilt in one sweep: the
    survivors keep their relative insertion order, are renumbered
    densely from 0, and the predicate's index patterns are rebuilt over
    them — afterwards the store is indistinguishable from one into
    which only the survivors were ever inserted. This is the deletion
    primitive of the incremental maintenance layer
    ({!Kgm_vadalog.Incremental}); it is batch-oriented because DRed
    removes a whole overdeletion cone at once. Raises
    [Invalid_argument] on a frozen database. *)

(** {1 Freezing (parallel read phases)}

    The restricted-chase engine evaluates rule bodies from several
    domains at once against a read-only snapshot. Freezing makes the
    store safe for concurrent readers: writes are rejected and
    {!lookup} never builds indexes. Use {!prepare_index} to build the
    indexes the workers will probe {e before} freezing. *)

val freeze : t -> unit
(** Reject writes ({!add} raises [Invalid_argument]) and make every
    read path mutation-free until {!thaw}. *)

val thaw : t -> unit
val is_frozen : t -> bool

val prepare_index : t -> string -> int list -> unit
(** [prepare_index db pred positions] eagerly builds the index for the
    position pattern (a no-op for the empty pattern, unknown predicates
    or an already-built index). *)

val indexed_patterns : t -> string -> int list list
(** The position patterns currently indexed for a predicate, sorted. *)

val copy : t -> t
(** Deep copy: facts are copied in insertion order, the source's index
    patterns are rebuilt eagerly, and the frozen flag carries over (a
    copy of a frozen snapshot is itself a read-only snapshot). *)

val pp : Format.formatter -> t -> unit
(** Every fact as [pred(v1, ..., vn).] lines, predicates sorted. *)
