(** Fact store of the Vadalog engine: per-predicate sets of tuples with
    lazily built hash indexes on bound-position patterns. Duplicate
    facts are silently ignored (set semantics); fact equality is
    {!Kgm_common.Value.equal} pointwise (so e.g. a fact containing
    [Float nan] equals itself and re-derivation never duplicates it). *)

open Kgm_common

type fact = Value.t array

type ifact = int array
(** A dictionary-encoded fact: each cell is the {!Kgm_common.Intern} id
    of the corresponding value in the database's dictionary. This is
    the representation facts are actually stored, deduplicated and
    joined in — pointwise int equality, no boxed-value traversal. *)

module KeyTbl : Hashtbl.S with type key = Value.t list
(** Hash tables keyed by value tuples, consistent with
    {!Value.equal}/{!Value.hash} — use for any fact-keyed state (the
    engine's aggregation groups, provenance, ...). *)

module IKeyTbl : Hashtbl.S with type key = int list
(** Hash tables keyed by interned probe keys (id tuples). *)

module IFactTbl : Hashtbl.S with type key = ifact
(** Hash tables keyed by interned facts (pointwise int equality,
    multiplicative hash over the ids). *)

type t

val create : ?dict:Intern.t -> unit -> t
(** A fresh store; [dict] shares an existing dictionary (ids allocated
    by either side are visible to both). Default: a private one. *)

val dict : t -> Intern.t
(** The database's dictionary. Append to it only on sequential paths —
    never while the database is frozen for a parallel round. *)

val intern_fact : t -> fact -> ifact
(** Encode a fact, interning any values not yet in the dictionary.
    Never call on a frozen database's dictionary. *)

val resolve_fact : t -> ifact -> fact
(** Decode an interned fact back to values (read-only). *)

val find_fact : t -> fact -> ifact option
(** Read-only encoding: [None] when some value was never interned (then
    the fact cannot be present in any store sharing the dictionary).
    Frozen-safe. *)

val add : t -> string -> fact -> bool
(** [add db pred fact] inserts and returns [true] when the fact is new.
    Facts are stored in append order and the dedup probe is keyed on the
    fact array itself (no per-probe key allocation). Existing indexes on
    the predicate are maintained incrementally. Registered as the
    ["db_insert"] {!Kgm_resilience.Faults} site: with fault injection
    active it may raise [Kgm_resilience.Fault], which lands mid-round —
    the crash the checkpoint/resume tests provoke. *)

val mem : t -> string -> fact -> bool

val add_i : t -> string -> ifact -> bool
(** {!add} for an already-interned fact (no dictionary mutation). *)

val mem_i : t -> string -> ifact -> bool

val facts : t -> string -> fact list
(** Facts of a predicate in insertion order — the order {!add} first
    accepted them, which every probe and export preserves (the engine's
    determinism invariants depend on it); [[]] for unknown predicates. *)

val facts_i : t -> string -> ifact list
(** Interned facts of a predicate in insertion order. *)

val count : t -> string -> int
val total : t -> int

val predicates : t -> string list
(** Every predicate with at least one fact, sorted. *)

val lookup : t -> string -> int list -> Value.t list -> fact list
(** [lookup db pred positions key]: the facts whose values at
    [positions] (ascending) equal [key] pointwise, in insertion order.
    Builds a hash index for the position pattern on first use; the empty
    pattern is a full scan. Facts too short for the pattern never match.
    On a {!freeze}-frozen database a missing index is answered by a
    linear scan instead of being built (no mutation). A key containing
    a value absent from the dictionary matches nothing (and examines
    nothing) without touching the dictionary. *)

val lookup_i : t -> string -> int list -> int list -> ifact list
(** {!lookup} over interned facts and an id-encoded key. *)

val iter_matches :
  t -> string -> int list -> Value.t list -> (int -> fact -> unit) -> int
(** [iter_matches db pred positions key f] calls [f seq fact] on exactly
    the facts {!lookup} would return, in the same (insertion) order,
    without allocating a result list. [seq] is the fact's per-predicate
    insertion sequence number (dense from 0), strictly ascending over
    the calls — the engine's deterministic join-order sort key.

    Returns the number of facts {e examined} to answer the probe: the
    index-group length when an index serves it (or is built first, on an
    unfrozen store), but the predicate's whole cardinality on the frozen
    missing-index path, where the probe degrades to a linear scan. The
    engine charges this to its [rs_probes] counter, so un-prepared
    probe patterns show up as the full scans they really are. *)

val iter_matches_i :
  t -> string -> int list -> int list -> (int -> ifact -> unit) -> int
(** {!iter_matches} over interned facts and an id-encoded key — the
    engine's hot probe path (no per-fact decoding). *)

val remove_batch :
  ?on_remove:(string -> fact -> unit) -> t -> (string * fact) list -> int
(** [remove_batch t facts] deletes every listed (pred, fact) pair that
    is present; returns how many facts were removed (duplicates counted
    once). Affected predicate stores are rebuilt in one sweep: the
    survivors keep their relative insertion order, are renumbered
    densely from 0, and the predicate's index patterns are rebuilt over
    them — afterwards the store is indistinguishable from one into
    which only the survivors were ever inserted (in particular, a
    predicate emptied by the sweep vanishes from {!predicates}). This is the deletion
    primitive of the incremental maintenance layer
    ({!Kgm_vadalog.Incremental}); it is batch-oriented because DRed
    removes a whole overdeletion cone at once. [on_remove] is called
    once per fact actually removed, in sweep order — maintenance
    layers use it to keep derived state (aggregate group logs, caches)
    in step with the store. Raises [Invalid_argument] on a frozen
    database. *)

(** {1 Freezing (parallel read phases)}

    The restricted-chase engine evaluates rule bodies from several
    domains at once against a read-only snapshot. Freezing makes the
    store safe for concurrent readers: writes are rejected and
    {!lookup} never builds indexes. Use {!prepare_index} to build the
    indexes the workers will probe {e before} freezing. *)

val freeze : t -> unit
(** Reject writes ({!add} raises [Invalid_argument]) and make every
    read path mutation-free until {!thaw}. *)

val thaw : t -> unit
val is_frozen : t -> bool

val prepare_index : t -> string -> int list -> unit
(** [prepare_index db pred positions] eagerly builds the index for the
    position pattern (a no-op for the empty pattern, unknown predicates
    or an already-built index). *)

val indexed_patterns : t -> string -> int list list
(** The position patterns currently indexed for a predicate, sorted. *)

(** {1 Side-car index cache (frozen stores)}

    A frozen store answers a probe on an unprepared pattern with a full
    linear scan on {e every} call (it must not mutate itself — any
    number of domains may be reading it concurrently). An
    {!index_cache} amortizes that to one scan: the first probe builds
    the pattern's index {e outside} the store under the cache's mutex;
    later probes, from any domain, answer through the cached (then
    immutable) index lock-free. Only meaningful against a frozen store
    — the reasoning server keeps one cache per published epoch for
    query patterns first seen after the epoch was prepared. *)

type index_cache

val cache_create : unit -> index_cache

val cached_patterns : index_cache -> (string * int list) list
(** The (predicate, positions) patterns built into the cache so far,
    sorted. *)

val iter_matches_cached :
  index_cache -> t -> string -> int list -> Value.t list ->
  (int -> fact -> unit) -> int
(** {!iter_matches}, except that a missing index on a frozen store is
    built once into the cache (thread-safe) instead of degrading to a
    linear scan per probe; the examined count is then the postings
    length. Falls back to plain {!iter_matches} for empty patterns and
    unfrozen stores. *)

val copy : t -> t
(** Deep copy of the stores — the dictionary is {e shared}, so ids stay
    stable across copies. Facts are copied in insertion order, the
    source's index patterns are rebuilt eagerly, and the frozen flag
    carries over (a copy of a frozen snapshot is itself a read-only
    snapshot). *)

val pp : Format.formatter -> t -> unit
(** Every fact as [pred(v1, ..., vn).] lines, predicates sorted. *)
