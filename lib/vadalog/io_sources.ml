(** Resolution of [@input] annotations (paper, Sec. 4: "the atoms ...
    are populated from the input sources via automatically generated
    annotations of the form [@input(atom, query)]").

    Two source forms are resolved here; graph-store extraction (the
    Cypher-style queries MTV generates) is performed in-process by
    {!Kgm_metalog.Pg_bridge}, so those annotations are documentation of
    what a remote deployment would run.

    - ["csv:<path>"]: a headerless CSV file, one fact per row; each cell
      is parsed as int, float, boolean or string (in that order);
    - ["inline:<r1>;<r2>;..."]: the same format inline, rows separated
      by [';'] — convenient for tests and small fixtures.

    A malformed row — wrong arity w.r.t. the first row of the source, or
    an empty cell in a multi-column row — is a [Storage] error carrying
    the source and line number, or, under [~lenient:true], is skipped
    with a counted warning. Loading never crashes mid-run on bad data:
    it either reports the offending line or degrades gracefully. *)

open Kgm_common

type warning = {
  w_line : int;      (** 1-based row number within the source *)
  w_reason : string;
}

type source_report = {
  sr_pred : string;
  sr_source : string;  (** the annotation's source string *)
  sr_loaded : int;     (** new facts inserted *)
  sr_skipped : int;    (** malformed rows skipped (lenient mode only) *)
  sr_warnings : warning list;  (** per skipped row, in line order *)
}

let parse_cell cell =
  match Value.parse Value.TAny (String.trim cell) with
  | Some v -> v
  | None -> Value.String cell

(* A cell that is empty after trimming carries no value; in a
   multi-column row that is a malformed (truncated or shifted) record,
   not an empty string. Single-column sources keep accepting blank-ish
   rows as empty strings for backward compatibility. *)
let row_error cells =
  let arity = List.length cells in
  if arity > 1 && List.exists (fun c -> String.trim c = "") cells then
    Some "empty cell (unparsable value)"
  else None

let load_rows ?(lenient = false) ~source db pred rows =
  let loaded = ref 0 and skipped = ref 0 in
  let warnings = ref [] in
  let expected_arity = ref None in
  let malformed line reason =
    if lenient then begin
      incr skipped;
      warnings := { w_line = line; w_reason = reason } :: !warnings
    end
    else
      Kgm_error.storage_error_ctx
        [ ("source", source); ("line", string_of_int line); ("predicate", pred) ]
        "malformed row: %s" reason
  in
  List.iteri
    (fun i row ->
      let line = i + 1 in
      if String.trim row <> "" then begin
        let cells = String.split_on_char ',' row in
        match row_error cells with
        | Some reason -> malformed line reason
        | None -> (
            let arity = List.length cells in
            match !expected_arity with
            | Some a when a <> arity ->
                malformed line
                  (Printf.sprintf "arity %d, expected %d (from first row)"
                     arity a)
            | _ ->
                if !expected_arity = None then expected_arity := Some arity;
                if Database.add db pred (Array.of_list (List.map parse_cell cells))
                then incr loaded)
      end)
    rows;
  (!loaded, !skipped, List.rev !warnings)

let read_file path =
  Kgm_resilience.Faults.inject "source_read";
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let strip_prefix ~prefix s =
  let lp = String.length prefix in
  if String.length s >= lp && String.sub s 0 lp = prefix then
    Some (String.sub s lp (String.length s - lp))
  else None

(** Load every resolvable [@input] source into the database, one report
    per resolved annotation. Unresolvable sources (e.g. the Cypher
    extraction queries) are skipped. Raises [Kgm_error.Error]
    ([Storage]) when a csv file is unreadable, or — unless [lenient] —
    on a malformed row (wrong arity, unparsable value), with the source
    and line in the error context. Under [lenient], malformed rows are
    skipped and counted in the report's warnings. *)
let load_inputs_report ?lenient (program : Rule.program) db =
  List.filter_map
    (fun (a : Rule.annotation) ->
      match a.Rule.a_name, a.Rule.a_args with
      | "input", [ pred; source ] -> (
          let report rows =
            let loaded, skipped, warnings =
              load_rows ?lenient ~source db pred rows
            in
            Some
              { sr_pred = pred; sr_source = source; sr_loaded = loaded;
                sr_skipped = skipped; sr_warnings = warnings }
          in
          match strip_prefix ~prefix:"csv:" source with
          | Some path ->
              let doc =
                try read_file path
                with Sys_error m -> Kgm_error.storage_error "@input %s: %s" pred m
              in
              report (String.split_on_char '\n' doc)
          | None -> (
              match strip_prefix ~prefix:"inline:" source with
              | Some rows -> report (String.split_on_char ';' rows)
              | None -> None))
      | _ -> None)
    program.Rule.annotations

(** Strict [(predicate, facts loaded)] view of {!load_inputs_report} —
    the historical API. *)
let load_inputs (program : Rule.program) db =
  List.map
    (fun r -> (r.sr_pred, r.sr_loaded))
    (load_inputs_report program db)
