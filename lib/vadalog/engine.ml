(** The reasoning engine: a restricted chase over warded programs with
    stratified negation, stratified and monotonic aggregation, and
    semi-naive evaluation.

    The semantics follows Sec. 4 of the paper: for each satisfied body
    φ(t,t'), a tuple t'' of constants and fresh labeled nulls is invented
    so that ψ(t,t'') holds. Termination on warded programs is obtained
    with the {e restricted} chase: an existential head is only
    instantiated when no homomorphic image of it already exists in the
    database. The oblivious variant (no check) is kept for the ABL-1
    ablation, guarded by the fact budget. *)

open Kgm_common
module Journal = Kgm_telemetry.Journal
module J = Kgm_telemetry.Json

type options = {
  semi_naive : bool;        (** ABL-2: false = naive re-evaluation *)
  restricted_chase : bool;  (** ABL-1: false = oblivious chase *)
  isomorphic_nulls : bool;  (** match nulls up to renaming in the
                                satisfaction check (Vadalog-style
                                termination for warded programs) *)
  reorder_body : bool;      (** ABL-4: greedy join ordering of bodies *)
  provenance : bool;        (** retain the derivation support graph after
                                the chase (in {!stats.support}) so facts
                                can be explained; implied by passing
                                [?support] explicitly *)
  planner : bool;           (** cost-aware chase planning: skip delta
                                rounds of non-recursive strata, evaluate
                                delta-round bodies in selectivity order
                                (emission order restored by sorting, so
                                outputs are bit-for-bit those of the
                                unplanned engine) *)
  max_facts : int;          (** hard budget; exceeded -> Reason error *)
  max_rounds : int;
  check_wardedness : bool;  (** reject non-warded programs *)
  jobs : int;               (** domains evaluating semi-naive rounds;
                                results are identical for every value *)
  deadline_s : float option;
                            (** monotonic wall-clock budget for the run,
                                checked at round boundaries and inside
                                pool workers *)
  on_limit : [ `Raise | `Partial ];
                            (** policy when a budget (facts, rounds,
                                deadline) trips or the run is cancelled:
                                raise as before, or stop cleanly and
                                return a partial result tagged in
                                {!stats.stopped} *)
}

(* KGM_JOBS lets the whole test suite (and any embedding) exercise the
   parallel path without code changes; an explicit [jobs] wins. *)
let default_jobs =
  match Sys.getenv_opt "KGM_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | _ -> 1)
  | None -> 1

let default_options =
  { semi_naive = true;
    restricted_chase = true;
    isomorphic_nulls = true;
    reorder_body = false;
    provenance = false;
    planner = true;
    max_facts = 5_000_000;
    max_rounds = 1_000_000;
    check_wardedness = false;
    jobs = default_jobs;
    deadline_s = None;
    on_limit = `Raise }

type limit = [ `Cancelled | `Deadline | `Facts | `Rounds ]

let limit_name : limit -> string = function
  | `Cancelled -> "cancelled"
  | `Deadline -> "deadline"
  | `Facts -> "facts"
  | `Rounds -> "rounds"

(* Internal control-flow for limit trips. [clean] is true when the trip
   happened at a round boundary (or after a mid-round worker abort whose
   delta was restored), i.e. when the database state is exactly the end
   of a completed round and a final checkpoint may be written. A
   mid-merge fact-budget trip is not clean: facts of a half-merged round
   are present, so no checkpoint is written there (the partial result is
   still a deterministic prefix — the merge order is schedule-
   independent). *)
exception Stop_chase of limit * bool

(* ------------------------------------------------------------------ *)
(* Per-rule chase instrumentation. The counters are cheap enough (one
   int bump per event) to stay always-on; spans and histograms are only
   recorded into an enabled [?telemetry] collector. *)

type rule_stats = {
  rs_id : int;             (** position of the rule in the program *)
  rs_rule : string;        (** pretty-printed rule *)
  rs_label : string;       (** short label: head predicates, "p/2,q/3" *)
  rs_firings : int;        (** facts this rule added to the database *)
  rs_matches : int;        (** complete body matches (head instantiations
                               attempted) *)
  rs_probes : int;         (** candidate facts examined while joining *)
  rs_nulls : int;          (** labeled nulls invented *)
  rs_chase_hits : int;     (** restricted-chase checks finding an image
                               (invention suppressed) *)
  rs_chase_misses : int;   (** checks finding none (nulls invented) *)
  rs_time_s : float;       (** monotonic time spent evaluating the rule *)
}

(* ------------------------------------------------------------------ *)
(* Provenance: the first derivation recorded for each derived fact      *)

type derivation = {
  via_rule : string;                       (* pp of the firing rule *)
  parents : (string * Value.t array) list; (* body facts that matched *)
}

(* keyed consistently with Value.equal/Value.hash, like the fact store *)
module ProvTbl = Hashtbl.Make (struct
  type t = string * Value.t list

  let equal (p, k) (p', k') = String.equal p p' && List.equal Value.equal k k'
  let hash (p, k) = Hashtbl.hash (p, List.map Value.hash k)
end)

type provenance = derivation ProvTbl.t

let create_provenance () : provenance = ProvTbl.create 256

let explain (prov : provenance) pred fact =
  ProvTbl.find_opt prov (pred, Array.to_list fact)

let rec pp_derivation_tree (prov : provenance) ppf (pred, fact) =
  let pp_fact ppf (p, f) =
    Format.fprintf ppf "%s(%s)" p
      (String.concat ", " (Array.to_list (Array.map Value.to_string f)))
  in
  Format.fprintf ppf "@[<v 2>%a" pp_fact (pred, fact);
  (match explain prov pred fact with
   | Some d ->
       Format.fprintf ppf "  <- %s" d.via_rule;
       List.iter
         (fun (p, f) ->
           Format.fprintf ppf "@,%a" (pp_derivation_tree prov) (p, f))
         d.parents
   | None -> Format.fprintf ppf "  (ground)");
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Derivation support: the full multiset of derivations, for DRed.

   Provenance above records the FIRST derivation of each fact — enough
   to explain it, not enough to maintain it: delete-and-rederive needs
   every derivation (a fact whose first derivation dies may survive
   through an alternative one), the nulls each firing invented (a
   null's creating derivation dying retracts the null and everything
   carrying it), and the restricted-chase checks that SUPPRESSED an
   invention (when the homomorphic image that satisfied the check dies,
   the suppressed firing must be re-attempted — it may now invent).
   [Incremental] drives all of this; the structure is transparent in
   the interface because the maintenance layer walks and prunes it
   in place. *)

let fact_equal (a : Database.fact) (b : Database.fact) =
  Array.length a = Array.length b
  &&
  let n = Array.length a in
  let rec go i = i >= n || (Value.equal a.(i) b.(i) && go (i + 1)) in
  go 0

let compare_fact (a : Database.fact) (b : Database.fact) =
  let c = Int.compare (Array.length a) (Array.length b) in
  if c <> 0 then c
  else
    let n = Array.length a in
    let rec go i =
      if i >= n then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let parent_equal (p, f) (p', f') = String.equal p p' && fact_equal f f'

let compare_parent (p, f) (p', f') =
  let c = String.compare p p' in
  if c <> 0 then c else compare_fact f f'

(* parents are stored sorted and dedup'd: the trail order differs
   between the sequential and the worker evaluation paths, and DRed
   only needs the SET of body facts a firing consumed *)
let canonical_parents ps = List.sort_uniq compare_parent ps

type support_entry = {
  se_rule : int;  (* rule id within its program (informational) *)
  se_parents : (string * Database.fact) list;  (* canonical order *)
  se_nulls : int list;  (* labeled nulls this firing invented *)
}

type suppressed_firing = {
  sf_rule : int;
  sf_parents : (string * Database.fact) list;  (* canonical order *)
  sf_image : (string * Database.fact) list;
      (* the homomorphic image that satisfied the head check *)
}

type support = {
  sup_entries : support_entry list ref ProvTbl.t;
      (* derived fact -> its derivations, most recent first *)
  sup_children : (string * Database.fact) list ref ProvTbl.t;
      (* body fact -> head facts with an entry consuming it (the
         reverse edges the overdeletion cone walks); may hold
         duplicates and stale (pruned) children — consumers dedup *)
  sup_null_origin : (int, (string * Database.fact) list) Hashtbl.t;
      (* null id -> parents of its creating derivation *)
  sup_null_facts : (int, (string * Database.fact) list ref) Hashtbl.t;
      (* null id -> facts whose tuple carries the null *)
  mutable sup_suppressed : suppressed_firing list;
      (* reverse recording order *)
  sup_suppressed_keys :
    (int * (string * Value.t list) list, unit) Hashtbl.t;
}

let create_support () =
  { sup_entries = ProvTbl.create 1024;
    sup_children = ProvTbl.create 1024;
    sup_null_origin = Hashtbl.create 64;
    sup_null_facts = Hashtbl.create 64;
    sup_suppressed = [];
    sup_suppressed_keys = Hashtbl.create 64 }

let rec value_nulls acc = function
  | Value.Null k -> k :: acc
  | Value.List l -> List.fold_left value_nulls acc l
  | _ -> acc

let fact_nulls (f : Database.fact) =
  Array.fold_left value_nulls [] f |> List.sort_uniq Int.compare

let support_entries sup pred fact =
  match ProvTbl.find_opt sup.sup_entries (pred, Array.to_list fact) with
  | Some r -> !r
  | None -> []

let support_record sup ~rule_id ~parents ~nulls pred fact =
  let parents = canonical_parents parents in
  let key = (pred, Array.to_list fact) in
  let entries =
    match ProvTbl.find_opt sup.sup_entries key with
    | Some r -> r
    | None ->
        let r = ref [] in
        ProvTbl.add sup.sup_entries key r;
        r
  in
  let dup =
    List.exists
      (fun e ->
        e.se_rule = rule_id && List.equal parent_equal e.se_parents parents)
      !entries
  in
  if not dup then begin
    entries :=
      { se_rule = rule_id; se_parents = parents; se_nulls = nulls } :: !entries;
    List.iter
      (fun (pp, pf) ->
        let ck = (pp, Array.to_list pf) in
        match ProvTbl.find_opt sup.sup_children ck with
        | Some r -> r := (pred, fact) :: !r
        | None -> ProvTbl.add sup.sup_children ck (ref [ (pred, fact) ]))
      parents;
    List.iter
      (fun n ->
        if not (Hashtbl.mem sup.sup_null_origin n) then
          Hashtbl.add sup.sup_null_origin n parents)
      nulls
  end

(* called once per NEW fact: index which nulls its tuple carries *)
let support_index_fact sup pred fact =
  List.iter
    (fun n ->
      match Hashtbl.find_opt sup.sup_null_facts n with
      | Some r -> r := (pred, fact) :: !r
      | None -> Hashtbl.add sup.sup_null_facts n (ref [ (pred, fact) ]))
    (fact_nulls fact)

let support_record_suppressed sup ~rule_id ~parents ~image =
  let parents = canonical_parents parents in
  let key =
    (rule_id, List.map (fun (p, f) -> (p, Array.to_list f)) parents)
  in
  if not (Hashtbl.mem sup.sup_suppressed_keys key) then begin
    Hashtbl.add sup.sup_suppressed_keys key ();
    sup.sup_suppressed <-
      { sf_rule = rule_id; sf_parents = parents;
        sf_image = canonical_parents image }
      :: sup.sup_suppressed
  end

(* ------------------------------------------------------------------ *)
(* Run statistics                                                       *)

type stats = {
  rounds : int;
  new_facts : int;
  elapsed_s : float;
  delta_sizes : int list;  (** facts derived per semi-naive round, in
                               chronological order across strata *)
  nulls_invented : int;
  chase_hits : int;
  chase_misses : int;
  per_rule : rule_stats list;  (** program order *)
  stopped : limit option;  (** [Some l] when the run stopped early under
                               [on_limit:`Partial]; the result is a
                               deterministic prefix of the fixpoint *)
  support : support option;
                           (** the derivation support recorded during the
                               run, when [options.provenance] was on or a
                               [?support] was passed *)
}

let merge_stats a b =
  { rounds = a.rounds + b.rounds;
    new_facts = a.new_facts + b.new_facts;
    elapsed_s = a.elapsed_s +. b.elapsed_s;
    delta_sizes = a.delta_sizes @ b.delta_sizes;
    nulls_invented = a.nulls_invented + b.nulls_invented;
    chase_hits = a.chase_hits + b.chase_hits;
    chase_misses = a.chase_misses + b.chase_misses;
    per_rule = a.per_rule @ b.per_rule;
    stopped = (match a.stopped with Some _ -> a.stopped | None -> b.stopped);
    support =
      (match a.support with Some _ -> a.support | None -> b.support) }

let pp_rule_table ppf stats =
  let active =
    List.filter
      (fun r -> r.rs_matches > 0 || r.rs_probes > 0 || r.rs_firings > 0)
      stats.per_rule
  in
  let idle = List.length stats.per_rule - List.length active in
  let by_time =
    List.sort (fun a b -> compare b.rs_time_s a.rs_time_s) active
  in
  Format.fprintf ppf "%-28s %8s %8s %10s %6s %6s %6s %10s@."
    "rule" "fired" "matched" "probes" "nulls" "hits" "misses" "time s";
  Format.fprintf ppf "%s@." (String.make 90 '-');
  List.iter
    (fun r ->
      let label =
        if String.length r.rs_label <= 28 then r.rs_label
        else String.sub r.rs_label 0 25 ^ "..."
      in
      Format.fprintf ppf "%-28s %8d %8d %10d %6d %6d %6d %10.6f@."
        label r.rs_firings r.rs_matches r.rs_probes r.rs_nulls
        r.rs_chase_hits r.rs_chase_misses r.rs_time_s)
    by_time;
  if idle > 0 then
    Format.fprintf ppf "(%d rule%s with no activity omitted)@." idle
      (if idle = 1 then "" else "s");
  Format.fprintf ppf
    "total: %d new facts, %d rounds, %d nulls, %d/%d chase hits/misses, %.6fs@."
    stats.new_facts stats.rounds stats.nulls_invented stats.chase_hits
    stats.chase_misses stats.elapsed_s;
  match stats.stopped with
  | Some l ->
      Format.fprintf ppf
        "INCOMPLETE: stopped on %s after %d rounds (partial fixpoint prefix)@."
        (limit_name l) stats.rounds
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Bindings with trail-based backtracking                               *)

(* Bindings map variables to interned value ids (possibly a worker's
   negative scratch id, see below) — equality checks on the hot join
   path are int compares. *)
type env = {
  tbl : (string, int) Hashtbl.t;
  mutable trail : string list;
}

let env_create () = { tbl = Hashtbl.create 32; trail = [] }

let env_mark env = List.length env.trail

let env_undo env mark =
  while List.length env.trail > mark do
    match env.trail with
    | v :: rest ->
        Hashtbl.remove env.tbl v;
        env.trail <- rest
    | [] -> ()
  done

let env_bind env v value =
  Hashtbl.replace env.tbl v value;
  env.trail <- v :: env.trail

let env_lookup env v = Hashtbl.find_opt env.tbl v

(* ------------------------------------------------------------------ *)
(* Aggregation state (persists across rounds within a run)              *)

module KeyTbl = Database.KeyTbl
module IKeyTbl = Database.IKeyTbl

type group_state = {
  seen : unit KeyTbl.t;  (* contributor/dedup keys *)
  mutable acc : Value.t option;
  mutable n : int;
}

type agg_state = group_state KeyTbl.t

(* Counting-maintenance observers: a maintenance layer listening on
   [?on_agg] sees every distinct monotonic-aggregate contribution (with
   the body facts it came from) and every head fact a group fired —
   including re-derivations of facts already present. That log is what
   lets DRed decrement group totals on retraction instead of falling
   back to a full re-chase. *)
type agg_event =
  | Agg_contrib of {
      ac_rule : int;                 (* recording id of the aggregate rule *)
      ac_group : Value.t list;       (* group key (group_vars order) *)
      ac_key : Value.t list;         (* contributor dedup key *)
      ac_weight : Value.t;           (* the aggregated value *)
      ac_parents : (string * Database.fact) list;
          (* body facts matched before the aggregate literal *)
    }
  | Agg_head of {
      ah_rule : int;
      ah_group : Value.t list;
      ah_pred : string;
      ah_fact : Database.fact;
    }

let agg_step op acc v =
  match op, acc with
  | Rule.Count, None -> Value.Int 1
  | Rule.Count, Some (Value.Int c) -> Value.Int (c + 1)
  | Rule.Count, Some a -> a
  | Rule.Sum, None -> v
  | Rule.Sum, Some a ->
      (match a, v with
       | Value.Int x, Value.Int y -> Value.Int (x + y)
       | _ ->
           (match Value.as_float a, Value.as_float v with
            | Some x, Some y -> Value.Float (x +. y)
            | _ -> Kgm_error.reason_error "sum over non-numeric values"))
  | Rule.Prod, None -> v
  | Rule.Prod, Some a ->
      (match Value.as_float a, Value.as_float v with
       | Some x, Some y -> Value.Float (x *. y)
       | _ -> Kgm_error.reason_error "prod over non-numeric values")
  | Rule.Min, None -> v
  | Rule.Min, Some a -> if Value.compare v a < 0 then v else a
  | Rule.Max, None -> v
  | Rule.Max, Some a -> if Value.compare v a > 0 then v else a
  | Rule.Pack, None -> Value.List [ v ]
  | Rule.Pack, Some (Value.List l) -> Value.List (l @ [ v ])
  | Rule.Pack, Some a -> Value.List [ a; v ]

(* ------------------------------------------------------------------ *)
(* Prepared rules.

   Rule bodies and heads are compiled against the database's dictionary
   at preparation time: constants become interned ids, so matching a
   literal against stored facts never touches a boxed value. *)

type cterm = CConst of int | CVar of string

type catom = { ca_pred : string; ca_args : cterm array }

type clit =
  | CPos of catom
  | CNeg of catom
  | CCond of Expr.t
  | CAssign of string * Expr.t
  | CAgg of Rule.aggregate

let compile_atom dict (a : Rule.atom) =
  { ca_pred = a.Rule.pred;
    ca_args =
      Array.of_list
        (List.map
           (function
             | Term.Const v -> CConst (Intern.intern dict v)
             | Term.Var x -> CVar x)
           a.Rule.args) }

let compile_lit dict = function
  | Rule.Pos a -> CPos (compile_atom dict a)
  | Rule.Neg a -> CNeg (compile_atom dict a)
  | Rule.Cond e -> CCond e
  | Rule.Assign (x, e) -> CAssign (x, e)
  | Rule.Agg g -> CAgg g

type prepared = {
  rule : Rule.rule;
  rule_id : int;
  rid : int;
  (* recording id: the rule id written into support entries, suppressed
     firings and aggregate state. Equal to [rule_id] except when a
     maintenance layer re-runs a slice of a larger pipeline and needs
     the recorded ids to stay stable across slices ([?rule_ids]). *)
  head_label : string;  (* "pred/arity" of every head atom, joined *)
  existentials : string list;
  (* for every monotonic/stratified aggregate literal (at most one
     stratified supported), the variables forming the group key *)
  group_vars : (int * string list) list;  (* literal index -> group vars *)
  strat_agg_index : int option;           (* index of a Stratified Agg literal *)
  has_agg : bool;          (* any aggregate literal: evaluation order
                              matters, so the rule never runs on the
                              worker pool *)
  needed_vars : string array;
  (* the non-existential head variables — everything the merge phase
     needs to re-fire a candidate (ground the head, run the
     restricted-chase check, invent nulls for the rest) *)
  index_patterns : (string * int list) list;
  (* for each positive body literal, the bound-position pattern its
     written-order evaluation will probe: constants plus variables
     bound by an earlier literal. Built eagerly by the parallel path
     before freezing the database. A pattern the prediction misses only
     costs a linear scan on the frozen store, never a crash. *)
  cbody : clit list;   (* body compiled against the dictionary *)
  cheads : catom list; (* head atoms, likewise *)
}

let vars_after body i =
  let rest = List.filteri (fun j _ -> j > i) body in
  List.sort_uniq String.compare
    (List.concat_map
       (function
         | Rule.Pos a | Rule.Neg a -> Rule.atom_vars a
         | Rule.Cond e -> Expr.vars e
         | Rule.Assign (x, e) -> x :: Expr.vars e
         | Rule.Agg g -> (g.Rule.result :: g.Rule.contributors) @ Expr.vars g.Rule.weight)
       rest)

let bound_before body i =
  let prefix = List.filteri (fun j _ -> j < i) body in
  Rule.body_vars prefix

(* Greedy join ordering: bound-variable count (plus constants) first,
   then fewer free variables; non-atom literals run as soon as their
   inputs are bound. Rules with aggregates are left untouched — their
   semantics depend on the written literal order. *)
let reorder_rule ?db (r : Rule.rule) =
  let has_agg =
    List.exists (function Rule.Agg _ -> true | _ -> false) r.Rule.body
  in
  if has_agg then r
  else begin
    let items = Array.of_list r.Rule.body in
    let n = Array.length items in
    let used = Array.make n false in
    let bound = Hashtbl.create 16 in
    let is_bound v = Hashtbl.mem bound v in
    let result = ref [] in
    let add i =
      used.(i) <- true;
      List.iter
        (fun v -> Hashtbl.replace bound v ())
        (Rule.literal_body_bound items.(i));
      result := items.(i) :: !result
    in
    let ready = function
      | Rule.Pos _ | Rule.Agg _ -> false
      | Rule.Neg a -> List.for_all is_bound (Rule.atom_vars a)
      | Rule.Cond e -> List.for_all is_bound (Expr.vars e)
      | Rule.Assign (x, e) ->
          List.for_all (fun v -> v = x || is_bound v) (Expr.vars e)
    in
    let flush_ready () =
      let progress = ref true in
      while !progress do
        progress := false;
        for i = 0 to n - 1 do
          if (not used.(i)) && ready items.(i) then begin
            add i;
            progress := true
          end
        done
      done
    in
    flush_ready ();
    let continue = ref true in
    while !continue do
      let best = ref (-1) in
      let best_score = ref (min_int, min_int, min_int) in
      for i = n - 1 downto 0 do
        if not used.(i) then
          match items.(i) with
          | Rule.Pos a ->
              let anchors =
                List.fold_left
                  (fun acc t ->
                    match t with
                    | Term.Const _ -> acc + 1
                    | Term.Var v -> if is_bound v then acc + 1 else acc)
                  0 a.Rule.args
              in
              (* estimated fan-out: an unanchored atom scans the whole
                 predicate; prefer smaller base cardinalities *)
              let card =
                match db with
                | Some db -> Database.count db a.Rule.pred
                | None -> 0
              in
              let free = List.length a.Rule.args - anchors in
              let score = ((if anchors > 0 then 1 else 0), -free, -card) in
              (* >= so earlier literals win ties (stability) *)
              if score >= !best_score then begin
                best_score := score;
                best := i
              end
          | _ -> ()
      done;
      if !best >= 0 then begin
        add !best;
        flush_ready ()
      end
      else continue := false
    done;
    (* leftovers (unsafe rules are rejected elsewhere) keep their order *)
    for i = 0 to n - 1 do
      if not used.(i) then add i
    done;
    { r with Rule.body = List.rev !result }
  end

let prepare ?rid dict rule_id (r : Rule.rule) =
  let hvars = Rule.head_vars r.Rule.head in
  let group_vars =
    List.concat
      (List.mapi
         (fun i lit ->
           match lit with
           | Rule.Agg g ->
               let before = bound_before r.Rule.body i in
               let after = vars_after r.Rule.body i in
               let used v = List.mem v hvars || List.mem v after in
               let gv =
                 List.filter
                   (fun v ->
                     used v
                     && (not (List.mem v g.Rule.contributors))
                     && v <> g.Rule.result)
                   before
               in
               [ (i, gv) ]
           | _ -> [])
         r.Rule.body)
  in
  let strat_agg_index =
    let rec find i = function
      | [] -> None
      | Rule.Agg g :: _ when g.Rule.mode = Rule.Stratified -> Some i
      | _ :: rest -> find (i + 1) rest
    in
    find 0 r.Rule.body
  in
  (match strat_agg_index with
   | Some i ->
       let extra =
         List.exists
           (function Rule.Agg g -> g.Rule.mode = Rule.Stratified | _ -> false)
           (List.filteri (fun j _ -> j > i) r.Rule.body)
       in
       if extra then
         Kgm_error.validate_error "at most one stratified aggregate per rule"
   | None -> ());
  let existentials = Rule.existential_vars r in
  let has_agg =
    List.exists (function Rule.Agg _ -> true | _ -> false) r.Rule.body
  in
  let needed_vars =
    Array.of_list
      (List.filter
         (fun v -> not (List.mem v existentials))
         (Rule.head_vars r.Rule.head))
  in
  let index_patterns =
    let bound = Hashtbl.create 16 in
    List.concat_map
      (fun lit ->
        let here =
          match lit with
          | Rule.Pos (a : Rule.atom) ->
              let pattern =
                List.mapi
                  (fun i t ->
                    match t with
                    | Term.Const _ -> Some i
                    | Term.Var x ->
                        if Hashtbl.mem bound x then Some i else None)
                  a.Rule.args
                |> List.filter_map Fun.id
              in
              if pattern = [] then [] else [ (a.Rule.pred, pattern) ]
          | _ -> []
        in
        List.iter
          (fun v -> Hashtbl.replace bound v ())
          (Rule.literal_body_bound lit);
        here)
      r.Rule.body
  in
  { rule = r;
    rule_id;
    rid = (match rid with Some id -> id | None -> rule_id);
    head_label =
      String.concat ","
        (List.map
           (fun (a : Rule.atom) ->
             Printf.sprintf "%s/%d" a.Rule.pred (List.length a.Rule.args))
           r.Rule.head);
    existentials;
    group_vars;
    strat_agg_index;
    has_agg;
    needed_vars;
    index_patterns;
    cbody = List.map (compile_lit dict) r.Rule.body;
    cheads = List.map (compile_atom dict) r.Rule.head }

(* ------------------------------------------------------------------ *)

(* per-rule mutable counters, aggregated into [rule_stats] at the end *)
type rule_ctr = {
  mutable c_firings : int;
  mutable c_matches : int;
  mutable c_probes : int;
  mutable c_nulls : int;
  mutable c_hits : int;
  mutable c_misses : int;
  mutable c_time : float;
}

let fresh_ctr () =
  { c_firings = 0; c_matches = 0; c_probes = 0; c_nulls = 0; c_hits = 0;
    c_misses = 0; c_time = 0. }

type run_state = {
  db : Database.t;
  opts : options;
  mutable added : int;
  agg_states : (int, agg_state) Hashtbl.t; (* rid -> state *)
  prov : provenance option;
  sup : support option;  (* full derivation support (DRed maintenance) *)
  on_agg : (agg_event -> unit) option;
  (* group keys of the aggregate literals on the current evaluation
     path, innermost first — lets [fire] attribute head facts to the
     group that produced them. Aggregate rules only run sequentially
     (has_agg), so a plain mutable field is safe. *)
  mutable agg_notes : (int * Value.t list) list;
  (* facts matched so far on the current evaluation path. The scan path
     pushes/pops once per matched candidate at EVERY join level — tens
     of millions of times per round on probe-heavy joins — so it uses a
     manually-grown stack instead of list cells: a cons here would churn
     the minor heap enough to show up as whole-run overhead. *)
  mutable trail_preds : string array;
  mutable trail_facts : Database.ifact array;
  mutable trail_len : int;
  (* worker-merge path only: parents restored wholesale from a
     collected candidate (the stack is empty there) *)
  mutable fact_trail : (string * Database.ifact) list;
  (* worker-local ids for values first computed on this domain while
     the dictionary is frozen (Assign results, mostly); re-interned
     sequentially at merge *)
  sc : Intern.Scratch.s;
  tele : Kgm_telemetry.t;
  jr : Kgm_telemetry.Journal.t;
  ctrs : rule_ctr array;       (* indexed by rule_id *)
  mutable cur : rule_ctr;      (* counters of the rule being evaluated *)
  mutable round : int;         (* current fixpoint round (for errors) *)
  mutable trip_rule : string option;
                               (* rule that tripped the fact budget, for
                                  the error context under `Raise *)
}

let trail_push st pred fact =
  let n = st.trail_len in
  if n = Array.length st.trail_preds then begin
    let cap = if n = 0 then 8 else 2 * n in
    let tp = Array.make cap "" and tf = Array.make cap [||] in
    Array.blit st.trail_preds 0 tp 0 n;
    Array.blit st.trail_facts 0 tf 0 n;
    st.trail_preds <- tp;
    st.trail_facts <- tf
  end;
  st.trail_preds.(n) <- pred;
  st.trail_facts.(n) <- fact;
  st.trail_len <- n + 1

(* the current evaluation path's matched facts, most recent first (the
   order the old cons-built trail had); only materialized on a complete
   body match, where a recorder actually consumes it *)
let trail_parents st =
  if st.trail_len = 0 then st.fact_trail
  else begin
    let acc = ref [] in
    for i = 0 to st.trail_len - 1 do
      acc := (st.trail_preds.(i), st.trail_facts.(i)) :: !acc
    done;
    !acc
  end

(* Labeled nulls are drawn from a process-wide counter: successive runs
   over a shared database (e.g. the two phases of Algorithm 2) must
   never re-issue a null already present in the facts. Atomic so the
   invariant survives embeddings that run engines from several domains;
   within one run only the sequential merge phase invents nulls, which
   is what makes the numbering independent of [options.jobs]. *)
let global_null_counter = Atomic.make 0

(* [fresh_null st] returns the interned id of the fresh null and its
   label. Only called from sequential sections (round 0, the merge
   sweep), where appending to the dictionary is legal. *)
let fresh_null st =
  st.cur.c_nulls <- st.cur.c_nulls + 1;
  let n = Atomic.fetch_and_add global_null_counter 1 + 1 in
  (Intern.intern (Database.dict st.db) (Value.Null n), n)

(* Id handling. Non-negative ids live in the shared dictionary;
   negative ids are worker-local scratch entries (values a worker
   computed that the frozen dictionary does not hold). [value_id]
   encodes a computed value: a direct intern when the store is live
   (sequential paths — deterministic id order), a read-only find plus
   scratch fallback when frozen (worker paths — no mutation). A scratch
   id can never spuriously equal a dictionary id, and two ids are equal
   iff their values are: scratch entries are only created for values
   absent from the dictionary, and both tables dedup. *)
let resolve_id st id =
  if id >= 0 then Intern.resolve (Database.dict st.db) id
  else Intern.Scratch.resolve st.sc id

let value_id st v =
  if Database.is_frozen st.db then
    match Intern.find (Database.dict st.db) v with
    | Some id -> id
    | None -> Intern.Scratch.id st.sc v
  else Intern.intern (Database.dict st.db) v

let id_is_null st id =
  if id >= 0 then Intern.is_null (Database.dict st.db) id
  else Value.is_null (Intern.Scratch.resolve st.sc id)

let resolve_ifact st (f : Database.ifact) : Database.fact =
  Array.map (resolve_id st) f

let resolve_parents st ps =
  List.map (fun (p, f) -> (p, resolve_ifact st f)) ps

(* variable resolver for expression evaluation over id bindings *)
let env_value st env x = Option.map (resolve_id st) (env_lookup env x)

let cterm_id env = function
  | CConst id -> Some id
  | CVar x -> env_lookup env x

(* The per-round delta a rule evaluation ranges over, with a lazily
   built hash index per (arity, bound-positions) pattern. A probe's
   group holds exactly the facts the old linear filter (arity guard
   first, then pointwise equality at the bound positions) would have
   kept, in the same chronological order — probe counters and match
   order are unchanged, only the per-probe scan of the whole delta goes
   away. Each entry carries the fact's index within the round's delta,
   the delta component of the emission-order sort key. *)
type delta_group = {
  dg_facts : (int * Database.ifact) list;  (* (delta index, fact), chronological *)
  dg_cache : (int * int list, (int * Database.ifact) list ref IKeyTbl.t) Hashtbl.t;
}

let delta_group ?(offset = 0) facts =
  { dg_facts = List.mapi (fun i f -> (offset + i, f)) facts;
    dg_cache = Hashtbl.create 4 }

let dg_lookup dg ~arity positions key =
  let ck = (arity, positions) in
  let tbl =
    match Hashtbl.find_opt dg.dg_cache ck with
    | Some t -> t
    | None ->
        let t = IKeyTbl.create 32 in
        List.iter
          (fun ((_, f) as entry) ->
            if Array.length f = arity then begin
              (* positions all < arity: they index a literal of this arity *)
              let k = List.map (fun i -> f.(i)) positions in
              match IKeyTbl.find_opt t k with
              | Some r -> r := entry :: !r
              | None -> IKeyTbl.add t k (ref [ entry ])
            end)
          dg.dg_facts;
        IKeyTbl.iter (fun _ r -> r := List.rev !r) t;
        Hashtbl.add dg.dg_cache ck t;
        t
  in
  match IKeyTbl.find_opt tbl key with Some r -> !r | None -> []

(* Enumerate facts matching atom under env; call k for each extension.
   All comparisons are id equality. Candidate lists are materialized
   before iterating (the continuation may add facts to the live store
   mid-iteration; a snapshot keeps the enumeration stable, exactly as
   the pre-interning code did). *)
let match_atom st env (a : catom) ~facts_override k =
  let args = a.ca_args in
  let n = Array.length args in
  (* bound positions and their key ids *)
  let positions = ref [] and key = ref [] in
  for i = n - 1 downto 0 do
    match cterm_id env args.(i) with
    | Some id ->
        positions := i :: !positions;
        key := id :: !key
    | None -> ()
  done;
  let each (fact : Database.ifact) =
    if Array.length fact = n then begin
      let mark = env_mark env in
      let ok = ref true in
      (try
         for i = 0 to n - 1 do
           match args.(i) with
           | CConst id -> if id <> fact.(i) then raise Exit
           | CVar x ->
               (match env_lookup env x with
                | Some id -> if id <> fact.(i) then raise Exit
                | None -> env_bind env x fact.(i))
         done
       with Exit -> ok := false);
      if !ok then begin
        if Option.is_some st.prov || Option.is_some st.sup then begin
          trail_push st a.ca_pred fact;
          k ();
          st.trail_len <- st.trail_len - 1
        end
        else k ()
      end;
      env_undo env mark
    end
  in
  match facts_override with
  | Some dg ->
      let group = dg_lookup dg ~arity:n !positions !key in
      st.cur.c_probes <- st.cur.c_probes + List.length group;
      List.iter (fun (_, fact) -> each fact) group
  | None ->
      let candidates = Database.lookup_i st.db a.ca_pred !positions !key in
      st.cur.c_probes <- st.cur.c_probes + List.length candidates;
      List.iter each candidates

let ground_atom env (a : catom) : Database.ifact =
  Array.map
    (fun t ->
      match cterm_id env t with
      | Some id -> id
      | None -> Kgm_error.reason_error "unbound variable in ground_atom")
    a.ca_args

(* Does the head have a homomorphic image in the database under env?
   Backtracking over head atoms; existential vars accumulate bindings.

   With [isomorphic_nulls] (the default, mirroring the Vadalog System's
   termination strategy for warded programs), labeled nulls bound in the
   body are matched {e up to consistent renaming onto other nulls}: the
   head is considered satisfied when an image exists in which each body
   null maps to some null, the same one at every occurrence. This is
   what makes chases like [mgr(X,M) :- emp(X). emp(M) :- mgr(X,M).]
   terminate while preserving certain answers over null-free facts. *)
(* Returns [Some image] — the database facts forming the satisfying
   homomorphic image, one per head atom — or [None] when no image
   exists. The maintenance layer records the image with the suppressed
   firing: should any of its facts later be retracted, the firing is
   re-attempted (and may then invent). *)
let head_satisfied st env (prep : prepared) =
  let ex_env : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let null_map : (int, int) Hashtbl.t = Hashtbl.create 4 in
  let iso = st.opts.isomorphic_nulls in
  let rec go = function
    | [] -> Some []
    | (a : catom) :: rest ->
        let args = a.ca_args in
        let n = Array.length args in
        (* [`Rigid id]: the image is the term's id itself (constants,
           non-null body bindings, and already-chosen images of
           existentials); [`Flex id]: a body-bound null, flexible up to
           the consistent renaming in [null_map]; [`Free x]: an
           existential without an image yet. *)
        let requirement t =
          match t with
          | CConst id -> if iso && id_is_null st id then `Flex id else `Rigid id
          | CVar x ->
              (match env_lookup env x with
               | Some id -> if iso && id_is_null st id then `Flex id else `Rigid id
               | None ->
                   (match Hashtbl.find_opt ex_env x with
                    | Some id -> `Rigid id
                    | None -> `Free x))
        in
        (* index only on rigid required ids and already-mapped nulls *)
        let positions = ref [] and key = ref [] in
        for i = n - 1 downto 0 do
          match requirement args.(i) with
          | `Rigid id ->
              positions := i :: !positions;
              key := id :: !key
          | `Flex id ->
              (match Hashtbl.find_opt null_map id with
               | Some mapped ->
                   positions := i :: !positions;
                   key := mapped :: !key
               | None -> ())
          | `Free _ -> ()
        done;
        let candidates = Database.lookup_i st.db a.ca_pred !positions !key in
        let rec try_cands = function
          | [] -> None
          | (fact : Database.ifact) :: more ->
              if Array.length fact <> n then try_cands more
              else begin
                let new_ex = ref [] and new_nulls = ref [] in
                let ok = ref true in
                (try
                   for i = 0 to n - 1 do
                     match requirement args.(i) with
                     | `Rigid id -> if id <> fact.(i) then raise Exit
                     | `Flex id ->
                         (* consistent renaming: one image per null *)
                         (match Hashtbl.find_opt null_map id with
                          | Some mapped ->
                              if mapped <> fact.(i) then raise Exit
                          | None ->
                              Hashtbl.add null_map id fact.(i);
                              new_nulls := id :: !new_nulls)
                     | `Free x ->
                         Hashtbl.add ex_env x fact.(i);
                         new_ex := x :: !new_ex
                   done
                 with Exit -> ok := false);
                match (if !ok then go rest else None) with
                | Some tl -> Some ((a.ca_pred, fact) :: tl)
                | None ->
                    List.iter (Hashtbl.remove ex_env) !new_ex;
                    List.iter (Hashtbl.remove null_map) !new_nulls;
                    try_cands more
              end
        in
        try_cands candidates
  in
  go prep.cheads

let fire st env (prep : prepared) ~on_new =
  st.cur.c_matches <- st.cur.c_matches + 1;
  let budget_check () =
    if Database.total st.db > st.opts.max_facts then begin
      (* trip mid-merge: not a clean round boundary, no checkpoint. The
         error (or tagged partial result) is produced by [run]'s outer
         handler, which keeps the firing rule for the context. *)
      st.trip_rule <- Some (Format.asprintf "%a" Rule.pp_rule prep.rule);
      raise (Stop_chase (`Facts, false))
    end
  in
  let record pred (fact : Database.fact) =
    match st.prov with
    | Some prov ->
        let key = (pred, Array.to_list fact) in
        if not (ProvTbl.mem prov key) then
          ProvTbl.add prov key
            { via_rule = Format.asprintf "%a" Rule.pp_rule prep.rule;
              parents = List.rev (resolve_parents st (trail_parents st)) }
    | None -> ()
  in
  (* support records EVERY derivation — including re-derivations of a
     fact already present: DRed needs the alternatives a fact may
     survive a retraction through *)
  let record_support nulls pred fact =
    match st.sup with
    | Some sup ->
        support_record sup ~rule_id:prep.rid
          ~parents:(resolve_parents st (trail_parents st)) ~nulls pred fact
    | None -> ()
  in
  let notify_agg pred fact =
    match st.on_agg with
    | Some f when st.agg_notes <> [] ->
        List.iter
          (fun (rid, group) ->
            f (Agg_head { ah_rule = rid; ah_group = group;
                          ah_pred = pred; ah_fact = fact }))
          st.agg_notes
    | _ -> ()
  in
  let add_head nulls (a : catom) =
    let ifact = ground_atom env a in
    if Database.add_i st.db a.ca_pred ifact then begin
      st.added <- st.added + 1;
      st.cur.c_firings <- st.cur.c_firings + 1;
      budget_check ();
      (* maintenance layers stay value-based: resolve once, at the
         recording boundary, off the hot dedup path *)
      if Option.is_some st.prov || Option.is_some st.sup
         || Option.is_some st.on_agg
      then begin
        let fact = resolve_ifact st ifact in
        record a.ca_pred fact;
        (match st.sup with
         | Some sup -> support_index_fact sup a.ca_pred fact
         | None -> ());
        record_support nulls a.ca_pred fact;
        notify_agg a.ca_pred fact
      end;
      on_new a.ca_pred ifact
    end
    else if Option.is_some st.sup || Option.is_some st.on_agg then begin
      let fact = resolve_ifact st ifact in
      record_support nulls a.ca_pred fact;
      notify_agg a.ca_pred fact
    end
  in
  if prep.existentials = [] then List.iter (add_head []) prep.cheads
  else begin
    let satisfied =
      st.opts.restricted_chase
      &&
      match head_satisfied st env prep with
      | Some image ->
          st.cur.c_hits <- st.cur.c_hits + 1;
          (match st.sup with
           | Some sup ->
               support_record_suppressed sup ~rule_id:prep.rid
                 ~parents:(resolve_parents st (trail_parents st))
                 ~image:(resolve_parents st image)
           | None -> ());
          true
      | None ->
          st.cur.c_misses <- st.cur.c_misses + 1;
          false
    in
    if not satisfied then begin
      let mark = env_mark env in
      let invented =
        List.map
          (fun x ->
            let id, k = fresh_null st in
            env_bind env x id;
            k)
          prep.existentials
      in
      List.iter (add_head invented) prep.cheads;
      env_undo env mark
    end
  end

(* Evaluate literals from position [i]; [delta] optionally designates a
   literal index whose atom must range over the given fact list.
   [emit] is called (under the complete bindings) once per satisfied
   body: the sequential path fires the head on the spot, the worker
   path records a candidate for the merge phase. *)
let rec eval_literals st env (prep : prepared) body i ~delta ~emit =
  match body with
  | [] -> emit ()
  | lit :: rest -> (
      let continue () = eval_literals st env prep rest (i + 1) ~delta ~emit in
      match lit with
      | CPos a ->
          let facts_override =
            match delta with
            | Some (j, fl) when j = i -> Some fl
            | _ -> None
          in
          match_atom st env a ~facts_override (fun () -> continue ())
      | CNeg a ->
          let fact = ground_atom env a in
          (* a fact holding a worker-local scratch id cannot be stored:
             [mem_i] is false, i.e. the negated atom correctly fails to
             block *)
          if not (Database.mem_i st.db a.ca_pred fact) then continue ()
      | CCond e -> if Expr.truthy_fn (env_value st env) e then continue ()
      | CAssign (x, e) ->
          let v = Expr.eval_fn (env_value st env) e in
          let id = value_id st v in
          (match env_lookup env x with
           | Some id' -> if id = id' then continue ()
           | None ->
               let mark = env_mark env in
               env_bind env x id;
               continue ();
               env_undo env mark)
      | CAgg g when g.Rule.mode = Rule.Monotonic ->
          (* aggregate state is checkpointed, so its keys stay
             value-level; aggregates only run on the sequential path *)
          let gv = List.assoc i prep.group_vars in
          let group_key =
            List.map
              (fun v ->
                match env_value st env v with
                | Some value -> value
                | None -> Kgm_error.reason_error "unbound group variable %s" v)
              gv
          in
          let contrib_key =
            List.map
              (fun v ->
                match env_value st env v with
                | Some value -> value
                | None -> Kgm_error.reason_error "unbound contributor %s" v)
              g.Rule.contributors
          in
          let state =
            match Hashtbl.find_opt st.agg_states prep.rid with
            | Some s -> s
            | None ->
                let s = KeyTbl.create 64 in
                Hashtbl.add st.agg_states prep.rid s;
                s
          in
          let group =
            match KeyTbl.find_opt state group_key with
            | Some gstate -> gstate
            | None ->
                let gstate = { seen = KeyTbl.create 16; acc = None; n = 0 } in
                KeyTbl.add state group_key gstate;
                gstate
          in
          if not (KeyTbl.mem group.seen contrib_key) then begin
            KeyTbl.add group.seen contrib_key ();
            let w = Expr.eval_fn (env_value st env) g.Rule.weight in
            group.acc <- Some (agg_step g.Rule.op group.acc w);
            group.n <- group.n + 1;
            (match st.on_agg with
             | Some f ->
                 f (Agg_contrib
                      { ac_rule = prep.rid; ac_group = group_key;
                        ac_key = contrib_key; ac_weight = w;
                        ac_parents = resolve_parents st (trail_parents st) })
             | None -> ());
            let mark = env_mark env in
            env_bind env g.Rule.result (value_id st (Option.get group.acc));
            (match st.on_agg with
             | Some _ ->
                 st.agg_notes <- (prep.rid, group_key) :: st.agg_notes;
                 Fun.protect
                   ~finally:(fun () -> st.agg_notes <- List.tl st.agg_notes)
                   continue
             | None -> continue ());
            env_undo env mark
          end
      | CAgg _ ->
          Kgm_error.reason_error
            "stratified aggregate not handled inline (engine bug)")

(* Stratified-aggregate rule: enumerate prefix, group, then run suffix
   per group with only the group variables (plus result) in scope. *)
let eval_stratified st (prep : prepared) agg_i ~on_new =
  let body = prep.cbody in
  let prefix = List.filteri (fun j _ -> j < agg_i) body in
  let suffix = List.filteri (fun j _ -> j > agg_i) body in
  let g =
    match List.nth body agg_i with
    | CAgg g -> g
    | _ -> assert false
  in
  let gv = List.assoc agg_i prep.group_vars in
  (* set-semantics dedup key: one contribution per distinct binding of
     the NAMED prefix variables. Variables starting with '_' (the
     parser's anonymous "_" and MTV's generated slot fillers) denote
     don't-care positions of the same graph element: two facts that
     differ only there must not contribute twice. *)
  let prefix_vars =
    List.filter
      (fun v -> not (String.length v > 0 && v.[0] = '_'))
      (Rule.body_vars
         (List.filteri (fun j _ -> j < agg_i) prep.rule.Rule.body))
  in
  let groups : agg_state = KeyTbl.create 64 in
  let rec enumerate env lits i k =
    match lits with
    | [] -> k ()
    | lit :: rest -> (
        let continue () = enumerate env rest (i + 1) k in
        match lit with
        | CPos a -> match_atom st env a ~facts_override:None (fun () -> continue ())
        | CNeg a ->
            let fact = ground_atom env a in
            if not (Database.mem_i st.db a.ca_pred fact) then continue ()
        | CCond e -> if Expr.truthy_fn (env_value st env) e then continue ()
        | CAssign (x, e) ->
            let v = Expr.eval_fn (env_value st env) e in
            let id = value_id st v in
            (match env_lookup env x with
             | Some id' -> if id = id' then continue ()
             | None ->
                 let mark = env_mark env in
                 env_bind env x id;
                 continue ();
                 env_undo env mark)
        | CAgg _ -> Kgm_error.reason_error "nested aggregate")
  in
  let env = env_create () in
  enumerate env prefix 0 (fun () ->
      let group_key =
        List.map (fun v -> Option.get (env_value st env v)) gv
      in
      let dedup_key =
        if g.Rule.contributors <> [] then
          List.map (fun v -> Option.get (env_value st env v)) g.Rule.contributors
        else
          (* set semantics: one contribution per distinct prefix binding *)
          List.map
            (fun v -> Option.value ~default:(Value.Null 0) (env_value st env v))
            prefix_vars
      in
      let group =
        match KeyTbl.find_opt groups group_key with
        | Some gr -> gr
        | None ->
            let gr = { seen = KeyTbl.create 16; acc = None; n = 0 } in
            KeyTbl.add groups group_key gr;
            gr
      in
      if not (KeyTbl.mem group.seen dedup_key) then begin
        KeyTbl.add group.seen dedup_key ();
        let w = Expr.eval_fn (env_value st env) g.Rule.weight in
        group.acc <- Some (agg_step g.Rule.op group.acc w)
      end);
  (* per group: bind group vars + result, then run the suffix and head *)
  KeyTbl.iter
    (fun group_key group ->
      match group.acc with
      | None -> ()
      | Some acc ->
          let env = env_create () in
          List.iter2 (fun v value -> env_bind env v (value_id st value)) gv
            group_key;
          env_bind env g.Rule.result (value_id st acc);
          eval_literals st env prep suffix (agg_i + 1) ~delta:None
            ~emit:(fun () -> fire st env prep ~on_new))
    groups

(* ------------------------------------------------------------------ *)

let eval_rule st (prep : prepared) ~delta ~on_new =
  let ctr = st.ctrs.(prep.rule_id) in
  st.cur <- ctr;
  let t0 = Kgm_telemetry.Clock.now () in
  let before = st.added in
  (match prep.strat_agg_index with
   | Some agg_i ->
       if delta = None then eval_stratified st prep agg_i ~on_new
   | None ->
       let env = env_create () in
       eval_literals st env prep prep.cbody 0 ~delta
         ~emit:(fun () -> fire st env prep ~on_new));
  let t1 = Kgm_telemetry.Clock.now () in
  ctr.c_time <- ctr.c_time +. (t1 -. t0);
  if Kgm_telemetry.enabled st.tele then begin
    Kgm_telemetry.observe st.tele "engine.rule_eval_s" (t1 -. t0);
    (* one span per rule evaluation that actually fired; quiet
       evaluations stay out of the trace to keep it readable *)
    if st.added > before then
      Kgm_telemetry.record_span st.tele ~cat:"rule"
        ~args:
          [ ("fired", string_of_int (st.added - before));
            ("round", string_of_int st.round) ]
        ("rule:" ^ prep.head_label) ~start:t0 ~stop:t1
  end;
  if Journal.enabled st.jr && st.added > before then
    Journal.emit st.jr "rule.batch"
      [ ("round", J.Int st.round);
        ("rule", J.Str prep.head_label);
        ("derived", J.Int (st.added - before));
        ("time_s", J.Float (t1 -. t0)) ]

(* ------------------------------------------------------------------ *)
(* Parallel semi-naive rounds.

   Within a stratum, every delta round is split into (rule x delta
   chunk) work items. Workers match rule bodies against the database
   {e frozen as of the round start} and only record candidate head
   bindings; a sequential merge phase re-fires each candidate against
   the live store: dedup, the restricted-chase homomorphism check,
   labeled-null invention, provenance and delta recording all happen
   there.

   Merge order: each candidate carries the vector of fact insertion
   sequences of its match, over the written positive-literal positions
   (the delta literal contributes the fact's index within the round's
   delta). A sequential written-order evaluation of the whole delta
   emits matches exactly in lexicographic order of these vectors —
   candidate lists are probed in ascending insertion order, and the
   vector determines the match. So the merge, firing each (rule, delta
   literal) group sorted on the vectors, reproduces that sequential
   emission order independently of chunking, worker count, completion
   schedule, and of the order workers actually evaluated the literals
   in — which frees the planner to evaluate bodies most-selective-first
   without perturbing a single output bit.

   A match that the frozen snapshot misses (its facts were derived
   later in the same round) is re-discovered through the next round's
   delta, so the fixpoint is unchanged; rules with aggregates are
   order-sensitive and always evaluate sequentially against the live
   store, at their program position inside the merge sweep. *)

type candidate = {
  cd_vals : int array;      (* needed_vars binding ids, positionally *)
  cd_key : int array;       (* insertion-seq vector, written Pos order *)
  cd_parents : (string * Database.ifact) list;  (* body-fact trail *)
  cd_spill : (int * Value.t) list;
  (* worker-local scratch ids appearing in [cd_vals] with their values,
     in first-use order; the merge re-interns them sequentially and
     rewrites the negative ids before firing *)
}

(* lexicographic; vectors of one (rule, literal) group share a length *)
let compare_candidates a b =
  let ka = a.cd_key and kb = b.cd_key in
  let n = Array.length ka in
  let rec go i =
    if i >= n then 0
    else
      let c = Int.compare ka.(i) kb.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

type work_item = {
  w_prep : prepared;
  w_lit : int;                   (* index of the delta-driven literal *)
  w_order : int list;            (* literal evaluation order (a plan, or
                                    the written order) *)
  w_weight : int;                (* estimated probe volume, for
                                    heaviest-first pool scheduling *)
  w_facts : Database.ifact list; (* its delta chunk, chronological *)
  w_offset : int;                (* chunk start within the round delta *)
}

type work_result = {
  wr_cands : candidate list;  (* emission order *)
  wr_probes : int;
  wr_time : float;
}

(* Raised (on the caller domain) when a worker observed cancellation or
   an expired deadline mid-round. Nothing has been merged at that point:
   the whole round's candidates are discarded, so the database is back
   at the previous round boundary — a deterministic state whatever
   subset of work items the workers had managed to evaluate. *)
exception Round_aborted

(* Body evaluation in plan order against the frozen store. Mirrors
   [eval_literals]/[match_atom] exactly on what matches and what counts
   as a probe; additionally records, per positive literal, the insertion
   sequence of the matched fact into [keyv] (at the literal's written
   Pos ordinal) and — when provenance is on — the matched fact into
   [slots], from which the emit callback assembles the candidate. *)
let eval_planned st env (prep : prepared) ~order ~delta_lit ~dg ~keyv ~pos_ord
    ~slots ~emit =
  let body = Array.of_list prep.cbody in
  let rec go = function
    | [] -> emit ()
    | j :: rest -> (
        let continue () = go rest in
        match body.(j) with
        | CPos a ->
            let args = a.ca_args in
            let n = Array.length args in
            let positions = ref [] and key = ref [] in
            for i = n - 1 downto 0 do
              match cterm_id env args.(i) with
              | Some id ->
                  positions := i :: !positions;
                  key := id :: !key
              | None -> ()
            done;
            let ord = pos_ord.(j) in
            let try_fact seq (fact : Database.ifact) =
              if Array.length fact = n then begin
                let mark = env_mark env in
                let ok = ref true in
                (try
                   for i = 0 to n - 1 do
                     match args.(i) with
                     | CConst id -> if id <> fact.(i) then raise Exit
                     | CVar x ->
                         (match env_lookup env x with
                          | Some id -> if id <> fact.(i) then raise Exit
                          | None -> env_bind env x fact.(i))
                   done
                 with Exit -> ok := false);
                if !ok then begin
                  keyv.(ord) <- seq;
                  (match slots with
                   | Some sl -> sl.(ord) <- (a.ca_pred, fact)
                   | None -> ());
                  go rest
                end;
                env_undo env mark
              end
            in
            if j = delta_lit then begin
              let group = dg_lookup dg ~arity:n !positions !key in
              st.cur.c_probes <- st.cur.c_probes + List.length group;
              List.iter (fun (i, f) -> try_fact i f) group
            end
            else
              let examined =
                Database.iter_matches_i st.db a.ca_pred !positions !key
                  try_fact
              in
              st.cur.c_probes <- st.cur.c_probes + examined
        | CNeg a ->
            (* a ground id from the worker's scratch table cannot name a
               stored value, so [mem_i] correctly reports absence *)
            let fact = ground_atom env a in
            if not (Database.mem_i st.db a.ca_pred fact) then continue ()
        | CCond e -> if Expr.truthy_fn (env_value st env) e then continue ()
        | CAssign (x, e) ->
            let v = Expr.eval_fn (env_value st env) e in
            let id = value_id st v in
            (match env_lookup env x with
             | Some id' -> if id = id' then continue ()
             | None ->
                 let mark = env_mark env in
                 env_bind env x id;
                 continue ();
                 env_undo env mark)
        | CAgg _ ->
            Kgm_error.reason_error "aggregate rule on the worker pool (engine bug)")
  in
  go order

(* Runs on a worker domain: read-only on the frozen database, all
   mutable state (env, counters, trail, delta index) is local to the
   item. *)
let eval_work_item (main : run_state) (w : work_item) : work_result =
  let t0 = Kgm_telemetry.Clock.now () in
  let ctr = fresh_ctr () in
  let st =
    { db = main.db; opts = main.opts; added = 0;
      agg_states = Hashtbl.create 1;
      prov = main.prov;  (* only consulted as a capture-the-trail flag *)
      sup = main.sup;    (* likewise *)
      on_agg = None; agg_notes = [];  (* aggregates never run on workers *)
      trail_preds = [||]; trail_facts = [||]; trail_len = 0;
      fact_trail = [];
      sc = Intern.Scratch.create ();
      tele = Kgm_telemetry.null;  (* collectors are not domain-safe *)
      jr = Kgm_telemetry.Journal.null;
      ctrs = [||]; cur = ctr; round = main.round; trip_rule = None }
  in
  let prep = w.w_prep in
  (* written Pos ordinal of each body literal: the slot its matched
     fact's insertion sequence occupies in the sort-key vector *)
  let body = prep.cbody in
  let pos_ord = Array.make (List.length body) (-1) in
  let n_pos = ref 0 in
  List.iteri
    (fun i lit ->
      match lit with
      | CPos _ ->
          pos_ord.(i) <- !n_pos;
          incr n_pos
      | _ -> ())
    body;
  let keyv = Array.make (max 1 !n_pos) 0 in
  let slots =
    if Option.is_some main.prov || Option.is_some main.sup then
      Some (Array.make (max 1 !n_pos) ("", [||]))
    else None
  in
  let dg = delta_group ~offset:w.w_offset w.w_facts in
  let buf = ref [] in
  let env = env_create () in
  eval_planned st env prep ~order:w.w_order ~delta_lit:w.w_lit ~dg ~keyv
    ~pos_ord ~slots
    ~emit:(fun () ->
      let vals =
        Array.map
          (fun v ->
            match env_lookup env v with
            | Some id -> id
            | None -> Kgm_error.reason_error "unbound head variable %s" v)
          prep.needed_vars
      in
      (* scratch ids escaping in the candidate: ship their values so
         the merge can re-intern them *)
      let spill = ref [] in
      Array.iter
        (fun id ->
          if id < 0 && not (List.mem_assoc id !spill) then
            spill := (id, Intern.Scratch.resolve st.sc id) :: !spill)
        vals;
      let parents =
        match slots with
        | Some sl -> Array.fold_left (fun acc s -> s :: acc) [] sl
        | None -> []
      in
      buf :=
        { cd_vals = vals; cd_key = Array.copy keyv; cd_parents = parents;
          cd_spill = List.rev !spill }
        :: !buf);
  { wr_cands = List.rev !buf; wr_probes = ctr.c_probes;
    wr_time = Kgm_telemetry.Clock.now () -. t0 }

(* Merge phase: rebind a candidate's head variables and fire as usual
   (chase check, null invention, provenance) against the live store. *)
let fire_candidate st env (prep : prepared) cand ~on_new =
  let mark = env_mark env in
  (* sequential: re-intern the worker's scratch values (in the
     candidate's first-use order — candidates themselves fire in the
     deterministic sorted order, so dictionary growth is deterministic
     too) and rewrite the negative ids *)
  let vals =
    if cand.cd_spill = [] then cand.cd_vals
    else begin
      let remap =
        List.map
          (fun (sid, v) -> (sid, Intern.intern (Database.dict st.db) v))
          cand.cd_spill
      in
      Array.map
        (fun id -> if id < 0 then List.assoc id remap else id)
        cand.cd_vals
    end
  in
  Array.iteri (fun i id -> env_bind env prep.needed_vars.(i) id) vals;
  st.fact_trail <- cand.cd_parents;
  fire st env prep ~on_new;
  st.fact_trail <- [];
  env_undo env mark

let eval_delta_round st pool (rules : prepared list) ~use_planner ~cancel
    ~tok_status ~retries ~current ~on_new =
  (* 1. deterministic (rule, literal, chunk) work-item order; results
     are chunking-invariant (the merge sorts each (rule, literal) group
     on insertion-seq vectors), so the chunk size is free to follow the
     pool size for load balancing. One body plan per (rule, delta
     literal), recomputed here from the live cardinalities of this
     round boundary; with the planner off every item evaluates in
     written order. *)
  let planner_on = use_planner in
  let plans : (int * int, Planner.plan) Hashtbl.t = Hashtbl.create 16 in
  let items = ref [] in
  List.iter
    (fun (prep : prepared) ->
      if not prep.has_agg then
        List.iteri
          (fun i lit ->
            match lit with
            | Rule.Pos (a : Rule.atom) -> (
                match Hashtbl.find_opt current a.Rule.pred with
                | Some fl ->
                    let facts = Array.of_list (List.rev !fl) in
                    let len = Array.length facts in
                    let plan =
                      if planner_on then
                        Planner.plan_rule
                          ~count:(fun p -> Database.count st.db p)
                          ~delta_lit:i prep.rule
                      else Planner.written ~delta_lit:i prep.rule
                    in
                    Hashtbl.replace plans (prep.rule_id, i) plan;
                    let chunk = Kgm_pool.chunk_size_for pool ~len in
                    let n_chunks = (len + chunk - 1) / chunk in
                    for c = 0 to n_chunks - 1 do
                      let lo = c * chunk in
                      let sz = min chunk (len - lo) in
                      items :=
                        { w_prep = prep; w_lit = i;
                          w_order = plan.Planner.order;
                          w_weight = plan.Planner.cost * sz;
                          w_facts = Array.to_list (Array.sub facts lo sz);
                          w_offset = lo }
                        :: !items
                    done
                | None -> ())
            | _ -> ())
          prep.rule.Rule.body)
    rules;
  let items = Array.of_list (List.rev !items) in
  if Journal.enabled st.jr then
    Hashtbl.iter
      (fun (rule_id, lit) (p : Planner.plan) ->
        let prep = List.find (fun pr -> pr.rule_id = rule_id) rules in
        Journal.emit st.jr "plan"
          [ ("round", J.Int st.round);
            ("rule", J.Str prep.head_label);
            ("delta_lit", J.Int lit);
            ("cost", J.Int p.Planner.cost);
            ("reordered", J.Bool p.Planner.reordered);
            ("order", J.Arr (List.map (fun i -> J.Int i) p.Planner.order)) ])
      plans;
  if Kgm_telemetry.enabled st.tele && Hashtbl.length plans > 0 then begin
    Kgm_telemetry.count st.tele ~by:(Hashtbl.length plans) "planner.plans";
    let reordered =
      Hashtbl.fold
        (fun _ (p : Planner.plan) n -> if p.Planner.reordered then n + 1 else n)
        plans 0
    in
    if reordered > 0 then
      Kgm_telemetry.count st.tele ~by:reordered "planner.plans.reordered"
  end;
  (* 2. match on the pool against the frozen store. Each worker polls
     the cancellation token per work item; once it trips, remaining
     items are skipped (cheaply, returning no candidates) and the whole
     round is aborted after the batch joins. Worker bodies additionally
     run under a short retry loop so injected transient faults
     ("worker" site) are absorbed instead of killing the run. *)
  let aborted = Atomic.make false in
  let empty_result = { wr_cands = []; wr_probes = 0; wr_time = 0. } in
  let results =
    if Array.length items = 0 then []
    else begin
      (* build exactly the indexes the items will probe: every plan —
         planned or written-order — records its probe patterns along
         its own evaluation order (the delta literal never probes the
         store). With the planner off the pure written-order
         predictions are prepared as well. *)
      Hashtbl.iter
        (fun _ (p : Planner.plan) ->
          List.iter
            (fun (pred, pat) -> Database.prepare_index st.db pred pat)
            p.Planner.patterns)
        plans;
      if not planner_on then
        List.iter
          (fun (prep : prepared) ->
            if not prep.has_agg then
              List.iter
                (fun (pred, pat) -> Database.prepare_index st.db pred pat)
                prep.index_patterns)
          rules;
      Database.freeze st.db;
      let t0 = Kgm_telemetry.Clock.now () in
      let results =
        Fun.protect
          ~finally:(fun () -> Database.thaw st.db)
          (fun () ->
            Kgm_pool.run_weighted pool
              ~weights:(Array.map (fun w -> w.w_weight) items)
              (Array.map
                 (fun w () ->
                   if tok_status () <> `Ok then begin
                     Atomic.set aborted true;
                     empty_result
                   end
                   else
                     Kgm_resilience.Retry.with_backoff ~attempts:3
                       ~base_s:0.0005 ~cancel
                       ~on_retry:(fun ~attempt exn ->
                         Atomic.incr retries;
                         (* cross-domain emit: the journal serializes *)
                         if Journal.enabled st.jr then
                           Journal.emit st.jr "worker.retry"
                             [ ("round", J.Int st.round);
                               ("attempt", J.Int attempt);
                               ("error", J.Str (Printexc.to_string exn)) ])
                       (fun () ->
                         Kgm_resilience.Faults.inject "worker";
                         eval_work_item st w))
                 items))
      in
      if Kgm_telemetry.enabled st.tele then
        Kgm_telemetry.record_span st.tele ~cat:"round"
          ~args:
            [ ("items", string_of_int (Array.length items));
              ("jobs", string_of_int (Kgm_pool.size pool)) ]
          "round.match" ~start:t0 ~stop:(Kgm_telemetry.Clock.now ());
      results
    end
  in
  if Atomic.get aborted then raise Round_aborted;
  let pairs = List.combine (Array.to_list items) results in
  if Journal.enabled st.jr then
    List.iter
      (fun ((w : work_item), (r : work_result)) ->
        Journal.emit st.jr "chunk"
          [ ("round", J.Int st.round);
            ("rule", J.Str w.w_prep.head_label);
            ("delta_lit", J.Int w.w_lit);
            ("offset", J.Int w.w_offset);
            ("size", J.Int (List.length w.w_facts));
            ("candidates", J.Int (List.length r.wr_cands));
            ("probes", J.Int r.wr_probes);
            ("time_s", J.Float r.wr_time) ])
      pairs;
  (* 3. sequential merge sweep in program order *)
  List.iter
    (fun (prep : prepared) ->
      if prep.has_agg then
        (* order-sensitive: evaluate directly against the live store, in
           written order (the delta still probes through a hash index) *)
        List.iteri
          (fun i lit ->
            match lit with
            | Rule.Pos (a : Rule.atom) -> (
                match Hashtbl.find_opt current a.Rule.pred with
                | Some fl ->
                    eval_rule st prep
                      ~delta:(Some (i, delta_group (List.rev !fl)))
                      ~on_new
                | None -> ())
            | _ -> ())
          prep.rule.Rule.body
      else begin
        let ctr = st.ctrs.(prep.rule_id) in
        st.cur <- ctr;
        let t0 = Kgm_telemetry.Clock.now () in
        let before = st.added in
        let env = env_create () in
        (* per delta literal (ascending): gather every chunk's
           candidates and fire them sorted on the insertion-seq vectors
           — the written-order emission sequence over the whole round
           delta, independent of chunking and of the evaluation plan *)
        List.iteri
          (fun i lit ->
            match lit with
            | Rule.Pos _ ->
                let cands = ref [] in
                List.iter
                  (fun ((w : work_item), (r : work_result)) ->
                    if w.w_prep.rule_id = prep.rule_id && w.w_lit = i then begin
                      ctr.c_probes <- ctr.c_probes + r.wr_probes;
                      ctr.c_time <- ctr.c_time +. r.wr_time;
                      cands := List.rev_append r.wr_cands !cands
                    end)
                  pairs;
                if !cands <> [] then begin
                  let arr = Array.of_list !cands in
                  Array.sort compare_candidates arr;
                  Array.iter (fun c -> fire_candidate st env prep c ~on_new) arr
                end
            | _ -> ())
          prep.rule.Rule.body;
        let t1 = Kgm_telemetry.Clock.now () in
        ctr.c_time <- ctr.c_time +. (t1 -. t0);
        if Kgm_telemetry.enabled st.tele then begin
          Kgm_telemetry.observe st.tele "engine.rule_eval_s" (t1 -. t0);
          if st.added > before then
            Kgm_telemetry.record_span st.tele ~cat:"rule"
              ~args:
                [ ("fired", string_of_int (st.added - before));
                  ("round", string_of_int st.round) ]
              ("rule:" ^ prep.head_label) ~start:t0 ~stop:t1
        end;
        if Journal.enabled st.jr && st.added > before then
          Journal.emit st.jr "rule.batch"
            [ ("round", J.Int st.round);
              ("rule", J.Str prep.head_label);
              ("derived", J.Int (st.added - before));
              ("time_s", J.Float (t1 -. t0)) ]
      end)
    rules

(* ------------------------------------------------------------------ *)
(* Checkpoint/resume.

   At configurable round intervals (and at any clean limit stop) the
   engine serializes its complete semi-naive state to a versioned
   snapshot: the fact store in per-predicate insertion order, the
   current delta, the global null counter, per-rule counters, aggregate
   states, provenance, and the (stratum, round) position. Resuming
   restores all of it and re-enters the strata loop at the saved
   position, so a resumed run replays the exact rounds an uninterrupted
   run would have executed — facts, null numbering and per-rule counters
   are bit-for-bit identical, at every [jobs] value (the merge order is
   schedule-independent, see above). *)

type checkpoint = {
  ck_dir : string;
  ck_every : int;   (** write a snapshot every [ck_every] completed rounds *)
  ck_label : string;
  ck_keep : int;    (** generations retained after each write; 0 = all *)
}

let default_checkpoint_every = 8

let checkpoint ?(every = default_checkpoint_every) ?(keep = 0)
    ?(label = "chase") dir =
  { ck_dir = dir; ck_every = max 1 every; ck_label = label; ck_keep = keep }

(* v3: facts and deltas are stored as interned [int array]s together
   with the dictionary (p_dict); loading re-interns the dictionary into
   the target database and remaps the ids. v2 snapshots (boxed value
   facts) are still read, via [ck_payload_v2] below; v1 snapshots are
   rejected by [Snapshot.load]'s version check *)
let ck_version = 3
let ck_kind label = "chase-" ^ label

let latest_checkpoint ?(label = "chase") dir =
  Kgm_resilience.Snapshot.latest ~dir ~kind:(ck_kind label)

(* Marshal-friendly image of the loop state. Facts and deltas are kept
   in chronological (insertion) order so replaying them through
   [Database.add] reproduces per-predicate order exactly. *)
type ck_payload = {
  p_fingerprint : string;  (* digest of the program text: a checkpoint
                              only resumes the program that wrote it *)
  p_stratum : int;
  p_round0_done : bool;    (* false = the stratum's full round is pending *)
  p_rounds : int;
  p_deltas : int list;     (* reverse chronological, as the loop keeps it *)
  p_added : int;
  p_nulls : int;           (* global null counter *)
  p_dict : Value.t array;  (* interned values in id order; [p_facts] and
                              [p_delta] ids index into it *)
  p_facts : (string * Database.ifact list) list;
  p_delta : (string * Database.ifact list) list;
  p_ctrs : rule_ctr array;
  p_agg : (int * agg_state) list;
  p_prov : ((string * Value.t list) * derivation) list option;
  p_sup : support option;
      (* v2: the full derivation support, so a resumed run stays
         incrementally maintainable and explain-able. Pure data
         (hashtables, refs, lists of values), so Marshal round-trips
         it; per-fact entry lists are preserved verbatim, which keeps
         explanation output identical across resume. *)
}

(* Structural mirror of the v2 payload (facts as boxed value arrays, no
   dictionary). Marshal is shape-based, so reading an old snapshot into
   this record is exact; the loader re-interns the values. *)
type ck_payload_v2 = {
  q_fingerprint : string;
  q_stratum : int;
  q_round0_done : bool;
  q_rounds : int;
  q_deltas : int list;
  q_added : int;
  q_nulls : int;
  q_facts : (string * Database.fact list) list;
  q_delta : (string * Database.fact list) list;
  q_ctrs : rule_ctr array;
  q_agg : (int * agg_state) list;
  q_prov : ((string * Value.t list) * derivation) list option;
  q_sup : support option;
}

(* Merge a deserialized support into the caller's (normally fresh)
   support structure. Entry lists and recording order are preserved;
   duplicates are impossible when [into] is empty and harmless
   otherwise ([support_record] dedups, and consumers of children lists
   dedup on their side). *)
let support_absorb ~(into : support) (src : support) =
  ProvTbl.iter
    (fun key entries ->
      List.iter
        (fun e ->
          let pred, vals = key in
          support_record into ~rule_id:e.se_rule ~parents:e.se_parents
            ~nulls:e.se_nulls pred (Array.of_list vals))
        (List.rev !entries))
    src.sup_entries;
  Hashtbl.iter
    (fun n facts ->
      match Hashtbl.find_opt into.sup_null_facts n with
      | Some r -> r := !facts @ !r
      | None -> Hashtbl.add into.sup_null_facts n (ref !facts))
    src.sup_null_facts;
  List.iter
    (fun sf ->
      support_record_suppressed into ~rule_id:sf.sf_rule
        ~parents:sf.sf_parents ~image:sf.sf_image)
    (List.rev src.sup_suppressed)

let program_fingerprint program =
  Digest.to_hex (Digest.string (Rule.program_to_string program))

let run ?(options = default_options) ?provenance ?support
    ?(telemetry = Kgm_telemetry.null)
    ?(journal = Kgm_telemetry.Journal.null)
    ?(cancel = Kgm_resilience.Token.none) ?checkpoint ?resume_from ?on_agg
    ?rule_ids (program : Rule.program) db =
  Kgm_telemetry.with_span telemetry ~cat:"engine"
    ~args:[ ("rules", string_of_int (List.length program.Rule.rules)) ]
    "engine.run"
  @@ fun () ->
  let t0 = Kgm_telemetry.Clock.now () in
  (* [options.provenance] retains the support graph even when the caller
     did not pass one; it is returned in [stats.support] *)
  let support =
    match support with
    | Some _ -> support
    | None -> if options.provenance then Some (create_support ()) else None
  in
  (match Analysis.safety_report program with
   | [] -> ()
   | errs ->
       Kgm_error.validate_error "unsafe program:@ %s" (String.concat "; " errs));
  if options.check_wardedness then begin
    let report = Analysis.wardedness program in
    if not report.Analysis.warded then
      Kgm_error.validate_error "program is not warded: %s"
        (String.concat "; " report.Analysis.violations)
  end;
  let analysis = Analysis.stratify program in
  let fingerprint = program_fingerprint program in
  let ck_label =
    match checkpoint with Some c -> c.ck_label | None -> "chase"
  in
  (* a [deadline_s] option composes with whatever token the caller
     passed (which may carry its own deadline) *)
  let deadline_tok =
    match options.deadline_s with
    | Some d -> Kgm_resilience.Token.create ~deadline_s:d ()
    | None -> Kgm_resilience.Token.none
  in
  let tok_status () =
    match Kgm_resilience.Token.status cancel with
    | `Ok -> Kgm_resilience.Token.status deadline_tok
    | s -> s
  in
  (* Load a snapshot and normalize it against [db]'s dictionary: v3 ids
     are remapped through the serialized dictionary, v2 value facts are
     interned directly. Either way the returned payload's ids are valid
     in [db] and [p_dict] is spent. Any other version falls through to
     the strict v3 load, whose Storage error names both versions. *)
  let resume : ck_payload option =
    Option.map
      (fun path ->
        let kind = ck_kind ck_label in
        let p =
          if Kgm_resilience.Snapshot.peek_version ~kind ~path = 2 then begin
            let (q : ck_payload_v2) =
              Kgm_resilience.Snapshot.load ~kind ~version:2 ~path
            in
            let inf = List.map (Database.intern_fact db) in
            { p_fingerprint = q.q_fingerprint;
              p_stratum = q.q_stratum;
              p_round0_done = q.q_round0_done;
              p_rounds = q.q_rounds;
              p_deltas = q.q_deltas;
              p_added = q.q_added;
              p_nulls = q.q_nulls;
              p_dict = [||];
              p_facts = List.map (fun (pr, fl) -> (pr, inf fl)) q.q_facts;
              p_delta = List.map (fun (pr, fl) -> (pr, inf fl)) q.q_delta;
              p_ctrs = q.q_ctrs;
              p_agg = q.q_agg;
              p_prov = q.q_prov;
              p_sup = q.q_sup }
          end
          else begin
            let (p : ck_payload) =
              Kgm_resilience.Snapshot.load ~kind ~version:ck_version ~path
            in
            let dict = Database.dict db in
            let remap = Array.map (fun v -> Intern.intern dict v) p.p_dict in
            let rf = List.map (fun f -> Array.map (fun id -> remap.(id)) f) in
            { p with
              p_dict = [||];
              p_facts = List.map (fun (pr, fl) -> (pr, rf fl)) p.p_facts;
              p_delta = List.map (fun (pr, fl) -> (pr, rf fl)) p.p_delta }
          end
        in
        if p.p_fingerprint <> fingerprint then
          Kgm_error.validate_error
            "checkpoint %s was written by a different program (fingerprint \
             mismatch)"
            path;
        p)
      resume_from
  in
  List.iter
    (fun (pred, args) -> ignore (Database.add db pred (Array.of_list args)))
    program.Rule.facts;
  let n_rules = List.length program.Rule.rules in
  let st =
    { db; opts = options; added = 0; agg_states = Hashtbl.create 16;
      prov = provenance; sup = support; on_agg; agg_notes = [];
      trail_preds = [||]; trail_facts = [||]; trail_len = 0; fact_trail = [];
      sc = Intern.Scratch.create ();
      tele = telemetry; jr = journal;
      ctrs = Array.init (max 1 n_rules) (fun _ -> fresh_ctr ());
      cur = fresh_ctr ();
      round = 0; trip_rule = None }
  in
  (match resume with
   | None -> ()
   | Some p ->
       (* replay the snapshot: facts in insertion order (dedup against
          whatever the caller pre-loaded), exact null counter, counters,
          aggregate, provenance and support state *)
       List.iter
         (fun (pred, facts) ->
           List.iter (fun f -> ignore (Database.add_i db pred f)) facts)
         p.p_facts;
       Atomic.set global_null_counter p.p_nulls;
       st.added <- p.p_added;
       Array.iteri
         (fun i c -> if i < Array.length st.ctrs then st.ctrs.(i) <- c)
         p.p_ctrs;
       List.iter (fun (id, s) -> Hashtbl.replace st.agg_states id s) p.p_agg;
       (match provenance, p.p_prov with
        | Some prov, Some entries ->
            List.iter
              (fun (k, d) ->
                if not (ProvTbl.mem prov k) then ProvTbl.add prov k d)
              entries
        | _ -> ());
       (match support, p.p_sup with
        | Some into, Some src -> support_absorb ~into src
        | _ -> ()));
  if Journal.enabled journal then
    Journal.emit journal "run.start"
      [ ("mode", J.Str "chase");
        ("rules", J.Int n_rules);
        ("strata", J.Int (List.length analysis.Analysis.strata));
        ("jobs", J.Int options.jobs);
        ("planner", J.Bool options.planner);
        ("provenance", J.Bool (Option.is_some support));
        ("resumed", J.Bool (Option.is_some resume)) ];
  let prepared =
    List.mapi
      (fun i r ->
        prepare
          ?rid:(Option.map (fun a -> a.(i)) rule_ids)
          (Database.dict db) i
          (if options.reorder_body then reorder_rule ~db r else r))
      program.Rule.rules
  in
  let stratum_of pred =
    Option.value ~default:0 (Analysis.SMap.find_opt pred analysis.Analysis.stratum_of)
  in
  let rule_stratum (prep : prepared) =
    List.fold_left
      (fun acc (a : Rule.atom) -> max acc (stratum_of a.Rule.pred))
      0 prep.rule.Rule.head
  in
  let n_strata = List.length analysis.Analysis.strata in
  if Kgm_telemetry.enabled telemetry && options.planner then begin
    Kgm_telemetry.count telemetry ~by:n_strata "planner.strata";
    let nrec =
      Array.fold_left
        (fun acc r -> if r then acc + 1 else acc)
        0 analysis.Analysis.recursive
    in
    if nrec > 0 then
      Kgm_telemetry.count telemetry ~by:nrec "planner.strata.recursive"
  end;
  let rounds = ref (match resume with Some p -> p.p_rounds | None -> 0) in
  (* per-round delta sizes, reverse chronological *)
  let deltas = ref (match resume with Some p -> p.p_deltas | None -> []) in
  let start_stratum = match resume with Some p -> p.p_stratum | None -> 0 in
  let retries = Atomic.make 0 in
  let cks_written = ref 0 and cks_failed = ref 0 in
  let last_ck = ref None in
  let write_checkpoint ~stratum ~round0_done delta =
    match checkpoint with
    | None -> ()
    | Some cfg ->
        let payload =
          { p_fingerprint = fingerprint;
            p_stratum = stratum;
            p_round0_done = round0_done;
            p_rounds = !rounds;
            p_deltas = !deltas;
            p_added = st.added;
            p_nulls = Atomic.get global_null_counter;
            p_dict = Intern.export (Database.dict db);
            p_facts =
              List.map
                (fun pred -> (pred, Database.facts_i db pred))
                (Database.predicates db);
            p_delta =
              Hashtbl.fold (fun pred l acc -> (pred, List.rev !l) :: acc) delta []
              |> List.sort compare;
            p_ctrs = st.ctrs;
            p_agg =
              Hashtbl.fold (fun id s acc -> (id, s) :: acc) st.agg_states []
              |> List.sort compare;
            p_prov =
              Option.map
                (fun prov -> ProvTbl.fold (fun k d acc -> (k, d) :: acc) prov [])
                st.prov;
            p_sup = st.sup }
        in
        let path =
          Kgm_resilience.Snapshot.path ~dir:cfg.ck_dir
            ~kind:(ck_kind cfg.ck_label) ~seq:!rounds
        in
        (* graceful degradation: a transient write fault is retried, a
           persistent one costs only this snapshot, never the chase *)
        (try
           Kgm_resilience.Retry.with_backoff ~attempts:3 ~base_s:0.002
             (fun () ->
               Kgm_resilience.Snapshot.save ~kind:(ck_kind cfg.ck_label)
                 ~version:ck_version ~path payload);
           incr cks_written;
           last_ck := Some path;
           (* rotate right after a successful write: the newest
              retained generation is the one we just renamed into
              place, so a recovery always has a valid file to start
              from *)
           if cfg.ck_keep > 0 then
             ignore
               (Kgm_resilience.Snapshot.gc ~dir:cfg.ck_dir
                  ~kind:(ck_kind cfg.ck_label) ~keep:cfg.ck_keep);
           if Journal.enabled journal then
             Journal.emit journal "checkpoint.write"
               [ ("round", J.Int !rounds);
                 ("stratum", J.Int stratum);
                 ("path", J.Str path) ]
         with _ ->
           incr cks_failed;
           if Journal.enabled journal then
             Journal.emit journal "checkpoint.fail"
               [ ("round", J.Int !rounds); ("path", J.Str path) ])
  in
  let stopped = ref None in
  (* one pool for the whole run; with jobs = 1 it spawns no domains and
     Kgm_pool.run degenerates to an inline loop *)
  let pool = Kgm_pool.create (max 1 options.jobs) in
  Fun.protect ~finally:(fun () -> Kgm_pool.shutdown pool) @@ fun () ->
  (try
     for s = start_stratum to n_strata - 1 do
       let rules_here = List.filter (fun p -> rule_stratum p = s) prepared in
       if rules_here <> [] then begin
         Kgm_telemetry.with_span telemetry ~cat:"engine"
           ~args:[ ("rules", string_of_int (List.length rules_here)) ]
           (Printf.sprintf "stratum:%d" s)
         @@ fun () ->
         let in_stratum =
           match List.nth_opt analysis.Analysis.strata s with
           | Some preds -> preds
           | None -> []
         in
         let delta : (string, Database.ifact list ref) Hashtbl.t =
           Hashtbl.create 8
         in
         let record pred fact =
           if List.mem pred in_stratum then
             match Hashtbl.find_opt delta pred with
             | Some l -> l := fact :: !l
             | None -> Hashtbl.add delta pred (ref [ fact ])
         in
         let delta_size () =
           Hashtbl.fold (fun _ l acc -> acc + List.length !l) delta 0
         in
         let round0_done = ref false in
         (match resume with
          | Some p when s = p.p_stratum ->
              round0_done := p.p_round0_done;
              List.iter
                (fun (pred, facts) ->
                  Hashtbl.replace delta pred (ref (List.rev facts)))
                p.p_delta
          | _ -> ());
         (* limit checks happen only here, at clean round boundaries;
            the "round" fault site models a crash at exactly this point *)
         let boundary_check () =
           Kgm_resilience.Faults.inject "round";
           (match tok_status () with
            | `Cancelled -> raise (Stop_chase (`Cancelled, true))
            | `Deadline -> raise (Stop_chase (`Deadline, true))
            | `Ok -> ());
           if !rounds >= options.max_rounds then
             raise (Stop_chase (`Rounds, true))
         in
         let maybe_checkpoint () =
           match checkpoint with
           | Some cfg when !rounds mod cfg.ck_every = 0 ->
               write_checkpoint ~stratum:s ~round0_done:!round0_done delta
           | _ -> ()
         in
         try
           boundary_check ();
           let round_start () =
             if Journal.enabled journal then
               Journal.emit journal "round.start"
                 [ ("stratum", J.Int s); ("round", J.Int !rounds) ]
           in
           let round_end delta_n =
             if Journal.enabled journal then
               Journal.emit journal "round.end"
                 [ ("stratum", J.Int s);
                   ("round", J.Int !rounds);
                   ("delta", J.Int delta_n);
                   ("facts", J.Int (Database.total db)) ]
           in
           if not !round0_done then begin
             (* round 0: full evaluation *)
             incr rounds;
             st.round <- !rounds;
             round_start ();
             Kgm_telemetry.with_span telemetry ~cat:"round" "round" (fun () ->
                 List.iter
                   (fun p -> eval_rule st p ~delta:None ~on_new:record)
                   rules_here);
             deltas := delta_size () :: !deltas;
             round_end (delta_size ());
             round0_done := true;
             maybe_checkpoint ()
           end;
           let continue = ref (Hashtbl.length delta > 0) in
           (* stratification dividend: a non-recursive stratum is an SCC
              group with no internal dependency edge, so none of its
              rules reads a predicate derived in this stratum — the
              delta round could only rediscover round-0 matches. Under
              semi-naive evaluation that round derives nothing, so skip
              it outright. (Naive mode re-evaluates everything each
              round and is left untouched.) *)
           let recursive_stratum =
             s < Array.length analysis.Analysis.recursive
             && analysis.Analysis.recursive.(s)
           in
           if
             !continue && options.planner && options.semi_naive
             && not recursive_stratum
           then begin
             continue := false;
             if Kgm_telemetry.enabled telemetry then
               Kgm_telemetry.count telemetry "planner.rounds.skipped"
           end;
           while !continue do
             boundary_check ();
             incr rounds;
             st.round <- !rounds;
             round_start ();
             let current = Hashtbl.copy delta in
             Hashtbl.reset delta;
             (try
                Kgm_telemetry.with_span telemetry ~cat:"round" "round"
                  (fun () ->
                    if options.semi_naive then
                      eval_delta_round st pool rules_here
                        ~use_planner:options.planner ~cancel ~tok_status
                        ~retries ~current ~on_new:record
                    else
                      (* naive: full re-evaluation; recurse only while
                         new facts appear *)
                      List.iter
                        (fun p -> eval_rule st p ~delta:None ~on_new:record)
                        rules_here)
              with Round_aborted ->
                (* the aborted round never happened: restore its input
                   delta and stop at the previous boundary *)
                decr rounds;
                Hashtbl.reset delta;
                Hashtbl.iter (fun k v -> Hashtbl.replace delta k v) current;
                (match tok_status () with
                 | `Cancelled -> raise (Stop_chase (`Cancelled, true))
                 | _ -> raise (Stop_chase (`Deadline, true))));
             deltas := delta_size () :: !deltas;
             round_end (delta_size ());
             continue := Hashtbl.length delta > 0;
             maybe_checkpoint ()
           done
         with Stop_chase (l, clean) ->
           (* a clean stop is a round boundary: capture it so a later
              [~resume_from] continues exactly where this run stopped *)
           if clean then
             write_checkpoint ~stratum:s ~round0_done:!round0_done delta;
           raise (Stop_chase (l, clean))
       end
     done
   with Stop_chase (l, clean) ->
     stopped := Some l;
     if Journal.enabled journal then
       Journal.emit journal "limit.stop"
         [ ("limit", J.Str (limit_name l));
           ("clean", J.Bool clean);
           ("round", J.Int !rounds) ]);
  let per_rule =
    List.map
      (fun (prep : prepared) ->
        let c = st.ctrs.(prep.rule_id) in
        { rs_id = prep.rule_id;
          rs_rule = Format.asprintf "%a" Rule.pp_rule prep.rule;
          rs_label = prep.head_label;
          rs_firings = c.c_firings;
          rs_matches = c.c_matches;
          rs_probes = c.c_probes;
          rs_nulls = c.c_nulls;
          rs_chase_hits = c.c_hits;
          rs_chase_misses = c.c_misses;
          rs_time_s = c.c_time })
      prepared
  in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 per_rule in
  let stats =
    { rounds = !rounds;
      new_facts = st.added;
      elapsed_s = Kgm_telemetry.Clock.now () -. t0;
      delta_sizes = List.rev !deltas;
      nulls_invented = sum (fun r -> r.rs_nulls);
      chase_hits = sum (fun r -> r.rs_chase_hits);
      chase_misses = sum (fun r -> r.rs_chase_misses);
      per_rule;
      stopped = !stopped;
      support = st.sup }
  in
  if Journal.enabled journal then
    Journal.emit journal "run.end"
      [ ("mode", J.Str "chase");
        ("rounds", J.Int stats.rounds);
        ("new_facts", J.Int stats.new_facts);
        ("facts", J.Int (Database.total db));
        ("nulls", J.Int stats.nulls_invented);
        ("elapsed_s", J.Float stats.elapsed_s);
        ( "stopped",
          match stats.stopped with
          | Some l -> J.Str (limit_name l)
          | None -> J.Null ) ];
  if Kgm_telemetry.enabled telemetry then begin
    Kgm_telemetry.count telemetry ~by:stats.new_facts "engine.facts.new";
    Kgm_telemetry.count telemetry ~by:stats.rounds "engine.rounds";
    Kgm_telemetry.count telemetry ~by:stats.nulls_invented
      "engine.nulls.invented";
    Kgm_telemetry.count telemetry ~by:stats.chase_hits "engine.chase.hits";
    Kgm_telemetry.count telemetry ~by:stats.chase_misses "engine.chase.misses";
    if !cks_written > 0 then
      Kgm_telemetry.count telemetry ~by:!cks_written
        "resilience.checkpoints.written";
    if !cks_failed > 0 then
      Kgm_telemetry.count telemetry ~by:!cks_failed
        "resilience.checkpoints.failed";
    let r = Atomic.get retries in
    if r > 0 then
      Kgm_telemetry.count telemetry ~by:r "resilience.worker.retries";
    match stats.stopped with
    | Some l -> Kgm_telemetry.count telemetry ("engine.stopped." ^ limit_name l)
    | None -> ()
  end;
  (match !stopped, options.on_limit with
   | Some l, `Raise ->
       let ctx =
         (match st.trip_rule with Some r -> [ ("rule", r) ] | None -> [])
         @ [ ("round", string_of_int !rounds) ]
         @ (match !last_ck with
            | Some p -> [ ("checkpoint", p) ]
            | None -> [])
       in
       (match l with
        | `Facts ->
            Kgm_error.reason_error_ctx ctx
              "fact budget exceeded (%d facts): non-terminating chase?"
              options.max_facts
        | `Rounds -> Kgm_error.reason_error_ctx ctx "round budget exceeded"
        | `Deadline -> Kgm_error.reason_error_ctx ctx "deadline exceeded"
        | `Cancelled ->
            Kgm_error.reason_error_ctx
              (("interrupted", "cancelled") :: ctx)
              "interrupted")
   | _ -> ());
  stats

(* ------------------------------------------------------------------ *)
(* Seeded semi-naive pass for incremental maintenance.

   Precondition: [db] already holds a chase fixpoint plus a batch of
   new extensional facts, and [seed] lists exactly the facts that are
   new since that fixpoint (the inserted batch, the maintenance
   layer's re-fire seeds). The pass runs ONLY delta rounds — no
   round-0 full evaluation — per stratum: the first round of each
   stratum ranges over the seeds plus whatever earlier strata of this
   same pass derived, subsequent rounds over the stratum's own delta
   exactly as in [run]. Under semi-naive completeness this derives
   precisely the consequences of the seeds, which is what makes
   maintenance cost proportional to the delta instead of the
   database. Everything else — the planner's delta-first plans, the
   pool's parallel rounds, the schedule-independent merge order, the
   budget/deadline machinery — is shared with [run], so the
   determinism invariants carry over unchanged. *)
let run_delta ?(options = default_options) ?provenance ?support
    ?(telemetry = Kgm_telemetry.null)
    ?(journal = Kgm_telemetry.Journal.null)
    ?(cancel = Kgm_resilience.Token.none) ?on_new ?on_agg ?rule_ids
    ?(agg_init = []) (program : Rule.program) db
    ~(seed : (string * Database.fact list) list) =
  Kgm_telemetry.with_span telemetry ~cat:"engine"
    ~args:[ ("rules", string_of_int (List.length program.Rule.rules)) ]
    "engine.run_delta"
  @@ fun () ->
  let t0 = Kgm_telemetry.Clock.now () in
  let support =
    match support with
    | Some _ -> support
    | None -> if options.provenance then Some (create_support ()) else None
  in
  (match Analysis.safety_report program with
   | [] -> ()
   | errs ->
       Kgm_error.validate_error "unsafe program:@ %s" (String.concat "; " errs));
  let analysis = Analysis.stratify program in
  let deadline_tok =
    match options.deadline_s with
    | Some d -> Kgm_resilience.Token.create ~deadline_s:d ()
    | None -> Kgm_resilience.Token.none
  in
  let tok_status () =
    match Kgm_resilience.Token.status cancel with
    | `Ok -> Kgm_resilience.Token.status deadline_tok
    | s -> s
  in
  let n_rules = List.length program.Rule.rules in
  let st =
    { db; opts = options; added = 0; agg_states = Hashtbl.create 16;
      prov = provenance; sup = support; on_agg; agg_notes = [];
      trail_preds = [||]; trail_facts = [||]; trail_len = 0; fact_trail = [];
      sc = Intern.Scratch.create ();
      tele = telemetry; jr = journal;
      ctrs = Array.init (max 1 n_rules) (fun _ -> fresh_ctr ());
      cur = fresh_ctr ();
      round = 0; trip_rule = None }
  in
  (* counting maintenance: start monotonic aggregates from the caller's
     saturated accumulators instead of empty groups, so a delta pass
     neither re-counts old contributions nor misses thresholds already
     crossed *)
  List.iter (fun (id, s) -> Hashtbl.replace st.agg_states id s) agg_init;
  if Journal.enabled journal then
    Journal.emit journal "run.start"
      [ ("mode", J.Str "delta");
        ("rules", J.Int n_rules);
        ("strata", J.Int (List.length analysis.Analysis.strata));
        ("jobs", J.Int options.jobs);
        ("planner", J.Bool options.planner);
        ("provenance", J.Bool (Option.is_some support));
        ( "seed",
          J.Int
            (List.fold_left (fun acc (_, fs) -> acc + List.length fs) 0 seed)
        ) ];
  let prepared =
    List.mapi
      (fun i r ->
        prepare
          ?rid:(Option.map (fun a -> a.(i)) rule_ids)
          (Database.dict db) i
          (if options.reorder_body then reorder_rule ~db r else r))
      program.Rule.rules
  in
  let stratum_of pred =
    Option.value ~default:0
      (Analysis.SMap.find_opt pred analysis.Analysis.stratum_of)
  in
  let rule_stratum (prep : prepared) =
    List.fold_left
      (fun acc (a : Rule.atom) -> max acc (stratum_of a.Rule.pred))
      0 prep.rule.Rule.head
  in
  let n_strata = List.length analysis.Analysis.strata in
  let rounds = ref 0 in
  let deltas = ref [] in
  let retries = Atomic.make 0 in
  let stopped = ref None in
  (* everything this pass derived, chronological across strata: part of
     the first-round delta of every later stratum (in [run] the round-0
     full evaluation covers this; here nothing else would) *)
  let new_facts : (string * Database.ifact) list ref = ref [] in
  let pool = Kgm_pool.create (max 1 options.jobs) in
  Fun.protect ~finally:(fun () -> Kgm_pool.shutdown pool) @@ fun () ->
  (try
     for s = 0 to n_strata - 1 do
       let rules_here = List.filter (fun p -> rule_stratum p = s) prepared in
       if rules_here <> [] then begin
         let in_stratum =
           match List.nth_opt analysis.Analysis.strata s with
           | Some preds -> preds
           | None -> []
         in
         let delta : (string, Database.ifact list ref) Hashtbl.t =
           Hashtbl.create 8
         in
         let record pred fact =
           (* external observers stay value-level *)
           (match on_new with
            | Some f -> f pred (Database.resolve_fact db fact)
            | None -> ());
           new_facts := (pred, fact) :: !new_facts;
           if List.mem pred in_stratum then
             match Hashtbl.find_opt delta pred with
             | Some l -> l := fact :: !l
             | None -> Hashtbl.add delta pred (ref [ fact ])
         in
         let delta_size () =
           Hashtbl.fold (fun _ l acc -> acc + List.length !l) delta 0
         in
         let boundary_check () =
           (match tok_status () with
            | `Cancelled -> raise (Stop_chase (`Cancelled, true))
            | `Deadline -> raise (Stop_chase (`Deadline, true))
            | `Ok -> ());
           if !rounds >= options.max_rounds then
             raise (Stop_chase (`Rounds, true))
         in
         (* first round of the stratum: caller seeds + earlier strata's
            derivations of this pass (fact lists are kept reversed, the
            convention [eval_delta_round] expects) *)
         let initial : (string, Database.ifact list ref) Hashtbl.t =
           Hashtbl.create 8
         in
         let put pred fact =
           match Hashtbl.find_opt initial pred with
           | Some l -> l := fact :: !l
           | None -> Hashtbl.add initial pred (ref [ fact ])
         in
         List.iter
           (fun (pred, facts) ->
             List.iter (fun f -> put pred (Database.intern_fact db f)) facts)
           seed;
         List.iter (fun (pred, fact) -> put pred fact) (List.rev !new_facts);
         let recursive_stratum =
           s < Array.length analysis.Analysis.recursive
           && analysis.Analysis.recursive.(s)
         in
         let pending = ref initial in
         while Hashtbl.length !pending > 0 do
           boundary_check ();
           incr rounds;
           st.round <- !rounds;
           if Journal.enabled journal then
             Journal.emit journal "round.start"
               [ ("stratum", J.Int s); ("round", J.Int !rounds) ];
           let current = !pending in
           (try
              Kgm_telemetry.with_span telemetry ~cat:"round" "round"
                (fun () ->
                  (* maintenance deltas are tiny relative to the
                     saturated store, so the delta-first selectivity
                     plans are applied unconditionally: with the planner
                     off, written-order plans probe the full closure
                     once per seed fact (the BENCH_incremental 0.3x
                     regression). Planning is pure scheduling — outputs
                     are unchanged — so the ablation contrast is
                     confined to [run]. *)
                  eval_delta_round st pool rules_here ~use_planner:true
                    ~cancel ~tok_status ~retries ~current ~on_new:record)
            with Round_aborted ->
              decr rounds;
              (match tok_status () with
               | `Cancelled -> raise (Stop_chase (`Cancelled, true))
               | _ -> raise (Stop_chase (`Deadline, true))));
           deltas := delta_size () :: !deltas;
           if Journal.enabled journal then
             Journal.emit journal "round.end"
               [ ("stratum", J.Int s);
                 ("round", J.Int !rounds);
                 ("delta", J.Int (delta_size ()));
                 ("facts", J.Int (Database.total db)) ];
           let next = Hashtbl.copy delta in
           Hashtbl.reset delta;
           (* stratification dividend, as in [run]: after its seeded
              round a non-recursive stratum cannot refire itself (this
              pass is always semi-naive, so the skip is unconditional
              too) *)
           if (not recursive_stratum) && Hashtbl.length next > 0 then begin
             Hashtbl.reset next;
             if Kgm_telemetry.enabled telemetry then
               Kgm_telemetry.count telemetry "planner.rounds.skipped"
           end;
           pending := next
         done
       end
     done
   with Stop_chase (l, clean) ->
     stopped := Some l;
     if Journal.enabled journal then
       Journal.emit journal "limit.stop"
         [ ("limit", J.Str (limit_name l));
           ("clean", J.Bool clean);
           ("round", J.Int !rounds) ]);
  let per_rule =
    List.map
      (fun (prep : prepared) ->
        let c = st.ctrs.(prep.rule_id) in
        { rs_id = prep.rule_id;
          rs_rule = Format.asprintf "%a" Rule.pp_rule prep.rule;
          rs_label = prep.head_label;
          rs_firings = c.c_firings;
          rs_matches = c.c_matches;
          rs_probes = c.c_probes;
          rs_nulls = c.c_nulls;
          rs_chase_hits = c.c_hits;
          rs_chase_misses = c.c_misses;
          rs_time_s = c.c_time })
      prepared
  in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 per_rule in
  let stats =
    { rounds = !rounds;
      new_facts = st.added;
      elapsed_s = Kgm_telemetry.Clock.now () -. t0;
      delta_sizes = List.rev !deltas;
      nulls_invented = sum (fun r -> r.rs_nulls);
      chase_hits = sum (fun r -> r.rs_chase_hits);
      chase_misses = sum (fun r -> r.rs_chase_misses);
      per_rule;
      stopped = !stopped;
      support = st.sup }
  in
  if Journal.enabled journal then
    Journal.emit journal "run.end"
      [ ("mode", J.Str "delta");
        ("rounds", J.Int stats.rounds);
        ("new_facts", J.Int stats.new_facts);
        ("facts", J.Int (Database.total db));
        ("elapsed_s", J.Float stats.elapsed_s);
        ( "stopped",
          match stats.stopped with
          | Some l -> J.Str (limit_name l)
          | None -> J.Null ) ];
  if Kgm_telemetry.enabled telemetry then begin
    Kgm_telemetry.count telemetry ~by:stats.new_facts "engine.facts.new";
    Kgm_telemetry.count telemetry ~by:stats.rounds "engine.rounds";
    let r = Atomic.get retries in
    if r > 0 then
      Kgm_telemetry.count telemetry ~by:r "resilience.worker.retries";
    match stats.stopped with
    | Some l -> Kgm_telemetry.count telemetry ("engine.stopped." ^ limit_name l)
    | None -> ()
  end;
  (match !stopped, options.on_limit with
   | Some l, `Raise ->
       let ctx =
         (match st.trip_rule with Some r -> [ ("rule", r) ] | None -> [])
         @ [ ("round", string_of_int !rounds) ]
       in
       (match l with
        | `Facts ->
            Kgm_error.reason_error_ctx ctx
              "fact budget exceeded (%d facts): non-terminating chase?"
              options.max_facts
        | `Rounds -> Kgm_error.reason_error_ctx ctx "round budget exceeded"
        | `Deadline -> Kgm_error.reason_error_ctx ctx "deadline exceeded"
        | `Cancelled ->
            Kgm_error.reason_error_ctx
              (("interrupted", "cancelled") :: ctx)
              "interrupted")
   | _ -> ());
  stats

(* Human-readable planning report: what [run] would decide for
   [program] over the current contents of [db] — the strata in
   execution order with their recursion flags, and for every rule of a
   recursive stratum the join order chosen for each in-stratum delta
   literal. Cardinalities are read live from [db], so load the input
   facts before asking for the report. *)
let pp_plan_report ?(options = default_options) ppf (program : Rule.program) db
    =
  let analysis = Analysis.stratify program in
  let stratum_of pred =
    Option.value ~default:0
      (Analysis.SMap.find_opt pred analysis.Analysis.stratum_of)
  in
  let rules =
    List.map
      (fun r -> if options.reorder_body then reorder_rule ~db r else r)
      program.Rule.rules
  in
  let rule_stratum (r : Rule.rule) =
    List.fold_left
      (fun acc (a : Rule.atom) -> max acc (stratum_of a.Rule.pred))
      0 r.Rule.head
  in
  let count = Database.count db in
  List.iteri
    (fun s preds ->
      let recursive =
        s < Array.length analysis.Analysis.recursive
        && analysis.Analysis.recursive.(s)
      in
      Format.fprintf ppf "stratum %d%s: %s@." s
        (if recursive then " (recursive)" else "")
        (String.concat ", " preds);
      List.iter
        (fun (r : Rule.rule) ->
          if rule_stratum r = s then begin
            Format.fprintf ppf "  %a@." Rule.pp_rule r;
            if not recursive then
              Format.fprintf ppf "    single round (non-recursive stratum)@."
            else if
              List.exists
                (function Rule.Agg _ -> true | _ -> false)
                r.Rule.body
            then
              Format.fprintf ppf
                "    written order (aggregate rule: emission order is \
                 semantic)@."
            else
              List.iteri
                (fun i lit ->
                  match lit with
                  | Rule.Pos (a : Rule.atom) when List.mem a.Rule.pred preds ->
                      let plan =
                        if options.planner then
                          Planner.plan_rule ~count ~delta_lit:i r
                        else Planner.written ~delta_lit:i r
                      in
                      Format.fprintf ppf "    delta %s[%d]: %a@." a.Rule.pred i
                        (Planner.pp ~delta_lit:i r)
                        plan
                  | _ -> ())
                r.Rule.body
          end)
        rules)
    analysis.Analysis.strata

let run_program ?options ?provenance ?support ?telemetry ?journal ?cancel
    ?checkpoint ?resume_from program =
  let db = Database.create () in
  let stats =
    run ?options ?provenance ?support ?telemetry ?journal ?cancel ?checkpoint
      ?resume_from program db
  in
  (db, stats)

let query db pred = Database.facts db pred

(** Facts of every @output-annotated predicate, in annotation order. *)
let outputs (program : Rule.program) db =
  List.filter_map
    (fun (a : Rule.annotation) ->
      match a.Rule.a_name, a.Rule.a_args with
      | "output", pred :: _ -> Some (pred, Database.facts db pred)
      | _ -> None)
    program.Rule.annotations

(* ------------------------------------------------------------------ *)
(* Fact-level explanation: bounded derivation trees over the support.

   The support records every derivation of every fact in a
   deterministic order (the merge phase emission order is
   schedule-independent, and checkpoints preserve per-fact entry lists
   verbatim), so picking the FIRST-recorded derivation at every node
   yields a tree that is bit-identical across [jobs], planner on/off,
   and checkpoint/resume. Parents always predate their fact in the
   first-recorded derivation, so the recursion is well-founded on
   acyclic data; cyclic ownership graphs are cut by the depth bound and
   the on-path cycle guard. *)

type explain_tree = {
  et_pred : string;
  et_fact : Database.fact;
  et_depth : int;  (* recursion depth of this node, root = 0 *)
  et_node : explain_node;
}

and explain_node =
  | Ground  (* no recorded derivation: extensional (or support is off) *)
  | Truncated  (* max_depth reached; the fact does have derivations *)
  | Cycle  (* fact already on the current path *)
  | Derived of explain_deriv

and explain_deriv = {
  ed_rule_id : int;
  ed_rule : string;  (* pretty-printed firing rule *)
  ed_subst : (string * Value.t) list;
      (* head-variable substitution grounding the head to the fact,
         existentials bound to the invented nulls; sorted by name *)
  ed_nulls : int list;  (* labeled nulls this derivation invented *)
  ed_premises : explain_tree list;  (* canonical parent order *)
}

let default_explain_depth = 32

(* the substitution under which some head atom of [r] grounds to
   [fact]: constants must coincide, variables bind consistently *)
let head_substitution (r : Rule.rule) pred (fact : Database.fact) =
  let try_atom (a : Rule.atom) =
    if a.Rule.pred <> pred || List.length a.Rule.args <> Array.length fact
    then None
    else begin
      let binds = Hashtbl.create 8 in
      let ok =
        List.for_all2
          (fun t v ->
            match t with
            | Term.Const c -> Value.equal c v
            | Term.Var x -> (
                match Hashtbl.find_opt binds x with
                | Some v' -> Value.equal v v'
                | None ->
                    Hashtbl.add binds x v;
                    true))
          a.Rule.args (Array.to_list fact)
      in
      if ok then
        Some
          (Hashtbl.fold (fun k v acc -> (k, v) :: acc) binds []
          |> List.sort (fun (a, _) (b, _) -> String.compare a b))
      else None
    end
  in
  Option.value ~default:[] (List.find_map try_atom r.Rule.head)

let explain_tree ?(max_depth = default_explain_depth) (sup : support)
    (program : Rule.program) pred (fact : Database.fact) =
  let rules = Array.of_list program.Rule.rules in
  let key_equal (p, k) (p', k') =
    String.equal p p' && List.equal Value.equal k k'
  in
  let rec go path depth pred fact =
    let key = (pred, Array.to_list fact) in
    let node =
      match support_entries sup pred fact with
      | [] -> Ground
      | entries ->
          if depth >= max_depth then Truncated
          else if List.exists (key_equal key) path then Cycle
          else begin
            (* entries are most-recent-first: the first-recorded
               derivation is the last *)
            let e = List.nth entries (List.length entries - 1) in
            let rule =
              if e.se_rule >= 0 && e.se_rule < Array.length rules then
                Some rules.(e.se_rule)
              else None
            in
            Derived
              { ed_rule_id = e.se_rule;
                ed_rule =
                  (match rule with
                   | Some r -> Format.asprintf "%a" Rule.pp_rule r
                   | None -> "<rule " ^ string_of_int e.se_rule ^ ">");
                ed_subst =
                  (match rule with
                   | Some r -> head_substitution r pred fact
                   | None -> []);
                ed_nulls = e.se_nulls;
                ed_premises =
                  List.map
                    (fun (pp, pf) -> go (key :: path) (depth + 1) pp pf)
                    e.se_parents }
          end
    in
    { et_pred = pred; et_fact = fact; et_depth = depth; et_node = node }
  in
  go [] 0 pred fact

let rec pp_explain_tree ppf (t : explain_tree) =
  let pp_fact ppf (p, f) =
    Format.fprintf ppf "%s(%s)" p
      (String.concat ", " (Array.to_list (Array.map Value.to_string f)))
  in
  Format.fprintf ppf "@[<v 2>%a" pp_fact (t.et_pred, t.et_fact);
  (match t.et_node with
   | Ground -> Format.fprintf ppf "  (ground)"
   | Truncated -> Format.fprintf ppf "  (depth limit)"
   | Cycle -> Format.fprintf ppf "  (cycle)"
   | Derived d ->
       Format.fprintf ppf "  <- %s" d.ed_rule;
       if d.ed_subst <> [] then
         Format.fprintf ppf "@,{%s}"
           (String.concat ", "
              (List.map
                 (fun (v, value) ->
                   Printf.sprintf "%s = %s" v (Value.to_string value))
                 d.ed_subst));
       if d.ed_nulls <> [] then
         Format.fprintf ppf "@,invents %s"
           (String.concat ", "
              (List.map (fun n -> "_:" ^ string_of_int n) d.ed_nulls));
       List.iter
         (fun p -> Format.fprintf ppf "@,%a" pp_explain_tree p)
         d.ed_premises);
  Format.fprintf ppf "@]"

let explain_tree_to_string t = Format.asprintf "%a@." pp_explain_tree t
