(** Tuple-level expressions of MetaLog/Vadalog rules (paper, Sec. 4):
    arithmetic, string operations, comparisons, boolean connectives,
    builtin functions and linker Skolem functors. *)

open Kgm_common

type binop = Add | Sub | Mul | Div | Concat

type cmp = Eq | Neq | Lt | Le | Gt | Ge

type t =
  | Const of Value.t
  | Var of string
  | Binop of binop * t * t
  | Cmp of cmp * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Fun of string * t list
      (** builtins: [abs], [min2], [max2], [floor], [ceil], [to_float],
          [to_string], [upper], [lower], [strlen], [substr], [year],
          [pair], [fst], [snd], [unpack], [unpack_or], [null],
          [is_null] *)
  | Skolem of string * t list
      (** linker Skolem functor sk(v): deterministic, injective,
          range-disjoint identifier minting into I (Sec. 4) *)

exception Eval_error of string

val vars : t -> string list
(** Free variables, in occurrence order, duplicates preserved. *)

val pp : Format.formatter -> t -> unit

val eval_fn : (string -> Value.t option) -> t -> Value.t
(** Evaluate against an abstract variable resolver; raises
    {!Eval_error} on unbound variables, type mismatches, unknown
    builtins or division by zero. The engine uses this with a resolver
    over its interned-id bindings. *)

val truthy_fn : (string -> Value.t option) -> t -> bool
(** {!eval_fn} then require a boolean. *)

val eval : (string, Value.t) Hashtbl.t -> t -> Value.t
(** {!eval_fn} over a binding table. *)

val truthy : (string, Value.t) Hashtbl.t -> t -> bool
(** [eval] then require a boolean. *)
