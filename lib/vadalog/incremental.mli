(** Incremental maintenance of a chased materialization.

    A {!state} couples a database with the programs that chased it, the
    {!Engine.support} recorded while chasing, and the current
    extensional database (EDB): the facts that were {e loaded}, as
    opposed to derived. {!maintain} then repairs the materialization in
    place under a batch of extensional inserts and retractions:

    - inserts seed the engine's delta machinery ({!Engine.run_delta}),
      reusing the planner's delta-first plans and the pool's parallel
      rounds — only consequences of the new facts are evaluated;
    - retractions use delete-and-rederive (DRed): the downward closure
      of the retracted facts (the {e overdeletion cone}) is walked over
      the support's reverse edges, an alive-set fixpoint inside the
      cone rederives every fact that still has an all-alive derivation
      from the surviving EDB, and the rest is deleted. A labeled null
      whose creating derivation dies takes every fact carrying it down
      too. Restricted-chase firings that were suppressed because their
      image already existed are re-attempted when that image dies.

    Maintenance is {e stratum-aware}: each phase is stratified once
    ({!Analysis.stratify}) and non-monotone constructs only poison the
    strata that contain them. A stratum the update reaches through
    stratified negation or [Stratified] aggregation is marked
    {e wholesale} — its derived facts are force-deleted through the
    cone and the stratum is re-derived with {!Engine.run} on top of
    the already-maintained lower strata, never from scratch — while
    every other stratum keeps the DRed path. [Monotonic] aggregates
    (the paper's [msum]) are maintained by {e counting}: the chase
    records every distinct contribution (weight and body parents, even
    sub-threshold ones) per group, so a retraction refolds the group's
    surviving contributions and only threshold-crossing head facts
    cascade. A full re-chase ([u_fallback]) survives only for updates
    the machinery genuinely cannot localize: a non-semi-naive engine,
    a monotonic aggregate outside {!Analysis.monotonic_profiles}, or
    an affected non-counting monotonic rule (order-sensitive
    accumulators such as [pack] running totals, or a [sum] that
    recorded a negative weight).

    The repaired database is equal — same facts, labeled nulls
    numbered identically up to the canonical renaming of
    {!canonical_facts} — to a from-scratch chase of the updated EDB, at
    every [jobs] value and with the planner on or off. *)

type state
(** A maintained materialization. Mutable: {!maintain} repairs it in
    place. The underlying database is shared, not copied — reading it
    through {!db} after a [maintain] sees the repaired facts, but note
    that a fallback re-chase replaces the database object itself, so
    always re-fetch it through {!db} rather than caching it. *)

type update_stats = {
  u_inserted : int;     (** extensional facts actually added (not dups) *)
  u_retracted : int;    (** extensional facts actually removed *)
  u_cone : int;         (** size of the overdeletion cone *)
  u_rederived : int;    (** cone facts saved by an alternative derivation *)
  u_deleted : int;      (** facts removed from the database *)
  u_refired : int;      (** suppressed firings re-attempted *)
  u_derived : int;      (** facts added by the seeded semi-naive pass *)
  u_rounds : int;       (** rounds of the seeded pass *)
  u_strata : int;       (** strata re-derived wholesale (negation /
                            stratified aggregation in the update's
                            reach); 0 = pure DRed + counting *)
  u_agg_groups : int;   (** monotonic-aggregate groups touched by the
                            overdeletion cone (counting maintenance) *)
  u_fallback : bool;    (** the batch was served by a full re-chase *)
  u_elapsed_s : float;  (** monotonic wall time of the whole update *)
}

val chase :
  ?options:Engine.options -> ?telemetry:Kgm_telemetry.t ->
  ?journal:Kgm_telemetry.Journal.t ->
  ?db:Database.t -> Rule.program -> state * Engine.stats
(** Chase [program] (against [db] when given, a fresh database
    otherwise) with support recording on, and return the maintainable
    state. Facts already in [db] plus the program's fact list form the
    initial EDB. *)

val chase_phases :
  ?options:Engine.options -> ?telemetry:Kgm_telemetry.t ->
  ?journal:Kgm_telemetry.Journal.t ->
  db:Database.t -> Rule.program list -> state * Engine.stats
(** Like {!chase} for a multi-phase pipeline (e.g. the two materialize
    phases): the phases are chased in order against the same database
    and recorded into one shared support, and {!maintain} replays them
    in the same order. The phase list must be non-empty. *)

val db : state -> Database.t
(** The current materialization. Re-fetch after every {!maintain}. *)

val phases : state -> Rule.program list
(** The chased pipeline, in replay order. *)

val support : state -> Engine.support
(** The live support (provenance edges) backing DRed. Replaced by a
    fallback re-chase, so re-fetch after every {!maintain} — e.g. to
    explain a fact against the current materialization. *)

val edb_facts : state -> (string * Database.fact) list
(** The current extensional facts, in load order. *)

val maintain :
  ?telemetry:Kgm_telemetry.t -> ?journal:Kgm_telemetry.Journal.t -> state ->
  inserts:(string * Database.fact) list ->
  retracts:(string * Database.fact) list -> update_stats
(** Apply a batch of extensional updates and repair the
    materialization. Retractions of facts not currently extensional are
    ignored (a derived fact cannot be retracted — it would be
    rederived); inserts already extensional are ignored. Retractions
    are applied before inserts, so a batch may move a fact. Emits
    [incremental.*] telemetry counters mirroring {!update_stats}; an
    enabled [journal] additionally records [maintain.start], [dred.cone]
    (overdeletion cone / rederivation / deletion sizes) and
    [maintain.end] events around the seeded pass's own event stream. *)

val canonical_facts : Database.t -> (string * Database.fact list) list
(** The database contents in canonical form: predicates sorted, facts
    of each predicate sorted, and labeled nulls renumbered densely from
    0 in order of first occurrence over that sorted stream. Two
    materializations of the same EDB — e.g. a maintained database and a
    from-scratch re-chase — canonicalize identically even though their
    absolute null ids differ (the null counter is process-global). The
    renaming sorts facts with nulls masked by their within-fact
    repetition pattern, which names nulls uniquely for warded chases
    like ours; pathological fact sets that are identical up to a
    cross-fact null permutation may canonicalize to distinct forms
    (never the converse — equal canonical forms always mean isomorphic
    databases). Use {!equal_facts} for an exact decision. *)

val equal_facts : Database.t -> Database.t -> bool
(** Whether the two databases hold the same facts up to a bijective
    renaming of labeled nulls — a true isomorphism check. Equal
    canonical forms decide the common case in one pass; when they
    differ (fact sets identical only up to a cross-fact null
    permutation), an exact backtracking search for the bijection
    settles it, restricted to facts of the same predicate and
    within-fact null pattern. *)
