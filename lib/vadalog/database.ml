(** Fact store of the Vadalog engine: per-predicate sets of tuples with
    lazily built hash indexes on bound-position patterns.

    The dedup set and the indexes are functorized over
    {!Kgm_common.Value.Hashed}: keying them on structural [( = )] /
    [Hashtbl.hash] would make a fact containing [Float nan] never equal
    itself (so every round re-inserts it — a non-termination risk for
    recursive rules over float aggregates) and would distinguish [Id]s
    by their cosmetic hint.

    For the parallel chase the store can be {!freeze}-frozen: a frozen
    database rejects writes and never mutates on {!lookup} (a missing
    index falls back to a linear scan instead of being built), so any
    number of domains may read it concurrently. {!prepare_index} builds
    the indexes a query plan will need {e before} the parallel
    section. *)

open Kgm_common

type fact = Value.t array

let fact_key (f : fact) = Array.to_list f

(* Hashing/equality of fact keys must agree with Value.equal, not with
   structural equality — see the module comment. *)
module Key = struct
  type t = Value.t list

  let equal = List.equal Value.equal
  let hash k = Hashtbl.hash (List.map Value.hash k)
end

module KeyTbl = Hashtbl.Make (Key)

type pred_store = {
  mutable facts : fact list;                     (* reverse insertion order *)
  mutable count : int;
  set : unit KeyTbl.t;
  indexes : (int list, fact list ref KeyTbl.t) Hashtbl.t;
}

type t = {
  preds : (string, pred_store) Hashtbl.t;
  mutable total : int;
  mutable frozen : bool;
}

let create () = { preds = Hashtbl.create 64; total = 0; frozen = false }

let store t pred =
  match Hashtbl.find_opt t.preds pred with
  | Some s -> s
  | None ->
      let s =
        { facts = []; count = 0; set = KeyTbl.create 256; indexes = Hashtbl.create 4 }
      in
      Hashtbl.add t.preds pred s;
      s

(* A predicate may hold facts of several arities (nothing enforces a
   unique arity per name); a fact too short for the position pattern
   simply has no key under it. *)
let index_key positions fact =
  let n = Array.length fact in
  if List.exists (fun i -> i >= n) positions then None
  else Some (List.map (fun i -> fact.(i)) positions)

let index_insert idx positions fact =
  match index_key positions fact with
  | None -> ()
  | Some k -> (
      match KeyTbl.find_opt idx k with
      | Some l -> l := fact :: !l
      | None -> KeyTbl.add idx k (ref [ fact ]))

(** [add t pred fact] returns [true] when the fact is new. *)
let add t pred fact =
  if t.frozen then invalid_arg "Database.add: database is frozen";
  (* chaos site: a crash here lands mid-round, which is exactly what the
     checkpoint/resume tests need to provoke (one ref read when fault
     injection is off) *)
  Kgm_resilience.Faults.inject "db_insert";
  let s = store t pred in
  let k = fact_key fact in
  if KeyTbl.mem s.set k then false
  else begin
    KeyTbl.add s.set k ();
    s.facts <- fact :: s.facts;
    s.count <- s.count + 1;
    t.total <- t.total + 1;
    Hashtbl.iter (fun positions idx -> index_insert idx positions fact) s.indexes;
    true
  end

let mem t pred fact =
  match Hashtbl.find_opt t.preds pred with
  | Some s -> KeyTbl.mem s.set (fact_key fact)
  | None -> false

let facts t pred =
  match Hashtbl.find_opt t.preds pred with
  | Some s -> List.rev s.facts
  | None -> []

let count t pred =
  match Hashtbl.find_opt t.preds pred with Some s -> s.count | None -> 0

let total t = t.total

let predicates t =
  Hashtbl.fold (fun p _ acc -> p :: acc) t.preds [] |> List.sort String.compare

let build_index s positions =
  let idx = KeyTbl.create (max 64 s.count) in
  List.iter (fun f -> index_insert idx positions f) s.facts;
  Hashtbl.add s.indexes positions idx;
  idx

let freeze t = t.frozen <- true
let thaw t = t.frozen <- false
let is_frozen t = t.frozen

let prepare_index t pred positions =
  if positions <> [] then
    match Hashtbl.find_opt t.preds pred with
    | None -> ()
    | Some s ->
        if not (Hashtbl.mem s.indexes positions) then ignore (build_index s positions)

(** Facts whose values at [positions] equal [key]. Builds (and then
    maintains) a hash index for the position pattern on first use; an
    empty pattern is a full scan. On a frozen database a missing index
    is answered by a linear scan instead (no mutation). *)
let lookup t pred positions key =
  match Hashtbl.find_opt t.preds pred with
  | None -> []
  | Some s ->
      if positions = [] then List.rev s.facts
      else begin
        match Hashtbl.find_opt s.indexes positions with
        | Some idx -> (
            match KeyTbl.find_opt idx key with
            | Some l -> List.rev !l
            | None -> [])
        | None ->
            if t.frozen then
              List.rev
                (List.filter
                   (fun f ->
                     match index_key positions f with
                     | Some k -> Key.equal k key
                     | None -> false)
                   s.facts)
            else begin
              let idx = build_index s positions in
              match KeyTbl.find_opt idx key with
              | Some l -> List.rev !l
              | None -> []
            end
      end

let copy t =
  let t' = create () in
  Hashtbl.iter
    (fun pred s ->
      List.iter (fun f -> ignore (add t' pred (Array.copy f))) (List.rev s.facts))
    t.preds;
  t'

let pp ppf t =
  List.iter
    (fun pred ->
      List.iter
        (fun f ->
          Format.fprintf ppf "%s(%s).@." pred
            (String.concat ", " (List.map Value.to_string (Array.to_list f))))
        (facts t pred))
    (predicates t)
