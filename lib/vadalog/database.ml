(** Fact store of the Vadalog engine: per-predicate sets of tuples with
    lazily built hash indexes on bound-position patterns.

    The dedup set and the indexes are functorized over
    {!Kgm_common.Value.Hashed_array} / {!Kgm_common.Value.Hashed}: keying
    them on structural [( = )] / [Hashtbl.hash] would make a fact
    containing [Float nan] never equal itself (so every round re-inserts
    it — a non-termination risk for recursive rules over float
    aggregates) and would distinguish [Id]s by their cosmetic hint.

    Facts live in per-predicate append-order buffers (doubling arrays),
    so insertion order is the storage order: probes and {!facts} never
    reverse a list, and every fact carries an insertion sequence number
    that the engine uses as a deterministic sort key. The dedup table is
    keyed on the [Value.t array] fact itself — no list key is allocated
    per {!add}/{!mem} probe.

    For the parallel chase the store can be {!freeze}-frozen: a frozen
    database rejects writes and never mutates on {!lookup} (a missing
    index falls back to a linear scan instead of being built), so any
    number of domains may read it concurrently. {!prepare_index} builds
    the indexes a query plan will need {e before} the parallel
    section. *)

open Kgm_common

type fact = Value.t array

(* Hashing/equality of fact keys must agree with Value.equal, not with
   structural equality — see the module comment. *)
module Key = struct
  type t = Value.t list

  let equal = List.equal Value.equal
  let hash k = Hashtbl.hash (List.map Value.hash k)
end

module KeyTbl = Hashtbl.Make (Key)
module FactTbl = Hashtbl.Make (Value.Hashed_array)

(* Growable array of ascending insertion sequences (index postings). *)
type postings = { mutable p_seq : int array; mutable p_len : int }

let postings_add ps seq =
  if ps.p_len = Array.length ps.p_seq then begin
    let cap = max 8 (2 * ps.p_len) in
    let a = Array.make cap 0 in
    Array.blit ps.p_seq 0 a 0 ps.p_len;
    ps.p_seq <- a
  end;
  ps.p_seq.(ps.p_len) <- seq;
  ps.p_len <- ps.p_len + 1

type pred_store = {
  mutable arr : fact array;  (* arr.(0 .. count-1) in insertion order *)
  mutable count : int;
  seqs : int FactTbl.t;      (* dedup set: fact -> insertion sequence *)
  indexes : (int list, postings KeyTbl.t) Hashtbl.t;
}

type t = {
  preds : (string, pred_store) Hashtbl.t;
  mutable total : int;
  mutable frozen : bool;
}

let create () = { preds = Hashtbl.create 64; total = 0; frozen = false }

let store t pred =
  match Hashtbl.find_opt t.preds pred with
  | Some s -> s
  | None ->
      let s =
        { arr = [||]; count = 0; seqs = FactTbl.create 256; indexes = Hashtbl.create 4 }
      in
      Hashtbl.add t.preds pred s;
      s

(* A predicate may hold facts of several arities (nothing enforces a
   unique arity per name); a fact too short for the position pattern
   simply has no key under it. *)
let index_key positions fact =
  let n = Array.length fact in
  if List.exists (fun i -> i >= n) positions then None
  else Some (List.map (fun i -> fact.(i)) positions)

let index_insert idx positions fact seq =
  match index_key positions fact with
  | None -> ()
  | Some k -> (
      match KeyTbl.find_opt idx k with
      | Some ps -> postings_add ps seq
      | None ->
          let ps = { p_seq = Array.make 8 0; p_len = 0 } in
          postings_add ps seq;
          KeyTbl.add idx k ps)

let buffer_append s fact =
  if s.count = Array.length s.arr then begin
    let cap = max 16 (2 * s.count) in
    let a = Array.make cap [||] in
    Array.blit s.arr 0 a 0 s.count;
    s.arr <- a
  end;
  s.arr.(s.count) <- fact;
  s.count <- s.count + 1

(** [add t pred fact] returns [true] when the fact is new. *)
let add t pred fact =
  if t.frozen then invalid_arg "Database.add: database is frozen";
  (* chaos site: a crash here lands mid-round, which is exactly what the
     checkpoint/resume tests need to provoke (one ref read when fault
     injection is off) *)
  Kgm_resilience.Faults.inject "db_insert";
  let s = store t pred in
  if FactTbl.mem s.seqs fact then false
  else begin
    let seq = s.count in
    FactTbl.add s.seqs fact seq;
    buffer_append s fact;
    t.total <- t.total + 1;
    Hashtbl.iter (fun positions idx -> index_insert idx positions fact seq) s.indexes;
    true
  end

let mem t pred fact =
  match Hashtbl.find_opt t.preds pred with
  | Some s -> FactTbl.mem s.seqs fact
  | None -> false

let facts t pred =
  match Hashtbl.find_opt t.preds pred with
  | None -> []
  | Some s -> List.init s.count (fun i -> s.arr.(i))

let count t pred =
  match Hashtbl.find_opt t.preds pred with Some s -> s.count | None -> 0

let total t = t.total

let predicates t =
  Hashtbl.fold (fun p _ acc -> p :: acc) t.preds [] |> List.sort String.compare

let build_index s positions =
  let idx = KeyTbl.create (max 64 s.count) in
  for i = 0 to s.count - 1 do
    index_insert idx positions s.arr.(i) i
  done;
  Hashtbl.add s.indexes positions idx;
  idx

(** [remove_batch t facts] deletes every listed (pred, fact) pair that
    is present and returns how many were removed. Each affected
    predicate store is rebuilt in one sweep: survivors keep their
    relative order and are renumbered densely from 0, and the store's
    index patterns are rebuilt over the survivors — so after a removal
    the store is indistinguishable from one into which only the
    survivors were ever inserted, which is what the incremental
    maintenance layer's determinism argument needs. Duplicates in
    [facts] are counted once. Raises [Invalid_argument] when frozen. *)
let remove_batch t facts =
  if t.frozen then invalid_arg "Database.remove_batch: database is frozen";
  (* group the doomed facts per predicate, dedup'd via a probe table *)
  let by_pred : (string, unit FactTbl.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (pred, fact) ->
      if mem t pred fact then begin
        let set =
          match Hashtbl.find_opt by_pred pred with
          | Some s -> s
          | None ->
              let s = FactTbl.create 16 in
              Hashtbl.add by_pred pred s;
              s
        in
        FactTbl.replace set fact ()
      end)
    facts;
  let removed = ref 0 in
  Hashtbl.iter
    (fun pred doomed ->
      match Hashtbl.find_opt t.preds pred with
      | None -> ()
      | Some s ->
          let patterns =
            Hashtbl.fold (fun positions _ acc -> positions :: acc) s.indexes []
          in
          let old_arr = s.arr and old_count = s.count in
          s.arr <- [||];
          s.count <- 0;
          FactTbl.reset s.seqs;
          Hashtbl.reset s.indexes;
          for i = 0 to old_count - 1 do
            let fact = old_arr.(i) in
            if FactTbl.mem doomed fact then begin
              incr removed;
              t.total <- t.total - 1
            end
            else begin
              let seq = s.count in
              FactTbl.add s.seqs fact seq;
              buffer_append s fact
            end
          done;
          List.iter
            (fun positions ->
              ignore (build_index s positions))
            patterns)
    by_pred;
  !removed

let freeze t = t.frozen <- true
let thaw t = t.frozen <- false
let is_frozen t = t.frozen

let prepare_index t pred positions =
  if positions <> [] then
    match Hashtbl.find_opt t.preds pred with
    | None -> ()
    | Some s ->
        if not (Hashtbl.mem s.indexes positions) then ignore (build_index s positions)

let indexed_patterns t pred =
  match Hashtbl.find_opt t.preds pred with
  | None -> []
  | Some s ->
      Hashtbl.fold (fun positions _ acc -> positions :: acc) s.indexes []
      |> List.sort compare

(** [iter_matches t pred positions key f] calls [f seq fact] for every
    fact whose values at [positions] equal [key], in ascending insertion
    order ([seq] is the fact's per-predicate insertion sequence). Same
    index semantics as {!lookup}, without allocating a result list.
    Returns the number of facts {e examined} to produce the matches: the
    index-group length when an index serves the probe (or is built, when
    the store is unfrozen), but the whole predicate on the frozen
    missing-index path, where the probe degrades to a linear scan — the
    honest probe cost the engine's [rs_probes] counter reports. *)
let iter_matches t pred positions key f =
  match Hashtbl.find_opt t.preds pred with
  | None -> 0
  | Some s ->
      if positions = [] then begin
        for i = 0 to s.count - 1 do
          f i s.arr.(i)
        done;
        s.count
      end
      else begin
        match Hashtbl.find_opt s.indexes positions with
        | Some idx -> (
            match KeyTbl.find_opt idx key with
            | Some ps ->
                for i = 0 to ps.p_len - 1 do
                  let seq = ps.p_seq.(i) in
                  f seq s.arr.(seq)
                done;
                ps.p_len
            | None -> 0)
        | None ->
            if t.frozen then begin
              for i = 0 to s.count - 1 do
                match index_key positions s.arr.(i) with
                | Some k when Key.equal k key -> f i s.arr.(i)
                | _ -> ()
              done;
              s.count
            end
            else begin
              let idx = build_index s positions in
              match KeyTbl.find_opt idx key with
              | Some ps ->
                  for i = 0 to ps.p_len - 1 do
                    let seq = ps.p_seq.(i) in
                    f seq s.arr.(seq)
                  done;
                  ps.p_len
              | None -> 0
            end
      end

(** Facts whose values at [positions] equal [key], in insertion order.
    Builds (and then maintains) a hash index for the position pattern on
    first use; an empty pattern is a full scan. On a frozen database a
    missing index is answered by a linear scan instead (no mutation). *)
let lookup t pred positions key =
  let acc = ref [] in
  ignore (iter_matches t pred positions key (fun _ f -> acc := f :: !acc));
  List.rev !acc

let copy t =
  let t' = create () in
  Hashtbl.iter
    (fun pred s ->
      for i = 0 to s.count - 1 do
        ignore (add t' pred (Array.copy s.arr.(i)))
      done;
      (* carry the source's index patterns over: a frozen copy could
         otherwise never build them and would linear-scan every probe *)
      Hashtbl.iter (fun positions _ -> prepare_index t' pred positions) s.indexes)
    t.preds;
  t'.frozen <- t.frozen;
  t'

let pp ppf t =
  List.iter
    (fun pred ->
      List.iter
        (fun f ->
          Format.fprintf ppf "%s(%s).@." pred
            (String.concat ", " (List.map Value.to_string (Array.to_list f))))
        (facts t pred))
    (predicates t)
