(** Fact store of the Vadalog engine: per-predicate sets of tuples with
    lazily built hash indexes on bound-position patterns.

    Facts are dictionary-encoded: every {!Kgm_common.Value.t} is
    interned into a dense int id ({!Kgm_common.Intern}) and a stored
    fact is an unboxed [int array]. Probes, dedup and index keys
    compare and hash machine ints — O(1) equality, no structural
    traversal of boxed values on the hot path. The dictionary is owned
    by the database (shared by {!copy}) and interning agrees with
    [Value.equal], so a fact containing [Float nan] still equals itself
    (interning it twice yields the same id) and [Id]s are not
    distinguished by their cosmetic hint.

    Facts live in per-predicate append-order buffers (doubling arrays),
    so insertion order is the storage order: probes and {!facts} never
    reverse a list, and every fact carries an insertion sequence number
    that the engine uses as a deterministic sort key. The dedup table is
    keyed on the [int array] fact itself — no list key is allocated per
    {!add}/{!mem} probe.

    For the parallel chase the store can be {!freeze}-frozen: a frozen
    database rejects writes and never mutates on {!lookup} (a missing
    index falls back to a linear scan instead of being built, and a
    probe key containing a value absent from the dictionary simply has
    no matches), so any number of domains may read it — and the
    read-only dictionary — concurrently. {!prepare_index} builds the
    indexes a query plan will need {e before} the parallel section. *)

open Kgm_common

type fact = Value.t array
type ifact = int array

(* Value-keyed table for callers that key on resolved tuples (the
   engine's aggregate states among them). Hashing/equality must agree
   with Value.equal, not with structural equality. *)
module Key = struct
  type t = Value.t list

  let equal = List.equal Value.equal

  (* an explicit seeded FNV-style fold over the element hashes:
     [Hashtbl.hash] on the hash list would stop mixing after its
     default 10 meaningful nodes, so wide keys differing only past
     position 10 would all collide into one bucket *)
  let hash k =
    List.fold_left
      (fun h v -> (h * 0x01000193) lxor Value.hash v)
      0x811c9dc5 k
    land max_int
end

module KeyTbl = Hashtbl.Make (Key)

(* Interned probe keys: the values at a pattern's positions, as ids. *)
module IKey = struct
  type t = int list

  let equal = List.equal Int.equal
  let hash k = List.fold_left (fun h i -> (h * 31) + i) 17 k
end

module IKeyTbl = Hashtbl.Make (IKey)

(* Interned facts: pointwise int equality, multiplicative hash. *)
module IFact = struct
  type t = int array

  let equal a b =
    let n = Array.length a in
    n = Array.length b
    &&
    let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
    go 0

  let hash f = Array.fold_left (fun h i -> (h * 31) + i) (Array.length f) f
end

module IFactTbl = Hashtbl.Make (IFact)

(* Growable array of ascending insertion sequences (index postings). *)
type postings = { mutable p_seq : int array; mutable p_len : int }

let postings_add ps seq =
  if ps.p_len = Array.length ps.p_seq then begin
    let cap = max 8 (2 * ps.p_len) in
    let a = Array.make cap 0 in
    Array.blit ps.p_seq 0 a 0 ps.p_len;
    ps.p_seq <- a
  end;
  ps.p_seq.(ps.p_len) <- seq;
  ps.p_len <- ps.p_len + 1

type pred_store = {
  mutable arr : ifact array;  (* arr.(0 .. count-1) in insertion order *)
  mutable count : int;
  seqs : int IFactTbl.t;      (* dedup set: fact -> insertion sequence *)
  indexes : (int list, postings IKeyTbl.t) Hashtbl.t;
}

type t = {
  preds : (string, pred_store) Hashtbl.t;
  dict : Intern.t;
  mutable total : int;
  mutable frozen : bool;
}

let create ?dict () =
  let dict = match dict with Some d -> d | None -> Intern.create () in
  { preds = Hashtbl.create 64; dict; total = 0; frozen = false }

let dict t = t.dict
let intern_fact t (f : fact) : ifact = Array.map (Intern.intern t.dict) f
let resolve_fact t (f : ifact) : fact = Array.map (Intern.resolve t.dict) f

(* Read-only encoding of a fact; [None] when some value was never
   interned (then the fact cannot be stored here). Frozen-safe. *)
let find_fact t (f : fact) : ifact option =
  let n = Array.length f in
  let out = Array.make n 0 in
  let rec go i =
    if i >= n then Some out
    else
      match Intern.find t.dict f.(i) with
      | Some id ->
          out.(i) <- id;
          go (i + 1)
      | None -> None
  in
  go 0

let find_key t (k : Value.t list) : int list option =
  let rec go = function
    | [] -> Some []
    | v :: rest -> (
        match Intern.find t.dict v with
        | Some id -> ( match go rest with Some ids -> Some (id :: ids) | None -> None)
        | None -> None)
  in
  go k

let store t pred =
  match Hashtbl.find_opt t.preds pred with
  | Some s -> s
  | None ->
      let s =
        { arr = [||]; count = 0; seqs = IFactTbl.create 256; indexes = Hashtbl.create 4 }
      in
      Hashtbl.add t.preds pred s;
      s

(* A predicate may hold facts of several arities (nothing enforces a
   unique arity per name); a fact too short for the position pattern
   simply has no key under it. *)
let index_key positions (fact : ifact) =
  let n = Array.length fact in
  if List.exists (fun i -> i >= n) positions then None
  else Some (List.map (fun i -> fact.(i)) positions)

let index_insert idx positions fact seq =
  match index_key positions fact with
  | None -> ()
  | Some k -> (
      match IKeyTbl.find_opt idx k with
      | Some ps -> postings_add ps seq
      | None ->
          let ps = { p_seq = Array.make 8 0; p_len = 0 } in
          postings_add ps seq;
          IKeyTbl.add idx k ps)

let buffer_append s fact =
  if s.count = Array.length s.arr then begin
    let cap = max 16 (2 * s.count) in
    let a = Array.make cap [||] in
    Array.blit s.arr 0 a 0 s.count;
    s.arr <- a
  end;
  s.arr.(s.count) <- fact;
  s.count <- s.count + 1

(** [add_i t pred ifact] inserts an already-interned fact; returns
    [true] when it is new. *)
let add_i t pred (fact : ifact) =
  if t.frozen then invalid_arg "Database.add: database is frozen";
  (* chaos site: a crash here lands mid-round, which is exactly what the
     checkpoint/resume tests need to provoke (one ref read when fault
     injection is off) *)
  Kgm_resilience.Faults.inject "db_insert";
  let s = store t pred in
  if IFactTbl.mem s.seqs fact then false
  else begin
    let seq = s.count in
    IFactTbl.add s.seqs fact seq;
    buffer_append s fact;
    t.total <- t.total + 1;
    Hashtbl.iter (fun positions idx -> index_insert idx positions fact seq) s.indexes;
    true
  end

(** [add t pred fact] returns [true] when the fact is new. *)
let add t pred fact =
  if t.frozen then invalid_arg "Database.add: database is frozen";
  add_i t pred (intern_fact t fact)

let mem_i t pred (fact : ifact) =
  match Hashtbl.find_opt t.preds pred with
  | Some s -> IFactTbl.mem s.seqs fact
  | None -> false

let mem t pred fact =
  match find_fact t fact with Some f -> mem_i t pred f | None -> false

let facts_i t pred =
  match Hashtbl.find_opt t.preds pred with
  | None -> []
  | Some s -> List.init s.count (fun i -> s.arr.(i))

let facts t pred =
  match Hashtbl.find_opt t.preds pred with
  | None -> []
  | Some s -> List.init s.count (fun i -> resolve_fact t s.arr.(i))

let count t pred =
  match Hashtbl.find_opt t.preds pred with Some s -> s.count | None -> 0

let total t = t.total

let predicates t =
  Hashtbl.fold (fun p _ acc -> p :: acc) t.preds [] |> List.sort String.compare

let build_index s positions =
  let idx = IKeyTbl.create (max 64 s.count) in
  for i = 0 to s.count - 1 do
    index_insert idx positions s.arr.(i) i
  done;
  Hashtbl.add s.indexes positions idx;
  idx

(** [remove_batch t facts] deletes every listed (pred, fact) pair that
    is present and returns how many were removed. Each affected
    predicate store is rebuilt in one sweep: survivors keep their
    relative order and are renumbered densely from 0, and the store's
    index patterns are rebuilt over the survivors — so after a removal
    the store is indistinguishable from one into which only the
    survivors were ever inserted, which is what the incremental
    maintenance layer's determinism argument needs. Duplicates in
    [facts] are counted once. Raises [Invalid_argument] when frozen.
    (The dictionary is append-only: ids of removed facts stay interned,
    which is harmless — membership is decided by the dedup set.) *)
let remove_batch ?on_remove t facts =
  if t.frozen then invalid_arg "Database.remove_batch: database is frozen";
  (* group the doomed facts per predicate, dedup'd via a probe table *)
  let by_pred : (string, unit IFactTbl.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (pred, fact) ->
      match find_fact t fact with
      | None -> ()
      | Some ifact ->
          if mem_i t pred ifact then begin
            let set =
              match Hashtbl.find_opt by_pred pred with
              | Some s -> s
              | None ->
                  let s = IFactTbl.create 16 in
                  Hashtbl.add by_pred pred s;
                  s
            in
            IFactTbl.replace set ifact ()
          end)
    facts;
  let notify pred ifact =
    match on_remove with
    | Some f -> f pred (resolve_fact t ifact)
    | None -> ()
  in
  let removed = ref 0 in
  Hashtbl.iter
    (fun pred doomed ->
      match Hashtbl.find_opt t.preds pred with
      | None -> ()
      | Some s ->
          let patterns =
            Hashtbl.fold (fun positions _ acc -> positions :: acc) s.indexes []
          in
          let old_arr = s.arr and old_count = s.count in
          s.arr <- [||];
          s.count <- 0;
          IFactTbl.reset s.seqs;
          Hashtbl.reset s.indexes;
          for i = 0 to old_count - 1 do
            let fact = old_arr.(i) in
            if IFactTbl.mem doomed fact then begin
              incr removed;
              t.total <- t.total - 1;
              notify pred fact
            end
            else begin
              let seq = s.count in
              IFactTbl.add s.seqs fact seq;
              buffer_append s fact
            end
          done;
          if s.count = 0 then
            (* a predicate emptied by the sweep disappears entirely:
               keeping a ghost store would make [predicates] (and the
               maintenance layer's canonical forms) disagree with a
               database into which only the survivors were inserted *)
            Hashtbl.remove t.preds pred
          else
            List.iter
              (fun positions -> ignore (build_index s positions))
              patterns)
    by_pred;
  !removed

let freeze t = t.frozen <- true
let thaw t = t.frozen <- false
let is_frozen t = t.frozen

let prepare_index t pred positions =
  if positions <> [] then
    match Hashtbl.find_opt t.preds pred with
    | None -> ()
    | Some s ->
        if not (Hashtbl.mem s.indexes positions) then ignore (build_index s positions)

let indexed_patterns t pred =
  match Hashtbl.find_opt t.preds pred with
  | None -> []
  | Some s ->
      Hashtbl.fold (fun positions _ acc -> positions :: acc) s.indexes []
      |> List.sort compare

(** [iter_matches_i t pred positions key f] calls [f seq ifact] for
    every fact whose ids at [positions] equal [key], in ascending
    insertion order ([seq] is the fact's per-predicate insertion
    sequence). Returns the number of facts {e examined} to produce the
    matches: the index-group length when an index serves the probe (or
    is built, when the store is unfrozen), but the whole predicate on
    the frozen missing-index path, where the probe degrades to a linear
    scan — the honest probe cost the engine's [rs_probes] counter
    reports. *)
let iter_matches_i t pred positions key f =
  match Hashtbl.find_opt t.preds pred with
  | None -> 0
  | Some s ->
      if positions = [] then begin
        for i = 0 to s.count - 1 do
          f i s.arr.(i)
        done;
        s.count
      end
      else begin
        match Hashtbl.find_opt s.indexes positions with
        | Some idx -> (
            match IKeyTbl.find_opt idx key with
            | Some ps ->
                for i = 0 to ps.p_len - 1 do
                  let seq = ps.p_seq.(i) in
                  f seq s.arr.(seq)
                done;
                ps.p_len
            | None -> 0)
        | None ->
            if t.frozen then begin
              for i = 0 to s.count - 1 do
                match index_key positions s.arr.(i) with
                | Some k when IKey.equal k key -> f i s.arr.(i)
                | _ -> ()
              done;
              s.count
            end
            else begin
              let idx = build_index s positions in
              match IKeyTbl.find_opt idx key with
              | Some ps ->
                  for i = 0 to ps.p_len - 1 do
                    let seq = ps.p_seq.(i) in
                    f seq s.arr.(seq)
                  done;
                  ps.p_len
              | None -> 0
            end
      end

(** Interned facts whose ids at [positions] equal [key], in insertion
    order (see {!iter_matches_i} for the index semantics). *)
let lookup_i t pred positions key =
  let acc = ref [] in
  ignore (iter_matches_i t pred positions key (fun _ f -> acc := f :: !acc));
  List.rev !acc

(** Value-level probe: same semantics as {!iter_matches_i} after
    encoding the key through the dictionary. A key containing a value
    that was never interned matches nothing and examines nothing (such
    a value cannot occur in any stored fact) — in particular the probe
    never mutates the dictionary, so it is frozen-safe. *)
let iter_matches t pred positions key f =
  match find_key t key with
  | None -> 0
  | Some ikey -> iter_matches_i t pred positions ikey (fun seq ifact -> f seq (resolve_fact t ifact))

(** Facts whose values at [positions] equal [key], in insertion order.
    Builds (and then maintains) a hash index for the position pattern on
    first use; an empty pattern is a full scan. On a frozen database a
    missing index is answered by a linear scan instead (no mutation). *)
let lookup t pred positions key =
  let acc = ref [] in
  ignore (iter_matches t pred positions key (fun _ f -> acc := f :: !acc));
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Side-car index cache for frozen stores.

   A frozen database answers a probe on an unprepared pattern with a
   full linear scan (it must not mutate itself — any number of domains
   may be reading it). For a serving layer that sees the same pattern
   on every request that is an O(n) scan per request; an [index_cache]
   amortizes it: the first probe builds the pattern's index {e outside}
   the store, under the cache's mutex, and every later probe (from any
   domain) answers through the cached index. The mutex protects only
   the lookup/build step; a published index is immutable, so probes
   read it lock-free. Safe only against a frozen store (the postings
   would go stale under writes), which is exactly the epoch-snapshot
   use the reasoning server makes of it. *)

type index_cache = {
  ic_mu : Mutex.t;
  ic_tbl : (string * int list, postings IKeyTbl.t) Hashtbl.t;
}

let cache_create () = { ic_mu = Mutex.create (); ic_tbl = Hashtbl.create 8 }

let cached_patterns c =
  Mutex.lock c.ic_mu;
  let ps = Hashtbl.fold (fun k _ acc -> k :: acc) c.ic_tbl [] in
  Mutex.unlock c.ic_mu;
  List.sort compare ps

(* build the pattern's index without attaching it to the store *)
let build_detached s positions =
  let idx = IKeyTbl.create (max 64 s.count) in
  for i = 0 to s.count - 1 do
    index_insert idx positions s.arr.(i) i
  done;
  idx

let cache_index c t pred positions =
  match Hashtbl.find_opt t.preds pred with
  | None -> None
  | Some s -> (
      match Hashtbl.find_opt s.indexes positions with
      | Some idx -> Some (s, idx) (* the store itself is prepared *)
      | None ->
          Mutex.lock c.ic_mu;
          let idx =
            match Hashtbl.find_opt c.ic_tbl (pred, positions) with
            | Some idx -> idx
            | None ->
                let idx = build_detached s positions in
                Hashtbl.add c.ic_tbl (pred, positions) idx;
                idx
          in
          Mutex.unlock c.ic_mu;
          Some (s, idx))

(** [iter_matches_cached cache t pred positions key f] — the semantics
    of {!iter_matches}, but a missing index on a frozen store is built
    once into [cache] (thread-safe) instead of degrading to a linear
    scan per probe. The returned examined count is the postings length
    (the probe is indexed either way after the first call). *)
let iter_matches_cached c t pred positions key f =
  if positions = [] || not t.frozen then iter_matches t pred positions key f
  else
    match find_key t key with
    | None -> 0
    | Some ikey -> (
        match cache_index c t pred positions with
        | None -> 0
        | Some (s, idx) -> (
            match IKeyTbl.find_opt idx ikey with
            | Some ps ->
                for i = 0 to ps.p_len - 1 do
                  let seq = ps.p_seq.(i) in
                  f seq (resolve_fact t s.arr.(seq))
                done;
                ps.p_len
            | None -> 0))

let copy t =
  (* the dictionary is shared: ids remain stable across copies, which
     lets the engine compare and ship interned facts between a store
     and its frozen snapshot *)
  let t' = create ~dict:t.dict () in
  Hashtbl.iter
    (fun pred s ->
      for i = 0 to s.count - 1 do
        ignore (add_i t' pred (Array.copy s.arr.(i)))
      done;
      (* carry the source's index patterns over: a frozen copy could
         otherwise never build them and would linear-scan every probe *)
      Hashtbl.iter (fun positions _ -> prepare_index t' pred positions) s.indexes)
    t.preds;
  t'.frozen <- t.frozen;
  t'

let pp ppf t =
  List.iter
    (fun pred ->
      List.iter
        (fun f ->
          Format.fprintf ppf "%s(%s).@." pred
            (String.concat ", " (List.map Value.to_string (Array.to_list f))))
        (facts t pred))
    (predicates t)
