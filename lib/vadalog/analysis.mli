(** Static analysis of Vadalog programs (paper, Sec. 4): the predicate
    dependency graph, stratification, and the {e wardedness} check
    behind the PTIME data-complexity guarantee. *)

module SMap : Map.S with type key = string
module SSet : Set.S with type elt = string

type edge_kind =
  | Positive    (** plain positive dependency (monotonic aggregates too) *)
  | Negative    (** through stratified negation *)
  | Aggregated  (** through a stratified aggregate *)

type dep_edge = {
  from_pred : string;
  to_pred : string;
  kind : edge_kind;
  via_rule : int;  (** index in the program's rule list *)
}

type t = {
  preds : SSet.t;
  edges : dep_edge list;
  strata : string list list;  (** bottom-up predicate groups *)
  stratum_of : int SMap.t;
  recursive : bool array;
      (** [recursive.(s)]: stratum [s]'s SCC has an internal dependency
          edge (a self-loop or a component of several predicates), so
          its fixpoint needs delta rounds; a non-recursive stratum is
          complete after one round. *)
}

val dependency_edges : Rule.program -> dep_edge list

val stratify : Rule.program -> t
(** Raises [Kgm_error.Error] ([Validate]) when a negative or
    stratified-aggregation dependency lies on a cycle. *)

val is_recursive_program : Rule.program -> bool

(** {1 Maintenance-oriented lookups}

    Helpers for stratum-aware incremental maintenance
    ({!Incremental}): mapping rules to the strata they fire in, and
    classifying monotonic aggregates for counting maintenance. *)

val stratum_of_pred : t -> string -> int
(** The stratum a predicate belongs to; 0 for unknown predicates. *)

val rule_strata : t -> Rule.program -> int array
(** Per rule (positional), the stratum the engine evaluates it in: the
    maximum stratum over its head predicates. *)

type agg_profile = {
  ap_rule : int;  (** rule index in the program *)
  ap_agg : Rule.aggregate;
  ap_group_vars : string list;
      (** the group key, in the exact variable order the engine uses *)
  ap_conds : Expr.t list;  (** conditions after the aggregate literal *)
  ap_counting : bool;
      (** the rule is counting-maintainable: its derived heads per
          group depend only on the group's {e final} accumulator, not
          on contribution order — see {!monotonic_profiles} *)
}

val monotonic_profiles : Rule.program -> agg_profile list
(** One profile per rule whose single aggregate literal is
    [Monotonic]. [ap_counting] holds when the aggregate's op is
    monotone-nondecreasing ([sum]/[count]/[max] — [msum] semantics),
    everything after the aggregate is a condition over the group
    variables and the result, every condition mentioning the result is
    monotone-up in it (a [>]/[>=] threshold), and neither contributors
    nor the result reach the head (no running totals) and the head has
    no existentials. Under those conditions a head fact holds iff the
    final group total passes the threshold, so retracting a
    contributor can be served by decrementing group state and
    re-checking — the basis of DRed counting maintenance. *)

(** {1 Wardedness} *)

type position = string * int
(** (predicate, argument index) *)

type ward_report = {
  warded : bool;
  violations : string list;
  affected : position list;
      (** positions that may host labeled nulls (the affected-position
          fixpoint) *)
}

val wardedness : Rule.program -> ward_report
(** A rule is warded when its dangerous variables (body variables that
    occur only in affected positions and propagate to the head) all
    co-occur in one single body atom — the ward. *)

val safety_report : Rule.program -> string list
(** Range-restriction violations: unbound variables in negations,
    conditions, assignments or aggregates. Empty = safe. *)
