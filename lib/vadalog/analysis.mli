(** Static analysis of Vadalog programs (paper, Sec. 4): the predicate
    dependency graph, stratification, and the {e wardedness} check
    behind the PTIME data-complexity guarantee. *)

module SMap : Map.S with type key = string
module SSet : Set.S with type elt = string

type edge_kind =
  | Positive    (** plain positive dependency (monotonic aggregates too) *)
  | Negative    (** through stratified negation *)
  | Aggregated  (** through a stratified aggregate *)

type dep_edge = {
  from_pred : string;
  to_pred : string;
  kind : edge_kind;
  via_rule : int;  (** index in the program's rule list *)
}

type t = {
  preds : SSet.t;
  edges : dep_edge list;
  strata : string list list;  (** bottom-up predicate groups *)
  stratum_of : int SMap.t;
  recursive : bool array;
      (** [recursive.(s)]: stratum [s]'s SCC has an internal dependency
          edge (a self-loop or a component of several predicates), so
          its fixpoint needs delta rounds; a non-recursive stratum is
          complete after one round. *)
}

val dependency_edges : Rule.program -> dep_edge list

val stratify : Rule.program -> t
(** Raises [Kgm_error.Error] ([Validate]) when a negative or
    stratified-aggregation dependency lies on a cycle. *)

val is_recursive_program : Rule.program -> bool

(** {1 Wardedness} *)

type position = string * int
(** (predicate, argument index) *)

type ward_report = {
  warded : bool;
  violations : string list;
  affected : position list;
      (** positions that may host labeled nulls (the affected-position
          fixpoint) *)
}

val wardedness : Rule.program -> ward_report
(** A rule is warded when its dangerous variables (body variables that
    occur only in affected positions and propagate to the head) all
    co-occur in one single body atom — the ward. *)

val safety_report : Rule.program -> string list
(** Range-restriction violations: unbound variables in negations,
    conditions, assignments or aggregates. Empty = safe. *)
