(** The reasoning engine: a chase over (warded) Datalog± programs with
    stratified negation, stratified and monotonic aggregation, linker
    Skolem functors and semi-naive evaluation (paper, Sec. 4).

    Semantics: for each satisfied body φ(t,t'), a tuple t'' of constants
    and fresh labeled nulls is invented so that ψ(t,t'') holds. With the
    default options, an existential head is only instantiated when no
    homomorphic image of it already exists — where labeled nulls match
    up to consistent renaming, the Vadalog System's termination strategy
    for warded programs (so chases like
    [mgr(X,M) :- emp(X). emp(M) :- mgr(X,M).] terminate). *)

type options = {
  semi_naive : bool;
      (** semi-naive (delta-driven) fixpoint; [false] = naive
          re-evaluation, kept for the ABL-2 ablation *)
  restricted_chase : bool;
      (** check head satisfaction before inventing nulls; [false] =
          oblivious chase (ABL-1), which diverges on existential
          recursion — pair it with a [max_facts] budget *)
  isomorphic_nulls : bool;
      (** in the satisfaction check, a labeled null may map to any term,
          consistently across the head (homomorphism); [false] falls
          back to syntactic equality *)
  reorder_body : bool;
      (** opt-in greedy join ordering of rule bodies (most-anchored atom
          first, then smaller predicates); rules with aggregates keep
          their written order. Off by default: bodies evaluate exactly
          as written, which hand-tuned programs (and the generated SSST
          mappings and views) rely on; turn on for ad-hoc queries with
          unknown selectivities (ABL-4 quantifies both sides) *)
  planner : bool;
      (** cost-aware chase planning (on by default). Non-recursive
          strata (no dependency edge inside their SCC group) complete
          after round 0, so their empty delta round is skipped; in delta
          rounds each (rule, delta literal) body is re-planned at the
          round boundary from live predicate cardinalities and evaluated
          most-selective-first, probing the delta through a hash index.
          Pure scheduling: the merge sorts complete matches back into
          the written-order emission sequence on fact insertion
          sequences, so derived facts, their insertion order,
          labeled-null numbering and per-rule firing counters are
          bit-for-bit identical with the planner off, at every [jobs]
          value — only probe counts and wall time change. Unlike
          [reorder_body] (a static, semantics-visible rewrite of the
          written order), the planner never changes observable output. *)
  max_facts : int;   (** hard budget; exceeding it raises a Reason error *)
  max_rounds : int;
  check_wardedness : bool;
      (** reject programs that fail {!Analysis.wardedness} *)
  jobs : int;
      (** worker domains for semi-naive delta rounds (1 = fully
          sequential). Body matching runs on a frozen snapshot of the
          store; firing (dedup, chase check, null invention, provenance)
          stays sequential in a schedule-independent order, so results —
          including labeled-null numbering and per-rule statistics — are
          identical for every jobs value *)
  deadline_s : float option;
      (** wall-clock budget for the run, measured on the monotonic clock
          from the moment {!run} starts; checked at round boundaries and
          polled by pool workers per work item *)
  on_limit : [ `Raise | `Partial ];
      (** what to do when a budget ([max_facts], [max_rounds],
          [deadline_s]) trips or the cancellation token fires:
          [`Raise] (default) raises a [Reason] error as before;
          [`Partial] stops cleanly and returns the facts derived so far,
          tagged with the limiting resource in {!stats.stopped}. The
          partial database is a deterministic prefix of the fixpoint —
          identical for every [jobs] value *)
}

val default_jobs : int
(** [KGM_JOBS] from the environment when it parses as a positive
    integer, else 1. *)

val default_options : options

(** {1 Limits and resilience} *)

type limit = [ `Cancelled | `Deadline | `Facts | `Rounds ]
(** The resource that stopped a run early. *)

val limit_name : limit -> string
(** Short stable name ("cancelled", "deadline", "facts", "rounds") used
    in reports and telemetry counters ([engine.stopped.<name>]). *)

type checkpoint = {
  ck_dir : string;    (** snapshot directory (created on first write) *)
  ck_every : int;     (** write a snapshot every [ck_every] completed
                          rounds (also on any clean limit stop) *)
  ck_label : string;  (** distinguishes concurrent chases sharing a
                          directory, e.g. materialization phases *)
}

val default_checkpoint_every : int

val checkpoint : ?every:int -> ?label:string -> string -> checkpoint
(** [checkpoint dir] — [every] defaults to {!default_checkpoint_every}
    (clamped to >= 1), [label] to ["chase"]. *)

val latest_checkpoint : ?label:string -> string -> string option
(** Highest-round snapshot file under a checkpoint directory, if any —
    the path to hand to {!run}'s [resume_from]. *)

(** {1 Statistics}

    Per-rule chase instrumentation is always on (the counters are one
    int bump per event); spans and histograms are only recorded when an
    enabled {!Kgm_telemetry} collector is passed to {!run}. *)

type rule_stats = {
  rs_id : int;             (** position of the rule in the program *)
  rs_rule : string;        (** pretty-printed rule *)
  rs_label : string;       (** head predicates, e.g. ["controls/2"] *)
  rs_firings : int;        (** facts this rule added to the database *)
  rs_matches : int;        (** complete body matches (head instantiations
                               attempted) *)
  rs_probes : int;         (** candidate facts examined while joining *)
  rs_nulls : int;          (** labeled nulls invented *)
  rs_chase_hits : int;     (** restricted-chase homomorphism checks that
                               found an image (invention suppressed) *)
  rs_chase_misses : int;   (** checks that found none (nulls invented) *)
  rs_time_s : float;       (** monotonic time evaluating the rule *)
}

type stats = {
  rounds : int;      (** fixpoint rounds across all strata *)
  new_facts : int;   (** facts added by this run *)
  elapsed_s : float; (** monotonic wall time of the run *)
  delta_sizes : int list;
      (** facts derived per semi-naive round, chronological across
          strata *)
  nulls_invented : int;
  chase_hits : int;
  chase_misses : int;
  per_rule : rule_stats list;  (** program order *)
  stopped : limit option;
      (** [Some l] when the run stopped early under [on_limit:`Partial]:
          the database holds a deterministic prefix of the fixpoint and
          [l] names the limiting resource. [None] for complete runs. *)
}

val merge_stats : stats -> stats -> stats
(** Componentwise sum/concatenation — for reporting over multi-pass
    runs (e.g. Algorithm 2's two phases). *)

val pp_rule_table : Format.formatter -> stats -> unit
(** Human-readable per-rule metrics table, busiest rules first; rules
    with no activity are folded into one line. *)

(** {1 Provenance} *)

type derivation = {
  via_rule : string;  (** the firing rule, pretty-printed *)
  parents : (string * Kgm_common.Value.t array) list;
      (** the body facts that matched when the fact was first derived *)
}

type provenance

val create_provenance : unit -> provenance
(** Pass to {!run} to record the first derivation of every derived
    fact. *)

val explain : provenance -> string -> Database.fact -> derivation option
(** [None] for ground (loaded) facts. *)

val pp_derivation_tree :
  provenance -> Format.formatter -> string * Database.fact -> unit
(** The whole derivation tree down to ground facts. *)

(** {1 Running programs} *)

val run :
  ?options:options -> ?provenance:provenance ->
  ?telemetry:Kgm_telemetry.t -> ?cancel:Kgm_resilience.Token.t ->
  ?checkpoint:checkpoint -> ?resume_from:string ->
  Rule.program -> Database.t -> stats
(** Load the program's facts into the database and chase its rules to
    fixpoint, stratum by stratum. Raises [Kgm_error.Error]:
    [Validate] on unsafe or unstratifiable programs (or unwarded ones
    when [check_wardedness]), [Reason] on exceeded budgets (with the
    offending rule and round — and the final checkpoint path, when one
    was written — in the error context) unless [on_limit] is [`Partial].

    [cancel] is polled cooperatively (round boundaries, pool workers):
    cancelling it stops the run at the previous round boundary, as
    [`Cancelled]. [checkpoint] enables periodic snapshots of the
    complete semi-naive state; [resume_from] (a snapshot path, see
    {!latest_checkpoint}) restarts a run from one. A resumed run is
    bit-for-bit equivalent to the uninterrupted one — facts, per-
    predicate insertion order, labeled-null numbering and per-rule
    counters — at every [jobs] value. The snapshot must have been
    written by the same program text (fingerprint-checked) under the
    same checkpoint label.

    [telemetry] defaults to {!Kgm_telemetry.null}, a no-op; an enabled
    collector additionally records an [engine.run] span, one span per
    stratum and per fixpoint round, one [rule:<head>] span per rule
    evaluation that derived facts, an [engine.rule_eval_s] latency
    histogram and [engine.*] counters (plus [resilience.*] and
    [engine.stopped.*] counters when checkpoints, retries or limit
    stops occurred). *)

val pp_plan_report :
  ?options:options -> Format.formatter -> Rule.program -> Database.t -> unit
(** Explain what the planner would decide for [program] over the
    current contents of the database (load the input facts first —
    cardinalities are read live): the strata in execution order with
    their recursion flags, and for each rule of a recursive stratum the
    join order chosen for every in-stratum delta literal. Diagnostic
    only; nothing is evaluated and the database is not modified. *)

val run_program :
  ?options:options -> ?provenance:provenance ->
  ?telemetry:Kgm_telemetry.t -> ?cancel:Kgm_resilience.Token.t ->
  ?checkpoint:checkpoint -> ?resume_from:string ->
  Rule.program -> Database.t * stats
(** [run] on a fresh database. *)

val query : Database.t -> string -> Database.fact list
(** Facts of a predicate (insertion order). *)

val outputs : Rule.program -> Database.t -> (string * Database.fact list) list
(** The facts of every predicate named by an [@output("pred")]
    annotation, in annotation order. *)
