(** The reasoning engine: a chase over (warded) Datalog± programs with
    stratified negation, stratified and monotonic aggregation, linker
    Skolem functors and semi-naive evaluation (paper, Sec. 4).

    Semantics: for each satisfied body φ(t,t'), a tuple t'' of constants
    and fresh labeled nulls is invented so that ψ(t,t'') holds. With the
    default options, an existential head is only instantiated when no
    homomorphic image of it already exists — where labeled nulls match
    up to consistent renaming, the Vadalog System's termination strategy
    for warded programs (so chases like
    [mgr(X,M) :- emp(X). emp(M) :- mgr(X,M).] terminate). *)

type options = {
  semi_naive : bool;
      (** semi-naive (delta-driven) fixpoint; [false] = naive
          re-evaluation, kept for the ABL-2 ablation *)
  restricted_chase : bool;
      (** check head satisfaction before inventing nulls; [false] =
          oblivious chase (ABL-1), which diverges on existential
          recursion — pair it with a [max_facts] budget *)
  isomorphic_nulls : bool;
      (** in the satisfaction check, a labeled null may map to any term,
          consistently across the head (homomorphism); [false] falls
          back to syntactic equality *)
  reorder_body : bool;
      (** opt-in greedy join ordering of rule bodies (most-anchored atom
          first, then smaller predicates); rules with aggregates keep
          their written order. Off by default: bodies evaluate exactly
          as written, which hand-tuned programs (and the generated SSST
          mappings and views) rely on; turn on for ad-hoc queries with
          unknown selectivities (ABL-4 quantifies both sides) *)
  provenance : bool;
      (** retain the derivation support graph after the chase and return
          it in {!stats.support}, so facts can be explained
          ({!explain_tree}) without the caller allocating a {!support}
          up front. Passing [?support] explicitly implies it. Off by
          default: recording costs memory proportional to the number of
          derivations (see DESIGN.md §11 for the cost model) *)
  planner : bool;
      (** cost-aware chase planning (on by default). Non-recursive
          strata (no dependency edge inside their SCC group) complete
          after round 0, so their empty delta round is skipped; in delta
          rounds each (rule, delta literal) body is re-planned at the
          round boundary from live predicate cardinalities and evaluated
          most-selective-first, probing the delta through a hash index.
          Pure scheduling: the merge sorts complete matches back into
          the written-order emission sequence on fact insertion
          sequences, so derived facts, their insertion order,
          labeled-null numbering and per-rule firing counters are
          bit-for-bit identical with the planner off, at every [jobs]
          value — only probe counts and wall time change. Unlike
          [reorder_body] (a static, semantics-visible rewrite of the
          written order), the planner never changes observable output. *)
  max_facts : int;   (** hard budget; exceeding it raises a Reason error *)
  max_rounds : int;
  check_wardedness : bool;
      (** reject programs that fail {!Analysis.wardedness} *)
  jobs : int;
      (** worker domains for semi-naive delta rounds (1 = fully
          sequential). Body matching runs on a frozen snapshot of the
          store; firing (dedup, chase check, null invention, provenance)
          stays sequential in a schedule-independent order, so results —
          including labeled-null numbering and per-rule statistics — are
          identical for every jobs value *)
  deadline_s : float option;
      (** wall-clock budget for the run, measured on the monotonic clock
          from the moment {!run} starts; checked at round boundaries and
          polled by pool workers per work item *)
  on_limit : [ `Raise | `Partial ];
      (** what to do when a budget ([max_facts], [max_rounds],
          [deadline_s]) trips or the cancellation token fires:
          [`Raise] (default) raises a [Reason] error as before;
          [`Partial] stops cleanly and returns the facts derived so far,
          tagged with the limiting resource in {!stats.stopped}. The
          partial database is a deterministic prefix of the fixpoint —
          identical for every [jobs] value *)
}

val default_jobs : int
(** [KGM_JOBS] from the environment when it parses as a positive
    integer, else 1. *)

val default_options : options

(** {1 Limits and resilience} *)

type limit = [ `Cancelled | `Deadline | `Facts | `Rounds ]
(** The resource that stopped a run early. *)

val limit_name : limit -> string
(** Short stable name ("cancelled", "deadline", "facts", "rounds") used
    in reports and telemetry counters ([engine.stopped.<name>]). *)

type checkpoint = {
  ck_dir : string;    (** snapshot directory (created on first write) *)
  ck_every : int;     (** write a snapshot every [ck_every] completed
                          rounds (also on any clean limit stop) *)
  ck_label : string;  (** distinguishes concurrent chases sharing a
                          directory, e.g. materialization phases *)
  ck_keep : int;      (** generations retained after each successful
                          write ({!Kgm_resilience.Snapshot.gc});
                          [0] keeps everything *)
}

val default_checkpoint_every : int

val checkpoint : ?every:int -> ?keep:int -> ?label:string -> string -> checkpoint
(** [checkpoint dir] — [every] defaults to {!default_checkpoint_every}
    (clamped to >= 1), [keep] to [0] (unbounded), [label] to
    ["chase"]. *)

val latest_checkpoint : ?label:string -> string -> string option
(** Highest-round snapshot file under a checkpoint directory, if any —
    the path to hand to {!run}'s [resume_from]. *)

(** {1 Statistics}

    Per-rule chase instrumentation is always on (the counters are one
    int bump per event); spans and histograms are only recorded when an
    enabled {!Kgm_telemetry} collector is passed to {!run}. *)

type rule_stats = {
  rs_id : int;             (** position of the rule in the program *)
  rs_rule : string;        (** pretty-printed rule *)
  rs_label : string;       (** head predicates, e.g. ["controls/2"] *)
  rs_firings : int;        (** facts this rule added to the database *)
  rs_matches : int;        (** complete body matches (head instantiations
                               attempted) *)
  rs_probes : int;         (** candidate facts examined while joining *)
  rs_nulls : int;          (** labeled nulls invented *)
  rs_chase_hits : int;     (** restricted-chase homomorphism checks that
                               found an image (invention suppressed) *)
  rs_chase_misses : int;   (** checks that found none (nulls invented) *)
  rs_time_s : float;       (** monotonic time evaluating the rule *)
}

(** {1 Provenance} *)

type derivation = {
  via_rule : string;  (** the firing rule, pretty-printed *)
  parents : (string * Kgm_common.Value.t array) list;
      (** the body facts that matched when the fact was first derived *)
}

type provenance

val create_provenance : unit -> provenance
(** Pass to {!run} to record the first derivation of every derived
    fact. *)

val explain : provenance -> string -> Database.fact -> derivation option
(** [None] for ground (loaded) facts. *)

val pp_derivation_tree :
  provenance -> Format.formatter -> string * Database.fact -> unit
(** The whole derivation tree down to ground facts. *)

(** {1 Derivation support (incremental maintenance)}

    {!provenance} records the {e first} derivation of each fact —
    enough to explain it, not enough to maintain it. A [support]
    records the full derivation structure delete-and-rederive needs:
    every derivation of every derived fact (a fact whose first
    derivation dies may survive through an alternative one), the
    labeled nulls each firing invented (a null's creating derivation
    dying retracts the null and every fact carrying it), a reverse
    (parent → children) edge index for walking overdeletion cones, a
    null → carrying-facts index, and the restricted-chase checks that
    {e suppressed} an invention together with the homomorphic image
    that satisfied them (if the image later dies, the suppressed firing
    must be re-attempted — it may then invent).

    The representation is transparent: {!Incremental} walks and prunes
    it in place. Pass a fresh support to {!run} for the initial chase
    and the {e same} one to every subsequent {!run_delta} over that
    database; recording must cover the whole life of the
    materialization or DRed's completeness argument breaks. Version-2
    snapshots serialize the support recorded so far, so a resumed run
    keeps recording into the caller's support and the result is
    maintainable and explainable exactly as if never interrupted. *)

module ProvTbl : Hashtbl.S with type key = string * Kgm_common.Value.t list
(** Fact-keyed hash tables, consistent with
    {!Kgm_common.Value.equal}/[hash] (like {!Database.KeyTbl}, plus the
    predicate name in the key). *)

type support_entry = {
  se_rule : int;  (** rule id within its program (informational) *)
  se_parents : (string * Database.fact) list;
      (** the positive body facts the firing consumed, in canonical
          (sorted, dedup'd) order — DRed only needs the set *)
  se_nulls : int list;  (** labeled nulls this firing invented *)
}

type suppressed_firing = {
  sf_rule : int;
  sf_parents : (string * Database.fact) list;  (** canonical order *)
  sf_image : (string * Database.fact) list;
      (** the image that satisfied the head check *)
}

type support = {
  sup_entries : support_entry list ref ProvTbl.t;
      (** derived fact → its derivations, most recent first *)
  sup_children : (string * Database.fact) list ref ProvTbl.t;
      (** body fact → head facts with an entry consuming it; may hold
          duplicates and stale (pruned) children — consumers dedup *)
  sup_null_origin : (int, (string * Database.fact) list) Hashtbl.t;
      (** null id → parents of its creating derivation *)
  sup_null_facts : (int, (string * Database.fact) list ref) Hashtbl.t;
      (** null id → facts whose tuple carries the null *)
  mutable sup_suppressed : suppressed_firing list;
      (** reverse recording order *)
  sup_suppressed_keys :
    (int * (string * Kgm_common.Value.t list) list, unit) Hashtbl.t;
      (** dedup keys of [sup_suppressed]; prune alongside it *)
}

val create_support : unit -> support

val support_entries : support -> string -> Database.fact -> support_entry list
(** All recorded derivations of a fact, most recent first; [[]] for
    extensional (loaded) facts. *)

val fact_nulls : Database.fact -> int list
(** The labeled-null ids occurring in a fact's tuple (including inside
    list values), sorted and dedup'd. *)

(** {1 Monotonic-aggregate observation}

    Counting maintenance (DRed through [msum]-style aggregates) needs
    two things the {!support} graph does not carry: the weight and
    body facts behind every {e distinct} contribution — including
    sub-threshold ones, which never fire a head — and the mapping from
    a group to the head facts it produced. [?on_agg] streams both. *)

type group_state = {
  seen : unit Database.KeyTbl.t;  (** contributor/dedup keys *)
  mutable acc : Kgm_common.Value.t option;  (** running accumulator *)
  mutable n : int;  (** distinct contributions folded into [acc] *)
}
(** Per-group accumulator of a monotonic aggregate, exactly as the
    engine keeps it across rounds (and checkpoints it). *)

type agg_state = group_state Database.KeyTbl.t
(** Group key → accumulator, for one aggregate rule. *)

type agg_event =
  | Agg_contrib of {
      ac_rule : int;  (** recording id of the aggregate rule *)
      ac_group : Kgm_common.Value.t list;  (** group key *)
      ac_key : Kgm_common.Value.t list;  (** contributor dedup key *)
      ac_weight : Kgm_common.Value.t;  (** the aggregated value *)
      ac_parents : (string * Database.fact) list;
          (** body facts matched before the aggregate literal *)
    }  (** a distinct contribution was folded into its group *)
  | Agg_head of {
      ah_rule : int;
      ah_group : Kgm_common.Value.t list;
      ah_pred : string;
      ah_fact : Database.fact;
    }
      (** a head fact was produced under a group's accumulator —
          emitted on re-derivations of existing facts too, like
          support recording *)

val agg_step :
  Rule.agg_op -> Kgm_common.Value.t option -> Kgm_common.Value.t ->
  Kgm_common.Value.t
(** One accumulator step — [agg_step op acc v] folds [v] into [acc]
    exactly as the engine does, so a maintenance layer can rebuild a
    {!group_state} from surviving contributions. *)

type stats = {
  rounds : int;      (** fixpoint rounds across all strata *)
  new_facts : int;   (** facts added by this run *)
  elapsed_s : float; (** monotonic wall time of the run *)
  delta_sizes : int list;
      (** facts derived per semi-naive round, chronological across
          strata *)
  nulls_invented : int;
  chase_hits : int;
  chase_misses : int;
  per_rule : rule_stats list;  (** program order *)
  stopped : limit option;
      (** [Some l] when the run stopped early under [on_limit:`Partial]:
          the database holds a deterministic prefix of the fixpoint and
          [l] names the limiting resource. [None] for complete runs. *)
  support : support option;
      (** the derivation support recorded during the run — present when
          [options.provenance] was on or a [?support] was passed (the
          caller's support is returned as-is) *)
}

val merge_stats : stats -> stats -> stats
(** Componentwise sum/concatenation — for reporting over multi-pass
    runs (e.g. Algorithm 2's two phases). The first non-[None]
    [support] wins. *)

val pp_rule_table : Format.formatter -> stats -> unit
(** Human-readable per-rule metrics table, busiest rules first; rules
    with no activity are folded into one line. *)

(** {1 Fact-level explanation}

    Bounded derivation trees over a recorded {!support}: why does this
    fact hold? At each derived fact the {e first-recorded} derivation
    is expanded — the merge order of the chase is schedule-independent
    and snapshots preserve entry lists verbatim, so the tree (and its
    rendering) is bit-identical across [jobs] values, planner on/off,
    and checkpoint/resume. *)

type explain_tree = {
  et_pred : string;
  et_fact : Database.fact;
  et_depth : int;  (** recursion depth of this node, root = 0 *)
  et_node : explain_node;
}

and explain_node =
  | Ground
      (** no recorded derivation: extensional, or support was off *)
  | Truncated  (** [max_depth] reached; the fact does have derivations *)
  | Cycle      (** the fact is already on the current path *)
  | Derived of explain_deriv

and explain_deriv = {
  ed_rule_id : int;
  ed_rule : string;  (** pretty-printed firing rule *)
  ed_subst : (string * Kgm_common.Value.t) list;
      (** head-variable substitution grounding the head to the fact,
          existentials bound to the invented nulls; sorted by name *)
  ed_nulls : int list;  (** labeled nulls this derivation invented *)
  ed_premises : explain_tree list;  (** canonical parent order *)
}

val default_explain_depth : int
(** 32 — deep enough for the financial use-cases, shallow enough that
    cyclic ownership graphs stay readable. *)

val explain_tree :
  ?max_depth:int -> support -> Rule.program -> string -> Database.fact ->
  explain_tree
(** [explain_tree sup program pred fact] — the bounded derivation tree
    of [fact]. A fact with no recorded derivation (extensional, or
    simply absent) explains as {!Ground}; recursion stops at
    [max_depth] ({!Truncated}) and on back-edges ({!Cycle}). [program]
    must be the program that was chased — rule ids index into it to
    render rules and recover head substitutions. *)

val pp_explain_tree : Format.formatter -> explain_tree -> unit
(** Indented rendering: one line per fact with the firing rule, then
    the substitution, invented nulls and premises nested below. *)

val explain_tree_to_string : explain_tree -> string

(** {1 Running programs} *)

val run :
  ?options:options -> ?provenance:provenance -> ?support:support ->
  ?telemetry:Kgm_telemetry.t -> ?journal:Kgm_telemetry.Journal.t ->
  ?cancel:Kgm_resilience.Token.t ->
  ?checkpoint:checkpoint -> ?resume_from:string ->
  ?on_agg:(agg_event -> unit) -> ?rule_ids:int array ->
  Rule.program -> Database.t -> stats
(** Load the program's facts into the database and chase its rules to
    fixpoint, stratum by stratum.

    [on_agg] observes monotonic-aggregate evaluation (see
    {!agg_event}); pure observation, like [journal]. [rule_ids]
    overrides the {e recording} id of each rule (positional): support
    entries, suppressed firings and aggregate state are keyed by
    [rule_ids.(i)] instead of [i]. Maintenance layers slicing a larger
    pipeline into sub-programs pass the rules' pipeline-wide ids so
    the shared support stays unambiguous. Raises [Kgm_error.Error]:
    [Validate] on unsafe or unstratifiable programs (or unwarded ones
    when [check_wardedness]), [Reason] on exceeded budgets (with the
    offending rule and round — and the final checkpoint path, when one
    was written — in the error context) unless [on_limit] is [`Partial].

    [cancel] is polled cooperatively (round boundaries, pool workers):
    cancelling it stops the run at the previous round boundary, as
    [`Cancelled]. [checkpoint] enables periodic snapshots of the
    complete semi-naive state; [resume_from] (a snapshot path, see
    {!latest_checkpoint}) restarts a run from one. A resumed run is
    bit-for-bit equivalent to the uninterrupted one — facts, per-
    predicate insertion order, labeled-null numbering and per-rule
    counters — at every [jobs] value. The snapshot must have been
    written by the same program text (fingerprint-checked) under the
    same checkpoint label.

    [telemetry] defaults to {!Kgm_telemetry.null}, a no-op; an enabled
    collector additionally records an [engine.run] span, one span per
    stratum and per fixpoint round, one [rule:<head>] span per rule
    evaluation that derived facts, an [engine.rule_eval_s] latency
    histogram and [engine.*] counters (plus [resilience.*] and
    [engine.stopped.*] counters when checkpoints, retries or limit
    stops occurred).

    [journal] defaults to {!Kgm_telemetry.Journal.null}; an enabled
    journal receives the chase flight record — [run.start],
    [round.start]/[round.end] (with delta and database sizes),
    [rule.batch] per rule firing batch, [plan] per planner decision,
    [chunk] per worker work item, [worker.retry], [checkpoint.write]/
    [checkpoint.fail], [limit.stop] and [run.end] — as JSONL events
    (see {!Kgm_telemetry.Journal}). Pure observation: journalling
    never changes what is derived. *)

val pp_plan_report :
  ?options:options -> Format.formatter -> Rule.program -> Database.t -> unit
(** Explain what the planner would decide for [program] over the
    current contents of the database (load the input facts first —
    cardinalities are read live): the strata in execution order with
    their recursion flags, and for each rule of a recursive stratum the
    join order chosen for every in-stratum delta literal. Diagnostic
    only; nothing is evaluated and the database is not modified. *)

val run_program :
  ?options:options -> ?provenance:provenance -> ?support:support ->
  ?telemetry:Kgm_telemetry.t -> ?journal:Kgm_telemetry.Journal.t ->
  ?cancel:Kgm_resilience.Token.t ->
  ?checkpoint:checkpoint -> ?resume_from:string ->
  Rule.program -> Database.t * stats
(** [run] on a fresh database. *)

val run_delta :
  ?options:options -> ?provenance:provenance -> ?support:support ->
  ?telemetry:Kgm_telemetry.t -> ?journal:Kgm_telemetry.Journal.t ->
  ?cancel:Kgm_resilience.Token.t ->
  ?on_new:(string -> Database.fact -> unit) ->
  ?on_agg:(agg_event -> unit) -> ?rule_ids:int array ->
  ?agg_init:(int * agg_state) list ->
  Rule.program -> Database.t ->
  seed:(string * Database.fact list) list -> stats
(** Seeded semi-naive pass for incremental maintenance. [on_agg] and
    [rule_ids] as in {!run}; [agg_init] installs saturated
    monotonic-aggregate accumulators (keyed by recording id) before
    the pass, so new contributions extend the old totals — required
    whenever [program] contains a monotonic aggregate, otherwise the
    pass would re-count from empty groups. Precondition:
    [db] already holds a chase fixpoint of [program] plus a batch of
    new extensional facts, and [seed] lists exactly the facts that are
    new since that fixpoint (already present in [db]; they are {e not}
    re-inserted). Runs {e only} delta rounds — no round-0 full
    evaluation: per stratum, the first round ranges over the seeds
    plus whatever earlier strata of this same pass derived, later
    rounds over the stratum's own delta exactly as in {!run}. By
    semi-naive completeness this derives precisely the consequences of
    the seeds, at a cost proportional to the delta rather than the
    database. The planner's delta-first plans, the worker pool, the
    schedule-independent merge order and the budget/deadline machinery
    are shared with {!run}, so derived facts, their insertion order
    and labeled-null numbering are identical at every [jobs] value and
    with the planner on or off. Delta-first plans and their hash
    indexes are used here {e unconditionally} — [options.planner] only
    ablates {!run}. Seeded passes are delta rounds by construction;
    probing the whole closure per seed through written-order plans made
    planner-off maintenance slower than a re-chase (0.32–0.36×), and
    since the planner is pure scheduling there is nothing to ablate. [program]'s fact list is ignored;
    checkpointing is not supported here ({!Incremental} states are
    cheap to rebuild from a fresh chase). *)

val query : Database.t -> string -> Database.fact list
(** Facts of a predicate (insertion order). *)

val outputs : Rule.program -> Database.t -> (string * Database.fact list) list
(** The facts of every predicate named by an [@output("pred")]
    annotation, in annotation order. *)
