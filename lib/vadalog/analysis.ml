(** Static analysis of Vadalog programs: predicate dependency graph,
    stratification (negation and stratified aggregation must not occur
    in recursive cycles), the wardedness check that gives the PTIME
    guarantee of Sec. 4, and the star-restriction used by MetaLog
    (Kleene star only in non-recursive programs). *)

open Kgm_common

module SMap = Map.Make (String)
module SSet = Set.Make (String)

type edge_kind = Positive | Negative | Aggregated

type dep_edge = {
  from_pred : string;   (** body predicate *)
  to_pred : string;     (** head predicate *)
  kind : edge_kind;
  via_rule : int;       (** index in program rule list *)
}

type t = {
  preds : SSet.t;
  edges : dep_edge list;
  strata : string list list;   (** bottom-up; each stratum is a pred set *)
  stratum_of : int SMap.t;
  recursive : bool array;      (** per stratum: SCC has an internal edge *)
}

let head_preds (r : Rule.rule) = List.map (fun (a : Rule.atom) -> a.Rule.pred) r.head

let body_pred_literals (r : Rule.rule) =
  List.filter_map
    (function
      | Rule.Pos a -> Some (a.Rule.pred, Positive)
      | Rule.Neg a -> Some (a.Rule.pred, Negative)
      | Rule.Cond _ | Rule.Assign _ | Rule.Agg _ -> None)
    r.body

let rule_has_stratified_agg (r : Rule.rule) =
  List.exists
    (function
      | Rule.Agg g -> g.Rule.mode = Rule.Stratified
      | _ -> false)
    r.body

let dependency_edges (p : Rule.program) =
  List.concat
    (List.mapi
       (fun i r ->
         let strat_agg = rule_has_stratified_agg r in
         List.concat_map
           (fun h ->
             List.map
               (fun (b, kind) ->
                 let kind =
                   match kind with
                   | Positive when strat_agg -> Aggregated
                   | k -> k
                 in
                 { from_pred = b; to_pred = h; kind; via_rule = i })
               (body_pred_literals r))
           (head_preds r))
       p.Rule.rules)

let all_preds (p : Rule.program) =
  let s = ref SSet.empty in
  List.iter (fun (pred, _) -> s := SSet.add pred !s) p.Rule.facts;
  List.iter
    (fun r ->
      List.iter (fun pr -> s := SSet.add pr !s) (head_preds r);
      List.iter (fun (pr, _) -> s := SSet.add pr !s) (body_pred_literals r))
    p.Rule.rules;
  !s

(* Tarjan-free SCC via Kosaraju over the small predicate graph. *)
let pred_sccs preds edges =
  let pred_list = SSet.elements preds in
  let index = List.mapi (fun i p -> (p, i)) pred_list in
  let idx p = List.assoc p index in
  let n = List.length pred_list in
  let succ = Array.make n [] and pred_adj = Array.make n [] in
  List.iter
    (fun e ->
      let u = idx e.from_pred and v = idx e.to_pred in
      succ.(u) <- v :: succ.(u);
      pred_adj.(v) <- u :: pred_adj.(v))
    edges;
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs1 v =
    if not visited.(v) then begin
      visited.(v) <- true;
      List.iter dfs1 succ.(v);
      order := v :: !order
    end
  in
  for v = 0 to n - 1 do
    dfs1 v
  done;
  let comp = Array.make n (-1) in
  let next = ref 0 in
  let rec dfs2 v c =
    if comp.(v) = -1 then begin
      comp.(v) <- c;
      List.iter (fun u -> dfs2 u c) pred_adj.(v)
    end
  in
  List.iter
    (fun v ->
      if comp.(v) = -1 then begin
        dfs2 v !next;
        incr next
      end)
    !order;
  let arr = Array.of_list pred_list in
  let groups = Array.make !next [] in
  Array.iteri (fun v c -> groups.(c) <- arr.(v) :: groups.(c)) comp;
  (groups, fun p -> comp.(idx p))

(** Compute strata. Raises [Kgm_error.Error] when a negative or
    stratified-aggregation edge lies inside a recursive component. *)
let stratify (p : Rule.program) =
  let preds = all_preds p in
  let edges = dependency_edges p in
  let groups, comp_of = pred_sccs preds edges in
  List.iter
    (fun e ->
      if e.kind <> Positive && comp_of e.from_pred = comp_of e.to_pred then
        Kgm_error.validate_error
          "program is not stratifiable: %s dependency %s -> %s inside a cycle"
          (match e.kind with Negative -> "negative" | _ -> "aggregated")
          e.from_pred e.to_pred)
    edges;
  (* topological order of components: component c depends on c' when an
     edge goes from a pred of c' to a pred of c *)
  let nc = Array.length groups in
  let succ = Array.make nc SSet.empty in
  let indeg = Array.make nc 0 in
  List.iter
    (fun e ->
      let cu = comp_of e.from_pred and cv = comp_of e.to_pred in
      if cu <> cv && not (SSet.mem (string_of_int cv) succ.(cu)) then begin
        succ.(cu) <- SSet.add (string_of_int cv) succ.(cu);
        indeg.(cv) <- indeg.(cv) + 1
      end)
    edges;
  let queue = Queue.create () in
  Array.iteri (fun c d -> if d = 0 then Queue.add c queue) indeg;
  let order = ref [] in
  while not (Queue.is_empty queue) do
    let c = Queue.pop queue in
    order := c :: !order;
    SSet.iter
      (fun cv ->
        let cv = int_of_string cv in
        indeg.(cv) <- indeg.(cv) - 1;
        if indeg.(cv) = 0 then Queue.add cv queue)
      succ.(c)
  done;
  let order = List.rev !order in
  let strata = List.map (fun c -> groups.(c)) order in
  let stratum_of =
    List.fold_left
      (fun (i, m) group ->
        (i + 1, List.fold_left (fun m p -> SMap.add p i m) m group))
      (0, SMap.empty) strata
    |> snd
  in
  (* a stratum's SCC is recursive iff it has an internal edge: a
     self-loop, or a component of more than one predicate *)
  let comp_recursive = Array.make nc false in
  List.iter
    (fun e ->
      let c = comp_of e.from_pred in
      if c = comp_of e.to_pred then comp_recursive.(c) <- true)
    edges;
  let recursive = Array.of_list (List.map (fun c -> comp_recursive.(c)) order) in
  { preds; edges; strata; stratum_of; recursive }

let is_recursive_program (p : Rule.program) =
  let preds = all_preds p in
  let edges = dependency_edges p in
  let _, comp_of = pred_sccs preds edges in
  List.exists (fun e -> comp_of e.from_pred = comp_of e.to_pred) edges

(* ------------------------------------------------------------------ *)
(* Maintenance-oriented lookups                                         *)

let stratum_of_pred (t : t) pred =
  Option.value ~default:0 (SMap.find_opt pred t.stratum_of)

let rule_strata (t : t) (p : Rule.program) =
  Array.of_list
    (List.map
       (fun (r : Rule.rule) ->
         List.fold_left
           (fun acc (a : Rule.atom) -> max acc (stratum_of_pred t a.Rule.pred))
           0 r.Rule.head)
       p.Rule.rules)

type agg_profile = {
  ap_rule : int;
  ap_agg : Rule.aggregate;
  ap_group_vars : string list;
  ap_conds : Expr.t list;
  ap_counting : bool;
}

(* Monotone-up in [result]: truth can only flip false -> true as the
   accumulator grows under a monotone-nondecreasing op. *)
let rec monotone_up result (e : Expr.t) =
  match e with
  | Expr.Cmp ((Expr.Gt | Expr.Ge), Expr.Var v, rhs) when v = result ->
      not (List.mem result (Expr.vars rhs))
  | Expr.Cmp ((Expr.Lt | Expr.Le), lhs, Expr.Var v) when v = result ->
      not (List.mem result (Expr.vars lhs))
  | Expr.And (a, b) | Expr.Or (a, b) -> monotone_up result a && monotone_up result b
  | _ -> not (List.mem result (Expr.vars e))

let monotonic_profiles (p : Rule.program) =
  List.concat
    (List.mapi
       (fun ri (r : Rule.rule) ->
         let aggs =
           List.filteri
             (fun _ l ->
               match l with Rule.Agg _ -> true | _ -> false)
             r.Rule.body
         in
         match aggs with
         | [ Rule.Agg g ] when g.Rule.mode = Rule.Monotonic ->
             let agg_i =
               let rec find i = function
                 | Rule.Agg _ :: _ -> i
                 | _ :: rest -> find (i + 1) rest
                 | [] -> assert false
               in
               find 0 r.Rule.body
             in
             (* group variables, mirroring the engine's computation
                exactly (same [Rule.body_vars] order): the prefix-bound
                variables used in the head or after the aggregate, minus
                contributors and the result *)
             let hvars = Rule.head_vars r.Rule.head in
             let before =
               Rule.body_vars (List.filteri (fun j _ -> j < agg_i) r.Rule.body)
             in
             let after =
               List.sort_uniq String.compare
                 (List.concat_map
                    (function
                      | Rule.Pos a | Rule.Neg a -> Rule.atom_vars a
                      | Rule.Cond e -> Expr.vars e
                      | Rule.Assign (x, e) -> x :: Expr.vars e
                      | Rule.Agg g ->
                          (g.Rule.result :: g.Rule.contributors)
                          @ Expr.vars g.Rule.weight)
                    (List.filteri (fun j _ -> j > agg_i) r.Rule.body))
             in
             let used v = List.mem v hvars || List.mem v after in
             let gv =
               List.filter
                 (fun v ->
                   used v
                   && (not (List.mem v g.Rule.contributors))
                   && v <> g.Rule.result)
                 before
             in
             let suffix = List.filteri (fun j _ -> j > agg_i) r.Rule.body in
             let conds =
               List.filter_map
                 (function Rule.Cond e -> Some e | _ -> None)
                 suffix
             in
             let suffix_conds_only = List.length conds = List.length suffix in
             let scope = g.Rule.result :: gv in
             let counting =
               (match g.Rule.op with
                | Rule.Sum | Rule.Count | Rule.Max -> true
                | Rule.Prod | Rule.Min | Rule.Pack -> false)
               && suffix_conds_only
               && Rule.existential_vars r = []
               && List.for_all
                    (fun v ->
                      (not (List.mem v g.Rule.contributors))
                      && v <> g.Rule.result)
                    hvars
               && List.for_all
                    (fun e ->
                      List.for_all (fun v -> List.mem v scope) (Expr.vars e)
                      && monotone_up g.Rule.result e)
                    conds
             in
             [ { ap_rule = ri; ap_agg = g; ap_group_vars = gv;
                 ap_conds = conds; ap_counting = counting } ]
         | _ -> [])
       p.Rule.rules)

(* ------------------------------------------------------------------ *)
(* Wardedness                                                           *)

type position = string * int (* predicate, argument index *)

module PSet = Set.Make (struct
  type t = position

  let compare = compare
end)

(** Affected positions: positions that may host labeled nulls. Base:
    head positions of existentially quantified variables; propagation:
    when every body occurrence of a variable is in an affected position,
    its head positions become affected. *)
let affected_positions (p : Rule.program) =
  let affected = ref PSet.empty in
  let add pos = affected := PSet.add pos !affected in
  let changed = ref true in
  (* base case *)
  List.iter
    (fun r ->
      let ex = Rule.existential_vars r in
      List.iter
        (fun (a : Rule.atom) ->
          List.iteri
            (fun i t ->
              match t with
              | Term.Var v when List.mem v ex -> add (a.Rule.pred, i)
              | _ -> ())
            a.Rule.args)
        r.Rule.head)
    p.Rule.rules;
  while !changed do
    changed := false;
    List.iter
      (fun (r : Rule.rule) ->
        let body_atoms =
          List.filter_map
            (function Rule.Pos a -> Some a | _ -> None)
            r.Rule.body
        in
        let var_positions v =
          List.concat_map
            (fun (a : Rule.atom) ->
              List.concat
                (List.mapi
                   (fun i t ->
                     match t with
                     | Term.Var v' when v' = v -> [ (a.Rule.pred, i) ]
                     | _ -> [])
                   a.Rule.args))
            body_atoms
        in
        let body_bound = Rule.body_vars r.Rule.body in
        List.iter
          (fun v ->
            let poss = var_positions v in
            if poss <> [] && List.for_all (fun p -> PSet.mem p !affected) poss
            then
              (* v may carry a null: propagate to its head positions *)
              List.iter
                (fun (a : Rule.atom) ->
                  List.iteri
                    (fun i t ->
                      match t with
                      | Term.Var v' when v' = v ->
                          let pos = (a.Rule.pred, i) in
                          if not (PSet.mem pos !affected) then begin
                            add pos;
                            changed := true
                          end
                      | _ -> ())
                    a.Rule.args)
                r.Rule.head)
          body_bound)
      p.Rule.rules
  done;
  !affected

type ward_report = {
  warded : bool;
  violations : string list;
  affected : position list;
}

(** A rule is warded when its {e dangerous} variables (variables
    occurring only in affected positions in the body and appearing in
    the head) all occur in one single body atom (the ward). *)
let wardedness (p : Rule.program) =
  let affected = affected_positions p in
  let violations = ref [] in
  List.iteri
    (fun ri (r : Rule.rule) ->
      let body_atoms =
        List.filter_map (function Rule.Pos a -> Some a | _ -> None) r.Rule.body
      in
      let hvars = Rule.head_vars r.Rule.head in
      let dangerous =
        List.filter
          (fun v ->
            let poss =
              List.concat_map
                (fun (a : Rule.atom) ->
                  List.concat
                    (List.mapi
                       (fun i t ->
                         match t with
                         | Term.Var v' when v' = v -> [ (a.Rule.pred, i) ]
                         | _ -> [])
                       a.Rule.args))
                body_atoms
            in
            poss <> []
            && List.for_all (fun pos -> PSet.mem pos affected) poss
            && List.mem v hvars)
          (Rule.body_vars r.Rule.body)
      in
      if dangerous <> [] then begin
        (* all dangerous variables must co-occur in a single atom *)
        let in_single_atom =
          List.exists
            (fun (a : Rule.atom) ->
              let avars = Rule.atom_vars a in
              List.for_all (fun v -> List.mem v avars) dangerous)
            body_atoms
        in
        if not in_single_atom then
          violations :=
            Printf.sprintf "rule %d: dangerous variables {%s} have no ward" ri
              (String.concat ", " dangerous)
            :: !violations
      end)
    p.Rule.rules;
  { warded = !violations = [];
    violations = List.rev !violations;
    affected = PSet.elements affected }

(* ------------------------------------------------------------------ *)

let safety_report (p : Rule.program) =
  List.concat
    (List.mapi
       (fun i r ->
         List.map
           (Printf.sprintf "rule %d: %s" i)
           (Rule.check_safety { r with Rule.name = "" }))
       p.Rule.rules)
